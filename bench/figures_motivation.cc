/**
 * @file
 * Motivation and headline figures: Fig. 1(a)/1(b) (why existing
 * schemes fall short), Fig. 2 (PriSM summary across core counts),
 * Fig. 3(a)/3(b) (per-workload ANTT at 4 and 32 cores).
 */

#include "figures_impl.hh"

namespace prism::bench
{

namespace
{

Figure
fig01a()
{
    Figure f;
    f.id = "fig01a_scalability";
    f.title = "Figure 1(a): motivation — scalability of UCP/PIPP/FairWP";
    f.paper = "UCP & PIPP gains over LRU shrink with core count; "
              "way-partitioned fairness degrades from 4 to 16 cores";

    f.spec = []() {
        SweepSpec spec;
        spec.name = "fig01a_scalability";
        for (const unsigned cores : {4u, 8u, 16u, 32u})
            addSuite(spec, machine(cores), suite(cores),
                     {SchemeKind::Baseline, SchemeKind::UCP,
                      SchemeKind::PIPP},
                     coresTag(cores));
        for (const unsigned cores : {4u, 8u, 16u})
            addSuite(spec, machine(cores), suite(cores),
                     {SchemeKind::FairWP}, coresTag(cores));
        return spec;
    };

    f.report = [](const SweepResults &res, std::ostream &os) {
        Table perf({"cores", "UCP antt/LRU", "PIPP antt/LRU"});
        for (const unsigned cores : {4u, 8u, 16u, 32u}) {
            const auto ws = suite(cores);
            const auto tag = coresTag(cores);
            const auto lru =
                collectSuite(res, ws, SchemeKind::Baseline, tag);
            const auto ucp = collectSuite(res, ws, SchemeKind::UCP, tag);
            const auto pipp =
                collectSuite(res, ws, SchemeKind::PIPP, tag);
            perf.addRow({std::to_string(cores),
                         Table::num(geomeanNormAntt(ucp, lru)),
                         Table::num(geomeanNormAntt(pipp, lru))});
        }
        printBanner(os, "ANTT normalised to LRU (lower is better)");
        perf.print(os);

        Table fair({"cores", "FairWP fairness", "LRU fairness"});
        for (const unsigned cores : {4u, 8u, 16u}) {
            const auto ws = suite(cores);
            const auto tag = coresTag(cores);
            fair.addRow(
                {std::to_string(cores),
                 Table::num(geomean(collectFairness(
                     res, ws, SchemeKind::FairWP, tag))),
                 Table::num(geomean(collectFairness(
                     res, ws, SchemeKind::Baseline, tag)))});
        }
        printBanner(os, "fairness (higher is better)");
        fair.print(os);
    };

    f.summary = [](JsonWriter &w, const SweepResults &res) {
        w.key("antt_vs_lru");
        w.beginArray();
        for (const unsigned cores : {4u, 8u, 16u, 32u}) {
            const auto ws = suite(cores);
            const auto tag = coresTag(cores);
            const auto lru =
                collectSuite(res, ws, SchemeKind::Baseline, tag);
            w.beginObject();
            w.kv("cores", cores);
            w.kv("ucp", geomeanNormAntt(
                            collectSuite(res, ws, SchemeKind::UCP, tag),
                            lru));
            w.kv("pipp",
                 geomeanNormAntt(
                     collectSuite(res, ws, SchemeKind::PIPP, tag), lru));
            w.endObject();
        }
        w.endArray();
        w.key("fairness");
        w.beginArray();
        for (const unsigned cores : {4u, 8u, 16u}) {
            const auto ws = suite(cores);
            const auto tag = coresTag(cores);
            w.beginObject();
            w.kv("cores", cores);
            w.kv("fair_wp", geomean(collectFairness(
                                res, ws, SchemeKind::FairWP, tag)));
            w.kv("lru", geomean(collectFairness(
                            res, ws, SchemeKind::Baseline, tag)));
            w.endObject();
        }
        w.endArray();
    };
    return f;
}

Figure
fig01b()
{
    Figure f;
    f.id = "fig01b_finegrain";
    f.title = "Figure 1(b): fine-grained partitioning helps UCP";
    f.paper = "going 16 -> 64 -> 256 ways lifts UCP's throughput more "
              "than LRU's";

    auto variants = []() {
        std::vector<std::pair<unsigned, unsigned>> out;
        for (const unsigned cores : {4u, 8u})
            for (const unsigned ways : {16u, 64u, 256u})
                out.emplace_back(cores, ways);
        return out;
    };
    auto tag = [](unsigned cores, unsigned ways) {
        return coresTag(cores) + "-w" + std::to_string(ways);
    };

    f.spec = [variants, tag]() {
        SweepSpec spec;
        spec.name = "fig01b_finegrain";
        for (const auto &[cores, ways] : variants()) {
            MachineConfig m = machine(cores);
            m.llcBytes = 4ull << 20;
            m.llcWays = ways;
            addSuite(spec, m, suite(cores),
                     {SchemeKind::Baseline, SchemeKind::UCP},
                     tag(cores, ways));
        }
        return spec;
    };

    auto series = [variants, tag](const SweepResults &res) {
        struct Row
        {
            unsigned cores, ways;
            double lru, ucp;
        };
        std::vector<Row> rows;
        for (const auto &[cores, ways] : variants()) {
            const auto ws = suite(cores);
            const auto t = tag(cores, ways);
            std::vector<double> thr_lru, thr_ucp;
            for (const auto &r :
                 collectSuite(res, ws, SchemeKind::Baseline, t))
                thr_lru.push_back(r.ipcThroughput());
            for (const auto &r :
                 collectSuite(res, ws, SchemeKind::UCP, t))
                thr_ucp.push_back(r.ipcThroughput());
            rows.push_back(
                {cores, ways, mean(thr_lru), mean(thr_ucp)});
        }
        return rows;
    };

    f.report = [series](const SweepResults &res, std::ostream &os) {
        Table t({"cores", "ways", "LRU thr", "UCP thr", "UCP gain"});
        for (const auto &row : series(res))
            t.addRow({std::to_string(row.cores),
                      std::to_string(row.ways), Table::num(row.lru),
                      Table::num(row.ucp),
                      Table::pct(row.ucp / row.lru - 1.0)});
        printBanner(os, "IPC throughput (higher is better)");
        t.print(os);
    };

    f.summary = [series](JsonWriter &w, const SweepResults &res) {
        w.key("throughput");
        w.beginArray();
        for (const auto &row : series(res)) {
            w.beginObject();
            w.kv("cores", row.cores);
            w.kv("ways", row.ways);
            w.kv("lru", row.lru);
            w.kv("ucp", row.ucp);
            w.endObject();
        }
        w.endArray();
    };
    return f;
}

Figure
fig02()
{
    Figure f;
    f.id = "fig02_summary";
    f.title = "Figure 2: PriSM summary";
    f.paper = "PriSM-H beats LRU by 17.9/16.5/18.7/12.7% at 4/8/16/32 "
              "cores; PriSM-F improves fairness at every core count";

    f.spec = []() {
        SweepSpec spec;
        spec.name = "fig02_summary";
        for (const unsigned cores : {4u, 8u, 16u, 32u})
            addSuite(spec, machine(cores), suite(cores),
                     {SchemeKind::Baseline, SchemeKind::PrismH,
                      SchemeKind::UCP, SchemeKind::PIPP},
                     coresTag(cores));
        for (const unsigned cores : {4u, 8u, 16u})
            addSuite(spec, machine(cores), suite(cores),
                     {SchemeKind::FairWP, SchemeKind::PrismF},
                     coresTag(cores));
        return spec;
    };

    f.report = [](const SweepResults &res, std::ostream &os) {
        Table perf({"cores", "PriSM-H/LRU", "UCP/LRU", "PIPP/LRU",
                    "PriSM-H gain"});
        for (const unsigned cores : {4u, 8u, 16u, 32u}) {
            const auto ws = suite(cores);
            const auto tag = coresTag(cores);
            const auto lru =
                collectSuite(res, ws, SchemeKind::Baseline, tag);
            const double ph_n = geomeanNormAntt(
                collectSuite(res, ws, SchemeKind::PrismH, tag), lru);
            perf.addRow(
                {std::to_string(cores), Table::num(ph_n),
                 Table::num(geomeanNormAntt(
                     collectSuite(res, ws, SchemeKind::UCP, tag), lru)),
                 Table::num(geomeanNormAntt(
                     collectSuite(res, ws, SchemeKind::PIPP, tag),
                     lru)),
                 Table::pct(1.0 - ph_n)});
        }
        printBanner(os,
                    "hit-maximisation: ANTT / LRU (lower is better)");
        perf.print(os);

        Table fair({"cores", "LRU", "FairWP", "PriSM-F"});
        for (const unsigned cores : {4u, 8u, 16u}) {
            const auto ws = suite(cores);
            const auto tag = coresTag(cores);
            fair.addRow(
                {std::to_string(cores),
                 Table::num(geomean(collectFairness(
                     res, ws, SchemeKind::Baseline, tag))),
                 Table::num(geomean(collectFairness(
                     res, ws, SchemeKind::FairWP, tag))),
                 Table::num(geomean(collectFairness(
                     res, ws, SchemeKind::PrismF, tag)))});
        }
        printBanner(os, "fairness (higher is better)");
        fair.print(os);
    };

    f.summary = [](JsonWriter &w, const SweepResults &res) {
        w.key("perf");
        w.beginArray();
        for (const unsigned cores : {4u, 8u, 16u, 32u}) {
            const auto ws = suite(cores);
            const auto tag = coresTag(cores);
            const auto lru =
                collectSuite(res, ws, SchemeKind::Baseline, tag);
            const double ph_n = geomeanNormAntt(
                collectSuite(res, ws, SchemeKind::PrismH, tag), lru);
            w.beginObject();
            w.kv("cores", cores);
            w.kv("prism_h_vs_lru", ph_n);
            w.kv("ucp_vs_lru",
                 geomeanNormAntt(
                     collectSuite(res, ws, SchemeKind::UCP, tag), lru));
            w.kv("pipp_vs_lru",
                 geomeanNormAntt(
                     collectSuite(res, ws, SchemeKind::PIPP, tag),
                     lru));
            w.kv("prism_h_gain", 1.0 - ph_n);
            w.endObject();
        }
        w.endArray();
        w.key("fairness");
        w.beginArray();
        for (const unsigned cores : {4u, 8u, 16u}) {
            const auto ws = suite(cores);
            const auto tag = coresTag(cores);
            w.beginObject();
            w.kv("cores", cores);
            w.kv("lru", geomean(collectFairness(
                            res, ws, SchemeKind::Baseline, tag)));
            w.kv("fair_wp", geomean(collectFairness(
                                res, ws, SchemeKind::FairWP, tag)));
            w.kv("prism_f", geomean(collectFairness(
                                res, ws, SchemeKind::PrismF, tag)));
            w.endObject();
        }
        w.endArray();
    };
    return f;
}

/** Shared shape of Fig. 3(a) and 3(b): per-workload ANTT tables. */
Figure
perWorkloadAntt(const std::string &id, const std::string &title,
                const std::string &paper, unsigned cores,
                bool show_mix)
{
    Figure f;
    f.id = id;
    f.title = title;
    f.paper = paper;

    f.spec = [id, cores]() {
        SweepSpec spec;
        spec.name = id;
        addSuite(spec, machine(cores), suite(cores),
                 {SchemeKind::Baseline, SchemeKind::PrismH,
                  SchemeKind::UCP, SchemeKind::PIPP});
        return spec;
    };

    f.report = [cores, show_mix](const SweepResults &res,
                                 std::ostream &os) {
        const auto ws = suite(cores);
        const auto lru = collectSuite(res, ws, SchemeKind::Baseline);
        const auto ph = collectSuite(res, ws, SchemeKind::PrismH);
        const auto ucp = collectSuite(res, ws, SchemeKind::UCP);
        const auto pipp = collectSuite(res, ws, SchemeKind::PIPP);

        std::vector<std::string> headers{"workload", "PriSM-H/LRU",
                                         "UCP/LRU", "PIPP/LRU"};
        if (show_mix)
            headers.insert(headers.begin() + 1, "mix");
        Table t(headers);
        for (std::size_t i = 0; i < ws.size(); ++i) {
            const double base = lru[i].antt();
            std::vector<std::string> row{
                ws[i].name, Table::num(ph[i].antt() / base),
                Table::num(ucp[i].antt() / base),
                Table::num(pipp[i].antt() / base)};
            if (show_mix) {
                std::string mix;
                for (const auto &b : ws[i].benchmarks)
                    mix += b.substr(b.find('.') + 1) + " ";
                row.insert(row.begin() + 1, mix);
            }
            t.addRow(row);
        }
        std::vector<std::string> tail{
            "geomean", Table::num(geomeanNormAntt(ph, lru)),
            Table::num(geomeanNormAntt(ucp, lru)),
            Table::num(geomeanNormAntt(pipp, lru))};
        if (show_mix)
            tail.insert(tail.begin() + 1, "");
        t.addRow(tail);
        printBanner(os, "ANTT normalised to LRU (lower is better)");
        t.print(os);
    };

    f.summary = [cores](JsonWriter &w, const SweepResults &res) {
        const auto ws = suite(cores);
        const auto lru = collectSuite(res, ws, SchemeKind::Baseline);
        const auto ph = collectSuite(res, ws, SchemeKind::PrismH);
        const auto ucp = collectSuite(res, ws, SchemeKind::UCP);
        const auto pipp = collectSuite(res, ws, SchemeKind::PIPP);
        w.key("per_workload");
        w.beginArray();
        for (std::size_t i = 0; i < ws.size(); ++i) {
            const double base = lru[i].antt();
            w.beginObject();
            w.kv("workload", ws[i].name);
            w.kv("prism_h_vs_lru", ph[i].antt() / base);
            w.kv("ucp_vs_lru", ucp[i].antt() / base);
            w.kv("pipp_vs_lru", pipp[i].antt() / base);
            w.endObject();
        }
        w.endArray();
        w.kv("geomean_prism_h", geomeanNormAntt(ph, lru));
        w.kv("geomean_ucp", geomeanNormAntt(ucp, lru));
        w.kv("geomean_pipp", geomeanNormAntt(pipp, lru));
    };
    return f;
}

} // namespace

void
registerMotivationFigures(std::vector<Figure> &out)
{
    out.push_back(fig01a());
    out.push_back(fig01b());
    out.push_back(fig02());
    out.push_back(perWorkloadAntt(
        "fig03a_quad", "Figure 3(a): quad-core per-workload ANTT",
        "PriSM-H >= LRU nearly everywhere; Q7 ~ 1.5x; UCP edges "
        "PriSM on Q3/Q9",
        4, true));
    out.push_back(perWorkloadAntt(
        "fig03b_32core", "Figure 3(b): 32-core per-workload ANTT",
        "PriSM-H > UCP on all 32-core mixes; PIPP often worse than "
        "LRU",
        32, false));
}

} // namespace prism::bench
