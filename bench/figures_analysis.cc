/**
 * @file
 * Analysis figures and ablations: Fig. 11 (eviction-probability
 * stability), Fig. 12 (K-bit probabilities), Fig. 13 (victimless
 * replacements), §5.6 (DIP), and the three beyond-the-paper ablation
 * sweeps (allocation policy, interval length, replacement policy).
 */

#include "figures_impl.hh"
#include "telemetry/interval_recorder.hh"

namespace prism::bench
{

namespace
{

Figure
fig11()
{
    Figure f;
    f.id = "fig11_evprob";
    f.title =
        "Figure 11: eviction-probability stability (quad, PriSM-H)";
    f.paper = "E_i per benchmark is stable: stddev small relative to "
              "mean; streamers carry high E, cache-friendly cores "
              "low E";

    // The statistic needs many recomputations (the paper sees
    // 199-1175 per run): lengthen the run and shorten the interval.
    auto config = []() {
        MachineConfig m = machine(4);
        m.instrBudget *= 3;
        m.intervalMisses = m.llcBytes / m.blockBytes / 4;
        return m;
    };

    f.spec = [config]() {
        SweepSpec spec;
        spec.name = "fig11_evprob";
        // The statistic is reconstructed from the recorded interval
        // series, so the ring must hold every recompute (the run
        // produces ~1.2k; 16k leaves headroom for PRISM_BENCH_SCALE).
        SchemeOptions recorded;
        recorded.telemetry.enabled = true;
        recorded.telemetry.capacity = 16384;
        addSuite(spec, config(), suite(4), {SchemeKind::PrismH}, "",
                 recorded);
        return spec;
    };

    auto meanStddev = [](const SweepResults &res, Table *t) {
        RunningStat stddevs;
        for (const auto &w : suite(4)) {
            const RunResult &r = res.at(
                SweepSpec::makeId("", w.name, SchemeKind::PrismH));
            for (std::size_t c = 0; c < w.benchmarks.size(); ++c) {
                const RunningStat st = telemetry::evProbStat(
                    *r.recorder, static_cast<CoreId>(c));
                if (t)
                    t->addRow(
                        {c == 0 ? w.name : "", w.benchmarks[c],
                         Table::num(st.mean()), Table::num(st.stddev()),
                         c == 0 ? std::to_string(r.recomputes) : ""});
                stddevs.add(st.stddev());
            }
        }
        return stddevs.mean();
    };

    f.report = [meanStddev](const SweepResults &res,
                            std::ostream &os) {
        Table t({"workload", "benchmark", "E mean", "E stddev",
                 "recomputes"});
        const double m = meanStddev(res, &t);
        printBanner(os, "eviction probability per benchmark");
        t.print(os);
        os << "\nmean stddev across all benchmarks: " << Table::num(m)
           << " (small => stable probabilities, as in the paper)\n";
    };

    f.summary = [meanStddev](JsonWriter &w, const SweepResults &res) {
        w.kv("mean_ev_prob_stddev", meanStddev(res, nullptr));
    };
    return f;
}

Figure
fig12()
{
    Figure f;
    f.id = "fig12_bits";
    f.title =
        "Figure 12: K-bit eviction probabilities (quad, PriSM-H)";
    f.paper = "6/8/10/12-bit quantisation performs the same as "
              "floating point";

    const std::vector<unsigned> bit_widths{6, 8, 10, 12};
    auto tag = [](unsigned bits) {
        return "b" + std::to_string(bits);
    };

    f.spec = [bit_widths, tag]() {
        SweepSpec spec;
        spec.name = "fig12_bits";
        const MachineConfig m = machine(4);
        addSuite(spec, m, suite(4), {SchemeKind::PrismH});
        for (const unsigned bits : bit_widths) {
            SchemeOptions opt;
            opt.probBits = bits;
            addSuite(spec, m, suite(4), {SchemeKind::PrismH},
                     tag(bits), opt);
        }
        return spec;
    };

    auto series = [bit_widths, tag](const SweepResults &res) {
        const auto ws = suite(4);
        const auto base = collectSuite(res, ws, SchemeKind::PrismH);
        std::vector<std::pair<unsigned, double>> out;
        for (const unsigned bits : bit_widths)
            out.emplace_back(
                bits, geomeanNormAntt(collectSuite(res, ws,
                                                   SchemeKind::PrismH,
                                                   tag(bits)),
                                      base));
        return out;
    };

    f.report = [series](const SweepResults &res, std::ostream &os) {
        Table t({"bits", "ANTT vs float (geomean)"});
        for (const auto &[bits, ratio] : series(res))
            t.addRow({std::to_string(bits), Table::num(ratio)});
        printBanner(os,
                    "PriSM-H with K-bit probabilities / PriSM-H float");
        t.print(os);
        os << "\nvalues ~1.0 reproduce the paper's conclusion that 6 "
              "bits are enough.\n";
    };

    f.summary = [series](JsonWriter &w, const SweepResults &res) {
        w.key("antt_vs_float");
        w.beginArray();
        for (const auto &[bits, ratio] : series(res)) {
            w.beginObject();
            w.kv("bits", bits);
            w.kv("ratio", ratio);
            w.endObject();
        }
        w.endArray();
    };
    return f;
}

Figure
fig13()
{
    Figure f;
    f.id = "fig13_victimless";
    f.title = "Figure 13: victimless replacements vs interval length";
    f.paper = "fraction falls as W grows: 3.8% (32K) -> 3.1% (64K) -> "
              "2.5% (128K) in the paper";

    const std::vector<std::uint64_t> windows{32768, 65536, 131072};
    auto tag = [](std::uint64_t w_misses) {
        return "w" + std::to_string(w_misses / 1024) + "k";
    };
    auto config = [](std::uint64_t w_misses) {
        MachineConfig m = machine(4);
        m.intervalMisses = w_misses;
        // Longer intervals need a longer run to see several of them.
        m.instrBudget *= 2;
        return m;
    };

    f.spec = [windows, tag, config]() {
        SweepSpec spec;
        spec.name = "fig13_victimless";
        for (const std::uint64_t w_misses : windows)
            addSuite(spec, config(w_misses), suite(4),
                     {SchemeKind::PrismH}, tag(w_misses));
        return spec;
    };

    auto series = [windows, tag](const SweepResults &res) {
        std::vector<std::pair<std::uint64_t, double>> out;
        for (const std::uint64_t w_misses : windows) {
            RunningStat frac;
            for (const auto &r :
                 collectSuite(res, suite(4), SchemeKind::PrismH,
                              tag(w_misses)))
                frac.add(r.victimlessFraction);
            out.emplace_back(w_misses, frac.mean());
        }
        return out;
    };

    f.report = [series](const SweepResults &res, std::ostream &os) {
        Table t({"W (misses)", "victimless fraction"});
        for (const auto &[w_misses, frac] : series(res))
            t.addRow({std::to_string(w_misses / 1024) + "K",
                      Table::pct(frac)});
        printBanner(
            os,
            "replacements with no candidate of the selected core");
        t.print(os);
    };

    f.summary = [series](JsonWriter &w, const SweepResults &res) {
        w.key("victimless_fraction");
        w.beginArray();
        for (const auto &[w_misses, frac] : series(res)) {
            w.beginObject();
            w.kv("interval_misses", w_misses);
            w.kv("fraction", frac);
            w.endObject();
        }
        w.endArray();
    };
    return f;
}

Figure
sec56()
{
    Figure f;
    f.id = "sec56_dip";
    f.title = "Section 5.6: PriSM on a DIP-replacement cache (quad)";
    f.paper =
        "PriSM-H beats the DIP baseline by ~8.9%; TA-DIP ~= DIP";

    auto config = []() {
        MachineConfig m = machine(4);
        m.repl = ReplKind::DIP;
        return m;
    };

    f.spec = [config]() {
        SweepSpec spec;
        spec.name = "sec56_dip";
        addSuite(spec, config(), suite(4),
                 {SchemeKind::Baseline, SchemeKind::PrismH,
                  SchemeKind::TADIP});
        return spec;
    };

    f.report = [](const SweepResults &res, std::ostream &os) {
        const auto ws = suite(4);
        const auto dip = collectSuite(res, ws, SchemeKind::Baseline);
        const auto ph = collectSuite(res, ws, SchemeKind::PrismH);
        const auto tadip = collectSuite(res, ws, SchemeKind::TADIP);
        Table t({"workload", "PriSM-H/DIP", "TA-DIP/DIP"});
        for (std::size_t i = 0; i < ws.size(); ++i) {
            const double base = dip[i].antt();
            t.addRow({ws[i].name, Table::num(ph[i].antt() / base),
                      Table::num(tadip[i].antt() / base)});
        }
        const double g_ph = geomeanNormAntt(ph, dip);
        const double g_ta = geomeanNormAntt(tadip, dip);
        t.addRow({"geomean", Table::num(g_ph), Table::num(g_ta)});
        printBanner(os, "ANTT normalised to the DIP baseline");
        t.print(os);
        os << "\nPriSM-H gain over DIP: " << Table::pct(1.0 - g_ph)
           << " (paper: 8.9%); TA-DIP vs DIP: "
           << Table::pct(1.0 - g_ta) << " (paper: ~0%)\n";
    };

    f.summary = [](JsonWriter &w, const SweepResults &res) {
        const auto ws = suite(4);
        const auto dip = collectSuite(res, ws, SchemeKind::Baseline);
        w.kv("prism_h_vs_dip",
             geomeanNormAntt(collectSuite(res, ws, SchemeKind::PrismH),
                             dip));
        w.kv("tadip_vs_dip",
             geomeanNormAntt(collectSuite(res, ws, SchemeKind::TADIP),
                             dip));
    };
    return f;
}

Figure
ablationAlloc()
{
    Figure f;
    f.id = "ablation_alloc";
    f.title = "Ablation: allocation policies on the PriSM mechanism";
    f.paper = "mechanism (PriSM-LA vs UCP) and allocation policy "
              "(PriSM-H vs PriSM-LA) contributions, 4 and 16 cores";

    f.spec = []() {
        SweepSpec spec;
        spec.name = "ablation_alloc";
        for (const unsigned cores : {4u, 16u})
            addSuite(spec, machine(cores), suite(cores),
                     {SchemeKind::Baseline, SchemeKind::UCP,
                      SchemeKind::PrismH, SchemeKind::PrismLA,
                      SchemeKind::PrismF},
                     coresTag(cores));
        return spec;
    };

    // (scheme, table label) rows in presentation order.
    static const std::vector<std::pair<SchemeKind, const char *>>
        rows{{SchemeKind::UCP, "UCP (way-partition + lookahead)"},
             {SchemeKind::PrismLA, "PriSM-LA (mechanism + lookahead)"},
             {SchemeKind::PrismH, "PriSM-H (mechanism + Algorithm 1)"},
             {SchemeKind::PrismF,
              "PriSM-F (mechanism + Algorithm 2)"}};

    f.report = [](const SweepResults &res, std::ostream &os) {
        for (const unsigned cores : {4u, 16u}) {
            const auto ws = suite(cores);
            const auto tag = coresTag(cores);
            const auto lru =
                collectSuite(res, ws, SchemeKind::Baseline, tag);
            Table t({"scheme", "antt/LRU"});
            for (const auto &[scheme, label] : rows)
                t.addRow({label,
                          Table::num(geomeanNormAntt(
                              collectSuite(res, ws, scheme, tag),
                              lru))});
            printBanner(os, std::to_string(cores) + " cores");
            t.print(os);
        }
    };

    f.summary = [](JsonWriter &w, const SweepResults &res) {
        w.key("antt_vs_lru");
        w.beginArray();
        for (const unsigned cores : {4u, 16u}) {
            const auto ws = suite(cores);
            const auto tag = coresTag(cores);
            const auto lru =
                collectSuite(res, ws, SchemeKind::Baseline, tag);
            w.beginObject();
            w.kv("cores", cores);
            w.kv("ucp", geomeanNormAntt(
                            collectSuite(res, ws, SchemeKind::UCP, tag),
                            lru));
            w.kv("prism_la",
                 geomeanNormAntt(
                     collectSuite(res, ws, SchemeKind::PrismLA, tag),
                     lru));
            w.kv("prism_h",
                 geomeanNormAntt(
                     collectSuite(res, ws, SchemeKind::PrismH, tag),
                     lru));
            w.kv("prism_f",
                 geomeanNormAntt(
                     collectSuite(res, ws, SchemeKind::PrismF, tag),
                     lru));
            w.endObject();
        }
        w.endArray();
    };
    return f;
}

Figure
ablationInterval()
{
    Figure f;
    f.id = "ablation_interval";
    f.title = "Ablation: PriSM-H vs interval length W (quad)";
    f.paper = "design choice: W = N/2 for scaled runs (paper uses N "
              "over 100x longer windows)";

    struct Variant
    {
        std::string label, tag;
        MachineConfig config;
    };
    auto variants = []() {
        std::vector<Variant> out;
        for (const unsigned div : {8u, 4u, 2u, 1u}) {
            MachineConfig m = machine(4);
            const std::uint64_t n = m.llcBytes / m.blockBytes;
            m.intervalMisses = n / div;
            out.push_back({"N/" + std::to_string(div),
                           "d" + std::to_string(div), m});
        }
        MachineConfig m = machine(4);
        m.intervalMisses = 2 * (m.llcBytes / m.blockBytes);
        m.instrBudget *= 2; // still see a handful of intervals
        out.push_back({"2N", "x2n", m});
        return out;
    };

    f.spec = [variants]() {
        SweepSpec spec;
        spec.name = "ablation_interval";
        for (const auto &v : variants())
            addSuite(spec, v.config, suite(4),
                     {SchemeKind::Baseline, SchemeKind::PrismH},
                     v.tag);
        return spec;
    };

    auto series = [variants](const SweepResults &res) {
        std::vector<std::pair<std::string, double>> out;
        for (const auto &v : variants())
            out.emplace_back(
                v.label,
                geomeanNormAntt(
                    collectSuite(res, suite(4), SchemeKind::PrismH,
                                 v.tag),
                    collectSuite(res, suite(4), SchemeKind::Baseline,
                                 v.tag)));
        return out;
    };

    f.report = [series](const SweepResults &res, std::ostream &os) {
        Table t({"W", "PriSM-H antt/LRU"});
        for (const auto &[label, ratio] : series(res))
            t.addRow({label, Table::num(ratio)});
        printBanner(os, "ANTT normalised to LRU (lower is better)");
        t.print(os);
    };

    f.summary = [series](JsonWriter &w, const SweepResults &res) {
        w.key("antt_vs_lru");
        w.beginArray();
        for (const auto &[label, ratio] : series(res)) {
            w.beginObject();
            w.kv("interval", label);
            w.kv("ratio", ratio);
            w.endObject();
        }
        w.endArray();
    };
    return f;
}

Figure
ablationRepl()
{
    Figure f;
    f.id = "ablation_repl";
    f.title = "Ablation: PriSM-H over each replacement policy (quad)";
    f.paper = "PriSM improves every baseline it is layered on (the "
              "paper shows DIP; this sweeps all policies)";

    const std::vector<ReplKind> kinds{
        ReplKind::LRU, ReplKind::TimestampLRU, ReplKind::DIP,
        ReplKind::RRIP, ReplKind::Random};

    f.spec = [kinds]() {
        SweepSpec spec;
        spec.name = "ablation_repl";
        for (const ReplKind kind : kinds) {
            MachineConfig m = machine(4);
            m.repl = kind;
            addSuite(spec, m, suite(4),
                     {SchemeKind::Baseline, SchemeKind::PrismH},
                     replKindName(kind));
        }
        return spec;
    };

    auto series = [kinds](const SweepResults &res) {
        std::vector<std::pair<std::string, double>> out;
        for (const ReplKind kind : kinds) {
            const std::string tag = replKindName(kind);
            out.emplace_back(
                tag, geomeanNormAntt(
                         collectSuite(res, suite(4),
                                      SchemeKind::PrismH, tag),
                         collectSuite(res, suite(4),
                                      SchemeKind::Baseline, tag)));
        }
        return out;
    };

    f.report = [series](const SweepResults &res, std::ostream &os) {
        Table t({"replacement", "PriSM-H antt / baseline antt"});
        for (const auto &[name, ratio] : series(res))
            t.addRow({name, Table::num(ratio)});
        printBanner(os,
                    "ANTT normalised to the same policy unmanaged");
        t.print(os);
        os << "\nvalues < 1 on every row reproduce the paper's "
              "composability claim.\n";
    };

    f.summary = [series](JsonWriter &w, const SweepResults &res) {
        w.key("antt_vs_baseline");
        w.beginArray();
        for (const auto &[name, ratio] : series(res)) {
            w.beginObject();
            w.kv("replacement", name);
            w.kv("ratio", ratio);
            w.endObject();
        }
        w.endArray();
    };
    return f;
}

Figure
wayMask()
{
    Figure f;
    f.id = "waymask";
    f.title = "PriSM-WM: targets enforced by CAT-style way masks "
              "(quad)";
    f.paper = "beyond the paper: the same control loop on commodity "
              "way masks (LFOC-style), vs the probabilistic "
              "mechanism and static partitioning";

    f.spec = []() {
        SweepSpec spec;
        spec.name = "waymask";
        addSuite(spec, machine(4), suite(4),
                 {SchemeKind::Baseline, SchemeKind::PrismH,
                  SchemeKind::PrismWM, SchemeKind::StaticWP});
        return spec;
    };

    f.report = [](const SweepResults &res, std::ostream &os) {
        const auto ws = suite(4);
        const auto lru = collectSuite(res, ws, SchemeKind::Baseline);
        const auto wm = collectSuite(res, ws, SchemeKind::PrismWM);
        Table t({"workload", "PriSM-H/LRU", "PriSM-WM/LRU",
                 "StaticWP/LRU", "quant err (ways)"});
        const auto ph = collectSuite(res, ws, SchemeKind::PrismH);
        const auto sw = collectSuite(res, ws, SchemeKind::StaticWP);
        for (std::size_t i = 0; i < ws.size(); ++i) {
            const double base = lru[i].antt();
            t.addRow({ws[i].name, Table::num(ph[i].antt() / base),
                      Table::num(wm[i].antt() / base),
                      Table::num(sw[i].antt() / base),
                      Table::num(wm[i].wayQuantError)});
        }
        t.addRow({"geomean", Table::num(geomeanNormAntt(ph, lru)),
                  Table::num(geomeanNormAntt(wm, lru)),
                  Table::num(geomeanNormAntt(sw, lru)), ""});
        printBanner(os, "ANTT normalised to LRU (lower is better)");
        t.print(os);
        os << "\nPriSM-WM should land between PriSM-H (exact "
              "probabilistic enforcement) and StaticWP (no control "
              "loop); quant err above 1 way means the mask "
              "granularity is hiding the targets.\n";
    };

    f.summary = [](JsonWriter &w, const SweepResults &res) {
        const auto ws = suite(4);
        const auto lru = collectSuite(res, ws, SchemeKind::Baseline);
        const auto wm = collectSuite(res, ws, SchemeKind::PrismWM);
        w.kv("prism_wm_vs_lru", geomeanNormAntt(wm, lru));
        w.kv("prism_h_vs_lru",
             geomeanNormAntt(
                 collectSuite(res, ws, SchemeKind::PrismH), lru));
        double err = 0.0;
        for (const RunResult &r : wm)
            err += r.wayQuantError;
        w.kv("way_quant_error_mean",
             err / static_cast<double>(wm.size()));
    };
    return f;
}

} // namespace

void
registerAnalysisFigures(std::vector<Figure> &out)
{
    out.push_back(fig11());
    out.push_back(fig12());
    out.push_back(fig13());
    out.push_back(sec56());
    out.push_back(ablationAlloc());
    out.push_back(ablationInterval());
    out.push_back(ablationRepl());
    out.push_back(wayMask());
}

} // namespace prism::bench
