/**
 * @file
 * Figure 2: PriSM performance summary across core counts.
 *
 * Paper series: (i) ANTT of PriSM-H, UCP and PIPP normalised to LRU
 * at 4/8/16/32 cores — PriSM-H gains 17.9/16.5/18.7/12.7% over LRU
 * and matches or beats UCP/PIPP; (ii) fairness of PriSM-F vs LRU and
 * FairWP at 4/8/16 cores.
 */

#include "bench_common.hh"

using namespace prism;
using namespace prism::bench;

int
main()
{
    header("Figure 2: PriSM summary",
           "PriSM-H beats LRU by 17.9/16.5/18.7/12.7% at 4/8/16/32 "
           "cores; PriSM-F improves fairness at every core count");

    Table perf({"cores", "PriSM-H/LRU", "UCP/LRU", "PIPP/LRU",
                "PriSM-H gain"});
    for (unsigned cores : {4u, 8u, 16u, 32u}) {
        Runner runner(machine(cores));
        std::vector<RunResult> lru, ph, ucp, pipp;
        for (const auto &w : suite(cores)) {
            lru.push_back(runner.run(w, SchemeKind::Baseline));
            ph.push_back(runner.run(w, SchemeKind::PrismH));
            ucp.push_back(runner.run(w, SchemeKind::UCP));
            pipp.push_back(runner.run(w, SchemeKind::PIPP));
        }
        const double ph_n = geomeanNormAntt(ph, lru);
        perf.addRow({std::to_string(cores), Table::num(ph_n),
                     Table::num(geomeanNormAntt(ucp, lru)),
                     Table::num(geomeanNormAntt(pipp, lru)),
                     Table::pct(1.0 - ph_n)});
    }
    printBanner(std::cout,
                "hit-maximisation: ANTT / LRU (lower is better)");
    perf.print(std::cout);

    Table fair({"cores", "LRU", "FairWP", "PriSM-F"});
    for (unsigned cores : {4u, 8u, 16u}) {
        Runner runner(machine(cores));
        std::vector<double> f_lru, f_wp, f_pf;
        for (const auto &w : suite(cores)) {
            f_lru.push_back(
                runner.run(w, SchemeKind::Baseline).fairness());
            f_wp.push_back(runner.run(w, SchemeKind::FairWP).fairness());
            f_pf.push_back(runner.run(w, SchemeKind::PrismF).fairness());
        }
        fair.addRow({std::to_string(cores), Table::num(geomean(f_lru)),
                     Table::num(geomean(f_wp)),
                     Table::num(geomean(f_pf))});
    }
    printBanner(std::cout, "fairness (higher is better)");
    fair.print(std::cout);
    return 0;
}
