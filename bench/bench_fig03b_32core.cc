/**
 * @file
 * Figure 3(b): per-workload ANTT at 32 cores.
 *
 * Paper series: ANTT of PriSM-H, UCP and PIPP normalised to LRU for
 * T1-T14. PriSM-H beats UCP on every 32-core workload; PIPP is
 * frequently worse than LRU because too many cores insert near the
 * LRU position.
 */

#include "bench_common.hh"

using namespace prism;
using namespace prism::bench;

int
main()
{
    header("Figure 3(b): 32-core per-workload ANTT",
           "PriSM-H > UCP on all 32-core mixes; PIPP often worse "
           "than LRU");

    Runner runner(machine(32));
    Table t({"workload", "PriSM-H/LRU", "UCP/LRU", "PIPP/LRU"});
    std::vector<RunResult> lru, ph, ucp, pipp;
    for (const auto &w : suite(32)) {
        lru.push_back(runner.run(w, SchemeKind::Baseline));
        ph.push_back(runner.run(w, SchemeKind::PrismH));
        ucp.push_back(runner.run(w, SchemeKind::UCP));
        pipp.push_back(runner.run(w, SchemeKind::PIPP));
        const double base = lru.back().antt();
        t.addRow({w.name, Table::num(ph.back().antt() / base),
                  Table::num(ucp.back().antt() / base),
                  Table::num(pipp.back().antt() / base)});
    }
    t.addRow({"geomean", Table::num(geomeanNormAntt(ph, lru)),
              Table::num(geomeanNormAntt(ucp, lru)),
              Table::num(geomeanNormAntt(pipp, lru))});
    printBanner(std::cout, "ANTT normalised to LRU (lower is better)");
    t.print(std::cout);
    return 0;
}
