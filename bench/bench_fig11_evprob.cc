/**
 * @file
 * Figure 11: mean and standard deviation of eviction probabilities
 * under PriSM-H for each benchmark of each quad workload.
 *
 * Paper series: per-benchmark mean eviction probability with an
 * error bar of one standard deviation; the standard deviations are
 * small (probabilities are stable across the 199-1175 recomputations
 * per run).
 */

#include "bench_common.hh"

using namespace prism;
using namespace prism::bench;

int
main()
{
    header("Figure 11: eviction-probability stability (quad, PriSM-H)",
           "E_i per benchmark is stable: stddev small relative to "
           "mean; streamers carry high E, cache-friendly cores low E");

    // The statistic needs many recomputations (the paper sees
    // 199-1175 per run): lengthen the run and shorten the interval.
    MachineConfig m = machine(4);
    m.instrBudget *= 3;
    m.intervalMisses = m.llcBytes / m.blockBytes / 4;
    Runner runner(m);
    Table t({"workload", "benchmark", "E mean", "E stddev",
             "recomputes"});
    RunningStat stddevs;
    for (const auto &w : suite(4)) {
        const auto res = runner.run(w, SchemeKind::PrismH);
        for (std::size_t c = 0; c < w.benchmarks.size(); ++c) {
            t.addRow({c == 0 ? w.name : "", w.benchmarks[c],
                      Table::num(res.evProbMean[c]),
                      Table::num(res.evProbStddev[c]),
                      c == 0 ? std::to_string(res.recomputes) : ""});
            stddevs.add(res.evProbStddev[c]);
        }
    }
    printBanner(std::cout, "eviction probability per benchmark");
    t.print(std::cout);
    std::cout << "\nmean stddev across all benchmarks: "
              << Table::num(stddevs.mean())
              << " (small => stable probabilities, as in the paper)\n";
    return 0;
}
