/**
 * @file
 * Micro-benchmarks (google-benchmark): hardware-relevant costs of
 * the PriSM framework (paper §3.3-§3.4).
 *
 * - Core-Selection: one random draw through the cumulative
 *   distribution (the paper's added replacement-path hardware).
 * - Equation 1: recomputing the eviction distribution.
 * - Allocation policies: Algorithm 1/2/3 per recomputation, plus
 *   the arithmetic-op counts the paper quotes (20-160 ops for
 *   Algorithm 1, 28-224 for Algorithm 2 from 4 to 32 cores).
 * - The lookahead policy for comparison (quadratic in ways).
 */

#include <benchmark/benchmark.h>

#include "cache/shared_cache.hh"
#include "common/rng.hh"
#include "prism/alloc_fair.hh"
#include "prism/alloc_hitmax.hh"
#include "prism/alloc_lookahead.hh"
#include "prism/alloc_qos.hh"
#include "plane/eq1.hh"
#include "prism/prism_scheme.hh"
#include "workload/stack_dist_generator.hh"

using namespace prism;

namespace
{

IntervalSnapshot
makeSnapshot(std::uint32_t cores)
{
    IntervalSnapshot snap;
    snap.totalBlocks = 65536;
    snap.ways = 16;
    snap.intervalMisses = 32768;
    snap.cores.resize(cores);
    Rng rng(1);
    for (auto &c : snap.cores) {
        c.occupancyBlocks = 65536 / cores;
        c.sharedHits = rng.below(10000);
        c.sharedMisses = 32768 / cores;
        c.shadowHitsAtPosition.resize(16);
        for (auto &h : c.shadowHitsAtPosition)
            h = static_cast<double>(rng.below(1000));
        c.shadowMisses = static_cast<double>(rng.below(1000));
        c.instructions = 1000000;
        c.cycles = 2000000;
        c.llcStallCycles = 500000;
    }
    return snap;
}

void
BM_CoreSelection(benchmark::State &state)
{
    const auto cores = static_cast<std::uint32_t>(state.range(0));
    PrismScheme scheme(cores, std::make_unique<HitMaxPolicy>(), 7);
    CacheConfig cfg;
    cfg.sizeBytes = 1 << 20;
    cfg.ways = 16;
    cfg.numCores = cores;
    SharedCache cache(cfg);
    cache.setScheme(&scheme);
    // Fill one set completely so chooseVictim exercises selection.
    for (std::uint32_t i = 0; i < 16; ++i)
        cache.access(i % cores, static_cast<Addr>(i) * cache.numSets());
    SetView set = cache.setView(0);
    for (auto _ : state)
        benchmark::DoNotOptimize(scheme.chooseVictim(cache, 0, set));
}

void
BM_EvictionDistribution(benchmark::State &state)
{
    const auto cores = static_cast<std::size_t>(state.range(0));
    std::vector<double> c(cores, 1.0 / cores), t(cores, 1.0 / cores),
        m(cores, 1.0 / cores);
    for (auto _ : state)
        benchmark::DoNotOptimize(
            evictionDistribution(c, t, m, 65536, 32768));
}

template <typename Policy>
void
BM_AllocPolicy(benchmark::State &state)
{
    const auto cores = static_cast<std::uint32_t>(state.range(0));
    const auto snap = makeSnapshot(cores);
    Policy policy;
    for (auto _ : state)
        benchmark::DoNotOptimize(policy.computeTargets(snap));
    state.counters["paper_arith_ops"] =
        static_cast<double>(policy.arithmeticOps(cores));
}

void
BM_QosPolicy(benchmark::State &state)
{
    const auto cores = static_cast<std::uint32_t>(state.range(0));
    const auto snap = makeSnapshot(cores);
    QosPolicy policy(0.8);
    for (auto _ : state)
        benchmark::DoNotOptimize(policy.computeTargets(snap));
    state.counters["paper_arith_ops"] =
        static_cast<double>(policy.arithmeticOps(cores));
}

void
BM_GeneratorIrm(benchmark::State &state)
{
    StackDistParams p{65536, 0.5, 0.01, 0.3, 16384, 1};
    StackDistGenerator gen(0, p, 9);
    for (auto _ : state)
        benchmark::DoNotOptimize(gen.next());
}

void
BM_GeneratorExactLru(benchmark::State &state)
{
    StackDistParams p{65536, 0.5, 0.01, 0.3, 16384, 1};
    p.exactLru = true;
    StackDistGenerator gen(0, p, 9);
    for (auto _ : state)
        benchmark::DoNotOptimize(gen.next());
}

void
BM_SharedCacheAccess(benchmark::State &state)
{
    CacheConfig cfg;
    cfg.sizeBytes = 4ull << 20;
    cfg.ways = 16;
    cfg.numCores = 4;
    cfg.intervalMisses = 1u << 30;
    SharedCache cache(cfg);
    Rng rng(3);
    for (auto _ : state)
        benchmark::DoNotOptimize(
            cache.access(static_cast<CoreId>(rng.below(4)),
                         rng.below(1 << 20)));
}

} // namespace

BENCHMARK(BM_GeneratorIrm);
BENCHMARK(BM_GeneratorExactLru);
BENCHMARK(BM_SharedCacheAccess);
BENCHMARK(BM_CoreSelection)->Arg(4)->Arg(8)->Arg(16)->Arg(32);
BENCHMARK(BM_EvictionDistribution)->Arg(4)->Arg(8)->Arg(16)->Arg(32);
BENCHMARK(BM_AllocPolicy<HitMaxPolicy>)->Arg(4)->Arg(32);
BENCHMARK(BM_AllocPolicy<FairPolicy>)->Arg(4)->Arg(32);
BENCHMARK(BM_AllocPolicy<LookaheadPolicy>)->Arg(4)->Arg(32);
BENCHMARK(BM_QosPolicy)->Arg(4)->Arg(32);

BENCHMARK_MAIN();
