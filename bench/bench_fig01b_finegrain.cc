/**
 * @file
 * Figure 1(b): benefits of fine-grained partitioning.
 *
 * Paper series: IPC throughput of LRU and UCP on a 4MB cache at
 * 16/64/256-way associativity (quad- and eight-core workloads). UCP
 * gains more from the added (finer) allocation granularity than LRU
 * does from the extra associativity.
 */

#include "bench_common.hh"

using namespace prism;
using namespace prism::bench;

int
main()
{
    header("Figure 1(b): fine-grained partitioning helps UCP",
           "going 16 -> 64 -> 256 ways lifts UCP's throughput more "
           "than LRU's");

    Table t({"cores", "ways", "LRU thr", "UCP thr", "UCP gain"});
    for (unsigned cores : {4u, 8u}) {
        for (unsigned ways : {16u, 64u, 256u}) {
            MachineConfig m = machine(cores);
            m.llcBytes = 4ull << 20;
            m.llcWays = ways;
            Runner runner(m);
            std::vector<double> thr_lru, thr_ucp;
            for (const auto &w : suite(cores)) {
                thr_lru.push_back(
                    runner.run(w, SchemeKind::Baseline).ipcThroughput());
                thr_ucp.push_back(
                    runner.run(w, SchemeKind::UCP).ipcThroughput());
            }
            const double lru = mean(thr_lru);
            const double ucp = mean(thr_ucp);
            t.addRow({std::to_string(cores), std::to_string(ways),
                      Table::num(lru), Table::num(ucp),
                      Table::pct(ucp / lru - 1.0)});
        }
    }
    printBanner(std::cout, "IPC throughput (higher is better)");
    t.print(std::cout);
    return 0;
}
