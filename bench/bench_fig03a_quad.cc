/**
 * @file
 * Figure 3(a): per-workload ANTT at quad core.
 *
 * Paper series: ANTT of PriSM-H, UCP and PIPP normalised to LRU for
 * Q1-Q21. Many workloads gain >20%; Q7 gains ~50%; UCP is slightly
 * ahead on Q3/Q9, PriSM on most others.
 */

#include "bench_common.hh"

using namespace prism;
using namespace prism::bench;

int
main()
{
    header("Figure 3(a): quad-core per-workload ANTT",
           "PriSM-H >= LRU nearly everywhere; Q7 ~ 1.5x; UCP edges "
           "PriSM on Q3/Q9");

    Runner runner(machine(4));
    Table t({"workload", "mix", "PriSM-H/LRU", "UCP/LRU", "PIPP/LRU"});
    std::vector<RunResult> lru, ph, ucp, pipp;
    for (const auto &w : suite(4)) {
        lru.push_back(runner.run(w, SchemeKind::Baseline));
        ph.push_back(runner.run(w, SchemeKind::PrismH));
        ucp.push_back(runner.run(w, SchemeKind::UCP));
        pipp.push_back(runner.run(w, SchemeKind::PIPP));
        std::string mix;
        for (const auto &b : w.benchmarks)
            mix += b.substr(b.find('.') + 1) + " ";
        const double base = lru.back().antt();
        t.addRow({w.name, mix, Table::num(ph.back().antt() / base),
                  Table::num(ucp.back().antt() / base),
                  Table::num(pipp.back().antt() / base)});
    }
    t.addRow({"geomean", "",
              Table::num(geomeanNormAntt(ph, lru)),
              Table::num(geomeanNormAntt(ucp, lru)),
              Table::num(geomeanNormAntt(pipp, lru))});
    printBanner(std::cout, "ANTT normalised to LRU (lower is better)");
    t.print(std::cout);
    return 0;
}
