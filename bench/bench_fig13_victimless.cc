/**
 * @file
 * Figure 13: fraction of replacements where the selected core has no
 * block in the indexed set, vs interval length.
 *
 * Paper series: with quad-core PriSM-H, the victimless fraction
 * falls from 3.8% at W = 32K misses to 3.1% at 64K and 2.5% at 128K.
 */

#include "bench_common.hh"

using namespace prism;
using namespace prism::bench;

int
main()
{
    header("Figure 13: victimless replacements vs interval length",
           "fraction falls as W grows: 3.8% (32K) -> 3.1% (64K) -> "
           "2.5% (128K) in the paper");

    Table t({"W (misses)", "victimless fraction"});
    for (std::uint64_t w_misses : {32768ull, 65536ull, 131072ull}) {
        MachineConfig m = machine(4);
        m.intervalMisses = w_misses;
        // Longer intervals need a longer run to see several of them.
        m.instrBudget *= 2;
        Runner runner(m);
        RunningStat frac;
        for (const auto &w : suite(4)) {
            const auto res = runner.run(w, SchemeKind::PrismH);
            frac.add(res.victimlessFraction);
        }
        t.addRow({std::to_string(w_misses / 1024) + "K",
                  Table::pct(frac.mean())});
    }
    printBanner(std::cout,
                "replacements with no candidate of the selected core");
    t.print(std::cout);
    return 0;
}
