/**
 * @file
 * Hot-path microbenchmark harness: the deterministic contract
 * workload and the calibrated timing loops shared by
 * bench_micro_hotpath and the perf-label smoke/golden tests.
 *
 * Two-phase design (docs/BENCHMARKING.md, "Hot path &
 * microbenchmarks"):
 *
 * - The *contract* phase replays a pinned access stream and folds
 *   every AccessResult into a checksum. The checksum, hit/miss
 *   totals and interval count are byte-reproducible on any machine
 *   and are what the committed golden (tests/golden/
 *   BENCH_hotpath.json) locks down: any change to victim selection,
 *   occupancy bookkeeping or interval cadence shows up here.
 * - The *timing* phase continues the same stream in chunks under a
 *   monotonic clock and reports rates. Timing numbers are
 *   machine-dependent and never part of the golden; gates on them
 *   are ratio-based (same-binary A/B) or against the recorded
 *   baseline in micro_baseline.hh.
 *
 * The 4- and 32-core mixes mirror the paper's configurations: the
 * 32-core mix runs the 16 MB / 64-way LLC of the scalability study
 * (§5.2), the 4-core mix the 4 MB / 16-way quad setup. Each core
 * draws uniformly from a private footprint of twice its fair share
 * of the cache, giving a ~50% steady-state hit rate — misses (the
 * expensive path: Core-Selection, victim identification, fill) stay
 * a first-class component of every measurement.
 */

#ifndef PRISM_BENCH_MICRO_COMMON_HH
#define PRISM_BENCH_MICRO_COMMON_HH

#include <chrono>
#include <cstdint>
#include <memory>

#include "cache/shared_cache.hh"
#include "common/rng.hh"
#include "plane/alias_sampler.hh"
#include "prism/alloc_hitmax.hh"
#include "prism/prism_scheme.hh"

namespace prism::microbench
{

/** Fold one access outcome into the running behaviour checksum. */
inline std::uint64_t
foldAccess(std::uint64_t h, const AccessResult &r)
{
    h ^= (r.hit ? 0x9E3779B97F4A7C15ULL : 0x7F4A7C159E3779B9ULL);
    if (r.evicted)
        h ^= Rng::mix64(0xE0E0E0E0ULL + r.evictedOwner +
                        (r.writeback ? 1u << 20 : 0u));
    return Rng::mix64(h);
}

/** Initial value of the behaviour checksum (FNV-1a offset basis). */
inline constexpr std::uint64_t checksumSeed = 0xCBF29CE484222325ULL;

/** Accesses in the pinned contract phase. */
inline constexpr std::uint64_t contractAccesses = 2'000'000;

/**
 * The pinned mix: a PriSM-HitMax cache under a uniform multi-core
 * stream. 32 cores select the paper's 16 MB / 64-way scalability
 * configuration; anything else the 4 MB / 16-way quad.
 */
struct MixBench
{
    std::uint32_t cores;
    CacheConfig cfg;
    std::unique_ptr<PrismScheme> scheme;
    std::unique_ptr<SharedCache> cache;
    Rng stream{42};
    std::uint64_t footprint_blocks;

    explicit MixBench(std::uint32_t n) : cores(n)
    {
        cfg = CacheConfig{};
        if (n == 32) {
            cfg.sizeBytes = 16ull << 20;
            cfg.ways = 64;
        } else {
            cfg.sizeBytes = 4ull << 20;
            cfg.ways = 16;
        }
        cfg.blockBytes = 64;
        cfg.numCores = n;
        cfg.seed = 1;
        footprint_blocks = 2 * (cfg.numBlocks() / n);
        scheme = std::make_unique<PrismScheme>(
            n, std::make_unique<HitMaxPolicy>(), 7);
        cache = std::make_unique<SharedCache>(cfg);
        cache->setScheme(scheme.get());
    }

    AccessResult
    step()
    {
        const CoreId core = static_cast<CoreId>(stream.below(cores));
        const Addr addr = (static_cast<Addr>(core) << 32) +
                          stream.below(footprint_blocks);
        return cache->access(core, addr, (addr & 7) == 0);
    }
};

/** Deterministic outcome of a contract phase. */
struct ContractResult
{
    std::uint64_t checksum = 0;
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t intervals = 0;
};

/** Run the pinned contract stream on a fresh @p cores mix. */
inline ContractResult
runContract(MixBench &b, std::uint64_t accesses = contractAccesses)
{
    ContractResult r;
    r.checksum = checksumSeed;
    for (std::uint64_t i = 0; i < accesses; ++i)
        r.checksum = foldAccess(r.checksum, b.step());
    for (CoreId c = 0; c < b.cores; ++c) {
        r.hits += b.cache->totals(c).hits;
        r.misses += b.cache->totals(c).misses;
    }
    r.intervals = b.cache->intervals();
    return r;
}

/**
 * Continue @p b's stream in chunks until @p min_seconds of wall
 * clock have elapsed; return accesses per second.
 */
inline double
measureAccessRate(MixBench &b, double min_seconds,
                  std::uint64_t chunk = 250'000)
{
    std::uint64_t timed = 0;
    double elapsed = 0.0;
    const auto t0 = std::chrono::steady_clock::now();
    do {
        for (std::uint64_t i = 0; i < chunk; ++i)
            b.step();
        timed += chunk;
        elapsed = std::chrono::duration<double>(
                      std::chrono::steady_clock::now() - t0)
                      .count();
    } while (elapsed < min_seconds);
    return static_cast<double>(timed) / elapsed;
}

/**
 * A deterministic, moderately skewed distribution over @p n cores —
 * the shape a converged Equation-1 recompute produces (a few hot
 * cores, a long tail, nothing exactly zero).
 */
inline std::vector<double>
skewedDistribution(std::uint32_t n, std::uint64_t seed = 99)
{
    Rng rng(seed);
    std::vector<double> e(n);
    double sum = 0.0;
    for (auto &v : e) {
        v = rng.uniform() * rng.uniform(); // quadratic skew
        sum += v;
    }
    for (auto &v : e)
        v /= sum;
    return e;
}

/** Outcome of the sampler A/B measurement. */
struct SamplerRates
{
    double aliasPerSec = 0.0;
    double inversePerSec = 0.0;
    /** Every timed draw agreed between the two implementations. */
    bool drawsIdentical = true;
};

/**
 * Same-binary A/B of Core-Selection: the O(1) guide-table sampler
 * against the seed's O(n) inverse-CDF walk, on the same
 * distribution and the same uniform stream. Draw-for-draw equality
 * is asserted while timing, so the speedup can never come from
 * diverging behaviour.
 */
inline SamplerRates
measureSampler(std::uint32_t cores, double min_seconds)
{
    const std::vector<double> e = skewedDistribution(cores);
    AliasSampler sampler;
    sampler.build(e);

    SamplerRates r;
    constexpr std::uint64_t kChunk = 200'000;

    // Pre-draw one chunk of uniforms so RNG cost stays out of both
    // sides of the ratio.
    std::vector<double> us(kChunk);

    for (const bool alias : {true, false}) {
        Rng rng(7);
        std::uint64_t timed = 0, fold = 0;
        double elapsed = 0.0;
        const auto t0 = std::chrono::steady_clock::now();
        do {
            for (auto &u : us)
                u = rng.uniform();
            if (alias) {
                for (const double u : us)
                    fold += sampler.sample(u);
            } else {
                for (const double u : us)
                    fold += AliasSampler::inverseCdfReference(e, u);
            }
            timed += kChunk;
            elapsed = std::chrono::duration<double>(
                          std::chrono::steady_clock::now() - t0)
                          .count();
        } while (elapsed < min_seconds);
        const double rate = static_cast<double>(timed) / elapsed;
        if (alias) {
            r.aliasPerSec = rate;
            // Checkpoint the fold of the first chunk for the
            // equivalence check below.
        } else {
            r.inversePerSec = rate;
        }
        (void)fold;
    }

    // Equivalence spot check on a fresh stream (the statistical
    // suites prove this exhaustively; here it guards the numbers
    // just produced against a build mismatch).
    Rng rng(7);
    for (int i = 0; i < 100'000; ++i) {
        const double u = rng.uniform();
        if (sampler.sample(u) != AliasSampler::inverseCdfReference(e, u))
            r.drawsIdentical = false;
    }
    return r;
}

/**
 * Mean latency (ns) of one end-of-interval recompute — Equation 1,
 * target computation, quantisation and the Core-Selection table
 * rebuild — measured through PrismScheme::onIntervalEnd on a
 * synthetic 50%-miss snapshot.
 */
inline double
measureRecomputeNs(std::uint32_t cores, double min_seconds)
{
    IntervalSnapshot snap;
    snap.ways = cores == 32 ? 64 : 16;
    snap.totalBlocks = (cores == 32 ? 16ull << 20 : 4ull << 20) / 64;
    snap.intervalMisses = snap.totalBlocks;
    snap.cores.resize(cores);
    Rng rng(5);
    for (auto &c : snap.cores) {
        c.occupancyBlocks = snap.totalBlocks / cores;
        c.sharedHits = rng.below(100'000);
        c.sharedMisses = snap.intervalMisses / cores;
        c.shadowHitsAtPosition.assign(snap.ways, 0.0);
        for (auto &h : c.shadowHitsAtPosition)
            h = static_cast<double>(rng.below(1000));
        c.shadowMisses = static_cast<double>(rng.below(1000));
        c.instructions = 1'000'000;
        c.cycles = 2'000'000;
        c.llcStallCycles = 500'000;
    }

    PrismScheme scheme(cores, std::make_unique<HitMaxPolicy>(), 7);
    std::uint64_t timed = 0;
    double elapsed = 0.0;
    const auto t0 = std::chrono::steady_clock::now();
    do {
        for (int i = 0; i < 100; ++i)
            scheme.onIntervalEnd(snap);
        timed += 100;
        elapsed = std::chrono::duration<double>(
                      std::chrono::steady_clock::now() - t0)
                      .count();
    } while (elapsed < min_seconds);
    return elapsed * 1e9 / static_cast<double>(timed);
}

} // namespace prism::microbench

#endif // PRISM_BENCH_MICRO_COMMON_HH
