/**
 * @file
 * Shim binary for figure "fig04_occupancy" — the sweep spec and report
 * live in the figure registry (figures.hh); run with --help for the
 * shared driver options or use tools/prism_bench directly.
 */

#include "figures.hh"

PRISM_FIGURE_MAIN("fig04_occupancy")
