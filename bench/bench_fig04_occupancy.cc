/**
 * @file
 * Figure 4: per-core cache occupancy under PriSM-H vs UCP (quad).
 *
 * Paper series: the occupancy fraction of each benchmark when it
 * finishes its instruction budget, for every quad workload, under
 * both schemes. The paper highlights Q1 (PriSM gives more to
 * 168.wupwise), Q4 (vpr/omnetpp grow at the expense of bwaves/lbm)
 * and Q7/Q11/Q12 (art/omnetpp gain).
 */

#include "bench_common.hh"

using namespace prism;
using namespace prism::bench;

int
main()
{
    header("Figure 4: occupancy at completion, PriSM-H vs UCP (quad)",
           "allocations differ per scheme; PriSM feeds the "
           "memory-intensive cache-friendly programs");

    Runner runner(machine(4));
    Table t({"workload", "benchmark", "PriSM-H occ", "UCP occ"});
    for (const auto &w : suite(4)) {
        const auto ph = runner.run(w, SchemeKind::PrismH);
        const auto ucp = runner.run(w, SchemeKind::UCP);
        for (std::size_t c = 0; c < w.benchmarks.size(); ++c)
            t.addRow({c == 0 ? w.name : "", w.benchmarks[c],
                      Table::num(ph.occupancyAtFinish[c], 2),
                      Table::num(ucp.occupancyAtFinish[c], 2)});
    }
    printBanner(std::cout, "occupancy fraction at completion");
    t.print(std::cout);
    return 0;
}
