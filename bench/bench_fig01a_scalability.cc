/**
 * @file
 * Figure 1(a): scalability of existing schemes with core count.
 *
 * Paper series: ANTT of UCP and PIPP normalised to LRU at 4/8/16/32
 * cores (gains shrink with core count; PIPP goes above 1.0 at 32
 * cores), and absolute fairness of the way-partitioning fairness
 * scheme [9] at 4/8/16 cores (falls as cores grow).
 */

#include "bench_common.hh"

using namespace prism;
using namespace prism::bench;

int
main()
{
    header("Figure 1(a): motivation — scalability of UCP/PIPP/FairWP",
           "UCP & PIPP gains over LRU shrink with core count; "
           "way-partitioned fairness degrades from 4 to 16 cores");

    Table perf({"cores", "UCP antt/LRU", "PIPP antt/LRU"});
    for (unsigned cores : {4u, 8u, 16u, 32u}) {
        Runner runner(machine(cores));
        std::vector<RunResult> lru, ucp, pipp;
        for (const auto &w : suite(cores)) {
            lru.push_back(runner.run(w, SchemeKind::Baseline));
            ucp.push_back(runner.run(w, SchemeKind::UCP));
            pipp.push_back(runner.run(w, SchemeKind::PIPP));
        }
        perf.addRow({std::to_string(cores),
                     Table::num(geomeanNormAntt(ucp, lru)),
                     Table::num(geomeanNormAntt(pipp, lru))});
    }
    printBanner(std::cout, "ANTT normalised to LRU (lower is better)");
    perf.print(std::cout);

    Table fair({"cores", "FairWP fairness", "LRU fairness"});
    for (unsigned cores : {4u, 8u, 16u}) {
        Runner runner(machine(cores));
        std::vector<double> f_wp, f_lru;
        for (const auto &w : suite(cores)) {
            f_lru.push_back(
                runner.run(w, SchemeKind::Baseline).fairness());
            f_wp.push_back(runner.run(w, SchemeKind::FairWP).fairness());
        }
        fair.addRow({std::to_string(cores), Table::num(geomean(f_wp)),
                     Table::num(geomean(f_lru))});
    }
    printBanner(std::cout, "fairness (higher is better)");
    fair.print(std::cout);
    return 0;
}
