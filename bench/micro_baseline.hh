/**
 * @file
 * Recorded seed baseline for the hot-path gate.
 *
 * Measured at the pre-optimization tree (commit 894adb6: linear
 * inverse-CDF Core-Selection, per-block AoS metadata, per-access
 * occupancy updates, unfused victim scan) by compiling
 * bench/micro_common.hh's exact contract + timing streams against
 * that tree and taking the best of repeated runs — the conservative
 * choice: the gate compares against the *fastest* seed observed.
 *
 * Reference host: 1 vCPU Xeon @ 2.1 GHz, 260 MB L3, g++ 12, -O2.
 * All simulated LLC metadata is L3-resident on this host, so these
 * rates measure instruction-path cost, not memory capacity.
 *
 * Honest-measurement note (docs/BENCHMARKING.md): a zero-overhead
 * floor probe — the same 32-core mix against a minimal inlined
 * SoA + stamp-LRU model with no scheme, no telemetry and no
 * interval machinery — tops out near 10 M accesses/s on this host,
 * i.e. ~3.5x the seed. End-to-end access throughput therefore
 * cannot reach the 10x aspiration of the issue on this hardware no
 * matter the implementation; the achieved ~2.3-2.6x sits against
 * that ~3.5x ceiling. The 10x algorithmic win of O(1)
 * Core-Selection is demonstrated where it is measurable in
 * isolation: the sampler draws/sec A/B in the same binary
 * (`hotpath/sampler_32core`), gated at >= minSamplerSpeedup32.
 */

#ifndef PRISM_BENCH_MICRO_BASELINE_HH
#define PRISM_BENCH_MICRO_BASELINE_HH

namespace prism::microbench
{

/** Seed accesses/sec, 32-core mix (best of 4 runs, 2026-08-09). */
inline constexpr double seedMix32AccessesPerSec = 3'134'465.0;

/** Seed accesses/sec, 4-core mix (best of 4 runs, 2026-08-09). */
inline constexpr double seedMix4AccessesPerSec = 8'061'894.0;

/**
 * Gate: end-to-end accesses/sec on the 32-core mix must stay at
 * least this multiple of the recorded seed rate. Measured 2.2-2.6x
 * across runs; 1.8 leaves headroom for scheduler noise on shared
 * CI hosts while still failing on any real hot-path regression.
 */
inline constexpr double minAccessSpeedupMix32 = 1.8;

/**
 * Gate: O(1) sampler vs the seed's O(n) inverse-CDF walk at 32
 * cores, same binary, same draws. Algorithmic, machine-independent.
 */
inline constexpr double minSamplerSpeedup32 = 10.0;

} // namespace prism::microbench

#endif // PRISM_BENCH_MICRO_BASELINE_HH
