/**
 * @file
 * Declarative figure registry for the paper-reproduction harnesses.
 *
 * Every figure/table of the evaluation is described once as a
 * `Figure`: a declarative sweep spec (the (scheme × workload × seed ×
 * config) grid to simulate), a report function that renders the
 * human-readable tables from the finished sweep, and an optional
 * summary emitter for the figure's headline series in the
 * `BENCH_<id>.json` output.
 *
 * The unified `prism_bench` driver and the thin per-figure shim
 * binaries (`bench_fig02_summary` etc., kept for muscle memory) both
 * execute figures through runFigure(), which fans the sweep across a
 * thread pool (`--threads`) and emits machine-readable JSON — the
 * per-figure `main()` boilerplate this registry replaced lives on
 * only as PRISM_FIGURE_MAIN one-liners.
 */

#ifndef PRISM_BENCH_FIGURES_HH
#define PRISM_BENCH_FIGURES_HH

#include <atomic>
#include <cstdint>
#include <functional>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

#include "common/json.hh"
#include "exec/sweep.hh"

namespace prism::bench
{

/** One reproducible figure/table of the evaluation. */
struct Figure
{
    std::string id;    ///< e.g. "fig02_summary"; names the JSON file
    std::string title; ///< harness header line
    std::string paper; ///< the paper's expectation for this figure

    /** Hidden figures (test fixtures) are excluded from --all. */
    bool listed = true;

    /** Build the sweep grid (honours PRISM_BENCH_SCALE/WORKLOADS). */
    std::function<SweepSpec()> spec;

    /** Render the figure's tables from the finished sweep. */
    std::function<void(const SweepResults &, std::ostream &)> report;

    /** Emit the headline series into the JSON "summary" object. */
    std::function<void(JsonWriter &, const SweepResults &)> summary;
};

/** All registered figures, in paper order. */
const std::vector<Figure> &figureRegistry();

/** Find a figure by id; null when unknown. */
const Figure *findFigure(std::string_view id);

/** Execution options shared by prism_bench and the shim binaries. */
struct FigureRunOptions
{
    unsigned threads = 1;
    std::string outDir = ".";
    bool writeJson = true;
    /** false = omit wall-clock fields (deterministic output). */
    bool includeTiming = true;

    /**
     * When set, every job records its interval time series and the
     * combined Chrome trace is written here. Deterministic: the
     * trace is byte-identical at any --threads value (jobs appear
     * in spec order, and no wall-clock data is included).
     */
    std::string tracePath;
    /** When set, the same series as flat CSV. */
    std::string traceCsvPath;
    /** Recorder capacity for jobs the figure did not configure. */
    std::size_t traceCapacity = 4096;

    /**
     * Per-job completion heartbeat on stderr ("[done/total] id ...").
     * Off by default; completion-ordered and therefore outside the
     * determinism contract (no wall-clock data either way).
     */
    bool progress = false;

    /**
     * Diagnose every job with the analysis engine after the sweep:
     * telemetry recording is enabled on all jobs (passive), each
     * verdict prints after the tables, and the run exits non-zero
     * when any job FAILs. Verdicts derive from per-job series only,
     * so they are byte-identical at any --threads value.
     */
    bool doctor = false;
    /** When set (with doctor), write the prism-doctor-v1 file here. */
    std::string doctorJsonPath;

    // --- live metrics exposition (docs/OBSERVABILITY.md) -----------
    /**
     * prism-metrics-v1 snapshot file; "" = none. Periodic snapshots
     * (--metrics-every N, in completed jobs) are completion-ordered
     * and therefore outside the determinism contract, like
     * --progress; the final snapshot written when the sweep ends is
     * byte-identical at any --threads value.
     */
    std::string metricsOutPath;
    /** Prometheus text snapshot file; "" = none. */
    std::string metricsPromPath;
    /** Snapshot cadence in completed jobs; 0 = final only. */
    std::uint64_t metricsEvery = 0;

    // --- fault-tolerant execution (docs/RELIABILITY.md) ------------
    /**
     * Supervise every job: classify failures, retry transients with
     * deterministic backoff, quarantine repeat offenders. On by
     * default — a clean supervised sweep produces byte-identical
     * output to an unsupervised one.
     */
    bool supervise = true;
    /** Retries per job after the first attempt. */
    unsigned retries = 2;
    /** Per-attempt deadline in seconds (0 = no watchdog). */
    double deadlineSeconds = 0.0;
    /** Exec-level chaos spec (job_crash@N, ...); "" = none. */
    std::string chaosSpec;
    /** Seeds backoff jitter only; results never depend on it. */
    std::uint64_t chaosSeed = 0;

    /** Crash-safe checkpoint file; "" = no checkpointing. */
    std::string ckptPath;
    /** Flush the checkpoint after every Nth completed job. */
    unsigned ckptEvery = 1;
    /** Restore completed jobs from ckptPath before running. */
    bool resume = false;
    /**
     * Test hook: SIGKILL the process right after the Nth *executed*
     * job's checkpoint flush (0 = off). Exercises the kill/--resume
     * path from the CLI tests.
     */
    unsigned dieAfter = 0;

    /**
     * External stop flag (SIGINT/SIGTERM; non-owning). Once true,
     * queued jobs are skipped, running attempts cancel at their next
     * poll, a final checkpoint is flushed, and runFigure returns 130.
     */
    const std::atomic<bool> *stopFlag = nullptr;
};

/**
 * Run @p fig: execute its sweep under the pool (supervised by
 * default), print the tables, and (unless disabled) write
 * `<outDir>/BENCH_<id>.json` atomically.
 *
 * @return 0 on success; 1 when jobs were quarantined, the doctor
 * FAILed or an output cannot be written; 2 on bad options; 130 when
 * a stop request interrupted the sweep (state checkpointed when
 * --ckpt is set).
 */
int runFigure(const Figure &fig, const FigureRunOptions &options);

/** Shared main() implementation for the per-figure shim binaries. */
int figureMain(const char *figure_id, int argc, char **argv);

} // namespace prism::bench

/** Define a shim binary's main() running one registry figure. */
#define PRISM_FIGURE_MAIN(figure_id)                                   \
    int main(int argc, char **argv)                                    \
    {                                                                  \
        return prism::bench::figureMain(figure_id, argc, argv);        \
    }

#endif // PRISM_BENCH_FIGURES_HH
