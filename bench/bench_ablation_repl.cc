/**
 * @file
 * Ablation (extends the paper's §5.6): PriSM across replacement
 * policies.
 *
 * The paper demonstrates replacement-policy agnosticism with DIP
 * only; this harness sweeps every built-in policy (exact LRU,
 * coarse-timestamp LRU, DIP, DRRIP, random) and reports the PriSM-H
 * gain over that policy's own unmanaged baseline. The point is not
 * which policy is best, but that the two-step replacement layers on
 * all of them.
 */

#include "bench_common.hh"

using namespace prism;
using namespace prism::bench;

int
main()
{
    header("Ablation: PriSM-H over each replacement policy (quad)",
           "PriSM improves every baseline it is layered on (the paper "
           "shows DIP; this sweeps all policies)");

    Table t({"replacement", "PriSM-H antt / baseline antt"});
    for (ReplKind kind :
         {ReplKind::LRU, ReplKind::TimestampLRU, ReplKind::DIP,
          ReplKind::RRIP, ReplKind::Random}) {
        MachineConfig m = machine(4);
        m.repl = kind;
        Runner runner(m);
        std::vector<RunResult> base, ph;
        for (const auto &w : suite(4)) {
            base.push_back(runner.run(w, SchemeKind::Baseline));
            ph.push_back(runner.run(w, SchemeKind::PrismH));
        }
        t.addRow({replKindName(kind),
                  Table::num(geomeanNormAntt(ph, base))});
    }
    printBanner(std::cout,
                "ANTT normalised to the same policy unmanaged");
    t.print(std::cout);
    std::cout << "\nvalues < 1 on every row reproduce the paper's "
                 "composability claim.\n";
    return 0;
}
