/**
 * @file
 * Hot-path microbenchmark: access throughput, Core-Selection
 * draws/sec and recompute latency, emitted as a `prism-bench-v1`
 * document (BENCH_hotpath.json) so prism_doctor --compare can hold
 * the deterministic fields against tests/golden/BENCH_hotpath.json.
 *
 *   bench_micro_hotpath [--out DIR] [--no-timing] [--gate] [--smoke]
 *
 * --no-timing   contract fields only; byte-reproducible on any
 *               machine (what the golden is seeded from)
 * --gate        enforce the perf thresholds of micro_baseline.hh:
 *               exit 1 when accesses/sec falls below
 *               minAccessSpeedupMix32 x the recorded seed rate or
 *               the sampler A/B falls below minSamplerSpeedup32
 * --smoke       tiny contract + 50 ms timing loops: exercises every
 *               code path in seconds (the `perf`-label ctest smoke)
 */

#include <cstdint>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>

#include "common/json.hh"
#include "micro_baseline.hh"
#include "micro_common.hh"

using namespace prism;
using namespace prism::microbench;

namespace
{

struct Options
{
    std::string out = ".";
    bool timing = true;
    bool gate = false;
    bool smoke = false;
};

int
usage(const char *argv0)
{
    std::cerr << "usage: " << argv0
              << " [--out DIR] [--no-timing] [--gate] [--smoke]\n";
    return 2;
}

void
writeContractJob(JsonWriter &w, const char *id, std::uint32_t cores,
                 const MixBench &b, const ContractResult &r,
                 std::uint64_t accesses)
{
    w.beginObject();
    w.kv("id", id);
    w.key("config");
    w.beginObject();
    w.kv("cores", cores);
    w.kv("llc_bytes", static_cast<std::uint64_t>(b.cfg.sizeBytes));
    w.kv("llc_ways", b.cfg.ways);
    w.kv("accesses", accesses);
    w.endObject();
    w.key("result");
    w.beginObject();
    w.kv("checksum", r.checksum);
    w.kv("hits", r.hits);
    w.kv("misses", r.misses);
    w.kv("intervals", r.intervals);
    w.endObject();
    w.endObject();
}

} // namespace

int
main(int argc, char **argv)
{
    Options opt;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--out" && i + 1 < argc)
            opt.out = argv[++i];
        else if (arg == "--no-timing")
            opt.timing = false;
        else if (arg == "--gate")
            opt.gate = true;
        else if (arg == "--smoke")
            opt.smoke = true;
        else
            return usage(argv[0]);
    }
    if (opt.gate && !opt.timing) {
        std::cerr << "--gate requires timing\n";
        return 2;
    }

    const std::uint64_t accesses =
        opt.smoke ? 50'000 : contractAccesses;
    const double secs = opt.smoke ? 0.05 : 1.0;

    std::ofstream os(opt.out + "/BENCH_hotpath.json",
                     std::ios::binary);
    if (!os.is_open()) {
        std::cerr << "cannot write " << opt.out
                  << "/BENCH_hotpath.json\n";
        return 1;
    }
    JsonWriter w(os);
    w.beginObject();
    w.kv("schema", "prism-bench-v1");
    w.kv("sweep", opt.smoke ? "hotpath-smoke" : "hotpath");
    w.key("jobs");
    w.beginArray();

    // --- deterministic contract ----------------------------------
    bool ok = true;
    MixBench mix4(4);
    const ContractResult c4 = runContract(mix4, accesses);
    writeContractJob(w, "hotpath/contract_mix4", 4, mix4, c4,
                     accesses);

    MixBench mix32(32);
    const ContractResult c32 = runContract(mix32, accesses);
    writeContractJob(w, "hotpath/contract_mix32", 32, mix32, c32,
                     accesses);

    // --- sampler equivalence (+ draws/sec A/B when timed) --------
    {
        const auto e = skewedDistribution(32);
        AliasSampler sampler;
        sampler.build(e);
        bool identical = true;
        Rng rng(7);
        for (int i = 0; i < 100'000; ++i) {
            const double u = rng.uniform();
            if (sampler.sample(u) !=
                AliasSampler::inverseCdfReference(e, u))
                identical = false;
        }
        double speedup = 0.0;
        SamplerRates rates;
        if (opt.timing) {
            rates = measureSampler(32, secs);
            identical = identical && rates.drawsIdentical;
            speedup = rates.aliasPerSec / rates.inversePerSec;
        }
        ok = ok && identical;

        w.beginObject();
        w.kv("id", "hotpath/sampler_32core");
        w.key("config");
        w.beginObject();
        w.kv("cores", 32);
        w.kv("buckets", sampler.buckets());
        w.endObject();
        w.key("result");
        w.beginObject();
        w.kv("draws_identical", identical ? 1 : 0);
        if (opt.timing) {
            w.kv("alias_draws_per_sec", rates.aliasPerSec);
            w.kv("inverse_cdf_draws_per_sec", rates.inversePerSec);
            w.kv("sampler_speedup", speedup);
            if (opt.gate) {
                const bool pass = speedup >= minSamplerSpeedup32;
                w.kv("gate_ok", pass ? 1 : 0);
                if (!pass) {
                    std::cerr << "GATE: sampler speedup " << speedup
                              << "x < " << minSamplerSpeedup32
                              << "x\n";
                    ok = false;
                }
            }
        }
        w.endObject();
        w.endObject();
    }

    // --- timed end-to-end throughput -----------------------------
    if (opt.timing) {
        const double rate = measureAccessRate(mix32, secs);
        const double ratio = rate / seedMix32AccessesPerSec;

        w.beginObject();
        w.kv("id", "hotpath/throughput_mix32");
        w.key("config");
        w.beginObject();
        w.kv("cores", 32);
        w.kv("seed_accesses_per_sec", seedMix32AccessesPerSec);
        w.endObject();
        w.key("result");
        w.beginObject();
        w.kv("accesses_per_sec", rate);
        w.kv("speedup_vs_recorded_seed", ratio);
        if (opt.gate) {
            const bool pass =
                opt.smoke || ratio >= minAccessSpeedupMix32;
            w.kv("gate_min_speedup", minAccessSpeedupMix32);
            w.kv("gate_ok", pass ? 1 : 0);
            if (!pass) {
                std::cerr << "GATE: accesses/sec " << rate << " ("
                          << ratio << "x seed) < "
                          << minAccessSpeedupMix32 << "x\n";
                ok = false;
            }
        }
        w.endObject();
        w.endObject();

        const double mix4_rate = measureAccessRate(mix4, secs);
        w.beginObject();
        w.kv("id", "hotpath/throughput_mix4");
        w.key("config");
        w.beginObject();
        w.kv("cores", 4);
        w.kv("seed_accesses_per_sec", seedMix4AccessesPerSec);
        w.endObject();
        w.key("result");
        w.beginObject();
        w.kv("accesses_per_sec", mix4_rate);
        w.kv("speedup_vs_recorded_seed",
             mix4_rate / seedMix4AccessesPerSec);
        w.endObject();
        w.endObject();

        const double ns = measureRecomputeNs(32, secs);
        w.beginObject();
        w.kv("id", "hotpath/recompute_32core");
        w.key("config");
        w.beginObject();
        w.kv("cores", 32);
        w.endObject();
        w.key("result");
        w.beginObject();
        w.kv("recompute_ns", ns);
        w.endObject();
        w.endObject();
    }

    w.endArray();
    w.endObject();
    os << "\n";
    os.close();

    if (!ok) {
        std::cerr << "bench_micro_hotpath: FAILED\n";
        return 1;
    }
    return 0;
}
