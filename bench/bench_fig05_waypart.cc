/**
 * @file
 * Figure 5: fine-grained vs way-rounded enforcement of the same
 * hit-maximisation allocation policy (16 cores).
 *
 * Paper series: ANTT (normalised to LRU) of PriSM-H and of the same
 * Algorithm-1 targets rounded to integral ways and enforced by
 * way-partitioning. PriSM outperforms the way-partitioned variant on
 * all sixteen-core workloads.
 */

#include "bench_common.hh"

using namespace prism;
using namespace prism::bench;

int
main()
{
    header("Figure 5: PriSM-H vs way-partitioned Algorithm 1 (16c)",
           "fine-grained PriSM enforcement beats way-rounding of the "
           "same allocation policy on every workload");

    Runner runner(machine(16));
    Table t({"workload", "PriSM-H/LRU", "WP-HitMax/LRU"});
    std::vector<RunResult> lru, ph, wp;
    for (const auto &w : suite(16)) {
        lru.push_back(runner.run(w, SchemeKind::Baseline));
        ph.push_back(runner.run(w, SchemeKind::PrismH));
        wp.push_back(runner.run(w, SchemeKind::WPHitMax));
        const double base = lru.back().antt();
        t.addRow({w.name, Table::num(ph.back().antt() / base),
                  Table::num(wp.back().antt() / base)});
    }
    t.addRow({"geomean", Table::num(geomeanNormAntt(ph, lru)),
              Table::num(geomeanNormAntt(wp, lru))});
    printBanner(std::cout, "ANTT normalised to LRU (lower is better)");
    t.print(std::cout);
    return 0;
}
