/**
 * @file
 * Shim binary for figure "sec56_dip" — the sweep spec and report
 * live in the figure registry (figures.hh); run with --help for the
 * shared driver options or use tools/prism_bench directly.
 */

#include "figures.hh"

PRISM_FIGURE_MAIN("sec56_dip")
