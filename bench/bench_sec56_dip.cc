/**
 * @file
 * Section 5.6, "Changing the Replacement Policy": PriSM over DIP.
 *
 * Paper series: with DIP [13] as the underlying replacement policy
 * (which lacks the stack property, so UCP cannot use it), quad-core
 * PriSM-H improves 8.9% over the DIP baseline; TA-DIP performs about
 * the same as DIP.
 */

#include "bench_common.hh"

using namespace prism;
using namespace prism::bench;

int
main()
{
    header("Section 5.6: PriSM on a DIP-replacement cache (quad)",
           "PriSM-H beats the DIP baseline by ~8.9%; TA-DIP ~= DIP");

    MachineConfig m = machine(4);
    m.repl = ReplKind::DIP;
    Runner runner(m);

    Table t({"workload", "PriSM-H/DIP", "TA-DIP/DIP"});
    std::vector<RunResult> dip, ph, tadip;
    for (const auto &w : suite(4)) {
        dip.push_back(runner.run(w, SchemeKind::Baseline));
        ph.push_back(runner.run(w, SchemeKind::PrismH));
        tadip.push_back(runner.run(w, SchemeKind::TADIP));
        const double base = dip.back().antt();
        t.addRow({w.name, Table::num(ph.back().antt() / base),
                  Table::num(tadip.back().antt() / base)});
    }
    const double g_ph = geomeanNormAntt(ph, dip);
    const double g_ta = geomeanNormAntt(tadip, dip);
    t.addRow({"geomean", Table::num(g_ph), Table::num(g_ta)});
    printBanner(std::cout, "ANTT normalised to the DIP baseline");
    t.print(std::cout);
    std::cout << "\nPriSM-H gain over DIP: " << Table::pct(1.0 - g_ph)
              << " (paper: 8.9%); TA-DIP vs DIP: "
              << Table::pct(1.0 - g_ta) << " (paper: ~0%)\n";
    return 0;
}
