/**
 * @file
 * Figure 12: K-bit probability representation vs floating point.
 *
 * Paper series: performance of PriSM-H when the eviction
 * probabilities are stored as 6/8/10/12-bit integers, normalised to
 * the floating-point version — all within noise of 1.0, so 6 bits
 * suffice in hardware.
 */

#include "bench_common.hh"

using namespace prism;
using namespace prism::bench;

int
main()
{
    header("Figure 12: K-bit eviction probabilities (quad, PriSM-H)",
           "6/8/10/12-bit quantisation performs the same as floating "
           "point");

    Runner runner(machine(4));
    const std::vector<unsigned> bit_widths{6, 8, 10, 12};

    // Per-workload ANTT for float and each K.
    std::vector<RunResult> base;
    std::vector<std::vector<RunResult>> quantised(bit_widths.size());
    for (const auto &w : suite(4)) {
        base.push_back(runner.run(w, SchemeKind::PrismH));
        for (std::size_t k = 0; k < bit_widths.size(); ++k) {
            SchemeOptions opt;
            opt.probBits = bit_widths[k];
            quantised[k].push_back(
                runner.run(w, SchemeKind::PrismH, opt));
        }
    }

    Table t({"bits", "ANTT vs float (geomean)"});
    for (std::size_t k = 0; k < bit_widths.size(); ++k)
        t.addRow({std::to_string(bit_widths[k]),
                  Table::num(geomeanNormAntt(quantised[k], base))});
    printBanner(std::cout,
                "PriSM-H with K-bit probabilities / PriSM-H float");
    t.print(std::cout);
    std::cout << "\nvalues ~1.0 reproduce the paper's conclusion that "
                 "6 bits are enough.\n";
    return 0;
}
