/**
 * @file
 * Ablation (beyond the paper): the PriSM mechanism under different
 * allocation policies.
 *
 * The paper decouples the partitioning mechanism from the allocation
 * policy; this harness quantifies how much of PriSM's result comes
 * from each by running the same probabilistic manager with
 * Algorithm 1 (PriSM-H), the fairness policy (PriSM-F) and the
 * extended-UCP lookahead (PriSM-LA) side by side against UCP.
 */

#include "bench_common.hh"

using namespace prism;
using namespace prism::bench;

int
main()
{
    header("Ablation: allocation policies on the PriSM mechanism",
           "mechanism (PriSM-LA vs UCP) and allocation policy "
           "(PriSM-H vs PriSM-LA) contributions, 4 and 16 cores");

    for (unsigned cores : {4u, 16u}) {
        Runner runner(machine(cores));
        std::vector<RunResult> lru, ucp, ph, pla, pf;
        for (const auto &w : suite(cores)) {
            lru.push_back(runner.run(w, SchemeKind::Baseline));
            ucp.push_back(runner.run(w, SchemeKind::UCP));
            ph.push_back(runner.run(w, SchemeKind::PrismH));
            pla.push_back(runner.run(w, SchemeKind::PrismLA));
            pf.push_back(runner.run(w, SchemeKind::PrismF));
        }
        Table t({"scheme", "antt/LRU"});
        t.addRow({"UCP (way-partition + lookahead)",
                  Table::num(geomeanNormAntt(ucp, lru))});
        t.addRow({"PriSM-LA (mechanism + lookahead)",
                  Table::num(geomeanNormAntt(pla, lru))});
        t.addRow({"PriSM-H (mechanism + Algorithm 1)",
                  Table::num(geomeanNormAntt(ph, lru))});
        t.addRow({"PriSM-F (mechanism + Algorithm 2)",
                  Table::num(geomeanNormAntt(pf, lru))});
        printBanner(std::cout, std::to_string(cores) + " cores");
        t.print(std::cout);
    }
    return 0;
}
