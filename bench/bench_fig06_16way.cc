/**
 * @file
 * Figure 6: PriSM-H on a 16-core machine with a 16-way LLC.
 *
 * Paper series: with cores == ways the smallest way-partition
 * allocation unit is a full way (512KB of the 8MB cache), so
 * way-partitioning degenerates to one way per core; PriSM still
 * partitions at block granularity and gains 14.8% (avg) over LRU.
 */

#include "bench_common.hh"

using namespace prism;
using namespace prism::bench;

int
main()
{
    header("Figure 6: 8MB 16-way LLC shared by 16 cores",
           "PriSM-H beats LRU on every workload, ~14.8% on average; "
           "way-partitioning is the trivial 1-way-per-core split");

    MachineConfig m = machine(16);
    m.llcWays = 16; // cores == ways
    Runner runner(m);

    Table t({"workload", "PriSM-H/LRU", "1-way-per-core/LRU"});
    std::vector<RunResult> lru, ph, triv;
    for (const auto &w : suite(16)) {
        lru.push_back(runner.run(w, SchemeKind::Baseline));
        ph.push_back(runner.run(w, SchemeKind::PrismH));
        // The trivial way-partition: one way per core, never revised.
        triv.push_back(runner.run(w, SchemeKind::StaticWP));
        const double base = lru.back().antt();
        t.addRow({w.name, Table::num(ph.back().antt() / base),
                  Table::num(triv.back().antt() / base)});
    }
    t.addRow({"geomean", Table::num(geomeanNormAntt(ph, lru)),
              Table::num(geomeanNormAntt(triv, lru))});
    printBanner(std::cout, "ANTT normalised to LRU (lower is better)");
    t.print(std::cout);
    std::cout << "\nPriSM-H average gain over LRU: "
              << Table::pct(1.0 - geomeanNormAntt(ph, lru))
              << " (paper: 14.8%)\n";
    return 0;
}
