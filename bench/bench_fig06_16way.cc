/**
 * @file
 * Shim binary for figure "fig06_16way" — the sweep spec and report
 * live in the figure registry (figures.hh); run with --help for the
 * shared driver options or use tools/prism_bench directly.
 */

#include "figures.hh"

PRISM_FIGURE_MAIN("fig06_16way")
