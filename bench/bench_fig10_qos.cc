/**
 * @file
 * Figure 10: QoS — core 0 pinned to 80% of its stand-alone IPC.
 *
 * Paper series: the slowdown (IPC_shared / IPC_standalone) of core 0
 * under PriSM-Q for each 16-core workload, against the 0.8 target.
 * The paper hits the target in 38 of 41 QoS runs; cache-insensitive
 * programs sit above the target because 0.8 is below their maximum
 * possible slowdown.
 */

#include "bench_common.hh"

using namespace prism;
using namespace prism::bench;

int
main()
{
    header("Figure 10: PriSM-Q, core0 floor = 80% stand-alone IPC",
           "core 0 lands at or above the 0.80 slowdown target in "
           "nearly all workloads");

    // The grow/shrink controller needs many intervals to settle (the
    // paper's runs give it hundreds): use a faster control loop and a
    // longer run than the other harnesses.
    MachineConfig m = machine(16);
    m.instrBudget *= 2;
    m.intervalMisses = m.llcBytes / m.blockBytes / 8;
    Runner runner(m);
    Table t({"workload", "core0 benchmark", "core0 slowdown",
             "target met"});
    unsigned met = 0, total = 0;
    for (const auto &w : suite(16)) {
        const auto res = runner.run(w, SchemeKind::PrismQ);
        const double slowdown = res.ipc[0] / res.ipcStandalone[0];
        // 2% tolerance for the interval-granular controller.
        const bool ok = slowdown >= 0.8 * 0.98;
        met += ok;
        ++total;
        t.addRow({w.name, w.benchmarks[0], Table::num(slowdown),
                  ok ? "yes" : "NO"});
    }
    printBanner(std::cout,
                "IPC_shared / IPC_standalone of core 0 (target 0.80)");
    t.print(std::cout);
    std::cout << "\ntargets met: " << met << "/" << total
              << " (paper: 38/41)\n";
    return 0;
}
