/**
 * @file
 * Figure 9: absolute fairness at 16 cores.
 *
 * Paper series: fairness of LRU, way-partitioned fairness [9] and
 * PriSM-F for each sixteen-core workload. PriSM-F improves fairness
 * on every workload (23.3% over FairWP on average) and also improves
 * performance (19% over LRU).
 */

#include "bench_common.hh"

using namespace prism;
using namespace prism::bench;

int
main()
{
    header("Figure 9: fairness at 16 cores",
           "PriSM-F > FairWP > LRU on every workload; +23.3% fairness "
           "over FairWP with +19% performance over LRU");

    Runner runner(machine(16));
    Table t({"workload", "LRU", "FairWP", "PriSM-F"});
    std::vector<double> f_lru, f_wp, f_pf;
    std::vector<RunResult> lru, pf;
    for (const auto &w : suite(16)) {
        lru.push_back(runner.run(w, SchemeKind::Baseline));
        const auto wp = runner.run(w, SchemeKind::FairWP);
        pf.push_back(runner.run(w, SchemeKind::PrismF));
        f_lru.push_back(lru.back().fairness());
        f_wp.push_back(wp.fairness());
        f_pf.push_back(pf.back().fairness());
        t.addRow({w.name, Table::num(f_lru.back()),
                  Table::num(f_wp.back()), Table::num(f_pf.back())});
    }
    t.addRow({"geomean", Table::num(geomean(f_lru)),
              Table::num(geomean(f_wp)), Table::num(geomean(f_pf))});
    printBanner(std::cout, "fairness (higher is better)");
    t.print(std::cout);

    std::cout << "\nPriSM-F fairness gain over FairWP: "
              << Table::pct(geomean(f_pf) / geomean(f_wp) - 1.0)
              << " (paper: 23.3%)\n"
              << "PriSM-F performance (ANTT) vs LRU: "
              << Table::pct(1.0 - geomeanNormAntt(pf, lru))
              << " better (paper: 19%)\n";
    return 0;
}
