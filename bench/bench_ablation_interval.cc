/**
 * @file
 * Ablation (beyond the paper): sensitivity of PriSM-H to the
 * interval length W.
 *
 * The paper recomputes once every N misses; DESIGN.md documents why
 * the scaled evaluation machine uses W = N/2. This harness sweeps W
 * from N/8 to 2N and reports ANTT vs LRU, showing the plateau the
 * default sits on: too-short intervals amplify the (C-T)*N/W
 * correction into bang-bang control, too-long intervals starve the
 * allocation policy of recomputations within a scaled run.
 */

#include "bench_common.hh"

using namespace prism;
using namespace prism::bench;

int
main()
{
    header("Ablation: PriSM-H vs interval length W (quad)",
           "design choice: W = N/2 for scaled runs (paper uses N over "
           "100x longer windows)");

    Table t({"W", "PriSM-H antt/LRU"});
    for (unsigned div : {8u, 4u, 2u, 1u}) {
        MachineConfig m = machine(4);
        const std::uint64_t n = m.llcBytes / m.blockBytes;
        m.intervalMisses = n / div;
        Runner runner(m);
        std::vector<RunResult> lru, ph;
        for (const auto &w : suite(4)) {
            lru.push_back(runner.run(w, SchemeKind::Baseline));
            ph.push_back(runner.run(w, SchemeKind::PrismH));
        }
        t.addRow({"N/" + std::to_string(div),
                  Table::num(geomeanNormAntt(ph, lru))});
    }
    {
        MachineConfig m = machine(4);
        m.intervalMisses = 2 * (m.llcBytes / m.blockBytes);
        m.instrBudget *= 2; // still see a handful of intervals
        Runner runner(m);
        std::vector<RunResult> lru, ph;
        for (const auto &w : suite(4)) {
            lru.push_back(runner.run(w, SchemeKind::Baseline));
            ph.push_back(runner.run(w, SchemeKind::PrismH));
        }
        t.addRow({"2N", Table::num(geomeanNormAntt(ph, lru))});
    }
    printBanner(std::cout, "ANTT normalised to LRU (lower is better)");
    t.print(std::cout);
    return 0;
}
