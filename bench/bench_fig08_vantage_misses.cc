/**
 * @file
 * Figure 8: per-benchmark misses, PriSM normalised to Vantage (quad).
 *
 * Paper series: for each quad workload, the misses of each of the
 * four benchmarks under PriSM divided by its misses under Vantage.
 * PriSM reduces misses for at least three of the four benchmarks in
 * every quad workload, and for all four in 12 of 21.
 */

#include "bench_common.hh"

using namespace prism;
using namespace prism::bench;

int
main()
{
    header("Figure 8: per-benchmark misses, PriSM / Vantage (quad)",
           "PriSM reduces misses for >= 3 of 4 benchmarks per "
           "workload");

    MachineConfig m = machine(4);
    m.repl = ReplKind::TimestampLRU;
    Runner runner(m);

    Table t({"workload", "benchmark", "misses PriSM/Vantage"});
    unsigned improved_3of4 = 0, total = 0;
    for (const auto &w : suite(4)) {
        const auto pla = runner.run(w, SchemeKind::PrismLA);
        const auto van = runner.run(w, SchemeKind::Vantage);
        unsigned better = 0;
        for (std::size_t c = 0; c < w.benchmarks.size(); ++c) {
            const double ratio =
                static_cast<double>(pla.llcMisses[c]) /
                std::max<std::uint64_t>(1, van.llcMisses[c]);
            better += ratio <= 1.0;
            t.addRow({c == 0 ? w.name : "", w.benchmarks[c],
                      Table::num(ratio)});
        }
        improved_3of4 += better >= 3;
        ++total;
    }
    printBanner(std::cout, "normalised misses (< 1 favours PriSM)");
    t.print(std::cout);
    std::cout << "\nworkloads where PriSM reduces misses for >=3 of 4 "
                 "benchmarks: "
              << improved_3of4 << "/" << total << "\n";
    return 0;
}
