/**
 * @file
 * Figure 7: PriSM vs Vantage at 4 and 16 cores.
 *
 * Paper series: ANTT of Vantage and PriSM, both driven by the same
 * extended-UCP (sub-way lookahead) allocation policy, normalised to
 * a timestamp-LRU baseline cache. PriSM wins most quad workloads
 * (all but Q12/Q17/Q19/Q20) and all 16-core workloads; on average
 * 7.8% (quad) and 11.8% (16-core).
 */

#include "bench_common.hh"

using namespace prism;
using namespace prism::bench;

int
main()
{
    header("Figure 7: PriSM vs Vantage (same allocation policy)",
           "PriSM beats Vantage by 7.8% (4 cores) / 11.8% (16 cores) "
           "on average, normalised to timestamp-LRU");

    for (unsigned cores : {4u, 16u}) {
        MachineConfig m = machine(cores);
        m.repl = ReplKind::TimestampLRU; // common baseline [16,17]
        Runner runner(m);

        Table t({"workload", "PriSM-LA/TS-LRU", "Vantage/TS-LRU"});
        std::vector<RunResult> lru, pla, van;
        for (const auto &w : suite(cores)) {
            lru.push_back(runner.run(w, SchemeKind::Baseline));
            pla.push_back(runner.run(w, SchemeKind::PrismLA));
            van.push_back(runner.run(w, SchemeKind::Vantage));
            const double base = lru.back().antt();
            t.addRow({w.name, Table::num(pla.back().antt() / base),
                      Table::num(van.back().antt() / base)});
        }
        const double g_p = geomeanNormAntt(pla, lru);
        const double g_v = geomeanNormAntt(van, lru);
        t.addRow({"geomean", Table::num(g_p), Table::num(g_v)});
        printBanner(std::cout,
                    std::to_string(cores) +
                        " cores — ANTT normalised to TS-LRU");
        t.print(std::cout);
        std::cout << "PriSM advantage over Vantage: "
                  << Table::pct(g_v / g_p - 1.0) << " (paper: "
                  << (cores == 4 ? "7.8%" : "11.8%") << ")\n";
    }
    return 0;
}
