/**
 * @file
 * Evaluation figures: Fig. 4 (occupancy), Fig. 5 (fine-grained vs
 * way-rounded enforcement), Fig. 6 (16-way LLC), Fig. 7/8 (Vantage),
 * Fig. 9 (fairness), Fig. 10 (QoS).
 */

#include <algorithm>

#include "figures_impl.hh"
#include "telemetry/interval_recorder.hh"

namespace prism::bench
{

namespace
{

Figure
fig04()
{
    Figure f;
    f.id = "fig04_occupancy";
    f.title = "Figure 4: occupancy at completion, PriSM-H vs UCP (quad)";
    f.paper = "allocations differ per scheme; PriSM feeds the "
              "memory-intensive cache-friendly programs";

    f.spec = []() {
        SweepSpec spec;
        spec.name = "fig04_occupancy";
        // The figure reads its statistic back from the telemetry
        // recorder (CoreFinish events), so every job records.
        SchemeOptions recorded;
        recorded.telemetry.enabled = true;
        addSuite(spec, machine(4), suite(4),
                 {SchemeKind::PrismH, SchemeKind::UCP}, "", recorded);
        return spec;
    };

    f.report = [](const SweepResults &res, std::ostream &os) {
        // Each core's occupancy at completion is the value its
        // CoreFinish instant event carries — the same double the
        // runner reports as occupancyAtFinish.
        const auto occ = [](const RunResult &r, std::size_t c) {
            return telemetry::finishOccupancy(*r.recorder,
                                              static_cast<CoreId>(c));
        };
        Table t({"workload", "benchmark", "PriSM-H occ", "UCP occ"});
        for (const auto &w : suite(4)) {
            const RunResult &ph =
                res.at(SweepSpec::makeId("", w.name, SchemeKind::PrismH));
            const RunResult &ucp =
                res.at(SweepSpec::makeId("", w.name, SchemeKind::UCP));
            for (std::size_t c = 0; c < w.benchmarks.size(); ++c)
                t.addRow({c == 0 ? w.name : "", w.benchmarks[c],
                          Table::num(occ(ph, c), 2),
                          Table::num(occ(ucp, c), 2)});
        }
        printBanner(os, "occupancy fraction at completion");
        t.print(os);
    };

    // No summary: the per-job "occupancy_at_finish" arrays in the
    // jobs section already carry the whole figure.
    f.summary = nullptr;
    return f;
}

Figure
fig05()
{
    Figure f;
    f.id = "fig05_waypart";
    f.title =
        "Figure 5: PriSM-H vs way-partitioned Algorithm 1 (16c)";
    f.paper = "fine-grained PriSM enforcement beats way-rounding of "
              "the same allocation policy on every workload";

    f.spec = []() {
        SweepSpec spec;
        spec.name = "fig05_waypart";
        addSuite(spec, machine(16), suite(16),
                 {SchemeKind::Baseline, SchemeKind::PrismH,
                  SchemeKind::WPHitMax});
        return spec;
    };

    f.report = [](const SweepResults &res, std::ostream &os) {
        const auto ws = suite(16);
        const auto lru = collectSuite(res, ws, SchemeKind::Baseline);
        const auto ph = collectSuite(res, ws, SchemeKind::PrismH);
        const auto wp = collectSuite(res, ws, SchemeKind::WPHitMax);
        Table t({"workload", "PriSM-H/LRU", "WP-HitMax/LRU"});
        for (std::size_t i = 0; i < ws.size(); ++i) {
            const double base = lru[i].antt();
            t.addRow({ws[i].name, Table::num(ph[i].antt() / base),
                      Table::num(wp[i].antt() / base)});
        }
        t.addRow({"geomean", Table::num(geomeanNormAntt(ph, lru)),
                  Table::num(geomeanNormAntt(wp, lru))});
        printBanner(os, "ANTT normalised to LRU (lower is better)");
        t.print(os);
    };

    f.summary = [](JsonWriter &w, const SweepResults &res) {
        const auto ws = suite(16);
        const auto lru = collectSuite(res, ws, SchemeKind::Baseline);
        w.kv("geomean_prism_h",
             geomeanNormAntt(collectSuite(res, ws, SchemeKind::PrismH),
                             lru));
        w.kv("geomean_wp_hitmax",
             geomeanNormAntt(
                 collectSuite(res, ws, SchemeKind::WPHitMax), lru));
    };
    return f;
}

Figure
fig06()
{
    Figure f;
    f.id = "fig06_16way";
    f.title = "Figure 6: 8MB 16-way LLC shared by 16 cores";
    f.paper = "PriSM-H beats LRU on every workload, ~14.8% on average; "
              "way-partitioning is the trivial 1-way-per-core split";

    auto config = []() {
        MachineConfig m = machine(16);
        m.llcWays = 16; // cores == ways
        return m;
    };

    f.spec = [config]() {
        SweepSpec spec;
        spec.name = "fig06_16way";
        addSuite(spec, config(), suite(16),
                 {SchemeKind::Baseline, SchemeKind::PrismH,
                  SchemeKind::StaticWP});
        return spec;
    };

    f.report = [](const SweepResults &res, std::ostream &os) {
        const auto ws = suite(16);
        const auto lru = collectSuite(res, ws, SchemeKind::Baseline);
        const auto ph = collectSuite(res, ws, SchemeKind::PrismH);
        const auto triv = collectSuite(res, ws, SchemeKind::StaticWP);
        Table t({"workload", "PriSM-H/LRU", "1-way-per-core/LRU"});
        for (std::size_t i = 0; i < ws.size(); ++i) {
            const double base = lru[i].antt();
            t.addRow({ws[i].name, Table::num(ph[i].antt() / base),
                      Table::num(triv[i].antt() / base)});
        }
        t.addRow({"geomean", Table::num(geomeanNormAntt(ph, lru)),
                  Table::num(geomeanNormAntt(triv, lru))});
        printBanner(os, "ANTT normalised to LRU (lower is better)");
        t.print(os);
        os << "\nPriSM-H average gain over LRU: "
           << Table::pct(1.0 - geomeanNormAntt(ph, lru))
           << " (paper: 14.8%)\n";
    };

    f.summary = [](JsonWriter &w, const SweepResults &res) {
        const auto ws = suite(16);
        const auto lru = collectSuite(res, ws, SchemeKind::Baseline);
        const double ph_n = geomeanNormAntt(
            collectSuite(res, ws, SchemeKind::PrismH), lru);
        w.kv("geomean_prism_h", ph_n);
        w.kv("prism_h_gain", 1.0 - ph_n);
        w.kv("geomean_static_wp",
             geomeanNormAntt(
                 collectSuite(res, ws, SchemeKind::StaticWP), lru));
    };
    return f;
}

Figure
fig07()
{
    Figure f;
    f.id = "fig07_vantage";
    f.title = "Figure 7: PriSM vs Vantage (same allocation policy)";
    f.paper = "PriSM beats Vantage by 7.8% (4 cores) / 11.8% (16 "
              "cores) on average, normalised to timestamp-LRU";

    auto config = [](unsigned cores) {
        MachineConfig m = machine(cores);
        m.repl = ReplKind::TimestampLRU; // common baseline [16,17]
        return m;
    };

    f.spec = [config]() {
        SweepSpec spec;
        spec.name = "fig07_vantage";
        for (const unsigned cores : {4u, 16u})
            addSuite(spec, config(cores), suite(cores),
                     {SchemeKind::Baseline, SchemeKind::PrismLA,
                      SchemeKind::Vantage},
                     coresTag(cores));
        return spec;
    };

    f.report = [](const SweepResults &res, std::ostream &os) {
        for (const unsigned cores : {4u, 16u}) {
            const auto ws = suite(cores);
            const auto tag = coresTag(cores);
            const auto lru =
                collectSuite(res, ws, SchemeKind::Baseline, tag);
            const auto pla =
                collectSuite(res, ws, SchemeKind::PrismLA, tag);
            const auto van =
                collectSuite(res, ws, SchemeKind::Vantage, tag);
            Table t({"workload", "PriSM-LA/TS-LRU", "Vantage/TS-LRU"});
            for (std::size_t i = 0; i < ws.size(); ++i) {
                const double base = lru[i].antt();
                t.addRow({ws[i].name,
                          Table::num(pla[i].antt() / base),
                          Table::num(van[i].antt() / base)});
            }
            const double g_p = geomeanNormAntt(pla, lru);
            const double g_v = geomeanNormAntt(van, lru);
            t.addRow({"geomean", Table::num(g_p), Table::num(g_v)});
            printBanner(os, std::to_string(cores) +
                                " cores — ANTT normalised to TS-LRU");
            t.print(os);
            os << "PriSM advantage over Vantage: "
               << Table::pct(g_v / g_p - 1.0) << " (paper: "
               << (cores == 4 ? "7.8%" : "11.8%") << ")\n";
        }
    };

    f.summary = [](JsonWriter &w, const SweepResults &res) {
        w.key("advantage");
        w.beginArray();
        for (const unsigned cores : {4u, 16u}) {
            const auto ws = suite(cores);
            const auto tag = coresTag(cores);
            const auto lru =
                collectSuite(res, ws, SchemeKind::Baseline, tag);
            const double g_p = geomeanNormAntt(
                collectSuite(res, ws, SchemeKind::PrismLA, tag), lru);
            const double g_v = geomeanNormAntt(
                collectSuite(res, ws, SchemeKind::Vantage, tag), lru);
            w.beginObject();
            w.kv("cores", cores);
            w.kv("prism_la_vs_lru", g_p);
            w.kv("vantage_vs_lru", g_v);
            w.kv("prism_advantage", g_v / g_p - 1.0);
            w.endObject();
        }
        w.endArray();
    };
    return f;
}

Figure
fig08()
{
    Figure f;
    f.id = "fig08_vantage_misses";
    f.title =
        "Figure 8: per-benchmark misses, PriSM / Vantage (quad)";
    f.paper =
        "PriSM reduces misses for >= 3 of 4 benchmarks per workload";

    auto config = []() {
        MachineConfig m = machine(4);
        m.repl = ReplKind::TimestampLRU;
        return m;
    };

    f.spec = [config]() {
        SweepSpec spec;
        spec.name = "fig08_vantage_misses";
        addSuite(spec, config(), suite(4),
                 {SchemeKind::PrismLA, SchemeKind::Vantage});
        return spec;
    };

    auto improved = [](const SweepResults &res, Table *t) {
        unsigned improved_3of4 = 0, total = 0;
        for (const auto &w : suite(4)) {
            const RunResult &pla = res.at(
                SweepSpec::makeId("", w.name, SchemeKind::PrismLA));
            const RunResult &van = res.at(
                SweepSpec::makeId("", w.name, SchemeKind::Vantage));
            unsigned better = 0;
            for (std::size_t c = 0; c < w.benchmarks.size(); ++c) {
                const double ratio =
                    static_cast<double>(pla.llcMisses[c]) /
                    std::max<std::uint64_t>(1, van.llcMisses[c]);
                better += ratio <= 1.0;
                if (t)
                    t->addRow({c == 0 ? w.name : "", w.benchmarks[c],
                               Table::num(ratio)});
            }
            improved_3of4 += better >= 3;
            ++total;
        }
        return std::make_pair(improved_3of4, total);
    };

    f.report = [improved](const SweepResults &res, std::ostream &os) {
        Table t({"workload", "benchmark", "misses PriSM/Vantage"});
        const auto [good, total] = improved(res, &t);
        printBanner(os, "normalised misses (< 1 favours PriSM)");
        t.print(os);
        os << "\nworkloads where PriSM reduces misses for >=3 of 4 "
              "benchmarks: "
           << good << "/" << total << "\n";
    };

    f.summary = [improved](JsonWriter &w, const SweepResults &res) {
        const auto [good, total] = improved(res, nullptr);
        w.kv("improved_3of4", good);
        w.kv("workloads", total);
    };
    return f;
}

Figure
fig09()
{
    Figure f;
    f.id = "fig09_fairness";
    f.title = "Figure 9: fairness at 16 cores";
    f.paper = "PriSM-F > FairWP > LRU on every workload; +23.3% "
              "fairness over FairWP with +19% performance over LRU";

    f.spec = []() {
        SweepSpec spec;
        spec.name = "fig09_fairness";
        addSuite(spec, machine(16), suite(16),
                 {SchemeKind::Baseline, SchemeKind::FairWP,
                  SchemeKind::PrismF});
        return spec;
    };

    f.report = [](const SweepResults &res, std::ostream &os) {
        const auto ws = suite(16);
        const auto f_lru =
            collectFairness(res, ws, SchemeKind::Baseline);
        const auto f_wp = collectFairness(res, ws, SchemeKind::FairWP);
        const auto f_pf = collectFairness(res, ws, SchemeKind::PrismF);
        Table t({"workload", "LRU", "FairWP", "PriSM-F"});
        for (std::size_t i = 0; i < ws.size(); ++i)
            t.addRow({ws[i].name, Table::num(f_lru[i]),
                      Table::num(f_wp[i]), Table::num(f_pf[i])});
        t.addRow({"geomean", Table::num(geomean(f_lru)),
                  Table::num(geomean(f_wp)),
                  Table::num(geomean(f_pf))});
        printBanner(os, "fairness (higher is better)");
        t.print(os);

        const auto lru = collectSuite(res, ws, SchemeKind::Baseline);
        const auto pf = collectSuite(res, ws, SchemeKind::PrismF);
        os << "\nPriSM-F fairness gain over FairWP: "
           << Table::pct(geomean(f_pf) / geomean(f_wp) - 1.0)
           << " (paper: 23.3%)\n"
           << "PriSM-F performance (ANTT) vs LRU: "
           << Table::pct(1.0 - geomeanNormAntt(pf, lru))
           << " better (paper: 19%)\n";
    };

    f.summary = [](JsonWriter &w, const SweepResults &res) {
        const auto ws = suite(16);
        const auto f_wp = collectFairness(res, ws, SchemeKind::FairWP);
        const auto f_pf = collectFairness(res, ws, SchemeKind::PrismF);
        w.kv("fairness_lru",
             geomean(collectFairness(res, ws, SchemeKind::Baseline)));
        w.kv("fairness_fair_wp", geomean(f_wp));
        w.kv("fairness_prism_f", geomean(f_pf));
        w.kv("fairness_gain_vs_fair_wp",
             geomean(f_pf) / geomean(f_wp) - 1.0);
        w.kv("antt_gain_vs_lru",
             1.0 - geomeanNormAntt(
                       collectSuite(res, ws, SchemeKind::PrismF),
                       collectSuite(res, ws, SchemeKind::Baseline)));
    };
    return f;
}

Figure
fig10()
{
    Figure f;
    f.id = "fig10_qos";
    f.title = "Figure 10: PriSM-Q, core0 floor = 80% stand-alone IPC";
    f.paper = "core 0 lands at or above the 0.80 slowdown target in "
              "nearly all workloads";

    // The grow/shrink controller needs many intervals to settle (the
    // paper's runs give it hundreds): use a faster control loop and a
    // longer run than the other harnesses.
    auto config = []() {
        MachineConfig m = machine(16);
        m.instrBudget *= 2;
        m.intervalMisses = m.llcBytes / m.blockBytes / 8;
        return m;
    };

    f.spec = [config]() {
        SweepSpec spec;
        spec.name = "fig10_qos";
        addSuite(spec, config(), suite(16), {SchemeKind::PrismQ});
        return spec;
    };

    auto targets = [](const SweepResults &res, Table *t) {
        unsigned met = 0, total = 0;
        for (const auto &w : suite(16)) {
            const RunResult &r = res.at(
                SweepSpec::makeId("", w.name, SchemeKind::PrismQ));
            const double slowdown = r.ipc[0] / r.ipcStandalone[0];
            // 2% tolerance for the interval-granular controller.
            const bool ok = slowdown >= 0.8 * 0.98;
            met += ok;
            ++total;
            if (t)
                t->addRow({w.name, w.benchmarks[0],
                           Table::num(slowdown), ok ? "yes" : "NO"});
        }
        return std::make_pair(met, total);
    };

    f.report = [targets](const SweepResults &res, std::ostream &os) {
        Table t({"workload", "core0 benchmark", "core0 slowdown",
                 "target met"});
        const auto [met, total] = targets(res, &t);
        printBanner(
            os,
            "IPC_shared / IPC_standalone of core 0 (target 0.80)");
        t.print(os);
        os << "\ntargets met: " << met << "/" << total
           << " (paper: 38/41)\n";
    };

    f.summary = [targets](JsonWriter &w, const SweepResults &res) {
        const auto [met, total] = targets(res, nullptr);
        w.kv("targets_met", met);
        w.kv("workloads", total);
        w.key("core0_slowdown");
        w.beginArray();
        for (const auto &wl : suite(16)) {
            const RunResult &r = res.at(
                SweepSpec::makeId("", wl.name, SchemeKind::PrismQ));
            w.value(r.ipc[0] / r.ipcStandalone[0]);
        }
        w.endArray();
    };
    return f;
}

} // namespace

void
registerEvaluationFigures(std::vector<Figure> &out)
{
    out.push_back(fig04());
    out.push_back(fig05());
    out.push_back(fig06());
    out.push_back(fig07());
    out.push_back(fig08());
    out.push_back(fig09());
    out.push_back(fig10());
}

} // namespace prism::bench
