/**
 * @file
 * Figure registry core: lookup, execution, the shared shim main(),
 * and the hidden regression fixture sweep.
 */

#include "figures_impl.hh"

#include <atomic>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <iostream>
#include <memory>

#include "analysis/doctor.hh"
#include "analysis/series.hh"
#include "common/atomic_file.hh"
#include "exec/checkpoint.hh"
#include "telemetry/exporter.hh"
#include "telemetry/trace_writer.hh"

namespace prism::bench
{

namespace
{

/**
 * The hidden golden-regression fixture: a tiny fully pinned sweep
 * (independent of the PRISM_BENCH_* knobs) whose JSON output is
 * committed under tests/golden/ and compared field-for-field by
 * tests/test_bench_golden.cc. Guards the runner/sweep refactor and
 * every future PR against silent behavioural drift.
 */
Figure
fixtureFigure()
{
    Figure f;
    f.id = "fixture";
    f.title = "golden regression fixture (not a paper figure)";
    f.paper = "committed JSON under tests/golden/ must reproduce "
              "field-for-field";
    f.listed = false;

    auto machine = []() {
        MachineConfig m;
        m.numCores = 2;
        m.llcBytes = 256ull << 10;
        m.llcWays = 8;
        m.intervalMisses = 1024;
        m.instrBudget = 60'000;
        m.warmupInstr = 15'000;
        return m;
    };
    auto mixes = []() {
        return std::vector<Workload>{
            {"GF", {"403.gcc", "186.crafty"}},
            {"SS", {"179.art", "470.lbm"}},
        };
    };

    f.spec = [machine, mixes]() {
        SweepSpec spec;
        spec.name = "fixture";
        const MachineConfig m = machine();
        SchemeOptions quantised;
        quantised.probBits = 6;
        for (const auto &w : mixes()) {
            spec.add(m, w, SchemeKind::Baseline);
            spec.add(m, w, SchemeKind::PrismH);
            spec.add(m, w, SchemeKind::PrismH, quantised, "b6");
            spec.add(m, w, SchemeKind::FairWP);
            // One derived-seed replica exercises the seed axis.
            spec.add(m, w, SchemeKind::PrismH, {}, "", 1);
        }
        return spec;
    };

    f.report = [mixes](const SweepResults &res, std::ostream &os) {
        Table t({"workload", "scheme", "ANTT", "fairness"});
        for (const auto &w : mixes()) {
            for (const SchemeKind s :
                 {SchemeKind::Baseline, SchemeKind::PrismH,
                  SchemeKind::FairWP}) {
                const RunResult &r =
                    res.at(SweepSpec::makeId("", w.name, s));
                t.addRow({w.name, r.scheme, Table::num(r.antt()),
                          Table::num(r.fairness())});
            }
        }
        t.print(os);
    };

    f.summary = [mixes](JsonWriter &w, const SweepResults &res) {
        std::vector<double> antt;
        for (const auto &wl : mixes())
            antt.push_back(
                res.at(SweepSpec::makeId("", wl.name,
                                         SchemeKind::PrismH))
                    .antt());
        w.kv("prism_h_antt", std::span<const double>(antt));
    };
    return f;
}

/**
 * Diagnose every finished job, print the verdicts and the sweep
 * roll-up, and optionally write the prism-doctor-v1 document.
 * Verdicts are derived from each job's recorder + result in spec
 * order, so the output is byte-identical at any thread count.
 *
 * Quarantined/skipped jobs have no series to analyse; they get a
 * hand-built exec verdict instead (FAIL / WARN). When the sweep's
 * execution itself was noteworthy (retries, quarantines, torn
 * writes, a discarded checkpoint), an "exec" verdict over
 * @p exec_series is appended — clean runs keep emitting the exact
 * legacy document.
 *
 * @return 1 when any verdict FAILs (or the JSON cannot be written).
 */
int
doctorSweep(const SweepSpec &spec, const SweepOutcome &outcome,
            const FigureRunOptions &options,
            const analysis::ExecSeries &exec_series, std::ostream &os)
{
    using namespace prism::analysis;

    const bool has_reports =
        outcome.reports.size() == spec.jobs.size();

    const DoctorThresholds thresholds;
    std::vector<Verdict> verdicts;
    verdicts.reserve(spec.jobs.size());
    for (std::size_t i = 0; i < spec.jobs.size(); ++i) {
        const SweepJob &job = spec.jobs[i];
        const RunResult &r = outcome.results[i];

        if (has_reports && !outcome.reports[i].succeeded()) {
            // No result to analyse — report the execution failure.
            const JobReport &report = outcome.reports[i];
            Verdict v;
            v.run = job.id;
            Finding f;
            if (report.state == JobState::Quarantined) {
                f.check = "exec.job_quarantined";
                f.status = FindingStatus::Fail;
                f.detail = "quarantined after " +
                           std::to_string(report.attempts) +
                           " attempts";
                if (!report.failures.empty())
                    f.detail +=
                        " (last: " + report.failures.back().message +
                        ")";
            } else {
                f.check = "exec.job_skipped";
                f.status = FindingStatus::Warn;
                f.detail = "not executed (shutdown requested)";
            }
            f.value = static_cast<double>(report.attempts);
            f.hasValue = true;
            v.findings.push_back(std::move(f));
            v.overall = v.findings.back().status;
            verdicts.push_back(std::move(v));
            continue;
        }

        RunSeries s;
        if (r.recorder)
            s = seriesFromRecorder(*r.recorder, job.id);
        else
            s.name = job.id;
        attachRunResult(s, r);
        s.name = job.id; // attachRunResult does not touch the name
        if (job.scheme == SchemeKind::PrismQ)
            s.qosTargetFrac = job.options.qosTargetFrac;
        verdicts.push_back(analyze(s, thresholds));
    }

    const bool exec_noteworthy =
        exec_series.supervised &&
        ((has_reports && outcome.noteworthy()) ||
         exec_series.tornWrites > 0 ||
         exec_series.checkpointCorrupt > 0);
    if (exec_noteworthy)
        verdicts.push_back(analyzeExec(exec_series));

    os << "\n";
    for (const Verdict &v : verdicts)
        printReport(os, v);
    if (verdicts.size() > 1)
        printReport(os, rollup(verdicts));

    if (!options.doctorJsonPath.empty()) {
        const std::filesystem::path parent =
            std::filesystem::path(options.doctorJsonPath)
                .parent_path();
        if (!parent.empty()) {
            std::error_code ec; // write failure is caught below
            std::filesystem::create_directories(parent, ec);
        }
        const Status st = writeFileAtomic(
            options.doctorJsonPath, [&](std::ostream &file) {
                writeDoctorDocument(file, "sweep", verdicts,
                                    thresholds);
            });
        if (!st.ok()) {
            std::cerr << "prism_bench: cannot write "
                      << options.doctorJsonPath << ": "
                      << st.message() << "\n";
            return 1;
        }
        os << "wrote " << options.doctorJsonPath << "\n";
    }
    return worstOf(verdicts) == FindingStatus::Fail ? 1 : 0;
}

} // namespace

const std::vector<Figure> &
figureRegistry()
{
    static const std::vector<Figure> registry = []() {
        std::vector<Figure> figs;
        registerMotivationFigures(figs);
        registerEvaluationFigures(figs);
        registerAnalysisFigures(figs);
        figs.push_back(fixtureFigure());
        return figs;
    }();
    return registry;
}

const Figure *
findFigure(std::string_view id)
{
    for (const Figure &f : figureRegistry())
        if (f.id == id)
            return &f;
    return nullptr;
}

int
runFigure(const Figure &fig, const FigureRunOptions &options)
{
    std::ostream &os = std::cout;
    os << "PriSM reproduction — " << fig.title << "\n"
       << "paper: " << fig.paper << "\n"
       << "scale: budgets x" << scaleFactor() << ", "
       << (workloadCap() ? std::to_string(workloadCap())
                         : std::string("all"))
       << " workloads per suite\n";

    SweepSpec spec = fig.spec();

    // --- supervision (docs/RELIABILITY.md) -------------------------
    SupervisorConfig supervision;
    if (options.supervise) {
        supervision.enabled = true;
        supervision.maxAttempts = options.retries + 1;
        supervision.deadlineSeconds = options.deadlineSeconds;
        supervision.chaosSeed = options.chaosSeed;
        if (!options.chaosSpec.empty()) {
            if (const Status st = parseChaosSpec(options.chaosSpec,
                                                 supervision.chaos);
                !st.ok()) {
                std::cerr << "prism_bench: --chaos: " << st.message()
                          << "\n";
                return 2;
            }
        }
    } else if (!options.chaosSpec.empty()) {
        std::cerr << "prism_bench: --chaos requires supervision "
                     "(drop --no-supervise)\n";
        return 2;
    }

    // --- checkpoint restore (--resume) -----------------------------
    std::uint64_t ckpt_corrupt = 0;
    SweepResume resume_data;
    bool have_resume = false;
    if (options.resume && !options.ckptPath.empty()) {
        if (!std::filesystem::exists(options.ckptPath)) {
            os << "resume: no checkpoint at " << options.ckptPath
               << "; running the full sweep\n";
        } else {
            CheckpointData ckpt;
            const Status st = loadCheckpoint(options.ckptPath, ckpt);
            if (!st.ok()) {
                std::cerr << "prism_bench: " << st.message()
                          << "; restarting the sweep from scratch\n";
                ckpt_corrupt = 1;
            } else if (ckpt.fingerprint != sweepFingerprint(spec)) {
                std::cerr << "prism_bench: checkpoint "
                          << options.ckptPath
                          << " belongs to a different sweep "
                             "(fingerprint mismatch); restarting "
                             "from scratch\n";
                ckpt_corrupt = 1;
            } else {
                for (CheckpointJob &job : ckpt.jobs) {
                    SweepResume::Entry e;
                    e.result = std::move(job.result);
                    e.attempts = job.attempts;
                    e.failures = std::move(job.failures);
                    resume_data.completed.emplace(job.id,
                                                  std::move(e));
                }
                have_resume = !resume_data.completed.empty();
                os << "resume: restoring "
                   << resume_data.completed.size()
                   << " completed job(s) from " << options.ckptPath
                   << "\n";
            }
        }
    }

    const bool tracing =
        !options.tracePath.empty() || !options.traceCsvPath.empty();
    const bool exporting = !options.metricsOutPath.empty() ||
                           !options.metricsPromPath.empty();
    telemetry::MetricsRegistry metrics;
    if (tracing || exporting || options.doctor) {
        // Turn recording on for every job (passive observation: it
        // perturbs no simulation state, so tables and BENCH JSON are
        // unchanged). Jobs the figure already configured keep their
        // capacity.
        for (SweepJob &job : spec.jobs) {
            if (!job.options.telemetry.enabled) {
                job.options.telemetry.enabled = true;
                job.options.telemetry.capacity = options.traceCapacity;
            }
            if (tracing || exporting)
                job.options.telemetry.metrics = &metrics;
        }
    }

    // --- live metrics exposition -----------------------------------
    telemetry::MetricsExporter exporter(telemetry::ExporterConfig{
        options.metricsOutPath, options.metricsPromPath,
        options.metricsEvery});
    const auto benchSnapshot =
        [&metrics, &fig](std::uint64_t completed, std::uint64_t total,
                         std::uint64_t ops, std::uint64_t intervals,
                         std::uint64_t dropped_samples,
                         std::uint64_t dropped_events) {
            telemetry::MetricsSnapshot snap;
            snap.source = "bench";
            snap.run = fig.id;
            snap.round = completed;
            snap.ops = ops;
            snap.intervals = intervals;
            snap.jobsCompleted = completed;
            snap.jobsTotal = total;
            snap.droppedSamples = dropped_samples;
            snap.droppedEvents = dropped_events;
            snap.metrics = &metrics;
            return snap;
        };

    // --- checkpoint writer -----------------------------------------
    std::unique_ptr<CheckpointWriter> ckpt_writer;
    if (!options.ckptPath.empty()) {
        CheckpointWriter::Options wopts;
        wopts.every = options.ckptEvery;
        wopts.chaos = supervision.chaos;
        ckpt_writer = std::make_unique<CheckpointWriter>(
            options.ckptPath, spec, wopts);
        if (have_resume) {
            // Restored jobs stay in the file so a second kill still
            // resumes from the union of both runs.
            for (std::size_t i = 0; i < spec.jobs.size(); ++i) {
                const auto it =
                    resume_data.completed.find(spec.jobs[i].id);
                if (it == resume_data.completed.end())
                    continue;
                JobReport report;
                report.attempts = it->second.attempts;
                report.failures = it->second.failures;
                report.state = report.attempts > 1
                                   ? JobState::Recovered
                                   : JobState::Done;
                report.restored = true;
                ckpt_writer->seed(i, it->second.result, report);
            }
        }
    }

    SweepRunner runner(options.threads);
    if (tracing)
        runner.setMetrics(&metrics);
    runner.setSupervisor(supervision);
    if (options.stopFlag)
        runner.setStopFlag(options.stopFlag);

    // Mid-run cumulative counters for the periodic snapshots; the
    // runner serialises observer calls, so plain fields suffice.
    struct LiveTotals
    {
        std::uint64_t ops = 0;
        std::uint64_t intervals = 0;
        std::uint64_t droppedSamples = 0;
        std::uint64_t droppedEvents = 0;
    };
    auto live_totals = std::make_shared<LiveTotals>();

    const bool periodic_metrics =
        exporting && options.metricsEvery > 0;
    if (options.progress || ckpt_writer || periodic_metrics) {
        CheckpointWriter *writer = ckpt_writer.get();
        const bool progress = options.progress;
        const unsigned die_after = options.dieAfter;
        telemetry::MetricsExporter *exp =
            periodic_metrics ? &exporter : nullptr;
        auto executed = std::make_shared<std::atomic<unsigned>>(0);
        runner.setJobObserver([writer, progress, die_after, executed,
                               exp, live_totals, &benchSnapshot](
                                  const SweepJob &job,
                                  const RunResult &r,
                                  const SweepRunner::JobProgress &p) {
            if (progress) {
                if (p.state == JobState::Done ||
                    p.state == JobState::Recovered) {
                    std::cerr << "prism_bench: [" << p.done << "/"
                              << p.total << "] " << job.id
                              << " done (intervals " << r.intervals
                              << ", degraded " << r.degradedIntervals
                              << ")";
                    if (p.attempts > 1)
                        std::cerr << " [recovered, attempt "
                                  << p.attempts << "]";
                    std::cerr << "\n";
                } else {
                    std::cerr << "prism_bench: [" << p.done << "/"
                              << p.total << "] " << job.id << " "
                              << jobStateName(p.state) << " after "
                              << p.attempts << " attempt(s)\n";
                }
            }
            if (writer && p.report && p.report->succeeded()) {
                if (const Status st =
                        writer->record(p.index, r, *p.report);
                    !st.ok())
                    std::cerr
                        << "prism_bench: checkpoint write failed: "
                        << st.message() << "\n";
                const unsigned n = ++*executed;
                if (die_after && n == die_after) {
                    // Test hook: simulate a hard crash right after
                    // this job's state reached disk.
                    (void)writer->flush();
                    std::raise(SIGKILL);
                }
            }
            if (exp) {
                for (const std::uint64_t h : r.llcHits)
                    live_totals->ops += h;
                for (const std::uint64_t m : r.llcMisses)
                    live_totals->ops += m;
                live_totals->intervals += r.intervals;
                if (r.recorder) {
                    live_totals->droppedSamples +=
                        r.recorder->droppedSamples();
                    live_totals->droppedEvents +=
                        r.recorder->droppedEvents();
                }
                if (exp->due(p.done)) {
                    if (const Status st = exp->flush(benchSnapshot(
                            p.done, p.total, live_totals->ops,
                            live_totals->intervals,
                            live_totals->droppedSamples,
                            live_totals->droppedEvents));
                        !st.ok())
                        std::cerr << "prism_bench: metrics "
                                     "snapshot failed: "
                                  << st.message() << "\n";
                }
            }
        });
    }

    const SweepOutcome outcome =
        runner.run(spec, have_resume ? &resume_data : nullptr);
    const SweepResults results(spec, outcome);

    // The final snapshot recomputes its totals from the outcome in
    // spec order, so it is byte-identical at any --threads value
    // even though the periodic snapshots are completion-ordered.
    const auto flushFinalMetrics = [&]() -> Status {
        if (!exporting)
            return Status();
        std::uint64_t ops = 0, intervals = 0;
        std::uint64_t dropped_samples = 0, dropped_events = 0;
        for (const RunResult &r : outcome.results) {
            for (const std::uint64_t h : r.llcHits)
                ops += h;
            for (const std::uint64_t m : r.llcMisses)
                ops += m;
            intervals += r.intervals;
            if (r.recorder) {
                dropped_samples += r.recorder->droppedSamples();
                dropped_events += r.recorder->droppedEvents();
            }
        }
        const std::uint64_t completed =
            outcome.countState(JobState::Done) +
            outcome.countState(JobState::Recovered);
        return exporter.flush(benchSnapshot(
            completed, spec.jobs.size(), ops, intervals,
            dropped_samples, dropped_events));
    };

    if (outcome.stopped) {
        const std::uint64_t completed =
            outcome.countState(JobState::Done) +
            outcome.countState(JobState::Recovered);
        if (ckpt_writer) {
            (void)ckpt_writer->flush();
            std::cerr << "prism_bench: interrupted; " << completed
                      << " completed job(s) saved to "
                      << options.ckptPath
                      << " — rerun with --resume to continue\n";
        } else {
            std::cerr << "prism_bench: interrupted; " << completed
                      << " completed job(s) lost (run with --ckpt "
                         "FILE to make sweeps resumable)\n";
        }
        // The metrics file still gets its final state: a tailing
        // prism_top sees where the interrupted sweep stopped.
        if (const Status st = flushFinalMetrics(); !st.ok())
            std::cerr << "prism_bench: metrics snapshot failed: "
                      << st.message() << "\n";
        return 130;
    }

    const std::uint64_t quarantined =
        outcome.countState(JobState::Quarantined);
    const bool degraded = quarantined > 0;

    if (!degraded) {
        fig.report(results, os);
    } else {
        os << "\nexec: sweep degraded — " << quarantined
           << " job(s) quarantined; tables suppressed "
           "(BENCH JSON carries the per-job errors)\n";
    }

    os << "\nsweep: " << spec.jobs.size() << " jobs, "
       << outcome.standaloneSims << " stand-alone sims, "
       << Table::num(outcome.wallSeconds, 2) << " s on "
       << outcome.threads << " thread(s) ("
       << Table::num(outcome.jobsPerSecond, 2) << " jobs/s)\n";

    // --- salvaged-vs-failed manifest -------------------------------
    if (outcome.restored > 0)
        os << "exec: restored " << outcome.restored
           << " job(s) from checkpoint\n";
    const std::uint64_t recovered =
        outcome.countState(JobState::Recovered);
    if (recovered > 0)
        os << "exec: recovered " << recovered << " job(s) after "
           << outcome.retriedAttempts() << " retried attempt(s)\n";
    if (degraded) {
        os << "exec: quarantined " << quarantined << " job(s)\n";
        for (std::size_t i = 0; i < outcome.reports.size(); ++i) {
            const JobReport &report = outcome.reports[i];
            if (report.state != JobState::Quarantined)
                continue;
            std::cerr << "prism_bench: job " << spec.jobs[i].id
                      << " quarantined after " << report.attempts
                      << " attempts";
            if (!report.failures.empty())
                std::cerr << " (last error: "
                          << report.failures.back().message << ")";
            std::cerr << "\n";
        }
    }

    if (tracing) {
        std::vector<telemetry::TraceJob> trace_jobs;
        trace_jobs.reserve(spec.jobs.size() + 1);
        for (std::size_t i = 0; i < spec.jobs.size(); ++i)
            trace_jobs.push_back({spec.jobs[i].id,
                                  outcome.results[i].recorder.get()});

        // Exec timeline: retries/timeouts/quarantines as a pseudo-job
        // built from the reports in spec order (deterministic at any
        // thread count; the "interval" axis is the 1-based job spec
        // index, the value the attempt).
        std::unique_ptr<telemetry::IntervalRecorder> exec_recorder;
        if (outcome.noteworthy()) {
            std::size_t events = 0;
            for (const JobReport &r : outcome.reports)
                events += 2 * r.failures.size() + 1;
            exec_recorder =
                std::make_unique<telemetry::IntervalRecorder>(
                    events > 0 ? events : 1);
            for (std::size_t i = 0; i < outcome.reports.size(); ++i) {
                const JobReport &report = outcome.reports[i];
                for (std::size_t k = 0; k < report.failures.size();
                     ++k) {
                    telemetry::TelemetryEvent ev;
                    ev.interval = i + 1;
                    ev.value = static_cast<double>(k + 1);
                    if (report.failures[k].kind ==
                        JobErrorKind::Timeout) {
                        ev.kind = telemetry::EventKind::JobTimeout;
                        exec_recorder->addEvent(ev);
                    }
                    if (k + 2 <= report.attempts) {
                        ev.kind = telemetry::EventKind::JobRetry;
                        exec_recorder->addEvent(ev);
                    }
                }
                if (report.state == JobState::Quarantined) {
                    telemetry::TelemetryEvent ev;
                    ev.kind = telemetry::EventKind::JobQuarantine;
                    ev.interval = i + 1;
                    ev.value = static_cast<double>(report.attempts);
                    exec_recorder->addEvent(ev);
                }
            }
            trace_jobs.push_back({"exec", exec_recorder.get()});
        }

        const telemetry::TraceWriter writer; // wall time stays out
        if (!options.tracePath.empty()) {
            const Status st = writeFileAtomic(
                options.tracePath, [&](std::ostream &file) {
                    writer.writeChromeTrace(file, trace_jobs,
                                            &metrics);
                });
            if (!st.ok()) {
                std::cerr << "prism_bench: cannot write "
                          << options.tracePath << ": " << st.message()
                          << "\n";
                return 1;
            }
            os << "wrote " << options.tracePath << "\n";
        }
        if (!options.traceCsvPath.empty()) {
            const Status st = writeFileAtomic(
                options.traceCsvPath, [&](std::ostream &file) {
                    writer.writeCsv(file, trace_jobs);
                });
            if (!st.ok()) {
                std::cerr << "prism_bench: cannot write "
                          << options.traceCsvPath << ": "
                          << st.message() << "\n";
                return 1;
            }
            os << "wrote " << options.traceCsvPath << "\n";
        }

        // The trace header records drop totals, but nobody reads a
        // header they don't expect — surface truncation on the
        // console too.
        std::uint64_t dropped_samples = 0, dropped_events = 0;
        for (const RunResult &r : outcome.results) {
            if (r.recorder) {
                dropped_samples += r.recorder->droppedSamples();
                dropped_events += r.recorder->droppedEvents();
            }
        }
        if (dropped_samples || dropped_events)
            std::cerr << "prism_bench: trace truncated: "
                      << dropped_samples << " samples and "
                      << dropped_events
                      << " events dropped across the sweep (ring "
                         "capacity "
                      << options.traceCapacity
                      << "); raise --trace-capacity to keep the full "
                         "series\n";
    }

    int rc = degraded ? 1 : 0;

    if (exporting) {
        if (const Status st = flushFinalMetrics(); !st.ok()) {
            std::cerr << "prism_bench: cannot write metrics "
                         "snapshot: "
                      << st.message() << "\n";
            rc = 1;
        } else {
            if (!options.metricsOutPath.empty())
                os << "wrote " << options.metricsOutPath << "\n";
            if (!options.metricsPromPath.empty())
                os << "wrote " << options.metricsPromPath << "\n";
        }
    }

    if (options.doctor) {
        analysis::ExecSeries exec_series;
        exec_series.supervised = supervision.enabled;
        exec_series.jobs = spec.jobs.size();
        exec_series.completed =
            outcome.countState(JobState::Done) + recovered;
        exec_series.recovered = recovered;
        exec_series.quarantined = quarantined;
        exec_series.skipped = outcome.countState(JobState::Skipped);
        exec_series.retries = outcome.retriedAttempts();
        exec_series.timeouts =
            outcome.countFailures(JobErrorKind::Timeout);
        exec_series.tornWrites =
            ckpt_writer ? ckpt_writer->tornWrites() : 0;
        exec_series.checkpointCorrupt = ckpt_corrupt;
        for (std::size_t i = 0; i < outcome.reports.size(); ++i)
            if (!outcome.reports[i].succeeded())
                exec_series.failedIds.push_back(spec.jobs[i].id);
        rc |= doctorSweep(spec, outcome, options, exec_series, os);
    }

    if (options.writeJson) {
        std::error_code ec; // best-effort; write failure caught below
        std::filesystem::create_directories(options.outDir, ec);
        const std::string path =
            options.outDir + "/BENCH_" + fig.id + ".json";
        SweepJsonOptions json_options;
        json_options.includeTiming = options.includeTiming;
        std::function<void(JsonWriter &)> summary;
        // A degraded sweep has default-constructed results in the
        // grid; figure summaries index them freely, so they only run
        // over complete sweeps.
        if (fig.summary && !degraded)
            summary = [&fig, &results](JsonWriter &w) {
                fig.summary(w, results);
            };
        const Status st =
            writeFileAtomic(path, [&](std::ostream &file) {
                writeSweepJson(file, spec, outcome, json_options,
                               summary);
            });
        if (!st.ok()) {
            std::cerr << "prism_bench: cannot write " << path << ": "
                      << st.message() << "\n";
            return 1;
        }
        os << "wrote " << path << "\n";
    }

    if (ckpt_writer) {
        if (degraded) {
            // Keep the successful jobs on disk: a --resume rerun
            // retries only the quarantined ones.
            (void)ckpt_writer->flush();
            os << "checkpoint kept: " << options.ckptPath
               << " (rerun with --resume to retry the failed "
                  "job(s))\n";
        } else {
            std::remove(options.ckptPath.c_str());
        }
    }
    return rc;
}

int
figureMain(const char *figure_id, int argc, char **argv)
{
    const Figure *fig = findFigure(figure_id);
    if (!fig) {
        std::cerr << "unknown figure id '" << figure_id << "'\n";
        return 1;
    }

    FigureRunOptions options;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto value = [&]() -> std::string {
            if (i + 1 >= argc) {
                std::cerr << "missing value for " << arg << "\n";
                std::exit(2);
            }
            return argv[++i];
        };
        if (arg == "--help" || arg == "-h") {
            std::cout
                << "usage: " << argv[0] << " [options]\n"
                << "  --threads N    parallel sweep workers "
                   "(default 1)\n"
                << "  --out DIR      directory for BENCH_*.json "
                   "(default .)\n"
                << "  --no-json      tables only\n"
                << "  --no-timing    omit wall-clock JSON fields\n"
                << "  --trace PATH   write the figure's interval time "
                   "series as Chrome trace JSON\n"
                << "  --trace-csv PATH\n"
                << "                 the same series as flat CSV\n"
                << "  --trace-capacity N\n"
                << "                 intervals retained per job "
                   "(default 4096)\n"
                << "  --progress     per-job completion heartbeat on "
                   "stderr\n"
                << "  --doctor       diagnose every job after the "
                   "sweep; exit 1 on FAIL\n"
                << "  --doctor-json PATH\n"
                << "                 write the prism-doctor-v1 "
                   "verdicts (implies --doctor)\n"
                << "  --no-supervise raw execution: no retry, no "
                   "quarantine (legacy)\n"
                << "  --retries N    retries per job after the first "
                   "attempt (default 2)\n"
                << "  --deadline S   per-attempt deadline in seconds "
                   "(default: none)\n"
                << "  --chaos SPEC   inject exec faults "
                   "(job_crash@N[*K], alloc_fail@N, ...)\n"
                << "  --chaos-seed N backoff jitter seed\n"
                << "  --ckpt FILE    crash-safe checkpoint; killed "
                   "runs resume with --resume\n"
                << "  --ckpt-every N flush cadence in completed jobs "
                   "(default 1)\n"
                << "  --resume       restore completed jobs from "
                   "--ckpt FILE\n"
                << "\nPRISM_BENCH_SCALE and PRISM_BENCH_WORKLOADS "
                   "scale the sweep.\n";
            return 0;
        } else if (arg == "--threads") {
            options.threads =
                static_cast<unsigned>(std::atoi(value().c_str()));
        } else if (arg == "--out") {
            options.outDir = value();
        } else if (arg == "--no-json") {
            options.writeJson = false;
        } else if (arg == "--no-timing") {
            options.includeTiming = false;
        } else if (arg == "--trace") {
            options.tracePath = value();
        } else if (arg == "--trace-csv") {
            options.traceCsvPath = value();
        } else if (arg == "--trace-capacity") {
            const long n = std::atol(value().c_str());
            if (n <= 0) {
                std::cerr << "--trace-capacity must be at least 1\n";
                return 2;
            }
            options.traceCapacity = static_cast<std::size_t>(n);
        } else if (arg == "--progress") {
            options.progress = true;
        } else if (arg == "--doctor") {
            options.doctor = true;
        } else if (arg == "--doctor-json") {
            options.doctorJsonPath = value();
            options.doctor = true;
        } else if (arg == "--no-supervise") {
            options.supervise = false;
        } else if (arg == "--retries") {
            options.retries =
                static_cast<unsigned>(std::atoi(value().c_str()));
        } else if (arg == "--deadline") {
            options.deadlineSeconds = std::atof(value().c_str());
        } else if (arg == "--chaos") {
            options.chaosSpec = value();
        } else if (arg == "--chaos-seed") {
            options.chaosSeed = std::strtoull(value().c_str(),
                                              nullptr, 10);
        } else if (arg == "--ckpt") {
            options.ckptPath = value();
        } else if (arg == "--ckpt-every") {
            const long n = std::atol(value().c_str());
            if (n <= 0) {
                std::cerr << "--ckpt-every must be at least 1\n";
                return 2;
            }
            options.ckptEvery = static_cast<unsigned>(n);
        } else if (arg == "--resume") {
            options.resume = true;
        } else if (arg == "--die-after") {
            options.dieAfter =
                static_cast<unsigned>(std::atoi(value().c_str()));
        } else {
            std::cerr << "unknown option '" << arg << "'\n";
            return 2;
        }
    }
    if (options.resume && options.ckptPath.empty()) {
        std::cerr << "--resume requires --ckpt FILE\n";
        return 2;
    }
    return runFigure(*fig, options);
}

} // namespace prism::bench
