/**
 * @file
 * Figure registry core: lookup, execution, the shared shim main(),
 * and the hidden regression fixture sweep.
 */

#include "figures_impl.hh"

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>

#include "analysis/doctor.hh"
#include "analysis/series.hh"
#include "telemetry/trace_writer.hh"

namespace prism::bench
{

namespace
{

/**
 * The hidden golden-regression fixture: a tiny fully pinned sweep
 * (independent of the PRISM_BENCH_* knobs) whose JSON output is
 * committed under tests/golden/ and compared field-for-field by
 * tests/test_bench_golden.cc. Guards the runner/sweep refactor and
 * every future PR against silent behavioural drift.
 */
Figure
fixtureFigure()
{
    Figure f;
    f.id = "fixture";
    f.title = "golden regression fixture (not a paper figure)";
    f.paper = "committed JSON under tests/golden/ must reproduce "
              "field-for-field";
    f.listed = false;

    auto machine = []() {
        MachineConfig m;
        m.numCores = 2;
        m.llcBytes = 256ull << 10;
        m.llcWays = 8;
        m.intervalMisses = 1024;
        m.instrBudget = 60'000;
        m.warmupInstr = 15'000;
        return m;
    };
    auto mixes = []() {
        return std::vector<Workload>{
            {"GF", {"403.gcc", "186.crafty"}},
            {"SS", {"179.art", "470.lbm"}},
        };
    };

    f.spec = [machine, mixes]() {
        SweepSpec spec;
        spec.name = "fixture";
        const MachineConfig m = machine();
        SchemeOptions quantised;
        quantised.probBits = 6;
        for (const auto &w : mixes()) {
            spec.add(m, w, SchemeKind::Baseline);
            spec.add(m, w, SchemeKind::PrismH);
            spec.add(m, w, SchemeKind::PrismH, quantised, "b6");
            spec.add(m, w, SchemeKind::FairWP);
            // One derived-seed replica exercises the seed axis.
            spec.add(m, w, SchemeKind::PrismH, {}, "", 1);
        }
        return spec;
    };

    f.report = [mixes](const SweepResults &res, std::ostream &os) {
        Table t({"workload", "scheme", "ANTT", "fairness"});
        for (const auto &w : mixes()) {
            for (const SchemeKind s :
                 {SchemeKind::Baseline, SchemeKind::PrismH,
                  SchemeKind::FairWP}) {
                const RunResult &r =
                    res.at(SweepSpec::makeId("", w.name, s));
                t.addRow({w.name, r.scheme, Table::num(r.antt()),
                          Table::num(r.fairness())});
            }
        }
        t.print(os);
    };

    f.summary = [mixes](JsonWriter &w, const SweepResults &res) {
        std::vector<double> antt;
        for (const auto &wl : mixes())
            antt.push_back(
                res.at(SweepSpec::makeId("", wl.name,
                                         SchemeKind::PrismH))
                    .antt());
        w.kv("prism_h_antt", std::span<const double>(antt));
    };
    return f;
}

/**
 * Diagnose every finished job, print the verdicts and the sweep
 * roll-up, and optionally write the prism-doctor-v1 document.
 * Verdicts are derived from each job's recorder + result in spec
 * order, so the output is byte-identical at any thread count.
 *
 * @return 1 when any job FAILs (or the JSON cannot be written).
 */
int
doctorSweep(const SweepSpec &spec, const SweepOutcome &outcome,
            const FigureRunOptions &options, std::ostream &os)
{
    using namespace prism::analysis;

    const DoctorThresholds thresholds;
    std::vector<Verdict> verdicts;
    verdicts.reserve(spec.jobs.size());
    for (std::size_t i = 0; i < spec.jobs.size(); ++i) {
        const SweepJob &job = spec.jobs[i];
        const RunResult &r = outcome.results[i];
        RunSeries s;
        if (r.recorder)
            s = seriesFromRecorder(*r.recorder, job.id);
        else
            s.name = job.id;
        attachRunResult(s, r);
        s.name = job.id; // attachRunResult does not touch the name
        if (job.scheme == SchemeKind::PrismQ)
            s.qosTargetFrac = job.options.qosTargetFrac;
        verdicts.push_back(analyze(s, thresholds));
    }

    os << "\n";
    for (const Verdict &v : verdicts)
        printReport(os, v);
    if (verdicts.size() > 1)
        printReport(os, rollup(verdicts));

    if (!options.doctorJsonPath.empty()) {
        const std::filesystem::path parent =
            std::filesystem::path(options.doctorJsonPath)
                .parent_path();
        if (!parent.empty()) {
            std::error_code ec; // open failure is caught below
            std::filesystem::create_directories(parent, ec);
        }
        std::ofstream file(options.doctorJsonPath);
        if (!file) {
            std::cerr << "prism_bench: cannot write "
                      << options.doctorJsonPath << "\n";
            return 1;
        }
        writeDoctorDocument(file, "sweep", verdicts, thresholds);
        os << "wrote " << options.doctorJsonPath << "\n";
    }
    return worstOf(verdicts) == FindingStatus::Fail ? 1 : 0;
}

} // namespace

const std::vector<Figure> &
figureRegistry()
{
    static const std::vector<Figure> registry = []() {
        std::vector<Figure> figs;
        registerMotivationFigures(figs);
        registerEvaluationFigures(figs);
        registerAnalysisFigures(figs);
        figs.push_back(fixtureFigure());
        return figs;
    }();
    return registry;
}

const Figure *
findFigure(std::string_view id)
{
    for (const Figure &f : figureRegistry())
        if (f.id == id)
            return &f;
    return nullptr;
}

int
runFigure(const Figure &fig, const FigureRunOptions &options)
{
    std::ostream &os = std::cout;
    os << "PriSM reproduction — " << fig.title << "\n"
       << "paper: " << fig.paper << "\n"
       << "scale: budgets x" << scaleFactor() << ", "
       << (workloadCap() ? std::to_string(workloadCap())
                         : std::string("all"))
       << " workloads per suite\n";

    SweepSpec spec = fig.spec();

    const bool tracing =
        !options.tracePath.empty() || !options.traceCsvPath.empty();
    telemetry::MetricsRegistry metrics;
    if (tracing || options.doctor) {
        // Turn recording on for every job (passive observation: it
        // perturbs no simulation state, so tables and BENCH JSON are
        // unchanged). Jobs the figure already configured keep their
        // capacity.
        for (SweepJob &job : spec.jobs) {
            if (!job.options.telemetry.enabled) {
                job.options.telemetry.enabled = true;
                job.options.telemetry.capacity = options.traceCapacity;
            }
            if (tracing)
                job.options.telemetry.metrics = &metrics;
        }
    }

    SweepRunner runner(options.threads);
    if (tracing)
        runner.setMetrics(&metrics);
    if (options.progress)
        runner.setJobObserver([](const SweepJob &job,
                                 const RunResult &r,
                                 const SweepRunner::JobProgress &p) {
            std::cerr << "prism_bench: [" << p.done << "/" << p.total
                      << "] " << job.id << " done (intervals "
                      << r.intervals << ", degraded "
                      << r.degradedIntervals << ")\n";
        });
    const SweepOutcome outcome = runner.run(spec);
    const SweepResults results(spec, outcome);

    fig.report(results, os);

    os << "\nsweep: " << spec.jobs.size() << " jobs, "
       << outcome.standaloneSims << " stand-alone sims, "
       << Table::num(outcome.wallSeconds, 2) << " s on "
       << outcome.threads << " thread(s) ("
       << Table::num(outcome.jobsPerSecond, 2) << " jobs/s)\n";

    if (tracing) {
        std::vector<telemetry::TraceJob> trace_jobs;
        trace_jobs.reserve(spec.jobs.size());
        for (std::size_t i = 0; i < spec.jobs.size(); ++i)
            trace_jobs.push_back({spec.jobs[i].id,
                                  outcome.results[i].recorder.get()});
        const telemetry::TraceWriter writer; // wall time stays out
        if (!options.tracePath.empty()) {
            std::ofstream file(options.tracePath);
            if (!file) {
                std::cerr << "prism_bench: cannot write "
                          << options.tracePath << "\n";
                return 1;
            }
            writer.writeChromeTrace(file, trace_jobs, &metrics);
            os << "wrote " << options.tracePath << "\n";
        }
        if (!options.traceCsvPath.empty()) {
            std::ofstream file(options.traceCsvPath);
            if (!file) {
                std::cerr << "prism_bench: cannot write "
                          << options.traceCsvPath << "\n";
                return 1;
            }
            writer.writeCsv(file, trace_jobs);
            os << "wrote " << options.traceCsvPath << "\n";
        }

        // The trace header records drop totals, but nobody reads a
        // header they don't expect — surface truncation on the
        // console too.
        std::uint64_t dropped_samples = 0, dropped_events = 0;
        for (const RunResult &r : outcome.results) {
            if (r.recorder) {
                dropped_samples += r.recorder->droppedSamples();
                dropped_events += r.recorder->droppedEvents();
            }
        }
        if (dropped_samples || dropped_events)
            std::cerr << "prism_bench: trace truncated: "
                      << dropped_samples << " samples and "
                      << dropped_events
                      << " events dropped across the sweep (ring "
                         "capacity "
                      << options.traceCapacity
                      << "); raise --trace-capacity to keep the full "
                         "series\n";
    }

    int rc = 0;
    if (options.doctor)
        rc |= doctorSweep(spec, outcome, options, os);

    if (!options.writeJson)
        return rc;

    std::error_code ec; // best-effort; open failure is caught below
    std::filesystem::create_directories(options.outDir, ec);
    const std::string path =
        options.outDir + "/BENCH_" + fig.id + ".json";
    std::ofstream file(path);
    if (!file) {
        std::cerr << "prism_bench: cannot write " << path << "\n";
        return 1;
    }
    SweepJsonOptions json_options;
    json_options.includeTiming = options.includeTiming;
    std::function<void(JsonWriter &)> summary;
    if (fig.summary)
        summary = [&fig, &results](JsonWriter &w) {
            fig.summary(w, results);
        };
    writeSweepJson(file, spec, outcome, json_options, summary);
    os << "wrote " << path << "\n";
    return rc;
}

int
figureMain(const char *figure_id, int argc, char **argv)
{
    const Figure *fig = findFigure(figure_id);
    if (!fig) {
        std::cerr << "unknown figure id '" << figure_id << "'\n";
        return 1;
    }

    FigureRunOptions options;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto value = [&]() -> std::string {
            if (i + 1 >= argc) {
                std::cerr << "missing value for " << arg << "\n";
                std::exit(2);
            }
            return argv[++i];
        };
        if (arg == "--help" || arg == "-h") {
            std::cout
                << "usage: " << argv[0] << " [options]\n"
                << "  --threads N    parallel sweep workers "
                   "(default 1)\n"
                << "  --out DIR      directory for BENCH_*.json "
                   "(default .)\n"
                << "  --no-json      tables only\n"
                << "  --no-timing    omit wall-clock JSON fields\n"
                << "  --trace PATH   write the figure's interval time "
                   "series as Chrome trace JSON\n"
                << "  --trace-csv PATH\n"
                << "                 the same series as flat CSV\n"
                << "  --trace-capacity N\n"
                << "                 intervals retained per job "
                   "(default 4096)\n"
                << "  --progress     per-job completion heartbeat on "
                   "stderr\n"
                << "  --doctor       diagnose every job after the "
                   "sweep; exit 1 on FAIL\n"
                << "  --doctor-json PATH\n"
                << "                 write the prism-doctor-v1 "
                   "verdicts (implies --doctor)\n"
                << "\nPRISM_BENCH_SCALE and PRISM_BENCH_WORKLOADS "
                   "scale the sweep.\n";
            return 0;
        } else if (arg == "--threads") {
            options.threads =
                static_cast<unsigned>(std::atoi(value().c_str()));
        } else if (arg == "--out") {
            options.outDir = value();
        } else if (arg == "--no-json") {
            options.writeJson = false;
        } else if (arg == "--no-timing") {
            options.includeTiming = false;
        } else if (arg == "--trace") {
            options.tracePath = value();
        } else if (arg == "--trace-csv") {
            options.traceCsvPath = value();
        } else if (arg == "--trace-capacity") {
            const long n = std::atol(value().c_str());
            if (n <= 0) {
                std::cerr << "--trace-capacity must be at least 1\n";
                return 2;
            }
            options.traceCapacity = static_cast<std::size_t>(n);
        } else if (arg == "--progress") {
            options.progress = true;
        } else if (arg == "--doctor") {
            options.doctor = true;
        } else if (arg == "--doctor-json") {
            options.doctorJsonPath = value();
            options.doctor = true;
        } else {
            std::cerr << "unknown option '" << arg << "'\n";
            return 2;
        }
    }
    return runFigure(*fig, options);
}

} // namespace prism::bench
