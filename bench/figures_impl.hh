/**
 * @file
 * Internal plumbing shared by the figure definition files.
 */

#ifndef PRISM_BENCH_FIGURES_IMPL_HH
#define PRISM_BENCH_FIGURES_IMPL_HH

#include <initializer_list>

#include "bench_common.hh"
#include "figures.hh"

namespace prism::bench
{

// Figure definitions, grouped as in the paper; each appends its
// figures (in paper order) to the registry under construction.
void registerMotivationFigures(std::vector<Figure> &out);
void registerEvaluationFigures(std::vector<Figure> &out);
void registerAnalysisFigures(std::vector<Figure> &out);

/** Add (workload × scheme) jobs for a whole suite under one config. */
inline void
addSuite(SweepSpec &spec, const MachineConfig &m,
         const std::vector<Workload> &workloads,
         std::initializer_list<SchemeKind> schemes,
         const std::string &tag = "", const SchemeOptions &options = {})
{
    for (const auto &w : workloads)
        for (const SchemeKind s : schemes)
            spec.add(m, w, s, options, tag);
}

/** Collect one scheme's results across a suite, in suite order. */
inline std::vector<RunResult>
collectSuite(const SweepResults &results,
             const std::vector<Workload> &workloads, SchemeKind scheme,
             const std::string &tag = "")
{
    std::vector<RunResult> out;
    out.reserve(workloads.size());
    for (const auto &w : workloads)
        out.push_back(
            results.at(SweepSpec::makeId(tag, w.name, scheme)));
    return out;
}

/** Fairness values of one scheme across a suite. */
inline std::vector<double>
collectFairness(const SweepResults &results,
                const std::vector<Workload> &workloads, SchemeKind scheme,
                const std::string &tag = "")
{
    std::vector<double> out;
    out.reserve(workloads.size());
    for (const auto &w : workloads)
        out.push_back(
            results.at(SweepSpec::makeId(tag, w.name, scheme))
                .fairness());
    return out;
}

/** "c4", "c16", … — the tag used for per-core-count grids. */
inline std::string
coresTag(unsigned cores)
{
    return "c" + std::to_string(cores);
}

} // namespace prism::bench

#endif // PRISM_BENCH_FIGURES_IMPL_HH
