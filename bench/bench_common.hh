/**
 * @file
 * Shared plumbing for the figure-reproduction harnesses.
 *
 * Every binary in bench/ regenerates one table/figure of the paper.
 * Run lengths are scaled for laptop execution (see EXPERIMENTS.md);
 * two environment variables widen the sweep:
 *
 *   PRISM_BENCH_SCALE      multiply instruction budgets (default 1)
 *   PRISM_BENCH_WORKLOADS  workloads per suite (default 6; 0 = all)
 */

#ifndef PRISM_BENCH_COMMON_HH
#define PRISM_BENCH_COMMON_HH

#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "common/stats.hh"
#include "common/table.hh"
#include "sim/runner.hh"
#include "workload/suites.hh"

namespace prism::bench
{

inline double
scaleFactor()
{
    if (const char *s = std::getenv("PRISM_BENCH_SCALE"))
        return std::atof(s) > 0 ? std::atof(s) : 1.0;
    return 1.0;
}

inline unsigned
workloadCap()
{
    if (const char *s = std::getenv("PRISM_BENCH_WORKLOADS"))
        return static_cast<unsigned>(std::atoi(s));
    return 6;
}

/** The evaluation machine for @p cores with bench-scaled budgets. */
inline MachineConfig
machine(unsigned cores)
{
    MachineConfig m = MachineConfig::forCores(cores);
    const double s = scaleFactor();
    // Larger machines get shorter per-core budgets, mirroring the
    // paper's 500M (4/8 cores) vs 200M (16/32 cores) instructions.
    const double budget = cores <= 8 ? 1'500'000 : 1'000'000;
    m.instrBudget = static_cast<std::uint64_t>(budget * s);
    m.warmupInstr = m.instrBudget / 3;
    return m;
}

/** The workload suite for @p cores, capped by PRISM_BENCH_WORKLOADS. */
inline std::vector<Workload>
suite(unsigned cores)
{
    auto all = suites::forCoreCount(cores);
    const unsigned cap = workloadCap();
    if (cap > 0 && all.size() > cap)
        all.resize(cap);
    return all;
}

/** Geomean of ANTT over @p results normalised to @p baseline. */
inline double
geomeanNormAntt(const std::vector<RunResult> &results,
                const std::vector<RunResult> &baseline)
{
    std::vector<double> ratios;
    for (std::size_t i = 0; i < results.size(); ++i)
        ratios.push_back(results[i].antt() / baseline[i].antt());
    return geomean(ratios);
}

/** Print the standard harness header. */
inline void
header(const std::string &what, const std::string &paper_expectation)
{
    std::cout << "PriSM reproduction — " << what << "\n"
              << "paper: " << paper_expectation << "\n"
              << "scale: budgets x" << scaleFactor() << ", "
              << (workloadCap() ? std::to_string(workloadCap())
                                : std::string("all"))
              << " workloads per suite\n";
}

} // namespace prism::bench

#endif // PRISM_BENCH_COMMON_HH
