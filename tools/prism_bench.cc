/**
 * @file
 * prism_bench: unified driver for every figure-reproduction sweep.
 *
 * Replaces the per-figure main() boilerplate: figures are declarative
 * sweep specs in the registry (bench/figures.hh), executed here across
 * a thread pool with deterministic per-job seeding — the tables and
 * the BENCH_<id>.json files are bit-identical at every --threads
 * value (timing fields aside). See docs/BENCHMARKING.md.
 *
 * Sweeps run supervised by default (docs/RELIABILITY.md): failing
 * jobs are retried with deterministic backoff and quarantined after
 * their attempt budget, so a sweep always completes with a
 * salvaged-vs-failed manifest. `--ckpt FILE` makes the run
 * crash-safe — a killed or interrupted sweep resumes with `--resume`
 * and merges to byte-identical output. SIGINT/SIGTERM flush a final
 * checkpoint before exiting.
 */

#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "common/stop_signal.hh"
#include "figures.hh"

namespace
{

int
usage(std::ostream &os, const char *argv0)
{
    os << "usage: " << argv0 << " [options] [figure-id ...]\n"
       << "\n"
       << "  --all          run every listed figure\n"
       << "  --list         print the figure ids and exit\n"
       << "  --threads N    parallel sweep workers (default 1)\n"
       << "  --out DIR      directory for BENCH_*.json (default .)\n"
       << "  --no-json      tables only\n"
       << "  --no-timing    omit wall-clock JSON fields\n"
       << "  --trace PATH   record every job's interval time series\n"
       << "                 and write one Chrome trace JSON (single\n"
       << "                 figure only; byte-identical at any\n"
       << "                 --threads value)\n"
       << "  --trace-csv PATH\n"
       << "                 the same series as flat CSV\n"
       << "  --trace-capacity N\n"
       << "                 intervals retained per job (default 4096)\n"
       << "  --progress     per-job completion heartbeat on stderr\n"
       << "                 (job key, done/total, intervals, degraded\n"
       << "                 count; completion-ordered, no wall-clock)\n"
       << "  --doctor       run the control-loop diagnostics on every\n"
       << "                 job after the sweep and print one verdict\n"
       << "                 per job plus a roll-up; exit 1 on FAIL\n"
       << "  --doctor-json PATH\n"
       << "                 write the verdicts as a prism-doctor-v1\n"
       << "                 document (implies --doctor; single figure\n"
       << "                 only; byte-identical at any --threads)\n"
       << "  --metrics-out PATH\n"
       << "                 maintain a prism-metrics-v1 snapshot of\n"
       << "                 sweep progress (single figure only; the\n"
       << "                 final snapshot is byte-identical at any\n"
       << "                 --threads value)\n"
       << "  --metrics-prom PATH\n"
       << "                 the same snapshot as Prometheus text\n"
       << "  --metrics-every N\n"
       << "                 refresh the snapshot every N completed\n"
       << "                 jobs (completion-ordered, like\n"
       << "                 --progress; 0 = final snapshot only)\n"
       << "\n"
       << "fault tolerance (docs/RELIABILITY.md):\n"
       << "  --no-supervise raw execution: no retry, no quarantine;\n"
       << "                 a throwing job aborts the process\n"
       << "  --retries N    retries per job after the first attempt\n"
       << "                 (default 2; transients and timeouts only)\n"
       << "  --deadline S   per-attempt deadline in seconds; stalled\n"
       << "                 jobs are cancelled and retried (default:\n"
       << "                 no watchdog)\n"
       << "  --chaos SPEC   inject exec-level faults, e.g.\n"
       << "                 'job_crash@3*1,alloc_fail@4' — kind@job\n"
       << "                 [+phase][*attempts]; kinds: job_crash,\n"
       << "                 job_stall, torn_write, alloc_fail\n"
       << "  --chaos-seed N seed for backoff jitter (results never\n"
       << "                 depend on it)\n"
       << "  --ckpt FILE    crash-safe checkpoint (*.ckpt.json):\n"
       << "                 completed jobs are flushed atomically so\n"
       << "                 a killed run can resume (single figure\n"
       << "                 only)\n"
       << "  --ckpt-every N flush cadence in completed jobs\n"
       << "                 (default 1)\n"
       << "  --resume       restore completed jobs from --ckpt FILE;\n"
       << "                 the merged output is byte-identical to an\n"
       << "                 uninterrupted run\n"
       << "\n"
       << "environment: PRISM_BENCH_SCALE multiplies instruction\n"
       << "budgets; PRISM_BENCH_WORKLOADS caps workloads per suite\n"
       << "(0 = all).\n";
    return &os == &std::cerr ? 2 : 0;
}

void
list(std::ostream &os)
{
    for (const auto &fig : prism::bench::figureRegistry())
        if (fig.listed)
            os << fig.id << "\n              " << fig.title << "\n";
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace prism::bench;

    FigureRunOptions options;
    bool run_all = false;
    std::vector<std::string> ids;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto value = [&]() -> std::string {
            if (i + 1 >= argc) {
                std::cerr << "missing value for " << arg << "\n";
                std::exit(2);
            }
            return argv[++i];
        };
        if (arg == "--help" || arg == "-h") {
            return usage(std::cout, argv[0]);
        } else if (arg == "--list") {
            list(std::cout);
            return 0;
        } else if (arg == "--all") {
            run_all = true;
        } else if (arg == "--threads") {
            options.threads =
                static_cast<unsigned>(std::atoi(value().c_str()));
        } else if (arg == "--out") {
            options.outDir = value();
        } else if (arg == "--no-json") {
            options.writeJson = false;
        } else if (arg == "--no-timing") {
            options.includeTiming = false;
        } else if (arg == "--trace") {
            options.tracePath = value();
        } else if (arg == "--trace-csv") {
            options.traceCsvPath = value();
        } else if (arg == "--trace-capacity") {
            const long n = std::atol(value().c_str());
            if (n <= 0) {
                std::cerr << "--trace-capacity must be at least 1\n";
                return 2;
            }
            options.traceCapacity = static_cast<std::size_t>(n);
        } else if (arg == "--progress") {
            options.progress = true;
        } else if (arg == "--doctor") {
            options.doctor = true;
        } else if (arg == "--doctor-json") {
            options.doctorJsonPath = value();
            options.doctor = true;
        } else if (arg == "--metrics-out") {
            options.metricsOutPath = value();
        } else if (arg == "--metrics-prom") {
            options.metricsPromPath = value();
        } else if (arg == "--metrics-every") {
            options.metricsEvery =
                std::strtoull(value().c_str(), nullptr, 10);
        } else if (arg == "--no-supervise") {
            options.supervise = false;
        } else if (arg == "--retries") {
            options.retries =
                static_cast<unsigned>(std::atoi(value().c_str()));
        } else if (arg == "--deadline") {
            options.deadlineSeconds = std::atof(value().c_str());
        } else if (arg == "--chaos") {
            options.chaosSpec = value();
        } else if (arg == "--chaos-seed") {
            options.chaosSeed =
                std::strtoull(value().c_str(), nullptr, 10);
        } else if (arg == "--ckpt") {
            options.ckptPath = value();
        } else if (arg == "--ckpt-every") {
            const long n = std::atol(value().c_str());
            if (n <= 0) {
                std::cerr << "--ckpt-every must be at least 1\n";
                return 2;
            }
            options.ckptEvery = static_cast<unsigned>(n);
        } else if (arg == "--resume") {
            options.resume = true;
        } else if (arg == "--die-after") {
            // Undocumented test hook: SIGKILL after the Nth executed
            // job's checkpoint flush (tests/test_resume.cc).
            options.dieAfter =
                static_cast<unsigned>(std::atoi(value().c_str()));
        } else if (!arg.empty() && arg[0] == '-') {
            std::cerr << "unknown option '" << arg << "'\n";
            return usage(std::cerr, argv[0]);
        } else {
            ids.push_back(arg);
        }
    }

    if (run_all) {
        for (const auto &fig : figureRegistry())
            if (fig.listed)
                ids.push_back(fig.id);
    }
    if (ids.empty()) {
        std::cerr << "no figures selected\n";
        return usage(std::cerr, argv[0]);
    }
    if (ids.size() > 1 && (!options.tracePath.empty() ||
                           !options.traceCsvPath.empty())) {
        std::cerr << "--trace/--trace-csv write one file: select a "
                     "single figure\n";
        return 2;
    }
    if (ids.size() > 1 && !options.doctorJsonPath.empty()) {
        std::cerr << "--doctor-json writes one file: select a single "
                     "figure\n";
        return 2;
    }
    if (ids.size() > 1 && (!options.metricsOutPath.empty() ||
                           !options.metricsPromPath.empty())) {
        std::cerr << "--metrics-out/--metrics-prom write one file: "
                     "select a single figure\n";
        return 2;
    }
    if (options.metricsEvery > 0 &&
        options.metricsOutPath.empty() &&
        options.metricsPromPath.empty()) {
        std::cerr << "--metrics-every needs --metrics-out or "
                     "--metrics-prom\n";
        return 2;
    }
    if (options.resume && options.ckptPath.empty()) {
        std::cerr << "--resume requires --ckpt FILE\n";
        return 2;
    }
    if (ids.size() > 1 && !options.ckptPath.empty()) {
        std::cerr << "--ckpt writes one file: select a single "
                     "figure\n";
        return 2;
    }

    // A stop request drains the sweep cooperatively: queued jobs are
    // skipped, running attempts cancel at their next poll, and the
    // checkpoint (when configured) gets a final flush before exit.
    // The handler is the shared one prism_serve installs too
    // (common/stop_signal.hh); both drivers exit 130 after their
    // final flushes.
    prism::installStopHandlers();
    options.stopFlag = &prism::stopRequested();

    int rc = 0;
    for (std::size_t i = 0; i < ids.size(); ++i) {
        const Figure *fig = findFigure(ids[i]);
        if (!fig) {
            std::cerr << "unknown figure id '" << ids[i]
                      << "' (see --list)\n";
            return 2;
        }
        if (i > 0)
            std::cout << "\n";
        const int fig_rc = runFigure(*fig, options);
        rc |= fig_rc;
        if (fig_rc == 130) {
            // Interrupted: state is checkpointed, stop the batch.
            rc = 130;
            break;
        }
    }
    return rc;
}
