/**
 * @file
 * prism_bench: unified driver for every figure-reproduction sweep.
 *
 * Replaces the per-figure main() boilerplate: figures are declarative
 * sweep specs in the registry (bench/figures.hh), executed here across
 * a thread pool with deterministic per-job seeding — the tables and
 * the BENCH_<id>.json files are bit-identical at every --threads
 * value (timing fields aside). See docs/BENCHMARKING.md.
 */

#include <iostream>
#include <string>
#include <vector>

#include "figures.hh"

namespace
{

int
usage(std::ostream &os, const char *argv0)
{
    os << "usage: " << argv0 << " [options] [figure-id ...]\n"
       << "\n"
       << "  --all          run every listed figure\n"
       << "  --list         print the figure ids and exit\n"
       << "  --threads N    parallel sweep workers (default 1)\n"
       << "  --out DIR      directory for BENCH_*.json (default .)\n"
       << "  --no-json      tables only\n"
       << "  --no-timing    omit wall-clock JSON fields\n"
       << "  --trace PATH   record every job's interval time series\n"
       << "                 and write one Chrome trace JSON (single\n"
       << "                 figure only; byte-identical at any\n"
       << "                 --threads value)\n"
       << "  --trace-csv PATH\n"
       << "                 the same series as flat CSV\n"
       << "  --trace-capacity N\n"
       << "                 intervals retained per job (default 4096)\n"
       << "  --progress     per-job completion heartbeat on stderr\n"
       << "                 (job key, done/total, intervals, degraded\n"
       << "                 count; completion-ordered, no wall-clock)\n"
       << "  --doctor       run the control-loop diagnostics on every\n"
       << "                 job after the sweep and print one verdict\n"
       << "                 per job plus a roll-up; exit 1 on FAIL\n"
       << "  --doctor-json PATH\n"
       << "                 write the verdicts as a prism-doctor-v1\n"
       << "                 document (implies --doctor; single figure\n"
       << "                 only; byte-identical at any --threads)\n"
       << "\n"
       << "environment: PRISM_BENCH_SCALE multiplies instruction\n"
       << "budgets; PRISM_BENCH_WORKLOADS caps workloads per suite\n"
       << "(0 = all).\n";
    return &os == &std::cerr ? 2 : 0;
}

void
list(std::ostream &os)
{
    for (const auto &fig : prism::bench::figureRegistry())
        if (fig.listed)
            os << fig.id << "\n              " << fig.title << "\n";
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace prism::bench;

    FigureRunOptions options;
    bool run_all = false;
    std::vector<std::string> ids;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto value = [&]() -> std::string {
            if (i + 1 >= argc) {
                std::cerr << "missing value for " << arg << "\n";
                std::exit(2);
            }
            return argv[++i];
        };
        if (arg == "--help" || arg == "-h") {
            return usage(std::cout, argv[0]);
        } else if (arg == "--list") {
            list(std::cout);
            return 0;
        } else if (arg == "--all") {
            run_all = true;
        } else if (arg == "--threads") {
            options.threads =
                static_cast<unsigned>(std::atoi(value().c_str()));
        } else if (arg == "--out") {
            options.outDir = value();
        } else if (arg == "--no-json") {
            options.writeJson = false;
        } else if (arg == "--no-timing") {
            options.includeTiming = false;
        } else if (arg == "--trace") {
            options.tracePath = value();
        } else if (arg == "--trace-csv") {
            options.traceCsvPath = value();
        } else if (arg == "--trace-capacity") {
            const long n = std::atol(value().c_str());
            if (n <= 0) {
                std::cerr << "--trace-capacity must be at least 1\n";
                return 2;
            }
            options.traceCapacity = static_cast<std::size_t>(n);
        } else if (arg == "--progress") {
            options.progress = true;
        } else if (arg == "--doctor") {
            options.doctor = true;
        } else if (arg == "--doctor-json") {
            options.doctorJsonPath = value();
            options.doctor = true;
        } else if (!arg.empty() && arg[0] == '-') {
            std::cerr << "unknown option '" << arg << "'\n";
            return usage(std::cerr, argv[0]);
        } else {
            ids.push_back(arg);
        }
    }

    if (run_all) {
        for (const auto &fig : figureRegistry())
            if (fig.listed)
                ids.push_back(fig.id);
    }
    if (ids.empty()) {
        std::cerr << "no figures selected\n";
        return usage(std::cerr, argv[0]);
    }
    if (ids.size() > 1 && (!options.tracePath.empty() ||
                           !options.traceCsvPath.empty())) {
        std::cerr << "--trace/--trace-csv write one file: select a "
                     "single figure\n";
        return 2;
    }
    if (ids.size() > 1 && !options.doctorJsonPath.empty()) {
        std::cerr << "--doctor-json writes one file: select a single "
                     "figure\n";
        return 2;
    }

    int rc = 0;
    for (std::size_t i = 0; i < ids.size(); ++i) {
        const Figure *fig = findFigure(ids[i]);
        if (!fig) {
            std::cerr << "unknown figure id '" << ids[i]
                      << "' (see --list)\n";
            return 2;
        }
        if (i > 0)
            std::cout << "\n";
        rc |= runFigure(*fig, options);
    }
    return rc;
}
