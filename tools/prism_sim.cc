/**
 * @file
 * prism_sim — command-line driver for the PriSM simulator.
 *
 * Runs a multi-programmed workload on the paper's evaluation machine
 * under any of the built-in cache-management schemes and prints
 * per-core statistics plus the summary metrics.
 *
 * Examples:
 *   prism_sim --cores 4 --workload Q7 --scheme PriSM-H
 *   prism_sim --mix 179.art,470.lbm,403.gcc,300.twolf --scheme UCP
 *   prism_sim --cores 16 --workload S3 --scheme PriSM-F --csv
 *   prism_sim --checked --faults nan@2,occ@3 --stats
 *   prism_sim --list-benchmarks
 *
 * Exit codes: 0 success, 1 runtime failure, 2 usage/configuration
 * error (unknown flag, malformed number, invalid machine, bad fault
 * spec).
 */

#include <charconv>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>

#include "common/atomic_file.hh"
#include "common/table.hh"
#include "fault/fault_injector.hh"
#include "sim/runner.hh"
#include "telemetry/trace_writer.hh"
#include "workload/profiles.hh"

using namespace prism;

namespace
{

struct Options
{
    unsigned cores = 4;
    bool cores_set = false;
    std::string workload;
    std::string mix;
    std::string scheme = "PriSM-H";
    std::string repl = "LRU";
    std::uint64_t instr = 1'500'000;
    std::uint64_t warmup = 500'000;
    std::uint64_t interval = 0;
    std::uint64_t seed = 0x5EED0001ULL;
    unsigned bits = 0;
    double qos_frac = 0.8;
    std::string faults;
    bool checked = false;
    bool csv = false;
    bool stats = false;
    std::string stats_json;
    std::string trace;
    std::string trace_csv;
    std::uint64_t trace_capacity = 4096;
    bool trace_wall = false;
};

void
usage(std::ostream &os)
{
    os <<
        "usage: prism_sim [options]\n"
        "  --cores N            4, 8, 16 or 32 (default 4)\n"
        "  --workload NAME      suite mix, e.g. Q7, E3, S12, T5\n"
        "  --mix a,b,c,...      explicit benchmark list (one per core)\n"
        "  --scheme NAME        LRU | UCP | PIPP | TA-DIP | FairWP |\n"
        "                       Vantage | PriSM-H | PriSM-F | PriSM-Q |\n"
        "                       PriSM-LA | PriSM-WM | WP-HitMax |\n"
        "                       StaticWP\n"
        "                       (default PriSM-H)\n"
        "  --repl NAME          LRU | TS-LRU | DIP | RRIP | Random\n"
        "  --instr N            instructions per core (default 1.5M)\n"
        "  --warmup N           warm-up instructions (default 500k)\n"
        "  --interval W         recompute interval in misses\n"
        "                       (0 = paper default, half the blocks)\n"
        "  --seed N             simulation seed\n"
        "  --bits K             K-bit PriSM probabilities (0 = float)\n"
        "  --qos-frac F         PriSM-Q IPC floor fraction (default 0.8)\n"
        "  --faults SPEC        inject faults at interval boundaries;\n"
        "                       SPEC = kind@period[+phase],... with kind\n"
        "                       occ|stale|drop|nan|inf|quant|shadow\n"
        "                       (e.g. nan@4,occ@3+1,drop@10)\n"
        "  --checked            audit invariants each interval; repair\n"
        "                       or degrade instead of aborting\n"
        "  --csv                machine-readable output\n"
        "  --stats              dump raw simulator statistics\n"
        "  --stats-json PATH    write the statistics as JSON\n"
        "  --trace PATH         record the per-interval time series\n"
        "                       and write it as Chrome trace JSON\n"
        "                       (load in chrome://tracing / Perfetto)\n"
        "  --trace-csv PATH     also/instead write the series as CSV\n"
        "  --trace-capacity N   intervals retained (default 4096;\n"
        "                       oldest dropped beyond that)\n"
        "  --trace-wall         include wall-clock span aggregates in\n"
        "                       the trace (breaks byte-determinism)\n"
        "  --list-benchmarks    print the profile library and exit\n"
        "  --list-workloads     print the suite mixes and exit\n";
}

/** Diagnose a usage error and exit with code 2. */
[[noreturn]] void
cliError(const std::string &msg)
{
    std::cerr << "prism_sim: " << msg << "\n\n";
    usage(std::cerr);
    std::exit(2);
}

std::uint64_t
parseU64(const std::string &flag, const std::string &text)
{
    std::uint64_t v = 0;
    const char *end = text.data() + text.size();
    const auto res = std::from_chars(text.data(), end, v);
    if (text.empty() || res.ec != std::errc() || res.ptr != end)
        cliError("invalid number '" + text + "' for " + flag);
    return v;
}

unsigned
parseUnsigned(const std::string &flag, const std::string &text)
{
    const std::uint64_t v = parseU64(flag, text);
    if (v > 0xFFFFFFFFull)
        cliError("value '" + text + "' for " + flag +
                 " is out of range");
    return static_cast<unsigned>(v);
}

double
parseDouble(const std::string &flag, const std::string &text)
{
    char *end = nullptr;
    const double v = std::strtod(text.c_str(), &end);
    if (text.empty() || end != text.c_str() + text.size())
        cliError("invalid number '" + text + "' for " + flag);
    return v;
}

SchemeKind
parseScheme(const std::string &name)
{
    SchemeKind kind;
    if (!schemeFromName(name, kind))
        cliError("unknown scheme '" + name + "'");
    return kind;
}

ReplKind
parseRepl(const std::string &name)
{
    ReplKind kind;
    if (!replFromName(name, kind))
        cliError("unknown replacement policy '" + name + "'");
    return kind;
}

std::vector<std::string>
splitMix(const std::string &mix)
{
    std::vector<std::string> out;
    std::istringstream in(mix);
    std::string item;
    while (std::getline(in, item, ','))
        if (!item.empty())
            out.push_back(item);
    return out;
}

void
listBenchmarks()
{
    const auto &lib = ProfileLibrary::instance();
    Table t({"benchmark", "category", "working set (blocks)",
             "mem ratio", "MLP"});
    auto cat = [](BenchCategory c) {
        switch (c) {
          case BenchCategory::Friendly:
            return "friendly";
          case BenchCategory::Streaming:
            return "streaming";
          case BenchCategory::Intensive:
            return "intensive";
          case BenchCategory::Insensitive:
            return "insensitive";
        }
        return "?";
    };
    for (const auto &name : lib.names()) {
        const auto &p = lib.get(name);
        std::uint64_t footprint = p.locality.workingSetBlocks +
                                  p.locality.loopBlocks;
        t.addRow({p.name, cat(p.category), std::to_string(footprint),
                  Table::num(p.memRatio, 2), Table::num(p.mlp, 1)});
    }
    t.print(std::cout);
}

void
listWorkloads()
{
    for (unsigned cores : {4u, 8u, 16u, 32u}) {
        for (const auto &w : suites::forCoreCount(cores)) {
            std::cout << w.name << ":";
            for (const auto &b : w.benchmarks)
                std::cout << ' ' << b;
            std::cout << '\n';
        }
    }
}

} // namespace

int
main(int argc, char **argv)
{
    Options opt;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto value = [&]() -> std::string {
            if (i + 1 >= argc)
                cliError("missing value for " + arg);
            return argv[++i];
        };
        if (arg == "--help" || arg == "-h") {
            usage(std::cout);
            return 0;
        } else if (arg == "--list-benchmarks") {
            listBenchmarks();
            return 0;
        } else if (arg == "--list-workloads") {
            listWorkloads();
            return 0;
        } else if (arg == "--cores") {
            opt.cores = parseUnsigned(arg, value());
            opt.cores_set = true;
        } else if (arg == "--workload") {
            opt.workload = value();
        } else if (arg == "--mix") {
            opt.mix = value();
        } else if (arg == "--scheme") {
            opt.scheme = value();
        } else if (arg == "--repl") {
            opt.repl = value();
        } else if (arg == "--instr") {
            opt.instr = parseU64(arg, value());
        } else if (arg == "--warmup") {
            opt.warmup = parseU64(arg, value());
        } else if (arg == "--interval") {
            opt.interval = parseU64(arg, value());
        } else if (arg == "--seed") {
            opt.seed = parseU64(arg, value());
        } else if (arg == "--bits") {
            opt.bits = parseUnsigned(arg, value());
        } else if (arg == "--qos-frac") {
            opt.qos_frac = parseDouble(arg, value());
        } else if (arg == "--faults") {
            opt.faults = value();
        } else if (arg == "--checked") {
            opt.checked = true;
        } else if (arg == "--csv") {
            opt.csv = true;
        } else if (arg == "--stats") {
            opt.stats = true;
        } else if (arg == "--stats-json") {
            opt.stats_json = value();
        } else if (arg == "--trace") {
            opt.trace = value();
        } else if (arg == "--trace-csv") {
            opt.trace_csv = value();
        } else if (arg == "--trace-capacity") {
            opt.trace_capacity = parseU64(arg, value());
            if (opt.trace_capacity == 0)
                cliError("--trace-capacity must be at least 1");
        } else if (arg == "--trace-wall") {
            opt.trace_wall = true;
        } else {
            cliError("unknown option '" + arg + "'");
        }
    }

    // Validate enumerated names and the fault spec up front so a typo
    // is a usage error, not a failure half-way into a long run.
    const SchemeKind scheme_kind = parseScheme(opt.scheme);
    const ReplKind repl_kind = parseRepl(opt.repl);
    if (!opt.faults.empty()) {
        std::vector<FaultClause> clauses;
        const Status st = parseFaultSpec(opt.faults, clauses);
        if (!st.ok())
            cliError(st.message());
    }

    // Resolve the workload.
    Workload workload;
    if (!opt.mix.empty()) {
        workload.name = "custom";
        workload.benchmarks = splitMix(opt.mix);
        if (workload.benchmarks.empty())
            cliError("--mix lists no benchmarks");
        if (opt.cores_set &&
            workload.benchmarks.size() != opt.cores)
            cliError("--mix lists " +
                     std::to_string(workload.benchmarks.size()) +
                     " benchmarks but --cores asked for " +
                     std::to_string(opt.cores));
        opt.cores = static_cast<unsigned>(workload.benchmarks.size());
    } else if (!opt.workload.empty()) {
        if (!suites::find(opt.workload, workload))
            cliError("unknown workload '" + opt.workload + "'");
        opt.cores = static_cast<unsigned>(workload.benchmarks.size());
    } else {
        if (opt.cores != 4 && opt.cores != 8 && opt.cores != 16 &&
            opt.cores != 32)
            cliError("--cores must be 4, 8, 16 or 32 (got " +
                     std::to_string(opt.cores) + ")");
        workload = suites::forCoreCount(opt.cores).front();
    }

    MachineConfig machine = MachineConfig::forCores(opt.cores);
    machine.instrBudget = opt.instr;
    machine.warmupInstr = opt.warmup;
    if (opt.interval)
        machine.intervalMisses = opt.interval;
    machine.seed = opt.seed;
    machine.repl = repl_kind;

    // Catch impossible machines here, with one actionable message per
    // problem, instead of failing deep inside cache construction.
    if (const auto errors = machine.validate(); !errors.empty()) {
        std::cerr << "prism_sim: invalid configuration:\n";
        for (const auto &e : errors)
            std::cerr << "  - " << e << "\n";
        return 2;
    }

    SchemeOptions scheme_opt;
    scheme_opt.probBits = opt.bits;
    scheme_opt.qosTargetFrac = opt.qos_frac;
    scheme_opt.faultSpec = opt.faults;
    scheme_opt.checked = opt.checked;
    std::ostringstream stats;
    if (opt.stats)
        scheme_opt.statsSink = &stats;
    // Buffered and written atomically after the run (tmp + rename):
    // a crash mid-run never leaves a truncated JSON file behind.
    std::ostringstream stats_json;
    if (!opt.stats_json.empty())
        scheme_opt.statsJsonSink = &stats_json;

    const bool tracing = !opt.trace.empty() || !opt.trace_csv.empty();
    telemetry::MetricsRegistry metrics;
    if (tracing) {
        scheme_opt.telemetry.enabled = true;
        scheme_opt.telemetry.capacity = opt.trace_capacity;
        scheme_opt.telemetry.metrics = &metrics;
    }

    Runner runner(machine);
    const RunResult res =
        runner.run(workload, scheme_kind, scheme_opt);

    if (!opt.stats_json.empty()) {
        if (const Status st =
                writeFileAtomic(opt.stats_json, stats_json.str());
            !st.ok()) {
            std::cerr << "prism_sim: cannot write " << opt.stats_json
                      << ": " << st.message() << "\n";
            return 1;
        }
    }

    if (tracing) {
        const telemetry::TraceJob job{
            workload.name + "/" + res.scheme, res.recorder.get()};
        telemetry::TraceOptions trace_opt;
        trace_opt.includeWallTime = opt.trace_wall;
        const telemetry::TraceWriter writer(trace_opt);
        if (!opt.trace.empty()) {
            const Status st = writeFileAtomic(
                opt.trace, [&](std::ostream &file) {
                    writer.writeChromeTrace(file, {&job, 1},
                                            &metrics);
                });
            if (!st.ok()) {
                std::cerr << "prism_sim: cannot write " << opt.trace
                          << ": " << st.message() << "\n";
                return 1;
            }
        }
        if (!opt.trace_csv.empty()) {
            const Status st = writeFileAtomic(
                opt.trace_csv, [&](std::ostream &file) {
                    writer.writeCsv(file, {&job, 1});
                });
            if (!st.ok()) {
                std::cerr << "prism_sim: cannot write "
                          << opt.trace_csv << ": " << st.message()
                          << "\n";
                return 1;
            }
        }
        // The trace header records drop totals, but nobody reads a
        // header they don't expect — surface truncation on the
        // console too.
        const telemetry::IntervalRecorder &rec = *res.recorder;
        if (rec.droppedSamples() || rec.droppedEvents())
            std::cerr << "prism_sim: trace truncated: "
                      << rec.droppedSamples() << " samples and "
                      << rec.droppedEvents()
                      << " events dropped (ring capacity "
                      << rec.capacity()
                      << "); raise --trace-capacity to keep the full "
                         "series\n";
    }

    Table t({"core", "benchmark", "IPC", "IPC alone", "slowdown",
             "LLC hits", "LLC misses", "occupancy"});
    for (std::size_t c = 0; c < res.ipc.size(); ++c)
        t.addRow({std::to_string(c), res.benchmarks[c],
                  Table::num(res.ipc[c]),
                  Table::num(res.ipcStandalone[c]),
                  Table::num(res.ipc[c] / res.ipcStandalone[c], 2),
                  std::to_string(res.llcHits[c]),
                  std::to_string(res.llcMisses[c]),
                  Table::num(res.occupancyAtFinish[c], 3)});

    if (opt.csv) {
        t.printCsv(std::cout);
    } else {
        std::cout << "workload " << workload.name << " on "
                  << opt.cores << " cores, scheme " << res.scheme
                  << ", repl " << opt.repl << "\n\n";
        t.print(std::cout);
        std::cout << "\nANTT " << Table::num(res.antt())
                  << " (lower is better), fairness "
                  << Table::num(res.fairness()) << ", throughput "
                  << Table::num(res.ipcThroughput()) << " IPC\n";
        if (res.recomputes)
            std::cout << "PriSM: " << res.recomputes
                      << " recomputations, victimless fraction "
                      << Table::pct(res.victimlessFraction) << "\n";
    }
    if (opt.checked || !opt.faults.empty()) {
        std::cout << "robustness: " << res.faultsInjected
                  << " faults injected, " << res.degradedIntervals
                  << " degraded intervals, " << res.invariantViolations
                  << " invariant violations, " << res.ownershipRepairs
                  << " ownership repairs, " << res.clampedEq1Inputs
                  << " clamped eq1 inputs, " << res.droppedRecomputes
                  << " dropped recomputes\n";
    }
    if (opt.stats)
        std::cout << "\n" << stats.str();
    return 0;
}
