/**
 * @file
 * prism_serve — multi-tenant object-store service mode.
 *
 * Runs a closed-loop serving session: Zipfian tenant workloads
 * through the sharded store under the PriSM tenant arbiter
 * (docs/SERVING.md). Prints a human summary, optionally writes the
 * deterministic `prism-serve-v1` document, and with `--doctor`
 * grades the session in-process with the same checks
 * `prism_doctor FILE` would apply.
 *
 * Determinism: with `--ops N` (a fixed op budget) the document is
 * byte-identical at any `--threads`; `--no-timing` additionally
 * drops the wall-clock section so whole files can be compared. With
 * `--seconds` the run length depends on the machine, so only the
 * per-run structure is stable.
 *
 * Examples:
 *   prism_serve --tenants 4 --threads 8 --seconds 5
 *   prism_serve --tenants 2 --ops 1000000 --no-timing --json out.json
 *   prism_serve --tenant keys=100000,get=0.9,slo-hit=0.3 \
 *               --tenant keys=400000,floor=0.5 --policy Q --doctor
 *
 * Exit codes: 0 success (doctor PASS/WARN), 1 doctor FAIL,
 * 2 usage or input error.
 */

#include <cstdlib>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/doctor.hh"
#include "analysis/online_doctor.hh"
#include "analysis/series.hh"
#include "common/atomic_file.hh"
#include "common/json.hh"
#include "common/stop_signal.hh"
#include "serve/serve_engine.hh"

using namespace prism;
using namespace prism::serve;

namespace
{

void
usage(std::ostream &os)
{
    os <<
        "usage: prism_serve [options]\n"
        "  --tenants N          tenants with the base spec "
        "(default 4)\n"
        "  --tenant SPEC        add one tenant; SPEC is\n"
        "                       key=value[,...] over keys, zipf,\n"
        "                       get, vmin, vmax, weight, slo-hit,\n"
        "                       floor (repeatable; replaces\n"
        "                       --tenants when given)\n"
        "  --keys N             base keyspace per tenant "
        "(default 300000)\n"
        "  --zipf S             base Zipf exponent (default 0.99)\n"
        "  --threads N          worker threads (default 1)\n"
        "  --streams N          logical request streams "
        "(default 16)\n"
        "  --shards N           store shards (default 64)\n"
        "  --batch N            requests per stream per round "
        "(default 2048)\n"
        "  --capacity-mb N      store byte budget (default 64)\n"
        "  --interval W         misses per allocation interval "
        "(default 16384)\n"
        "  --policy H|F|Q       target policy (default H)\n"
        "  --seconds S          wall-clock run length (default 5)\n"
        "  --ops N              fixed op budget (overrides "
        "--seconds;\n"
        "                       required for byte-identical "
        "output)\n"
        "  --seed N             base RNG seed (default 42)\n"
        "  --json PATH          write the prism-serve-v1 document\n"
        "                       ('-' for stdout)\n"
        "  --no-timing          skip wall-clock collection and the\n"
        "                       non-deterministic timing section\n"
        "  --doctor             diagnose the session in-process\n"
        "  --metrics-out PATH   write prism-metrics-v1 snapshots\n"
        "  --metrics-prom PATH  write Prometheus text snapshots\n"
        "  --metrics-every N    snapshot every N rounds (0 = final\n"
        "                       snapshot only; default 0)\n"
        "  --window K           live sliding-window capacity in\n"
        "                       intervals (default 64)\n"
        "  --live-doctor        grade the run online after every\n"
        "                       interval close (adds drift checks)\n"
        "  --quiet              suppress the human summary\n"
        "\n"
        "SIGINT/SIGTERM stop the run at the next round boundary; all\n"
        "requested outputs (document, metrics snapshots) are still\n"
        "written, and the exit code is 130.\n";
}

[[noreturn]] void
cliError(const std::string &msg)
{
    std::cerr << "prism_serve: " << msg << "\n\n";
    usage(std::cerr);
    std::exit(2);
}

std::uint64_t
parseU64Arg(const std::string &arg, const std::string &value)
{
    try {
        std::size_t pos = 0;
        const std::uint64_t v = std::stoull(value, &pos);
        if (pos != value.size())
            throw std::invalid_argument(value);
        return v;
    } catch (const std::exception &) {
        cliError("invalid value '" + value + "' for " + arg);
    }
}

double
parseDoubleArg(const std::string &arg, const std::string &value)
{
    char *end = nullptr;
    const double v = std::strtod(value.c_str(), &end);
    if (value.empty() || end != value.c_str() + value.size())
        cliError("invalid value '" + value + "' for " + arg);
    return v;
}

} // namespace

int
main(int argc, char **argv)
{
    ServeConfig config;
    TenantSpec base;
    std::vector<std::string> tenant_specs;
    std::uint64_t num_tenants = 4;
    std::string json_path;
    bool doctor = false;
    bool quiet = false;
    analysis::LiveObserverOptions live;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto value = [&]() -> std::string {
            if (i + 1 >= argc)
                cliError("missing value for " + arg);
            return argv[++i];
        };
        if (arg == "--help" || arg == "-h") {
            usage(std::cout);
            return 0;
        } else if (arg == "--tenants") {
            num_tenants = parseU64Arg(arg, value());
            if (num_tenants == 0 || num_tenants > 256)
                cliError("--tenants must be in [1, 256]");
        } else if (arg == "--tenant") {
            tenant_specs.push_back(value());
        } else if (arg == "--keys") {
            base.keys = parseU64Arg(arg, value());
            if (base.keys == 0)
                cliError("--keys must be positive");
        } else if (arg == "--zipf") {
            base.zipf = parseDoubleArg(arg, value());
            if (base.zipf < 0.0)
                cliError("--zipf must be >= 0");
        } else if (arg == "--threads") {
            config.threads = static_cast<std::uint32_t>(
                parseU64Arg(arg, value()));
            if (config.threads == 0)
                cliError("--threads must be positive");
        } else if (arg == "--streams") {
            config.streams = static_cast<std::uint32_t>(
                parseU64Arg(arg, value()));
            if (config.streams == 0)
                cliError("--streams must be positive");
        } else if (arg == "--shards") {
            config.shards = static_cast<std::uint32_t>(
                parseU64Arg(arg, value()));
            if (config.shards == 0)
                cliError("--shards must be positive");
        } else if (arg == "--batch") {
            config.batch = static_cast<std::uint32_t>(
                parseU64Arg(arg, value()));
            if (config.batch == 0)
                cliError("--batch must be positive");
        } else if (arg == "--capacity-mb") {
            const std::uint64_t mb = parseU64Arg(arg, value());
            if (mb == 0)
                cliError("--capacity-mb must be positive");
            config.capacityBytes = mb << 20;
        } else if (arg == "--interval") {
            config.intervalMisses = parseU64Arg(arg, value());
            if (config.intervalMisses == 0)
                cliError("--interval must be positive");
        } else if (arg == "--policy") {
            const std::string v = value();
            if (v.size() != 1 ||
                (v[0] != 'H' && v[0] != 'F' && v[0] != 'Q'))
                cliError("--policy must be H, F or Q");
            config.policy = v[0];
        } else if (arg == "--seconds") {
            config.seconds = parseDoubleArg(arg, value());
            if (config.seconds <= 0.0)
                cliError("--seconds must be positive");
        } else if (arg == "--ops") {
            config.opBudget = parseU64Arg(arg, value());
            if (config.opBudget == 0)
                cliError("--ops must be positive");
        } else if (arg == "--seed") {
            config.seed = parseU64Arg(arg, value());
        } else if (arg == "--json") {
            json_path = value();
        } else if (arg == "--no-timing") {
            config.timing = false;
        } else if (arg == "--doctor") {
            doctor = true;
        } else if (arg == "--metrics-out") {
            live.metricsJsonPath = value();
            if (live.metricsJsonPath.empty())
                cliError("--metrics-out needs a path");
        } else if (arg == "--metrics-prom") {
            live.metricsPromPath = value();
            if (live.metricsPromPath.empty())
                cliError("--metrics-prom needs a path");
        } else if (arg == "--metrics-every") {
            live.metricsEvery = parseU64Arg(arg, value());
        } else if (arg == "--window") {
            live.windowCapacity = static_cast<std::size_t>(
                parseU64Arg(arg, value()));
            if (live.windowCapacity == 0)
                cliError("--window must be positive");
        } else if (arg == "--live-doctor") {
            live.onlineDoctor = true;
        } else if (arg == "--quiet") {
            quiet = true;
        } else {
            cliError("unknown option '" + arg + "'");
        }
    }

    if (tenant_specs.empty()) {
        config.tenants.assign(num_tenants, base);
    } else {
        for (const std::string &text : tenant_specs) {
            TenantSpec spec = base;
            if (const Status st = parseTenantSpec(text, spec);
                !st.ok())
                cliError("--tenant: " + st.message());
            config.tenants.push_back(spec);
        }
    }

    if (live.metricsEvery > 0 && live.metricsJsonPath.empty() &&
        live.metricsPromPath.empty())
        cliError("--metrics-every needs --metrics-out or "
                 "--metrics-prom");

    const bool want_live = live.onlineDoctor ||
                           !live.metricsJsonPath.empty() ||
                           !live.metricsPromPath.empty();
    std::unique_ptr<analysis::ServeLiveObserver> observer;
    if (want_live) {
        observer = std::make_unique<analysis::ServeLiveObserver>(
            config, live);
        config.observer = observer.get();
    }

    installStopHandlers();
    config.stopFlag = &stopRequested();

    ServeEngine engine(config);
    const ServeResult result = engine.run();

    if (observer) {
        if (const Status st = observer->flushFinal(); !st.ok()) {
            std::cerr << "prism_serve: metrics: " << st.message()
                      << "\n";
            return 2;
        }
    }

    if (!quiet) {
        std::uint64_t hits = 0, misses = 0;
        for (const TenantTotals &t : result.tenants) {
            hits += t.hits;
            misses += t.misses;
        }
        const std::uint64_t accesses = hits + misses;
        std::cout << "prism_serve: policy "
                  << (config.policy == 'H'   ? "HitMax"
                      : config.policy == 'F' ? "Fair"
                                             : "QoS")
                  << ", " << config.tenants.size() << " tenant(s), "
                  << result.ops << " ops in " << result.rounds
                  << " round(s)\n";
        if (config.timing && result.wallSeconds > 0.0)
            std::cout << "  wall " << result.wallSeconds << " s, "
                      << static_cast<std::uint64_t>(
                             static_cast<double>(result.ops) /
                             result.wallSeconds)
                      << " ops/s\n";
        std::cout << "  hit ratio "
                  << (accesses ? static_cast<double>(hits) /
                                     static_cast<double>(accesses)
                               : 0.0)
                  << ", " << result.intervals << " interval(s), "
                  << result.evictions << " eviction(s), "
                  << result.recomputes << " recompute(s)\n";
        for (std::size_t t = 0; t < result.tenants.size(); ++t) {
            const TenantTotals &tt = result.tenants[t];
            const std::uint64_t acc = tt.hits + tt.misses;
            std::cout << "  tenant " << t << ": hit ratio "
                      << (acc ? static_cast<double>(tt.hits) /
                                    static_cast<double>(acc)
                              : 0.0)
                      << ", " << tt.occupancyBytes
                      << " bytes resident, " << tt.evictions
                      << " eviction(s)\n";
        }
    }

    std::ostringstream doc;
    writeServeJson(doc, config, result);

    if (!json_path.empty()) {
        if (json_path == "-") {
            std::cout << doc.str();
        } else if (const Status st =
                       writeFileAtomic(json_path, doc.str());
                   !st.ok()) {
            std::cerr << "prism_serve: " << st.message() << "\n";
            return 2;
        }
    }

    int rc = 0;

    if (doctor) {
        JsonValue parsed;
        if (const Status st = parseJson(doc.str(), parsed);
            !st.ok()) {
            std::cerr << "prism_serve: internal: " << st.message()
                      << "\n";
            return 2;
        }
        analysis::RunSeries series;
        if (const Status st =
                analysis::seriesFromServeJson(parsed, series);
            !st.ok()) {
            std::cerr << "prism_serve: internal: " << st.message()
                      << "\n";
            return 2;
        }
        const analysis::Verdict verdict = analysis::analyze(series);
        analysis::printReport(std::cout, verdict);
        if (verdict.overall == analysis::FindingStatus::Fail)
            rc = 1;
    }

    if (observer && observer->doctorEnabled() &&
        observer->doctor().evaluated()) {
        const analysis::Verdict &verdict =
            observer->doctor().verdict();
        if (!quiet)
            analysis::printReport(std::cout, verdict);
        if (verdict.overall == analysis::FindingStatus::Fail)
            rc = 1;
    }

    if (result.stopped)
        return stopExitCode;
    return rc;
}
