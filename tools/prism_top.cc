/**
 * @file
 * prism_top — console reporter over a prism-metrics-v1 file.
 *
 * Tails the snapshot file a live driver maintains with
 * `--metrics-out FILE --metrics-every N` (prism_serve, prism_bench)
 * and renders the run headline plus a per-tenant table: cumulative
 * and windowed hit ratios, fair slowdown, E_i churn, drift, targets
 * and occupancy. The writer uses atomic renames, so every read
 * observes a complete snapshot; prism_top never needs to talk to the
 * process it is watching.
 *
 * Modes:
 *   prism_top FILE --once           render one frame and exit
 *   prism_top FILE                  follow: re-render when the
 *                                   snapshot's round advances
 *   prism_top FILE --frames N       follow, stop after N renders
 *
 * A failed or invalid first read exits 2; in follow mode later
 * transient failures (file mid-replacement, writer gone for a
 * moment) are tolerated and the previous frame stands.
 *
 * Exit codes: 0 success, 2 usage error or unreadable first frame.
 */

#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/json.hh"
#include "common/status.hh"
#include "common/table.hh"

using namespace prism;

namespace
{

void
usage(std::ostream &os)
{
    os <<
        "usage: prism_top FILE [options]\n"
        "  --once             render one frame and exit\n"
        "  --frames N         stop after N rendered frames\n"
        "  --interval-ms N    poll cadence in follow mode "
        "(default 500)\n";
}

[[noreturn]] void
cliError(const std::string &msg)
{
    std::cerr << "prism_top: " << msg << "\n\n";
    usage(std::cerr);
    std::exit(2);
}

std::uint64_t
parseU64Arg(const std::string &arg, const std::string &value)
{
    try {
        std::size_t pos = 0;
        const std::uint64_t v = std::stoull(value, &pos);
        if (pos != value.size())
            throw std::invalid_argument(value);
        return v;
    } catch (const std::exception &) {
        cliError("invalid value '" + value + "' for " + arg);
    }
}

Status
readSnapshot(const std::string &path, JsonValue &out)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return Status::error("cannot open '" + path + "'");
    std::ostringstream text;
    text << in.rdbuf();
    if (in.bad())
        return Status::error("read error on '" + path + "'");
    if (const Status st = parseJson(text.str(), out); !st.ok())
        return Status::error(path + ": " + st.message());
    if (out.at("schema").asString() != "prism-metrics-v1")
        return Status::error(
            path + ": not a prism-metrics-v1 document (schema '" +
            out.at("schema").asString() + "')");
    return Status();
}

/** One rendered frame for @p doc. */
void
render(std::ostream &os, const JsonValue &doc)
{
    os << "prism_top: " << doc.at("run").asString();
    if (doc.at("policy").isString())
        os << " (policy " << doc.at("policy").asString() << ")";
    os << " — round " << doc.at("round").asU64() << ", "
       << doc.at("ops").asU64() << " ops, "
       << doc.at("intervals").asU64() << " interval(s)\n";

    const JsonValue &sweep = doc.at("sweep");
    if (sweep.isObject())
        os << "  sweep: " << sweep.at("completed").asU64() << "/"
           << sweep.at("jobs").asU64() << " job(s) complete\n";

    const JsonValue &totals = doc.at("totals");
    if (totals.isObject()) {
        os << "  store: " << totals.at("occupancy_bytes").asU64()
           << "/" << totals.at("capacity_bytes").asU64()
           << " bytes, " << totals.at("objects").asU64()
           << " object(s), " << totals.at("evictions").asU64()
           << " eviction(s), " << totals.at("recomputes").asU64()
           << " recompute(s)\n";
    }

    const JsonValue &window = doc.at("window");
    if (window.isObject())
        os << "  window: " << window.at("size").asU64() << "/"
           << window.at("capacity").asU64()
           << " interval(s) retained, "
           << window.at("pushed").asU64() << " pushed\n";

    const JsonValue &doctor = doc.at("doctor");
    if (doctor.isObject()) {
        os << "  doctor: " << doctor.at("overall").asString();
        std::uint64_t warns = 0, fails = 0;
        for (const JsonValue &f :
             doctor.at("findings").elements()) {
            const std::string st = f.at("status").asString();
            warns += st == "WARN";
            fails += st == "FAIL";
        }
        os << " (" << warns << " warn, " << fails << " fail)\n";
        for (const JsonValue &f :
             doctor.at("findings").elements()) {
            const std::string st = f.at("status").asString();
            if (st != "WARN" && st != "FAIL")
                continue;
            os << "    " << st << " " << f.at("check").asString()
               << ": " << f.at("detail").asString() << "\n";
        }
    }

    const JsonValue &tenants = doc.at("tenants");
    if (tenants.isArray() && tenants.size() > 0) {
        const bool windowed =
            tenants.at(std::size_t{0}).at("window").isObject();
        std::vector<std::string> headers = {
            "tenant", "hit%", "target", "occ", "E_i", "evict"};
        if (windowed) {
            headers.push_back("w.hit%");
            headers.push_back("w.slow");
            headers.push_back("churn");
            headers.push_back("drift");
        }
        Table table(headers);
        for (const JsonValue &t : tenants.elements()) {
            std::vector<std::string> row = {
                std::to_string(t.at("tenant").asU64()),
                Table::pct(t.at("hit_ratio").asDouble()),
                Table::num(t.at("target").asDouble()),
                Table::num(t.at("occupancy").asDouble()),
                Table::num(t.at("ev_prob").asDouble()),
                std::to_string(t.at("evictions").asU64()),
            };
            if (windowed) {
                const JsonValue &w = t.at("window");
                row.push_back(
                    Table::pct(w.at("hit_ratio").asDouble()));
                row.push_back(
                    Table::num(w.at("fair_slowdown").asDouble()));
                row.push_back(Table::num(w.at("churn").asDouble()));
                row.push_back(Table::num(
                    w.at("miss_rate_drift").asDouble()));
            }
            table.addRow(std::move(row));
        }
        table.print(os);
    }

    const JsonValue &telemetry = doc.at("telemetry");
    if (telemetry.isObject()) {
        const std::uint64_t ds =
            telemetry.at("dropped_samples").asU64();
        const std::uint64_t de =
            telemetry.at("dropped_events").asU64();
        if (ds || de)
            os << "  telemetry: " << ds
               << " sample(s) dropped, " << de
               << " event(s) dropped\n";
    }
}

} // namespace

int
main(int argc, char **argv)
{
    std::string path;
    bool once = false;
    std::uint64_t frames = 0; // 0 = unbounded in follow mode
    std::uint64_t interval_ms = 500;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto value = [&]() -> std::string {
            if (i + 1 >= argc)
                cliError("missing value for " + arg);
            return argv[++i];
        };
        if (arg == "--help" || arg == "-h") {
            usage(std::cout);
            return 0;
        } else if (arg == "--once") {
            once = true;
        } else if (arg == "--frames") {
            frames = parseU64Arg(arg, value());
            if (frames == 0)
                cliError("--frames must be positive");
        } else if (arg == "--interval-ms") {
            interval_ms = parseU64Arg(arg, value());
            if (interval_ms == 0)
                cliError("--interval-ms must be positive");
        } else if (!arg.empty() && arg[0] == '-') {
            cliError("unknown option '" + arg + "'");
        } else if (path.empty()) {
            path = arg;
        } else {
            cliError("more than one FILE given");
        }
    }
    if (path.empty())
        cliError("missing FILE");

    // The first frame must be readable: a missing or malformed file
    // is an operator error, not a transient.
    JsonValue doc;
    if (const Status st = readSnapshot(path, doc); !st.ok()) {
        std::cerr << "prism_top: " << st.message() << "\n";
        return 2;
    }
    render(std::cout, doc);
    if (once)
        return 0;

    std::uint64_t rendered = 1;
    std::uint64_t last_round = doc.at("round").asU64();
    while (frames == 0 || rendered < frames) {
        std::this_thread::sleep_for(
            std::chrono::milliseconds(interval_ms));
        JsonValue next;
        // Transients (writer mid-rename, short outage) keep the
        // previous frame on screen instead of aborting the session.
        if (const Status st = readSnapshot(path, next); !st.ok())
            continue;
        const std::uint64_t round = next.at("round").asU64();
        if (round == last_round)
            continue;
        last_round = round;
        std::cout << "\n";
        render(std::cout, next);
        ++rendered;
    }
    return 0;
}
