/**
 * @file
 * prism_doctor — control-loop diagnostics for PriSM runs.
 *
 * Consumes a recorded run (a `prism-stats-v1` statistics dump, a
 * `prism-trace-v1` Chrome trace, a `prism-bench-v1` sweep file, a
 * `prism-serve-v1` serving session (tools/prism_serve), or a
 * `prism-ckpt-v1` checkpoint via `--ckpt` — the schema is
 * auto-detected, `*.ckpt.json` included), or executes one fresh
 * simulation in-process (`--run "<prism_sim flags>"`), and prints a
 * health report: occupancy-tracking convergence,
 * eviction-distribution stability, invariant drift, QoS/fairness
 * attainment and the robustness counters. Bench documents also grade
 * the exec manifest (docs/RELIABILITY.md): retried/timed-out jobs
 * WARN, quarantined jobs and corrupt checkpoints FAIL. With `--json`
 * the same findings are written as a deterministic `prism-doctor-v1`
 * document.
 *
 * `--compare A.json B.json` switches to regression mode: two
 * `prism-bench-v1` files are diffed metric-by-metric under relative
 * tolerances — the CI perf gate (tools/ci_gate.sh) runs the fixture
 * sweep and compares it against tests/golden/BENCH_fixture.json.
 *
 * Examples:
 *   prism_doctor stats.json
 *   prism_doctor --trace trace.json
 *   prism_doctor --run "--workload Q7 --scheme PriSM-H"
 *   prism_doctor --compare golden.json fresh.json --tolerance ipc=1e-6
 *
 * Exit codes: 0 overall PASS or WARN, 1 overall FAIL, 2 usage or
 * input error.
 */

#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/compare.hh"
#include "analysis/doctor.hh"
#include "analysis/run_spec.hh"
#include "analysis/series.hh"
#include "common/atomic_file.hh"
#include "exec/checkpoint.hh"

using namespace prism;
using namespace prism::analysis;

namespace
{

void
usage(std::ostream &os)
{
    os <<
        "usage: prism_doctor [FILE] [options]\n"
        "       prism_doctor --compare BASELINE CANDIDATE [options]\n"
        "  FILE                 prism-stats-v1, prism-trace-v1,\n"
        "                       prism-bench-v1, prism-serve-v1 or\n"
        "                       prism-metrics-v1 JSON "
        "(auto-detected)\n"
        "  --stats FILE         force prism-stats-v1 input\n"
        "  --trace FILE         force prism-trace-v1 input\n"
        "  --bench FILE         force prism-bench-v1 input\n"
        "  --serve FILE         force prism-serve-v1 input\n"
        "  --metrics FILE       force prism-metrics-v1 input (a live\n"
        "                       snapshot written by --metrics-out)\n"
        "  --ckpt FILE          validate a prism-ckpt-v1 sweep\n"
        "                       checkpoint (*.ckpt.json paths are\n"
        "                       auto-detected); a corrupt file is a\n"
        "                       FAIL verdict, not an input error\n"
        "  --run \"FLAGS\"        simulate one run in-process and\n"
        "                       diagnose it (prism_sim run flags:\n"
        "                       --workload/--mix/--scheme/--repl/\n"
        "                       --instr/--warmup/--interval/--seed/\n"
        "                       --bits/--qos-frac/--faults/--checked)\n"
        "  --compare A B        diff two prism-bench-v1 files\n"
        "  --tolerance X        global relative tolerance for\n"
        "                       --compare (default 0 = exact)\n"
        "  --tolerance N=X      per-metric override (repeatable),\n"
        "                       e.g. --tolerance ipc=1e-6\n"
        "  --json PATH          write the prism-doctor-v1 verdict\n"
        "                       document ('-' for stdout)\n"
        "  --quiet              suppress the human-readable report\n";
}

[[noreturn]] void
cliError(const std::string &msg)
{
    std::cerr << "prism_doctor: " << msg << "\n\n";
    usage(std::cerr);
    std::exit(2);
}

/** Read and parse @p path; exits with code 2 on failure. */
JsonValue
loadJson(const std::string &path)
{
    std::ifstream in(path);
    if (!in) {
        std::cerr << "prism_doctor: cannot read " << path << "\n";
        std::exit(2);
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    JsonValue doc;
    if (const Status st = parseJson(buf.str(), doc); !st.ok()) {
        std::cerr << "prism_doctor: " << path << ": " << st.message()
                  << "\n";
        std::exit(2);
    }
    return doc;
}

enum class InputKind
{
    Auto,
    Stats,
    Trace,
    Bench,
    Serve,
    Metrics,
    Ckpt,
};

struct Options
{
    std::string file;
    InputKind kind = InputKind::Auto;
    std::string run;
    std::string compare_a, compare_b;
    bool compare = false;
    CompareOptions compare_opts;
    std::string json_path;
    bool quiet = false;
};

InputKind
detectKind(const JsonValue &doc, const std::string &path)
{
    const std::string &schema = doc.at("schema").asString();
    if (schema == "prism-stats-v1")
        return InputKind::Stats;
    if (schema == "prism-bench-v1")
        return InputKind::Bench;
    if (schema == "prism-serve-v1")
        return InputKind::Serve;
    if (schema == "prism-metrics-v1")
        return InputKind::Metrics;
    if (doc.at("otherData").at("schema").asString() ==
        "prism-trace-v1")
        return InputKind::Trace;
    std::cerr << "prism_doctor: " << path
              << ": unrecognised document (expected prism-stats-v1, "
                 "prism-trace-v1, prism-bench-v1, prism-serve-v1 or "
                 "prism-metrics-v1)\n";
    std::exit(2);
}

bool
endsWith(const std::string &s, const std::string &suffix)
{
    return s.size() >= suffix.size() &&
           s.compare(s.size() - suffix.size(), suffix.size(),
                     suffix) == 0;
}

/**
 * Validate a sweep checkpoint. Unlike the other inputs, a corrupt
 * file here is the finding itself (the atomic-write path exists
 * exactly to prevent it), so it yields a FAIL verdict and exit 1
 * rather than a usage error.
 */
Verdict
checkCheckpoint(const std::string &path)
{
    Verdict v;
    v.run = "exec";
    Finding f;
    f.check = "exec.checkpoint";
    CheckpointData data;
    if (const Status st = loadCheckpoint(path, data); !st.ok()) {
        f.status = FindingStatus::Fail;
        f.detail = st.message();
    } else {
        f.status = FindingStatus::Pass;
        f.detail = std::to_string(data.jobs.size()) +
                   " completed job(s) of sweep '" + data.sweep +
                   "' (fingerprint " + data.fingerprint + ")";
        f.value = static_cast<double>(data.jobs.size());
        f.hasValue = true;
    }
    v.findings.push_back(std::move(f));
    v.overall = v.findings.back().status;
    return v;
}

/** Hand-built verdict for a bench job that carries an "error"
 * object (quarantined or skipped) instead of a result. */
Verdict
failedJobVerdict(const JsonValue &job)
{
    const JsonValue &error = job.at("error");
    const std::string state = error.at("state").asString();
    const std::uint64_t attempts = error.at("attempts").asU64();

    Verdict v;
    v.run = job.at("id").asString();
    Finding f;
    if (state == "skipped") {
        f.check = "exec.job_skipped";
        f.status = FindingStatus::Warn;
        f.detail = "not executed (shutdown requested)";
    } else {
        f.check = "exec.job_quarantined";
        f.status = FindingStatus::Fail;
        f.detail = "quarantined after " + std::to_string(attempts) +
                   " attempts";
        const auto &failures = error.at("failures").elements();
        if (!failures.empty())
            f.detail += " (last: " +
                        failures.back().at("message").asString() +
                        ")";
    }
    f.value = static_cast<double>(attempts);
    f.hasValue = true;
    v.findings.push_back(std::move(f));
    v.overall = v.findings.back().status;
    return v;
}

/** Simulate the --run spec and build its series view. */
RunSeries
runAndRecord(const std::string &spec_text)
{
    RunSpec spec;
    if (const Status st = parseRunSpec(spec_text, spec); !st.ok())
        cliError("--run: " + st.message());

    spec.options.telemetry.enabled = true;
    spec.options.telemetry.capacity = 4096;

    Runner runner(spec.machine);
    const RunResult res =
        runner.run(spec.workload, spec.scheme, spec.options);

    RunSeries s = seriesFromRecorder(
        *res.recorder, spec.workload.name + "/" + res.scheme);
    attachRunResult(s, res);
    s.qosTargetFrac = spec.scheme == SchemeKind::PrismQ
                          ? spec.options.qosTargetFrac
                          : 0.0;
    return s;
}

} // namespace

int
main(int argc, char **argv)
{
    Options opt;
    std::vector<std::string> positional;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto value = [&]() -> std::string {
            if (i + 1 >= argc)
                cliError("missing value for " + arg);
            return argv[++i];
        };
        if (arg == "--help" || arg == "-h") {
            usage(std::cout);
            return 0;
        } else if (arg == "--stats") {
            opt.file = value();
            opt.kind = InputKind::Stats;
        } else if (arg == "--trace") {
            opt.file = value();
            opt.kind = InputKind::Trace;
        } else if (arg == "--bench") {
            opt.file = value();
            opt.kind = InputKind::Bench;
        } else if (arg == "--serve") {
            opt.file = value();
            opt.kind = InputKind::Serve;
        } else if (arg == "--metrics") {
            opt.file = value();
            opt.kind = InputKind::Metrics;
        } else if (arg == "--ckpt") {
            opt.file = value();
            opt.kind = InputKind::Ckpt;
        } else if (arg == "--run") {
            opt.run = value();
        } else if (arg == "--compare") {
            opt.compare = true;
        } else if (arg == "--tolerance") {
            const std::string v = value();
            const std::size_t eq = v.find('=');
            const std::string num =
                eq == std::string::npos ? v : v.substr(eq + 1);
            char *end = nullptr;
            const double tol = std::strtod(num.c_str(), &end);
            if (num.empty() || end != num.c_str() + num.size() ||
                tol < 0.0)
                cliError("invalid tolerance '" + v + "'");
            if (eq == std::string::npos)
                opt.compare_opts.relTolerance = tol;
            else
                opt.compare_opts.metricTolerance[v.substr(0, eq)] =
                    tol;
        } else if (arg == "--json") {
            opt.json_path = value();
        } else if (arg == "--quiet") {
            opt.quiet = true;
        } else if (!arg.empty() && arg[0] == '-') {
            cliError("unknown option '" + arg + "'");
        } else {
            positional.push_back(arg);
        }
    }

    std::string source;
    std::vector<Verdict> jobs;
    const DoctorThresholds thresholds;

    if (opt.compare) {
        if (positional.size() != 2)
            cliError("--compare needs exactly two files");
        if (!opt.run.empty() || !opt.file.empty())
            cliError("--compare cannot combine with other inputs");
        const JsonValue a = loadJson(positional[0]);
        const JsonValue b = loadJson(positional[1]);
        source = "compare";
        jobs.push_back(compareBenchDocs(a, b, opt.compare_opts));
    } else if (!opt.run.empty()) {
        if (!opt.file.empty() || !positional.empty())
            cliError("--run cannot combine with file inputs");
        source = "run";
        jobs.push_back(analyze(runAndRecord(opt.run), thresholds));
    } else {
        if (opt.file.empty()) {
            if (positional.size() != 1) {
                if (positional.empty())
                    cliError("no input given");
                cliError("more than one input file given");
            }
            opt.file = positional[0];
        } else if (!positional.empty()) {
            cliError("more than one input file given");
        }

        InputKind kind = opt.kind;
        // Checkpoints are validated before JSON parsing: a torn
        // write must surface as a FAIL verdict, not an exit-2
        // parse error.
        if (kind == InputKind::Auto && endsWith(opt.file, ".ckpt.json"))
            kind = InputKind::Ckpt;
        if (kind == InputKind::Ckpt) {
            source = "ckpt";
            jobs.push_back(checkCheckpoint(opt.file));
        } else {
            const JsonValue doc = loadJson(opt.file);
            if (kind == InputKind::Auto)
                kind = detectKind(doc, opt.file);

            Status st;
            switch (kind) {
              case InputKind::Stats: {
                source = "stats";
                RunSeries s;
                st = seriesFromStatsJson(doc, s);
                if (st.ok())
                    jobs.push_back(analyze(s, thresholds));
                break;
              }
              case InputKind::Serve: {
                source = "serve";
                RunSeries s;
                st = seriesFromServeJson(doc, s);
                if (st.ok())
                    jobs.push_back(analyze(s, thresholds));
                break;
              }
              case InputKind::Metrics: {
                source = "metrics";
                RunSeries s;
                st = seriesFromMetricsJson(doc, s);
                if (st.ok())
                    jobs.push_back(analyze(s, thresholds));
                break;
              }
              case InputKind::Trace: {
                source = "trace";
                std::vector<RunSeries> runs;
                st = seriesFromTraceJson(doc, runs);
                for (const RunSeries &s : runs)
                    jobs.push_back(analyze(s, thresholds));
                break;
              }
              case InputKind::Bench: {
                source = "bench";
                if (doc.at("schema").asString() !=
                    "prism-bench-v1") {
                    st = Status::error(
                        "not a prism-bench-v1 document");
                    break;
                }
                for (const JsonValue &job :
                     doc.at("jobs").elements()) {
                    // Quarantined/skipped jobs carry an "error"
                    // object instead of a result; report the
                    // execution failure directly.
                    if (job.at("error").isObject()) {
                        jobs.push_back(failedJobVerdict(job));
                        continue;
                    }
                    RunSeries s;
                    st = seriesFromBenchJob(job, s);
                    if (!st.ok())
                        break;
                    jobs.push_back(analyze(s, thresholds));
                }
                // Supervised sweeps with retries/quarantines also
                // carry an exec manifest; diagnose it too.
                ExecSeries exec_series;
                if (st.ok() &&
                    execSeriesFromBenchDoc(doc, exec_series))
                    jobs.push_back(analyzeExec(exec_series));
                break;
              }
              case InputKind::Auto:
              case InputKind::Ckpt:
                break;
            }
            if (!st.ok()) {
                std::cerr << "prism_doctor: " << opt.file << ": "
                          << st.message() << "\n";
                return 2;
            }
        }
    }

    if (!opt.quiet) {
        for (const Verdict &v : jobs)
            printReport(std::cout, v);
        if (jobs.size() > 1) {
            const Verdict sweep = rollup(jobs);
            printReport(std::cout, sweep);
        }
    }

    if (!opt.json_path.empty()) {
        if (opt.json_path == "-") {
            writeDoctorDocument(std::cout, source, jobs, thresholds);
        } else {
            const Status st = writeFileAtomic(
                opt.json_path, [&](std::ostream &out) {
                    writeDoctorDocument(out, source, jobs,
                                        thresholds);
                });
            if (!st.ok()) {
                std::cerr << "prism_doctor: cannot write "
                          << opt.json_path << ": " << st.message()
                          << "\n";
                return 2;
            }
        }
    }

    return worstOf(jobs) == FindingStatus::Fail ? 1 : 0;
}
