#!/usr/bin/env sh
# CI gate: configure, build, run the test suite, then hold the bench
# fixture against the committed golden through the prism_doctor
# regression comparator. Exit 0 means the tree is healthy AND the
# fixture sweep's metrics sit within tolerance of the golden.
#
# Usage: tools/ci_gate.sh [build-dir]
#
# Environment:
#   CMAKE_ARGS   extra arguments for the configure step
#   CTEST_ARGS   extra arguments for ctest (e.g. "-L quick")
#   TOLERANCE    relative tolerance for the bench compare (default 0:
#                the fixture is deterministic, bytes must agree)
set -eu

repo=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
build=${1:-"$repo/build"}
tolerance=${TOLERANCE:-0}

echo "== configure =="
# shellcheck disable=SC2086 # CMAKE_ARGS is intentionally word-split
cmake -B "$build" -S "$repo" ${CMAKE_ARGS:-}

echo "== build =="
cmake --build "$build" -j

echo "== test =="
# shellcheck disable=SC2086
(cd "$build" && ctest --output-on-failure ${CTEST_ARGS:-})

echo "== bench regression gate =="
out=$(mktemp -d)
trap 'rm -rf "$out"' EXIT
"$build/tools/prism_bench" fixture --no-timing --out "$out" \
    >/dev/null
"$build/tools/prism_doctor" \
    --compare "$repo/tests/golden/BENCH_fixture.json" \
    "$out/BENCH_fixture.json" --tolerance "$tolerance"

echo "== hot-path gate =="
# Deterministic half: the contract checksums, hit/miss totals and
# interval counts of the pinned 4-/32-core mixes must match the
# committed golden exactly — any drift in victim selection,
# occupancy bookkeeping or interval cadence fails here.
hot_out=$(mktemp -d)
trap 'rm -rf "$out" "$hot_out"' EXIT
"$build/bench/bench_micro_hotpath" --out "$hot_out" --no-timing
"$build/tools/prism_doctor" \
    --compare "$repo/tests/golden/BENCH_hotpath.json" \
    "$hot_out/BENCH_hotpath.json" --tolerance "$tolerance"
# Timed half: accesses/sec on the 32-core mix vs the recorded seed
# baseline and the O(1)-sampler draws/sec A/B, thresholds from
# bench/micro_baseline.hh. The bench exits non-zero on regression.
"$build/bench/bench_micro_hotpath" --out "$hot_out" --gate \
    >/dev/null

echo "== chaos gate =="
# Salvage: first-attempt crashes and allocation failures must be
# retried to full recovery — the sweep, and its doctor verdict,
# succeed end to end (docs/RELIABILITY.md).
chaos_out=$(mktemp -d)
trap 'rm -rf "$out" "$hot_out" "$chaos_out"' EXIT
"$build/tools/prism_bench" fixture --no-timing --out "$chaos_out" \
    --chaos 'job_crash@3*1,alloc_fail@4*1' --doctor >/dev/null
# Quarantine: a job whose every attempt fails must be quarantined,
# fail the run with a non-zero exit, and FAIL the doctor verdict on
# the emitted manifest — never crash the process.
if "$build/tools/prism_bench" fixture --no-timing \
    --out "$chaos_out" --retries 1 --chaos 'job_crash@4' \
    >/dev/null 2>&1; then
    echo "chaos gate: quarantined sweep must exit non-zero" >&2
    exit 1
fi
if "$build/tools/prism_doctor" "$chaos_out/BENCH_fixture.json" \
    >/dev/null; then
    echo "chaos gate: doctor must FAIL on quarantined jobs" >&2
    exit 1
fi

echo "== serve gate =="
# Serving plane (docs/SERVING.md): a small eviction-heavy session
# must produce a prism-serve-v1 document that prism_doctor grades
# without a FAIL — SLO attainment, ΣE/ΣC invariants and the
# chi-square victim-tenant match against Equation 1 all hold.
serve_out=$(mktemp -d)
trap 'rm -rf "$out" "$hot_out" "$chaos_out" "$serve_out"' EXIT
"$build/tools/prism_serve" --tenants 4 --keys 50000 \
    --capacity-mb 8 --interval 8192 --ops 600000 --no-timing \
    --quiet --json "$serve_out/serve.json"
# (no pipeline here: a FAIL exit from the doctor must stop the gate)
"$build/tools/prism_doctor" "$serve_out/serve.json" \
    > "$serve_out/verdict.txt"
cat "$serve_out/verdict.txt"
grep -q "serve.victim_match" "$serve_out/verdict.txt" || {
    echo "serve gate: victim-match check did not run" >&2
    exit 1
}
# Determinism: the same budgeted session at another thread count
# must reproduce the document byte for byte.
"$build/tools/prism_serve" --tenants 4 --keys 50000 \
    --capacity-mb 8 --interval 8192 --ops 600000 --no-timing \
    --quiet --threads 4 --json "$serve_out/serve_t4.json"
cmp "$serve_out/serve.json" "$serve_out/serve_t4.json" || {
    echo "serve gate: document differs across --threads" >&2
    exit 1
}

echo "== plane gate =="
# The CachePlane substrate (DESIGN.md, "The CachePlane substrate"):
# PriSM-WM — the shared controller enforced through CAT-style way
# masks — must run end to end in the driver and earn a verdict with
# no FAIL (the plane.way_quant_error check included) from
# prism_doctor, and the plane-labelled equivalence suites must prove
# the refactored controller reproduces the committed goldens byte
# for byte at every thread count.
plane_out=$(mktemp -d)
trap 'rm -rf "$out" "$hot_out" "$chaos_out" "$serve_out" \
     "$plane_out"' EXIT
"$build/tools/prism_sim" --mix 403.gcc,186.crafty,179.art,470.lbm \
    --scheme PriSM-WM --instr 200000 --warmup 50000 \
    --interval 2048 --stats-json "$plane_out/wm_stats.json" \
    > /dev/null
"$build/tools/prism_doctor" "$plane_out/wm_stats.json" \
    > "$plane_out/wm_verdict.txt"
cat "$plane_out/wm_verdict.txt"
grep -q "PriSM-WM" "$plane_out/wm_stats.json" || {
    echo "plane gate: PriSM-WM run did not report its scheme" >&2
    exit 1
}
# shellcheck disable=SC2086
(cd "$build" && ctest -L plane --output-on-failure ${CTEST_ARGS:-})

echo "== live gate =="
# Live observability plane (docs/OBSERVABILITY.md, "Live metrics &
# online doctor"): prism_serve runs with periodic prism-metrics-v1
# exposition and the online doctor; for a fixed round budget the
# snapshot must be schema-valid (prism_doctor autodetects it), the
# doctor must not FAIL, and two consecutive budgets at two thread
# counts must each produce byte-identical files. prism_top must
# render the snapshot read-only.
live_out=$(mktemp -d)
trap 'rm -rf "$out" "$hot_out" "$chaos_out" "$serve_out" \
     "$plane_out" "$live_out"' EXIT
for ops in 393216 589824; do
    for threads in 1 8; do
        "$build/tools/prism_serve" --tenants 3 --keys 40000 \
            --capacity-mb 4 --shards 16 --streams 8 --batch 1024 \
            --interval 8192 --ops "$ops" --threads "$threads" \
            --no-timing --quiet --seed 2012 \
            --live-doctor --metrics-every 6 \
            --metrics-out "$live_out/m_${ops}_t${threads}.json" \
            --metrics-prom "$live_out/m_${ops}_t${threads}.prom"
    done
    cmp "$live_out/m_${ops}_t1.json" \
        "$live_out/m_${ops}_t8.json" || {
        echo "live gate: snapshot differs across --threads" >&2
        exit 1
    }
    cmp "$live_out/m_${ops}_t1.prom" \
        "$live_out/m_${ops}_t8.prom" || {
        echo "live gate: Prometheus text differs across --threads" >&2
        exit 1
    }
    "$build/tools/prism_doctor" "$live_out/m_${ops}_t1.json" \
        > "$live_out/verdict_${ops}.txt"
done
cmp "$live_out/m_393216_t1.json" "$live_out/m_589824_t1.json" \
    >/dev/null 2>&1 && {
    echo "live gate: different budgets produced the same snapshot" >&2
    exit 1
}
"$build/tools/prism_top" "$live_out/m_589824_t1.json" --once \
    > "$live_out/top.txt"
cat "$live_out/top.txt"
grep -q "round" "$live_out/top.txt" || {
    echo "live gate: prism_top did not render the snapshot" >&2
    exit 1
}
# shellcheck disable=SC2086
(cd "$build" && ctest -L live --output-on-failure ${CTEST_ARGS:-})

echo "== gate passed =="
