/**
 * @file
 * Extension scenario: IPC floors for two foreground programs at once.
 *
 * The paper's Algorithm 3 guards a single core; MultiQosPolicy (an
 * extension this library adds) guards any subset with admission
 * control. Two latency-sensitive services share a quad-core with two
 * batch memory hogs; both get 70% stand-alone-IPC floors.
 */

#include <iostream>

#include "common/table.hh"
#include "prism/alloc_multi_qos.hh"
#include "prism/prism_scheme.hh"
#include "sim/metrics.hh"
#include "sim/runner.hh"
#include "sim/system.hh"

using namespace prism;

int
main()
{
    MachineConfig machine = MachineConfig::forCores(4);
    machine.instrBudget = 3'000'000;
    machine.warmupInstr = 1'000'000;
    machine.intervalMisses =
        machine.llcBytes / machine.blockBytes / 8; // fast control loop

    const Workload workload{
        "multi-qos-demo",
        {"471.omnetpp", "300.twolf", "429.mcf", "470.lbm"},
    };

    Runner runner(machine);
    std::vector<double> sp;
    for (const auto &b : workload.benchmarks)
        sp.push_back(runner.standaloneIpc(b));

    const double floor_frac = 0.7;

    auto run = [&](PartitionScheme *scheme) {
        System system(machine, workload, scheme);
        const SystemResult res = system.run();
        std::vector<std::string> row;
        for (std::size_t c = 0; c < 4; ++c)
            row.push_back(
                Table::num(res.cores[c].ipc() / sp[c], 2));
        return row;
    };

    Table table({"scheme", "omnetpp", "twolf", "mcf", "lbm"});
    {
        auto row = run(nullptr);
        row.insert(row.begin(), "LRU");
        table.addRow(row);
    }
    {
        PrismScheme scheme(
            4,
            std::make_unique<MultiQosPolicy>(std::map<CoreId, double>{
                {0, floor_frac * sp[0]}, {1, floor_frac * sp[1]}}),
            42);
        auto row = run(&scheme);
        row.insert(row.begin(), "PriSM-MultiQoS");
        table.addRow(row);
    }

    std::cout << "Two QoS floors at " << Table::pct(floor_frac)
              << " of stand-alone IPC (cores 0 and 1), batch hogs on "
                 "cores 2 and 3\n\n";
    table.print(std::cout);
    std::cout << "\nCells are slowdowns (IPC shared / IPC alone); "
                 "both guarded programs should sit near "
              << Table::num(floor_frac, 2)
              << " under PriSM-MultiQoS while LRU lets the hogs "
                 "squeeze them.\n";
    return 0;
}
