/**
 * @file
 * Fairness scenario: a latency-sensitive program sharing the LLC
 * with three aggressive co-runners.
 *
 * Compares the slowdown distribution under an unmanaged LRU cache,
 * way-partitioned fairness (Kim et al.) and PriSM-F. Demonstrates
 * the fairness metric and per-core result introspection of the
 * public API.
 */

#include <iostream>

#include "common/table.hh"
#include "sim/runner.hh"

using namespace prism;

int
main()
{
    MachineConfig machine = MachineConfig::forCores(4);
    machine.instrBudget = 1'500'000;
    machine.warmupInstr = 500'000;

    // twolf is the victim: cache-friendly, sharing with a thrasher
    // and two streamers that flood an unmanaged cache.
    Workload workload{
        "fair-demo",
        {"300.twolf", "429.mcf", "470.lbm", "462.libquantum"},
    };

    Runner runner(machine);

    std::cout << "Fairness case study: " << workload.benchmarks[0]
              << " vs three memory hogs\n\n";

    Table table({"scheme", "fairness", "ANTT", "per-core slowdown"});
    for (SchemeKind kind : {SchemeKind::Baseline, SchemeKind::FairWP,
                            SchemeKind::PrismF}) {
        const RunResult r = runner.run(workload, kind);
        std::string slowdowns;
        for (std::size_t c = 0; c < r.ipc.size(); ++c)
            slowdowns +=
                Table::num(r.ipc[c] / r.ipcStandalone[c], 2) + " ";
        table.addRow({r.scheme, Table::num(r.fairness()),
                      Table::num(r.antt()), slowdowns});
    }
    table.print(std::cout);

    std::cout << "\nFairness is min/max of the per-core progress "
                 "ratios: 1.0 means every program suffers equally.\n"
                 "PriSM-F equalises the slowdowns at block "
                 "granularity; way-partitioning can only move whole "
                 "ways.\n";
    return 0;
}
