/**
 * @file
 * Extending PriSM: writing a custom allocation policy.
 *
 * The paper's central design argument is that the probabilistic
 * cache manager decouples *enforcement* from *allocation*: any
 * policy that produces target occupancies plugs in unchanged. This
 * example implements a "communist" policy (equal space for everyone,
 * after Hsu et al. [5]) and an "elitist" policy (all spare capacity
 * to the single program with the steepest shadow-tag curve), runs
 * both through the PriSM manager, and compares them with PriSM-H.
 */

#include <iostream>

#include "common/table.hh"
#include "prism/alloc_hitmax.hh"
#include "prism/alloc_policy.hh"
#include "prism/prism_scheme.hh"
#include "sim/metrics.hh"
#include "sim/runner.hh"
#include "sim/system.hh"

using namespace prism;

namespace
{

/** Equal occupancy for every core, whatever their behaviour. */
class CommunistPolicy : public PrismAllocPolicy
{
  public:
    std::string name() const override { return "Communist"; }

    std::vector<double>
    computeTargets(const IntervalSnapshot &snap) override
    {
        return std::vector<double>(snap.numCores(),
                                   1.0 / snap.numCores());
    }

    unsigned arithmeticOps(unsigned) const override { return 1; }
};

/** Whole cache (minus a floor) to the core gaining the most hits. */
class ElitistPolicy : public PrismAllocPolicy
{
  public:
    std::string name() const override { return "Elitist"; }

    std::vector<double>
    computeTargets(const IntervalSnapshot &snap) override
    {
        CoreId best = 0;
        double best_gain = -1.0;
        for (CoreId c = 0; c < snap.numCores(); ++c) {
            const double gain =
                snap.cores[c].standAloneHits() -
                static_cast<double>(snap.cores[c].sharedHits);
            if (gain > best_gain) {
                best_gain = gain;
                best = c;
            }
        }
        const double floor = 0.02;
        std::vector<double> t(snap.numCores(), floor);
        t[best] = 1.0 - floor * (snap.numCores() - 1);
        return t;
    }

    unsigned
    arithmeticOps(unsigned num_cores) const override
    {
        return 2 * num_cores;
    }
};

} // namespace

int
main()
{
    MachineConfig machine = MachineConfig::forCores(4);
    machine.instrBudget = 1'500'000;
    machine.warmupInstr = 500'000;

    const Workload workload{
        "custom-demo",
        {"179.art", "300.twolf", "470.lbm", "186.crafty"},
    };

    Runner runner(machine);
    std::vector<double> sp;
    for (const auto &b : workload.benchmarks)
        sp.push_back(runner.standaloneIpc(b));

    auto evaluate = [&](std::unique_ptr<PrismAllocPolicy> policy) {
        PrismScheme scheme(machine.numCores, std::move(policy), 42);
        System system(machine, workload, &scheme);
        const SystemResult res = system.run();
        std::vector<double> mp;
        std::string occ;
        for (const auto &core : res.cores) {
            mp.push_back(core.ipc());
            occ += Table::num(core.occupancyAtFinish, 2) + " ";
        }
        return std::pair<double, std::string>(antt(sp, mp), occ);
    };

    Table table({"policy", "ANTT", "final occupancy"});
    {
        const auto [a, occ] = evaluate(std::make_unique<HitMaxPolicy>());
        table.addRow({"HitMax (Algorithm 1)", Table::num(a), occ});
    }
    {
        const auto [a, occ] =
            evaluate(std::make_unique<CommunistPolicy>());
        table.addRow({"Communist (equal split)", Table::num(a), occ});
    }
    {
        const auto [a, occ] = evaluate(std::make_unique<ElitistPolicy>());
        table.addRow({"Elitist (winner takes all)", Table::num(a), occ});
    }

    std::cout << "Custom allocation policies on the PriSM manager\n"
              << "workload:";
    for (const auto &b : workload.benchmarks)
        std::cout << ' ' << b;
    std::cout << "\n\n";
    table.print(std::cout);
    std::cout << "\nWriting a policy is ~20 lines: subclass "
                 "PrismAllocPolicy, return target occupancies, and "
                 "the manager turns them into eviction probabilities "
                 "via Equation 1.\n";
    return 0;
}
