/**
 * @file
 * QoS scenario: guarantee 80% of stand-alone IPC for a foreground
 * program regardless of co-runners.
 *
 * Sweeps increasingly hostile co-runner mixes and shows PriSM-Q
 * holding core 0 at its floor while hit-maximising the rest —
 * Algorithm 3 of the paper driven through the public Runner API.
 */

#include <iostream>

#include "common/table.hh"
#include "sim/runner.hh"

using namespace prism;

int
main()
{
    MachineConfig machine = MachineConfig::forCores(4);
    machine.instrBudget = 4'000'000;
    machine.warmupInstr = 1'000'000;
    machine.intervalMisses = machine.llcBytes / 64 / 8; // fast control loop

    const std::string foreground = "471.omnetpp";
    const std::vector<std::vector<std::string>> co_runners{
        {"403.gcc", "186.crafty", "197.parser"},     // gentle
        {"300.twolf", "175.vpr", "401.bzip2"},       // competing
        {"429.mcf", "470.lbm", "462.libquantum"},    // hostile
    };
    const char *labels[] = {"gentle", "competing", "hostile"};

    Runner runner(machine);
    std::cout << "QoS case study: keep " << foreground
              << " at >= 80% of its stand-alone IPC\n\n";

    Table table({"co-runners", "scheme", "core0 slowdown",
                 "others' throughput"});
    for (std::size_t i = 0; i < co_runners.size(); ++i) {
        Workload w{"qos-demo", {foreground}};
        for (const auto &b : co_runners[i])
            w.benchmarks.push_back(b);

        for (SchemeKind kind :
             {SchemeKind::Baseline, SchemeKind::PrismQ}) {
            const RunResult r = runner.run(w, kind);
            const double slowdown = r.ipc[0] / r.ipcStandalone[0];
            double rest = 0.0;
            for (std::size_t c = 1; c < r.ipc.size(); ++c)
                rest += r.ipc[c];
            table.addRow({i == 0 && kind == SchemeKind::Baseline
                              ? labels[i]
                              : (kind == SchemeKind::Baseline
                                     ? labels[i]
                                     : ""),
                          r.scheme, Table::num(slowdown),
                          Table::num(rest)});
        }
    }
    table.print(std::cout);

    std::cout << "\nUnder PriSM-Q core 0 stays near the 0.80 floor "
                 "even against the hostile mix; the remaining space "
                 "is hit-maximised across the co-runners.\n";
    return 0;
}
