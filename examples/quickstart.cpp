/**
 * @file
 * Quickstart: run one quad-core workload under the LRU baseline and
 * PriSM-H, and compare hit rates and ANTT.
 *
 * Build & run:
 *   cmake -B build -G Ninja && cmake --build build
 *   ./build/examples/quickstart
 */

#include <iostream>

#include "common/table.hh"
#include "sim/runner.hh"
#include "workload/suites.hh"

using namespace prism;

int
main()
{
    // The paper's quad-core machine: 4MB, 16-way shared L2.
    MachineConfig machine = MachineConfig::forCores(4);
    machine.instrBudget = 1'000'000;
    machine.warmupInstr = 250'000;

    Runner runner(machine);

    // Q7 is the paper's best case: one cache-friendly program
    // (179.art) sharing with two streaming programs.
    const Workload workload = suites::quadCore()[6];

    std::cout << "Workload " << workload.name << ":";
    for (const auto &b : workload.benchmarks)
        std::cout << ' ' << b;
    std::cout << "\n\n";

    Table table({"scheme", "ANTT", "throughput", "per-core IPC"});
    for (SchemeKind kind : {SchemeKind::Baseline, SchemeKind::PrismH}) {
        const RunResult r = runner.run(workload, kind);
        std::string ipcs;
        for (double ipc : r.ipc)
            ipcs += Table::num(ipc, 2) + " ";
        table.addRow({r.scheme, Table::num(r.antt()),
                      Table::num(r.ipcThroughput()), ipcs});
    }
    table.print(std::cout);

    std::cout << "\nLower ANTT is better; PriSM-H should clearly beat "
                 "the LRU baseline here.\n";
    return 0;
}
