/**
 * @file
 * End-to-end fault-tolerance tests for prism_bench, exercised as a
 * subprocess: crash-safe checkpoint/resume byte-identity (a SIGKILLed
 * sweep resumed with --resume merges to exactly the bytes of an
 * uninterrupted run, at any thread count), chaos-injected failure
 * salvage and quarantine, the non-zero exit contract, corrupt
 * checkpoint recovery, and prism_doctor's checkpoint/manifest
 * verdicts. This is the acceptance suite for docs/RELIABILITY.md.
 */

#include <gtest/gtest.h>

#include <array>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <sys/wait.h>

namespace
{

std::string
benchBin()
{
    if (const char *p = std::getenv("PRISM_BENCH_BIN"))
        return p;
#ifdef PRISM_BENCH_BIN_DEFAULT
    return PRISM_BENCH_BIN_DEFAULT;
#else
    return "tools/prism_bench";
#endif
}

std::string
doctorBin()
{
    if (const char *p = std::getenv("PRISM_DOCTOR_BIN"))
        return p;
#ifdef PRISM_DOCTOR_BIN_DEFAULT
    return PRISM_DOCTOR_BIN_DEFAULT;
#else
    return "tools/prism_doctor";
#endif
}

/**
 * Run a command, capture stdout+stderr, return (status, output).
 * The status is the raw wait status: exitCode() decodes it, and a
 * SIGKILLed child reports signalled() instead of a clean exit.
 */
struct RunOutcome
{
    int status = 0;
    std::string out;

    int
    exitCode() const
    {
        return WIFEXITED(status) ? WEXITSTATUS(status) : -1;
    }

    bool
    cleanExit() const
    {
        return WIFEXITED(status) && WEXITSTATUS(status) == 0;
    }
};

RunOutcome
run(const std::string &bin, const std::string &args)
{
    const std::string cmd = bin + " " + args + " 2>&1";
    FILE *pipe = popen(cmd.c_str(), "r");
    EXPECT_NE(pipe, nullptr);
    RunOutcome r;
    std::array<char, 4096> buf;
    while (std::size_t n = std::fread(buf.data(), 1, buf.size(), pipe))
        r.out.append(buf.data(), n);
    r.status = pclose(pipe);
    return r;
}

std::string
slurp(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    EXPECT_TRUE(in) << "missing " << path;
    std::ostringstream os;
    os << in.rdbuf();
    return os.str();
}

/** Fresh scratch directory under the test temp dir. */
std::string
scratchDir(const std::string &name)
{
    const std::string dir = testing::TempDir() + "resume_" + name;
    std::filesystem::remove_all(dir);
    std::filesystem::create_directories(dir);
    return dir;
}

/** The fixture sweep's JSON with stable (timing-free) bytes. */
std::string
benchFixture(const std::string &out_dir, const std::string &extra = "")
{
    return "fixture --no-timing --out " + out_dir +
           (extra.empty() ? "" : " " + extra);
}

} // namespace

// --- crash-safe checkpoint / resume ---

class ResumeByteIdentity : public testing::TestWithParam<unsigned>
{
};

TEST_P(ResumeByteIdentity, KilledSweepResumesToIdenticalBytes)
{
    const unsigned threads = GetParam();
    const std::string tag = "bytes_t" + std::to_string(threads);
    const std::string base_dir = scratchDir(tag + "_base");
    const std::string res_dir = scratchDir(tag + "_res");
    const std::string ckpt = base_dir + "/fixture.ckpt.json";
    const std::string threads_arg =
        "--threads " + std::to_string(threads);

    // Uninterrupted reference run.
    const RunOutcome ref =
        run(benchBin(), benchFixture(base_dir, threads_arg));
    ASSERT_TRUE(ref.cleanExit()) << ref.out;
    const std::string golden = slurp(base_dir + "/BENCH_fixture.json");

    // Interrupted run: SIGKILL after the third checkpointed job.
    const RunOutcome killed = run(
        benchBin(), benchFixture(res_dir, threads_arg + " --ckpt " +
                                              ckpt + " --die-after 3"));
    EXPECT_FALSE(killed.cleanExit())
        << "--die-after must kill the process: " << killed.out;
    ASSERT_TRUE(std::filesystem::exists(ckpt))
        << "the checkpoint must survive the kill";

    // Resume and compare bytes.
    const RunOutcome resumed = run(
        benchBin(), benchFixture(res_dir, threads_arg + " --ckpt " +
                                              ckpt + " --resume"));
    ASSERT_TRUE(resumed.cleanExit()) << resumed.out;
    EXPECT_NE(resumed.out.find("resume: restoring"),
              std::string::npos)
        << resumed.out;
    EXPECT_EQ(slurp(res_dir + "/BENCH_fixture.json"), golden)
        << "resumed sweep must merge to byte-identical output";

    // A finished sweep reclaims its checkpoint.
    EXPECT_FALSE(std::filesystem::exists(ckpt));

    std::filesystem::remove_all(base_dir);
    std::filesystem::remove_all(res_dir);
}

INSTANTIATE_TEST_SUITE_P(Threads, ResumeByteIdentity,
                         testing::Values(1u, 2u, 8u));

TEST(Resume, MissingCheckpointRunsFullSweep)
{
    const std::string dir = scratchDir("missing_ckpt");
    const RunOutcome r = run(
        benchBin(),
        benchFixture(dir, "--ckpt " + dir + "/none.ckpt.json --resume"));
    EXPECT_TRUE(r.cleanExit()) << r.out;
    EXPECT_NE(r.out.find("resume: no checkpoint"), std::string::npos);
    EXPECT_TRUE(
        std::filesystem::exists(dir + "/BENCH_fixture.json"));
    std::filesystem::remove_all(dir);
}

TEST(Resume, CorruptCheckpointRestartsFromScratch)
{
    const std::string dir = scratchDir("corrupt_ckpt");
    const std::string ckpt = dir + "/fixture.ckpt.json";
    {
        std::ofstream out(ckpt);
        out << "{\"schema\": \"prism-ckpt-v1\", \"jobs\": [tru";
    }
    const RunOutcome r = run(
        benchBin(), benchFixture(dir, "--ckpt " + ckpt + " --resume"));
    EXPECT_TRUE(r.cleanExit()) << r.out;
    EXPECT_NE(r.out.find("restarting the sweep from scratch"),
              std::string::npos)
        << r.out;
    EXPECT_TRUE(
        std::filesystem::exists(dir + "/BENCH_fixture.json"));
    std::filesystem::remove_all(dir);
}

// --- chaos: salvage and quarantine ---

TEST(Chaos, FirstAttemptCrashesAreSalvaged)
{
    const std::string dir = scratchDir("salvage");
    // Crash the first attempt of jobs 3, 6, 9; the retry layer must
    // recover all three and the sweep succeed end to end.
    const RunOutcome r = run(
        benchBin(),
        benchFixture(dir, "--chaos job_crash@3*1 --chaos-seed 7"));
    EXPECT_TRUE(r.cleanExit()) << r.out;
    EXPECT_NE(r.out.find("exec: recovered 3 job(s)"),
              std::string::npos)
        << r.out;
    // The salvaged sweep's JSON carries the exec manifest.
    const std::string json = slurp(dir + "/BENCH_fixture.json");
    EXPECT_NE(json.find("\"exec\""), std::string::npos);
    EXPECT_NE(json.find("\"recovered\": 3"), std::string::npos);
    std::filesystem::remove_all(dir);
}

TEST(Chaos, ExhaustedRetriesQuarantineAndFailTheRun)
{
    const std::string dir = scratchDir("quarantine");
    const RunOutcome r = run(
        benchBin(),
        benchFixture(dir, "--retries 0 --chaos job_crash@4"));
    EXPECT_FALSE(r.cleanExit())
        << "quarantined jobs must fail the run: " << r.out;
    EXPECT_EQ(r.exitCode(), 1) << r.out;
    // The failed jobs are named on stderr...
    EXPECT_NE(r.out.find("quarantined after"), std::string::npos)
        << r.out;
    EXPECT_NE(r.out.find("exec: quarantined 2 job(s)"),
              std::string::npos)
        << r.out;
    // ...and carried as "error" objects in the JSON manifest.
    const std::string json = slurp(dir + "/BENCH_fixture.json");
    EXPECT_NE(json.find("\"error\""), std::string::npos);
    EXPECT_NE(json.find("\"quarantined\""), std::string::npos);
    std::filesystem::remove_all(dir);
}

TEST(Chaos, AllocFailAndCrashMixStillCompletes)
{
    const std::string dir = scratchDir("mixed");
    const RunOutcome r = run(
        benchBin(),
        benchFixture(dir,
                     "--chaos job_crash@3*1,alloc_fail@4*1 --doctor"));
    // Everything recovers, so the doctor must not fail the run...
    EXPECT_TRUE(r.cleanExit()) << r.out;
    // ...but it must surface the retried attempts as warnings.
    EXPECT_NE(r.out.find("exec"), std::string::npos) << r.out;
    std::filesystem::remove_all(dir);
}

TEST(Chaos, BadChaosSpecFails)
{
    const std::string dir = scratchDir("bad_chaos");
    const RunOutcome sim_kind =
        run(benchBin(), benchFixture(dir, "--chaos nan@3"));
    EXPECT_EQ(sim_kind.exitCode(), 2);
    EXPECT_NE(sim_kind.out.find("simulation-level"),
              std::string::npos);

    const RunOutcome unsupervised = run(
        benchBin(),
        benchFixture(dir, "--no-supervise --chaos job_crash@3"));
    EXPECT_EQ(unsupervised.exitCode(), 2) << unsupervised.out;
    std::filesystem::remove_all(dir);
}

// --- prism_doctor integration ---

TEST(DoctorExec, FlagsQuarantinedJobsInBenchJson)
{
    const std::string dir = scratchDir("doctor_bench");
    const RunOutcome bench = run(
        benchBin(),
        benchFixture(dir, "--retries 0 --chaos job_crash@4"));
    EXPECT_EQ(bench.exitCode(), 1) << bench.out;

    const RunOutcome doc =
        run(doctorBin(), dir + "/BENCH_fixture.json");
    EXPECT_EQ(doc.exitCode(), 1)
        << "quarantined jobs must FAIL the doctor: " << doc.out;
    EXPECT_NE(doc.out.find("exec.job_quarantined"), std::string::npos)
        << doc.out;
    std::filesystem::remove_all(dir);
}

TEST(DoctorExec, ValidCheckpointPassesCorruptFails)
{
    const std::string dir = scratchDir("doctor_ckpt");
    const std::string ckpt = dir + "/fixture.ckpt.json";

    // A degraded sweep keeps its checkpoint for --resume retries;
    // that file is a valid prism-ckpt-v1 document.
    const RunOutcome bench = run(
        benchBin(), benchFixture(dir, "--retries 0 --chaos "
                                      "job_crash@4 --ckpt " +
                                          ckpt));
    EXPECT_EQ(bench.exitCode(), 1) << bench.out;
    EXPECT_NE(bench.out.find("checkpoint kept"), std::string::npos)
        << bench.out;
    ASSERT_TRUE(std::filesystem::exists(ckpt));

    const RunOutcome ok = run(doctorBin(), "--ckpt " + ckpt);
    EXPECT_TRUE(ok.cleanExit()) << ok.out;
    EXPECT_NE(ok.out.find("completed job(s)"), std::string::npos)
        << ok.out;

    // Tear the file; the doctor must flag it and exit non-zero.
    const std::string payload = slurp(ckpt);
    {
        std::ofstream torn(ckpt, std::ios::trunc);
        torn << payload.substr(0, payload.size() / 2);
    }
    const RunOutcome bad = run(doctorBin(), "--ckpt " + ckpt);
    EXPECT_EQ(bad.exitCode(), 1) << bad.out;
    EXPECT_NE(bad.out.find("FAIL"), std::string::npos) << bad.out;
    std::filesystem::remove_all(dir);
}

// --- option validation ---

TEST(ResumeCli, ResumeRequiresCheckpointPath)
{
    const RunOutcome r = run(benchBin(), "fixture --resume");
    EXPECT_EQ(r.exitCode(), 2);
    EXPECT_NE(r.out.find("--resume requires --ckpt"),
              std::string::npos);
}
