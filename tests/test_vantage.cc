/**
 * @file
 * Tests for the set-associative Vantage adaptation.
 */

#include <gtest/gtest.h>

#include "cache/shared_cache.hh"
#include "common/rng.hh"
#include "policies/vantage.hh"

using namespace prism;

namespace
{

CacheConfig
cfg()
{
    CacheConfig c;
    c.sizeBytes = 64 * 1024; // 1024 blocks
    c.ways = 8;              // 128 sets
    c.numCores = 2;
    c.repl = ReplKind::TimestampLRU;
    c.intervalMisses = 1u << 20;
    return c;
}

} // namespace

TEST(Vantage, InitialTargetsShareManagedRegion)
{
    VantageScheme v(2, 1024, 8);
    EXPECT_NEAR(v.targetBlocks(0), 0.95 * 1024 / 2, 1.0);
    EXPECT_NEAR(v.targetBlocks(1), 0.95 * 1024 / 2, 1.0);
}

TEST(Vantage, ApertureZeroWhenUnderTarget)
{
    VantageScheme v(2, 1024, 8);
    EXPECT_DOUBLE_EQ(v.aperture(0), 0.0);
}

TEST(Vantage, FillsAreManaged)
{
    SharedCache cache(cfg());
    VantageScheme v(2, 1024, 8);
    cache.setScheme(&v);
    for (std::uint64_t t = 0; t < 100; ++t)
        cache.access(0, t);
    EXPECT_EQ(v.managedSize(0), 100u);
}

TEST(Vantage, OverTargetPartitionGetsDemoted)
{
    SharedCache cache(cfg());
    VantageScheme v(2, 1024, 8);
    cache.setScheme(&v);

    // Core 0 floods the cache far past its ~487-block target.
    for (std::uint64_t t = 0; t < 20000; ++t)
        cache.access(0, t % 4096);
    EXPECT_GT(v.demotions(), 0u);
    // Managed size should be pulled towards the target.
    EXPECT_LT(v.managedSize(0), 1024u);
}

TEST(Vantage, VictimPrefersUnmanagedRegion)
{
    SharedCache cache(cfg());
    VantageScheme v(2, 1024, 8);
    cache.setScheme(&v);
    // Warm up with enough traffic that demotions populate the
    // unmanaged region; forced evictions should then be rare.
    for (std::uint64_t t = 0; t < 50000; ++t)
        cache.access(0, t % 4096);
    const double forced_frac =
        static_cast<double>(v.forcedEvictions()) / 50000.0;
    EXPECT_LT(forced_frac, 0.5);
}

TEST(Vantage, HitPromotesUnmanagedBlock)
{
    SharedCache cache(cfg());
    VantageScheme v(2, 1024, 8);
    cache.setScheme(&v);

    cache.access(0, 42);
    // Manually demote the block, then hit it: it must be re-promoted.
    const std::uint32_t set_idx = cache.setIndex(42);
    SetView set = cache.setView(set_idx);
    for (std::size_t w = 0; w < set.ways(); ++w) {
        if (set.blocks[w].valid && set.blocks[w].tag == 42) {
            set.blocks[w].region = regionUnmanaged;
        }
    }
    const auto before = v.managedSize(0);
    cache.access(0, 42);
    EXPECT_EQ(v.managedSize(0), before + 1);
}

TEST(Vantage, IntervalRecomputesTargets)
{
    VantageScheme v(2, 1024, 8);
    IntervalSnapshot snap;
    snap.totalBlocks = 1024;
    snap.ways = 8;
    snap.intervalMisses = 512;
    snap.cores.resize(2);
    snap.cores[0].shadowHitsAtPosition = {100, 100, 100, 100,
                                          100, 100, 100, 100};
    snap.cores[1].shadowHitsAtPosition = {1, 0, 0, 0, 0, 0, 0, 0};
    v.onIntervalEnd(snap);
    EXPECT_GT(v.targetBlocks(0), v.targetBlocks(1));
    const double total = v.targetBlocks(0) + v.targetBlocks(1);
    EXPECT_NEAR(total, 0.95 * 1024, 2.0);
}

TEST(Vantage, ManagedSizeConservation)
{
    SharedCache cache(cfg());
    VantageScheme v(2, 1024, 8);
    cache.setScheme(&v);
    Rng rng(8);
    for (int i = 0; i < 100000; ++i)
        cache.access(static_cast<CoreId>(rng.below(2)),
                     rng.below(8192));

    // Managed counters must equal a direct scan of the block array.
    std::uint64_t managed[2] = {0, 0};
    for (std::uint32_t s = 0; s < cache.numSets(); ++s) {
        SetView set = cache.setView(s);
        for (std::size_t w = 0; w < set.ways(); ++w) {
            const auto blk = set.blocks[w];
            if (blk.valid && blk.region == regionManaged)
                ++managed[blk.owner];
        }
    }
    EXPECT_EQ(v.managedSize(0), managed[0]);
    EXPECT_EQ(v.managedSize(1), managed[1]);
}
