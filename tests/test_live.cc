/**
 * @file
 * Live observability plane, in-process: ServeLiveObserver snapshots
 * must be byte-identical at 1, 2 and 8 engine threads; the online
 * doctor's verdict must match what offline analyze() computes from
 * the very snapshot it was embedded in (the acceptance criterion of
 * docs/OBSERVABILITY.md, "Live metrics & online doctor"); the
 * committed METRICS_fixture.json golden pins the prism-metrics-v1
 * format; and a raised stop flag ends the run at the next round
 * boundary with the final snapshot still written.
 *
 * Regenerate the golden after an intentional format change:
 *   PRISM_UPDATE_GOLDEN=1 build/tests/test_live \
 *       --gtest_filter=MetricsGolden.*
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "analysis/doctor.hh"
#include "analysis/online_doctor.hh"
#include "analysis/series.hh"
#include "common/json.hh"
#include "serve/serve_engine.hh"
#include "telemetry/exporter.hh"

using namespace prism;
using namespace prism::analysis;
using namespace prism::serve;

namespace
{

/** The eviction-heavy serve fixture (test_serve_determinism), with
 *  the op budget rounded to whole rounds: 48 rounds, 9 intervals. */
ServeConfig
fixtureConfig()
{
    ServeConfig config;
    TenantSpec spec;
    spec.keys = 40000;
    config.tenants.assign(3, spec);
    config.tenants[2].zipf = 0.8;
    config.capacityBytes = 4ull << 20;
    config.shards = 16;
    config.streams = 8;
    config.batch = 1024;
    config.intervalMisses = 8192;
    config.opBudget = 393216;
    config.timing = false;
    config.seed = 2012;
    return config;
}

LiveObserverOptions
liveOptions()
{
    LiveObserverOptions live;
    live.windowCapacity = 64;
    live.onlineDoctor = true;
    return live;
}

struct LiveRun
{
    ServeResult result;
    std::string snapshotJson;
    std::string verdictJson;
};

std::string
renderSnapshot(const ServeLiveObserver &observer)
{
    std::ostringstream os;
    telemetry::MetricsExporter::writeJson(os, observer.snapshot());
    os << "\n"; // MetricsExporter::flush writes a trailing newline
    return os.str();
}

std::string
renderVerdict(const Verdict &v)
{
    std::ostringstream os;
    JsonWriter w(os);
    writeVerdictJson(w, v);
    return os.str();
}

LiveRun
runLive(ServeConfig config, std::uint32_t threads,
        LiveObserverOptions live = liveOptions())
{
    config.threads = threads;
    ServeLiveObserver observer(config, live);
    config.observer = &observer;
    ServeEngine engine(config);
    LiveRun out;
    out.result = engine.run();
    out.snapshotJson = renderSnapshot(observer);
    if (observer.doctorEnabled() && observer.doctor().evaluated())
        out.verdictJson = renderVerdict(observer.doctor().verdict());
    return out;
}

} // namespace

TEST(LivePlane, SnapshotIsByteIdenticalAcrossThreadCounts)
{
    const ServeConfig config = fixtureConfig();
    const LiveRun t1 = runLive(config, 1);
    const LiveRun t2 = runLive(config, 2);
    const LiveRun t8 = runLive(config, 8);

    EXPECT_GT(t1.snapshotJson.size(), 0u);
    EXPECT_EQ(t1.snapshotJson, t2.snapshotJson);
    EXPECT_EQ(t1.snapshotJson, t8.snapshotJson);
}

TEST(LivePlane, OnlineVerdictIsByteIdenticalAcrossThreadCounts)
{
    const ServeConfig config = fixtureConfig();
    const LiveRun t1 = runLive(config, 1);
    const LiveRun t8 = runLive(config, 8);

    ASSERT_FALSE(t1.verdictJson.empty())
        << "fixture must close intervals for the doctor to grade";
    EXPECT_EQ(t1.verdictJson, t8.verdictJson);
}

TEST(LivePlane, SnapshotCarriesTheSectionsTheFixtureExercises)
{
    const LiveRun live = runLive(fixtureConfig(), 2);

    JsonValue doc;
    ASSERT_TRUE(parseJson(live.snapshotJson, doc).ok());
    EXPECT_EQ(doc.at("schema").asString(), "prism-metrics-v1");
    EXPECT_EQ(doc.at("source").asString(), "serve");
    EXPECT_EQ(doc.at("run").asString(), "serve/PriSM-H");
    EXPECT_EQ(doc.at("round").asU64(), live.result.rounds);
    EXPECT_EQ(doc.at("ops").asU64(), live.result.ops);
    EXPECT_EQ(doc.at("intervals").asU64(), live.result.intervals);
    EXPECT_EQ(doc.at("totals").at("evictions").asU64(),
              live.result.evictions);
    ASSERT_EQ(doc.at("tenants").size(), 3u);
    EXPECT_TRUE(doc.at("tenants")
                    .at(std::size_t{0})
                    .at("window")
                    .isObject());
    EXPECT_EQ(doc.at("window").at("size").asU64(),
              live.result.intervals)
        << "the fixture closes fewer intervals than the window "
           "capacity, so all of them stay retained";
    EXPECT_FALSE(doc.at("doctor").at("overall").asString().empty());
}

TEST(LivePlane, OnlineVerdictMatchesOfflineAnalyzeOnTheSnapshot)
{
    const ServeConfig config = fixtureConfig();
    LiveObserverOptions live = liveOptions();
    const LiveRun run = runLive(config, 2, live);

    // Re-grade the snapshot exactly the way `prism_doctor FILE`
    // does: parse, lift a RunSeries out of prism-metrics-v1, run
    // analyze() with the same thresholds.
    JsonValue doc;
    ASSERT_TRUE(parseJson(run.snapshotJson, doc).ok());
    RunSeries series;
    ASSERT_TRUE(seriesFromMetricsJson(doc, series).ok());
    const Verdict offline = analyze(series, live.thresholds);

    ASSERT_FALSE(run.verdictJson.empty());
    EXPECT_EQ(run.verdictJson, renderVerdict(offline))
        << "the embedded online verdict must equal the offline "
           "re-analysis of the same snapshot";
}

TEST(LivePlane, RaisedStopFlagEndsTheRunWithSnapshotIntact)
{
    ServeConfig config = fixtureConfig();
    std::atomic<bool> stop{true};
    config.stopFlag = &stop;

    const LiveRun live = runLive(config, 2);
    EXPECT_TRUE(live.result.stopped);
    EXPECT_LT(live.result.rounds, 48u);

    JsonValue doc;
    ASSERT_TRUE(parseJson(live.snapshotJson, doc).ok());
    EXPECT_EQ(doc.at("round").asU64(), live.result.rounds)
        << "the final snapshot reflects where the run stopped";
}

// --- Golden prism-metrics-v1 snapshot -----------------------------

#ifndef PRISM_METRICS_GOLDEN_DEFAULT
#define PRISM_METRICS_GOLDEN_DEFAULT \
    "tests/golden/METRICS_fixture.json"
#endif

TEST(MetricsGolden, MatchesCommittedFixture)
{
    const char *path_env = std::getenv("PRISM_METRICS_GOLDEN");
    const std::string path =
        path_env ? path_env : PRISM_METRICS_GOLDEN_DEFAULT;

    const LiveRun live = runLive(fixtureConfig(), 2);

    if (std::getenv("PRISM_UPDATE_GOLDEN")) {
        std::ofstream out(path, std::ios::binary);
        ASSERT_TRUE(out) << "cannot write " << path;
        out << live.snapshotJson;
        GTEST_SKIP() << "regenerated " << path;
    }

    std::ifstream in(path, std::ios::binary);
    ASSERT_TRUE(in) << "missing golden snapshot " << path
                    << " (regenerate with PRISM_UPDATE_GOLDEN=1)";
    std::ostringstream golden;
    golden << in.rdbuf();
    EXPECT_EQ(live.snapshotJson, golden.str())
        << "prism-metrics-v1 format drifted; if intentional "
           "regenerate with PRISM_UPDATE_GOLDEN=1";
}
