/**
 * @file
 * Tests for the per-set recency-list helpers and coarse timestamps.
 */

#include <gtest/gtest.h>

#include "cache/cache_block.hh"

using namespace prism;

namespace
{

SetState
makeOrder(std::initializer_list<int> ways)
{
    SetState st;
    for (int w : ways)
        st.order.push_back(static_cast<std::uint16_t>(w));
    return st;
}

} // namespace

TEST(Recency, FindLocatesWay)
{
    SetState st = makeOrder({3, 1, 2});
    EXPECT_EQ(recency::find(st, 3), 0);
    EXPECT_EQ(recency::find(st, 1), 1);
    EXPECT_EQ(recency::find(st, 2), 2);
    EXPECT_EQ(recency::find(st, 9), -1);
}

TEST(Recency, MoveToFrontExisting)
{
    SetState st = makeOrder({3, 1, 2});
    recency::moveToFront(st, 2);
    EXPECT_EQ(st.order, (std::vector<std::uint16_t>{2, 3, 1}));
}

TEST(Recency, MoveToFrontNew)
{
    SetState st = makeOrder({3, 1});
    recency::moveToFront(st, 7);
    EXPECT_EQ(st.order, (std::vector<std::uint16_t>{7, 3, 1}));
}

TEST(Recency, RemoveAbsentIsNoop)
{
    SetState st = makeOrder({1, 2});
    recency::remove(st, 9);
    EXPECT_EQ(st.order.size(), 2u);
}

TEST(Recency, PromoteByOne)
{
    SetState st = makeOrder({3, 1, 2});
    recency::promoteByOne(st, 2);
    EXPECT_EQ(st.order, (std::vector<std::uint16_t>{3, 2, 1}));
    // Promoting the MRU way is a no-op.
    recency::promoteByOne(st, 3);
    EXPECT_EQ(st.order.front(), 3);
}

TEST(Recency, InsertAtLruOffset)
{
    SetState st = makeOrder({3, 1, 2});
    recency::insertAtLruOffset(st, 7, 0); // LRU position
    EXPECT_EQ(st.order.back(), 7);
    recency::insertAtLruOffset(st, 8, 2);
    EXPECT_EQ(st.order, (std::vector<std::uint16_t>{3, 1, 8, 2, 7}));
}

TEST(Recency, InsertAtLruOffsetClamped)
{
    SetState st = makeOrder({1});
    recency::insertAtLruOffset(st, 5, 100); // beyond MRU -> front
    EXPECT_EQ(st.order.front(), 5);
}

TEST(Recency, InsertReinsertsExisting)
{
    SetState st = makeOrder({3, 1, 2});
    recency::insertAtLruOffset(st, 3, 0); // move MRU to LRU position
    EXPECT_EQ(st.order, (std::vector<std::uint16_t>{1, 2, 3}));
}

TEST(Recency, LruWay)
{
    SetState st = makeOrder({3, 1, 2});
    EXPECT_EQ(recency::lruWay(st), 2);
}

TEST(CoarseTs, AgeWrapsCorrectly)
{
    BlockArrays blocks(4);
    SetState st;
    SetView set{0, SetBlocks(blocks, 0, 4), st};

    // Touch way 0, then advance the clock by many accesses.
    coarse_ts::touch(set, 0);
    for (int i = 0; i < 100; ++i)
        ++set.state.accesses;
    coarse_ts::touch(set, 1);
    EXPECT_GT(coarse_ts::age(set, 0), coarse_ts::age(set, 1));
}

TEST(CoarseTs, FreshTouchHasAgeZero)
{
    BlockArrays blocks(2);
    SetState st;
    SetView set{0, SetBlocks(blocks, 0, 2), st};
    coarse_ts::touch(set, 0);
    EXPECT_EQ(coarse_ts::age(set, 0), 0u);
}
