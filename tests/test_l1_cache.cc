/**
 * @file
 * Tests for the private L1 cache model.
 */

#include <gtest/gtest.h>

#include "cache/l1_cache.hh"
#include "common/rng.hh"

using namespace prism;

TEST(L1Cache, MissThenHit)
{
    L1Cache l1;
    EXPECT_FALSE(l1.access(100));
    EXPECT_TRUE(l1.access(100));
    EXPECT_EQ(l1.hits(), 1u);
    EXPECT_EQ(l1.misses(), 1u);
}

TEST(L1Cache, TwoWayConflict)
{
    // 1KB, 2-way, 64B blocks -> 8 sets. Three blocks mapping to set 0
    // cannot all be resident.
    L1Cache l1(1024, 2, 64);
    l1.access(0);
    l1.access(8);
    l1.access(16); // evicts LRU (0)
    EXPECT_FALSE(l1.access(0));
    EXPECT_TRUE(l1.access(16));
}

TEST(L1Cache, LruWithinSet)
{
    L1Cache l1(1024, 2, 64);
    l1.access(0);
    l1.access(8);
    l1.access(0);  // 8 now LRU
    l1.access(16); // evicts 8
    EXPECT_TRUE(l1.access(0));
    EXPECT_FALSE(l1.access(8));
}

TEST(L1Cache, AbsorbsSmallWorkingSet)
{
    L1Cache l1; // 64KB = 1024 blocks
    Rng rng(1);
    // Warm 256 blocks (well within capacity).
    for (int pass = 0; pass < 20; ++pass)
        for (Addr a = 0; a < 256; ++a)
            l1.access(a);
    const auto hits_before = l1.hits();
    for (int i = 0; i < 10000; ++i)
        l1.access(rng.below(256));
    EXPECT_EQ(l1.hits() - hits_before, 10000u);
}

TEST(L1Cache, StreamsAlwaysMiss)
{
    L1Cache l1;
    for (Addr a = 0; a < 100000; ++a)
        EXPECT_FALSE(l1.access(a * 7919));
}

TEST(L1Cache, RejectsBadGeometry)
{
    EXPECT_DEATH(L1Cache(1000, 3, 64), "");
}
