/**
 * @file
 * Tests for dirty-block tracking and write-back reporting.
 */

#include <gtest/gtest.h>

#include "cache/shared_cache.hh"
#include "sim/memory_system.hh"

using namespace prism;

namespace
{

CacheConfig
cfg()
{
    CacheConfig c;
    c.sizeBytes = 64 * 1024;
    c.ways = 4;
    c.numCores = 1;
    c.intervalMisses = 1u << 30;
    return c;
}

Addr
addrFor(std::uint32_t set, std::uint64_t tag)
{
    return static_cast<Addr>(tag) * 256 + set;
}

} // namespace

TEST(Writeback, CleanEvictionHasNoWriteback)
{
    SharedCache c(cfg());
    for (std::uint64_t t = 0; t < 5; ++t) {
        const auto res = c.access(0, addrFor(0, t), /*store=*/false);
        EXPECT_FALSE(res.writeback);
    }
    EXPECT_EQ(c.writebacks(), 0u);
}

TEST(Writeback, StoreFillMarksDirty)
{
    SharedCache c(cfg());
    c.access(0, addrFor(0, 0), true);
    for (std::uint64_t t = 1; t < 4; ++t)
        c.access(0, addrFor(0, t), false);
    // Evicting the (LRU) dirty block reports a writeback.
    const auto res = c.access(0, addrFor(0, 9), false);
    EXPECT_TRUE(res.evicted);
    EXPECT_TRUE(res.writeback);
    EXPECT_EQ(c.writebacks(), 1u);
}

TEST(Writeback, StoreHitDirtiesCleanBlock)
{
    SharedCache c(cfg());
    c.access(0, addrFor(0, 0), false); // clean fill
    c.access(0, addrFor(0, 0), true);  // store hit -> dirty
    for (std::uint64_t t = 1; t < 4; ++t)
        c.access(0, addrFor(0, t), false);
    const auto res = c.access(0, addrFor(0, 9), false);
    EXPECT_TRUE(res.writeback);
}

TEST(Writeback, DirtyBitClearedOnRefill)
{
    SharedCache c(cfg());
    c.access(0, addrFor(0, 0), true);
    for (std::uint64_t t = 1; t < 5; ++t)
        c.access(0, addrFor(0, t), false); // evicts the dirty block
    EXPECT_EQ(c.writebacks(), 1u);
    // The way now holds a clean block; evicting it again is clean.
    for (std::uint64_t t = 5; t < 9; ++t)
        c.access(0, addrFor(0, t), false);
    EXPECT_EQ(c.writebacks(), 1u);
}

TEST(Writeback, MemorySystemCountsWrites)
{
    MemorySystem mem(2, 10.0, 200.0);
    mem.writeback(1, 0.0);
    mem.writeback(2, 0.0);
    EXPECT_EQ(mem.writebacks(), 2u);
    EXPECT_EQ(mem.requests(), 0u); // writes are not read requests
}

TEST(Writeback, WritesOccupyControllerBandwidth)
{
    MemorySystem mem(1, 10.0, 200.0);
    mem.writeback(1, 0.0);
    // The following read queues behind the write's service slot.
    EXPECT_DOUBLE_EQ(mem.request(1, 0.0), 210.0);
}
