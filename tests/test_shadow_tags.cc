/**
 * @file
 * Tests for the UMON-style shadow tag directory.
 */

#include <gtest/gtest.h>

#include "cache/shadow_tags.hh"
#include "common/rng.hh"

using namespace prism;

TEST(ShadowTags, SamplesPowerOfTwoSets)
{
    ShadowTags st(1, 256, 4, 32);
    int sampled = 0;
    for (std::uint32_t s = 0; s < 256; ++s)
        sampled += st.sampled(s);
    EXPECT_EQ(sampled, 8);
    EXPECT_TRUE(st.sampled(0));
    EXPECT_TRUE(st.sampled(32));
    EXPECT_FALSE(st.sampled(1));
}

TEST(ShadowTags, UnsampledAccessIsIgnored)
{
    ShadowTags st(1, 256, 4, 32);
    st.access(0, 123, 5);
    st.access(0, 123, 5);
    EXPECT_EQ(st.misses(0), 0u);
    EXPECT_EQ(st.hitsAt(0, 0), 0u);
}

TEST(ShadowTags, RecordsPositionalHits)
{
    ShadowTags st(1, 256, 4, 32);
    // Touch A, B, then A again: A is at stack position 1.
    st.access(0, 1000, 0);
    st.access(0, 2000, 0);
    st.access(0, 1000, 0);
    EXPECT_EQ(st.misses(0), 2u);
    EXPECT_EQ(st.hitsAt(0, 1), 1u);
    // And now A is MRU again.
    st.access(0, 1000, 0);
    EXPECT_EQ(st.hitsAt(0, 0), 1u);
}

TEST(ShadowTags, LruEvictionAtFullAssociativity)
{
    ShadowTags st(1, 256, 2, 32);
    st.access(0, 1, 0);
    st.access(0, 2, 0);
    st.access(0, 3, 0); // evicts 1
    st.access(0, 1, 0); // miss again
    EXPECT_EQ(st.misses(0), 4u);
}

TEST(ShadowTags, PerCoreIsolation)
{
    ShadowTags st(2, 256, 4, 32);
    st.access(0, 77, 0);
    st.access(1, 77, 0); // different core: its own miss
    EXPECT_EQ(st.misses(0), 1u);
    EXPECT_EQ(st.misses(1), 1u);
    st.access(0, 77, 0);
    EXPECT_EQ(st.hitsAt(0, 0), 1u);
    EXPECT_EQ(st.hitsAt(1, 0), 0u);
}

TEST(ShadowTags, ScaledCurveUsesSamplingFactor)
{
    ShadowTags st(1, 256, 4, 32);
    st.access(0, 5, 0);
    st.access(0, 5, 0);
    const auto curve = st.scaledHitCurve(0);
    EXPECT_DOUBLE_EQ(curve[0], 32.0);
    EXPECT_DOUBLE_EQ(st.scaledMisses(0), 32.0);
}

TEST(ShadowTags, ResetClearsCountersKeepsTags)
{
    ShadowTags st(1, 256, 4, 32);
    st.access(0, 5, 0);
    st.resetInterval();
    EXPECT_EQ(st.misses(0), 0u);
    // The tag array survives the reset: the next access hits.
    st.access(0, 5, 0);
    EXPECT_EQ(st.hitsAt(0, 0), 1u);
}

TEST(ShadowTags, StandaloneEstimateTracksTruth)
{
    // A core cycling through fewer blocks than the associativity
    // should be measured as ~100% hits after warm-up.
    ShadowTags st(1, 1024, 8, 32);
    Rng rng(3);
    std::vector<Addr> blocks;
    for (int b = 0; b < 6; ++b)
        blocks.push_back(b * 1024); // all map to sampled set 0
    for (int i = 0; i < 1000; ++i)
        st.access(0, blocks[rng.below(blocks.size())], 0);
    double hits = 0;
    for (int p = 0; p < 8; ++p)
        hits += st.hitsAt(0, p);
    const double total = hits + st.misses(0);
    EXPECT_GT(hits / total, 0.98);
}

TEST(ShadowTags, TinyCacheStillSamples)
{
    // Fewer sets than the sampling factor: at least one set sampled.
    ShadowTags st(1, 8, 4, 32);
    st.access(0, 0, 0);
    st.access(0, 0, 0);
    EXPECT_EQ(st.misses(0) + st.hitsAt(0, 0), 2u);
}
