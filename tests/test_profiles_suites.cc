/**
 * @file
 * Tests for the benchmark profile library and workload suites.
 */

#include <gtest/gtest.h>

#include "workload/profiles.hh"
#include "workload/suites.hh"

using namespace prism;

TEST(Profiles, LibraryHasAllCategories)
{
    const auto &lib = ProfileLibrary::instance();
    EXPECT_FALSE(lib.namesIn(BenchCategory::Friendly).empty());
    EXPECT_FALSE(lib.namesIn(BenchCategory::Streaming).empty());
    EXPECT_FALSE(lib.namesIn(BenchCategory::Intensive).empty());
    EXPECT_FALSE(lib.namesIn(BenchCategory::Insensitive).empty());
}

TEST(Profiles, PaperBenchmarksPresent)
{
    const auto &lib = ProfileLibrary::instance();
    // Benchmarks the paper's Section 5 names explicitly.
    for (const char *name :
         {"179.art", "471.omnetpp", "300.twolf", "175.vpr",
          "168.wupwise", "410.bwaves", "470.lbm", "186.crafty"}) {
        EXPECT_EQ(lib.get(name).name, name);
    }
}

TEST(Profiles, ParametersAreSane)
{
    const auto &lib = ProfileLibrary::instance();
    for (const auto &name : lib.names()) {
        const auto &p = lib.get(name);
        EXPECT_GT(p.cpiIdeal, 0.0) << name;
        EXPECT_GT(p.memRatio, 0.0) << name;
        EXPECT_LE(p.memRatio, 1.0) << name;
        EXPECT_GE(p.mlp, 1.0) << name;
        EXPECT_GT(p.locality.workingSetBlocks, 0u) << name;
        EXPECT_GT(p.locality.theta, 0.0) << name;
        if (p.locality.loopFrac > 0)
            EXPECT_GT(p.locality.loopBlocks, 0u) << name;
    }
}

TEST(Profiles, StreamersHaveHighColdFraction)
{
    const auto &lib = ProfileLibrary::instance();
    for (const auto &name : lib.namesIn(BenchCategory::Streaming))
        EXPECT_GE(lib.get(name).locality.coldFrac, 0.5) << name;
}

TEST(Profiles, GeneratorFactoryWorks)
{
    const auto &lib = ProfileLibrary::instance();
    auto gen = ProfileLibrary::makeGenerator(lib.get("179.art"), 0, 1);
    ASSERT_NE(gen, nullptr);
    // Produces addresses in the right stream.
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(gen->next() >> 40, 0u);
    auto gen5 = ProfileLibrary::makeGenerator(lib.get("179.art"), 5, 1);
    EXPECT_EQ(gen5->next() >> 40, 5u);
}

TEST(Suites, PaperSuiteSizes)
{
    // The paper: 21 quad, 16 eight-core, 20 sixteen-core, 14
    // thirty-two-core workloads.
    EXPECT_EQ(suites::quadCore().size(), 21u);
    EXPECT_EQ(suites::eightCore().size(), 16u);
    EXPECT_EQ(suites::sixteenCore().size(), 20u);
    EXPECT_EQ(suites::thirtyTwoCore().size(), 14u);
}

TEST(Suites, WorkloadsMatchCoreCount)
{
    for (unsigned cores : {4u, 8u, 16u, 32u})
        for (const auto &w : suites::forCoreCount(cores))
            EXPECT_EQ(w.benchmarks.size(), cores) << w.name;
}

TEST(Suites, AllBenchmarksResolvable)
{
    const auto &lib = ProfileLibrary::instance();
    for (unsigned cores : {4u, 8u, 16u, 32u})
        for (const auto &w : suites::forCoreCount(cores))
            for (const auto &b : w.benchmarks)
                EXPECT_NO_FATAL_FAILURE(lib.get(b)) << w.name;
}

TEST(Suites, Deterministic)
{
    const auto a = suites::sixteenCore();
    const auto b = suites::sixteenCore();
    for (std::size_t i = 0; i < a.size(); ++i)
        EXPECT_EQ(a[i].benchmarks, b[i].benchmarks);
}

TEST(Suites, PinnedPaperMixes)
{
    const auto quad = suites::quadCore();
    // Q7: the paper's ~50% gain workload contains 179.art.
    EXPECT_EQ(quad[6].name, "Q7");
    EXPECT_EQ(quad[6].benchmarks[0], "179.art");
    // Q1 contains 168.wupwise (paper: PriSM feeds wupwise).
    EXPECT_EQ(quad[0].benchmarks[0], "168.wupwise");
    // Q4: vpr + omnetpp vs bwaves + lbm.
    EXPECT_EQ(quad[3].benchmarks[0], "175.vpr");
    EXPECT_EQ(quad[3].benchmarks[1], "471.omnetpp");
}

TEST(Suites, MixesAreContentious)
{
    const auto &lib = ProfileLibrary::instance();
    // Every seeded mix must contain at least one non-insensitive
    // program — otherwise there is nothing to manage.
    for (unsigned cores : {8u, 16u, 32u}) {
        for (const auto &w : suites::forCoreCount(cores)) {
            bool has_pressure = false;
            for (const auto &b : w.benchmarks) {
                const auto cat = lib.get(b).category;
                has_pressure |= cat != BenchCategory::Insensitive;
            }
            EXPECT_TRUE(has_pressure) << w.name;
        }
    }
}

TEST(Suites, UnsupportedCoreCountIsFatal)
{
    EXPECT_DEATH(suites::forCoreCount(5), "unsupported core count");
}
