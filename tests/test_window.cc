/**
 * @file
 * SlidingWindow unit tests: ring retention and wrap order, missing
 * per-tenant entries, window-aggregate hit/miss/slowdown rates, E_i
 * churn, exact quantiles, and the EWMA drift statistics (seeding,
 * the update recurrence, the relative-drift floors, and survival of
 * the ring wrap) that feed the online doctor's drift checks.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "telemetry/window.hh"

using namespace prism::telemetry;

namespace
{

/** A sample whose per-tenant series are fully specified. */
IntervalSample
sampleOf(std::uint64_t interval, std::vector<std::uint64_t> hits,
         std::vector<std::uint64_t> misses,
         std::vector<double> ev_prob = {},
         std::vector<double> occupancy = {},
         std::vector<double> target = {})
{
    IntervalSample s;
    s.interval = interval;
    s.hits = std::move(hits);
    s.misses = std::move(misses);
    s.evProb = std::move(ev_prob);
    s.occupancy = std::move(occupancy);
    s.target = std::move(target);
    return s;
}

} // namespace

TEST(SlidingWindow, EmptyWindowHasNeutralStats)
{
    const SlidingWindow win(2);
    EXPECT_EQ(win.size(), 0u);
    EXPECT_EQ(win.pushed(), 0u);
    EXPECT_EQ(win.lastInterval(), 0u);

    const TenantWindowStats s = win.stats(0);
    EXPECT_EQ(s.intervals, 0u);
    EXPECT_EQ(s.hitRatio, 1.0);
    EXPECT_EQ(s.missRate, 0.0);
    EXPECT_EQ(s.slowdown, 1.0);
    EXPECT_EQ(s.missRateDrift, 0.0);
    EXPECT_EQ(s.slowdownDrift, 0.0);
}

TEST(SlidingWindow, RetainsRowsOldestFirst)
{
    SlidingWindow win(1, {.capacity = 4});
    for (std::uint64_t i = 1; i <= 3; ++i)
        win.push(sampleOf(i, {10 * i}, {i}), {});
    ASSERT_EQ(win.size(), 3u);
    EXPECT_EQ(win.pushed(), 3u);
    EXPECT_EQ(win.lastInterval(), 3u);
    for (std::size_t i = 0; i < 3; ++i) {
        EXPECT_EQ(win.row(i).interval, i + 1);
        EXPECT_EQ(win.row(i).hits[0], 10 * (i + 1));
    }
}

TEST(SlidingWindow, RingWrapDropsOldestRows)
{
    SlidingWindow win(1, {.capacity = 3});
    for (std::uint64_t i = 1; i <= 5; ++i)
        win.push(sampleOf(i, {i}, {0}), {});
    ASSERT_EQ(win.size(), 3u);
    EXPECT_EQ(win.pushed(), 5u);
    EXPECT_EQ(win.lastInterval(), 5u);
    for (std::size_t i = 0; i < 3; ++i)
        EXPECT_EQ(win.row(i).interval, 3 + i);
}

TEST(SlidingWindow, MissingTenantEntriesReadZero)
{
    // Two tenants, but the sample carries one entry per series and
    // the eviction span is empty: tenant 1 must read as zero.
    SlidingWindow win(2);
    win.push(sampleOf(1, {7}, {3}, {1.0}, {0.5}, {0.5}), {});
    const SlidingWindow::Row &row = win.row(0);
    EXPECT_EQ(row.hits[0], 7u);
    EXPECT_EQ(row.hits[1], 0u);
    EXPECT_EQ(row.misses[1], 0u);
    EXPECT_EQ(row.evProb[1], 0.0);
    EXPECT_EQ(row.evictions[0], 0u);
    EXPECT_EQ(row.evictions[1], 0u);

    // A tenant index past the window's count is also neutral.
    const TenantWindowStats s = win.stats(9);
    EXPECT_EQ(s.hits, 0u);
    EXPECT_EQ(s.hitRatio, 1.0);
}

TEST(SlidingWindow, AggregateRatesFollowTheSlowdownModel)
{
    SlidingWindow win(1, {.capacity = 8, .missPenalty = 25.0});
    win.push(sampleOf(1, {75}, {25}), std::vector<std::uint64_t>{4});
    win.push(sampleOf(2, {25}, {75}), std::vector<std::uint64_t>{6});

    const TenantWindowStats s = win.stats(0);
    EXPECT_EQ(s.intervals, 2u);
    EXPECT_EQ(s.hits, 100u);
    EXPECT_EQ(s.misses, 100u);
    EXPECT_EQ(s.evictions, 10u);
    EXPECT_DOUBLE_EQ(s.hitRatio, 0.5);
    EXPECT_DOUBLE_EQ(s.missRate, 0.5);
    // slowdown = 1 + missRate * (penalty - 1)
    EXPECT_DOUBLE_EQ(s.slowdown, 1.0 + 0.5 * 24.0);
}

TEST(SlidingWindow, QuantilesAreExactWithInterpolation)
{
    SlidingWindow win(1, {.capacity = 8});
    // Per-interval hit ratios 0.0, 0.25, 0.5, 0.75, 1.0.
    win.push(sampleOf(1, {0}, {4}), {});
    win.push(sampleOf(2, {1}, {3}), {});
    win.push(sampleOf(3, {2}, {2}), {});
    win.push(sampleOf(4, {3}, {1}), {});
    win.push(sampleOf(5, {4}, {0}), {});

    const TenantWindowStats s = win.stats(0);
    EXPECT_DOUBLE_EQ(s.hitRatioP50, 0.5);
    // rank = 0.9 * 4 = 3.6 -> 0.75 + 0.6 * 0.25
    EXPECT_DOUBLE_EQ(s.hitRatioP90, 0.9);
    // Slowdowns are the mirrored series via the model.
    EXPECT_DOUBLE_EQ(s.slowdownP50, 1.0 + 0.5 * 24.0);
}

TEST(SlidingWindow, ChurnIsMeanAbsoluteEvProbStep)
{
    SlidingWindow win(1, {.capacity = 8});
    win.push(sampleOf(1, {1}, {1}, {0.2}), {});
    win.push(sampleOf(2, {1}, {1}, {0.6}), {});
    win.push(sampleOf(3, {1}, {1}, {0.5}), {});
    const TenantWindowStats s = win.stats(0);
    // (|0.6-0.2| + |0.5-0.6|) / 2
    EXPECT_DOUBLE_EQ(s.churn, (0.4 + 0.1) / 2.0);
}

TEST(SlidingWindow, EwmaSeedsOnFirstPushWithZeroDrift)
{
    SlidingWindow win(1, {.capacity = 4, .ewmaAlpha = 0.25});
    win.push(sampleOf(1, {6}, {4}), {}); // miss rate 0.4
    const TenantWindowStats s = win.stats(0);
    EXPECT_DOUBLE_EQ(s.ewmaMissRate, 0.4);
    EXPECT_EQ(s.missRateDrift, 0.0);
    EXPECT_DOUBLE_EQ(s.ewmaSlowdown, 1.0 + 0.4 * 24.0);
    EXPECT_EQ(s.slowdownDrift, 0.0);
}

TEST(SlidingWindow, EwmaRecurrenceAndRelativeDrift)
{
    SlidingWindow win(1, {.capacity = 4, .ewmaAlpha = 0.25,
                          .missPenalty = 25.0});
    win.push(sampleOf(1, {8}, {2}), {}); // miss rate 0.2
    win.push(sampleOf(2, {4}, {6}), {}); // miss rate 0.6

    const TenantWindowStats s = win.stats(0);
    // Drift is measured against the EWMA before the fold.
    EXPECT_DOUBLE_EQ(s.missRateDrift, (0.6 - 0.2) / 0.2);
    EXPECT_DOUBLE_EQ(s.ewmaMissRate, 0.25 * 0.6 + 0.75 * 0.2);
    const double slow1 = 1.0 + 0.2 * 24.0; // 5.8
    const double slow2 = 1.0 + 0.6 * 24.0; // 15.4
    EXPECT_DOUBLE_EQ(s.slowdownDrift, (slow2 - slow1) / slow1);
    EXPECT_DOUBLE_EQ(s.ewmaSlowdown, 0.25 * slow2 + 0.75 * slow1);
}

TEST(SlidingWindow, MissRateDriftDenominatorIsFloored)
{
    // A near-zero EWMA must not turn a small absolute step into a
    // huge relative drift: the denominator floors at 0.05.
    SlidingWindow win(1, {.capacity = 4, .ewmaAlpha = 0.25});
    win.push(sampleOf(1, {100}, {0}), {}); // miss rate 0.0
    win.push(sampleOf(2, {99}, {1}), {});  // miss rate 0.01
    const TenantWindowStats s = win.stats(0);
    EXPECT_DOUBLE_EQ(s.missRateDrift, 0.01 / 0.05);
}

TEST(SlidingWindow, EwmaSurvivesRingWrap)
{
    // Capacity 1 retains a single row, but drift tracks the whole
    // pushed stream.
    SlidingWindow win(1, {.capacity = 1, .ewmaAlpha = 0.5});
    win.push(sampleOf(1, {8}, {2}), {}); // 0.2 -> ewma 0.2
    win.push(sampleOf(2, {6}, {4}), {}); // 0.4 -> ewma 0.3
    win.push(sampleOf(3, {4}, {6}), {}); // 0.6 vs ewma 0.3

    ASSERT_EQ(win.size(), 1u);
    EXPECT_EQ(win.row(0).interval, 3u);
    const TenantWindowStats s = win.stats(0);
    EXPECT_DOUBLE_EQ(s.missRateDrift, (0.6 - 0.3) / 0.3);
    EXPECT_DOUBLE_EQ(s.ewmaMissRate, 0.5 * 0.6 + 0.5 * 0.3);
}

TEST(SlidingWindow, ZeroCapacityIsClampedToOne)
{
    SlidingWindow win(1, {.capacity = 0});
    EXPECT_EQ(win.capacity(), 1u);
    win.push(sampleOf(1, {1}, {1}), {});
    win.push(sampleOf(2, {1}, {1}), {});
    EXPECT_EQ(win.size(), 1u);
    EXPECT_EQ(win.lastInterval(), 2u);
}
