/**
 * @file
 * Tests for the deterministic xoshiro256** generator.
 */

#include <gtest/gtest.h>

#include <set>

#include "common/rng.hh"

using namespace prism;

TEST(Rng, DeterministicForSameSeed)
{
    Rng a(42), b(42);
    for (int i = 0; i < 1000; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 1000; ++i)
        same += a.next() == b.next();
    EXPECT_LT(same, 2);
}

TEST(Rng, ReseedRestartsSequence)
{
    Rng a(7);
    std::vector<std::uint64_t> first;
    for (int i = 0; i < 16; ++i)
        first.push_back(a.next());
    a.reseed(7);
    for (int i = 0; i < 16; ++i)
        EXPECT_EQ(a.next(), first[i]);
}

TEST(Rng, ZeroSeedIsValid)
{
    Rng a(0);
    // The state must not be all zeros (xoshiro would then be stuck).
    std::set<std::uint64_t> vals;
    for (int i = 0; i < 64; ++i)
        vals.insert(a.next());
    EXPECT_GT(vals.size(), 60u);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng a(123);
    double sum = 0.0;
    for (int i = 0; i < 100000; ++i) {
        const double u = a.uniform();
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
        sum += u;
    }
    EXPECT_NEAR(sum / 100000, 0.5, 0.01);
}

TEST(Rng, BelowRespectsBound)
{
    Rng a(99);
    for (std::uint64_t bound : {1ull, 2ull, 3ull, 17ull, 1000000ull}) {
        for (int i = 0; i < 1000; ++i)
            ASSERT_LT(a.below(bound), bound);
    }
}

TEST(Rng, BelowIsRoughlyUniform)
{
    Rng a(5);
    int counts[10] = {};
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        ++counts[a.below(10)];
    for (int c : counts)
        EXPECT_NEAR(c, n / 10, n / 100);
}

TEST(Rng, BetweenInclusive)
{
    Rng a(11);
    bool saw_lo = false, saw_hi = false;
    for (int i = 0; i < 10000; ++i) {
        const auto v = a.between(3, 7);
        ASSERT_GE(v, 3u);
        ASSERT_LE(v, 7u);
        saw_lo |= v == 3;
        saw_hi |= v == 7;
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(Rng, ChanceMatchesProbability)
{
    Rng a(17);
    int hits = 0;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        hits += a.chance(0.25);
    EXPECT_NEAR(hits, n / 4, n / 100);
}

TEST(Rng, ChanceExtremes)
{
    Rng a(3);
    for (int i = 0; i < 100; ++i) {
        EXPECT_FALSE(a.chance(0.0));
        EXPECT_TRUE(a.chance(1.0));
    }
}

TEST(Rng, SplitProducesIndependentStream)
{
    Rng a(21);
    Rng child = a.split();
    int same = 0;
    for (int i = 0; i < 1000; ++i)
        same += a.next() == child.next();
    EXPECT_LT(same, 2);
}
