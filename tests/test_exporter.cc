/**
 * @file
 * MetricsExporter tests: the prism-metrics-v1 JSON layout (section
 * presence rules, byte-determinism, round-trip through the strict
 * parser), the Prometheus text rendering (label escaping, metric-name
 * sanitisation, cumulative histogram buckets), the --metrics-every
 * cadence, and atomic file flushing.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/json.hh"
#include "telemetry/exporter.hh"
#include "telemetry/metrics_registry.hh"
#include "telemetry/window.hh"

using namespace prism;
using namespace prism::telemetry;

namespace
{

IntervalSample
sampleOf(std::uint64_t interval, std::vector<std::uint64_t> hits,
         std::vector<std::uint64_t> misses,
         std::vector<double> ev_prob)
{
    IntervalSample s;
    s.interval = interval;
    s.hits = std::move(hits);
    s.misses = std::move(misses);
    s.evProb = std::move(ev_prob);
    s.occupancy = {0.5, 0.5};
    s.target = {0.5, 0.5};
    return s;
}

/** A fully populated two-tenant snapshot over @p win / @p reg. */
MetricsSnapshot
serveSnapshot(const SlidingWindow *win, const MetricsRegistry *reg)
{
    MetricsSnapshot snap;
    snap.source = "serve";
    snap.run = "serve/PriSM-H";
    snap.policy = "HitMax";
    snap.round = 12;
    snap.ops = 98304;
    snap.intervals = 3;
    snap.evictions = 100;
    snap.recomputes = 3;
    snap.occupancyBytes = 900;
    snap.capacityBytes = 1000;
    snap.objects = 40;
    snap.tenants.resize(2);
    snap.tenants[0].hits = 700;
    snap.tenants[0].misses = 300;
    snap.tenants[0].hitRatio = 0.7;
    snap.tenants[0].target = 0.5;
    snap.tenants[1].hits = 600;
    snap.tenants[1].misses = 400;
    snap.tenants[1].hitRatio = 0.6;
    snap.tenants[1].target = 0.5;
    snap.window = win;
    snap.metrics = reg;
    return snap;
}

std::string
renderJson(const MetricsSnapshot &snap)
{
    std::ostringstream os;
    MetricsExporter::writeJson(os, snap);
    return os.str();
}

std::string
renderProm(const MetricsSnapshot &snap)
{
    std::ostringstream os;
    MetricsExporter::writePrometheus(os, snap);
    return os.str();
}

std::string
slurp(const std::filesystem::path &path)
{
    std::ifstream in(path);
    std::ostringstream buf;
    buf << in.rdbuf();
    return buf.str();
}

} // namespace

TEST(MetricsExporterJson, RendersDeterministicallyAndParsesBack)
{
    SlidingWindow win(2);
    win.push(sampleOf(1, {100, 200}, {50, 50}, {0.5, 0.5}),
             std::vector<std::uint64_t>{10, 20});
    MetricsRegistry reg;
    reg.counter("serve.gets").add(42);

    const MetricsSnapshot snap = serveSnapshot(&win, &reg);
    const std::string a = renderJson(snap);
    const std::string b = renderJson(snap);
    EXPECT_EQ(a, b) << "rendering must be a pure function";

    JsonValue doc;
    ASSERT_TRUE(parseJson(a, doc).ok());
    EXPECT_EQ(doc.at("schema").asString(), "prism-metrics-v1");
    EXPECT_EQ(doc.at("source").asString(), "serve");
    EXPECT_EQ(doc.at("round").asU64(), 12u);
    EXPECT_EQ(doc.at("totals").at("evictions").asU64(), 100u);
    ASSERT_EQ(doc.at("tenants").size(), 2u);
    const JsonValue &t0 = doc.at("tenants").at(std::size_t{0});
    EXPECT_EQ(t0.at("hits").asU64(), 700u);
    EXPECT_TRUE(t0.at("window").isObject())
        << "per-tenant window stats ride along when a window is set";
    EXPECT_EQ(doc.at("window").at("size").asU64(), 1u);
    EXPECT_EQ(doc.at("metrics")
                  .at("counters")
                  .at("serve.gets")
                  .asU64(),
              42u);
}

TEST(MetricsExporterJson, EmptySectionsAreOmitted)
{
    MetricsSnapshot snap;
    snap.source = "bench";
    snap.run = "fixture";
    snap.round = 1;

    JsonValue doc;
    ASSERT_TRUE(parseJson(renderJson(snap), doc).ok());
    EXPECT_TRUE(doc.at("policy").isNull());
    EXPECT_TRUE(doc.at("sweep").isNull());
    EXPECT_TRUE(doc.at("totals").isNull());
    EXPECT_TRUE(doc.at("tenants").isNull());
    EXPECT_TRUE(doc.at("window").isNull());
    EXPECT_TRUE(doc.at("doctor").isNull());
    EXPECT_TRUE(doc.at("metrics").isNull());
    // The telemetry drop counters always render.
    EXPECT_TRUE(doc.at("telemetry").isObject());
}

TEST(MetricsExporterJson, SweepSectionRendersForBenchSource)
{
    MetricsSnapshot snap;
    snap.source = "bench";
    snap.run = "fixture";
    snap.jobsTotal = 10;
    snap.jobsCompleted = 4;

    JsonValue doc;
    ASSERT_TRUE(parseJson(renderJson(snap), doc).ok());
    EXPECT_EQ(doc.at("sweep").at("jobs").asU64(), 10u);
    EXPECT_EQ(doc.at("sweep").at("completed").asU64(), 4u);
}

TEST(MetricsExporterJson, DoctorSectionCarriesFindings)
{
    MetricsSnapshot snap;
    snap.source = "serve";
    snap.run = "serve/PriSM-H";
    snap.doctorOverall = "WARN";
    DoctorFindingLine f;
    f.check = "drift.miss_rate";
    f.status = "WARN";
    f.value = 0.75;
    f.threshold = 0.5;
    f.hasValue = true;
    f.detail = "max relative EWMA miss-rate drift 0.75 (tenant 0)";
    snap.doctorFindings.push_back(f);

    JsonValue doc;
    ASSERT_TRUE(parseJson(renderJson(snap), doc).ok());
    EXPECT_EQ(doc.at("doctor").at("overall").asString(), "WARN");
    const JsonValue &line =
        doc.at("doctor").at("findings").at(std::size_t{0});
    EXPECT_EQ(line.at("check").asString(), "drift.miss_rate");
    EXPECT_EQ(line.at("status").asString(), "WARN");
    EXPECT_DOUBLE_EQ(line.at("value").asDouble(), 0.75);
}

TEST(MetricsExporterProm, EscapesLabelsAndSanitisesNames)
{
    MetricsRegistry reg;
    reg.counter("serve/odd-name.gets").add(7);

    MetricsSnapshot snap;
    snap.source = "serve";
    snap.run = "run \"quoted\"\\slash\nnewline";
    snap.metrics = &reg;

    const std::string text = renderProm(snap);
    EXPECT_NE(text.find("run=\"run \\\"quoted\\\"\\\\slash"
                        "\\nnewline\""),
              std::string::npos)
        << text;
    EXPECT_NE(text.find("prism_metric_serve_odd_name_gets 7"),
              std::string::npos)
        << text;
}

TEST(MetricsExporterProm, HistogramBucketsAreCumulative)
{
    MetricsRegistry reg;
    const std::vector<double> bounds{1.0, 10.0, 100.0};
    Histogram &h = reg.histogram("latency", bounds);
    h.observe(0.5);   // bucket 0
    h.observe(5.0);   // bucket 1
    h.observe(50.0);  // bucket 2
    h.observe(500.0); // overflow

    MetricsSnapshot snap;
    snap.source = "serve";
    snap.run = "serve/PriSM-H";
    snap.metrics = &reg;

    const std::string text = renderProm(snap);
    EXPECT_NE(text.find("prism_metric_latency_bucket{le=\"1\"} 1"),
              std::string::npos)
        << text;
    EXPECT_NE(text.find("prism_metric_latency_bucket{le=\"10\"} 2"),
              std::string::npos)
        << text;
    EXPECT_NE(
        text.find("prism_metric_latency_bucket{le=\"100\"} 3"),
        std::string::npos)
        << text;
    EXPECT_NE(
        text.find("prism_metric_latency_bucket{le=\"+Inf\"} 4"),
        std::string::npos)
        << text;
    EXPECT_NE(text.find("prism_metric_latency_count 4"),
              std::string::npos)
        << text;
}

TEST(MetricsExporterCadence, DueFollowsEveryOnTheRoundCounter)
{
    MetricsExporter off(ExporterConfig{"", "", 4});
    EXPECT_FALSE(off.enabled());
    EXPECT_FALSE(off.due(4)) << "no outputs, never due";

    MetricsExporter final_only(ExporterConfig{"x.json", "", 0});
    EXPECT_TRUE(final_only.enabled());
    EXPECT_FALSE(final_only.due(1));
    EXPECT_FALSE(final_only.due(100));

    MetricsExporter every4(ExporterConfig{"x.json", "", 4});
    EXPECT_FALSE(every4.due(0));
    EXPECT_FALSE(every4.due(3));
    EXPECT_TRUE(every4.due(4));
    EXPECT_FALSE(every4.due(5));
    EXPECT_TRUE(every4.due(8));
}

TEST(MetricsExporterFlush, WritesBothFilesAtomicallyAndCounts)
{
    const std::filesystem::path dir =
        std::filesystem::temp_directory_path() /
        "prism_exporter_test";
    std::filesystem::create_directories(dir);
    const std::string json_path = (dir / "m.json").string();
    const std::string prom_path = (dir / "m.prom").string();

    MetricsExporter exporter(
        ExporterConfig{json_path, prom_path, 2});
    MetricsSnapshot snap;
    snap.source = "serve";
    snap.run = "serve/PriSM-H";
    snap.round = 2;

    ASSERT_TRUE(exporter.exportIfDue(1, snap).ok());
    EXPECT_EQ(exporter.exports(), 0u) << "round 1 is not due";
    ASSERT_TRUE(exporter.exportIfDue(2, snap).ok());
    EXPECT_EQ(exporter.exports(), 1u);
    ASSERT_TRUE(exporter.flush(snap).ok());
    EXPECT_EQ(exporter.exports(), 2u);

    JsonValue doc;
    ASSERT_TRUE(parseJson(slurp(json_path), doc).ok());
    EXPECT_EQ(doc.at("schema").asString(), "prism-metrics-v1");
    const std::string prom = slurp(prom_path);
    EXPECT_EQ(prom.rfind("# HELP prism_info", 0), 0u) << prom;

    std::filesystem::remove_all(dir);
}

TEST(MetricsExporterFlush, UnwritablePathReportsAnError)
{
    MetricsExporter exporter(ExporterConfig{
        "/nonexistent-dir/sub/m.json", "", 0});
    MetricsSnapshot snap;
    snap.source = "serve";
    snap.run = "serve/PriSM-H";
    EXPECT_FALSE(exporter.flush(snap).ok());
    EXPECT_EQ(exporter.exports(), 0u);
}
