/**
 * @file
 * Additional scheme-level tests: StaticWP, WPHitMax rounding,
 * Vantage aperture arithmetic, PIPP defaults and PriSM-LA naming.
 */

#include <gtest/gtest.h>

#include "cache/shared_cache.hh"
#include "policies/pipp.hh"
#include "policies/vantage.hh"
#include "policies/way_partition.hh"
#include "prism/alloc_lookahead.hh"
#include "prism/hitmax_waypart.hh"
#include "prism/prism_scheme.hh"
#include "sim/runner.hh"

using namespace prism;

TEST(StaticWp, EvenSplitNeverChanges)
{
    StaticWayScheme s(4, 16);
    for (auto a : s.allocation())
        EXPECT_EQ(a, 4u);

    IntervalSnapshot snap;
    snap.totalBlocks = 1024;
    snap.ways = 16;
    snap.intervalMisses = 512;
    snap.cores.resize(4);
    snap.cores[0].shadowHitsAtPosition.assign(16, 1e6);
    s.onIntervalEnd(snap);
    for (auto a : s.allocation())
        EXPECT_EQ(a, 4u); // immune to utility signals
}

TEST(StaticWp, UnevenCoreCountSplit)
{
    StaticWayScheme s(3, 16);
    const auto &a = s.allocation();
    EXPECT_EQ(a[0] + a[1] + a[2], 16u);
    for (auto x : a)
        EXPECT_GE(x, 5u);
}

TEST(WpHitMax, RoundsAlgorithmOneTargets)
{
    HitMaxWayScheme s(2, 8);
    IntervalSnapshot snap;
    snap.totalBlocks = 1024;
    snap.ways = 8;
    snap.intervalMisses = 512;
    snap.cores.resize(2);
    // Core 0 has 3x the gain and occupancy of core 1.
    snap.cores[0].occupancyBlocks = 768;
    snap.cores[0].sharedHits = 100;
    snap.cores[0].shadowHitsAtPosition.assign(8, 500.0);
    snap.cores[1].occupancyBlocks = 256;
    snap.cores[1].sharedHits = 100;
    snap.cores[1].shadowHitsAtPosition.assign(8, 12.5);
    s.onIntervalEnd(snap);
    EXPECT_EQ(s.allocation()[0] + s.allocation()[1], 8u);
    EXPECT_GT(s.allocation()[0], s.allocation()[1]);
}

TEST(VantageMath, ApertureGrowsWithOvershoot)
{
    VantageScheme v(2, 1024, 8);
    // Force managed sizes via the public fill path on a real cache.
    CacheConfig cfg;
    cfg.sizeBytes = 64 * 1024;
    cfg.ways = 8;
    cfg.numCores = 2;
    cfg.repl = ReplKind::TimestampLRU;
    cfg.intervalMisses = 1u << 30;
    SharedCache cache(cfg);
    cache.setScheme(&v);

    // Aperture at/below target is zero; past the target it grows and
    // saturates at the maximum.
    EXPECT_DOUBLE_EQ(v.aperture(0), 0.0);
    for (std::uint64_t t = 0; t < 800; ++t)
        cache.access(0, t * 127 + 1);
    EXPECT_GT(v.managedSize(0), 0u);
    if (v.managedSize(0) >
        static_cast<std::uint64_t>(v.targetBlocks(0))) {
        EXPECT_GT(v.aperture(0), 0.0);
        EXPECT_LE(v.aperture(0), 0.5);
    }
}

TEST(PippDefaults, NobodyStreamsInitially)
{
    PippScheme pipp(4, 16, 1);
    for (CoreId c = 0; c < 4; ++c)
        EXPECT_FALSE(pipp.streaming(c));
}

TEST(PrismLa, SchemeNameAndRun)
{
    MachineConfig m = MachineConfig::forCores(4);
    m.instrBudget = 150'000;
    m.warmupInstr = 50'000;
    Runner runner(m);
    Workload w{"t", {"179.art", "470.lbm", "403.gcc", "300.twolf"}};
    const auto res = runner.run(w, SchemeKind::PrismLA);
    EXPECT_EQ(res.scheme, "PriSM-LA");
    EXPECT_GT(res.recomputes, 0u);
}

TEST(SchemeNames, AllDistinct)
{
    std::set<std::string> names;
    for (SchemeKind kind :
         {SchemeKind::Baseline, SchemeKind::UCP, SchemeKind::PIPP,
          SchemeKind::TADIP, SchemeKind::FairWP, SchemeKind::Vantage,
          SchemeKind::PrismH, SchemeKind::PrismF, SchemeKind::PrismQ,
          SchemeKind::PrismLA, SchemeKind::WPHitMax,
          SchemeKind::StaticWP})
        names.insert(schemeName(kind));
    EXPECT_EQ(names.size(), 12u);
}

TEST(Suites, VantageLosingMixesPinned)
{
    // Q19/Q20: the mixes the paper reports Vantage winning — pinned
    // to twolf-centred low-contention compositions.
    const auto quad = suites::quadCore();
    EXPECT_EQ(quad[18].benchmarks[0], "300.twolf");
    EXPECT_EQ(quad[19].benchmarks[0], "300.twolf");
}
