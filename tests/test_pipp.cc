/**
 * @file
 * Tests for PIPP's insertion/promotion pseudo-partitioning.
 */

#include <gtest/gtest.h>

#include "cache/shared_cache.hh"
#include "policies/pipp.hh"

using namespace prism;

namespace
{

CacheConfig
cfg()
{
    CacheConfig c;
    c.sizeBytes = 64 * 1024;
    c.ways = 8;
    c.numCores = 2;
    c.intervalMisses = 1u << 20;
    return c;
}

Addr
addrFor(std::uint32_t set, std::uint64_t tag)
{
    return static_cast<Addr>(tag) * 128 + set;
}

IntervalSnapshot
snapWithCurves(std::vector<std::vector<double>> curves,
               std::vector<double> shadow_misses)
{
    IntervalSnapshot snap;
    snap.totalBlocks = 1024;
    snap.ways = 8;
    snap.intervalMisses = 512;
    snap.cores.resize(curves.size());
    for (std::size_t i = 0; i < curves.size(); ++i) {
        snap.cores[i].shadowHitsAtPosition = curves[i];
        snap.cores[i].shadowMisses = shadow_misses[i];
    }
    return snap;
}

} // namespace

TEST(Pipp, InsertsAtAllocationPosition)
{
    SharedCache cache(cfg());
    PippScheme pipp(2, 8, 42);
    cache.setScheme(&pipp);

    // Default pi for 2 cores on 8 ways is ways/cores = 4.
    ASSERT_EQ(pipp.insertPositions()[0], 4u);

    // Fill the set with core 1, then insert one core-0 block: it must
    // land 3 positions above the LRU end (pi - 1 = 3).
    for (std::uint64_t t = 0; t < 8; ++t)
        cache.access(1, addrFor(0, t));
    cache.access(0, addrFor(0, 100));

    const SetView set = cache.setView(0);
    int pos_from_lru = -1;
    for (std::size_t i = 0; i < set.state.order.size(); ++i) {
        const auto way = set.state.order[i];
        if (set.blocks[way].owner == 0)
            pos_from_lru =
                static_cast<int>(set.state.order.size() - 1 - i);
    }
    EXPECT_EQ(pos_from_lru, 3);
}

TEST(Pipp, VictimIsStrictLru)
{
    SharedCache cache(cfg());
    PippScheme pipp(2, 8, 42);
    cache.setScheme(&pipp);
    for (std::uint64_t t = 0; t < 8; ++t)
        cache.access(1, addrFor(0, t));
    // First insertion landed at LRU offset 3; the original LRU-most
    // block (tag 0 after default inserts) should be the next victim.
    const SetView set = cache.setView(0);
    const int lru_way = recency::lruWay(set.state);
    const Addr lru_tag = set.blocks[lru_way].tag;
    cache.access(0, addrFor(0, 200));
    EXPECT_FALSE(cache.access(1, lru_tag).hit);
}

TEST(Pipp, PromotionIsSingleStep)
{
    SharedCache cache(cfg());
    PippParams params;
    params.promoteProb = 1.0; // deterministic for the test
    PippScheme pipp(2, 8, 42, params);
    cache.setScheme(&pipp);

    for (std::uint64_t t = 0; t < 8; ++t)
        cache.access(1, addrFor(0, t));
    const SetView set = cache.setView(0);
    const int lru_way = recency::lruWay(set.state);
    const Addr tag = set.blocks[lru_way].tag;

    cache.access(1, tag); // hit promotes by exactly one position
    EXPECT_EQ(recency::find(set.state, lru_way),
              static_cast<int>(set.state.order.size()) - 2);
}

TEST(Pipp, IntervalUpdatesAllocations)
{
    PippScheme pipp(2, 8, 42);
    auto snap = snapWithCurves({{100, 100, 100, 100, 100, 100, 0, 0},
                                {50, 0, 0, 0, 0, 0, 0, 0}},
                               {10, 10});
    pipp.onIntervalEnd(snap);
    EXPECT_GT(pipp.insertPositions()[0], pipp.insertPositions()[1]);
    const auto sum =
        pipp.insertPositions()[0] + pipp.insertPositions()[1];
    EXPECT_EQ(sum, 8u);
}

TEST(Pipp, DetectsStreamingCores)
{
    PippScheme pipp(2, 8, 42);
    // Core 1 has essentially no stand-alone hits -> streaming.
    auto snap = snapWithCurves({{100, 80, 60, 40, 20, 10, 5, 0},
                                {1, 0, 0, 0, 0, 0, 0, 0}},
                               {100, 10000});
    pipp.onIntervalEnd(snap);
    EXPECT_FALSE(pipp.streaming(0));
    EXPECT_TRUE(pipp.streaming(1));
}

TEST(Pipp, StreamingCoreInsertsAtLru)
{
    SharedCache cache(cfg());
    PippScheme pipp(2, 8, 42);
    cache.setScheme(&pipp);
    auto snap = snapWithCurves({{100, 80, 60, 40, 20, 10, 5, 0},
                                {1, 0, 0, 0, 0, 0, 0, 0}},
                               {100, 10000});
    pipp.onIntervalEnd(snap);

    for (std::uint64_t t = 0; t < 8; ++t)
        cache.access(0, addrFor(0, t));
    cache.access(1, addrFor(0, 300));
    const SetView set = cache.setView(0);
    EXPECT_EQ(set.blocks[recency::lruWay(set.state)].owner, 1u);
}
