/**
 * @file
 * Tests for the fault-injection harness, the invariant auditor and
 * PriSM's graceful-degradation paths: deterministic schedules, spec
 * parsing, counter plumbing, and — most importantly — that injected
 * corruption degrades behaviour observably instead of aborting.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "cache/shared_cache.hh"
#include "fault/fault_injector.hh"
#include "fault/invariant_auditor.hh"
#include "prism/alloc_hitmax.hh"
#include "prism/prism_scheme.hh"
#include "sim/runner.hh"

using namespace prism;

namespace
{

std::vector<FaultClause>
parseOk(const std::string &spec)
{
    std::vector<FaultClause> clauses;
    const Status st = parseFaultSpec(spec, clauses);
    EXPECT_TRUE(st.ok()) << st.message();
    return clauses;
}

/** Small, fast machine with frequent recomputes. */
MachineConfig
tinyPair()
{
    MachineConfig m;
    m.numCores = 2;
    m.llcBytes = 64ull << 10; // 1024 blocks, 256 sets
    m.llcWays = 4;
    m.intervalMisses = 200;
    m.instrBudget = 60'000;
    m.warmupInstr = 15'000;
    return m;
}

const char *kSpec = "nan@2,occ@3,drop@5,quant@4,shadow@6,stale@7,inf@8";

RunResult
runFaulted(std::uint64_t seed, const std::string &spec, bool checked)
{
    MachineConfig m = tinyPair();
    m.seed = seed;
    Runner runner(m);
    SchemeOptions options;
    options.faultSpec = spec;
    options.checked = checked;
    Workload w{"t", {"403.gcc", "470.lbm"}};
    return runner.run(w, SchemeKind::PrismH, options);
}

} // namespace

// --- spec parsing ---

TEST(FaultSpec, ParsesClauses)
{
    const auto clauses = parseOk("nan@4,occ@3+1,drop@10");
    ASSERT_EQ(clauses.size(), 3u);
    EXPECT_EQ(clauses[0].kind, FaultKind::PoisonNan);
    EXPECT_EQ(clauses[0].period, 4u);
    EXPECT_EQ(clauses[0].phase, 0u);
    EXPECT_EQ(clauses[1].kind, FaultKind::CorruptOccupancy);
    EXPECT_EQ(clauses[1].period, 3u);
    EXPECT_EQ(clauses[1].phase, 1u);
    EXPECT_EQ(clauses[2].kind, FaultKind::DropRecompute);
    EXPECT_EQ(clauses[2].period, 10u);
}

TEST(FaultSpec, EveryKeywordRoundTrips)
{
    for (unsigned k = 0; k < numFaultKinds; ++k) {
        const auto kind = static_cast<FaultKind>(k);
        const auto clauses =
            parseOk(std::string(faultKindName(kind)) + "@3");
        ASSERT_EQ(clauses.size(), 1u);
        EXPECT_EQ(clauses[0].kind, kind);
    }
}

TEST(FaultSpec, RejectsMalformedInput)
{
    std::vector<FaultClause> out;
    EXPECT_FALSE(parseFaultSpec("", out).ok());
    EXPECT_FALSE(parseFaultSpec("bogus@3", out).ok());
    EXPECT_FALSE(parseFaultSpec("nan", out).ok());
    EXPECT_FALSE(parseFaultSpec("nan@", out).ok());
    EXPECT_FALSE(parseFaultSpec("nan@0", out).ok());
    EXPECT_FALSE(parseFaultSpec("nan@x", out).ok());
    EXPECT_FALSE(parseFaultSpec("nan@3+", out).ok());
    EXPECT_FALSE(parseFaultSpec("nan@3+0", out).ok());
    EXPECT_FALSE(parseFaultSpec("nan@3,,occ@2", out).ok());
    const Status st = parseFaultSpec("zap@3", out);
    EXPECT_NE(st.message().find("unknown fault kind"),
              std::string::npos);
}

TEST(FaultSpec, ExecKindsAreClassified)
{
    for (const FaultKind k :
         {FaultKind::JobCrash, FaultKind::JobStall,
          FaultKind::TornWrite, FaultKind::AllocFail}) {
        EXPECT_TRUE(isExecFaultKind(k)) << faultKindName(k);
    }
    for (const FaultKind k :
         {FaultKind::CorruptOccupancy, FaultKind::StaleSnapshot,
          FaultKind::DropRecompute, FaultKind::PoisonNan,
          FaultKind::PoisonInf, FaultKind::QuantSaturate,
          FaultKind::ShadowSkew}) {
        EXPECT_FALSE(isExecFaultKind(k)) << faultKindName(k);
    }
}

TEST(FaultSpec, ParsesAttemptBoundOnExecKinds)
{
    const auto clauses = parseOk("job_crash@3*1,job_stall@2+1*2");
    ASSERT_EQ(clauses.size(), 2u);
    EXPECT_EQ(clauses[0].kind, FaultKind::JobCrash);
    EXPECT_EQ(clauses[0].period, 3u);
    EXPECT_EQ(clauses[0].attempts, 1u);
    EXPECT_EQ(clauses[1].kind, FaultKind::JobStall);
    EXPECT_EQ(clauses[1].period, 2u);
    EXPECT_EQ(clauses[1].phase, 1u);
    EXPECT_EQ(clauses[1].attempts, 2u);

    // Default: every attempt fails (the quarantine schedule).
    const auto unbounded = parseOk("alloc_fail@4");
    EXPECT_EQ(unbounded[0].attempts, 0u);
}

TEST(FaultSpec, RejectsAttemptBoundMisuse)
{
    std::vector<FaultClause> out;
    // '*attempts' belongs to the exec layer only.
    const Status st = parseFaultSpec("nan@3*1", out);
    EXPECT_FALSE(st.ok());
    EXPECT_NE(st.message().find("exec-level"), std::string::npos);
    EXPECT_FALSE(parseFaultSpec("job_crash@3*", out).ok());
    EXPECT_FALSE(parseFaultSpec("job_crash@3*x", out).ok());
    EXPECT_FALSE(parseFaultSpec("job_crash@*1", out).ok());
}

TEST(FaultSpec, AttemptScheduleBoundsFailingAttempts)
{
    const auto clauses = parseOk("job_crash@2*2");
    const FaultClause &c = clauses[0];
    EXPECT_FALSE(c.firesAt(1));
    EXPECT_TRUE(c.firesAt(2));
    EXPECT_TRUE(c.firesAtAttempt(1));
    EXPECT_TRUE(c.firesAtAttempt(2));
    EXPECT_FALSE(c.firesAtAttempt(3));
}

TEST(FaultSpec, ClauseFiringSchedule)
{
    FaultClause every3{FaultKind::PoisonNan, 3, 0};
    EXPECT_FALSE(every3.firesAt(1));
    EXPECT_FALSE(every3.firesAt(2));
    EXPECT_TRUE(every3.firesAt(3));
    EXPECT_TRUE(every3.firesAt(6));
    EXPECT_FALSE(every3.firesAt(7));

    FaultClause phased{FaultKind::PoisonNan, 3, 2};
    EXPECT_FALSE(phased.firesAt(1));
    EXPECT_TRUE(phased.firesAt(2));
    EXPECT_FALSE(phased.firesAt(3));
    EXPECT_TRUE(phased.firesAt(5));
    EXPECT_TRUE(phased.firesAt(8));
}

// --- injector determinism ---

TEST(FaultInjector, SameSeedSameMutations)
{
    const auto clauses = parseOk("occ@2,nan@3");
    FaultInjector a(clauses, 42), b(clauses, 42);
    for (std::uint64_t i = 1; i <= 20; ++i) {
        std::vector<std::uint64_t> occ_a{100, 200, 300};
        std::vector<std::uint64_t> occ_b{100, 200, 300};
        a.corruptOccupancy(occ_a, 1024, i);
        b.corruptOccupancy(occ_b, 1024, i);
        EXPECT_EQ(occ_a, occ_b) << "interval " << i;

        std::vector<double> ca{0.3, 0.3, 0.4}, ma{0.5, 0.25, 0.25};
        std::vector<double> cb = ca, mb = ma;
        a.poisonInputs(ca, ma, i);
        b.poisonInputs(cb, mb, i);
        for (std::size_t j = 0; j < ca.size(); ++j) {
            // NaN != NaN, so compare bit-classification + value.
            EXPECT_EQ(std::isnan(ca[j]), std::isnan(cb[j]));
            if (!std::isnan(ca[j]))
                EXPECT_EQ(ca[j], cb[j]);
        }
    }
    EXPECT_EQ(a.injected(), b.injected());
    EXPECT_GT(a.injected(), 0u);
    EXPECT_EQ(a.injectedOf(FaultKind::CorruptOccupancy), 10u);
}

TEST(FaultInjector, CountsOnlyFiringKinds)
{
    FaultInjector inj(parseOk("drop@2"), 7);
    EXPECT_FALSE(inj.dropRecompute(1));
    EXPECT_TRUE(inj.dropRecompute(2));
    EXPECT_FALSE(inj.staleSnapshot(2));
    EXPECT_EQ(inj.injected(), 1u);
    EXPECT_EQ(inj.injectedOf(FaultKind::DropRecompute), 1u);
    EXPECT_EQ(inj.injectedOf(FaultKind::StaleSnapshot), 0u);
}

TEST(FaultInjector, SaturationPushesSumAboveOne)
{
    FaultInjector inj(parseOk("quant@1"), 3);
    std::vector<double> e{0.5, 0.3, 0.2};
    EXPECT_TRUE(inj.saturateQuantisation(e, 1));
    double sum = 0.0;
    for (double v : e) {
        EXPECT_LE(v, 1.0);
        sum += v;
    }
    EXPECT_GT(sum, 1.0);
}

// --- invariant auditor ---

TEST(InvariantAuditor, AcceptsValidDistribution)
{
    InvariantAuditor auditor;
    const std::vector<double> e{0.25, 0.25, 0.5};
    EXPECT_TRUE(auditor.checkDistribution(e).ok());
    EXPECT_EQ(auditor.violations(), 0u);
}

TEST(InvariantAuditor, FlagsBadDistributions)
{
    InvariantAuditor auditor;
    const std::vector<double> short_sum{0.3, 0.3};
    const std::vector<double> with_nan{
        std::numeric_limits<double>::quiet_NaN(), 1.0};
    const std::vector<double> negative{-0.2, 1.2};
    EXPECT_FALSE(auditor.checkDistribution(short_sum).ok());
    EXPECT_FALSE(auditor.checkDistribution(with_nan).ok());
    EXPECT_FALSE(auditor.checkDistribution(negative).ok());
    EXPECT_EQ(auditor.violations(), 3u);
}

TEST(InvariantAuditor, OwnershipMatchesLiveCache)
{
    CacheConfig cfg;
    cfg.sizeBytes = 16 << 10;
    cfg.ways = 4;
    cfg.numCores = 2;
    SharedCache cache(cfg);
    for (Addr a = 0; a < 500; ++a)
        cache.access(a % 2, a * 3);
    InvariantAuditor auditor;
    const Status st = auditor.checkOwnership(cache);
    EXPECT_TRUE(st.ok()) << st.message();
}

// --- end-to-end graceful degradation ---

TEST(FaultInjection, CheckedRunSurvivesAndCounts)
{
    const RunResult res = runFaulted(1, kSpec, true);
    EXPECT_GT(res.intervals, 10u);
    EXPECT_GT(res.faultsInjected, 0u);
    EXPECT_GT(res.degradedIntervals, 0u);
    EXPECT_GT(res.invariantViolations, 0u);
    EXPECT_GT(res.ownershipRepairs, 0u);
    EXPECT_GT(res.clampedEq1Inputs, 0u);
    EXPECT_GT(res.droppedRecomputes, 0u);
    for (double ipc : res.ipc)
        EXPECT_GT(ipc, 0.0);
}

TEST(FaultInjection, UncheckedRunStillCompletes)
{
    // Without the auditor the corruption flows further, but the
    // hardened Equation 1 inputs must still keep the run alive.
    const RunResult res = runFaulted(1, kSpec, false);
    EXPECT_GT(res.faultsInjected, 0u);
    EXPECT_EQ(res.invariantViolations, 0u); // nothing audited
    EXPECT_EQ(res.ownershipRepairs, 0u);
    for (double ipc : res.ipc)
        EXPECT_GT(ipc, 0.0);
}

TEST(FaultInjection, SameSeedAndSpecReproduceCounters)
{
    const RunResult a = runFaulted(7, kSpec, true);
    const RunResult b = runFaulted(7, kSpec, true);
    EXPECT_EQ(a.faultsInjected, b.faultsInjected);
    EXPECT_EQ(a.degradedIntervals, b.degradedIntervals);
    EXPECT_EQ(a.invariantViolations, b.invariantViolations);
    EXPECT_EQ(a.ownershipRepairs, b.ownershipRepairs);
    EXPECT_EQ(a.clampedEq1Inputs, b.clampedEq1Inputs);
    EXPECT_EQ(a.droppedRecomputes, b.droppedRecomputes);
    EXPECT_EQ(a.intervals, b.intervals);
    for (std::size_t c = 0; c < a.ipc.size(); ++c)
        EXPECT_DOUBLE_EQ(a.ipc[c], b.ipc[c]);
}

TEST(FaultInjection, DifferentSeedsDifferentFaultTargets)
{
    const RunResult a = runFaulted(7, kSpec, true);
    const RunResult c = runFaulted(1234, kSpec, true);
    // The schedule is spec-driven, so the counts can coincide; the
    // run as a whole must still differ through the corrupted state.
    EXPECT_GT(c.faultsInjected, 0u);
    bool any_diff = a.intervals != c.intervals;
    for (std::size_t i = 0; i < a.ipc.size(); ++i)
        any_diff |= a.ipc[i] != c.ipc[i];
    EXPECT_TRUE(any_diff);
}

TEST(FaultInjection, DroppedRecomputesReduceRecomputeCount)
{
    const RunResult res = runFaulted(3, "drop@2", true);
    EXPECT_GT(res.intervals, 0u);
    EXPECT_LT(res.recomputes, res.intervals);
    EXPECT_EQ(res.recomputes + res.droppedRecomputes, res.intervals);
}

TEST(FaultInjection, OccupancyCorruptionRepairedWhenChecked)
{
    const RunResult res = runFaulted(5, "occ@1", true);
    EXPECT_GT(res.faultsInjected, 0u);
    EXPECT_GT(res.ownershipRepairs, 0u);
    // Repair happens at the cache, before Equation 1 ever sees the
    // corrupt counter: no input clamping should be needed.
    EXPECT_EQ(res.clampedEq1Inputs, 0u);
}

TEST(FaultInjection, BaselineSchemeSurvivesCacheFaults)
{
    MachineConfig m = tinyPair();
    Runner runner(m);
    SchemeOptions options;
    options.faultSpec = "occ@1";
    options.checked = true;
    Workload w{"t", {"403.gcc", "470.lbm"}};
    const RunResult res =
        runner.run(w, SchemeKind::Baseline, options);
    EXPECT_GT(res.faultsInjected, 0u);
    EXPECT_GT(res.ownershipRepairs, 0u);
    for (double ipc : res.ipc)
        EXPECT_GT(ipc, 0.0);
}

TEST(FaultInjection, CleanCheckedRunReportsNothing)
{
    MachineConfig m = tinyPair();
    Runner runner(m);
    SchemeOptions options;
    options.checked = true;
    Workload w{"t", {"403.gcc", "470.lbm"}};
    const RunResult res = runner.run(w, SchemeKind::PrismH, options);
    EXPECT_EQ(res.faultsInjected, 0u);
    EXPECT_EQ(res.degradedIntervals, 0u);
    EXPECT_EQ(res.invariantViolations, 0u);
    EXPECT_EQ(res.ownershipRepairs, 0u);
}

// --- scheme-level recovery (direct, no simulator) ---

TEST(PrismSchemeRecovery, RepairsSaturatedDistribution)
{
    // quant@1 multiplies the distribution up so its sum exceeds 1;
    // the auditor must catch it and the repair renormalise in place
    // without entering fallback mode.
    PrismScheme scheme(2, std::make_unique<HitMaxPolicy>(), 1);
    scheme.setChecked(true);

    std::vector<FaultClause> clauses = parseOk("quant@1");
    FaultInjector injector(std::move(clauses), 9);
    scheme.setFaultInjector(&injector);

    IntervalSnapshot snap;
    snap.totalBlocks = 1024;
    snap.ways = 4;
    snap.intervalMisses = 256;
    snap.cores.resize(2);
    for (auto &cs : snap.cores) {
        cs.sharedMisses = 128;
        cs.occupancyBlocks = 512;
        cs.shadowMisses = 64;
        cs.shadowHitsAtPosition.assign(4, 16.0);
    }
    scheme.onIntervalEnd(snap);

    EXPECT_GT(scheme.invariantViolations(), 0u);
    EXPECT_GT(scheme.degradedIntervals(), 0u);
    double sum = 0.0;
    for (double v : scheme.evictionProbs())
        sum += v;
    EXPECT_NEAR(sum, 1.0, 1e-9);
    EXPECT_FALSE(scheme.fallbackActive());
}
