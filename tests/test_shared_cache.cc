/**
 * @file
 * Tests for the shared LLC: hit/miss behaviour, occupancy
 * bookkeeping, interval machinery and scheme hooks.
 */

#include <gtest/gtest.h>

#include "cache/shared_cache.hh"
#include "common/rng.hh"

using namespace prism;

namespace
{

CacheConfig
smallConfig()
{
    CacheConfig c;
    c.sizeBytes = 64 * 1024; // 1024 blocks
    c.ways = 4;              // 256 sets
    c.numCores = 2;
    c.intervalMisses = 512;
    c.shadowSampling = 32;
    return c;
}

/** Address that maps to @p set with a distinguishing tag. */
Addr
addrFor(std::uint32_t set, std::uint64_t tag, std::uint32_t num_sets)
{
    return static_cast<Addr>(tag) * num_sets + set;
}

} // namespace

TEST(SharedCache, GeometryDerivation)
{
    SharedCache c(smallConfig());
    EXPECT_EQ(c.numBlocks(), 1024u);
    EXPECT_EQ(c.numSets(), 256u);
    EXPECT_EQ(c.ways(), 4u);
}

TEST(SharedCache, MissThenHit)
{
    SharedCache c(smallConfig());
    EXPECT_FALSE(c.access(0, 42).hit);
    EXPECT_TRUE(c.access(0, 42).hit);
    EXPECT_EQ(c.totals(0).hits, 1u);
    EXPECT_EQ(c.totals(0).misses, 1u);
}

TEST(SharedCache, OccupancyTracksOwnership)
{
    SharedCache c(smallConfig());
    for (std::uint64_t t = 0; t < 10; ++t)
        c.access(0, addrFor(static_cast<std::uint32_t>(t), t, 256));
    EXPECT_EQ(c.occupancy(0), 10u);
    EXPECT_EQ(c.occupancy(1), 0u);
}

TEST(SharedCache, EvictionTransfersOccupancy)
{
    SharedCache c(smallConfig());
    // Fill one set with core 0 (4 ways), then miss with core 1.
    for (std::uint64_t t = 0; t < 4; ++t)
        c.access(0, addrFor(7, t, 256));
    EXPECT_EQ(c.countInSet(7, 0), 4u);

    const auto res = c.access(1, addrFor(7, 99, 256));
    EXPECT_FALSE(res.hit);
    EXPECT_TRUE(res.evicted);
    EXPECT_EQ(res.evictedOwner, 0u);
    EXPECT_EQ(c.occupancy(0), 3u);
    EXPECT_EQ(c.occupancy(1), 1u);
}

TEST(SharedCache, LruVictimWithoutScheme)
{
    SharedCache c(smallConfig());
    for (std::uint64_t t = 0; t < 4; ++t)
        c.access(0, addrFor(3, t, 256));
    // Touch tag 0 so tag 1 becomes LRU.
    c.access(0, addrFor(3, 0, 256));
    c.access(1, addrFor(3, 50, 256)); // evicts tag 1
    EXPECT_TRUE(c.access(0, addrFor(3, 0, 256)).hit);
    EXPECT_FALSE(c.access(0, addrFor(3, 1, 256)).hit);
}

TEST(SharedCache, IntervalFiresAfterWMisses)
{
    SharedCache c(smallConfig()); // W = 512
    std::uint64_t fired = 0;
    c.setTimingHook([&](IntervalSnapshot &) { ++fired; });
    for (std::uint64_t t = 0; t < 512; ++t)
        c.access(0, addrFor(static_cast<std::uint32_t>(t % 256),
                            1000 + t, 256));
    EXPECT_EQ(fired, 1u);
    EXPECT_EQ(c.intervals(), 1u);
}

TEST(SharedCache, SnapshotContents)
{
    SharedCache c(smallConfig());
    IntervalSnapshot got;
    c.setTimingHook([&](IntervalSnapshot &s) { got = s; });
    for (std::uint64_t t = 0; t < 600; ++t)
        c.access(t % 2, addrFor(static_cast<std::uint32_t>(t % 256),
                                t / 2, 256));
    ASSERT_EQ(got.cores.size(), 2u);
    EXPECT_EQ(got.totalBlocks, 1024u);
    EXPECT_EQ(got.ways, 4u);
    EXPECT_EQ(got.intervalMisses, 512u);
    EXPECT_EQ(got.cores[0].sharedMisses + got.cores[1].sharedMisses,
              512u);
    // Miss fractions sum to one.
    EXPECT_NEAR(got.missFraction(0) + got.missFraction(1), 1.0, 1e-9);
}

TEST(SharedCache, DefaultIntervalIsN)
{
    CacheConfig cfg = smallConfig();
    cfg.intervalMisses = 0;
    SharedCache c(cfg);
    EXPECT_EQ(c.intervalLength(), c.numBlocks());
}

namespace
{

/** Scheme that always evicts the highest valid way. */
struct TopWayScheme : PartitionScheme
{
    std::string name() const override { return "top"; }

    int
    chooseVictim(SharedCache &, CoreId, const SetView &set) override
    {
        ++calls;
        return static_cast<int>(set.ways()) - 1;
    }

    int calls = 0;
};

} // namespace

TEST(SharedCache, SchemeChoosesVictims)
{
    SharedCache c(smallConfig());
    TopWayScheme scheme;
    c.setScheme(&scheme);
    for (std::uint64_t t = 0; t < 4; ++t)
        c.access(0, addrFor(9, t, 256));
    EXPECT_EQ(scheme.calls, 0); // invalid ways filled first
    c.access(1, addrFor(9, 40, 256));
    EXPECT_EQ(scheme.calls, 1);
    // Way 3 (tag 3) was evicted, the rest survive.
    EXPECT_TRUE(c.access(0, addrFor(9, 0, 256)).hit);
    EXPECT_TRUE(c.access(0, addrFor(9, 2, 256)).hit);
    EXPECT_FALSE(c.access(0, addrFor(9, 3, 256)).hit);
}

TEST(SharedCache, OccupancySumsToFilledBlocks)
{
    SharedCache c(smallConfig());
    Rng rng(4);
    for (int i = 0; i < 5000; ++i)
        c.access(static_cast<CoreId>(rng.below(2)), rng.below(4096));
    std::uint64_t total = c.occupancy(0) + c.occupancy(1);
    EXPECT_LE(total, c.numBlocks());
    // After 5000 accesses to 4096 addresses the cache should be
    // nearly full.
    EXPECT_GT(total, c.numBlocks() * 9 / 10);
}

TEST(SharedCache, RejectsBadGeometry)
{
    CacheConfig bad = smallConfig();
    bad.ways = 3; // 1024 blocks not divisible into power-of-two sets
    EXPECT_DEATH(SharedCache{bad}, "");
}
