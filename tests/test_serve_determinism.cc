/**
 * @file
 * The serving plane's determinism and statistical contracts
 * (docs/SERVING.md):
 *
 *  1. For a fixed op budget with timing off, the `prism-serve-v1`
 *     document is byte-identical at 1, 2 and 8 worker threads —
 *     logical streams own the RNGs, so threads are pure machinery.
 *  2. Realised victim-tenant eviction frequencies match Equation 1's
 *     E_i: per interval, victims are drawn from the distribution the
 *     arbiter had in effect, so summing E_i-weighted expectations
 *     over intervals predicts the per-tenant eviction totals to
 *     chi-square precision (the serving analogue of the simulator's
 *     Core-Selection validation).
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include "serve/serve_engine.hh"

using namespace prism;
using namespace prism::serve;

namespace
{

/** Small but eviction-heavy configuration: working set ~4x budget. */
ServeConfig
fixtureConfig()
{
    ServeConfig config;
    TenantSpec spec;
    spec.keys = 40000;
    config.tenants.assign(3, spec);
    config.tenants[2].zipf = 0.8; // one tenant with a flatter head
    config.capacityBytes = 4ull << 20;
    config.shards = 16;
    config.streams = 8;
    config.batch = 1024;
    config.intervalMisses = 8192;
    config.opBudget = 400000;
    config.timing = false;
    config.seed = 2012;
    return config;
}

std::string
runToJson(ServeConfig config, std::uint32_t threads,
          ServeResult *result_out = nullptr)
{
    config.threads = threads;
    ServeEngine engine(config);
    ServeResult result = engine.run();
    std::ostringstream os;
    writeServeJson(os, config, result);
    if (result_out != nullptr)
        *result_out = result;
    return os.str();
}

} // namespace

TEST(ServeDeterminism, JsonIsByteIdenticalAcrossThreadCounts)
{
    const ServeConfig config = fixtureConfig();
    const std::string t1 = runToJson(config, 1);
    const std::string t2 = runToJson(config, 2);
    const std::string t8 = runToJson(config, 8);

    EXPECT_GT(t1.size(), 0u);
    EXPECT_EQ(t1, t2);
    EXPECT_EQ(t1, t8);
}

TEST(ServeDeterminism, SeedChangesTheRun)
{
    ServeConfig config = fixtureConfig();
    const std::string a = runToJson(config, 2);
    config.seed = 2013;
    const std::string b = runToJson(config, 2);
    EXPECT_NE(a, b);
}

TEST(ServeVictimMatch, EvictionFrequenciesFollowEq1)
{
    const ServeConfig config = fixtureConfig();
    ServeResult result;
    runToJson(config, 4, &result);

    ASSERT_NE(result.recorder, nullptr);
    const std::size_t rows = result.recorder->size();
    ASSERT_EQ(rows, result.intervalEvictions.size())
        << "eviction rows must parallel the retained samples";
    ASSERT_GT(result.evictions, 0u) << "fixture must evict";

    // Expected per-tenant evictions: each interval's eviction count
    // weighted by the E distribution in effect during it (the
    // recorded sample's evProb is exactly that, by the serve
    // recording convention).
    const std::size_t tenants = config.tenants.size();
    std::vector<double> expected(tenants, 0.0);
    std::vector<double> observed(tenants, 0.0);
    for (std::size_t i = 0; i < rows; ++i) {
        const auto &sample = result.recorder->sample(i);
        ASSERT_EQ(sample.evProb.size(), tenants);
        std::uint64_t row_total = 0;
        for (const std::uint64_t v : result.intervalEvictions[i])
            row_total += v;
        for (std::size_t t = 0; t < tenants; ++t) {
            expected[t] +=
                sample.evProb[t] * static_cast<double>(row_total);
            observed[t] += static_cast<double>(
                result.intervalEvictions[i][t]);
        }
    }

    // Pearson chi-square at alpha 0.001. Critical values:
    // df 1: 10.828, df 2: 13.816, df 3: 16.266.
    static const double kCritical[] = {0.0, 10.828, 13.816, 16.266};
    double chi2 = 0.0;
    std::size_t cells = 0;
    for (std::size_t t = 0; t < tenants; ++t) {
        if (expected[t] < 5.0)
            continue; // too thin for the asymptotic test
        ++cells;
        const double d = observed[t] - expected[t];
        chi2 += d * d / expected[t];
    }
    ASSERT_GE(cells, 2u) << "fixture produced too few evictions";
    EXPECT_LT(chi2, kCritical[cells - 1])
        << "victim-tenant frequencies diverge from Equation 1";
}

TEST(ServeVictimMatch, TenantEvictionTotalsAreConsistent)
{
    const ServeConfig config = fixtureConfig();
    ServeResult result;
    runToJson(config, 2, &result);

    // Per-tenant totals must sum to the run total, and with no ring
    // wrap every interval row must be retained.
    std::uint64_t sum = 0;
    for (const TenantTotals &t : result.tenants)
        sum += t.evictions;
    EXPECT_EQ(sum, result.evictions);
    EXPECT_EQ(result.intervals, result.intervalEvictions.size());
}
