/**
 * @file
 * Tests for the order-statistic move-to-front list, including a
 * randomised differential test against a naive std::vector model.
 */

#include <gtest/gtest.h>

#include <deque>

#include "common/rng.hh"
#include "workload/order_stat_list.hh"

using namespace prism;

TEST(OrderStatList, StartsEmpty)
{
    OrderStatList l;
    EXPECT_TRUE(l.empty());
    EXPECT_EQ(l.size(), 0u);
}

TEST(OrderStatList, PushFrontOrdering)
{
    OrderStatList l;
    l.pushFront(10);
    l.pushFront(20);
    l.pushFront(30);
    EXPECT_EQ(l.size(), 3u);
    EXPECT_EQ(l.peek(0), 30u);
    EXPECT_EQ(l.peek(1), 20u);
    EXPECT_EQ(l.peek(2), 10u);
}

TEST(OrderStatList, SelectToFrontMovesElement)
{
    OrderStatList l;
    for (Addr a = 0; a < 5; ++a)
        l.pushFront(a); // order: 4 3 2 1 0
    EXPECT_EQ(l.selectToFront(4), 0u); // move the back to the front
    EXPECT_EQ(l.peek(0), 0u);
    EXPECT_EQ(l.peek(1), 4u);
    EXPECT_EQ(l.peek(4), 1u);
}

TEST(OrderStatList, SelectFrontIsNoop)
{
    OrderStatList l;
    l.pushFront(1);
    l.pushFront(2);
    EXPECT_EQ(l.selectToFront(0), 2u);
    EXPECT_EQ(l.peek(0), 2u);
    EXPECT_EQ(l.peek(1), 1u);
}

TEST(OrderStatList, PopBackRemovesOldest)
{
    OrderStatList l;
    for (Addr a = 0; a < 4; ++a)
        l.pushFront(a);
    EXPECT_EQ(l.popBack(), 0u);
    EXPECT_EQ(l.size(), 3u);
    EXPECT_EQ(l.popBack(), 1u);
}

TEST(OrderStatList, ClearResets)
{
    OrderStatList l;
    for (Addr a = 0; a < 100; ++a)
        l.pushFront(a);
    l.clear();
    EXPECT_TRUE(l.empty());
    l.pushFront(7);
    EXPECT_EQ(l.peek(0), 7u);
}

TEST(OrderStatList, NodeReuseAfterPopBack)
{
    OrderStatList l;
    // Exercise the free list: repeated push/pop cycles must not grow
    // memory unboundedly (checked indirectly via behaviour).
    for (int round = 0; round < 100; ++round) {
        for (Addr a = 0; a < 64; ++a)
            l.pushFront(round * 64 + a);
        for (int i = 0; i < 64; ++i)
            l.popBack();
    }
    EXPECT_TRUE(l.empty());
}

/** Differential test against a naive deque model. */
TEST(OrderStatList, MatchesNaiveModel)
{
    OrderStatList l(99);
    std::deque<Addr> model;
    Rng rng(1234);

    for (int step = 0; step < 20000; ++step) {
        const int op = static_cast<int>(rng.below(10));
        if (model.empty() || op < 3) {
            const Addr a = step;
            l.pushFront(a);
            model.push_front(a);
        } else if (op < 9) {
            const std::size_t k = rng.below(model.size());
            const Addr got = l.selectToFront(k);
            const Addr want = model[k];
            ASSERT_EQ(got, want);
            model.erase(model.begin() + k);
            model.push_front(want);
        } else {
            ASSERT_EQ(l.popBack(), model.back());
            model.pop_back();
        }
        ASSERT_EQ(l.size(), model.size());
        if (!model.empty()) {
            const std::size_t probe = rng.below(model.size());
            ASSERT_EQ(l.peek(probe), model[probe]);
        }
    }
}

/** Large-scale sanity: O(log n) ops complete quickly at 100k scale. */
TEST(OrderStatList, HandlesLargeLists)
{
    OrderStatList l(5);
    const std::size_t n = 100000;
    for (Addr a = 0; a < n; ++a)
        l.pushFront(a);
    Rng rng(6);
    for (int i = 0; i < 100000; ++i)
        l.selectToFront(rng.below(n));
    EXPECT_EQ(l.size(), n);
}
