/**
 * @file
 * Tests for the DRAM / memory-controller model.
 */

#include <gtest/gtest.h>

#include "sim/memory_system.hh"

using namespace prism;

TEST(MemorySystem, UncontendedLatencyIsDramOnly)
{
    MemorySystem mem(4, 10.0, 200.0);
    EXPECT_DOUBLE_EQ(mem.request(0x1234, 1000.0), 200.0);
}

TEST(MemorySystem, BackToBackRequestsQueue)
{
    MemorySystem mem(1, 10.0, 200.0);
    const double t = 0.0;
    EXPECT_DOUBLE_EQ(mem.request(1, t), 200.0);
    // Same controller, same instant: waits one service slot.
    EXPECT_DOUBLE_EQ(mem.request(1, t), 210.0);
    EXPECT_DOUBLE_EQ(mem.request(1, t), 220.0);
}

TEST(MemorySystem, IdleGapDrainsQueue)
{
    MemorySystem mem(1, 10.0, 200.0);
    mem.request(1, 0.0);
    // After the controller went idle, latency is back to DRAM-only.
    EXPECT_DOUBLE_EQ(mem.request(1, 1000.0), 200.0);
}

TEST(MemorySystem, MoreControllersLessContention)
{
    MemorySystem narrow(1, 10.0, 200.0);
    MemorySystem wide(8, 10.0, 200.0);
    double narrow_total = 0, wide_total = 0;
    for (Addr a = 0; a < 64; ++a) {
        narrow_total += narrow.request(a, 0.0);
        wide_total += wide.request(a, 0.0);
    }
    EXPECT_LT(wide_total, narrow_total);
}

TEST(MemorySystem, CountsRequestsAndQueueing)
{
    MemorySystem mem(1, 10.0, 200.0);
    mem.request(1, 0.0);
    mem.request(1, 0.0);
    EXPECT_EQ(mem.requests(), 2u);
    EXPECT_DOUBLE_EQ(mem.meanQueueCycles(), 5.0); // 0 and 10
}

TEST(MemorySystem, AddressesSpreadOverControllers)
{
    MemorySystem mem(4, 100.0, 200.0);
    // Issue many requests at t=0; if hashing spreads them, total
    // queueing is far below the single-controller worst case.
    double total_queue = 0;
    for (Addr a = 0; a < 400; ++a)
        total_queue += mem.request(a, 0.0) - 200.0;
    const double single_ctrl_queue = 399.0 * 400.0 / 2.0 * 100.0 / 400.0;
    EXPECT_LT(total_queue / 400.0, single_ctrl_queue);
}
