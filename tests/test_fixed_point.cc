/**
 * @file
 * Tests for the K-bit fixed-point probability codec (Figure 12's
 * hardware representation).
 */

#include <gtest/gtest.h>

#include <cmath>

#include "common/fixed_point.hh"

using namespace prism;

TEST(FixedPoint, RoundTripEndpoints)
{
    for (unsigned bits : {1u, 6u, 8u, 10u, 12u}) {
        FixedPointCodec codec(bits);
        EXPECT_EQ(codec.encode(0.0), 0u);
        EXPECT_EQ(codec.encode(1.0), codec.maxCode());
        EXPECT_DOUBLE_EQ(codec.quantise(0.0), 0.0);
        EXPECT_DOUBLE_EQ(codec.quantise(1.0), 1.0);
    }
}

TEST(FixedPoint, ClampsOutOfRange)
{
    FixedPointCodec codec(6);
    EXPECT_EQ(codec.encode(-0.5), 0u);
    EXPECT_EQ(codec.encode(1.5), codec.maxCode());
}

/** Quantisation error is bounded by half a ULP of the representation. */
class FixedPointBits : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(FixedPointBits, ErrorBounded)
{
    const unsigned bits = GetParam();
    FixedPointCodec codec(bits);
    const double ulp = 1.0 / ((1u << bits) - 1u);
    for (int i = 0; i <= 1000; ++i) {
        const double p = i / 1000.0;
        EXPECT_NEAR(codec.quantise(p), p, ulp / 2 + 1e-12);
    }
}

TEST_P(FixedPointBits, MonotoneEncoding)
{
    FixedPointCodec codec(GetParam());
    std::uint32_t prev = 0;
    for (int i = 0; i <= 1000; ++i) {
        const std::uint32_t code = codec.encode(i / 1000.0);
        EXPECT_GE(code, prev);
        prev = code;
    }
}

INSTANTIATE_TEST_SUITE_P(Bits, FixedPointBits,
                         ::testing::Values(4u, 6u, 8u, 10u, 12u, 16u));

TEST(FixedPoint, DistributionStaysNormalised)
{
    FixedPointCodec codec(6);
    const std::vector<double> dist{0.05, 0.15, 0.30, 0.50};
    const auto q = codec.quantiseDistribution(dist);
    double sum = 0.0;
    for (double v : q)
        sum += v;
    EXPECT_NEAR(sum, 1.0, 1e-12);
    // Quantisation should not reorder the entries.
    for (std::size_t i = 1; i < q.size(); ++i)
        EXPECT_GE(q[i], q[i - 1]);
}

TEST(FixedPoint, DistributionAllZeroFallsBack)
{
    FixedPointCodec codec(6);
    const std::vector<double> dist{1e-9, 1e-9};
    const auto q = codec.quantiseDistribution(dist);
    // Every entry quantised to zero: input returned unchanged.
    EXPECT_DOUBLE_EQ(q[0], 1e-9);
    EXPECT_DOUBLE_EQ(q[1], 1e-9);
}

TEST(FixedPoint, SixBitsCloseToFloat)
{
    // The paper's claim: 6 bits is enough. Check a typical 16-core
    // distribution survives with small relative error.
    FixedPointCodec codec(6);
    std::vector<double> dist(16);
    for (int i = 0; i < 16; ++i)
        dist[i] = (i + 1);
    double sum = 0;
    for (double &v : dist)
        sum += v;
    for (double &v : dist)
        v /= sum;
    const auto q = codec.quantiseDistribution(dist);
    for (int i = 0; i < 16; ++i)
        EXPECT_NEAR(q[i], dist[i], 0.02);
}
