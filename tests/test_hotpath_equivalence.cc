/**
 * @file
 * Hot-path equivalence, end to end: after the O(1) Core-Selection
 * sampler, the SoA metadata layout and the fused LRU victim walk,
 * the figure pipeline must still produce *byte-identical* output.
 *
 * - The fixture sweep (BENCH_fixture.json) and its telemetry trace
 *   (TRACE_fixture.json) must match the committed goldens exactly at
 *   1, 2 and 8 worker threads — the determinism contract holds
 *   through the hot-path rewrite.
 * - The hot-path microbench's deterministic contract fields
 *   (tests/golden/BENCH_hotpath.json) must reproduce exactly;
 *   regenerate after an intentional behaviour change with
 *   PRISM_UPDATE_GOLDEN=1.
 */

#include <gtest/gtest.h>

#include <array>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "exec/sweep.hh"
#include "telemetry/metrics_registry.hh"
#include "telemetry/trace_writer.hh"

using namespace prism;
using namespace prism::telemetry;

namespace
{

#ifndef PRISM_BENCH_BIN_DEFAULT
#define PRISM_BENCH_BIN_DEFAULT "tools/prism_bench"
#endif
#ifndef PRISM_HOTPATH_BIN_DEFAULT
#define PRISM_HOTPATH_BIN_DEFAULT "bench/bench_micro_hotpath"
#endif
#ifndef PRISM_GOLDEN_DIR_DEFAULT
#define PRISM_GOLDEN_DIR_DEFAULT "../tests/golden"
#endif

std::string
goldenDir()
{
    if (const char *p = std::getenv("PRISM_GOLDEN_DIR"))
        return p;
    return PRISM_GOLDEN_DIR_DEFAULT;
}

std::pair<int, std::string>
run(const std::string &cmd)
{
    FILE *pipe = popen((cmd + " 2>&1").c_str(), "r");
    EXPECT_NE(pipe, nullptr);
    std::string out;
    std::array<char, 4096> buf;
    while (std::size_t n = std::fread(buf.data(), 1, buf.size(), pipe))
        out.append(buf.data(), n);
    const int status = pclose(pipe);
    return {WEXITSTATUS(status), out};
}

std::string
slurp(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    EXPECT_TRUE(in.is_open()) << "cannot open " << path;
    std::ostringstream os;
    os << in.rdbuf();
    return os.str();
}

/** First line at which the two texts differ, for a readable diff. */
std::string
firstDiff(const std::string &a, const std::string &b)
{
    std::istringstream sa(a), sb(b);
    std::string la, lb;
    for (int line = 1;; ++line) {
        const bool ga = static_cast<bool>(std::getline(sa, la));
        const bool gb = static_cast<bool>(std::getline(sb, lb));
        if (!ga && !gb)
            return "no difference";
        if (la != lb || ga != gb)
            return "line " + std::to_string(line) + ": golden '" +
                   la + "' vs produced '" + lb + "'";
    }
}

std::string
tempDir(const char *tag)
{
    std::string tmpl = std::string("/tmp/prism_hotpath_") + tag +
                       "_XXXXXX";
    char *dir = mkdtemp(tmpl.data());
    EXPECT_NE(dir, nullptr);
    return tmpl;
}

/** The telemetry golden's sweep: two cores, mixed PriSM/baseline. */
SweepSpec
tracedSpec()
{
    MachineConfig m;
    m.numCores = 2;
    m.llcBytes = 256ull << 10;
    m.llcWays = 8;
    m.intervalMisses = 1024;
    m.instrBudget = 60'000;
    m.warmupInstr = 15'000;

    const Workload gf{"GF", {"403.gcc", "186.crafty"}};
    const Workload ss{"SS", {"179.art", "470.lbm"}};

    SweepSpec spec;
    spec.name = "telemetry";
    SchemeOptions opt;
    opt.telemetry.enabled = true;
    opt.telemetry.capacity = 64;
    spec.add(m, gf, SchemeKind::PrismH, opt);
    spec.add(m, gf, SchemeKind::Baseline, opt);
    spec.add(m, ss, SchemeKind::PrismH, opt);
    return spec;
}

std::string
traceOf(const SweepSpec &spec, unsigned threads)
{
    MetricsRegistry metrics;
    SweepRunner runner(threads);
    runner.setMetrics(&metrics);
    const SweepOutcome outcome = runner.run(spec);

    std::vector<TraceJob> jobs;
    for (std::size_t i = 0; i < spec.jobs.size(); ++i)
        jobs.push_back(
            {spec.jobs[i].id, outcome.results[i].recorder.get()});
    std::ostringstream os;
    TraceWriter().writeChromeTrace(os, jobs, &metrics);
    return os.str();
}

} // namespace

TEST(HotpathEquivalence, FixtureByteIdenticalAcrossThreads)
{
    const std::string bench_golden =
        slurp(goldenDir() + "/BENCH_fixture.json");
    ASSERT_FALSE(bench_golden.empty());

    for (const int threads : {1, 2, 8}) {
        const std::string dir = tempDir("fixture");
        const auto [code, out] =
            run(std::string(PRISM_BENCH_BIN_DEFAULT) +
                " fixture --no-timing --threads " +
                std::to_string(threads) + " --out " + dir);
        ASSERT_EQ(code, 0) << out;

        const std::string bench =
            slurp(dir + "/BENCH_fixture.json");
        EXPECT_EQ(bench, bench_golden)
            << "threads=" << threads << ": "
            << firstDiff(bench_golden, bench);

        std::remove((dir + "/BENCH_fixture.json").c_str());
        rmdir(dir.c_str());
    }
}

TEST(HotpathEquivalence, TraceByteIdenticalAcrossThreads)
{
    // The interval telemetry rides the same hot path (per-interval
    // snapshots, span clocks); its committed Chrome-trace golden
    // must also reproduce exactly at every thread count.
    const std::string trace_golden =
        slurp(goldenDir() + "/TRACE_fixture.json");
    ASSERT_FALSE(trace_golden.empty());

    const SweepSpec spec = tracedSpec();
    for (const unsigned threads : {1u, 2u, 8u}) {
        const std::string trace = traceOf(spec, threads);
        EXPECT_EQ(trace, trace_golden)
            << "threads=" << threads << ": "
            << firstDiff(trace_golden, trace);
    }
}

TEST(HotpathEquivalence, MicrobenchContractMatchesGolden)
{
    const std::string golden_path =
        goldenDir() + "/BENCH_hotpath.json";
    const std::string dir = tempDir("contract");
    const auto [code, out] =
        run(std::string(PRISM_HOTPATH_BIN_DEFAULT) +
            " --no-timing --out " + dir);
    ASSERT_EQ(code, 0) << out;

    const std::string produced = slurp(dir + "/BENCH_hotpath.json");
    std::remove((dir + "/BENCH_hotpath.json").c_str());
    rmdir(dir.c_str());

    if (std::getenv("PRISM_UPDATE_GOLDEN")) {
        std::ofstream g(golden_path, std::ios::binary);
        ASSERT_TRUE(g.is_open());
        g << produced;
        GTEST_SKIP() << "golden updated";
    }
    const std::string golden = slurp(golden_path);
    ASSERT_FALSE(golden.empty());
    EXPECT_EQ(produced, golden)
        << "hot-path contract drifted from the committed golden ("
        << firstDiff(golden, produced)
        << "); regenerate with PRISM_UPDATE_GOLDEN=1 if the "
           "behaviour change is intentional";
}
