/**
 * @file
 * The sweep determinism contract: the same SweepSpec produces
 * bit-identical results — and byte-identical JSON, timing aside — at
 * every thread count, because job seeds derive from job keys (never
 * thread ids or schedule order), jobs write only their own result
 * slots, and the shared stand-alone-IPC memo caches pure
 * computations. See src/exec/sweep.hh.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "common/rng.hh"
#include "exec/sweep.hh"

using namespace prism;

namespace
{

/** A small but non-trivial sweep: 2 configs x 2 mixes x 3 schemes. */
SweepSpec
makeSpec()
{
    SweepSpec spec;
    spec.name = "determinism";
    const std::vector<Workload> mixes{
        {"GF", {"403.gcc", "186.crafty"}},
        {"AL", {"179.art", "470.lbm"}},
    };
    for (const unsigned interval : {512u, 1024u}) {
        MachineConfig m;
        m.numCores = 2;
        m.llcBytes = 256ull << 10;
        m.llcWays = 8;
        m.intervalMisses = interval;
        m.instrBudget = 50'000;
        m.warmupInstr = 10'000;
        const std::string tag = "i" + std::to_string(interval);
        for (const auto &w : mixes) {
            spec.add(m, w, SchemeKind::Baseline, {}, tag);
            spec.add(m, w, SchemeKind::PrismH, {}, tag);
            spec.add(m, w, SchemeKind::PrismH, {}, tag, 1); // replica
        }
    }
    return spec;
}

/** Field-for-field equality, doubles compared bit-for-bit (==). */
void
expectIdentical(const RunResult &a, const RunResult &b,
                const std::string &id)
{
    SCOPED_TRACE(id);
    EXPECT_EQ(a.workload, b.workload);
    EXPECT_EQ(a.scheme, b.scheme);
    EXPECT_EQ(a.benchmarks, b.benchmarks);
    EXPECT_EQ(a.ipc, b.ipc);
    EXPECT_EQ(a.ipcStandalone, b.ipcStandalone);
    EXPECT_EQ(a.llcMisses, b.llcMisses);
    EXPECT_EQ(a.llcHits, b.llcHits);
    EXPECT_EQ(a.occupancyAtFinish, b.occupancyAtFinish);
    EXPECT_EQ(a.intervals, b.intervals);
    EXPECT_EQ(a.victimlessFraction, b.victimlessFraction);
    EXPECT_EQ(a.evProbMean, b.evProbMean);
    EXPECT_EQ(a.evProbStddev, b.evProbStddev);
    EXPECT_EQ(a.recomputes, b.recomputes);
}

std::string
jsonOf(const SweepSpec &spec, const SweepOutcome &outcome)
{
    SweepJsonOptions options;
    options.includeTiming = false;
    std::ostringstream os;
    writeSweepJson(os, spec, outcome, options);
    return os.str();
}

} // namespace

TEST(SweepDeterminism, BitIdenticalAcrossThreadCounts)
{
    const SweepSpec spec = makeSpec();
    const SweepOutcome base = SweepRunner(1).run(spec);
    ASSERT_EQ(base.results.size(), spec.jobs.size());
    const std::string base_json = jsonOf(spec, base);

    for (const unsigned threads : {2u, 8u}) {
        const SweepOutcome outcome = SweepRunner(threads).run(spec);
        ASSERT_EQ(outcome.results.size(), spec.jobs.size());
        for (std::size_t i = 0; i < spec.jobs.size(); ++i)
            expectIdentical(base.results[i], outcome.results[i],
                            spec.jobs[i].id);
        EXPECT_EQ(jsonOf(spec, outcome), base_json)
            << "JSON differs at " << threads << " threads";
    }
}

TEST(SweepDeterminism, RerunIsIdentical)
{
    const SweepSpec spec = makeSpec();
    const SweepOutcome a = SweepRunner(2).run(spec);
    const SweepOutcome b = SweepRunner(2).run(spec);
    EXPECT_EQ(jsonOf(spec, a), jsonOf(spec, b));
}

TEST(SweepDeterminism, MatchesDirectRunnerRun)
{
    // A seed_index-0 sweep job must reproduce a direct Runner::run()
    // bit for bit: the sweep engine adds no hidden state.
    const SweepSpec spec = makeSpec();
    const SweepOutcome outcome = SweepRunner(8).run(spec);
    for (std::size_t i = 0; i < spec.jobs.size(); ++i) {
        const SweepJob &job = spec.jobs[i];
        if (job.seedIndex != 0)
            continue;
        Runner runner(job.config);
        expectIdentical(
            runner.run(job.workload, job.scheme, job.options),
            outcome.results[i], job.id);
    }
}

TEST(SweepDeterminism, SeedReplicasDiffer)
{
    // Replica jobs (seed_index > 0) must be independent draws, not
    // copies of the base run.
    const SweepSpec spec = makeSpec();
    const SweepOutcome outcome = SweepRunner(4).run(spec);
    const SweepResults res(spec, outcome);
    const RunResult &base =
        res.at(SweepSpec::makeId("i512", "GF", SchemeKind::PrismH));
    const RunResult &replica = res.at(
        SweepSpec::makeId("i512", "GF", SchemeKind::PrismH, 1));
    EXPECT_NE(base.ipc, replica.ipc);
    // ...but their stand-alone references agree: the memo key is the
    // machine fingerprint, which excludes the derived seed only when
    // the seeds genuinely differ — replicas re-run their references.
    EXPECT_EQ(base.benchmarks, replica.benchmarks);
}

TEST(SweepDeterminism, StandaloneSimsAreMemoised)
{
    // 12 jobs over 2 configs x 2 mixes x 2 benchmarks: references
    // must run once per (config, benchmark), not once per job.
    const SweepSpec spec = makeSpec();
    const SweepOutcome outcome = SweepRunner(8).run(spec);
    std::set<std::string> unique;
    for (const auto &job : spec.jobs) {
        MachineConfig solo = job.config;
        solo.numCores = 1;
        for (const auto &b : job.workload.benchmarks)
            unique.insert(solo.fingerprint() + "|" + b);
    }
    EXPECT_EQ(outcome.standaloneSims, unique.size());
}

TEST(SweepDeterminism, DeriveSeedIsStableAndKeyed)
{
    // The derived seed is a pure function of (base, key) — the
    // contract that makes replicas thread-schedule independent.
    const std::uint64_t a = deriveSeed(1, "sweep-replica:1");
    EXPECT_EQ(a, deriveSeed(1, "sweep-replica:1"));
    EXPECT_NE(a, deriveSeed(1, "sweep-replica:2"));
    EXPECT_NE(a, deriveSeed(2, "sweep-replica:1"));
}
