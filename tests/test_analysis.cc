/**
 * @file
 * Diagnostics engine unit tests on synthetic series: convergence,
 * divergence, oscillation, invariant drift, QoS/fairness attainment,
 * the sweep roll-up, the verdict document, and the bench comparator.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/compare.hh"
#include "analysis/doctor.hh"
#include "analysis/run_spec.hh"
#include "analysis/series.hh"

using namespace prism;
using namespace prism::analysis;

namespace
{

const Finding *
find(const Verdict &v, const std::string &check)
{
    for (const Finding &f : v.findings)
        if (f.check == check)
            return &f;
    return nullptr;
}

/** Series whose occupancy approaches the target geometrically. */
RunSeries
convergingSeries(std::size_t n = 32, double decay = 0.7)
{
    RunSeries s;
    s.name = "synthetic";
    s.scheme = "PriSM-H";
    s.cores = 2;
    s.hasSeries = true;
    s.prism = true;
    s.hasCounters = true;
    s.intervals = n;
    double err = 0.5;
    for (std::size_t t = 1; t <= n; ++t) {
        s.interval.push_back(t);
        s.occupancy.push_back({0.6 - err, 0.4 + err});
        s.target.push_back({0.6, 0.4});
        s.evProb.push_back({0.3, 0.7});
        err *= decay;
    }
    return s;
}

} // namespace

TEST(Doctor, ConvergingRunPasses)
{
    const Verdict v = analyze(convergingSeries());
    EXPECT_EQ(v.overall, FindingStatus::Pass)
        << findingStatusName(v.overall);

    const Finding *conv = find(v, "tracking.converge_interval");
    ASSERT_NE(conv, nullptr);
    EXPECT_EQ(conv->status, FindingStatus::Pass);

    const Finding *decay = find(v, "tracking.decay");
    ASSERT_NE(decay, nullptr);
    EXPECT_EQ(decay->status, FindingStatus::Pass);

    // A non-PriSM scheme skips the scheme-specific attainment checks.
    EXPECT_EQ(find(v, "qos.attainment")->status, FindingStatus::Skip);
    EXPECT_EQ(find(v, "fairness.attainment")->status,
              FindingStatus::Skip);
}

TEST(Doctor, DivergingRunFailsTracking)
{
    RunSeries s = convergingSeries();
    // Invert the trajectory: error grows instead of decaying.
    for (std::size_t t = 0; t < s.occupancy.size(); ++t) {
        const double err =
            0.15 + 0.01 * static_cast<double>(t);
        s.occupancy[t] = {0.6 - err, 0.4 + err};
    }
    const Verdict v = analyze(s);
    EXPECT_EQ(v.overall, FindingStatus::Fail);
    EXPECT_EQ(find(v, "tracking.converge_interval")->status,
              FindingStatus::Fail);
    const Finding *decay = find(v, "tracking.decay");
    ASSERT_NE(decay, nullptr);
    EXPECT_EQ(decay->status, FindingStatus::Warn);
}

TEST(Doctor, OscillatingDistributionWarns)
{
    RunSeries s = convergingSeries();
    for (std::size_t t = 0; t < s.evProb.size(); ++t)
        s.evProb[t] = t % 2 ? std::vector<double>{0.9, 0.1}
                            : std::vector<double>{0.1, 0.9};
    const Verdict v = analyze(s);
    EXPECT_EQ(find(v, "stability.osc_amplitude")->status,
              FindingStatus::Warn);
    EXPECT_EQ(find(v, "stability.sign_flips")->status,
              FindingStatus::Warn);
}

TEST(Doctor, DistributionDriftFailsSumInvariant)
{
    RunSeries s = convergingSeries();
    s.evProb.back() = {0.3, 0.8}; // sums to 1.1
    const Verdict v = analyze(s);
    const Finding *f = find(v, "invariants.sum_e");
    ASSERT_NE(f, nullptr);
    EXPECT_EQ(f->status, FindingStatus::Fail);
    EXPECT_NEAR(f->value, 0.1, 1e-12);
}

TEST(Doctor, OccupancyOverflowFails)
{
    RunSeries s = convergingSeries();
    s.occupancy.back() = {0.7, 0.5}; // 20% over capacity
    const Verdict v = analyze(s);
    EXPECT_EQ(find(v, "invariants.sum_c")->status,
              FindingStatus::Fail);
}

TEST(Doctor, FallbackEntriesFail)
{
    RunSeries s = convergingSeries();
    s.fallbackEntries = 1;
    const Verdict v = analyze(s);
    EXPECT_EQ(v.overall, FindingStatus::Fail);
    EXPECT_EQ(find(v, "robustness.fallbacks")->status,
              FindingStatus::Fail);
}

TEST(Doctor, DegradedFractionEscalates)
{
    RunSeries s = convergingSeries();
    s.degradedIntervals = 2;
    EXPECT_EQ(find(analyze(s), "robustness.degraded")->status,
              FindingStatus::Warn);
    s.degradedIntervals = s.intervals; // all degraded
    EXPECT_EQ(find(analyze(s), "robustness.degraded")->status,
              FindingStatus::Fail);
}

TEST(Doctor, QosAttainment)
{
    RunSeries s = convergingSeries();
    s.scheme = "PriSM-Q";
    s.hasPerf = true;
    s.qosTargetFrac = 0.8;
    s.ipcStandalone = {1.0, 1.0};

    s.ipc = {0.85, 0.6};
    EXPECT_EQ(find(analyze(s), "qos.attainment")->status,
              FindingStatus::Pass);

    s.ipc = {0.5, 0.6}; // core 0 well under the floor
    const Verdict v = analyze(s);
    EXPECT_EQ(find(v, "qos.attainment")->status, FindingStatus::Fail);
    EXPECT_EQ(v.overall, FindingStatus::Fail);
}

TEST(Doctor, FairnessAttainment)
{
    RunSeries s = convergingSeries();
    s.scheme = "PriSM-F";
    s.hasPerf = true;
    s.ipcStandalone = {1.0, 1.0};

    s.ipc = {0.7, 0.65};
    EXPECT_EQ(find(analyze(s), "fairness.attainment")->status,
              FindingStatus::Pass);

    s.ipc = {0.9, 0.2}; // lopsided progress
    EXPECT_EQ(find(analyze(s), "fairness.attainment")->status,
              FindingStatus::Warn);
}

TEST(Doctor, CountersOnlyInputSkipsSeriesChecks)
{
    RunSeries s;
    s.name = "stats-only";
    s.hasCounters = true;
    s.intervals = 100;
    const Verdict v = analyze(s);
    EXPECT_EQ(find(v, "tracking.residual")->status,
              FindingStatus::Skip);
    EXPECT_EQ(find(v, "stability.osc_amplitude")->status,
              FindingStatus::Skip);
    // Skips never dominate the overall verdict.
    EXPECT_EQ(v.overall, FindingStatus::Pass);
}

TEST(Doctor, RollupCountsJobsAndKeepsWorst)
{
    RunSeries bad = convergingSeries();
    bad.fallbackEntries = 3;
    const std::vector<Verdict> jobs = {analyze(convergingSeries()),
                                       analyze(bad)};
    EXPECT_EQ(worstOf(jobs), FindingStatus::Fail);
    const Verdict sweep = rollup(jobs);
    EXPECT_EQ(sweep.overall, FindingStatus::Fail);
    EXPECT_EQ(find(sweep, "sweep.jobs_FAIL")->value, 1.0);
    EXPECT_EQ(find(sweep, "sweep.jobs_PASS")->value, 1.0);
}

TEST(Doctor, DocumentIsValidJsonWithSchema)
{
    const std::vector<Verdict> jobs = {analyze(convergingSeries())};
    std::ostringstream os;
    writeDoctorDocument(os, "run", jobs, DoctorThresholds{});

    JsonValue doc;
    const Status st = parseJson(os.str(), doc);
    ASSERT_TRUE(st.ok()) << st.message();
    EXPECT_EQ(doc.at("schema").asString(), "prism-doctor-v1");
    EXPECT_EQ(doc.at("source").asString(), "run");
    EXPECT_EQ(doc.at("verdict").asString(), "PASS");
    EXPECT_EQ(doc.at("summary").at("jobs").asU64(), 1u);
    EXPECT_EQ(doc.at("jobs").at(0).at("run").asString(), "synthetic");
    EXPECT_DOUBLE_EQ(
        doc.at("thresholds").at("converged_error").asDouble(), 0.10);
}

namespace
{

/** Minimal prism-bench-v1 document with one job. */
std::string
benchDoc(double ipc0, std::uint64_t intervals)
{
    std::ostringstream os;
    JsonWriter w(os);
    w.beginObject();
    w.kv("schema", "prism-bench-v1");
    w.kv("sweep", "t");
    w.key("jobs");
    w.beginArray();
    w.beginObject();
    w.kv("id", "W/PriSM-H");
    w.key("config");
    w.beginObject();
    w.kv("cores", 2u);
    w.endObject();
    w.key("result");
    w.beginObject();
    w.kv("scheme", "PriSM-H");
    w.key("ipc");
    w.beginArray();
    w.value(ipc0);
    w.value(0.5);
    w.endArray();
    w.kv("intervals", intervals);
    w.endObject();
    w.endObject();
    w.endArray();
    w.endObject();
    return os.str();
}

JsonValue
parsed(const std::string &text)
{
    JsonValue v;
    const Status st = parseJson(text, v);
    EXPECT_TRUE(st.ok()) << st.message();
    return v;
}

} // namespace

TEST(Compare, IdenticalDocumentsPass)
{
    const JsonValue a = parsed(benchDoc(1.0, 44));
    const Verdict v = compareBenchDocs(a, a);
    EXPECT_EQ(v.overall, FindingStatus::Pass);
}

TEST(Compare, DriftBeyondToleranceFails)
{
    const JsonValue a = parsed(benchDoc(1.0, 44));
    const JsonValue b = parsed(benchDoc(1.001, 44));
    EXPECT_EQ(compareBenchDocs(a, b).overall, FindingStatus::Fail);

    CompareOptions loose;
    loose.relTolerance = 0.01;
    EXPECT_EQ(compareBenchDocs(a, b, loose).overall,
              FindingStatus::Pass);

    // Per-metric override: only "ipc" may drift.
    CompareOptions per;
    per.metricTolerance["ipc"] = 0.01;
    EXPECT_EQ(compareBenchDocs(a, b, per).overall,
              FindingStatus::Pass);
    const JsonValue c = parsed(benchDoc(1.0, 45));
    EXPECT_EQ(compareBenchDocs(a, c, per).overall,
              FindingStatus::Fail);
}

TEST(Compare, WildcardToleranceMatchesBySuffix)
{
    CompareOptions opts;
    opts.relTolerance = 0.0;
    opts.metricTolerance["*_per_sec"] = 0.5;
    opts.metricTolerance["accesses_per_sec"] = 0.25;

    // Exact key wins over the wildcard; other *_per_sec metrics get
    // the wildcard value; unrelated metrics fall back to the global.
    EXPECT_DOUBLE_EQ(opts.toleranceFor("accesses_per_sec"), 0.25);
    EXPECT_DOUBLE_EQ(opts.toleranceFor("alias_draws_per_sec"), 0.5);
    EXPECT_DOUBLE_EQ(opts.toleranceFor("_per_sec"), 0.5);
    EXPECT_DOUBLE_EQ(opts.toleranceFor("ipc"), 0.0);
    // Shorter than the suffix, or only a partial match: no wildcard.
    EXPECT_DOUBLE_EQ(opts.toleranceFor("per_sec"), 0.0);
    EXPECT_DOUBLE_EQ(opts.toleranceFor("sec"), 0.0);

    // A bare "*" key is ignored (size < 2), not a match-everything.
    CompareOptions star;
    star.metricTolerance["*"] = 0.9;
    EXPECT_DOUBLE_EQ(star.toleranceFor("ipc"), 0.0);
}

TEST(Compare, WildcardToleranceAppliesToDocuments)
{
    const JsonValue a = parsed(benchDoc(1.0, 44));
    const JsonValue b = parsed(benchDoc(1.001, 44));

    CompareOptions wild;
    wild.metricTolerance["*pc"] = 0.01; // suffix of "ipc"
    EXPECT_EQ(compareBenchDocs(a, b, wild).overall,
              FindingStatus::Pass);

    CompareOptions miss;
    miss.metricTolerance["*_per_sec"] = 0.01;
    EXPECT_EQ(compareBenchDocs(a, b, miss).overall,
              FindingStatus::Fail);
}

TEST(Compare, MissingAndExtraJobsFail)
{
    const JsonValue a = parsed(benchDoc(1.0, 44));
    const JsonValue empty = parsed(
        R"({"schema": "prism-bench-v1", "sweep": "t", "jobs": []})");
    const Verdict missing = compareBenchDocs(a, empty);
    EXPECT_EQ(missing.overall, FindingStatus::Fail);
    ASSERT_NE(find(missing, "compare.missing_job"), nullptr);
    const Verdict extra = compareBenchDocs(empty, a);
    EXPECT_EQ(extra.overall, FindingStatus::Fail);
    ASSERT_NE(find(extra, "compare.extra_job"), nullptr);
}

TEST(RunSpecParse, ResolvesWorkloadSchemeAndMachine)
{
    RunSpec spec;
    const Status st = parseRunSpec(
        "--mix 403.gcc,186.crafty --scheme PriSM-Q --repl RRIP "
        "--instr 50000 --warmup 10000 --interval 512 --seed 7 "
        "--bits 6 --qos-frac 0.7 --checked",
        spec);
    ASSERT_TRUE(st.ok()) << st.message();
    EXPECT_EQ(spec.workload.benchmarks.size(), 2u);
    EXPECT_EQ(spec.scheme, SchemeKind::PrismQ);
    EXPECT_EQ(spec.machine.numCores, 2u);
    EXPECT_EQ(spec.machine.instrBudget, 50000u);
    EXPECT_EQ(spec.machine.intervalMisses, 512u);
    EXPECT_EQ(spec.machine.seed, 7u);
    EXPECT_EQ(spec.machine.repl, ReplKind::RRIP);
    EXPECT_EQ(spec.options.probBits, 6u);
    EXPECT_DOUBLE_EQ(spec.options.qosTargetFrac, 0.7);
    EXPECT_TRUE(spec.options.checked);
}

TEST(RunSpecParse, RejectsBadInput)
{
    RunSpec spec;
    EXPECT_FALSE(parseRunSpec("--scheme NoSuch", spec).ok());
    EXPECT_FALSE(parseRunSpec("--workload NoSuch", spec).ok());
    EXPECT_FALSE(parseRunSpec("--instr abc", spec).ok());
    EXPECT_FALSE(parseRunSpec("--cores 3", spec).ok());
    EXPECT_FALSE(parseRunSpec("--stats", spec).ok()); // output flag
    EXPECT_FALSE(
        parseRunSpec("--faults nosuchkind@2", spec).ok());
    // Default spec is the 4-core paper machine under PriSM-H.
    ASSERT_TRUE(parseRunSpec("", spec).ok());
    EXPECT_EQ(spec.scheme, SchemeKind::PrismH);
    EXPECT_EQ(spec.machine.numCores, 4u);
}
