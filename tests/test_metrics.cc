/**
 * @file
 * Tests for ANTT, fairness and throughput metrics [3].
 */

#include <gtest/gtest.h>

#include "sim/metrics.hh"

using namespace prism;

TEST(Metrics, AnttOfUnslowedWorkloadIsOne)
{
    const std::vector<double> sp{1.0, 2.0, 0.5};
    EXPECT_NEAR(antt(sp, sp), 1.0, 1e-12);
}

TEST(Metrics, AnttAveragesSlowdowns)
{
    const std::vector<double> sp{1.0, 1.0};
    const std::vector<double> mp{0.5, 1.0}; // slowdowns 2 and 1
    EXPECT_NEAR(antt(sp, mp), 1.5, 1e-12);
}

TEST(Metrics, AnttLowerIsBetter)
{
    const std::vector<double> sp{1.0, 1.0};
    const std::vector<double> good{0.9, 0.9};
    const std::vector<double> bad{0.5, 0.5};
    EXPECT_LT(antt(sp, good), antt(sp, bad));
}

TEST(Metrics, FairnessPerfectWhenEqualSlowdown)
{
    const std::vector<double> sp{2.0, 1.0};
    const std::vector<double> mp{1.0, 0.5}; // both 2x slower
    EXPECT_NEAR(fairness(sp, mp), 1.0, 1e-12);
}

TEST(Metrics, FairnessIsMinOverMax)
{
    const std::vector<double> sp{1.0, 1.0};
    const std::vector<double> mp{0.25, 0.75};
    EXPECT_NEAR(fairness(sp, mp), 1.0 / 3.0, 1e-12);
}

TEST(Metrics, FairnessInUnitRange)
{
    const std::vector<double> sp{1.0, 2.0, 3.0};
    const std::vector<double> mp{0.9, 0.8, 0.7};
    const double f = fairness(sp, mp);
    EXPECT_GT(f, 0.0);
    EXPECT_LE(f, 1.0);
}

TEST(Metrics, ThroughputSums)
{
    const std::vector<double> mp{0.5, 0.25, 1.0};
    EXPECT_DOUBLE_EQ(ipcThroughput(mp), 1.75);
}

TEST(Metrics, SingleProgramFairnessIsOne)
{
    const std::vector<double> sp{1.0};
    const std::vector<double> mp{0.4};
    EXPECT_NEAR(fairness(sp, mp), 1.0, 1e-12);
}
