/**
 * @file
 * Tests for the DRRIP replacement policy.
 */

#include <gtest/gtest.h>

#include "cache/repl_policy.hh"
#include "cache/shared_cache.hh"
#include "common/rng.hh"

using namespace prism;

namespace
{

struct TestSet
{
    BlockArrays blocks{4};
    SetState state;

    SetView
    view(std::uint32_t idx = 0)
    {
        return SetView{idx, SetBlocks(blocks, 0, 4), state};
    }

    void
    fill(ReplacementPolicy &p, int w, std::uint32_t set_idx = 0)
    {
        blocks[static_cast<std::size_t>(w)].valid = true;
        p.onFill(view(set_idx), w);
    }
};

} // namespace

TEST(Rrip, SrripLeaderInsertsAtLongInterval)
{
    auto p = makeReplPolicy(ReplKind::RRIP, 1, 64);
    TestSet s;
    s.fill(*p, 0, /*set 0 = SRRIP leader*/ 0);
    EXPECT_EQ(s.blocks[0].rrpv, 2);
}

TEST(Rrip, HitPromotesToNearImmediate)
{
    auto p = makeReplPolicy(ReplKind::RRIP, 1, 64);
    TestSet s;
    s.fill(*p, 0, 0);
    p->onHit(s.view(0), 0);
    EXPECT_EQ(s.blocks[0].rrpv, 0);
}

TEST(Rrip, VictimIsDistantBlock)
{
    auto p = makeReplPolicy(ReplKind::RRIP, 1, 64);
    TestSet s;
    for (int w = 0; w < 4; ++w)
        s.fill(*p, w, 0);
    // Promote ways 0-2; way 3 stays at insertion RRPV.
    for (int w = 0; w < 3; ++w)
        p->onHit(s.view(0), w);
    EXPECT_EQ(p->victim(s.view(0)), 3);
}

TEST(Rrip, AgingFindsVictimWhenAllNear)
{
    auto p = makeReplPolicy(ReplKind::RRIP, 1, 64);
    TestSet s;
    for (int w = 0; w < 4; ++w) {
        s.fill(*p, w, 0);
        p->onHit(s.view(0), w); // everyone at RRPV 0
    }
    const int v = p->victim(s.view(0));
    EXPECT_NE(v, invalidWay);
    // Aging must have pushed every block to the distant value.
    for (int w = 0; w < 4; ++w)
        EXPECT_EQ(s.blocks[w].rrpv, 3);
    (void)v;
}

TEST(Rrip, VictimAmongRespectsMask)
{
    auto p = makeReplPolicy(ReplKind::RRIP, 1, 64);
    TestSet s;
    for (int w = 0; w < 4; ++w)
        s.fill(*p, w, 0);
    p->onHit(s.view(0), 3); // way 3 is the most valuable
    const char allowed[4] = {0, 0, 0, 1};
    EXPECT_EQ(p->victimAmong(s.view(0),
                             std::span<const char>(allowed, 4)),
              3);
}

TEST(Rrip, EvictionOrderMostDistantFirst)
{
    auto p = makeReplPolicy(ReplKind::RRIP, 1, 64);
    TestSet s;
    for (int w = 0; w < 4; ++w)
        s.fill(*p, w, 0);
    p->onHit(s.view(0), 1);
    std::vector<int> order;
    p->evictionOrder(s.view(0), order);
    EXPECT_EQ(order.back(), 1); // the hit block is evicted last
}

TEST(Rrip, ScanResistanceBeatsLruOnThrash)
{
    // A cyclic working set slightly larger than the cache: LRU gets
    // zero hits; RRIP's insertion discipline retains a useful subset.
    CacheConfig cfg;
    cfg.sizeBytes = 64 * 1024; // 1024 blocks
    cfg.ways = 16;
    cfg.numCores = 1;
    cfg.intervalMisses = 1u << 30;

    auto run = [&](ReplKind kind) {
        CacheConfig c = cfg;
        c.repl = kind;
        SharedCache cache(c);
        for (int pass = 0; pass < 40; ++pass)
            for (Addr a = 0; a < 1280; ++a)
                cache.access(0, a); // 20 blocks per 16-way set
        return cache.totals(0).hits;
    };

    const auto rrip_hits = run(ReplKind::RRIP);
    const auto lru_hits = run(ReplKind::LRU);
    EXPECT_LT(lru_hits, 100u);     // LRU thrashes completely
    EXPECT_GT(rrip_hits, 1000u);   // BRRIP retains a working subset
}

TEST(Rrip, WorksUnderPrism)
{
    // PriSM composes with RRIP like with any other policy.
    CacheConfig cfg;
    cfg.sizeBytes = 256 * 1024;
    cfg.ways = 8;
    cfg.numCores = 2;
    cfg.repl = ReplKind::RRIP;
    cfg.intervalMisses = 2048;
    SharedCache cache(cfg);
    // Just exercise the combination heavily through the public API.
    Rng rng(3);
    for (int i = 0; i < 100000; ++i)
        cache.access(static_cast<CoreId>(rng.below(2)),
                     rng.below(16384));
    EXPECT_GT(cache.totals(0).hits + cache.totals(1).hits, 0u);
}
