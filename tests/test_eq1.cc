/**
 * @file
 * Tests for Equation 1 and the eviction-distribution construction —
 * the analytical core of PriSM (paper §3.2).
 */

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "plane/eq1.hh"

using namespace prism;

namespace
{
const double kNan = std::numeric_limits<double>::quiet_NaN();
const double kInf = std::numeric_limits<double>::infinity();
} // namespace

TEST(Eq1, SteadyStateEvictsAtMissRate)
{
    // Target equals occupancy: eviction probability equals the miss
    // fraction, leaving occupancy unchanged.
    EXPECT_DOUBLE_EQ(eq1(0.25, 0.25, 0.4, 1024, 512), 0.4);
}

TEST(Eq1, GrowthClampsToZero)
{
    // Target far above occupancy: never evict this core.
    EXPECT_DOUBLE_EQ(eq1(0.1, 0.9, 0.2, 1024, 64), 0.0);
}

TEST(Eq1, ShrinkClampsToOne)
{
    // Target far below occupancy: always evict this core.
    EXPECT_DOUBLE_EQ(eq1(0.9, 0.1, 0.2, 1024, 64), 1.0);
}

TEST(Eq1, LinearInBetween)
{
    // E = (C - T) * N/W + M.
    const double e = eq1(0.5, 0.4, 0.3, 1000, 1000);
    EXPECT_NEAR(e, 0.1 + 0.3, 1e-12);
}

TEST(Eq1, PredictedOccupancyInverse)
{
    // tau(C, M, eq1(C, T, M)) == T whenever eq1 is unclamped.
    const double c = 0.4, t = 0.5, m = 0.35;
    const std::uint64_t n = 4096, w = 2048;
    const double e = eq1(c, t, m, n, w);
    EXPECT_GT(e, 0.0);
    EXPECT_LT(e, 1.0);
    EXPECT_NEAR(predictedOccupancy(c, m, e, n, w), t, 1e-12);
}

TEST(Eq1, PredictedOccupancyClampsToUnitRange)
{
    EXPECT_DOUBLE_EQ(predictedOccupancy(0.9, 0.9, 0.0, 100, 100), 1.0);
    EXPECT_DOUBLE_EQ(predictedOccupancy(0.1, 0.0, 0.9, 100, 100), 0.0);
}

TEST(EvictionDistribution, SumsToOne)
{
    const std::vector<double> c{0.4, 0.3, 0.2, 0.1};
    const std::vector<double> t{0.25, 0.25, 0.25, 0.25};
    const std::vector<double> m{0.1, 0.2, 0.3, 0.4};
    const auto e = evictionDistribution(c, t, m, 4096, 2048);
    double sum = 0;
    for (double v : e)
        sum += v;
    EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(EvictionDistribution, ProtectedCoreKeepsZero)
{
    // Core 0 is far below target: its E must stay zero even after
    // the deficit redistribution.
    const std::vector<double> c{0.05, 0.5, 0.45};
    const std::vector<double> t{0.5, 0.25, 0.25};
    const std::vector<double> m{0.2, 0.4, 0.4};
    const auto e = evictionDistribution(c, t, m, 4096, 4096);
    EXPECT_DOUBLE_EQ(e[0], 0.0);
    EXPECT_NEAR(e[1] + e[2], 1.0, 1e-9);
}

TEST(EvictionDistribution, OverDemandScalesDown)
{
    // Both cores want to shrink fast: raw sum > 1, scaled to 1.
    const std::vector<double> c{0.6, 0.4};
    const std::vector<double> t{0.1, 0.1};
    const std::vector<double> m{0.5, 0.5};
    const auto e = evictionDistribution(c, t, m, 4096, 4096);
    EXPECT_NEAR(e[0] + e[1], 1.0, 1e-9);
    EXPECT_GT(e[0], e[1]); // more over target -> higher share
}

TEST(EvictionDistribution, AllGrowingFallsBackToMissShares)
{
    // Everyone below target: evict in proportion to insertions.
    const std::vector<double> c{0.1, 0.1};
    const std::vector<double> t{0.5, 0.5};
    const std::vector<double> m{0.75, 0.25};
    const auto e = evictionDistribution(c, t, m, 4096, 64);
    EXPECT_NEAR(e[0], 0.75, 1e-9);
    EXPECT_NEAR(e[1], 0.25, 1e-9);
}

TEST(EvictionDistribution, DegenerateInputsGiveUniform)
{
    const std::vector<double> c{0.1, 0.1};
    const std::vector<double> t{0.5, 0.5};
    const std::vector<double> m{0.0, 0.0};
    const auto e = evictionDistribution(c, t, m, 4096, 64);
    EXPECT_NEAR(e[0], 0.5, 1e-9);
    EXPECT_NEAR(e[1], 0.5, 1e-9);
}

// --- hardening: the paths fault injection exercises ---

TEST(Eq1Hardened, NonFiniteInputsAreClamped)
{
    // NaN inputs behave as 0, +Inf as 1; the result is always finite.
    EXPECT_DOUBLE_EQ(eq1(kNan, 0.25, 0.4, 1024, 512),
                     eq1(0.0, 0.25, 0.4, 1024, 512));
    EXPECT_DOUBLE_EQ(eq1(0.25, kNan, 0.4, 1024, 512),
                     eq1(0.25, 0.0, 0.4, 1024, 512));
    EXPECT_DOUBLE_EQ(eq1(0.25, 0.25, kInf, 1024, 512),
                     eq1(0.25, 0.25, 1.0, 1024, 512));
    EXPECT_DOUBLE_EQ(eq1(-kInf, 0.25, 0.4, 1024, 512),
                     eq1(0.0, 0.25, 0.4, 1024, 512));
    EXPECT_TRUE(std::isfinite(eq1(kNan, kInf, -kInf, 1024, 512)));
}

TEST(Eq1Hardened, OutOfRangeInputsAreClamped)
{
    EXPECT_DOUBLE_EQ(eq1(1.7, 0.25, 0.4, 1024, 512),
                     eq1(1.0, 0.25, 0.4, 1024, 512));
    EXPECT_DOUBLE_EQ(eq1(-0.3, 0.25, 0.4, 1024, 512),
                     eq1(0.0, 0.25, 0.4, 1024, 512));
}

TEST(Eq1Hardened, ZeroIntervalTakesAnalyticLimit)
{
    // W == 0: the occupancy error dominates infinitely.
    EXPECT_DOUBLE_EQ(eq1(0.6, 0.4, 0.3, 1024, 0), 1.0);
    EXPECT_DOUBLE_EQ(eq1(0.2, 0.4, 0.3, 1024, 0), 0.0);
    EXPECT_DOUBLE_EQ(eq1(0.4, 0.4, 0.3, 1024, 0), 0.3);
}

TEST(EvictionDistributionHardened, NanInputsSanitisedAndCounted)
{
    const std::vector<double> c{kNan, 0.3, 0.2, 0.1};
    const std::vector<double> t{0.25, 0.25, 0.25, 0.25};
    const std::vector<double> m{0.1, kInf, 0.3, -0.4};
    Eq1Stats stats;
    const auto e = evictionDistribution(c, t, m, 4096, 2048, &stats);
    EXPECT_EQ(stats.clampedInputs, 3u);
    double sum = 0;
    for (double v : e) {
        EXPECT_TRUE(std::isfinite(v));
        EXPECT_GE(v, 0.0);
        EXPECT_LE(v, 1.0 + 1e-9);
        sum += v;
    }
    EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(EvictionDistributionHardened, AllZeroMissFractions)
{
    // No misses recorded at all and everyone on target: uniform.
    const std::vector<double> c{0.25, 0.25, 0.25, 0.25};
    const std::vector<double> t{0.25, 0.25, 0.25, 0.25};
    const std::vector<double> m{0.0, 0.0, 0.0, 0.0};
    const auto e = evictionDistribution(c, t, m, 4096, 2048);
    for (double v : e)
        EXPECT_NEAR(v, 0.25, 1e-9);
}

TEST(EvictionDistributionHardened, AllCoresOverTarget)
{
    // Every core above target: raw demands scale down to sum 1.
    const std::vector<double> c{0.4, 0.3, 0.3};
    const std::vector<double> t{0.1, 0.1, 0.1};
    const std::vector<double> m{0.4, 0.3, 0.3};
    const auto e = evictionDistribution(c, t, m, 4096, 1024);
    double sum = 0;
    for (double v : e) {
        EXPECT_GT(v, 0.0);
        sum += v;
    }
    EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(EvictionDistributionHardened, CleanInputsCountNoClamps)
{
    const std::vector<double> c{0.4, 0.6};
    const std::vector<double> t{0.5, 0.5};
    const std::vector<double> m{0.5, 0.5};
    Eq1Stats stats;
    evictionDistribution(c, t, m, 4096, 2048, &stats);
    EXPECT_EQ(stats.clampedInputs, 0u);
}

/** Property sweep: the distribution is always normalised and in
 *  range for random inputs. */
class Eq1Property : public ::testing::TestWithParam<int>
{
};

TEST_P(Eq1Property, AlwaysValidDistribution)
{
    const int seed = GetParam();
    std::srand(seed);
    auto frand = [] { return std::rand() / (RAND_MAX + 1.0); };

    std::vector<double> c(8), t(8), m(8);
    double csum = 0, tsum = 0, msum = 0;
    for (int i = 0; i < 8; ++i) {
        c[i] = frand();
        t[i] = frand();
        m[i] = frand();
        csum += c[i];
        tsum += t[i];
        msum += m[i];
    }
    for (int i = 0; i < 8; ++i) {
        c[i] /= csum;
        t[i] /= tsum;
        m[i] /= msum;
    }

    const auto e = evictionDistribution(c, t, m, 65536, 32768);
    double esum = 0;
    for (double v : e) {
        EXPECT_GE(v, 0.0);
        EXPECT_LE(v, 1.0 + 1e-9);
        esum += v;
    }
    EXPECT_NEAR(esum, 1.0, 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Seeds, Eq1Property, ::testing::Range(1, 33));
