/**
 * @file
 * Integration tests: whole-system simulations exercising the runner,
 * the timing model and cross-scheme behavioural properties the paper
 * relies on. These use deliberately small instruction budgets.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "sim/runner.hh"

using namespace prism;

namespace
{

MachineConfig
tinyQuad()
{
    MachineConfig m = MachineConfig::forCores(4);
    m.instrBudget = 300'000;
    m.warmupInstr = 150'000;
    return m;
}

} // namespace

TEST(System, RunsToCompletion)
{
    MachineConfig m = tinyQuad();
    Workload w{"t", {"403.gcc", "186.crafty", "197.parser",
                     "462.libquantum"}};
    System sys(m, w, nullptr);
    const auto res = sys.run();
    ASSERT_EQ(res.cores.size(), 4u);
    for (const auto &c : res.cores) {
        EXPECT_GE(c.instructions, m.instrBudget);
        EXPECT_GT(c.cycles, 0.0);
        EXPECT_GT(c.ipc(), 0.0);
    }
}

TEST(System, DeterministicAcrossRuns)
{
    MachineConfig m = tinyQuad();
    Workload w{"t", {"403.gcc", "300.twolf", "197.parser", "470.lbm"}};
    System a(m, w, nullptr), b(m, w, nullptr);
    const auto ra = a.run(), rb = b.run();
    for (int c = 0; c < 4; ++c) {
        EXPECT_DOUBLE_EQ(ra.cores[c].cycles, rb.cores[c].cycles);
        EXPECT_EQ(ra.cores[c].llcMisses, rb.cores[c].llcMisses);
    }
}

TEST(System, SeedChangesOutcomeSlightly)
{
    MachineConfig m = tinyQuad();
    Workload w{"t", {"403.gcc", "300.twolf", "197.parser", "470.lbm"}};
    System a(m, w, nullptr);
    m.seed = 999;
    System b(m, w, nullptr);
    const auto ra = a.run(), rb = b.run();
    std::uint64_t miss_a = 0, miss_b = 0;
    for (int c = 0; c < 4; ++c) {
        miss_a += ra.cores[c].llcMisses;
        miss_b += rb.cores[c].llcMisses;
    }
    EXPECT_NE(miss_a, miss_b);
}

TEST(System, WorkloadSizeMustMatchCores)
{
    MachineConfig m = tinyQuad();
    Workload w{"t", {"403.gcc"}};
    EXPECT_DEATH(System(m, w, nullptr), "");
}

TEST(System, RejectsMismatchedCoreCount)
{
    MachineConfig m = tinyQuad();
    m.numCores = 2;
    Runner r(m);
    Workload w{"t", {"403.gcc", "300.twolf", "197.parser", "470.lbm"}};
    EXPECT_DEATH(r.run(w, SchemeKind::Baseline), "");
}

TEST(Runner, StandaloneIpcIsCached)
{
    Runner r(tinyQuad());
    const double a = r.standaloneIpc("403.gcc");
    const double b = r.standaloneIpc("403.gcc");
    EXPECT_DOUBLE_EQ(a, b);
    EXPECT_GT(a, 0.0);
}

TEST(Runner, StandaloneBeatsShared)
{
    // A cache-sensitive program must run at least as fast alone as it
    // does in a contended mix (the premise of ANTT).
    MachineConfig m = tinyQuad();
    Runner r(m);
    Workload w{"t", {"300.twolf", "470.lbm", "462.libquantum",
                     "433.milc"}};
    const auto res = r.run(w, SchemeKind::Baseline);
    EXPECT_LE(res.ipc[0], res.ipcStandalone[0] * 1.02);
    EXPECT_GE(res.antt(), 1.0);
}

TEST(Runner, AllSchemesProduceValidResults)
{
    MachineConfig m = tinyQuad();
    Runner r(m);
    Workload w{"t", {"179.art", "403.gcc", "300.twolf", "470.lbm"}};
    for (auto kind :
         {SchemeKind::Baseline, SchemeKind::UCP, SchemeKind::PIPP,
          SchemeKind::TADIP, SchemeKind::FairWP, SchemeKind::PrismH,
          SchemeKind::PrismF, SchemeKind::PrismQ,
          SchemeKind::WPHitMax}) {
        const auto res = r.run(w, kind);
        EXPECT_EQ(res.scheme, schemeName(kind));
        for (double ipc : res.ipc)
            EXPECT_GT(ipc, 0.0) << res.scheme;
        EXPECT_GT(res.antt(), 0.9) << res.scheme;
        EXPECT_GT(res.fairness(), 0.0) << res.scheme;
        EXPECT_LE(res.fairness(), 1.0) << res.scheme;
    }
}

TEST(Runner, VantageRunsOnTimestampLru)
{
    MachineConfig m = tinyQuad();
    m.repl = ReplKind::TimestampLRU;
    Runner r(m);
    Workload w{"t", {"179.art", "403.gcc", "300.twolf", "470.lbm"}};
    const auto res = r.run(w, SchemeKind::Vantage);
    for (double ipc : res.ipc)
        EXPECT_GT(ipc, 0.0);
}

TEST(Runner, PrismReportsInternalStats)
{
    MachineConfig m = tinyQuad();
    Runner r(m);
    Workload w{"t", {"179.art", "403.gcc", "300.twolf", "470.lbm"}};
    const auto res = r.run(w, SchemeKind::PrismH);
    EXPECT_GT(res.recomputes, 0u);
    ASSERT_EQ(res.evProbMean.size(), 4u);
    double esum = 0;
    for (double e : res.evProbMean)
        esum += e;
    EXPECT_NEAR(esum, 1.0, 0.2);
}

TEST(Runner, StreamerGainsNothingFromCache)
{
    // Property behind hit-maximisation: a streaming program's IPC is
    // nearly identical under LRU and under PriSM-H even though its
    // occupancy shrinks drastically.
    MachineConfig m = tinyQuad();
    m.instrBudget = 500'000;
    Runner r(m);
    Workload w{"t", {"179.art", "300.twolf", "470.lbm",
                     "462.libquantum"}};
    const auto lru = r.run(w, SchemeKind::Baseline);
    const auto ph = r.run(w, SchemeKind::PrismH);
    EXPECT_NEAR(ph.ipc[2], lru.ipc[2], lru.ipc[2] * 0.1);
    EXPECT_NEAR(ph.ipc[3], lru.ipc[3], lru.ipc[3] * 0.1);
}

TEST(System, TraceWorkloadsRun)
{
    // Drive one core from a trace file end to end.
    const std::string path =
        testing::TempDir() + "prism_sys_trace.txt";
    {
        std::ofstream out(path);
        for (int i = 0; i < 4096; ++i)
            out << i << "\n";
    }
    MachineConfig m = tinyQuad();
    Workload w{"t", {"trace:" + path, "403.gcc", "300.twolf",
                     "470.lbm"}};
    System sys(m, w, nullptr);
    const auto res = sys.run();
    std::remove(path.c_str());
    EXPECT_GT(res.cores[0].ipc(), 0.0);
    // The 4096-block trace loops inside the LLC: high hit rate.
    EXPECT_GT(res.cores[0].llcHits, res.cores[0].llcMisses);
}

TEST(Runner, MachineConfigForCoresMatchesPaper)
{
    EXPECT_EQ(MachineConfig::forCores(4).llcBytes, 4ull << 20);
    EXPECT_EQ(MachineConfig::forCores(4).llcWays, 16u);
    EXPECT_EQ(MachineConfig::forCores(8).llcBytes, 4ull << 20);
    EXPECT_EQ(MachineConfig::forCores(16).llcBytes, 8ull << 20);
    EXPECT_EQ(MachineConfig::forCores(16).llcWays, 32u);
    EXPECT_EQ(MachineConfig::forCores(32).llcBytes, 16ull << 20);
    EXPECT_EQ(MachineConfig::forCores(32).llcWays, 64u);
    EXPECT_EQ(MachineConfig::forCores(4).controllers(), 1u);
    EXPECT_EQ(MachineConfig::forCores(32).controllers(), 8u);
}
