/**
 * @file
 * Unit tests for the job supervisor (src/exec/supervisor): the
 * failure taxonomy, retry/backoff/quarantine semantics, deadline and
 * stop-flag handling, chaos schedules and the deterministic backoff
 * jitter. Everything runs against fake attempt bodies — no simulator
 * involved — so the suite stays sub-second.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <new>
#include <stdexcept>
#include <thread>

#include "exec/supervisor.hh"

using namespace prism;

namespace
{

SupervisorConfig
fastConfig(unsigned max_attempts = 3)
{
    SupervisorConfig c;
    c.enabled = true;
    c.maxAttempts = max_attempts;
    // Keep retries fast: the backoff schedule still runs, just in
    // microscopic steps.
    c.backoffBaseMs = 0.01;
    c.backoffCapMs = 0.05;
    return c;
}

std::vector<FaultClause>
chaos(const std::string &spec)
{
    std::vector<FaultClause> clauses;
    const Status st = parseChaosSpec(spec, clauses);
    EXPECT_TRUE(st.ok()) << st.message();
    return clauses;
}

} // namespace

// --- names ---

TEST(JobErrorKindNames, RoundTrip)
{
    for (const JobErrorKind k :
         {JobErrorKind::Transient, JobErrorKind::Fatal,
          JobErrorKind::Timeout, JobErrorKind::InvariantViolation}) {
        JobErrorKind parsed;
        ASSERT_TRUE(jobErrorKindFromName(jobErrorKindName(k), parsed));
        EXPECT_EQ(parsed, k);
    }
    JobErrorKind parsed;
    EXPECT_FALSE(jobErrorKindFromName("bogus", parsed));
}

TEST(JobStateNames, AllDistinct)
{
    EXPECT_STREQ(jobStateName(JobState::Done), "done");
    EXPECT_STREQ(jobStateName(JobState::Recovered), "recovered");
    EXPECT_STREQ(jobStateName(JobState::Quarantined), "quarantined");
    EXPECT_STREQ(jobStateName(JobState::Skipped), "skipped");
}

// --- taxonomy classification ---

TEST(Supervisor, CleanFirstTryIsDone)
{
    JobSupervisor sup(fastConfig());
    JobReport report;
    const int r = sup.supervise<int>(
        1, "job", [](const CancelToken &) { return 42; }, report);
    EXPECT_EQ(r, 42);
    EXPECT_EQ(report.state, JobState::Done);
    EXPECT_EQ(report.attempts, 1u);
    EXPECT_TRUE(report.failures.empty());
    EXPECT_TRUE(report.succeeded());
}

TEST(Supervisor, TransientFailureIsRetriedToRecovery)
{
    JobSupervisor sup(fastConfig());
    JobReport report;
    int calls = 0;
    const int r = sup.supervise<int>(
        1, "job",
        [&](const CancelToken &) {
            if (++calls == 1)
                throw JobError(JobErrorKind::Transient, "flaky");
            return 7;
        },
        report);
    EXPECT_EQ(r, 7);
    EXPECT_EQ(calls, 2);
    EXPECT_EQ(report.state, JobState::Recovered);
    EXPECT_EQ(report.attempts, 2u);
    ASSERT_EQ(report.failures.size(), 1u);
    EXPECT_EQ(report.failures[0].kind, JobErrorKind::Transient);
    EXPECT_EQ(report.failures[0].message, "flaky");
    EXPECT_TRUE(report.succeeded());
}

TEST(Supervisor, BadAllocClassifiesTransient)
{
    JobSupervisor sup(fastConfig());
    JobReport report;
    int calls = 0;
    const int r = sup.supervise<int>(
        1, "job",
        [&](const CancelToken &) -> int {
            if (++calls == 1)
                throw std::bad_alloc();
            return 1;
        },
        report);
    EXPECT_EQ(r, 1);
    EXPECT_EQ(report.state, JobState::Recovered);
    ASSERT_EQ(report.failures.size(), 1u);
    EXPECT_EQ(report.failures[0].kind, JobErrorKind::Transient);
}

TEST(Supervisor, UnknownExceptionClassifiesFatalNoRetry)
{
    JobSupervisor sup(fastConfig(5));
    JobReport report;
    int calls = 0;
    const int r = sup.supervise<int>(
        1, "job",
        [&](const CancelToken &) -> int {
            ++calls;
            throw std::runtime_error("logic error");
        },
        report);
    EXPECT_EQ(r, 0); // default-constructed result
    EXPECT_EQ(calls, 1) << "fatal failures must not be retried";
    EXPECT_EQ(report.state, JobState::Quarantined);
    EXPECT_EQ(report.attempts, 1u);
    ASSERT_EQ(report.failures.size(), 1u);
    EXPECT_EQ(report.failures[0].kind, JobErrorKind::Fatal);
    EXPECT_FALSE(report.succeeded());
}

TEST(Supervisor, InvariantViolationQuarantinesImmediately)
{
    JobSupervisor sup(fastConfig(5));
    JobReport report;
    int calls = 0;
    (void)sup.supervise<int>(
        1, "job",
        [&](const CancelToken &) -> int {
            ++calls;
            throw JobError(JobErrorKind::InvariantViolation,
                           "corrupt state");
        },
        report);
    EXPECT_EQ(calls, 1);
    EXPECT_EQ(report.state, JobState::Quarantined);
    EXPECT_EQ(report.failures[0].kind,
              JobErrorKind::InvariantViolation);
}

TEST(Supervisor, QuarantineAfterExhaustedBudget)
{
    JobSupervisor sup(fastConfig(3));
    JobReport report;
    int calls = 0;
    (void)sup.supervise<int>(
        1, "job",
        [&](const CancelToken &) -> int {
            ++calls;
            throw JobError(JobErrorKind::Transient, "always fails");
        },
        report);
    EXPECT_EQ(calls, 3);
    EXPECT_EQ(report.state, JobState::Quarantined);
    EXPECT_EQ(report.attempts, 3u);
    EXPECT_EQ(report.failures.size(), 3u);
}

TEST(Supervisor, DeadlineCancellationClassifiesTimeout)
{
    SupervisorConfig cfg = fastConfig(2);
    cfg.deadlineSeconds = 0.02;
    JobSupervisor sup(cfg);
    JobReport report;
    int calls = 0;
    (void)sup.supervise<int>(
        1, "job",
        [&](const CancelToken &token) -> int {
            ++calls;
            // A cooperative simulation loop: poll until cancelled.
            while (true) {
                token.poll();
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(1));
            }
        },
        report);
    EXPECT_EQ(calls, 2) << "timeouts are retryable";
    EXPECT_EQ(report.state, JobState::Quarantined);
    ASSERT_EQ(report.failures.size(), 2u);
    EXPECT_EQ(report.failures[0].kind, JobErrorKind::Timeout);
    EXPECT_EQ(report.failures[1].kind, JobErrorKind::Timeout);
}

TEST(Supervisor, StopFlagSkipsBeforeFirstAttempt)
{
    JobSupervisor sup(fastConfig());
    std::atomic<bool> stop{true};
    JobReport report;
    int calls = 0;
    (void)sup.supervise<int>(
        1, "job",
        [&](const CancelToken &) {
            ++calls;
            return 1;
        },
        report, &stop);
    EXPECT_EQ(calls, 0);
    EXPECT_EQ(report.state, JobState::Skipped);
    EXPECT_EQ(report.attempts, 0u);
    EXPECT_FALSE(report.succeeded());
}

TEST(Supervisor, StopDuringAttemptSkipsNotTimeout)
{
    // An external stop unwinds through the same CancelledError path
    // as a deadline, but must classify as Skipped — never as a job
    // failure.
    SupervisorConfig cfg = fastConfig(3);
    cfg.deadlineSeconds = 30.0; // armed but far away
    JobSupervisor sup(cfg);
    std::atomic<bool> stop{false};
    JobReport report;
    (void)sup.supervise<int>(
        1, "job",
        [&](const CancelToken &token) -> int {
            stop.store(true);
            token.poll();
            return 1;
        },
        report, &stop);
    EXPECT_EQ(report.state, JobState::Skipped);
    EXPECT_TRUE(report.failures.empty());
}

// --- chaos schedules ---

TEST(ChaosSpec, ParsesExecKindsAndAttemptBounds)
{
    const auto clauses = chaos("job_crash@3*1,alloc_fail@5");
    ASSERT_EQ(clauses.size(), 2u);
    EXPECT_EQ(clauses[0].kind, FaultKind::JobCrash);
    EXPECT_EQ(clauses[0].period, 3u);
    EXPECT_EQ(clauses[0].attempts, 1u);
    EXPECT_EQ(clauses[1].kind, FaultKind::AllocFail);
    EXPECT_EQ(clauses[1].attempts, 0u); // every attempt
}

TEST(ChaosSpec, RejectsSimulationKinds)
{
    std::vector<FaultClause> out;
    const Status st = parseChaosSpec("nan@3", out);
    EXPECT_FALSE(st.ok());
    EXPECT_NE(st.message().find("simulation-level"),
              std::string::npos);
}

TEST(ChaosSpec, AttemptBoundGovernsRefiring)
{
    FaultClause first_only{FaultKind::JobCrash, 3, 0, 1};
    EXPECT_TRUE(first_only.firesAtAttempt(1));
    EXPECT_FALSE(first_only.firesAtAttempt(2));
    FaultClause always{FaultKind::JobCrash, 3, 0, 0};
    EXPECT_TRUE(always.firesAtAttempt(1));
    EXPECT_TRUE(always.firesAtAttempt(100));
}

TEST(Supervisor, ChaosFiresSelectsJobsByIndex)
{
    SupervisorConfig cfg = fastConfig();
    cfg.chaos = chaos("job_crash@3*1");
    JobSupervisor sup(cfg);
    EXPECT_FALSE(sup.chaosFires(FaultKind::JobCrash, 1, 1));
    EXPECT_FALSE(sup.chaosFires(FaultKind::JobCrash, 2, 1));
    EXPECT_TRUE(sup.chaosFires(FaultKind::JobCrash, 3, 1));
    EXPECT_FALSE(sup.chaosFires(FaultKind::JobCrash, 3, 2));
    EXPECT_TRUE(sup.chaosFires(FaultKind::JobCrash, 6, 1));
    EXPECT_FALSE(sup.chaosFires(FaultKind::AllocFail, 3, 1));
}

TEST(Supervisor, InjectedCrashOnFirstAttemptIsSalvaged)
{
    SupervisorConfig cfg = fastConfig();
    cfg.chaos = chaos("job_crash@2*1");
    JobSupervisor sup(cfg);

    JobReport report;
    const int hit = sup.supervise<int>(
        2, "hit", [](const CancelToken &) { return 5; }, report);
    EXPECT_EQ(hit, 5);
    EXPECT_EQ(report.state, JobState::Recovered);
    EXPECT_EQ(report.attempts, 2u);

    const int missed = sup.supervise<int>(
        3, "missed", [](const CancelToken &) { return 6; }, report);
    EXPECT_EQ(missed, 6);
    EXPECT_EQ(report.state, JobState::Done);
}

TEST(Supervisor, UnboundedCrashQuarantines)
{
    SupervisorConfig cfg = fastConfig(3);
    cfg.chaos = chaos("job_crash@1");
    JobSupervisor sup(cfg);
    JobReport report;
    (void)sup.supervise<int>(
        1, "doomed", [](const CancelToken &) { return 1; }, report);
    EXPECT_EQ(report.state, JobState::Quarantined);
    EXPECT_EQ(report.attempts, 3u);
}

TEST(Supervisor, InjectedAllocFailClassifiesTransient)
{
    SupervisorConfig cfg = fastConfig();
    cfg.chaos = chaos("alloc_fail@1*1");
    JobSupervisor sup(cfg);
    JobReport report;
    const int r = sup.supervise<int>(
        1, "job", [](const CancelToken &) { return 9; }, report);
    EXPECT_EQ(r, 9);
    EXPECT_EQ(report.state, JobState::Recovered);
    ASSERT_GE(report.failures.size(), 1u);
    EXPECT_EQ(report.failures[0].kind, JobErrorKind::Transient);
}

TEST(Supervisor, InjectedStallHitsTheDeadline)
{
    SupervisorConfig cfg = fastConfig(1);
    cfg.deadlineSeconds = 0.02;
    cfg.chaos = chaos("job_stall@1");
    JobSupervisor sup(cfg);
    JobReport report;
    (void)sup.supervise<int>(
        1, "stalled", [](const CancelToken &) { return 1; }, report);
    EXPECT_EQ(report.state, JobState::Quarantined);
    ASSERT_EQ(report.failures.size(), 1u);
    EXPECT_EQ(report.failures[0].kind, JobErrorKind::Timeout);
}

TEST(Supervisor, InjectedStallWithoutDeadlineResolves)
{
    SupervisorConfig cfg = fastConfig();
    cfg.stallMs = 5.0; // keep the hiccup tiny
    cfg.chaos = chaos("job_stall@1*1");
    JobSupervisor sup(cfg);
    JobReport report;
    const int r = sup.supervise<int>(
        1, "hiccup", [](const CancelToken &) { return 3; }, report);
    EXPECT_EQ(r, 3);
    EXPECT_EQ(report.state, JobState::Done)
        << "an unbounded stall is a delay, not a failure";
}

// --- deterministic backoff ---

TEST(Supervisor, BackoffFollowsExponentialEnvelope)
{
    SupervisorConfig cfg;
    cfg.enabled = true;
    cfg.backoffBaseMs = 8.0;
    cfg.backoffCapMs = 100.0;
    JobSupervisor sup(cfg);
    for (unsigned n = 1; n <= 8; ++n) {
        double base = 8.0;
        for (unsigned i = 1; i < n; ++i)
            base *= 2.0;
        if (base > 100.0)
            base = 100.0;
        const double ms = sup.backoffMs("w/s", n);
        EXPECT_GE(ms, base * 0.5) << "attempt " << n;
        EXPECT_LT(ms, base * 1.5) << "attempt " << n;
    }
}

TEST(Supervisor, BackoffIsDeterministicPerSeedAndJob)
{
    SupervisorConfig cfg;
    cfg.enabled = true;
    cfg.chaosSeed = 99;
    JobSupervisor a(cfg), b(cfg);
    EXPECT_EQ(a.backoffMs("job-a", 1), b.backoffMs("job-a", 1));
    EXPECT_EQ(a.backoffMs("job-a", 3), b.backoffMs("job-a", 3));
    // Decorrelated across jobs and attempts.
    EXPECT_NE(a.backoffMs("job-a", 1), a.backoffMs("job-b", 1));

    SupervisorConfig other = cfg;
    other.chaosSeed = 100;
    JobSupervisor c(other);
    EXPECT_NE(a.backoffMs("job-a", 1), c.backoffMs("job-a", 1));
}

// --- metrics plumbing ---

TEST(Supervisor, CountersOnlyAppearWhenEventsFire)
{
    telemetry::MetricsRegistry metrics;
    JobSupervisor clean(fastConfig(), &metrics);
    JobReport report;
    (void)clean.supervise<int>(
        1, "ok", [](const CancelToken &) { return 1; }, report);
    // A clean run must not register any exec.* counter: the trace
    // metrics dump stays byte-identical to an unsupervised run.
    EXPECT_TRUE(metrics.counterValues().empty());

    (void)clean.supervise<int>(
        1, "retries",
        [&, first = true](const CancelToken &) mutable {
            if (first) {
                first = false;
                throw JobError(JobErrorKind::Transient, "once");
            }
            return 2;
        },
        report);
    EXPECT_EQ(report.state, JobState::Recovered);
    EXPECT_EQ(metrics.counter("exec.retries").value(), 1u);
    EXPECT_EQ(metrics.counter("exec.recovered").value(), 1u);
}
