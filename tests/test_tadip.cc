/**
 * @file
 * Tests for TA-DIP's per-core insertion dueling.
 */

#include <gtest/gtest.h>

#include "cache/shared_cache.hh"
#include "policies/tadip.hh"

using namespace prism;

namespace
{

CacheConfig
cfg()
{
    CacheConfig c;
    c.sizeBytes = 256 * 1024; // 1024 sets of 4 ways
    c.ways = 4;
    c.numCores = 2;
    c.intervalMisses = 1u << 20;
    return c;
}

} // namespace

TEST(Tadip, StartsNeutral)
{
    TadipScheme s(4, 1);
    for (CoreId c = 0; c < 4; ++c) {
        EXPECT_EQ(s.psel(c), 511u);
        EXPECT_FALSE(s.usesBip(c));
    }
}

TEST(Tadip, VictimDelegatesToBasePolicy)
{
    SharedCache cache(cfg());
    TadipScheme scheme(2, 1);
    cache.setScheme(&scheme);
    // Fill set 0; victim should be the LRU block.
    for (std::uint64_t t = 0; t < 4; ++t)
        cache.access(0, t * 1024);
    cache.access(1, 9 * 1024);
    EXPECT_FALSE(cache.access(0, 0).hit); // oldest fill evicted
}

TEST(Tadip, LruLeaderMissesRaisePsel)
{
    // Fills into core 0's LRU-leader sets vote against LRU: PSEL
    // rises monotonically towards the BIP side. Leader sets use the
    // documented hash so we can target them directly.
    SharedCache cache(cfg());
    TadipScheme scheme(2, 1);
    cache.setScheme(&scheme);

    std::vector<std::uint32_t> lru_leaders;
    for (std::uint32_t s = 0; s < cache.numSets(); ++s)
        if ((s * 2654435761u) % 64 == 0)
            lru_leaders.push_back(s);
    ASSERT_FALSE(lru_leaders.empty());

    const unsigned before = scheme.psel(0);
    std::uint64_t tag = 1;
    for (int round = 0; round < 50; ++round)
        for (auto s : lru_leaders)
            cache.access(0, (tag++) * cache.numSets() + s);
    EXPECT_GT(scheme.psel(0), before);
}

TEST(Tadip, FollowerInsertionRespectsPsel)
{
    SharedCache cache(cfg());
    TadipScheme scheme(2, 1);
    cache.setScheme(&scheme);

    // Find a follower set for core 0 by probing insertion behaviour
    // is impractical directly; instead verify the aggregate: with
    // PSEL biased to BIP, most fills land at the LRU position.
    // Drive PSEL to the BIP side by construction: misses in LRU
    // leader sets increment it.
    for (std::uint64_t t = 0; t < 400000 && !scheme.usesBip(0); ++t)
        cache.access(0, t * 7919);
    if (scheme.usesBip(0)) {
        // Insert into a full set and check the block lands at LRU.
        int lru_inserts = 0, total = 0;
        for (std::uint32_t s = 0; s < 64; ++s) {
            // Fill the set with core 1 first.
            for (std::uint64_t t = 0; t < 4; ++t)
                cache.access(1, (t + 600000) * 1024 + s);
            cache.access(0, (900000 + s) * 1024 + s);
            const SetView set = cache.setView(s);
            const int lru_way = recency::lruWay(set.state);
            if (set.blocks[lru_way].owner == 0)
                ++lru_inserts;
            ++total;
        }
        EXPECT_GT(lru_inserts, total / 2);
    }
}

TEST(Tadip, PselSaturates)
{
    TadipScheme s(1, 1);
    // PSEL must stay within [0, 1023] no matter what.
    SharedCache cache(cfg());
    cache.setScheme(&s);
    for (std::uint64_t t = 0; t < 500000; ++t)
        cache.access(0, t);
    EXPECT_LE(s.psel(0), 1023u);
}
