/**
 * @file
 * SoA cache metadata vs the AoS reference model.
 *
 * SharedCache runs on per-field arrays (BlockArrays) with an 8-bit
 * tag-signature SWAR scan, batched occupancy deltas and a
 * devirtualised LRU fast path. This suite replays random access
 * streams through SharedCache and through an independent reference
 * cache built over plain per-block `CacheBlock` structs (the AoS
 * layout the header documents as the reference), with textbook
 * policy logic re-implemented from the policy specs:
 *
 *  - LRU: explicit recency list, remove-then-insert on every touch;
 *  - Random: random victim among valid ways, MRU insertion;
 *  - RRIP: 2-bit DRRIP with set dueling and aging on victim scans.
 *
 * Every access must agree on hit/miss, eviction, evicted owner and
 * writeback; periodic audits require the full block state (tags,
 * owners, dirty bits, policy state, recency order) and the per-core
 * occupancy counters to be identical. A second test drives a full
 * PriSM configuration and runs the InvariantAuditor's ownership and
 * distribution checks at every interval boundary.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <vector>

#include "cache/shared_cache.hh"
#include "common/rng.hh"
#include "fault/invariant_auditor.hh"
#include "prism/alloc_hitmax.hh"
#include "prism/prism_scheme.hh"

using namespace prism;

namespace
{

/**
 * The reference model: one CacheBlock struct per frame, one
 * std::vector recency list per set, policy logic written straight
 * from the policy descriptions (no shared code with the SoA hot
 * path beyond the Rng, which both sides must consume identically).
 */
class RefCache
{
  public:
    explicit RefCache(const CacheConfig &cfg)
        : cfg_(cfg), num_sets_(cfg.numSets()),
          blocks_(cfg.numBlocks()), order_(num_sets_),
          occupancy_(cfg.numCores, 0),
          policy_rng_(cfg.seed ^ 0x5EED5EEDULL)
    {
    }

    AccessResult
    access(CoreId core, Addr addr, bool is_store)
    {
        const std::uint32_t set = static_cast<std::uint32_t>(
            addr & (num_sets_ - 1));
        const std::size_t base =
            static_cast<std::size_t>(set) * cfg_.ways;

        for (std::uint32_t w = 0; w < cfg_.ways; ++w) {
            CacheBlock &b = blocks_[base + w];
            if (b.valid && b.tag == addr) {
                b.dirty |= is_store;
                onHit(set, static_cast<int>(w));
                return AccessResult{true, false, invalidCore};
            }
        }

        AccessResult result{false, false, invalidCore};
        int way = invalidWay;
        for (std::uint32_t w = 0; w < cfg_.ways; ++w)
            if (!blocks_[base + w].valid) {
                way = static_cast<int>(w);
                break;
            }
        if (way == invalidWay) {
            way = victim(set);
            CacheBlock &v = blocks_[base + static_cast<std::size_t>(way)];
            result.evicted = true;
            result.evictedOwner = v.owner;
            result.writeback = v.dirty;
            --occupancy_[v.owner];
            v.valid = false;
            listRemove(set, way);
        }

        CacheBlock &b = blocks_[base + static_cast<std::size_t>(way)];
        b.tag = addr;
        b.owner = core;
        b.valid = true;
        b.dirty = is_store;
        b.region = regionManaged;
        ++occupancy_[core];
        onFill(set, way);
        return result;
    }

    const CacheBlock &
    block(std::size_t frame) const
    {
        return blocks_[frame];
    }

    const std::vector<std::uint16_t> &
    order(std::uint32_t set) const
    {
        return order_[set];
    }

    std::uint64_t occupancy(CoreId c) const { return occupancy_[c]; }

  private:
    void
    listRemove(std::uint32_t set, int way)
    {
        auto &o = order_[set];
        for (std::size_t i = 0; i < o.size(); ++i)
            if (o[i] == way) {
                o.erase(o.begin() + static_cast<std::ptrdiff_t>(i));
                return;
            }
    }

    void
    listFront(std::uint32_t set, int way)
    {
        listRemove(set, way);
        order_[set].insert(order_[set].begin(),
                           static_cast<std::uint16_t>(way));
    }

    void
    onHit(std::uint32_t set, int way)
    {
        if (cfg_.repl == ReplKind::RRIP)
            blocks_[frame(set, way)].rrpv = 0;
        else
            listFront(set, way); // LRU and Random both promote
    }

    void
    onFill(std::uint32_t set, int way)
    {
        if (cfg_.repl != ReplKind::RRIP) {
            listFront(set, way);
            return;
        }
        // DRRIP set dueling: leaders at constituency offsets 0/1.
        const std::uint32_t mod = set & 31u;
        const bool srrip_leader = (mod == 0);
        const bool brrip_leader = (mod == 1);
        if (srrip_leader && psel_ < 1023)
            ++psel_;
        if (brrip_leader && psel_ > 0)
            --psel_;
        bool use_brrip;
        if (srrip_leader)
            use_brrip = false;
        else if (brrip_leader)
            use_brrip = true;
        else
            use_brrip = psel_ > 511;
        CacheBlock &b = blocks_[frame(set, way)];
        if (use_brrip && !policy_rng_.chance(1.0 / 32.0))
            b.rrpv = 3;
        else
            b.rrpv = 2;
    }

    int
    victim(std::uint32_t set)
    {
        switch (cfg_.repl) {
          case ReplKind::LRU:
            return order_[set].back();
          case ReplKind::Random: {
            std::vector<int> valid;
            for (std::uint32_t w = 0; w < cfg_.ways; ++w)
                if (blocks_[frame(set, static_cast<int>(w))].valid)
                    valid.push_back(static_cast<int>(w));
            return valid[policy_rng_.below(valid.size())];
          }
          case ReplKind::RRIP: {
            std::uint8_t max_rrpv = 0;
            for (std::uint32_t w = 0; w < cfg_.ways; ++w) {
                const CacheBlock &b =
                    blocks_[frame(set, static_cast<int>(w))];
                if (b.valid && b.rrpv > max_rrpv)
                    max_rrpv = b.rrpv;
            }
            for (std::uint32_t w = 0; w < cfg_.ways; ++w) {
                CacheBlock &b =
                    blocks_[frame(set, static_cast<int>(w))];
                if (b.valid)
                    b.rrpv = static_cast<std::uint8_t>(
                        b.rrpv + (3 - max_rrpv));
            }
            for (std::uint32_t w = 0; w < cfg_.ways; ++w) {
                const CacheBlock &b =
                    blocks_[frame(set, static_cast<int>(w))];
                if (b.valid && b.rrpv == 3)
                    return static_cast<int>(w);
            }
            return invalidWay;
          }
          default:
            return invalidWay;
        }
    }

    std::size_t
    frame(std::uint32_t set, int way) const
    {
        return static_cast<std::size_t>(set) * cfg_.ways +
               static_cast<std::size_t>(way);
    }

    CacheConfig cfg_;
    std::uint32_t num_sets_;
    std::vector<CacheBlock> blocks_;
    std::vector<std::vector<std::uint16_t>> order_;
    std::vector<std::uint64_t> occupancy_;
    Rng policy_rng_;
    unsigned psel_ = 511; // DRRIP PSEL, matches RripPolicy's start
};

/** Compare every frame's metadata between SoA cache and reference. */
void
expectStateEqual(SharedCache &cache, const RefCache &ref,
                 std::uint64_t at_access)
{
    const BlockArrays &soa = cache.blockArrays();
    const CacheConfig &cfg = cache.config();
    for (std::size_t i = 0; i < soa.size(); ++i) {
        const CacheBlock &b = ref.block(i);
        ASSERT_EQ(soa.valid[i] != 0, b.valid)
            << "frame " << i << " at access " << at_access;
        if (!b.valid)
            continue;
        ASSERT_EQ(soa.tag[i], b.tag) << "frame " << i;
        ASSERT_EQ(soa.owner[i], b.owner) << "frame " << i;
        ASSERT_EQ(soa.dirty[i] != 0, b.dirty) << "frame " << i;
        if (cfg.repl == ReplKind::RRIP)
            ASSERT_EQ(soa.rrpv[i], b.rrpv) << "frame " << i;
    }
    for (std::uint32_t s = 0; s < cache.numSets(); ++s)
        if (cfg.repl != ReplKind::RRIP)
            ASSERT_EQ(cache.setView(s).state.order, ref.order(s))
                << "set " << s << " recency order at access "
                << at_access;
    for (CoreId c = 0; c < cfg.numCores; ++c)
        ASSERT_EQ(cache.occupancy(c), ref.occupancy(c))
            << "core " << c << " occupancy at access " << at_access;
}

/**
 * Fuzz one configuration: random multi-core access stream with a
 * footprint ~2x the cache, per-access result equality, periodic
 * full-state audits.
 */
void
fuzzAgainstReference(ReplKind repl, std::uint64_t stream_seed)
{
    CacheConfig cfg;
    cfg.sizeBytes = 16ull << 10; // 256 blocks, 32 sets x 8 ways
    cfg.ways = 8;
    cfg.blockBytes = 64;
    cfg.numCores = 4;
    cfg.repl = repl;
    cfg.seed = 1;

    SharedCache cache(cfg);
    RefCache ref(cfg);

    Rng stream(stream_seed);
    const std::uint64_t footprint = 2 * cfg.numBlocks();
    constexpr std::uint64_t kAccesses = 60'000;
    constexpr std::uint64_t kAuditEvery = 4096;

    for (std::uint64_t i = 0; i < kAccesses; ++i) {
        const CoreId core =
            static_cast<CoreId>(stream.below(cfg.numCores));
        // Core-private halves plus some sharing keeps every core
        // resident and exercises cross-core evictions.
        const Addr addr = (static_cast<Addr>(core) << 32) +
                          stream.below(footprint / cfg.numCores);
        const bool store = (addr & 7) == 0;

        const AccessResult got = cache.access(core, addr, store);
        const AccessResult want = ref.access(core, addr, store);
        ASSERT_EQ(got.hit, want.hit) << "access " << i;
        ASSERT_EQ(got.evicted, want.evicted) << "access " << i;
        ASSERT_EQ(got.evictedOwner, want.evictedOwner)
            << "access " << i;
        ASSERT_EQ(got.writeback, want.writeback) << "access " << i;

        if ((i + 1) % kAuditEvery == 0)
            expectStateEqual(cache, ref, i + 1);
    }
    expectStateEqual(cache, ref, kAccesses);
}

} // namespace

TEST(SoaEquivalence, LruMatchesReferenceModel)
{
    for (const std::uint64_t seed : {11u, 22u, 33u})
        fuzzAgainstReference(ReplKind::LRU, seed);
}

TEST(SoaEquivalence, RandomMatchesReferenceModel)
{
    for (const std::uint64_t seed : {44u, 55u})
        fuzzAgainstReference(ReplKind::Random, seed);
}

TEST(SoaEquivalence, RripMatchesReferenceModel)
{
    for (const std::uint64_t seed : {66u, 77u})
        fuzzAgainstReference(ReplKind::RRIP, seed);
}

TEST(SoaEquivalence, PrismIntervalInvariantsHold)
{
    // Full PriSM stack over the SoA cache: at every interval
    // boundary the batched occupancy bookkeeping must agree with the
    // blocks actually resident, and the recomputed eviction
    // distribution must still be a distribution.
    CacheConfig cfg;
    cfg.sizeBytes = 64ull << 10;
    cfg.ways = 16;
    cfg.blockBytes = 64;
    cfg.numCores = 8;
    cfg.intervalMisses = 512;
    cfg.seed = 3;

    SharedCache cache(cfg);
    PrismScheme scheme(cfg.numCores,
                       std::make_unique<HitMaxPolicy>(), 7);
    cache.setScheme(&scheme);

    InvariantAuditor auditor;
    std::uint64_t audited = 0;
    cache.setIntervalObserver(
        [&](const IntervalSnapshot &, std::uint64_t) {
            ++audited;
            const Status own = auditor.checkOwnership(cache);
            EXPECT_TRUE(own.ok()) << own.message();
            const Status dist =
                auditor.checkDistribution(scheme.evictionProbs());
            EXPECT_TRUE(dist.ok()) << dist.message();
        });

    Rng stream(123);
    const std::uint64_t footprint = 2 * cfg.numBlocks();
    for (std::uint64_t i = 0; i < 200'000; ++i) {
        const CoreId core =
            static_cast<CoreId>(stream.below(cfg.numCores));
        const Addr addr = (static_cast<Addr>(core) << 32) +
                          stream.below(footprint / cfg.numCores);
        cache.access(core, addr, (addr & 7) == 0);
    }

    EXPECT_GE(cache.intervals(), 10u);
    EXPECT_EQ(audited, cache.intervals());
    EXPECT_EQ(auditor.violations(), 0u);
    EXPECT_GT(scheme.replacements(), 0u);
}
