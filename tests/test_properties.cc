/**
 * @file
 * Cross-cutting property tests: invariants that must hold for every
 * management scheme, every replacement policy and random inputs.
 */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "plane/eq1.hh"
#include "sim/runner.hh"
#include "workload/stack_dist_generator.hh"

using namespace prism;

namespace
{

MachineConfig
tinyQuad(std::uint64_t seed)
{
    MachineConfig m = MachineConfig::forCores(4);
    m.instrBudget = 200'000;
    m.warmupInstr = 100'000;
    m.seed = seed;
    return m;
}

const std::vector<SchemeKind> allSchemes{
    SchemeKind::Baseline, SchemeKind::UCP,      SchemeKind::PIPP,
    SchemeKind::TADIP,    SchemeKind::FairWP,   SchemeKind::Vantage,
    SchemeKind::PrismH,   SchemeKind::PrismF,   SchemeKind::PrismQ,
    SchemeKind::PrismLA,  SchemeKind::WPHitMax, SchemeKind::StaticWP,
};

} // namespace

/** Every scheme on every replacement policy it supports stays sane. */
class SchemeProperty
    : public ::testing::TestWithParam<std::tuple<SchemeKind, int>>
{
};

TEST_P(SchemeProperty, InvariantsHold)
{
    const auto [kind, seed] = GetParam();
    MachineConfig m = tinyQuad(seed);
    if (kind == SchemeKind::Vantage)
        m.repl = ReplKind::TimestampLRU;
    Runner runner(m);
    Workload w{"p", {"179.art", "462.libquantum", "300.twolf",
                     "403.gcc"}};
    const RunResult res = runner.run(w, kind);

    double occ_sum = 0.0;
    for (std::size_t c = 0; c < 4; ++c) {
        EXPECT_GT(res.ipc[c], 0.0) << res.scheme;
        EXPECT_LE(res.ipc[c], 4.0) << res.scheme; // <= issue width
        EXPECT_GE(res.occupancyAtFinish[c], 0.0) << res.scheme;
        EXPECT_LE(res.occupancyAtFinish[c], 1.0) << res.scheme;
        occ_sum += res.occupancyAtFinish[c];
    }
    // Occupancies are sampled at each core's own finish time, so the
    // sum can exceed 1 slightly (the paper notes the same for its
    // Figure 4); it must still be in a physical ballpark.
    EXPECT_LE(occ_sum, 1.5) << res.scheme;

    EXPECT_GT(res.fairness(), 0.0) << res.scheme;
    EXPECT_LE(res.fairness(), 1.0 + 1e-9) << res.scheme;
    EXPECT_GE(res.antt(), 0.9) << res.scheme;
}

INSTANTIATE_TEST_SUITE_P(
    AllSchemes, SchemeProperty,
    ::testing::Combine(::testing::ValuesIn(allSchemes),
                       ::testing::Values(1, 2)));

/** PriSM on every replacement policy controls occupancy. */
class PrismOnRepl : public ::testing::TestWithParam<ReplKind>
{
};

TEST_P(PrismOnRepl, SchemeComposesWithPolicy)
{
    MachineConfig m = tinyQuad(7);
    m.repl = GetParam();
    Runner runner(m);
    Workload w{"p", {"179.art", "462.libquantum", "300.twolf",
                     "403.gcc"}};
    const RunResult res = runner.run(w, SchemeKind::PrismH);
    for (double ipc : res.ipc)
        EXPECT_GT(ipc, 0.0);
    EXPECT_GT(res.recomputes, 0u);
}

INSTANTIATE_TEST_SUITE_P(Repls, PrismOnRepl,
                         ::testing::Values(ReplKind::LRU,
                                           ReplKind::TimestampLRU,
                                           ReplKind::DIP,
                                           ReplKind::RRIP,
                                           ReplKind::Random));

/**
 * Equation-1 closed loop: iterating occupancy under the model's own
 * dynamics converges to the target from any start.
 */
class Eq1Convergence : public ::testing::TestWithParam<int>
{
};

TEST_P(Eq1Convergence, ReachesTargets)
{
    Rng rng(GetParam());
    const std::size_t n = 4;
    const std::uint64_t blocks = 65536, w = 32768;

    std::vector<double> c(n), t(n), m(n);
    double cs = 0, ts = 0, ms = 0;
    for (auto &v : c)
        cs += (v = 0.05 + rng.uniform());
    for (auto &v : t)
        ts += (v = 0.05 + rng.uniform());
    for (auto &v : m)
        ms += (v = 0.05 + rng.uniform());
    for (auto &v : c)
        v /= cs;
    for (auto &v : t)
        v /= ts;
    for (auto &v : m)
        v /= ms;

    // Iterate: each interval evicts E_i*W and inserts M_i*W blocks.
    for (int it = 0; it < 200; ++it) {
        const auto e = evictionDistribution(c, t, m, blocks, w);
        double sum = 0;
        for (std::size_t i = 0; i < n; ++i) {
            c[i] = predictedOccupancy(c[i], m[i], e[i], blocks, w);
            sum += c[i];
        }
        for (auto &v : c)
            v /= sum; // cache stays full
    }
    for (std::size_t i = 0; i < n; ++i)
        EXPECT_NEAR(c[i], t[i], 0.05) << "core " << i;
}

INSTANTIATE_TEST_SUITE_P(Seeds, Eq1Convergence,
                         ::testing::Range(1, 17));

/** Steeper theta always concentrates more probability mass up top. */
class ThetaMonotonicity : public ::testing::TestWithParam<double>
{
};

TEST_P(ThetaMonotonicity, SteeperHitsMoreAtSmallCapacity)
{
    const double theta = GetParam();
    const std::uint64_t ws = 4096;

    auto top_eighth_mass = [&](double th) {
        StackDistParams p{ws, th, 0.0};
        StackDistGenerator g(0, p, 5);
        // Count accesses landing in the top 1/8 of ranks. Ranks map
        // deterministically to addresses in IRM mode, so identify
        // them by generating the top-rank address set first.
        std::set<Addr> top;
        for (std::uint64_t r = 0; r < ws / 8; ++r)
            top.insert(makeBlockAddr(0, r));
        int hits = 0;
        const int nacc = 50000;
        for (int i = 0; i < nacc; ++i)
            hits += top.count(g.next());
        return static_cast<double>(hits) / nacc;
    };

    EXPECT_GT(top_eighth_mass(theta), top_eighth_mass(theta + 0.3));
}

INSTANTIATE_TEST_SUITE_P(Thetas, ThetaMonotonicity,
                         ::testing::Values(0.3, 0.4, 0.5, 0.6, 0.7));

/** Determinism: identical configuration => identical results. */
class DeterminismProperty : public ::testing::TestWithParam<SchemeKind>
{
};

TEST_P(DeterminismProperty, RunsAreReproducible)
{
    MachineConfig m = tinyQuad(11);
    if (GetParam() == SchemeKind::Vantage)
        m.repl = ReplKind::TimestampLRU;
    Workload w{"p", {"175.vpr", "470.lbm", "401.bzip2", "197.parser"}};
    Runner r1(m), r2(m);
    const auto a = r1.run(w, GetParam());
    const auto b = r2.run(w, GetParam());
    for (std::size_t c = 0; c < 4; ++c) {
        EXPECT_DOUBLE_EQ(a.ipc[c], b.ipc[c]);
        EXPECT_EQ(a.llcMisses[c], b.llcMisses[c]);
    }
}

INSTANTIATE_TEST_SUITE_P(AllSchemes, DeterminismProperty,
                         ::testing::ValuesIn(allSchemes));
