/**
 * @file
 * Tests for IntervalSnapshot arithmetic, PriSM's core-selection
 * sampling statistics, and Algorithm 1's gain smoothing.
 */

#include <gtest/gtest.h>

#include "cache/shared_cache.hh"
#include "sim/runner.hh"
#include "common/rng.hh"
#include "prism/alloc_hitmax.hh"
#include "prism/prism_scheme.hh"
#include "workload/generator.hh"

using namespace prism;

TEST(IntervalSnapshot, FractionHelpers)
{
    IntervalSnapshot snap;
    snap.totalBlocks = 1000;
    snap.intervalMisses = 400;
    snap.cores.resize(2);
    snap.cores[0].occupancyBlocks = 250;
    snap.cores[0].sharedMisses = 100;
    snap.cores[1].occupancyBlocks = 750;
    snap.cores[1].sharedMisses = 300;

    EXPECT_DOUBLE_EQ(snap.occupancyFraction(0), 0.25);
    EXPECT_DOUBLE_EQ(snap.occupancyFraction(1), 0.75);
    EXPECT_DOUBLE_EQ(snap.missFraction(0), 0.25);
    EXPECT_DOUBLE_EQ(snap.missFraction(1), 0.75);
}

TEST(IntervalSnapshot, MissFractionWithNoMisses)
{
    IntervalSnapshot snap;
    snap.totalBlocks = 1000;
    snap.intervalMisses = 0;
    snap.cores.resize(1);
    EXPECT_DOUBLE_EQ(snap.missFraction(0), 0.0);
}

TEST(CoreIntervalStats, StandAloneHitHelpers)
{
    CoreIntervalStats cs;
    cs.shadowHitsAtPosition = {10, 20, 30, 40};
    EXPECT_DOUBLE_EQ(cs.standAloneHits(), 100.0);
    EXPECT_DOUBLE_EQ(cs.standAloneHitsWithWays(2), 30.0);
    EXPECT_DOUBLE_EQ(cs.standAloneHitsWithWays(99), 100.0);
    EXPECT_DOUBLE_EQ(cs.standAloneHitsWithWays(0), 0.0);
}

namespace
{

struct FixedTargets : PrismAllocPolicy
{
    explicit FixedTargets(std::vector<double> t)
        : targets(std::move(t))
    {}

    std::string name() const override { return "Fixed"; }

    std::vector<double>
    computeTargets(const IntervalSnapshot &) override
    {
        return targets;
    }

    unsigned arithmeticOps(unsigned) const override { return 0; }

    std::vector<double> targets;
};

} // namespace

TEST(CoreSelection, RealisedEvictionsFollowDistribution)
{
    // Cores stream symmetric traffic; with a fixed skewed target the
    // realised eviction shares must track the computed E closely.
    CacheConfig cfg;
    cfg.sizeBytes = 256 * 1024;
    cfg.ways = 8;
    cfg.numCores = 2;
    cfg.intervalMisses = 4096;
    SharedCache cache(cfg);
    PrismScheme scheme(2,
                       std::make_unique<FixedTargets>(
                           std::vector<double>{0.5, 0.5}),
                       17);
    cache.setScheme(&scheme);

    Rng rng(23);
    std::uint64_t evicted[2] = {0, 0};
    for (int i = 0; i < 400000; ++i) {
        const CoreId c = static_cast<CoreId>(rng.below(2));
        const auto res =
            cache.access(c, makeBlockAddr(c, rng.below(16384)));
        if (res.evicted)
            ++evicted[res.evictedOwner];
    }
    // Equal targets + symmetric traffic -> equal eviction shares.
    const double total =
        static_cast<double>(evicted[0] + evicted[1]);
    EXPECT_NEAR(evicted[0] / total, 0.5, 0.05);
}

TEST(CoreSelection, SkewedTargetsSkewEvictions)
{
    CacheConfig cfg;
    cfg.sizeBytes = 256 * 1024;
    cfg.ways = 8;
    cfg.numCores = 2;
    cfg.intervalMisses = 4096;
    SharedCache cache(cfg);
    PrismScheme scheme(2,
                       std::make_unique<FixedTargets>(
                           std::vector<double>{0.8, 0.2}),
                       17);
    cache.setScheme(&scheme);

    Rng rng(29);
    std::uint64_t evicted[2] = {0, 0};
    for (int i = 0; i < 400000; ++i) {
        const CoreId c = static_cast<CoreId>(rng.below(2));
        const auto res =
            cache.access(c, makeBlockAddr(c, rng.below(16384)));
        if (res.evicted)
            ++evicted[res.evictedOwner];
    }
    // Core 1 (target 0.2) must absorb clearly more evictions.
    EXPECT_GT(evicted[1], evicted[0]);
}

TEST(HitMaxSmoothing, GainsAreAveragedAcrossIntervals)
{
    HitMaxPolicy policy;
    IntervalSnapshot snap;
    snap.totalBlocks = 4096;
    snap.ways = 16;
    snap.intervalMisses = 2048;
    snap.cores.resize(2);
    for (auto &c : snap.cores) {
        c.occupancyBlocks = 2048;
        c.sharedHits = 1000;
        // Both cores carry a persistent gain of 1000 hits.
        c.shadowHitsAtPosition.assign(16, 2000.0 / 16);
    }

    // Interval 1: symmetric -> equal targets.
    auto t = policy.computeTargets(snap);
    EXPECT_NEAR(t[0], 0.5, 1e-9);

    // Interval 2: core 0 suddenly shows a huge gain; the smoothed
    // response is attenuated relative to an unsmoothed policy.
    auto spike = snap;
    spike.cores[0].shadowHitsAtPosition.assign(16, 9000.0 / 16);
    t = policy.computeTargets(spike);
    const double smoothed_first = t[0];
    EXPECT_GT(smoothed_first, 0.5);

    // Feeding the same spike repeatedly converges further upward as
    // the EWMA approaches the new gain level.
    for (int i = 0; i < 8; ++i)
        t = policy.computeTargets(spike);
    EXPECT_GT(t[0], smoothed_first + 0.01);
}

TEST(RunnerOptions, ProbBitsPlumbedThrough)
{
    MachineConfig m = MachineConfig::forCores(4);
    m.instrBudget = 150'000;
    m.warmupInstr = 50'000;
    Runner runner(m);
    Workload w{"t", {"179.art", "470.lbm", "403.gcc", "300.twolf"}};

    SchemeOptions opt;
    opt.probBits = 6;
    const auto res = runner.run(w, SchemeKind::PrismH, opt);
    // Each mean probability must be representable-ish in 6 bits
    // (weak check that quantisation actually happened upstream: run
    // completes and yields a normalised distribution).
    double sum = 0;
    for (double e : res.evProbMean)
        sum += e;
    EXPECT_NEAR(sum, 1.0, 0.25);
}
