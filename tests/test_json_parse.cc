/**
 * @file
 * JSON parser unit tests: scalar kinds, containers, escapes, number
 * fidelity, error reporting, and the writer→parser round trip the
 * analysis subsystem depends on.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <sstream>
#include <string>

#include "common/json.hh"

using namespace prism;

namespace
{

JsonValue
parseOk(const std::string &text)
{
    JsonValue v;
    const Status st = parseJson(text, v);
    EXPECT_TRUE(st.ok()) << st.message();
    return v;
}

Status
parseErr(const std::string &text)
{
    JsonValue v;
    const Status st = parseJson(text, v);
    EXPECT_FALSE(st.ok()) << "parsed unexpectedly: " << text;
    return st;
}

} // namespace

TEST(JsonParse, Scalars)
{
    EXPECT_TRUE(parseOk("null").isNull());
    EXPECT_TRUE(parseOk("true").asBool());
    EXPECT_FALSE(parseOk("false").asBool());
    EXPECT_DOUBLE_EQ(parseOk("-2.5e3").asDouble(), -2500.0);
    EXPECT_EQ(parseOk("\"hi\"").asString(), "hi");
}

TEST(JsonParse, NumbersKeepRawTextForExactU64)
{
    // Doubles cannot hold every 64-bit seed; the raw text can.
    const std::uint64_t big = 0xDEADBEEFCAFEF00DULL;
    const JsonValue v = parseOk(std::to_string(big));
    EXPECT_EQ(v.asU64(), big);
    EXPECT_EQ(v.rawNumber(), std::to_string(big));
}

TEST(JsonParse, ObjectsAndArrays)
{
    const JsonValue v = parseOk(
        R"({"a": [1, 2, 3], "b": {"c": true}, "d": "x"})");
    ASSERT_TRUE(v.isObject());
    EXPECT_EQ(v.size(), 3u);
    EXPECT_EQ(v.at("a").size(), 3u);
    EXPECT_EQ(v.at("a").at(1).asU64(), 2u);
    EXPECT_TRUE(v.at("b").at("c").asBool());
    EXPECT_EQ(v.at("d").asString(), "x");
}

TEST(JsonParse, TotalAccessorsOnMissingPaths)
{
    const JsonValue v = parseOk(R"({"a": 1})");
    // Chained lookups through absent keys land on the static Null.
    EXPECT_TRUE(v.at("missing").at("deeper").at(7).isNull());
    EXPECT_EQ(v.at("missing").asU64(), 0u);
    EXPECT_EQ(v.find("missing"), nullptr);
    EXPECT_NE(v.find("a"), nullptr);
}

TEST(JsonParse, StringEscapes)
{
    const JsonValue v =
        parseOk("\"a\\\"b\\\\c\\/d\\ne\\tf\\u0041\\u00e9\"");
    EXPECT_EQ(v.asString(), "a\"b\\c/d\ne\tfA\xc3\xa9");
}

TEST(JsonParse, Errors)
{
    parseErr("");
    parseErr("{");
    parseErr("[1, 2");
    parseErr("{\"a\": }");
    parseErr("1 2");            // trailing garbage
    parseErr("\"unterminated");
    parseErr("{'a': 1}");       // single quotes are not JSON
    parseErr("[01]");           // leading zero
    parseErr("nul");

    // Errors carry the offending line.
    const Status st = parseErr("{\n  \"a\": 1,\n  oops\n}");
    EXPECT_NE(st.message().find("line 3"), std::string::npos)
        << st.message();
}

TEST(JsonParse, DepthLimitIsAnErrorNotACrash)
{
    std::string deep;
    for (int i = 0; i < 200; ++i)
        deep += "[";
    parseErr(deep);
}

TEST(JsonParse, RoundTripThroughJsonWriter)
{
    std::ostringstream os;
    {
        JsonWriter w(os);
        w.beginObject();
        w.kv("schema", "test-v1");
        w.kv("pi", 3.141592653589793);
        w.kv("seed", std::uint64_t{0x5EED0001ULL});
        w.kv("flag", true);
        w.key("nested");
        w.beginArray();
        w.value(1.5);
        w.value("two");
        w.endArray();
        w.endObject();
    }
    const JsonValue v = parseOk(os.str());
    EXPECT_EQ(v.at("schema").asString(), "test-v1");
    EXPECT_DOUBLE_EQ(v.at("pi").asDouble(), 3.141592653589793);
    EXPECT_EQ(v.at("seed").asU64(), 0x5EED0001ULL);
    EXPECT_TRUE(v.at("flag").asBool());
    EXPECT_EQ(v.at("nested").at(0).asDouble(), 1.5);
    EXPECT_EQ(v.at("nested").at(1).asString(), "two");

    // Non-finite doubles serialise as null and parse back as null.
    std::ostringstream os2;
    {
        JsonWriter w(os2);
        w.beginObject();
        w.kv("nan", std::nan(""));
        w.endObject();
    }
    EXPECT_TRUE(parseOk(os2.str()).at("nan").isNull());
}
