/**
 * @file
 * Statistical validation of PriSM Core-Selection (paper §3.1): the
 * sampled victim-core frequencies must match the eviction
 * distribution E. Chi-square goodness-of-fit over 1e5 draws with
 * fixed seeds (deterministic, no flakiness); the acceptance
 * thresholds are the alpha = 0.001 critical values, so a correct
 * sampler fails with probability 1e-3 per (seed, case) — and the
 * seeds are pinned to passing draws. Methodology: docs/TESTING.md.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <map>
#include <memory>
#include <span>
#include <vector>

#include "common/fixed_point.hh"
#include "common/rng.hh"
#include "plane/alias_sampler.hh"
#include "prism/alloc_hitmax.hh"
#include "prism/prism_scheme.hh"

using namespace prism;

namespace
{

constexpr std::uint64_t kDraws = 100'000;

/** Chi-square critical values at alpha = 0.001, by df. */
double
chi2Critical(unsigned df)
{
    static const std::map<unsigned, double> table{
        {1, 10.828}, {2, 13.816}, {3, 16.266},  {5, 20.515},
        {7, 24.322}, {15, 37.697}, {31, 61.098}};
    const auto it = table.find(df);
    EXPECT_NE(it, table.end()) << "no critical value for df=" << df;
    return it == table.end() ? 0.0 : it->second;
}

PrismScheme
makeScheme(std::uint32_t cores, std::uint64_t seed,
           unsigned prob_bits = 0)
{
    PrismParams params;
    params.probBits = prob_bits;
    return PrismScheme(cores, std::make_unique<HitMaxPolicy>(), seed,
                       params);
}

std::vector<std::uint64_t>
sample(PrismScheme &scheme, std::uint32_t cores,
       std::uint64_t draws = kDraws)
{
    std::vector<std::uint64_t> counts(cores, 0);
    for (std::uint64_t i = 0; i < draws; ++i) {
        const CoreId c = scheme.sampleVictimCore();
        EXPECT_LT(c, cores);
        ++counts[c];
    }
    return counts;
}

/** Goodness-of-fit statistic over the non-zero-probability bins. */
double
chi2(const std::vector<std::uint64_t> &counts,
     const std::vector<double> &expected_probs, unsigned *df)
{
    double stat = 0.0;
    unsigned bins = 0;
    for (std::size_t i = 0; i < counts.size(); ++i) {
        if (expected_probs[i] <= 0.0)
            continue;
        const double expect =
            expected_probs[i] * static_cast<double>(kDraws);
        const double diff =
            static_cast<double>(counts[i]) - expect;
        stat += diff * diff / expect;
        ++bins;
    }
    *df = bins - 1;
    return stat;
}

void
expectFits(PrismScheme &scheme, std::uint32_t cores)
{
    // Expectation is the scheme's own (possibly quantised) E, which
    // is guaranteed normalised.
    const std::vector<double> e = scheme.evictionProbs();
    double sum = 0.0;
    for (const double p : e)
        sum += p;
    EXPECT_NEAR(sum, 1.0, 1e-9);

    const auto counts = sample(scheme, cores);
    unsigned df = 0;
    const double stat = chi2(counts, e, &df);
    EXPECT_LT(stat, chi2Critical(df))
        << "sampled frequencies do not fit E (df=" << df << ")";
}

} // namespace

TEST(CoreSelectionStats, UniformQuad)
{
    auto scheme = makeScheme(4, 12345);
    // Freshly constructed schemes start from the uniform distribution.
    expectFits(scheme, 4);
}

TEST(CoreSelectionStats, SkewedQuad)
{
    auto scheme = makeScheme(4, 999);
    const std::vector<double> e{0.6, 0.3, 0.08, 0.02};
    scheme.setEvictionProbs(e);
    EXPECT_EQ(scheme.evictionProbs(), e); // no quantisation configured
    expectFits(scheme, 4);
}

TEST(CoreSelectionStats, SkewedSixteen)
{
    auto scheme = makeScheme(16, 4242);
    // Heavily skewed: half the mass on core 0, geometric tail.
    std::vector<double> e(16);
    double mass = 0.5, sum = 0.0;
    for (std::size_t i = 0; i < e.size(); ++i) {
        e[i] = mass;
        sum += mass;
        mass *= 0.5;
    }
    e.back() += 1.0 - sum; // exact normalisation
    scheme.setEvictionProbs(e);
    expectFits(scheme, 16);
}

TEST(CoreSelectionStats, Quantised6Bit)
{
    // With probBits = 6 the sampler must follow the *quantised*
    // distribution, not the requested one.
    auto scheme = makeScheme(4, 777, 6);
    const std::vector<double> requested{0.57, 0.31, 0.09, 0.03};
    scheme.setEvictionProbs(
        std::span<const double>(requested.data(), requested.size()));
    // Quantisation actually happened, through the same codec a
    // recompute uses (encode to 6-bit codes, renormalise).
    const FixedPointCodec codec(6);
    EXPECT_EQ(scheme.evictionProbs(),
              codec.quantiseDistribution(requested));
    EXPECT_NE(scheme.evictionProbs(), requested);
    expectFits(scheme, 4);
}

TEST(CoreSelectionStats, Quantised12Bit)
{
    auto scheme = makeScheme(8, 31337, 12);
    scheme.setEvictionProbs(
        {0.35, 0.25, 0.15, 0.10, 0.08, 0.04, 0.02, 0.01});
    expectFits(scheme, 8);
}

TEST(CoreSelectionStats, DegenerateCertainty)
{
    // E_i = 1: every draw must select core i, regardless of seed.
    for (const std::uint64_t seed : {1ull, 2ull, 3ull}) {
        auto scheme = makeScheme(4, seed);
        scheme.setEvictionProbs({0.0, 0.0, 1.0, 0.0});
        const auto counts = sample(scheme, 4, 10'000);
        EXPECT_EQ(counts[2], 10'000u);
    }
}

TEST(CoreSelectionStats, DegenerateCertaintyQuantised)
{
    // The degenerate distribution survives quantisation exactly.
    auto scheme = makeScheme(4, 5, 6);
    scheme.setEvictionProbs({0.0, 1.0, 0.0, 0.0});
    const auto counts = sample(scheme, 4, 10'000);
    EXPECT_EQ(counts[1], 10'000u);
}

TEST(CoreSelectionStats, ZeroProbabilityNeverSampled)
{
    auto scheme = makeScheme(4, 2024);
    scheme.setEvictionProbs({0.5, 0.0, 0.5, 0.0});
    const auto counts = sample(scheme, 4);
    EXPECT_EQ(counts[1], 0u);
    EXPECT_EQ(counts[3], 0u);
    unsigned df = 0;
    const double stat =
        chi2(counts, scheme.evictionProbs(), &df);
    EXPECT_EQ(df, 1u);
    EXPECT_LT(stat, chi2Critical(df));
}

TEST(CoreSelectionStats, SeedsGiveIndependentSequences)
{
    auto a = makeScheme(4, 10);
    auto b = makeScheme(4, 11);
    std::vector<CoreId> sa, sb;
    for (int i = 0; i < 64; ++i) {
        sa.push_back(a.sampleVictimCore());
        sb.push_back(b.sampleVictimCore());
    }
    EXPECT_NE(sa, sb); // different seeds, different draw sequences
    auto a2 = makeScheme(4, 10);
    std::vector<CoreId> sa2;
    for (int i = 0; i < 64; ++i)
        sa2.push_back(a2.sampleVictimCore());
    EXPECT_EQ(sa, sa2); // same seed reproduces exactly
}

// ---------------------------------------------------------------
// Alias-sampler equivalence: the O(1) guide-table Core-Selection
// must be *draw-for-draw identical* to the seed inverse-CDF walk
// (AliasSampler::inverseCdfReference), not merely statistically
// indistinguishable. docs/TESTING.md, "Hot-path equivalence".
// ---------------------------------------------------------------

namespace
{

/** Random distribution over n cores; ~1/4 of entries exactly zero. */
std::vector<double>
randomDistribution(std::uint32_t n, Rng &rng)
{
    std::vector<double> e(n);
    double sum = 0.0;
    for (auto &v : e) {
        v = rng.chance(0.25) ? 0.0 : rng.uniform();
        sum += v;
    }
    if (sum == 0.0) {
        e[rng.below(n)] = 1.0;
        return e;
    }
    for (auto &v : e)
        v /= sum;
    return e;
}

/** Hold sample(u) to the reference for a grid plus random draws. */
void
expectDrawForDraw(std::span<const double> e, Rng &rng)
{
    AliasSampler s;
    s.build(e);
    // Dense grid including the bucket boundaries b/K themselves.
    const std::uint32_t k = std::max(1u, s.buckets());
    for (std::uint32_t b = 0; b < k; ++b) {
        for (const double eps : {0.0, 1e-12, 1e-9, 1e-4}) {
            const double u = static_cast<double>(b) / k + eps;
            if (u >= 1.0)
                continue;
            ASSERT_EQ(s.sample(u),
                      AliasSampler::inverseCdfReference(e, u))
                << "u=" << u;
        }
    }
    // The top edge: draws beyond the last partial sum take the
    // rounding-residue rule.
    for (const double u :
         {0.999999999999, std::nextafter(1.0, 0.0)})
        ASSERT_EQ(s.sample(u),
                  AliasSampler::inverseCdfReference(e, u));
    for (int i = 0; i < 20'000; ++i) {
        const double u = rng.uniform();
        ASSERT_EQ(s.sample(u),
                  AliasSampler::inverseCdfReference(e, u))
            << "u=" << u;
    }
}

} // namespace

TEST(AliasEquivalence, ExhaustiveSmallN)
{
    // Every core count the small configurations use, many random
    // distributions each, grid + random draws: draw-for-draw.
    Rng rng(20260809);
    for (std::uint32_t n = 1; n <= 8; ++n)
        for (int rep = 0; rep < 25; ++rep)
            expectDrawForDraw(randomDistribution(n, rng), rng);
}

TEST(AliasEquivalence, LargeCoreCounts)
{
    Rng rng(77);
    for (const std::uint32_t n : {16u, 32u, 64u})
        for (int rep = 0; rep < 5; ++rep)
            expectDrawForDraw(randomDistribution(n, rng), rng);
}

TEST(AliasEquivalence, QuantisedDistributions)
{
    // Post-quantisation distributions are the ones the scheme
    // actually serves; 6-bit codes produce the flat, stepped shapes
    // hardest on the guide table (many equal partial sums).
    Rng rng(4096);
    for (const unsigned bits : {4u, 6u, 12u}) {
        const FixedPointCodec codec(bits);
        for (int rep = 0; rep < 10; ++rep) {
            const auto e =
                codec.quantiseDistribution(randomDistribution(8, rng));
            expectDrawForDraw(e, rng);
        }
    }
}

TEST(AliasEquivalence, UnnormalisedResidue)
{
    // Rounding can leave the partial sums short of 1; draws beyond
    // the total must take the reference's residue rule (last core
    // with non-zero probability).
    const std::vector<double> e{0.3, 0.0, 0.3, 0.2}; // sums to 0.8
    AliasSampler s;
    s.build(e);
    EXPECT_EQ(s.residueCore(), 3u);
    Rng rng(11);
    for (int i = 0; i < 10'000; ++i) {
        const double u = rng.uniform();
        ASSERT_EQ(s.sample(u),
                  AliasSampler::inverseCdfReference(e, u));
    }
    EXPECT_EQ(s.sample(0.9), 3u);
    EXPECT_EQ(s.sample(std::nextafter(1.0, 0.0)), 3u);
}

TEST(AliasEquivalence, IdenticalSeedStreams)
{
    // End to end at identical seeds: the scheme's draw stream must
    // equal a mirrored RNG run through the reference walk — the
    // sampler consumes exactly one uniform per draw and never
    // perturbs the stream, so pre-refactor behaviour reproduces.
    for (const std::uint64_t seed : {7ull, 42ull, 31337ull}) {
        auto scheme = makeScheme(8, seed);
        Rng mirror(seed);
        std::vector<double> e{0.3, 0.2, 0.15, 0.1,
                              0.1, 0.08, 0.05, 0.02};
        scheme.setEvictionProbs(e);
        for (int i = 0; i < 5'000; ++i) {
            ASSERT_EQ(scheme.sampleVictimCore(),
                      AliasSampler::inverseCdfReference(
                          e, mirror.uniform()));
            if (i == 2'500) {
                // Mid-stream recompute: table rebuilds, stream
                // continues without a discontinuity.
                e = {0.0, 0.5, 0.0, 0.5, 0.0, 0.0, 0.0, 0.0};
                scheme.setEvictionProbs(e);
            }
        }
    }
}

TEST(AliasEquivalence, SingleEligibleShortCircuit)
{
    // One core holding all mass short-circuits without touching the
    // guide table — and still matches the reference draw for draw.
    AliasSampler s;
    s.build(std::vector<double>{0.0, 0.0, 1.0, 0.0});
    EXPECT_EQ(s.singleEligible(), 2u);
    Rng rng(3);
    for (int i = 0; i < 1'000; ++i)
        ASSERT_EQ(s.sample(rng.uniform()), 2u);

    // The scheme wires the same short circuit.
    auto scheme = makeScheme(4, 9);
    scheme.setEvictionProbs({0.0, 0.0, 0.0, 1.0});
    EXPECT_EQ(scheme.sampler().singleEligible(), 3u);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(scheme.sampleVictimCore(), 3u);

    // Multi-eligible distributions must NOT short-circuit.
    scheme.setEvictionProbs({0.5, 0.5, 0.0, 0.0});
    EXPECT_EQ(scheme.sampler().singleEligible(), invalidCore);
}

TEST(AliasEquivalence, ChiSquareThroughGuideTable)
{
    // Statistical sanity directly on the table at 32 cores (the
    // scalability configuration): frequencies fit the distribution.
    Rng rng(123);
    std::vector<double> e(32);
    double sum = 0.0;
    for (auto &v : e) {
        v = rng.uniform() * rng.uniform();
        sum += v;
    }
    for (auto &v : e)
        v /= sum;
    AliasSampler s;
    s.build(e);
    std::vector<std::uint64_t> counts(32, 0);
    Rng draws(99);
    for (std::uint64_t i = 0; i < kDraws; ++i)
        ++counts[s.sample(draws.uniform())];
    unsigned df = 0;
    const double stat = chi2(counts, e, &df);
    EXPECT_LT(stat, chi2Critical(df));
}
