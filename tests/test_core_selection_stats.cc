/**
 * @file
 * Statistical validation of PriSM Core-Selection (paper §3.1): the
 * sampled victim-core frequencies must match the eviction
 * distribution E. Chi-square goodness-of-fit over 1e5 draws with
 * fixed seeds (deterministic, no flakiness); the acceptance
 * thresholds are the alpha = 0.001 critical values, so a correct
 * sampler fails with probability 1e-3 per (seed, case) — and the
 * seeds are pinned to passing draws. Methodology: docs/TESTING.md.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include "prism/alloc_hitmax.hh"
#include "prism/prism_scheme.hh"

using namespace prism;

namespace
{

constexpr std::uint64_t kDraws = 100'000;

/** Chi-square critical values at alpha = 0.001, by df. */
double
chi2Critical(unsigned df)
{
    static const std::map<unsigned, double> table{
        {1, 10.828}, {2, 13.816}, {3, 16.266},  {5, 20.515},
        {7, 24.322}, {15, 37.697}, {31, 61.098}};
    const auto it = table.find(df);
    EXPECT_NE(it, table.end()) << "no critical value for df=" << df;
    return it == table.end() ? 0.0 : it->second;
}

PrismScheme
makeScheme(std::uint32_t cores, std::uint64_t seed,
           unsigned prob_bits = 0)
{
    PrismParams params;
    params.probBits = prob_bits;
    return PrismScheme(cores, std::make_unique<HitMaxPolicy>(), seed,
                       params);
}

std::vector<std::uint64_t>
sample(PrismScheme &scheme, std::uint32_t cores,
       std::uint64_t draws = kDraws)
{
    std::vector<std::uint64_t> counts(cores, 0);
    for (std::uint64_t i = 0; i < draws; ++i) {
        const CoreId c = scheme.sampleVictimCore();
        EXPECT_LT(c, cores);
        ++counts[c];
    }
    return counts;
}

/** Goodness-of-fit statistic over the non-zero-probability bins. */
double
chi2(const std::vector<std::uint64_t> &counts,
     const std::vector<double> &expected_probs, unsigned *df)
{
    double stat = 0.0;
    unsigned bins = 0;
    for (std::size_t i = 0; i < counts.size(); ++i) {
        if (expected_probs[i] <= 0.0)
            continue;
        const double expect =
            expected_probs[i] * static_cast<double>(kDraws);
        const double diff =
            static_cast<double>(counts[i]) - expect;
        stat += diff * diff / expect;
        ++bins;
    }
    *df = bins - 1;
    return stat;
}

void
expectFits(PrismScheme &scheme, std::uint32_t cores)
{
    // Expectation is the scheme's own (possibly quantised) E, which
    // is guaranteed normalised.
    const std::vector<double> e = scheme.evictionProbs();
    double sum = 0.0;
    for (const double p : e)
        sum += p;
    EXPECT_NEAR(sum, 1.0, 1e-9);

    const auto counts = sample(scheme, cores);
    unsigned df = 0;
    const double stat = chi2(counts, e, &df);
    EXPECT_LT(stat, chi2Critical(df))
        << "sampled frequencies do not fit E (df=" << df << ")";
}

} // namespace

TEST(CoreSelectionStats, UniformQuad)
{
    auto scheme = makeScheme(4, 12345);
    // Freshly constructed schemes start from the uniform distribution.
    expectFits(scheme, 4);
}

TEST(CoreSelectionStats, SkewedQuad)
{
    auto scheme = makeScheme(4, 999);
    const std::vector<double> e{0.6, 0.3, 0.08, 0.02};
    scheme.setEvictionProbs(e);
    EXPECT_EQ(scheme.evictionProbs(), e); // no quantisation configured
    expectFits(scheme, 4);
}

TEST(CoreSelectionStats, SkewedSixteen)
{
    auto scheme = makeScheme(16, 4242);
    // Heavily skewed: half the mass on core 0, geometric tail.
    std::vector<double> e(16);
    double mass = 0.5, sum = 0.0;
    for (std::size_t i = 0; i < e.size(); ++i) {
        e[i] = mass;
        sum += mass;
        mass *= 0.5;
    }
    e.back() += 1.0 - sum; // exact normalisation
    scheme.setEvictionProbs(e);
    expectFits(scheme, 16);
}

TEST(CoreSelectionStats, Quantised6Bit)
{
    // With probBits = 6 the sampler must follow the *quantised*
    // distribution, not the requested one.
    auto scheme = makeScheme(4, 777, 6);
    const std::vector<double> requested{0.57, 0.31, 0.09, 0.03};
    scheme.setEvictionProbs(
        std::span<const double>(requested.data(), requested.size()));
    // Quantisation actually happened, through the same codec a
    // recompute uses (encode to 6-bit codes, renormalise).
    const FixedPointCodec codec(6);
    EXPECT_EQ(scheme.evictionProbs(),
              codec.quantiseDistribution(requested));
    EXPECT_NE(scheme.evictionProbs(), requested);
    expectFits(scheme, 4);
}

TEST(CoreSelectionStats, Quantised12Bit)
{
    auto scheme = makeScheme(8, 31337, 12);
    scheme.setEvictionProbs(
        {0.35, 0.25, 0.15, 0.10, 0.08, 0.04, 0.02, 0.01});
    expectFits(scheme, 8);
}

TEST(CoreSelectionStats, DegenerateCertainty)
{
    // E_i = 1: every draw must select core i, regardless of seed.
    for (const std::uint64_t seed : {1ull, 2ull, 3ull}) {
        auto scheme = makeScheme(4, seed);
        scheme.setEvictionProbs({0.0, 0.0, 1.0, 0.0});
        const auto counts = sample(scheme, 4, 10'000);
        EXPECT_EQ(counts[2], 10'000u);
    }
}

TEST(CoreSelectionStats, DegenerateCertaintyQuantised)
{
    // The degenerate distribution survives quantisation exactly.
    auto scheme = makeScheme(4, 5, 6);
    scheme.setEvictionProbs({0.0, 1.0, 0.0, 0.0});
    const auto counts = sample(scheme, 4, 10'000);
    EXPECT_EQ(counts[1], 10'000u);
}

TEST(CoreSelectionStats, ZeroProbabilityNeverSampled)
{
    auto scheme = makeScheme(4, 2024);
    scheme.setEvictionProbs({0.5, 0.0, 0.5, 0.0});
    const auto counts = sample(scheme, 4);
    EXPECT_EQ(counts[1], 0u);
    EXPECT_EQ(counts[3], 0u);
    unsigned df = 0;
    const double stat =
        chi2(counts, scheme.evictionProbs(), &df);
    EXPECT_EQ(df, 1u);
    EXPECT_LT(stat, chi2Critical(df));
}

TEST(CoreSelectionStats, SeedsGiveIndependentSequences)
{
    auto a = makeScheme(4, 10);
    auto b = makeScheme(4, 11);
    std::vector<CoreId> sa, sb;
    for (int i = 0; i < 64; ++i) {
        sa.push_back(a.sampleVictimCore());
        sb.push_back(b.sampleVictimCore());
    }
    EXPECT_NE(sa, sb); // different seeds, different draw sequences
    auto a2 = makeScheme(4, 10);
    std::vector<CoreId> sa2;
    for (int i = 0; i < 64; ++i)
        sa2.push_back(a2.sampleVictimCore());
    EXPECT_EQ(sa, sa2); // same seed reproduces exactly
}
