/**
 * @file
 * Live observability plane, end-to-end over the real binaries:
 * `prism_serve --metrics-out` snapshots must be byte-identical at 1
 * and 8 threads for a fixed op budget, `prism_top --once` must
 * render them, `prism_doctor` must autodetect the prism-metrics-v1
 * schema, and the flag-validation exits must hold.
 */

#include <gtest/gtest.h>

#include <array>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

namespace
{

#ifndef PRISM_SERVE_BIN_DEFAULT
#define PRISM_SERVE_BIN_DEFAULT "tools/prism_serve"
#endif
#ifndef PRISM_TOP_BIN_DEFAULT
#define PRISM_TOP_BIN_DEFAULT "tools/prism_top"
#endif
#ifndef PRISM_DOCTOR_BIN_DEFAULT
#define PRISM_DOCTOR_BIN_DEFAULT "tools/prism_doctor"
#endif

/** The serve fixture (test_serve_determinism), whole-round budget. */
const char *const kFixtureFlags =
    "--tenants 3 --keys 40000 --capacity-mb 4 --shards 16 "
    "--streams 8 --batch 1024 --interval 8192 --ops 393216 "
    "--no-timing --seed 2012 --quiet";

std::string
serveBin()
{
    if (const char *p = std::getenv("PRISM_SERVE_BIN"))
        return p;
    return PRISM_SERVE_BIN_DEFAULT;
}

std::string
topBin()
{
    if (const char *p = std::getenv("PRISM_TOP_BIN"))
        return p;
    return PRISM_TOP_BIN_DEFAULT;
}

std::string
doctorBin()
{
    if (const char *p = std::getenv("PRISM_DOCTOR_BIN"))
        return p;
    return PRISM_DOCTOR_BIN_DEFAULT;
}

std::pair<int, std::string>
run(const std::string &cmd)
{
    FILE *pipe = popen((cmd + " 2>&1").c_str(), "r");
    EXPECT_NE(pipe, nullptr);
    std::string out;
    std::array<char, 4096> buf;
    while (std::size_t n = std::fread(buf.data(), 1, buf.size(), pipe))
        out.append(buf.data(), n);
    const int status = pclose(pipe);
    return {WEXITSTATUS(status), out};
}

std::string
slurp(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    EXPECT_TRUE(in.is_open()) << "cannot open " << path;
    std::ostringstream os;
    os << in.rdbuf();
    return os.str();
}

std::string
tempDir()
{
    char tmpl[] = "/tmp/prism_live_XXXXXX";
    const char *dir = mkdtemp(tmpl);
    EXPECT_NE(dir, nullptr);
    return dir;
}

/** One fixture serve run with the live plane on. */
int
serveWithMetrics(const std::string &dir, const std::string &tag,
                 unsigned threads, std::string *output = nullptr)
{
    const std::string cmd =
        serveBin() + " " + kFixtureFlags + " --threads " +
        std::to_string(threads) + " --live-doctor --window 64 " +
        "--metrics-every 6 --metrics-out " + dir + "/" + tag +
        ".json --metrics-prom " + dir + "/" + tag + ".prom";
    const auto [code, out] = run(cmd);
    if (output != nullptr)
        *output = out;
    return code;
}

} // namespace

TEST(LiveCli, ServeMetricsAreByteIdenticalAcrossThreadCounts)
{
    const std::string dir = tempDir();
    std::string out1, out8;
    ASSERT_EQ(serveWithMetrics(dir, "t1", 1, &out1), 0) << out1;
    ASSERT_EQ(serveWithMetrics(dir, "t8", 8, &out8), 0) << out8;

    const std::string json1 = slurp(dir + "/t1.json");
    EXPECT_FALSE(json1.empty());
    EXPECT_EQ(json1, slurp(dir + "/t8.json"))
        << "prism-metrics-v1 snapshots must not depend on --threads";
    EXPECT_EQ(slurp(dir + "/t1.prom"), slurp(dir + "/t8.prom"));
    EXPECT_NE(json1.find("\"schema\": \"prism-metrics-v1\""),
              std::string::npos);

    const auto [code, out] = run("rm -rf " + dir);
    (void)code;
    (void)out;
}

TEST(LiveCli, TopRendersASnapshotOnce)
{
    const std::string dir = tempDir();
    std::string serve_out;
    ASSERT_EQ(serveWithMetrics(dir, "snap", 2, &serve_out), 0)
        << serve_out;

    const auto [code, out] =
        run(topBin() + " " + dir + "/snap.json --once");
    EXPECT_EQ(code, 0) << out;
    EXPECT_NE(out.find("prism_top: serve/PriSM-H"),
              std::string::npos)
        << out;
    EXPECT_NE(out.find("tenant"), std::string::npos) << out;
    EXPECT_NE(out.find("doctor"), std::string::npos)
        << "the embedded online verdict must render: " << out;

    run("rm -rf " + dir);
}

TEST(LiveCli, TopExitsTwoOnMissingFile)
{
    const auto [code, out] =
        run(topBin() + " /nonexistent/metrics.json --once");
    EXPECT_EQ(code, 2) << out;
}

TEST(LiveCli, DoctorAutodetectsMetricsSnapshots)
{
    const std::string dir = tempDir();
    std::string serve_out;
    ASSERT_EQ(serveWithMetrics(dir, "snap", 2, &serve_out), 0)
        << serve_out;

    const auto [code, out] =
        run(doctorBin() + " " + dir + "/snap.json");
    EXPECT_EQ(code, 0) << out;
    EXPECT_NE(out.find("drift"), std::string::npos)
        << "metrics input must enable the drift checks: " << out;

    run("rm -rf " + dir);
}

TEST(LiveCli, MetricsEveryWithoutAnOutputIsAUsageError)
{
    const auto [serve_code, serve_out] =
        run(serveBin() + " --ops 8192 --metrics-every 4");
    EXPECT_EQ(serve_code, 2) << serve_out;
}
