/**
 * @file
 * Telemetry subsystem tests: ring-buffer wrap/drop semantics,
 * histogram bucket edges, concurrent MetricsRegistry access (the
 * ThreadSanitizer target when built with -DPRISM_TSAN=ON), registry
 * JSON determinism, recorder wiring through Runner, fault events,
 * the trace byte-identity contract across sweep thread counts, and
 * the committed golden Chrome trace.
 *
 * Regenerate the golden trace after an intentional format change:
 *   PRISM_UPDATE_GOLDEN=1 build/tests/test_telemetry \
 *       --gtest_filter=TraceGolden.*
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <mutex>
#include <sstream>
#include <thread>
#include <vector>

#include "common/json.hh"
#include "exec/sweep.hh"
#include "telemetry/interval_recorder.hh"
#include "telemetry/metrics_registry.hh"
#include "telemetry/span.hh"
#include "telemetry/trace_writer.hh"

using namespace prism;
using namespace prism::telemetry;

namespace
{

IntervalSample
sampleAt(std::uint64_t interval)
{
    IntervalSample s;
    s.interval = interval;
    s.missesInInterval = 10 * interval;
    s.occupancy = {0.25, 0.75};
    s.missFrac = {0.5, 0.5};
    s.ipc = {1.0, 2.0};
    s.hits = {interval, interval + 1};
    s.misses = {5, 5};
    return s;
}

} // namespace

// --- IntervalRecorder --------------------------------------------

TEST(IntervalRecorder, StoresSamplesInOrderBelowCapacity)
{
    IntervalRecorder rec(8);
    for (std::uint64_t i = 1; i <= 5; ++i)
        rec.record(sampleAt(i));
    EXPECT_EQ(rec.size(), 5u);
    EXPECT_EQ(rec.recorded(), 5u);
    EXPECT_EQ(rec.droppedSamples(), 0u);
    for (std::size_t i = 0; i < 5; ++i)
        EXPECT_EQ(rec.sample(i).interval, i + 1);
}

TEST(IntervalRecorder, WrapsDroppingOldest)
{
    IntervalRecorder rec(4);
    for (std::uint64_t i = 1; i <= 10; ++i)
        rec.record(sampleAt(i));
    EXPECT_EQ(rec.size(), 4u);
    EXPECT_EQ(rec.recorded(), 10u);
    EXPECT_EQ(rec.droppedSamples(), 6u);
    // Oldest retained is interval 7; sample(0) is the oldest.
    for (std::size_t i = 0; i < 4; ++i)
        EXPECT_EQ(rec.sample(i).interval, 7 + i);
}

TEST(IntervalRecorder, CapacityOneKeepsNewest)
{
    IntervalRecorder rec(1);
    for (std::uint64_t i = 1; i <= 3; ++i)
        rec.record(sampleAt(i));
    ASSERT_EQ(rec.size(), 1u);
    EXPECT_EQ(rec.sample(0).interval, 3u);
    EXPECT_EQ(rec.droppedSamples(), 2u);
}

TEST(IntervalRecorder, EventRingWrapsIndependently)
{
    IntervalRecorder rec(3);
    for (std::uint64_t i = 1; i <= 5; ++i)
        rec.addEvent({EventKind::DegradedInterval, i, invalidCore,
                      static_cast<double>(i)});
    EXPECT_EQ(rec.eventCount(), 3u);
    EXPECT_EQ(rec.eventsSeen(), 5u);
    EXPECT_EQ(rec.droppedEvents(), 2u);
    for (std::size_t i = 0; i < 3; ++i)
        EXPECT_EQ(rec.event(i).interval, 3 + i);
    // The sample ring is untouched by event traffic.
    EXPECT_EQ(rec.size(), 0u);
}

TEST(IntervalRecorder, FinishOccupancyReadsCoreFinishEvents)
{
    IntervalRecorder rec(8);
    rec.addEvent({EventKind::CoreFinish, 4, 1, 0.625});
    rec.addEvent({EventKind::CoreFinish, 9, 0, 0.25});
    EXPECT_EQ(finishOccupancy(rec, 0), 0.25);
    EXPECT_EQ(finishOccupancy(rec, 1), 0.625);
    EXPECT_EQ(finishOccupancy(rec, 2), 0.0); // never finished
}

TEST(IntervalRecorder, EvProbStatReplaysWelfordSequence)
{
    IntervalRecorder rec(8);
    RunningStat direct;
    const std::vector<double> series{0.1, 0.4, 0.25, 0.25, 0.9};
    for (std::size_t i = 0; i < series.size(); ++i) {
        IntervalSample s = sampleAt(i + 1);
        s.evProb = {series[i], 1.0 - series[i]};
        rec.record(std::move(s));
        direct.add(series[i]);
    }
    const RunningStat replayed = evProbStat(rec, 0);
    EXPECT_EQ(replayed.count(), direct.count());
    EXPECT_EQ(replayed.mean(), direct.mean());
    EXPECT_EQ(replayed.stddev(), direct.stddev());
}

TEST(IntervalRecorder, EventKindNamesAreStable)
{
    // Trace files depend on these strings: renaming breaks goldens.
    EXPECT_STREQ(eventKindName(EventKind::CoreFinish), "core_finish");
    EXPECT_STREQ(eventKindName(EventKind::DegradedInterval),
                 "degraded_interval");
    EXPECT_STREQ(eventKindName(EventKind::DroppedRecompute),
                 "dropped_recompute");
    EXPECT_STREQ(eventKindName(EventKind::DistributionRepair),
                 "distribution_repair");
    EXPECT_STREQ(eventKindName(EventKind::FallbackEntered),
                 "fallback_entered");
    EXPECT_STREQ(eventKindName(EventKind::OwnershipRepair),
                 "ownership_repair");
    // The online doctor's escalation markers (docs/OBSERVABILITY.md).
    EXPECT_STREQ(eventKindName(EventKind::DoctorWarn), "doctor_warn");
    EXPECT_STREQ(eventKindName(EventKind::DoctorFail), "doctor_fail");
}

TEST(IntervalRecorder, DropCountersStayExactAcrossWrapUnderWriters)
{
    // The recorder is single-writer by contract; callers that share
    // one (the serve engine's observers) serialise externally. Under
    // that discipline the drop counters must stay exact arithmetic
    // over the ring: recorded == size + droppedSamples, and likewise
    // for events, no matter how the writers interleave.
    IntervalRecorder rec(16);
    std::mutex writer_mutex;
    constexpr int kWriters = 4;
    constexpr std::uint64_t kPerWriter = 500;

    std::vector<std::thread> writers;
    for (int w = 0; w < kWriters; ++w)
        writers.emplace_back([&, w] {
            for (std::uint64_t i = 0; i < kPerWriter; ++i) {
                const std::uint64_t interval =
                    static_cast<std::uint64_t>(w) * kPerWriter + i;
                std::lock_guard<std::mutex> lock(writer_mutex);
                rec.record(sampleAt(interval));
                if (i % 3 == 0)
                    rec.addEvent({EventKind::DoctorWarn, interval,
                                  invalidCore, 0.0});
            }
        });
    for (std::thread &t : writers)
        t.join();

    const std::uint64_t total = kWriters * kPerWriter;
    EXPECT_EQ(rec.recorded(), total);
    EXPECT_EQ(rec.size(), 16u);
    EXPECT_EQ(rec.droppedSamples(), total - 16u);

    const std::uint64_t events = kWriters * ((kPerWriter + 2) / 3);
    EXPECT_EQ(rec.eventsSeen(), events);
    EXPECT_EQ(rec.droppedEvents(), events - rec.eventCount());
}

// --- Histogram ----------------------------------------------------

TEST(Histogram, BucketEdgesAreUpperInclusive)
{
    const std::vector<double> bounds{1.0, 2.0, 4.0};
    Histogram h(bounds);
    ASSERT_EQ(h.numBuckets(), 4u); // 3 bounded + overflow

    h.observe(0.5); // bucket 0
    h.observe(1.0); // bucket 0: v <= bound is inclusive
    h.observe(1.5); // bucket 1
    h.observe(2.0); // bucket 1
    h.observe(4.0); // bucket 2
    h.observe(4.1); // overflow
    h.observe(99.0); // overflow

    EXPECT_EQ(h.bucketCount(0), 2u);
    EXPECT_EQ(h.bucketCount(1), 2u);
    EXPECT_EQ(h.bucketCount(2), 1u);
    EXPECT_EQ(h.bucketCount(3), 2u);
    EXPECT_EQ(h.count(), 7u);
    EXPECT_DOUBLE_EQ(h.sum(), 0.5 + 1.0 + 1.5 + 2.0 + 4.0 + 4.1 + 99.0);
}

// --- MetricsRegistry ----------------------------------------------

TEST(MetricsRegistry, SameNameReturnsSameMetric)
{
    MetricsRegistry m;
    Counter &a = m.counter("x");
    Counter &b = m.counter("x");
    EXPECT_EQ(&a, &b);
    a.add(3);
    EXPECT_EQ(b.value(), 3u);

    const std::vector<double> bounds{1.0, 2.0};
    Histogram &h1 = m.histogram("h", bounds);
    const std::vector<double> other{9.0};
    Histogram &h2 = m.histogram("h", other); // first bounds win
    EXPECT_EQ(&h1, &h2);
    EXPECT_EQ(h2.bounds().size(), 2u);
}

TEST(MetricsRegistry, SpanAggregatesCallsAndWallTime)
{
    MetricsRegistry m;
    const SpanStats stats = m.span("work");
    ASSERT_TRUE(stats);
    for (int i = 0; i < 4; ++i) {
        PRISM_SPAN(stats);
    }
    EXPECT_EQ(m.counter("work.calls").value(), 4u);
    // Wall time is non-deterministic but monotonic in call count —
    // only its presence is asserted.
    EXPECT_TRUE(MetricsRegistry::isWallClock("work.wall_ns"));
    EXPECT_FALSE(MetricsRegistry::isWallClock("work.calls"));
}

TEST(MetricsRegistry, DisabledSpanIsInert)
{
    const SpanStats disabled;
    EXPECT_FALSE(disabled);
    {
        PRISM_SPAN(disabled); // must not dereference null counters
    }
}

TEST(MetricsRegistry, ConcurrentAccessIsSafe)
{
    // 8 threads hammer the same registry: lazy registration races,
    // counter increments, gauge stores, histogram observes and span
    // timers all at once. Under -DPRISM_TSAN=ON this test is the
    // data-race gate for the telemetry subsystem.
    MetricsRegistry m;
    constexpr int kThreads = 8;
    constexpr int kIters = 10'000;
    const std::vector<double> bounds{10.0, 100.0, 1000.0};

    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t)
        threads.emplace_back([&m, &bounds, t]() {
            const SpanStats span =
                m.span("shared.span"); // same name on purpose
            for (int i = 0; i < kIters; ++i) {
                PRISM_SPAN(span);
                m.counter("shared.counter").add();
                m.counter("t" + std::to_string(t % 2) + ".counter")
                    .add(2);
                m.gauge("shared.gauge").set(i);
                m.histogram("shared.hist", bounds)
                    .observe(static_cast<double>(i));
            }
        });
    for (auto &th : threads)
        th.join();

    EXPECT_EQ(m.counter("shared.counter").value(),
              static_cast<std::uint64_t>(kThreads) * kIters);
    EXPECT_EQ(m.counter("t0.counter").value(),
              static_cast<std::uint64_t>(kThreads) / 2 * kIters * 2);
    EXPECT_EQ(m.counter("shared.span.calls").value(),
              static_cast<std::uint64_t>(kThreads) * kIters);
    EXPECT_EQ(m.histogram("shared.hist", bounds).count(),
              static_cast<std::uint64_t>(kThreads) * kIters);
}

TEST(MetricsRegistry, JsonIsSortedAndExcludesWallClock)
{
    MetricsRegistry m;
    m.counter("zeta").add(1);
    m.counter("alpha").add(2);
    m.span("llc.access"); // registers llc.access.{calls,wall_ns}
    m.gauge("g").set(1.5);
    const std::vector<double> bounds{1.0};
    m.histogram("h", bounds).observe(0.5);

    std::ostringstream os;
    JsonWriter w(os);
    m.writeJson(w);
    const std::string json = os.str();

    EXPECT_NE(json.find("\"alpha\""), std::string::npos);
    EXPECT_LT(json.find("\"alpha\""), json.find("\"zeta\""));
    EXPECT_NE(json.find("\"llc.access.calls\""), std::string::npos);
    EXPECT_EQ(json.find("wall_ns"), std::string::npos)
        << "wall-clock counters leaked into deterministic JSON";

    std::ostringstream os2;
    JsonWriter w2(os2);
    m.writeJson(w2, /*include_wall=*/true);
    EXPECT_NE(os2.str().find("llc.access.wall_ns"), std::string::npos);
}

// --- Runner integration -------------------------------------------

namespace
{

MachineConfig
tinyMachine()
{
    MachineConfig m;
    m.numCores = 2;
    m.llcBytes = 256ull << 10;
    m.llcWays = 8;
    m.intervalMisses = 1024;
    m.instrBudget = 60'000;
    m.warmupInstr = 15'000;
    return m;
}

const Workload kMixGF{"GF", {"403.gcc", "186.crafty"}};
const Workload kMixSS{"SS", {"179.art", "470.lbm"}};

} // namespace

TEST(RunnerTelemetry, RecordsEveryIntervalAndFinishEvents)
{
    Runner runner(tinyMachine());
    SchemeOptions opt;
    opt.telemetry.enabled = true;
    opt.telemetry.capacity = 4096;
    const RunResult r = runner.run(kMixGF, SchemeKind::PrismH, opt);

    ASSERT_NE(r.recorder, nullptr);
    const IntervalRecorder &rec = *r.recorder;
    EXPECT_EQ(rec.recorded(), r.intervals);
    EXPECT_EQ(rec.droppedSamples(), 0u);
    ASSERT_GT(rec.size(), 0u);

    for (std::size_t i = 0; i < rec.size(); ++i) {
        const IntervalSample &s = rec.sample(i);
        EXPECT_EQ(s.interval, i + 1);
        ASSERT_EQ(s.occupancy.size(), 2u);
        ASSERT_EQ(s.evProb.size(), 2u) << "PriSM series missing";
        ASSERT_EQ(s.target.size(), 2u);
        double ev_sum = 0.0;
        for (const double e : s.evProb)
            ev_sum += e;
        EXPECT_NEAR(ev_sum, 1.0, 1e-9);
    }

    // The figure-4 statistic reconstructed from events matches the
    // runner's own field bit for bit.
    for (std::size_t c = 0; c < 2; ++c)
        EXPECT_EQ(finishOccupancy(rec, static_cast<CoreId>(c)),
                  r.occupancyAtFinish[c]);

    // The figure-11 statistic matches the scheme's Welford stats.
    for (std::size_t c = 0; c < 2; ++c) {
        const RunningStat st = evProbStat(rec, static_cast<CoreId>(c));
        EXPECT_EQ(st.mean(), r.evProbMean[c]);
        EXPECT_EQ(st.stddev(), r.evProbStddev[c]);
    }
}

TEST(RunnerTelemetry, ObservationDoesNotPerturbResults)
{
    Runner a(tinyMachine());
    const RunResult plain = a.run(kMixGF, SchemeKind::PrismH);

    Runner b(tinyMachine());
    SchemeOptions opt;
    opt.telemetry.enabled = true;
    MetricsRegistry metrics;
    opt.telemetry.metrics = &metrics;
    const RunResult recorded = b.run(kMixGF, SchemeKind::PrismH, opt);

    EXPECT_EQ(plain.ipc, recorded.ipc);
    EXPECT_EQ(plain.llcMisses, recorded.llcMisses);
    EXPECT_EQ(plain.occupancyAtFinish, recorded.occupancyAtFinish);
    EXPECT_EQ(plain.evProbMean, recorded.evProbMean);
    EXPECT_EQ(plain.intervals, recorded.intervals);

    // The span counts every SharedCache::access including warmup;
    // RunResult hits/misses cover the measured phase only.
    std::uint64_t measured = 0;
    for (std::size_t c = 0; c < 2; ++c)
        measured += recorded.llcHits[c] + recorded.llcMisses[c];
    EXPECT_GE(metrics.counter("llc.access.calls").value(), measured)
        << "llc.access span missed measured-phase accesses";
    EXPECT_GT(metrics.counter("prism.recompute.calls").value(), 0u);
}

TEST(RunnerTelemetry, BaselineSchemeHasNoPrismSeries)
{
    Runner runner(tinyMachine());
    SchemeOptions opt;
    opt.telemetry.enabled = true;
    const RunResult r = runner.run(kMixGF, SchemeKind::Baseline, opt);
    ASSERT_NE(r.recorder, nullptr);
    ASSERT_GT(r.recorder->size(), 0u);
    EXPECT_TRUE(r.recorder->sample(0).evProb.empty());
    EXPECT_TRUE(r.recorder->sample(0).target.empty());
}

TEST(RunnerTelemetry, DisabledTelemetryLeavesRecorderNull)
{
    Runner runner(tinyMachine());
    const RunResult r = runner.run(kMixGF, SchemeKind::PrismH);
    EXPECT_EQ(r.recorder, nullptr);
}

TEST(RunnerTelemetry, FaultEventsAppearInRecorder)
{
    Runner runner(tinyMachine());
    SchemeOptions opt;
    opt.telemetry.enabled = true;
    opt.checked = true;
    opt.faultSpec = "drop@3,nan@2";
    const RunResult r = runner.run(kMixGF, SchemeKind::PrismH, opt);

    ASSERT_NE(r.recorder, nullptr);
    std::uint64_t dropped = 0, degraded = 0;
    for (std::size_t i = 0; i < r.recorder->eventCount(); ++i) {
        const TelemetryEvent &e = r.recorder->event(i);
        if (e.kind == EventKind::DroppedRecompute)
            ++dropped;
        if (e.kind == EventKind::DegradedInterval)
            ++degraded;
    }
    EXPECT_EQ(dropped, r.droppedRecomputes);
    EXPECT_EQ(degraded, r.degradedIntervals);
    EXPECT_GT(dropped + degraded, 0u)
        << "fault spec injected nothing: raise the rates";
}

// --- Trace determinism across sweep thread counts -----------------

namespace
{

/** A small recorded sweep mixing PriSM and baseline jobs. */
SweepSpec
tracedSpec()
{
    SweepSpec spec;
    spec.name = "telemetry";
    SchemeOptions opt;
    opt.telemetry.enabled = true;
    opt.telemetry.capacity = 64; // force wrap on at least no job
    spec.add(tinyMachine(), kMixGF, SchemeKind::PrismH, opt);
    spec.add(tinyMachine(), kMixGF, SchemeKind::Baseline, opt);
    spec.add(tinyMachine(), kMixSS, SchemeKind::PrismH, opt);
    return spec;
}

std::string
traceOf(const SweepSpec &spec, unsigned threads)
{
    MetricsRegistry metrics;
    SweepRunner runner(threads);
    runner.setMetrics(&metrics);
    const SweepOutcome outcome = runner.run(spec);

    std::vector<TraceJob> jobs;
    for (std::size_t i = 0; i < spec.jobs.size(); ++i)
        jobs.push_back(
            {spec.jobs[i].id, outcome.results[i].recorder.get()});
    std::ostringstream os;
    TraceWriter().writeChromeTrace(os, jobs, &metrics);
    return os.str();
}

} // namespace

TEST(TraceDeterminism, ByteIdenticalAcrossThreadCounts)
{
    const SweepSpec spec = tracedSpec();
    const std::string base = traceOf(spec, 1);
    EXPECT_NE(base.find("prism-trace-v1"), std::string::npos);
    for (const unsigned threads : {2u, 8u})
        EXPECT_EQ(traceOf(spec, threads), base)
            << "trace differs at " << threads << " threads";
}

TEST(TraceDeterminism, CsvIsByteIdenticalToo)
{
    const SweepSpec spec = tracedSpec();
    const auto csvOf = [&spec](unsigned threads) {
        SweepRunner runner(threads);
        const SweepOutcome outcome = runner.run(spec);
        std::vector<TraceJob> jobs;
        for (std::size_t i = 0; i < spec.jobs.size(); ++i)
            jobs.push_back(
                {spec.jobs[i].id, outcome.results[i].recorder.get()});
        std::ostringstream os;
        TraceWriter().writeCsv(os, jobs);
        return os.str();
    };
    const std::string base = csvOf(1);
    EXPECT_NE(base.find("job,interval,core,occupancy"),
              std::string::npos);
    EXPECT_EQ(csvOf(8), base);
}

// --- Golden Chrome trace ------------------------------------------

#ifndef PRISM_TRACE_GOLDEN_DEFAULT
#define PRISM_TRACE_GOLDEN_DEFAULT "tests/golden/TRACE_fixture.json"
#endif

TEST(TraceGolden, MatchesCommittedFixture)
{
    const char *path_env = std::getenv("PRISM_TRACE_GOLDEN");
    const std::string path =
        path_env ? path_env : PRISM_TRACE_GOLDEN_DEFAULT;

    const std::string trace = traceOf(tracedSpec(), 2);

    if (std::getenv("PRISM_UPDATE_GOLDEN")) {
        std::ofstream out(path, std::ios::binary);
        ASSERT_TRUE(out) << "cannot write " << path;
        out << trace;
        GTEST_SKIP() << "regenerated " << path;
    }

    std::ifstream in(path, std::ios::binary);
    ASSERT_TRUE(in) << "missing golden trace " << path
                    << " (regenerate with PRISM_UPDATE_GOLDEN=1)";
    std::ostringstream golden;
    golden << in.rdbuf();
    EXPECT_EQ(trace, golden.str())
        << "trace format drifted; if intentional regenerate with "
           "PRISM_UPDATE_GOLDEN=1";
}

// --- CSV field escaping -------------------------------------------

TEST(TraceCsv, EscapesJobNamesWithCommasAndQuotes)
{
    // Sweep job keys are free-form (workload mixes contain commas;
    // chaos specs could carry quotes). The CSV stays RFC-4180: such
    // fields are quoted with embedded quotes doubled, while plain
    // names render unquoted exactly as before.
    IntervalRecorder rec(4);
    rec.record(sampleAt(1));
    const std::vector<TraceJob> jobs{
        {"mix=403.gcc,186.crafty \"W8\"", &rec},
        {"plain", &rec},
    };

    std::ostringstream os;
    TraceWriter().writeCsv(os, jobs);
    const std::string csv = os.str();

    EXPECT_NE(csv.find("\"mix=403.gcc,186.crafty \"\"W8\"\"\",1,0,"),
              std::string::npos)
        << csv;
    EXPECT_NE(csv.find("\nplain,1,0,"), std::string::npos) << csv;
    // Every data row still has the header's column count.
    std::istringstream lines(csv);
    std::string line;
    ASSERT_TRUE(std::getline(lines, line));
    const auto columns = [](const std::string &row) {
        std::size_t n = 1;
        bool quoted = false;
        for (const char c : row) {
            if (c == '"')
                quoted = !quoted;
            else if (c == ',' && !quoted)
                ++n;
        }
        return n;
    };
    const std::size_t header_cols = columns(line);
    while (std::getline(lines, line))
        EXPECT_EQ(columns(line), header_cols) << line;
}
