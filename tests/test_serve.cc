/**
 * @file
 * Unit tests for the serving plane (src/serve): the sharded object
 * store's hashing/LRU/ghost/accounting contracts, the Zipfian load
 * generator, tenant-spec parsing, the target policies and the
 * interval arbiter, plus the telemetry Histogram quantile accessor
 * the latency report depends on. The multithreaded hammer suite
 * doubles as the TSan data-race gate for the store (registered
 * separately under -DPRISM_TSAN=ON).
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <thread>
#include <vector>

#include "common/rng.hh"
#include "plane/eq1.hh"
#include "serve/load_gen.hh"
#include "serve/sharded_store.hh"
#include "serve/tenant_arbiter.hh"
#include "serve/zipf.hh"
#include "telemetry/metrics_registry.hh"

using namespace prism;
using namespace prism::serve;

namespace
{

std::vector<std::uint8_t>
bytesOf(std::uint32_t n, std::uint8_t fill)
{
    return std::vector<std::uint8_t>(n, fill);
}

/** One-shard store so LRU order is observable end to end. */
StoreConfig
singleShard(std::uint32_t tenants, std::uint64_t capacity = 1 << 20)
{
    StoreConfig cfg;
    cfg.shards = 1;
    cfg.tenants = tenants;
    cfg.capacityBytes = capacity;
    return cfg;
}

} // namespace

// --- ShardedStore -------------------------------------------------

TEST(ShardedStore, PutGetRoundTrip)
{
    ShardedStore store(singleShard(2));
    store.put(0, 42, bytesOf(100, 0xAB));

    std::vector<std::uint8_t> value;
    const auto r = store.get(0, 42, &value);
    EXPECT_TRUE(r.hit);
    EXPECT_EQ(value, bytesOf(100, 0xAB));

    // Same key under another tenant is a distinct object.
    EXPECT_FALSE(store.get(1, 42).hit);
    EXPECT_EQ(store.hits(0), 1u);
    EXPECT_EQ(store.misses(1), 1u);
}

TEST(ShardedStore, ByteAccountingTracksPutsAndOverwrites)
{
    ShardedStore store(singleShard(2));
    store.put(0, 1, bytesOf(100, 1));
    store.put(1, 2, bytesOf(50, 2));
    EXPECT_EQ(store.tenantBytes(0), 100u);
    EXPECT_EQ(store.tenantBytes(1), 50u);
    EXPECT_EQ(store.totalBytes(), 150u);
    EXPECT_EQ(store.objectCount(), 2u);

    // Overwrite shrinks in place; counts stay at one object.
    store.put(0, 1, bytesOf(30, 3));
    EXPECT_EQ(store.tenantBytes(0), 30u);
    EXPECT_EQ(store.totalBytes(), 80u);
    EXPECT_EQ(store.objectCount(), 2u);
}

TEST(ShardedStore, EvictsLeastRecentlyUsedOfTheTenant)
{
    ShardedStore store(singleShard(1));
    store.put(0, 1, bytesOf(10, 1));
    store.put(0, 2, bytesOf(20, 2));
    store.put(0, 3, bytesOf(30, 3));

    // Refresh key 1: eviction order becomes 2, 3, 1.
    EXPECT_TRUE(store.get(0, 1).hit);

    EXPECT_EQ(store.evictOneFrom(0), 20u);
    EXPECT_FALSE(store.get(0, 2).hit);
    EXPECT_EQ(store.evictOneFrom(0), 30u);
    EXPECT_EQ(store.evictOneFrom(0), 10u);
    EXPECT_EQ(store.totalBytes(), 0u);
    EXPECT_EQ(store.evictOneFrom(0), 0u) << "empty tenant";
}

TEST(ShardedStore, EvictionIsPerTenant)
{
    ShardedStore store(singleShard(2));
    store.put(0, 1, bytesOf(10, 1));
    store.put(1, 2, bytesOf(20, 2));

    // Tenant 1's eviction must not touch tenant 0's object even
    // though tenant 0's is older.
    EXPECT_EQ(store.evictOneFrom(1), 20u);
    EXPECT_TRUE(store.get(0, 1).hit);
    EXPECT_EQ(store.tenantBytes(1), 0u);
}

TEST(ShardedStore, GhostListTurnsEvictedMissesIntoShadowHits)
{
    ShardedStore store(singleShard(1));
    store.put(0, 7, bytesOf(10, 1));
    EXPECT_EQ(store.evictOneFrom(0), 10u);

    const auto r = store.get(0, 7);
    EXPECT_FALSE(r.hit);
    EXPECT_TRUE(r.shadowHit);
    EXPECT_EQ(store.shadowHits(0), 1u);

    // Reinserting drops the key from the ghost list: a later miss
    // (after another eviction cycle is NOT involved) is clean.
    store.put(0, 7, bytesOf(10, 1));
    const auto r2 = store.get(0, 8);
    EXPECT_FALSE(r2.hit);
    EXPECT_FALSE(r2.shadowHit);
}

TEST(ShardedStore, RehashPreservesObjectsAndRecency)
{
    StoreConfig cfg = singleShard(1);
    cfg.initialSlots = 8; // force growth quickly
    ShardedStore store(cfg);

    const std::uint32_t kKeys = 200;
    for (std::uint32_t k = 0; k < kKeys; ++k)
        store.put(0, k, bytesOf(8, static_cast<std::uint8_t>(k)));
    EXPECT_GT(store.rehashes(), 0u);
    EXPECT_EQ(store.objectCount(), kKeys);

    for (std::uint32_t k = 0; k < kKeys; ++k) {
        std::vector<std::uint8_t> v;
        ASSERT_TRUE(store.get(0, k, &v).hit) << "key " << k;
        EXPECT_EQ(v, bytesOf(8, static_cast<std::uint8_t>(k)));
    }
    // Insert order is recency order here (the gets above refreshed
    // in the same order), so eviction starts at key 0.
    EXPECT_EQ(store.evictOneFrom(0), 8u);
    EXPECT_FALSE(store.get(0, 0).hit);
}

TEST(ShardedStoreHammer, ConcurrentGetPutKeepsAccountingExact)
{
    StoreConfig cfg;
    cfg.shards = 8;
    cfg.tenants = 4;
    cfg.capacityBytes = 64 << 20;
    ShardedStore store(cfg);

    constexpr std::uint32_t kThreads = 4;
    constexpr std::uint32_t kOpsPerThread = 20000;
    constexpr std::uint32_t kValue = 64;

    std::vector<std::thread> workers;
    for (std::uint32_t t = 0; t < kThreads; ++t) {
        workers.emplace_back([&store, t]() {
            Rng rng(deriveSeed(99, std::uint64_t{t}));
            for (std::uint32_t i = 0; i < kOpsPerThread; ++i) {
                const auto tenant =
                    static_cast<std::uint32_t>(rng.below(4));
                const std::uint64_t key = rng.below(5000);
                if (rng.chance(0.5))
                    store.put(tenant, key, bytesOf(kValue, 0x5A));
                else
                    store.get(tenant, key);
            }
        });
    }
    for (auto &w : workers)
        w.join();

    // Every live object is kValue bytes, so the atomic aggregates
    // must agree exactly with the object count.
    EXPECT_EQ(store.totalBytes(), store.objectCount() * kValue);
    std::uint64_t tenant_sum = 0;
    for (std::uint32_t t = 0; t < 4; ++t)
        tenant_sum += store.tenantBytes(t);
    EXPECT_EQ(tenant_sum, store.totalBytes());
    std::uint64_t accesses = 0;
    for (std::uint32_t t = 0; t < 4; ++t)
        accesses += store.hits(t) + store.misses(t);
    EXPECT_GT(accesses, 0u);
}

// --- ZipfGenerator ------------------------------------------------

TEST(Zipf, RanksStayInRangeAndSkewTowardsHead)
{
    const std::uint64_t kN = 1000;
    ZipfGenerator zipf(kN, 0.99);
    Rng rng(7);

    constexpr std::uint32_t kDraws = 200000;
    std::vector<std::uint32_t> counts(kN, 0);
    for (std::uint32_t i = 0; i < kDraws; ++i) {
        const std::uint64_t rank = zipf.next(rng);
        ASSERT_LT(rank, kN);
        ++counts[rank];
    }

    // Under s=0.99 the head rank should take roughly 1/H_n of the
    // mass (~12.8% for n=1000) — far above uniform 0.1%.
    EXPECT_GT(counts[0], kDraws / 20);
    // Popularity decreases along the head of the distribution.
    EXPECT_GT(counts[0], counts[9]);
    EXPECT_GT(counts[9], counts[99]);
}

TEST(Zipf, ExponentZeroIsUniform)
{
    const std::uint64_t kN = 16;
    ZipfGenerator zipf(kN, 0.0);
    Rng rng(11);

    constexpr std::uint32_t kDraws = 160000;
    std::vector<std::uint32_t> counts(kN, 0);
    for (std::uint32_t i = 0; i < kDraws; ++i)
        ++counts[zipf.next(rng)];

    // Chi-square against uniform, df 15, alpha 0.001.
    const double expected = double(kDraws) / double(kN);
    double chi2 = 0.0;
    for (const std::uint32_t c : counts) {
        const double d = double(c) - expected;
        chi2 += d * d / expected;
    }
    EXPECT_LT(chi2, 37.697);
}

// --- LoadGen ------------------------------------------------------

TEST(LoadGen, ValueSizeIsPureFunctionOfTenantAndKey)
{
    TenantSpec spec;
    spec.vmin = 64;
    spec.vmax = 256;
    LoadGen gen({spec, spec}, 4, 42);

    for (std::uint64_t key = 0; key < 200; ++key) {
        const std::uint32_t v = gen.valueBytes(0, key);
        EXPECT_GE(v, spec.vmin);
        EXPECT_LE(v, spec.vmax);
        EXPECT_EQ(v, gen.valueBytes(0, key)) << "not pure";
    }
    // Tenants get independent size streams.
    bool differs = false;
    for (std::uint64_t key = 0; key < 64 && !differs; ++key)
        differs = gen.valueBytes(0, key) != gen.valueBytes(1, key);
    EXPECT_TRUE(differs);
}

TEST(LoadGen, StreamsAreDeterministicAndIndependent)
{
    TenantSpec spec;
    spec.keys = 1000;
    LoadGen a({spec}, 4, 42);
    LoadGen b({spec}, 4, 42);

    std::vector<Request> ba(256), bb(256);
    a.fill(2, ba);
    b.fill(2, bb);
    for (std::size_t i = 0; i < ba.size(); ++i) {
        EXPECT_EQ(ba[i].key, bb[i].key);
        EXPECT_EQ(ba[i].isPut, bb[i].isPut);
        EXPECT_EQ(ba[i].valueBytes, bb[i].valueBytes);
    }

    // A different stream draws a different sequence.
    std::vector<Request> other(256);
    a.fill(3, other);
    bool differs = false;
    for (std::size_t i = 0; i < other.size() && !differs; ++i)
        differs = other[i].key != ba[i].key;
    EXPECT_TRUE(differs);
}

// --- parseTenantSpec ----------------------------------------------

TEST(TenantSpecParse, SetsNamedFieldsAndKeepsBaseDefaults)
{
    TenantSpec spec;
    spec.keys = 111;
    const Status st = parseTenantSpec(
        "zipf=0.8,get=0.9,vmin=32,vmax=64,weight=2,slo-hit=0.5,"
        "floor=0.25",
        spec);
    ASSERT_TRUE(st.ok()) << st.message();
    EXPECT_EQ(spec.keys, 111u) << "unset key must keep the base";
    EXPECT_DOUBLE_EQ(spec.zipf, 0.8);
    EXPECT_DOUBLE_EQ(spec.getFrac, 0.9);
    EXPECT_EQ(spec.vmin, 32u);
    EXPECT_EQ(spec.vmax, 64u);
    EXPECT_DOUBLE_EQ(spec.weight, 2.0);
    EXPECT_DOUBLE_EQ(spec.sloHit, 0.5);
    EXPECT_DOUBLE_EQ(spec.floorFrac, 0.25);
}

TEST(TenantSpecParse, RejectsBadInput)
{
    TenantSpec spec;
    EXPECT_FALSE(parseTenantSpec("bogus=1", spec).ok());
    EXPECT_FALSE(parseTenantSpec("keys=0", spec).ok());
    EXPECT_FALSE(parseTenantSpec("get=1.5", spec).ok());
    EXPECT_FALSE(parseTenantSpec("vmin=100,vmax=50", spec).ok());
    EXPECT_FALSE(parseTenantSpec("floor=1.0", spec).ok());
    EXPECT_FALSE(parseTenantSpec("keys", spec).ok());
}

// --- Histogram::quantile ------------------------------------------

TEST(HistogramQuantile, InterpolatesInsideTheLandingBucket)
{
    const std::vector<double> bounds = {10.0, 20.0, 40.0};
    telemetry::Histogram h(bounds);
    // 10 observations in (10, 20]: ranks spread across one bucket.
    for (int i = 0; i < 10; ++i)
        h.observe(15.0);

    // All mass in bucket (10, 20]: the median interpolates to the
    // middle of that bucket regardless of the raw values.
    EXPECT_DOUBLE_EQ(h.quantile(0.5), 15.0);
    EXPECT_DOUBLE_EQ(h.quantile(0.0), 10.0);
    EXPECT_DOUBLE_EQ(h.quantile(1.0), 20.0);
}

TEST(HistogramQuantile, FirstBucketStartsAtZeroOverflowSaturates)
{
    const std::vector<double> bounds = {100.0, 200.0};
    telemetry::Histogram h(bounds);
    h.observe(50.0);   // first bucket
    h.observe(1000.0); // overflow

    EXPECT_DOUBLE_EQ(h.quantile(0.25), 50.0); // half of [0, 100]
    // Rank lands in the overflow bucket: saturate at the last bound.
    EXPECT_DOUBLE_EQ(h.quantile(0.99), 200.0);
    // Out-of-range q is clamped.
    EXPECT_DOUBLE_EQ(h.quantile(-1.0), h.quantile(0.0));

    telemetry::Histogram empty(bounds);
    EXPECT_DOUBLE_EQ(empty.quantile(0.5), 0.0);
}

TEST(HistogramQuantile, ExponentialBoundsBuildTheLatencyLadder)
{
    const auto bounds =
        telemetry::Histogram::exponentialBounds(512.0, 2.0, 4);
    ASSERT_EQ(bounds.size(), 4u);
    EXPECT_DOUBLE_EQ(bounds[0], 512.0);
    EXPECT_DOUBLE_EQ(bounds[3], 4096.0);
    EXPECT_TRUE(std::is_sorted(bounds.begin(), bounds.end()));
}

// --- Equation 1 fallback counter ----------------------------------

TEST(Eq1Fallback, NoDonorFallbacksAreCounted)
{
    // Every tenant at or below target: raw E all clamp to zero and
    // the distribution falls back to miss shares — one activation.
    Eq1Stats stats;
    const auto e = evictionDistribution({0.2, 0.2}, {0.5, 0.5},
                                        {0.75, 0.25}, 1024, 64,
                                        &stats);
    EXPECT_EQ(stats.fallbackActivations, 1u);
    EXPECT_DOUBLE_EQ(e[0], 0.75);
    EXPECT_DOUBLE_EQ(e[1], 0.25);

    // Zero misses as well: uniform fallback, still one activation.
    Eq1Stats stats2;
    const auto u = evictionDistribution({0.2, 0.2}, {0.5, 0.5},
                                        {0.0, 0.0}, 1024, 64,
                                        &stats2);
    EXPECT_EQ(stats2.fallbackActivations, 1u);
    EXPECT_DOUBLE_EQ(u[0], 0.5);

    // A live donor: no fallback counted.
    Eq1Stats stats3;
    evictionDistribution({0.8, 0.2}, {0.5, 0.5}, {0.5, 0.5}, 1024,
                         64, &stats3);
    EXPECT_EQ(stats3.fallbackActivations, 0u);
}

// --- target policies ----------------------------------------------

namespace
{

TenantSnapshot
snapshotOf(std::uint64_t capacity,
           std::vector<std::uint64_t> occupancy,
           std::vector<std::uint64_t> hits,
           std::vector<std::uint64_t> misses,
           std::vector<std::uint64_t> shadow)
{
    TenantSnapshot snap;
    snap.capacityBytes = capacity;
    snap.avgObjectBytes = 1;
    snap.occupancyBytes = std::move(occupancy);
    snap.hits = std::move(hits);
    snap.misses = std::move(misses);
    snap.shadowHits = std::move(shadow);
    return snap;
}

} // namespace

TEST(TenantPolicies, FairSharesFollowWeights)
{
    auto policy =
        makeTenantPolicy('F', {{1.0, 0, 0}, {3.0, 0, 0}});
    ASSERT_NE(policy, nullptr);
    const auto t = policy->computeTargets(
        snapshotOf(1000, {500, 500}, {10, 10}, {10, 10}, {0, 0}));
    ASSERT_EQ(t.size(), 2u);
    EXPECT_DOUBLE_EQ(t[0], 0.25);
    EXPECT_DOUBLE_EQ(t[1], 0.75);
}

TEST(TenantPolicies, HitMaxRewardsDemonstratedReuse)
{
    auto policy = makeTenantPolicy('H', {{}, {}});
    ASSERT_NE(policy, nullptr);
    // Tenant 1 shows far more reuse (hits + shadow hits).
    const auto t = policy->computeTargets(snapshotOf(
        1000, {500, 500}, {100, 900}, {50, 50}, {0, 200}));
    ASSERT_EQ(t.size(), 2u);
    EXPECT_GT(t[1], t[0]);
    EXPECT_NEAR(t[0] + t[1], 1.0, 1e-12);
}

TEST(TenantPolicies, QosFloorsAreGuaranteed)
{
    auto policy = makeTenantPolicy(
        'Q', {{1.0, 0.6, 0}, {1.0, 0.0, 0}});
    ASSERT_NE(policy, nullptr);
    const auto t = policy->computeTargets(
        snapshotOf(1000, {100, 900}, {10, 990}, {10, 10}, {0, 0}));
    ASSERT_EQ(t.size(), 2u);
    EXPECT_GE(t[0], 0.6);
    EXPECT_NEAR(t[0] + t[1], 1.0, 1e-12);
}

TEST(TenantPolicies, UnknownKindReturnsNull)
{
    EXPECT_EQ(makeTenantPolicy('X', {}), nullptr);
}

// --- TenantArbiter ------------------------------------------------

TEST(TenantArbiter, StartsUniformAndRecomputesEq1)
{
    TenantArbiter arbiter(
        4, makeTenantPolicy('F', std::vector<TenantQos>(4)), 1234);
    for (const double e : arbiter.evictionProbs())
        EXPECT_DOUBLE_EQ(e, 0.25);

    // Fair targets are uniform (0.25); tenant 0 is over target and
    // must absorb most of the eviction probability.
    arbiter.recompute(snapshotOf(1000, {400, 300, 200, 100},
                                 {100, 100, 100, 100},
                                 {100, 100, 100, 100},
                                 {0, 0, 0, 0}));
    EXPECT_EQ(arbiter.recomputes(), 1u);
    const auto &e = arbiter.evictionProbs();
    double sum = 0.0;
    for (const double v : e)
        sum += v;
    EXPECT_NEAR(sum, 1.0, 1e-12);
    EXPECT_GT(e[0], e[1]);
    EXPECT_GT(e[1], e[2]);
    EXPECT_GT(e[2], e[3]);
    // Tenant 3 is far under target: never evicted.
    EXPECT_DOUBLE_EQ(e[3], 0.0);
    EXPECT_EQ(arbiter.eq1Fallbacks(), 0u);
}

TEST(TenantArbiter, VictimSamplingMatchesTheDistribution)
{
    TenantArbiter arbiter(
        4, makeTenantPolicy('F', std::vector<TenantQos>(4)), 1234);
    arbiter.recompute(snapshotOf(1000, {400, 300, 200, 100},
                                 {100, 100, 100, 100},
                                 {100, 100, 100, 100},
                                 {0, 0, 0, 0}));
    const std::vector<double> e = arbiter.evictionProbs();

    constexpr std::uint32_t kDraws = 200000;
    std::vector<std::uint32_t> counts(4, 0);
    for (std::uint32_t i = 0; i < kDraws; ++i)
        ++counts[arbiter.sampleVictimTenant()];

    // Pearson chi-square over the cells with mass, alpha 0.001.
    // Critical values: df 1: 10.828, df 2: 13.816, df 3: 16.266.
    static const double kCritical[] = {0.0, 10.828, 13.816, 16.266};
    double chi2 = 0.0;
    std::size_t cells = 0;
    for (std::size_t t = 0; t < e.size(); ++t) {
        const double expected = e[t] * kDraws;
        if (expected < 1e-9) {
            EXPECT_EQ(counts[t], 0u) << "mass-less tenant sampled";
            continue;
        }
        ++cells;
        const double d = double(counts[t]) - expected;
        chi2 += d * d / expected;
    }
    ASSERT_GE(cells, 2u);
    EXPECT_LT(chi2, kCritical[cells - 1]);
}

TEST(TenantArbiter, AllBelowTargetFallsBackAndCounts)
{
    TenantArbiter arbiter(
        2, makeTenantPolicy('F', std::vector<TenantQos>(2)), 99);
    // Both tenants far under their fair 0.5 target.
    arbiter.recompute(
        snapshotOf(1000, {100, 100}, {10, 10}, {30, 10}, {0, 0}));
    EXPECT_EQ(arbiter.eq1Fallbacks(), 1u);
    // Fallback is miss-share proportional.
    EXPECT_NEAR(arbiter.evictionProbs()[0], 0.75, 1e-12);
}
