/**
 * @file
 * Tests for UCP's lookahead partitioning algorithm.
 */

#include <gtest/gtest.h>

#include "policies/lookahead.hh"

using namespace prism;

namespace
{

std::uint32_t
sum(const std::vector<std::uint32_t> &v)
{
    std::uint32_t s = 0;
    for (auto x : v)
        s += x;
    return s;
}

} // namespace

TEST(LookaheadHits, CumulativeWithInterpolation)
{
    const std::vector<double> curve{10, 6, 4, 2};
    EXPECT_DOUBLE_EQ(lookaheadHitsAt(curve, 0, 1), 0.0);
    EXPECT_DOUBLE_EQ(lookaheadHitsAt(curve, 2, 1), 16.0);
    EXPECT_DOUBLE_EQ(lookaheadHitsAt(curve, 4, 1), 22.0);
    // Half-way allocations interpolate linearly.
    EXPECT_DOUBLE_EQ(lookaheadHitsAt(curve, 1, 2), 5.0);
    EXPECT_DOUBLE_EQ(lookaheadHitsAt(curve, 3, 2), 13.0);
}

TEST(LookaheadHits, BeyondCurveSaturates)
{
    const std::vector<double> curve{5, 5};
    EXPECT_DOUBLE_EQ(lookaheadHitsAt(curve, 10, 1), 10.0);
}

TEST(Lookahead, AllocationSumsToTotal)
{
    const std::vector<std::vector<double>> curves{
        {10, 8, 6, 4, 2, 1, 0, 0},
        {5, 5, 5, 5, 5, 5, 5, 5},
        {20, 0, 0, 0, 0, 0, 0, 0},
        {0, 0, 0, 0, 0, 0, 0, 0},
    };
    const auto alloc = lookaheadPartition(curves, 8, 1);
    EXPECT_EQ(sum(alloc), 8u);
    for (auto a : alloc)
        EXPECT_GE(a, 1u);
}

TEST(Lookahead, GreedyPrefersSteepCurve)
{
    // Core 0 gains nothing; core 1 gains a lot per way.
    const std::vector<std::vector<double>> curves{
        {0, 0, 0, 0},
        {100, 100, 100, 100},
    };
    const auto alloc = lookaheadPartition(curves, 4, 1);
    EXPECT_EQ(alloc[0], 1u);
    EXPECT_EQ(alloc[1], 3u);
}

TEST(Lookahead, LooksAheadPastPlateau)
{
    // Core 0 has a cliff: nothing for 2 ways, then a big payoff at
    // way 3. A purely greedy-by-single-way algorithm would starve it;
    // lookahead's max-marginal-utility-per-way must see past the
    // plateau when the payoff is large enough.
    const std::vector<std::vector<double>> curves{
        {0, 0, 300, 0, 0, 0},
        {10, 10, 10, 10, 10, 10},
    };
    const auto alloc = lookaheadPartition(curves, 6, 1);
    EXPECT_GE(alloc[0], 3u);
}

TEST(Lookahead, ZeroGainSplitsEvenly)
{
    const std::vector<std::vector<double>> curves{
        {0, 0, 0, 0},
        {0, 0, 0, 0},
    };
    const auto alloc = lookaheadPartition(curves, 8, 1);
    EXPECT_EQ(alloc[0], 4u);
    EXPECT_EQ(alloc[1], 4u);
}

TEST(Lookahead, FineGranularityRefines)
{
    // With interpolation, a core whose curve saturates after one way
    // can receive fractional units beyond its knee only if others
    // gain even less.
    const std::vector<std::vector<double>> curves{
        {100, 10, 0, 0},
        {60, 50, 40, 20},
    };
    const auto coarse = lookaheadPartition(curves, 4, 1);
    const auto fine = lookaheadPartition(curves, 16, 4);
    EXPECT_EQ(sum(fine), 16u);
    // Fine-grained allocation shifts space toward core 1's long
    // tail relative to coarse rounding.
    const double frac_core1_coarse = coarse[1] / 4.0;
    const double frac_core1_fine = fine[1] / 16.0;
    EXPECT_GE(frac_core1_fine, frac_core1_coarse - 0.26);
}

TEST(Lookahead, SingleCoreTakesAll)
{
    const std::vector<std::vector<double>> curves{{1, 1, 1, 1}};
    const auto alloc = lookaheadPartition(curves, 16, 1);
    EXPECT_EQ(alloc[0], 16u);
}

TEST(Lookahead, ManyCoresOneWayEach)
{
    // cores == ways: everyone gets the 1-way minimum.
    std::vector<std::vector<double>> curves(
        8, std::vector<double>{1, 1, 1, 1, 1, 1, 1, 1});
    const auto alloc = lookaheadPartition(curves, 8, 1);
    for (auto a : alloc)
        EXPECT_EQ(a, 1u);
}
