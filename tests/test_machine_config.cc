/**
 * @file
 * Tests for MachineConfig::validate(): the paper configurations must
 * pass clean, and every class of misconfiguration must be reported
 * with an actionable message (instead of a crash deep inside cache
 * construction).
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "sim/machine_config.hh"

using namespace prism;

namespace
{

bool
mentions(const std::vector<std::string> &errors, const std::string &what)
{
    for (const std::string &e : errors)
        if (e.find(what) != std::string::npos)
            return true;
    return false;
}

} // namespace

TEST(MachineConfigValidate, DefaultsAreValid)
{
    EXPECT_TRUE(MachineConfig{}.validate().empty());
}

TEST(MachineConfigValidate, PaperMachinesAreValid)
{
    for (std::uint32_t cores : {4u, 8u, 16u, 32u}) {
        const auto errors = MachineConfig::forCores(cores).validate();
        EXPECT_TRUE(errors.empty())
            << cores << " cores: " << errors.front();
    }
}

TEST(MachineConfigValidate, ZeroCores)
{
    MachineConfig m;
    m.numCores = 0;
    EXPECT_TRUE(mentions(m.validate(), "numCores"));
}

TEST(MachineConfigValidate, ZeroWays)
{
    MachineConfig m;
    m.llcWays = 0;
    EXPECT_TRUE(mentions(m.validate(), "llcWays"));
}

TEST(MachineConfigValidate, NonPowerOfTwoBlockBytes)
{
    MachineConfig m;
    m.blockBytes = 48;
    EXPECT_TRUE(mentions(m.validate(), "power of two"));
}

TEST(MachineConfigValidate, IndivisibleLlcBytes)
{
    MachineConfig m;
    m.llcBytes = (4ull << 20) + 100;
    EXPECT_TRUE(mentions(m.validate(), "llcBytes"));
}

TEST(MachineConfigValidate, NonPowerOfTwoSetCount)
{
    MachineConfig m;
    m.llcBytes = 3ull << 20; // 3072 sets at 16 ways / 64B blocks
    EXPECT_TRUE(mentions(m.validate(), "set count"));
}

TEST(MachineConfigValidate, ZeroLlcBytes)
{
    MachineConfig m;
    m.llcBytes = 0;
    EXPECT_TRUE(mentions(m.validate(), "llcBytes"));
}

TEST(MachineConfigValidate, BadL1Geometry)
{
    MachineConfig m;
    m.l1Ways = 0;
    EXPECT_TRUE(mentions(m.validate(), "l1Ways"));

    MachineConfig m2;
    m2.l1Bytes = (64ull << 10) + 64;
    EXPECT_TRUE(mentions(m2.validate(), "l1Bytes") ||
                mentions(m2.validate(), "L1 set count"));
}

TEST(MachineConfigValidate, ZeroInstrBudget)
{
    MachineConfig m;
    m.instrBudget = 0;
    const auto errors = m.validate();
    EXPECT_TRUE(mentions(errors, "instrBudget"));
    // warmupInstr (500k default) >= instrBudget is also reported.
    EXPECT_TRUE(mentions(errors, "warmupInstr"));
}

TEST(MachineConfigValidate, WarmupNotBelowBudget)
{
    MachineConfig m;
    m.warmupInstr = m.instrBudget;
    EXPECT_TRUE(mentions(m.validate(), "warmupInstr"));
    m.warmupInstr = m.instrBudget + 1;
    EXPECT_TRUE(mentions(m.validate(), "warmupInstr"));
    m.warmupInstr = m.instrBudget - 1;
    EXPECT_TRUE(m.validate().empty());
}

TEST(MachineConfigValidate, AccumulatesMultipleErrors)
{
    MachineConfig m;
    m.numCores = 0;
    m.llcWays = 0;
    m.blockBytes = 48;
    m.instrBudget = 0;
    const auto errors = m.validate();
    EXPECT_GE(errors.size(), 4u);
}
