/**
 * @file
 * prism_doctor end-to-end: the committed verdict golden
 * (tests/golden/DOCTOR_fixture.json; regenerate with
 * PRISM_UPDATE_GOLDEN=1), FAIL exit codes on fault-forced runs, the
 * bench regression comparator against the BENCH golden, and the
 * determinism contract — `prism_bench --doctor-json` must emit
 * byte-identical verdicts at 1, 2 and 8 threads.
 */

#include <gtest/gtest.h>

#include <array>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

namespace
{

#ifndef PRISM_DOCTOR_BIN_DEFAULT
#define PRISM_DOCTOR_BIN_DEFAULT "tools/prism_doctor"
#endif
#ifndef PRISM_BENCH_BIN_DEFAULT
#define PRISM_BENCH_BIN_DEFAULT "tools/prism_bench"
#endif
#ifndef PRISM_DOCTOR_GOLDEN_DEFAULT
#define PRISM_DOCTOR_GOLDEN_DEFAULT \
    "../tests/golden/DOCTOR_fixture.json"
#endif
#ifndef PRISM_BENCH_GOLDEN_DEFAULT
#define PRISM_BENCH_GOLDEN_DEFAULT \
    "../tests/golden/BENCH_fixture.json"
#endif

/** The fixture run the DOCTOR golden was generated from. */
const char *const kFixtureRun =
    "--mix 403.gcc,186.crafty --scheme PriSM-H "
    "--instr 60000 --warmup 15000 --interval 1024";

std::string
doctorBin()
{
    if (const char *p = std::getenv("PRISM_DOCTOR_BIN"))
        return p;
    return PRISM_DOCTOR_BIN_DEFAULT;
}

std::string
benchBin()
{
    if (const char *p = std::getenv("PRISM_BENCH_BIN"))
        return p;
    return PRISM_BENCH_BIN_DEFAULT;
}

std::pair<int, std::string>
run(const std::string &cmd)
{
    FILE *pipe = popen((cmd + " 2>&1").c_str(), "r");
    EXPECT_NE(pipe, nullptr);
    std::string out;
    std::array<char, 4096> buf;
    while (std::size_t n = std::fread(buf.data(), 1, buf.size(), pipe))
        out.append(buf.data(), n);
    const int status = pclose(pipe);
    return {WEXITSTATUS(status), out};
}

std::string
slurp(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    EXPECT_TRUE(in.is_open()) << "cannot open " << path;
    std::ostringstream os;
    os << in.rdbuf();
    return os.str();
}

std::string
tempDir()
{
    char tmpl[] = "/tmp/prism_doctor_XXXXXX";
    const char *dir = mkdtemp(tmpl);
    EXPECT_NE(dir, nullptr);
    return dir;
}

} // namespace

TEST(DoctorCli, FixtureRunReproducesGoldenVerdict)
{
    const std::string dir = tempDir();
    const std::string json = dir + "/doctor.json";
    const auto [code, out] = run(doctorBin() + " --run \"" +
                                 kFixtureRun + "\" --quiet --json " +
                                 json);
    ASSERT_EQ(code, 0) << out;

    const std::string produced = slurp(json);
    if (std::getenv("PRISM_UPDATE_GOLDEN")) {
        std::ofstream golden(PRISM_DOCTOR_GOLDEN_DEFAULT,
                             std::ios::binary);
        ASSERT_TRUE(golden.is_open());
        golden << produced;
        GTEST_SKIP() << "golden updated";
    }
    const std::string golden = slurp(PRISM_DOCTOR_GOLDEN_DEFAULT);
    ASSERT_FALSE(golden.empty());
    EXPECT_EQ(golden, produced)
        << "verdict drifted from the committed golden; regenerate "
           "with PRISM_UPDATE_GOLDEN=1 if the change is intentional";

    std::remove(json.c_str());
    std::remove(dir.c_str());
}

TEST(DoctorCli, HealthyRunPrintsReportAndPasses)
{
    const auto [code, out] =
        run(doctorBin() + " --run \"" + std::string(kFixtureRun) +
            "\"");
    EXPECT_EQ(code, 0) << out;
    EXPECT_NE(out.find("tracking.converge_interval"),
              std::string::npos);
    EXPECT_NE(out.find("overall: PASS"), std::string::npos) << out;
}

TEST(DoctorCli, FaultForcedRunFails)
{
    // Aggressive seeded faults in checked mode force degraded
    // intervals / invariant repairs — the doctor must FAIL (exit 1).
    const auto [code, out] = run(
        doctorBin() +
        " --run \"--mix 403.gcc,186.crafty --scheme PriSM-H"
        " --instr 40000 --warmup 10000 --interval 200 --bits 6"
        " --checked --faults nan@2,occ@3,drop@5,quant@4,stale@7\"");
    EXPECT_EQ(code, 1) << out;
    EXPECT_NE(out.find("overall: FAIL"), std::string::npos) << out;
}

TEST(DoctorCli, CompareGoldenAgainstItselfPasses)
{
    const auto [code, out] =
        run(doctorBin() + " --compare " + PRISM_BENCH_GOLDEN_DEFAULT +
            " " + PRISM_BENCH_GOLDEN_DEFAULT);
    EXPECT_EQ(code, 0) << out;
    EXPECT_NE(out.find("overall: PASS"), std::string::npos) << out;
}

TEST(DoctorCli, ComparePerturbedFails)
{
    const std::string golden = slurp(PRISM_BENCH_GOLDEN_DEFAULT);
    ASSERT_FALSE(golden.empty());
    const std::size_t pos = golden.find("\"intervals\": ");
    ASSERT_NE(pos, std::string::npos);
    std::string perturbed = golden;
    // Bump the first digit of the value ("intervals": N...): a
    // one-count behavioural drift the gate must catch.
    char &digit = perturbed[pos + 13];
    ASSERT_TRUE(digit >= '0' && digit <= '9') << digit;
    digit = digit == '9' ? '8' : digit + 1;

    const std::string dir = tempDir();
    const std::string path = dir + "/perturbed.json";
    {
        std::ofstream f(path, std::ios::binary);
        f << perturbed;
    }
    const auto [code, out] =
        run(doctorBin() + " --compare " + PRISM_BENCH_GOLDEN_DEFAULT +
            " " + path);
    EXPECT_EQ(code, 1) << out;
    EXPECT_NE(out.find("compare.metric"), std::string::npos) << out;

    std::remove(path.c_str());
    std::remove(dir.c_str());
}

TEST(DoctorCli, UsageErrorsExitTwo)
{
    EXPECT_EQ(run(doctorBin()).first, 2);
    EXPECT_EQ(run(doctorBin() + " --no-such-flag").first, 2);
    EXPECT_EQ(run(doctorBin() + " /no/such/file.json").first, 2);
    EXPECT_EQ(run(doctorBin() + " --compare one.json").first, 2);
}

TEST(DoctorCli, BenchDoctorVerdictsAreThreadCountInvariant)
{
    const std::string dir = tempDir();
    std::array<std::string, 3> produced;
    const std::array<int, 3> threads = {1, 2, 8};
    for (std::size_t i = 0; i < threads.size(); ++i) {
        const std::string json =
            dir + "/doc" + std::to_string(threads[i]) + ".json";
        const auto [code, out] =
            run(benchBin() + " fixture --no-json --doctor-json " +
                json + " --threads " + std::to_string(threads[i]));
        ASSERT_EQ(code, 0) << out;
        produced[i] = slurp(json);
        std::remove(json.c_str());
    }
    ASSERT_FALSE(produced[0].empty());
    EXPECT_EQ(produced[0], produced[1])
        << "--doctor-json differs between 1 and 2 threads";
    EXPECT_EQ(produced[0], produced[2])
        << "--doctor-json differs between 1 and 8 threads";
    std::remove(dir.c_str());
}
