/**
 * @file
 * Smoke tests for the prism_sim command-line driver, exercised as a
 * subprocess. Located via the PRISM_SIM_BIN environment variable set
 * by CTest (falls back to the conventional build path).
 */

#include <gtest/gtest.h>

#include <array>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

namespace
{

std::string
binPath()
{
    if (const char *p = std::getenv("PRISM_SIM_BIN"))
        return p;
    return "tools/prism_sim"; // relative to the build directory
}

/** Run a command, capture stdout+stderr, return (exit, output). */
std::pair<int, std::string>
run(const std::string &args)
{
    const std::string cmd = binPath() + " " + args + " 2>&1";
    FILE *pipe = popen(cmd.c_str(), "r");
    EXPECT_NE(pipe, nullptr);
    std::string out;
    std::array<char, 4096> buf;
    while (std::size_t n = std::fread(buf.data(), 1, buf.size(), pipe))
        out.append(buf.data(), n);
    const int status = pclose(pipe);
    return {WEXITSTATUS(status), out};
}

std::string
slurp(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    EXPECT_TRUE(in) << "missing " << path;
    std::ostringstream os;
    os << in.rdbuf();
    return os.str();
}

} // namespace

TEST(Cli, HelpExitsCleanly)
{
    const auto [code, out] = run("--help");
    EXPECT_EQ(code, 0);
    EXPECT_NE(out.find("--scheme"), std::string::npos);
}

TEST(Cli, ListBenchmarks)
{
    const auto [code, out] = run("--list-benchmarks");
    EXPECT_EQ(code, 0);
    EXPECT_NE(out.find("179.art"), std::string::npos);
    EXPECT_NE(out.find("streaming"), std::string::npos);
}

TEST(Cli, ListWorkloads)
{
    const auto [code, out] = run("--list-workloads");
    EXPECT_EQ(code, 0);
    EXPECT_NE(out.find("Q7:"), std::string::npos);
    EXPECT_NE(out.find("T14:"), std::string::npos);
}

TEST(Cli, RunsTinyWorkload)
{
    const auto [code, out] = run(
        "--mix 403.gcc,186.crafty --scheme PriSM-H "
        "--instr 50000 --warmup 10000");
    EXPECT_EQ(code, 0);
    EXPECT_NE(out.find("ANTT"), std::string::npos);
    EXPECT_NE(out.find("PriSM-H"), std::string::npos);
}

TEST(Cli, CsvModeIsMachineReadable)
{
    const auto [code, out] = run(
        "--mix 403.gcc,186.crafty --scheme LRU "
        "--instr 50000 --warmup 10000 --csv");
    EXPECT_EQ(code, 0);
    EXPECT_NE(out.find("core,benchmark,IPC"), std::string::npos);
}

TEST(Cli, StatsFlagDumpsCounters)
{
    const auto [code, out] = run(
        "--mix 403.gcc,186.crafty --scheme LRU "
        "--instr 50000 --warmup 10000 --stats");
    EXPECT_EQ(code, 0);
    EXPECT_NE(out.find("system.llc.total_misses"), std::string::npos);
}

TEST(Cli, StatsJsonWritesSchemaFile)
{
    const std::string path = testing::TempDir() + "cli_stats.json";
    const auto [code, out] = run(
        "--mix 403.gcc,186.crafty --scheme PriSM-H "
        "--instr 50000 --warmup 10000 --stats-json " + path);
    EXPECT_EQ(code, 0);
    const std::string json = slurp(path);
    EXPECT_NE(json.find("\"prism-stats-v1\""), std::string::npos);
    EXPECT_NE(json.find("\"total_misses\""), std::string::npos);
    EXPECT_NE(json.find("\"recomputes\""), std::string::npos);
    std::remove(path.c_str());
}

TEST(Cli, TraceFilesAreDeterministic)
{
    const std::string a = testing::TempDir() + "cli_trace_a.json";
    const std::string b = testing::TempDir() + "cli_trace_b.json";
    const std::string args =
        "--mix 403.gcc,186.crafty --scheme PriSM-H "
        "--instr 50000 --warmup 10000 --trace ";
    EXPECT_EQ(run(args + a).first, 0);
    EXPECT_EQ(run(args + b).first, 0);
    const std::string trace = slurp(a);
    EXPECT_NE(trace.find("\"traceEvents\""), std::string::npos);
    EXPECT_NE(trace.find("prism-trace-v1"), std::string::npos);
    EXPECT_EQ(trace, slurp(b)) << "--trace output is not stable";
    std::remove(a.c_str());
    std::remove(b.c_str());
}

TEST(Cli, TraceCapacityZeroFails)
{
    const auto [code, out] = run(
        "--mix 403.gcc,186.crafty --instr 50000 --warmup 10000 "
        "--trace-capacity 0");
    EXPECT_EQ(code, 2);
}

TEST(Cli, UnknownSchemeFails)
{
    const auto [code, out] = run("--scheme Bogus --instr 1000");
    EXPECT_NE(code, 0);
    EXPECT_NE(out.find("unknown scheme"), std::string::npos);
}

TEST(Cli, UnknownOptionFails)
{
    const auto [code, out] = run("--frobnicate");
    EXPECT_EQ(code, 2);
    EXPECT_NE(out.find("usage"), std::string::npos);
}

TEST(Cli, MalformedNumberFails)
{
    const auto [code, out] = run("--instr 12x34");
    EXPECT_EQ(code, 2);
    EXPECT_NE(out.find("12x34"), std::string::npos);
}

TEST(Cli, MixCoreCountMismatchFails)
{
    const auto [code, out] =
        run("--cores 4 --mix 403.gcc,186.crafty --instr 50000 "
            "--warmup 10000");
    EXPECT_EQ(code, 2);
    EXPECT_NE(out.find("--mix"), std::string::npos);
}

TEST(Cli, BadFaultSpecFails)
{
    const auto [code, out] = run(
        "--mix 403.gcc,186.crafty --instr 50000 --warmup 10000 "
        "--faults zap@3");
    EXPECT_EQ(code, 2);
    EXPECT_NE(out.find("unknown fault kind"), std::string::npos);

    const auto [code2, out2] = run(
        "--mix 403.gcc,186.crafty --instr 50000 --warmup 10000 "
        "--faults nan@0");
    EXPECT_EQ(code2, 2);
}

TEST(Cli, ExecFaultKindRejectedInSimSpec)
{
    // job_crash/job_stall/torn_write/alloc_fail target the sweep
    // execution layer; the per-run --faults spec must refuse them.
    const auto [code, out] = run(
        "--mix 403.gcc,186.crafty --instr 50000 --warmup 10000 "
        "--faults job_crash@3");
    EXPECT_NE(code, 0);
    EXPECT_NE(out.find("exec-level fault kind"), std::string::npos);
}

TEST(Cli, InvalidConfigurationFails)
{
    const auto [code, out] = run(
        "--mix 403.gcc,186.crafty --instr 1000 --warmup 50000");
    EXPECT_EQ(code, 2);
    EXPECT_NE(out.find("warmupInstr"), std::string::npos);
}

TEST(Cli, CheckedFaultRunReportsRobustness)
{
    const auto [code, out] = run(
        "--mix 403.gcc,186.crafty --scheme PriSM-H "
        "--instr 40000 --warmup 10000 --interval 200 "
        "--checked --faults nan@2,occ@3,drop@5");
    EXPECT_EQ(code, 0);
    EXPECT_NE(out.find("robustness:"), std::string::npos);
    EXPECT_EQ(out.find("robustness: 0 faults"), std::string::npos);
}
