/**
 * @file
 * Tests for the trace-file access generator.
 */

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <fstream>

#include "workload/trace_generator.hh"

using namespace prism;

namespace
{

/** RAII temp trace file. */
struct TempTrace
{
    explicit TempTrace(const std::string &contents)
    {
        path = testing::TempDir() + "prism_trace_" +
               std::to_string(::getpid()) + "_" +
               std::to_string(counter++) + ".txt";
        std::ofstream out(path);
        out << contents;
    }

    ~TempTrace() { std::remove(path.c_str()); }

    std::string path;
    static int counter;
};

int TempTrace::counter = 0;

} // namespace

TEST(TraceGenerator, ReplaysInOrder)
{
    TraceFileGenerator g(std::vector<Addr>{10, 20, 30}, 0);
    EXPECT_EQ(g.next() & 0xFFFF, 10u);
    EXPECT_EQ(g.next() & 0xFFFF, 20u);
    EXPECT_EQ(g.next() & 0xFFFF, 30u);
}

TEST(TraceGenerator, LoopsAtEnd)
{
    TraceFileGenerator g(std::vector<Addr>{1, 2}, 0);
    g.next();
    g.next();
    EXPECT_EQ(g.loops(), 1u);
    EXPECT_EQ(g.next() & 0xFFFF, 1u);
}

TEST(TraceGenerator, ParsesDecimalAndHex)
{
    TempTrace t("100\n0x200\n# a comment\n300 # trailing comment\n\n");
    TraceFileGenerator g(t.path, 0);
    EXPECT_EQ(g.size(), 3u);
    EXPECT_EQ(g.next() & 0xFFFF, 100u);
    EXPECT_EQ(g.next() & 0xFFFF, 0x200u);
    EXPECT_EQ(g.next() & 0xFFFF, 300u);
}

TEST(TraceGenerator, StreamTagKeepsCoresDisjoint)
{
    TraceFileGenerator a(std::vector<Addr>{42}, 0),
        b(std::vector<Addr>{42}, 1);
    EXPECT_NE(a.next(), b.next());
}

TEST(TraceGenerator, PreservesSetMapping)
{
    // Low 40 bits pass through so the trace's set distribution is
    // preserved exactly.
    TraceFileGenerator g(std::vector<Addr>{0x123456789ULL}, 3);
    EXPECT_EQ(g.next() & 0xFFFFFFFFFFULL, 0x123456789ULL);
}

TEST(TraceGenerator, MissingFileIsFatal)
{
    EXPECT_DEATH(TraceFileGenerator("/nonexistent/trace.txt", 0),
                 "cannot open");
}

TEST(TraceGenerator, EmptyTraceIsFatal)
{
    TempTrace t("# only comments\n");
    EXPECT_DEATH(TraceFileGenerator(t.path, 0), "no addresses");
}

TEST(TraceGenerator, BadTokenIsFatal)
{
    TempTrace t("123\nnot_a_number\n");
    EXPECT_DEATH(TraceFileGenerator(t.path, 0), "bad address");
}
