/**
 * @file
 * Tests for the bench-harness table formatter.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "common/table.hh"

using namespace prism;

TEST(Table, FormatsAlignedColumns)
{
    Table t({"name", "value"});
    t.addRow({"a", "1"});
    t.addRow({"longer", "2.5"});
    std::ostringstream os;
    t.print(os);
    const std::string out = os.str();
    EXPECT_NE(out.find("name"), std::string::npos);
    EXPECT_NE(out.find("longer"), std::string::npos);
    // All lines should have equal visual width for the header row and
    // the separator.
    EXPECT_NE(out.find("----"), std::string::npos);
}

TEST(Table, CsvOutput)
{
    Table t({"x", "y"});
    t.addRow({"1", "2"});
    std::ostringstream os;
    t.printCsv(os);
    EXPECT_EQ(os.str(), "x,y\n1,2\n");
}

TEST(Table, NumFormatting)
{
    EXPECT_EQ(Table::num(1.23456, 2), "1.23");
    EXPECT_EQ(Table::num(2.0, 0), "2");
}

TEST(Table, PctFormatting)
{
    EXPECT_EQ(Table::pct(0.187), "18.7%");
    EXPECT_EQ(Table::pct(-0.05), "-5.0%");
}

TEST(Table, RowCount)
{
    Table t({"a"});
    EXPECT_EQ(t.rows(), 0u);
    t.addRow({"1"});
    t.addRow({"2"});
    EXPECT_EQ(t.rows(), 2u);
}
