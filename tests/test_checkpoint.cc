/**
 * @file
 * Tests for crash-safe checkpointing (src/exec/checkpoint) and the
 * atomic file writer: sweep fingerprint binding, the bit-exact
 * RunResult JSON round trip behind --resume byte-identity, corrupt
 * checkpoint rejection, flush cadence, and the torn_write chaos hook
 * that produces exactly the corruption the atomic path prevents.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <limits>
#include <sstream>
#include <string>

#include "common/atomic_file.hh"
#include "exec/checkpoint.hh"

using namespace prism;

namespace
{

MachineConfig
tinyMachine()
{
    MachineConfig m;
    m.numCores = 2;
    m.llcBytes = 64ull << 10;
    m.llcWays = 4;
    m.intervalMisses = 200;
    m.instrBudget = 60'000;
    m.warmupInstr = 15'000;
    return m;
}

SweepSpec
tinySpec(const std::string &name = "ckpt-test")
{
    SweepSpec spec;
    spec.name = name;
    const MachineConfig m = tinyMachine();
    const Workload w{"GF", {"403.gcc", "186.crafty"}};
    spec.add(m, w, SchemeKind::Baseline);
    spec.add(m, w, SchemeKind::PrismH);
    spec.add(m, w, SchemeKind::FairWP);
    return spec;
}

/** A fully populated result; no simulation needed. */
RunResult
fakeResult(double ipc0 = 0.75)
{
    RunResult r;
    r.workload = "GF";
    r.scheme = "PriSM-H";
    r.benchmarks = {"403.gcc", "186.crafty"};
    r.ipc = {ipc0, 0.5};
    r.ipcStandalone = {0.9, 0.8};
    r.llcMisses = {1234, 5678};
    r.llcHits = {4321, 8765};
    r.occupancyAtFinish = {0.4, 0.6};
    r.intervals = 42;
    r.victimlessFraction = 0.125;
    r.evProbMean = {0.3, 0.7};
    r.evProbStddev = {0.01, 0.02};
    r.recomputes = 40;
    r.faultsInjected = 3;
    r.degradedIntervals = 2;
    r.invariantViolations = 1;
    r.ownershipRepairs = 1;
    r.clampedEq1Inputs = 5;
    r.droppedRecomputes = 2;
    r.fallbackEntries = 0;
    return r;
}

std::string
serialise(const RunResult &r)
{
    std::ostringstream os;
    JsonWriter w(os);
    w.beginObject();
    writeRunResultFields(w, r);
    w.endObject();
    return os.str();
}

std::string
tmpPath(const std::string &name)
{
    return testing::TempDir() + name;
}

std::string
slurp(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    EXPECT_TRUE(in) << "missing " << path;
    std::ostringstream os;
    os << in.rdbuf();
    return os.str();
}

} // namespace

// --- sweep fingerprint ---

TEST(SweepFingerprint, StableForIdenticalSpecs)
{
    EXPECT_EQ(sweepFingerprint(tinySpec()),
              sweepFingerprint(tinySpec()));
    EXPECT_EQ(sweepFingerprint(tinySpec()).size(), 16u);
}

TEST(SweepFingerprint, SensitiveToEveryResultAffectingAxis)
{
    const std::string base = sweepFingerprint(tinySpec());

    EXPECT_NE(base, sweepFingerprint(tinySpec("other-name")));

    SweepSpec more = tinySpec();
    more.add(tinyMachine(), Workload{"SS", {"179.art", "470.lbm"}},
             SchemeKind::PrismH);
    EXPECT_NE(base, sweepFingerprint(more));

    // Machine configuration (the seed included) changes the hash.
    SweepSpec seeded;
    seeded.name = "ckpt-test";
    MachineConfig m = tinyMachine();
    m.seed = 777;
    const Workload w{"GF", {"403.gcc", "186.crafty"}};
    seeded.add(m, w, SchemeKind::Baseline);
    seeded.add(m, w, SchemeKind::PrismH);
    seeded.add(m, w, SchemeKind::FairWP);
    EXPECT_NE(base, sweepFingerprint(seeded));

    // Scheme options change the hash even when ids happen to match.
    SweepSpec opts;
    opts.name = "ckpt-test";
    SchemeOptions quantised;
    quantised.probBits = 6;
    opts.add(tinyMachine(), w, SchemeKind::Baseline);
    opts.add(tinyMachine(), w, SchemeKind::PrismH, quantised);
    opts.add(tinyMachine(), w, SchemeKind::FairWP);
    EXPECT_NE(base, sweepFingerprint(opts));
}

// --- RunResult JSON round trip ---

TEST(RunResultRoundTrip, EveryFieldSurvives)
{
    const RunResult r = fakeResult();
    JsonValue doc;
    ASSERT_TRUE(parseJson(serialise(r), doc).ok());

    RunResult back;
    const Status st = readRunResultFields(doc, back);
    ASSERT_TRUE(st.ok()) << st.message();

    EXPECT_EQ(back.workload, r.workload);
    EXPECT_EQ(back.scheme, r.scheme);
    EXPECT_EQ(back.benchmarks, r.benchmarks);
    EXPECT_EQ(back.ipc, r.ipc);
    EXPECT_EQ(back.ipcStandalone, r.ipcStandalone);
    EXPECT_EQ(back.llcMisses, r.llcMisses);
    EXPECT_EQ(back.llcHits, r.llcHits);
    EXPECT_EQ(back.occupancyAtFinish, r.occupancyAtFinish);
    EXPECT_EQ(back.intervals, r.intervals);
    EXPECT_EQ(back.victimlessFraction, r.victimlessFraction);
    EXPECT_EQ(back.evProbMean, r.evProbMean);
    EXPECT_EQ(back.evProbStddev, r.evProbStddev);
    EXPECT_EQ(back.recomputes, r.recomputes);
    EXPECT_EQ(back.faultsInjected, r.faultsInjected);
    EXPECT_EQ(back.degradedIntervals, r.degradedIntervals);
    EXPECT_EQ(back.invariantViolations, r.invariantViolations);
    EXPECT_EQ(back.ownershipRepairs, r.ownershipRepairs);
    EXPECT_EQ(back.clampedEq1Inputs, r.clampedEq1Inputs);
    EXPECT_EQ(back.droppedRecomputes, r.droppedRecomputes);
    EXPECT_EQ(back.fallbackEntries, r.fallbackEntries);
    EXPECT_EQ(back.recorder, nullptr);
}

TEST(RunResultRoundTrip, ReserialisationIsByteIdentical)
{
    // The property --resume byte-identity rests on: serialise,
    // restore, serialise again — identical bytes, NaN included
    // (non-finite doubles pass through JSON null).
    RunResult r = fakeResult();
    r.ipc[1] = std::numeric_limits<double>::quiet_NaN();
    r.victimlessFraction =
        std::numeric_limits<double>::quiet_NaN();

    const std::string first = serialise(r);
    JsonValue doc;
    ASSERT_TRUE(parseJson(first, doc).ok());
    RunResult back;
    ASSERT_TRUE(readRunResultFields(doc, back).ok());
    EXPECT_TRUE(std::isnan(back.ipc[1]));
    EXPECT_TRUE(std::isnan(back.victimlessFraction));
    EXPECT_EQ(serialise(back), first);
}

// --- corrupt checkpoint rejection ---

TEST(LoadCheckpoint, MissingFileFails)
{
    CheckpointData data;
    EXPECT_FALSE(
        loadCheckpoint(tmpPath("no_such.ckpt.json"), data).ok());
}

TEST(LoadCheckpoint, RejectsCorruptDocuments)
{
    const struct
    {
        const char *name;
        const char *payload;
    } cases[] = {
        {"truncated", "{\"schema\": \"prism-ckpt-v1\", \"swe"},
        {"wrong_schema", "{\"schema\": \"prism-bench-v1\"}"},
        {"missing_jobs",
         "{\"schema\": \"prism-ckpt-v1\", \"sweep\": \"s\","
         " \"fingerprint\": \"f\"}"},
        {"unknown_failure_kind",
         "{\"schema\": \"prism-ckpt-v1\", \"sweep\": \"s\","
         " \"fingerprint\": \"f\", \"jobs\": [{\"id\": \"j\","
         " \"attempts\": 2, \"failures\":"
         " [{\"kind\": \"gremlin\", \"message\": \"x\"}],"
         " \"result\": {}}]}"},
    };
    for (const auto &c : cases) {
        const std::string path =
            tmpPath(std::string("corrupt_") + c.name + ".ckpt.json");
        {
            std::ofstream out(path, std::ios::trunc);
            out << c.payload;
        }
        CheckpointData data;
        const Status st = loadCheckpoint(path, data);
        EXPECT_FALSE(st.ok()) << c.name;
        EXPECT_NE(st.message().find("corrupt checkpoint"),
                  std::string::npos)
            << c.name << ": " << st.message();
        std::remove(path.c_str());
    }
}

// --- the checkpoint writer ---

TEST(CheckpointWriter, RecordFlushLoadRoundTrip)
{
    const SweepSpec spec = tinySpec();
    const std::string path = tmpPath("writer_rt.ckpt.json");
    CheckpointWriter writer(path, spec);

    JobReport clean;
    JobReport recovered;
    recovered.state = JobState::Recovered;
    recovered.attempts = 3;
    recovered.failures = {
        {JobErrorKind::Transient, "crash one"},
        {JobErrorKind::Timeout, "deadline"},
    };

    ASSERT_TRUE(writer.record(0, fakeResult(0.7), clean).ok());
    ASSERT_TRUE(writer.record(2, fakeResult(0.8), recovered).ok());
    EXPECT_EQ(writer.flushes(), 2u);

    CheckpointData data;
    const Status st = loadCheckpoint(path, data);
    ASSERT_TRUE(st.ok()) << st.message();
    EXPECT_EQ(data.sweep, spec.name);
    EXPECT_EQ(data.fingerprint, sweepFingerprint(spec));
    ASSERT_EQ(data.jobs.size(), 2u);
    // Spec order, not completion order.
    EXPECT_EQ(data.jobs[0].id, spec.jobs[0].id);
    EXPECT_EQ(data.jobs[1].id, spec.jobs[2].id);
    EXPECT_EQ(data.jobs[0].attempts, 1u);
    EXPECT_EQ(data.jobs[1].attempts, 3u);
    ASSERT_EQ(data.jobs[1].failures.size(), 2u);
    EXPECT_EQ(data.jobs[1].failures[0].kind, JobErrorKind::Transient);
    EXPECT_EQ(data.jobs[1].failures[0].message, "crash one");
    EXPECT_EQ(data.jobs[1].failures[1].kind, JobErrorKind::Timeout);
    EXPECT_EQ(data.jobs[1].result.ipc[0], 0.8);
    std::remove(path.c_str());
}

TEST(CheckpointWriter, FlushCadenceBatchesWrites)
{
    const SweepSpec spec = tinySpec();
    const std::string path = tmpPath("writer_cadence.ckpt.json");
    CheckpointWriter::Options options;
    options.every = 2;
    CheckpointWriter writer(path, spec, options);

    JobReport report;
    ASSERT_TRUE(writer.record(0, fakeResult(), report).ok());
    EXPECT_EQ(writer.flushes(), 0u) << "first record must batch";
    ASSERT_TRUE(writer.record(1, fakeResult(), report).ok());
    EXPECT_EQ(writer.flushes(), 1u);

    ASSERT_TRUE(writer.record(2, fakeResult(), report).ok());
    EXPECT_EQ(writer.flushes(), 1u);
    ASSERT_TRUE(writer.flush().ok());
    EXPECT_EQ(writer.flushes(), 2u);

    CheckpointData data;
    ASSERT_TRUE(loadCheckpoint(path, data).ok());
    EXPECT_EQ(data.jobs.size(), 3u);
    std::remove(path.c_str());
}

TEST(CheckpointWriter, SeededEntriesFlushWithoutCountingCadence)
{
    const SweepSpec spec = tinySpec();
    const std::string path = tmpPath("writer_seed.ckpt.json");
    CheckpointWriter::Options options;
    options.every = 2;
    CheckpointWriter writer(path, spec, options);

    JobReport restored;
    restored.restored = true;
    writer.seed(0, fakeResult(), restored);
    EXPECT_EQ(writer.flushes(), 0u);

    JobReport report;
    ASSERT_TRUE(writer.record(1, fakeResult(), report).ok());
    EXPECT_EQ(writer.flushes(), 0u)
        << "seeded entries must not advance the flush cadence";
    ASSERT_TRUE(writer.record(2, fakeResult(), report).ok());
    EXPECT_EQ(writer.flushes(), 1u);

    CheckpointData data;
    ASSERT_TRUE(loadCheckpoint(path, data).ok());
    EXPECT_EQ(data.jobs.size(), 3u)
        << "seeded entries must be part of the flushed union";
    std::remove(path.c_str());
}

TEST(CheckpointWriter, EmptyFlushWritesNothing)
{
    const SweepSpec spec = tinySpec();
    const std::string path = tmpPath("writer_empty.ckpt.json");
    CheckpointWriter writer(path, spec);
    ASSERT_TRUE(writer.flush().ok());
    EXPECT_EQ(writer.flushes(), 0u);
    std::ifstream in(path);
    EXPECT_FALSE(in) << "no jobs recorded, no file expected";
}

TEST(CheckpointWriter, TornWriteChaosLeavesUnloadableFile)
{
    const SweepSpec spec = tinySpec();
    const std::string path = tmpPath("writer_torn.ckpt.json");
    CheckpointWriter::Options options;
    std::vector<FaultClause> chaos;
    ASSERT_TRUE(parseFaultSpec("torn_write@1", chaos).ok());
    options.chaos = chaos;
    CheckpointWriter writer(path, spec, options);

    JobReport report;
    ASSERT_TRUE(writer.record(0, fakeResult(), report).ok());
    EXPECT_EQ(writer.tornWrites(), 1u);

    CheckpointData data;
    const Status st = loadCheckpoint(path, data);
    EXPECT_FALSE(st.ok())
        << "a torn flush must not parse as a valid checkpoint";
    EXPECT_NE(st.message().find("corrupt checkpoint"),
              std::string::npos);
    std::remove(path.c_str());
}

// --- the atomic writer itself ---

TEST(AtomicFile, WritesAndReplacesPayloads)
{
    const std::string path = tmpPath("atomic_basic.txt");
    ASSERT_TRUE(writeFileAtomic(path, "first").ok());
    EXPECT_EQ(slurp(path), "first");
    ASSERT_TRUE(writeFileAtomic(path, "second, longer payload").ok());
    EXPECT_EQ(slurp(path), "second, longer payload");
    // No temporary residue after a successful write.
    std::ifstream tmp(path + ".tmp");
    EXPECT_FALSE(tmp);
    std::remove(path.c_str());
}

TEST(AtomicFile, StreamingOverloadMatchesPayloadOverload)
{
    const std::string a = tmpPath("atomic_stream_a.txt");
    const std::string b = tmpPath("atomic_stream_b.txt");
    ASSERT_TRUE(writeFileAtomic(a, "hello\nworld\n").ok());
    ASSERT_TRUE(writeFileAtomic(b,
                                [](std::ostream &os) {
                                    os << "hello\n"
                                       << "world\n";
                                })
                    .ok());
    EXPECT_EQ(slurp(a), slurp(b));
    std::remove(a.c_str());
    std::remove(b.c_str());
}

TEST(AtomicFile, UnwritableDestinationReportsError)
{
    const Status st =
        writeFileAtomic("/no/such/directory/file.json", "x");
    EXPECT_FALSE(st.ok());
}
