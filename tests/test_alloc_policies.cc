/**
 * @file
 * Tests for the PriSM allocation policies (Algorithms 1-3 and the
 * extended-UCP lookahead policy).
 */

#include <gtest/gtest.h>

#include "prism/alloc_fair.hh"
#include "prism/alloc_hitmax.hh"
#include "prism/alloc_lookahead.hh"
#include "prism/alloc_qos.hh"

using namespace prism;

namespace
{

/** Snapshot with symmetric cores occupying the cache evenly. */
IntervalSnapshot
baseSnap(std::uint32_t cores)
{
    IntervalSnapshot snap;
    snap.totalBlocks = 4096;
    snap.ways = 16;
    snap.intervalMisses = 2048;
    snap.cores.resize(cores);
    for (auto &c : snap.cores) {
        c.occupancyBlocks = 4096 / cores;
        c.sharedHits = 1000;
        c.sharedMisses = 2048 / cores;
        c.shadowHitsAtPosition.assign(16, 1000.0 / 16);
        c.shadowMisses = 100;
        c.instructions = 100000;
        c.cycles = 200000;
        c.llcStallCycles = 50000;
    }
    return snap;
}

double
sum(const std::vector<double> &v)
{
    double s = 0;
    for (double x : v)
        s += x;
    return s;
}

} // namespace

TEST(HitMax, SymmetricCoresGetEqualTargets)
{
    HitMaxPolicy p;
    auto snap = baseSnap(4);
    const auto t = p.computeTargets(snap);
    EXPECT_NEAR(sum(t), 1.0, 1e-9);
    for (double v : t)
        EXPECT_NEAR(v, 0.25, 1e-9);
}

TEST(HitMax, GainerReceivesMoreSpace)
{
    HitMaxPolicy p;
    auto snap = baseSnap(4);
    // Core 0 would hit 3000 stand-alone but only 1000 shared.
    snap.cores[0].shadowHitsAtPosition.assign(16, 3000.0 / 16);
    const auto t = p.computeTargets(snap);
    EXPECT_GT(t[0], 0.25);
    for (int c = 1; c < 4; ++c)
        EXPECT_LT(t[c], 0.25);
    EXPECT_NEAR(sum(t), 1.0, 1e-9);
}

TEST(HitMax, ZeroOccupancyCoreCanGrow)
{
    HitMaxPolicy p;
    auto snap = baseSnap(2);
    snap.cores[0].occupancyBlocks = 0;
    snap.cores[0].shadowHitsAtPosition.assign(16, 5000.0 / 16);
    const auto t = p.computeTargets(snap);
    EXPECT_GT(t[0], 0.0);
}

TEST(HitMax, SubsetRespectsbudget)
{
    auto snap = baseSnap(4);
    const auto t =
        HitMaxPolicy::computeTargetsSubset(snap, 1, 4, 0.6);
    EXPECT_DOUBLE_EQ(t[0], 0.0);
    EXPECT_NEAR(t[1] + t[2] + t[3], 0.6, 1e-9);
}

TEST(HitMax, ArithmeticOpsMatchPaper)
{
    HitMaxPolicy p;
    EXPECT_EQ(p.arithmeticOps(4), 20u);
    EXPECT_EQ(p.arithmeticOps(32), 160u);
}

TEST(Fair, EqualSlowdownsKeepEvenSplit)
{
    FairPolicy p;
    auto snap = baseSnap(4);
    const auto t = p.computeTargets(snap);
    for (double v : t)
        EXPECT_NEAR(v, 0.25, 1e-6);
}

TEST(Fair, SlowedCoreGetsMoreSpace)
{
    FairPolicy p;
    auto snap = baseSnap(2);
    // Core 0 stalls heavily on the LLC and its misses are 4x its
    // stand-alone estimate -> large slowdown.
    snap.cores[0].llcStallCycles = 150000;
    snap.cores[0].sharedMisses = 400;
    snap.cores[0].shadowMisses = 100;
    snap.cores[1].sharedMisses = 100;
    snap.cores[1].shadowMisses = 100;
    const auto t = p.computeTargets(snap);
    EXPECT_GT(t[0], t[1]);
}

TEST(Fair, SlowdownEstimateFormula)
{
    auto snap = baseSnap(1);
    auto &c = snap.cores[0];
    c.instructions = 100000;
    c.cycles = 300000;       // CPI_shared = 3.0
    c.llcStallCycles = 200000; // CPI_llc = 2.0, CPI_ideal = 1.0
    c.sharedMisses = 1000;
    c.shadowMisses = 250;    // stand-alone misses 4x lower
    // CPI_llc_alone = 2.0 * 0.25 = 0.5; CPI_alone = 1.5.
    EXPECT_NEAR(FairPolicy::estimatedSlowdown(snap, 0), 2.0, 1e-9);
}

TEST(Fair, FallbackWithoutTiming)
{
    auto snap = baseSnap(1);
    auto &c = snap.cores[0];
    c.instructions = 0;
    c.cycles = 0;
    c.sharedMisses = 300;
    c.shadowMisses = 100;
    EXPECT_NEAR(FairPolicy::estimatedSlowdown(snap, 0), 3.0, 1e-9);
}

TEST(Qos, GrowsWhenBelowTarget)
{
    QosPolicy p(0.9); // core 0 must reach IPC 0.9
    auto snap = baseSnap(4); // actual IPC = 0.5
    const auto t = p.computeTargets(snap);
    EXPECT_NEAR(t[0], 0.25 * 1.1, 1e-9);
    EXPECT_NEAR(sum(t), 1.0, 1e-9);
}

TEST(Qos, ShrinksWhenAboveTarget)
{
    QosParams params;
    params.beta = 0.1;
    QosPolicy p(0.3, params); // actual IPC 0.5 exceeds the target
    auto snap = baseSnap(4);
    const auto t = p.computeTargets(snap);
    EXPECT_NEAR(t[0], 0.25 * 0.9, 1e-9);
}

TEST(Qos, DeadBandHoldsAllocation)
{
    QosPolicy p(0.5); // actual IPC exactly 0.5: inside the dead band
    auto snap = baseSnap(4);
    const auto t = p.computeTargets(snap);
    EXPECT_NEAR(t[0], 0.25, 1e-9);
}

TEST(Qos, SmoothedIpcFiltersSpikes)
{
    // One noisy fast interval must not trigger a shrink by itself.
    QosPolicy p(0.5);
    auto snap = baseSnap(4); // IPC 0.5: in band, seeds the EWMA
    p.computeTargets(snap);
    auto spike = snap;
    spike.cores[0].cycles = 100000; // IPC 1.0 for one interval
    const auto t = p.computeTargets(spike);
    // EWMA = 0.75 > 0.5*1.03 -> shrink is allowed, but by beta only.
    EXPECT_GE(t[0], 0.25 * (1.0 - 0.1) - 1e-9);
}

TEST(Qos, RemainingCoresHitMaximised)
{
    QosPolicy p(0.9);
    auto snap = baseSnap(4);
    snap.cores[2].shadowHitsAtPosition.assign(16, 4000.0 / 16);
    const auto t = p.computeTargets(snap);
    EXPECT_GT(t[2], t[1]);
    EXPECT_GT(t[2], t[3]);
}

TEST(Qos, TargetClamped)
{
    QosParams params;
    params.maxFrac = 0.5;
    QosPolicy p(10.0, params); // unreachable target
    auto snap = baseSnap(2);
    snap.cores[0].occupancyBlocks = 4096 * 9 / 10;
    const auto t = p.computeTargets(snap);
    EXPECT_LE(t[0], 0.5 + 1e-9);
}

TEST(Lookahead, PolicyTargetsSumToOne)
{
    LookaheadPolicy p(4);
    auto snap = baseSnap(4);
    snap.cores[0].shadowHitsAtPosition.assign(16, 500.0);
    const auto t = p.computeTargets(snap);
    EXPECT_NEAR(sum(t), 1.0, 1e-9);
    EXPECT_GT(t[0], t[1]);
}

TEST(Policies, NamesAreStable)
{
    EXPECT_EQ(HitMaxPolicy().name(), "HitMax");
    EXPECT_EQ(FairPolicy().name(), "Fair");
    EXPECT_EQ(QosPolicy(1.0).name(), "QoS");
    EXPECT_EQ(LookaheadPolicy().name(), "LA");
}
