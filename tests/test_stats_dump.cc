/**
 * @file
 * Tests for the post-run statistics dump.
 */

#include <gtest/gtest.h>

#include <map>
#include <sstream>
#include <string>

#include "sim/system.hh"

using namespace prism;

TEST(StatsDump, ContainsAllSections)
{
    MachineConfig m = MachineConfig::forCores(4);
    m.instrBudget = 100'000;
    m.warmupInstr = 30'000;
    Workload w{"t", {"403.gcc", "186.crafty", "197.parser",
                     "462.libquantum"}};
    System sys(m, w, nullptr);
    sys.run();

    std::ostringstream os;
    sys.dumpStats(os);
    const std::string out = os.str();

    for (const char *key :
         {"system.cores 4", "system.llc.size_bytes", "system.llc.ways",
          "system.llc.total_misses", "system.llc.writebacks",
          "system.mem.read_requests", "system.mem.writebacks",
          "core0.benchmark 403.gcc", "core3.benchmark 462.libquantum",
          "core0.instructions", "core0.l1_hits",
          "core3.occupancy_blocks"})
        EXPECT_NE(out.find(key), std::string::npos) << key;
}

TEST(StatsDump, CountersAreConsistent)
{
    MachineConfig m = MachineConfig::forCores(4);
    m.instrBudget = 100'000;
    m.warmupInstr = 0;
    Workload w{"t", {"403.gcc", "186.crafty", "197.parser",
                     "462.libquantum"}};
    System sys(m, w, nullptr);
    sys.run();

    std::ostringstream os;
    sys.dumpStats(os);
    std::istringstream in(os.str());

    std::map<std::string, std::string> kv;
    std::string k, v;
    while (in >> k >> v)
        kv[k] = v;

    // Per-core hits+misses sum to the cache totals.
    std::uint64_t hits = 0, misses = 0;
    for (int c = 0; c < 4; ++c) {
        hits += std::stoull(kv["core" + std::to_string(c) +
                               ".llc_hits"]);
        misses += std::stoull(kv["core" + std::to_string(c) +
                                 ".llc_misses"]);
    }
    EXPECT_EQ(misses, std::stoull(kv["system.llc.total_misses"]));
    // Reads to DRAM equal LLC misses (no prefetching).
    EXPECT_EQ(misses, std::stoull(kv["system.mem.read_requests"]));
}
