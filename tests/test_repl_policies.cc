/**
 * @file
 * Tests for the replacement policies (LRU, TS-LRU, DIP, Random)
 * against hand-built cache sets.
 */

#include <gtest/gtest.h>

#include <set>

#include "cache/repl_policy.hh"

using namespace prism;

namespace
{

/** A hand-rolled 4-way set for driving policies directly. */
struct TestSet
{
    BlockArrays blocks{4};
    SetState state;

    SetView
    view(std::uint32_t idx = 0)
    {
        return SetView{idx, SetBlocks(blocks, 0, 4), state};
    }

    /** Mark way @p w valid and fill via the policy. */
    void
    fill(ReplacementPolicy &p, int w, std::uint32_t set_idx = 0)
    {
        blocks[static_cast<std::size_t>(w)].valid = true;
        p.onFill(view(set_idx), w);
    }
};

} // namespace

TEST(LruPolicy, EvictsLeastRecentlyUsed)
{
    auto p = makeReplPolicy(ReplKind::LRU, 1, 64);
    TestSet s;
    for (int w = 0; w < 4; ++w)
        s.fill(*p, w);
    // Fill order 0,1,2,3 -> way 0 is LRU.
    EXPECT_EQ(p->victim(s.view()), 0);
    p->onHit(s.view(), 0);
    EXPECT_EQ(p->victim(s.view()), 1);
}

TEST(LruPolicy, VictimAmongRespectsMask)
{
    auto p = makeReplPolicy(ReplKind::LRU, 1, 64);
    TestSet s;
    for (int w = 0; w < 4; ++w)
        s.fill(*p, w);
    const char allowed[4] = {0, 0, 1, 1};
    EXPECT_EQ(p->victimAmong(s.view(), std::span<const char>(allowed, 4)),
              2);
}

TEST(LruPolicy, VictimAmongEmptyMaskMeansAll)
{
    auto p = makeReplPolicy(ReplKind::LRU, 1, 64);
    TestSet s;
    for (int w = 0; w < 3; ++w)
        s.fill(*p, w);
    EXPECT_EQ(p->victim(s.view()), 0);
}

TEST(LruPolicy, NoAllowedWayGivesInvalid)
{
    auto p = makeReplPolicy(ReplKind::LRU, 1, 64);
    TestSet s;
    s.fill(*p, 0);
    const char allowed[4] = {0, 0, 0, 0};
    EXPECT_EQ(p->victimAmong(s.view(), std::span<const char>(allowed, 4)),
              invalidWay);
}

TEST(LruPolicy, EvictionOrderIsLruFirst)
{
    auto p = makeReplPolicy(ReplKind::LRU, 1, 64);
    TestSet s;
    for (int w = 0; w < 4; ++w)
        s.fill(*p, w);
    p->onHit(s.view(), 1);
    std::vector<int> order;
    p->evictionOrder(s.view(), order);
    EXPECT_EQ(order, (std::vector<int>{0, 2, 3, 1}));
}

TEST(TimestampLru, OldestBlockIsVictim)
{
    auto p = makeReplPolicy(ReplKind::TimestampLRU, 1, 64);
    TestSet s;
    for (int w = 0; w < 4; ++w) {
        s.fill(*p, w);
        // Age the set between fills so timestamps differ.
        for (int k = 0; k < 16; ++k)
            ++s.state.accesses;
    }
    EXPECT_EQ(p->victim(s.view()), 0);
    p->onHit(s.view(), 0);
    EXPECT_EQ(p->victim(s.view()), 1);
}

TEST(TimestampLru, EvictionOrderSortedByAge)
{
    auto p = makeReplPolicy(ReplKind::TimestampLRU, 1, 64);
    TestSet s;
    for (int w = 0; w < 4; ++w) {
        s.fill(*p, w);
        for (int k = 0; k < 16; ++k)
            ++s.state.accesses;
    }
    std::vector<int> order;
    p->evictionOrder(s.view(), order);
    EXPECT_EQ(order.front(), 0);
    EXPECT_EQ(order.back(), 3);
}

TEST(DipPolicy, LeaderSetsSteerInsertion)
{
    auto p = makeReplPolicy(ReplKind::DIP, 1, 64);
    TestSet s;
    // Set 0 is an LRU leader: fills go to MRU.
    for (int w = 0; w < 4; ++w)
        s.fill(*p, w, /*set_idx=*/0);
    EXPECT_EQ(s.state.order.front(), 3);
}

TEST(DipPolicy, BipLeaderInsertsAtLru)
{
    auto p = makeReplPolicy(ReplKind::DIP, 1, 64);
    TestSet s;
    // Set 1 is a BIP leader: fills go to the LRU end except 1/32.
    int lru_inserts = 0;
    for (int round = 0; round < 32; ++round) {
        s.state.order.clear();
        for (int w = 0; w < 4; ++w)
            s.fill(*p, w, /*set_idx=*/1);
        lru_inserts += s.state.order.back() == 3;
    }
    EXPECT_GT(lru_inserts, 24); // mostly LRU-position inserts
}

TEST(DipPolicy, VictimIsLruEnd)
{
    auto p = makeReplPolicy(ReplKind::DIP, 1, 64);
    TestSet s;
    for (int w = 0; w < 4; ++w)
        s.fill(*p, w, 0);
    EXPECT_EQ(p->victim(s.view(0)), s.state.order.back());
}

TEST(RandomPolicy, VictimIsValidAndAllowed)
{
    auto p = makeReplPolicy(ReplKind::Random, 7, 64);
    TestSet s;
    for (int w = 0; w < 4; ++w)
        s.fill(*p, w);
    const char allowed[4] = {0, 1, 0, 1};
    for (int i = 0; i < 100; ++i) {
        const int v =
            p->victimAmong(s.view(), std::span<const char>(allowed, 4));
        EXPECT_TRUE(v == 1 || v == 3);
    }
}

TEST(RandomPolicy, CoversAllWays)
{
    auto p = makeReplPolicy(ReplKind::Random, 7, 64);
    TestSet s;
    for (int w = 0; w < 4; ++w)
        s.fill(*p, w);
    std::set<int> seen;
    for (int i = 0; i < 200; ++i)
        seen.insert(p->victim(s.view()));
    EXPECT_EQ(seen.size(), 4u);
}

TEST(ReplFactory, NamesMatch)
{
    EXPECT_STREQ(replKindName(ReplKind::LRU), "LRU");
    EXPECT_STREQ(replKindName(ReplKind::TimestampLRU), "TS-LRU");
    EXPECT_STREQ(replKindName(ReplKind::DIP), "DIP");
    EXPECT_STREQ(replKindName(ReplKind::Random), "Random");
    for (auto kind : {ReplKind::LRU, ReplKind::TimestampLRU,
                      ReplKind::DIP, ReplKind::Random})
        EXPECT_EQ(makeReplPolicy(kind, 1, 64)->name(),
                  replKindName(kind));
}
