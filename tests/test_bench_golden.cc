/**
 * @file
 * Golden-stats regression: the prism_bench driver must reproduce the
 * committed fixture sweep JSON (tests/golden/BENCH_fixture.json)
 * field for field. The fixture figure pins its machine and mixes
 * (independent of the PRISM_BENCH_* scaling knobs) and the driver
 * runs with --no-timing, so the comparison can be exact: any
 * behavioural drift in the generators, cache model, schemes, runner
 * or JSON writer shows up as a diff here.
 *
 * Regenerate after an intentional behaviour change with:
 *   build/tools/prism_bench fixture --no-timing --out tests/golden
 */

#include <gtest/gtest.h>

#include <array>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

namespace
{

#ifndef PRISM_BENCH_BIN_DEFAULT
#define PRISM_BENCH_BIN_DEFAULT "tools/prism_bench"
#endif
#ifndef PRISM_GOLDEN_FILE_DEFAULT
#define PRISM_GOLDEN_FILE_DEFAULT "../tests/golden/BENCH_fixture.json"
#endif

std::string
benchBin()
{
    if (const char *p = std::getenv("PRISM_BENCH_BIN"))
        return p;
    return PRISM_BENCH_BIN_DEFAULT;
}

std::string
goldenPath()
{
    if (const char *p = std::getenv("PRISM_GOLDEN_FILE"))
        return p;
    return PRISM_GOLDEN_FILE_DEFAULT;
}

std::pair<int, std::string>
run(const std::string &args)
{
    const std::string cmd = benchBin() + " " + args + " 2>&1";
    FILE *pipe = popen(cmd.c_str(), "r");
    EXPECT_NE(pipe, nullptr);
    std::string out;
    std::array<char, 4096> buf;
    while (std::size_t n = std::fread(buf.data(), 1, buf.size(), pipe))
        out.append(buf.data(), n);
    const int status = pclose(pipe);
    return {WEXITSTATUS(status), out};
}

std::string
slurp(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    EXPECT_TRUE(in.is_open()) << "cannot open " << path;
    std::ostringstream os;
    os << in.rdbuf();
    return os.str();
}

/** First line at which the two texts differ, for a readable diff. */
std::string
firstDiff(const std::string &a, const std::string &b)
{
    std::istringstream sa(a), sb(b);
    std::string la, lb;
    for (int line = 1;; ++line) {
        const bool ga = static_cast<bool>(std::getline(sa, la));
        const bool gb = static_cast<bool>(std::getline(sb, lb));
        if (!ga && !gb)
            return "no difference";
        if (la != lb || ga != gb)
            return "line " + std::to_string(line) + ": golden '" +
                   la + "' vs produced '" + lb + "'";
    }
}

} // namespace

TEST(BenchGolden, FixtureReproducesGoldenJson)
{
    char tmpl[] = "/tmp/prism_golden_XXXXXX";
    ASSERT_NE(mkdtemp(tmpl), nullptr);
    const std::string out_dir = tmpl;

    const auto [code, out] =
        run("fixture --no-timing --out " + out_dir);
    ASSERT_EQ(code, 0) << out;
    EXPECT_NE(out.find("sweep:"), std::string::npos);

    const std::string produced =
        slurp(out_dir + "/BENCH_fixture.json");
    const std::string golden = slurp(goldenPath());
    ASSERT_FALSE(golden.empty());
    EXPECT_EQ(golden, produced) << firstDiff(golden, produced);

    std::remove((out_dir + "/BENCH_fixture.json").c_str());
    std::remove(out_dir.c_str());
}

TEST(BenchGolden, GoldenCarriesExpectedSchema)
{
    const std::string golden = slurp(goldenPath());
    EXPECT_NE(golden.find("\"schema\": \"prism-bench-v1\""),
              std::string::npos);
    EXPECT_NE(golden.find("\"sweep\": \"fixture\""),
              std::string::npos);
    // Timing must never be committed: it would break reproduction.
    EXPECT_EQ(golden.find("\"timing\""), std::string::npos);
    EXPECT_EQ(golden.find("wall_seconds"), std::string::npos);
}

TEST(BenchGolden, UnknownFigureFails)
{
    const auto [code, out] = run("no_such_figure --no-json");
    EXPECT_EQ(code, 2);
    EXPECT_NE(out.find("unknown figure"), std::string::npos);
}

TEST(BenchGolden, ListIncludesHeadlineFigures)
{
    const auto [code, out] = run("--list");
    EXPECT_EQ(code, 0);
    EXPECT_NE(out.find("fig02_summary"), std::string::npos);
    EXPECT_NE(out.find("fig13_victimless"), std::string::npos);
    // Hidden fixtures stay out of the listing.
    EXPECT_EQ(out.find("fixture\n"), std::string::npos);
}
