/**
 * @file
 * Tests for the multi-core QoS allocation policy (extension).
 */

#include <gtest/gtest.h>

#include "prism/alloc_multi_qos.hh"

using namespace prism;

namespace
{

IntervalSnapshot
baseSnap(std::uint32_t cores)
{
    IntervalSnapshot snap;
    snap.totalBlocks = 4096;
    snap.ways = 16;
    snap.intervalMisses = 2048;
    snap.cores.resize(cores);
    for (auto &c : snap.cores) {
        c.occupancyBlocks = 4096 / cores;
        c.sharedHits = 1000;
        c.sharedMisses = 2048 / cores;
        c.shadowHitsAtPosition.assign(16, 1000.0 / 16);
        c.shadowMisses = 100;
        c.instructions = 100000;
        c.cycles = 200000; // IPC 0.5
        c.llcStallCycles = 50000;
    }
    return snap;
}

} // namespace

TEST(MultiQos, GrowsEveryGuardBelowTarget)
{
    MultiQosPolicy p({{0, 0.9}, {1, 0.9}}); // both below (IPC 0.5)
    auto snap = baseSnap(4);
    const auto t = p.computeTargets(snap);
    EXPECT_NEAR(t[0], 0.25 * 1.1, 1e-9);
    EXPECT_NEAR(t[1], 0.25 * 1.1, 1e-9);
    double sum = 0;
    for (double v : t)
        sum += v;
    EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(MultiQos, MixedDirections)
{
    QosParams params;
    params.beta = 0.1;
    // Core 0 below its floor, core 2 above its own.
    MultiQosPolicy p({{0, 0.9}, {2, 0.3}}, params);
    auto snap = baseSnap(4);
    const auto t = p.computeTargets(snap);
    EXPECT_NEAR(t[0], 0.25 * 1.1, 1e-9);
    EXPECT_NEAR(t[2], 0.25 * 0.9, 1e-9);
}

TEST(MultiQos, AdmissionControlCapsGuards)
{
    // Two guards already holding 48% each and still below target:
    // unconstrained growth would exceed the cache.
    MultiQosPolicy p({{0, 0.9}, {1, 0.9}});
    auto snap = baseSnap(4);
    snap.cores[0].occupancyBlocks = 1966; // 48%
    snap.cores[1].occupancyBlocks = 1966;
    const auto t = p.computeTargets(snap);
    EXPECT_LE(t[0] + t[1], MultiQosPolicy::maxGuardedFraction + 1e-9);
    // Unguarded cores still receive the leftover.
    EXPECT_GT(t[2] + t[3], 0.0);
}

TEST(MultiQos, UnguardedHitMaximised)
{
    MultiQosPolicy p({{0, 0.9}});
    auto snap = baseSnap(4);
    // Core 2 has far more potential gain than core 3.
    snap.cores[2].shadowHitsAtPosition.assign(16, 5000.0 / 16);
    const auto t = p.computeTargets(snap);
    EXPECT_GT(t[2], t[3]);
}

TEST(MultiQos, DeadBandHolds)
{
    MultiQosPolicy p({{0, 0.5}}); // exactly at target
    auto snap = baseSnap(4);
    const auto t = p.computeTargets(snap);
    EXPECT_NEAR(t[0], 0.25, 1e-9);
}

TEST(MultiQos, RejectsBadCoreIds)
{
    auto snap = baseSnap(2);
    MultiQosPolicy p({{5, 0.5}});
    EXPECT_DEATH(p.computeTargets(snap), "out of range");
}

TEST(MultiQos, RejectsEmptyTargets)
{
    EXPECT_DEATH(MultiQosPolicy({}), "no QoS targets");
}

TEST(MultiQos, ArithmeticOpsScale)
{
    MultiQosPolicy p({{0, 0.5}, {1, 0.5}});
    EXPECT_EQ(p.arithmeticOps(8), 2u * 2u + 5u * 8u);
}
