/**
 * @file
 * Tests for way-partition enforcement, UCP and Kim-fairness schemes.
 */

#include <gtest/gtest.h>

#include "cache/shared_cache.hh"
#include "policies/way_partition.hh"

using namespace prism;

namespace
{

CacheConfig
cfg2core()
{
    CacheConfig c;
    c.sizeBytes = 64 * 1024;
    c.ways = 4;
    c.numCores = 2;
    c.intervalMisses = 1u << 20; // effectively off
    return c;
}

Addr
addrFor(std::uint32_t set, std::uint64_t tag)
{
    return static_cast<Addr>(tag) * 256 + set;
}

} // namespace

TEST(RoundFractions, BasicLargestRemainder)
{
    const auto a = roundFractionsToWays({0.5, 0.3, 0.2}, 10);
    EXPECT_EQ(a[0], 5u);
    EXPECT_EQ(a[1], 3u);
    EXPECT_EQ(a[2], 2u);
}

TEST(RoundFractions, SumsExactly)
{
    const auto a = roundFractionsToWays({0.33, 0.33, 0.34}, 16);
    EXPECT_EQ(a[0] + a[1] + a[2], 16u);
}

TEST(RoundFractions, EnforcesOneWayMinimum)
{
    const auto a = roundFractionsToWays({0.98, 0.01, 0.01}, 8);
    EXPECT_GE(a[1], 1u);
    EXPECT_GE(a[2], 1u);
    EXPECT_EQ(a[0] + a[1] + a[2], 8u);
}

TEST(RoundFractions, DegenerateZeroFractions)
{
    const auto a = roundFractionsToWays({0.0, 0.0}, 8);
    EXPECT_EQ(a[0], 4u);
    EXPECT_EQ(a[1], 4u);
}

TEST(WayPartition, InitialEvenSplit)
{
    UcpScheme s(4, 16);
    for (auto a : s.allocation())
        EXPECT_EQ(a, 4u);
}

TEST(WayPartition, SetAllocationValidates)
{
    UcpScheme s(2, 4);
    s.setAllocation({3, 1});
    EXPECT_EQ(s.allocation()[0], 3u);
    EXPECT_DEATH(s.setAllocation({3, 3}), "");
}

TEST(WayPartition, EnforcesQuotaOnMiss)
{
    SharedCache cache(cfg2core());
    UcpScheme scheme(2, 4);
    scheme.setAllocation({3, 1});
    cache.setScheme(&scheme);

    // Core 1 fills the whole set first.
    for (std::uint64_t t = 0; t < 4; ++t)
        cache.access(1, addrFor(0, t));
    // Core 0 misses repeatedly: core 1 is over quota (4 > 1), so its
    // blocks are the victims until core 0 reaches its quota of 3.
    for (std::uint64_t t = 10; t < 13; ++t)
        cache.access(0, addrFor(0, t));
    EXPECT_EQ(cache.countInSet(0, 0), 3u);
    EXPECT_EQ(cache.countInSet(0, 1), 1u);
}

TEST(WayPartition, AtQuotaEvictsOwnBlocks)
{
    SharedCache cache(cfg2core());
    UcpScheme scheme(2, 4);
    scheme.setAllocation({2, 2});
    cache.setScheme(&scheme);

    for (std::uint64_t t = 0; t < 2; ++t)
        cache.access(0, addrFor(0, t));
    for (std::uint64_t t = 5; t < 7; ++t)
        cache.access(1, addrFor(0, t));
    // Core 0 at quota: its next miss evicts its own LRU block.
    cache.access(0, addrFor(0, 100));
    EXPECT_EQ(cache.countInSet(0, 0), 2u);
    EXPECT_EQ(cache.countInSet(0, 1), 2u);
    EXPECT_FALSE(cache.access(0, addrFor(0, 0)).hit); // tag 0 evicted
}

TEST(Ucp, IntervalAdoptsLookahead)
{
    UcpScheme scheme(2, 4);
    IntervalSnapshot snap;
    snap.totalBlocks = 1024;
    snap.ways = 4;
    snap.intervalMisses = 512;
    snap.cores.resize(2);
    // Core 0's curve dominates: it should win the spare ways.
    snap.cores[0].shadowHitsAtPosition = {100, 100, 100, 100};
    snap.cores[1].shadowHitsAtPosition = {1, 0, 0, 0};
    scheme.onIntervalEnd(snap);
    EXPECT_EQ(scheme.allocation()[0], 3u);
    EXPECT_EQ(scheme.allocation()[1], 1u);
}

TEST(KimFair, MovesWayToMostAffectedCore)
{
    KimFairScheme scheme(2, 4);
    IntervalSnapshot snap;
    snap.totalBlocks = 1024;
    snap.ways = 4;
    snap.intervalMisses = 512;
    snap.cores.resize(2);
    // Core 0 suffers 4x miss inflation; core 1 runs at stand-alone.
    snap.cores[0].sharedMisses = 400;
    snap.cores[0].shadowMisses = 100;
    snap.cores[1].sharedMisses = 110;
    snap.cores[1].shadowMisses = 100;
    scheme.onIntervalEnd(snap);
    EXPECT_EQ(scheme.allocation()[0], 3u);
    EXPECT_EQ(scheme.allocation()[1], 1u);
}

TEST(KimFair, StableWhenBalanced)
{
    KimFairScheme scheme(2, 4);
    IntervalSnapshot snap;
    snap.totalBlocks = 1024;
    snap.ways = 4;
    snap.intervalMisses = 512;
    snap.cores.resize(2);
    snap.cores[0].sharedMisses = 200;
    snap.cores[0].shadowMisses = 100;
    snap.cores[1].sharedMisses = 201;
    snap.cores[1].shadowMisses = 100;
    scheme.onIntervalEnd(snap);
    EXPECT_EQ(scheme.allocation()[0], 2u);
    EXPECT_EQ(scheme.allocation()[1], 2u);
}

TEST(KimFair, NeverDrainsDonorBelowOneWay)
{
    KimFairScheme scheme(2, 4);
    IntervalSnapshot snap;
    snap.totalBlocks = 1024;
    snap.ways = 4;
    snap.intervalMisses = 512;
    snap.cores.resize(2);
    snap.cores[0].sharedMisses = 1000;
    snap.cores[0].shadowMisses = 100;
    snap.cores[1].sharedMisses = 100;
    snap.cores[1].shadowMisses = 100;
    for (int i = 0; i < 10; ++i)
        scheme.onIntervalEnd(snap);
    EXPECT_EQ(scheme.allocation()[1], 1u);
    EXPECT_EQ(scheme.allocation()[0], 3u);
}
