/**
 * @file
 * Tests for the PriSM probabilistic cache manager: core selection,
 * victim identification, the victimless fallback and occupancy
 * convergence towards targets.
 */

#include <gtest/gtest.h>

#include "cache/shared_cache.hh"
#include "common/rng.hh"
#include "prism/alloc_hitmax.hh"
#include "workload/generator.hh"
#include "prism/prism_scheme.hh"

using namespace prism;

namespace
{

CacheConfig
cfg()
{
    CacheConfig c;
    c.sizeBytes = 256 * 1024; // 4096 blocks
    c.ways = 8;               // 512 sets
    c.numCores = 2;
    c.intervalMisses = 2048;
    return c;
}

/** Policy with externally fixed targets. */
struct FixedTargets : PrismAllocPolicy
{
    explicit FixedTargets(std::vector<double> t) : targets(std::move(t))
    {}

    std::string name() const override { return "Fixed"; }

    std::vector<double>
    computeTargets(const IntervalSnapshot &) override
    {
        return targets;
    }

    unsigned arithmeticOps(unsigned) const override { return 0; }

    std::vector<double> targets;
};

} // namespace

TEST(PrismScheme, NameIncludesPolicy)
{
    PrismScheme s(2, std::make_unique<HitMaxPolicy>(), 1);
    EXPECT_EQ(s.name(), "PriSM-HitMax");
}

TEST(PrismScheme, InitialDistributionUniform)
{
    PrismScheme s(4, std::make_unique<HitMaxPolicy>(), 1);
    for (double e : s.evictionProbs())
        EXPECT_NEAR(e, 0.25, 1e-12);
}

TEST(PrismScheme, OccupancyConvergesToTargets)
{
    SharedCache cache(cfg());
    PrismScheme s(2,
                  std::make_unique<FixedTargets>(
                      std::vector<double>{0.75, 0.25}),
                  7);
    cache.setScheme(&s);

    // Both cores stream uniformly over footprints larger than the
    // cache; without PriSM they would split the cache by miss rate
    // (here, evenly). The fixed targets must pull occupancy to 3:1.
    Rng rng(3);
    for (int i = 0; i < 400000; ++i) {
        const CoreId c = static_cast<CoreId>(rng.below(2));
        cache.access(c, makeBlockAddr(c, rng.below(8192)));
    }
    EXPECT_NEAR(cache.occupancyFraction(0), 0.75, 0.06);
    EXPECT_NEAR(cache.occupancyFraction(1), 0.25, 0.06);
}

TEST(PrismScheme, ZeroEvictionProbabilityProtects)
{
    SharedCache cache(cfg());
    PrismScheme s(2,
                  std::make_unique<FixedTargets>(
                      std::vector<double>{0.95, 0.05}),
                  7);
    cache.setScheme(&s);
    Rng rng(5);
    // Warm core 0 with a modest footprint, then hammer with core 1.
    for (int i = 0; i < 3000; ++i)
        cache.access(0, makeBlockAddr(0, rng.below(2048)));
    // Let an interval pass so E is computed from the fixed targets.
    for (int i = 0; i < 200000; ++i)
        cache.access(1, makeBlockAddr(1, rng.below(65536)));
    // Core 0 is under its 95% target: E_0 == 0, so its blocks are
    // never chosen (modulo last-resort fallback) and survive.
    EXPECT_GT(cache.occupancyFraction(0), 0.35);
}

TEST(PrismScheme, VictimlessFallbackCounted)
{
    SharedCache cache(cfg());
    PrismScheme s(2,
                  std::make_unique<FixedTargets>(
                      std::vector<double>{0.5, 0.5}),
                  7);
    cache.setScheme(&s);
    Rng rng(9);
    // Core 1 touches only a few sets; drawing core 1 as victim in
    // other sets forces the fallback path.
    for (int i = 0; i < 2000; ++i)
        cache.access(1, makeBlockAddr(1, rng.below(16)));
    for (int i = 0; i < 100000; ++i)
        cache.access(0, makeBlockAddr(0, rng.below(16384)));
    EXPECT_GT(s.victimlessReplacements(), 0u);
    EXPECT_GT(s.replacements(), 0u);
    EXPECT_GT(s.victimlessFraction(), 0.0);
    EXPECT_LE(s.victimlessFraction(), 1.0);
}

TEST(PrismScheme, RecomputesPerInterval)
{
    SharedCache cache(cfg()); // W = 2048
    PrismScheme s(2, std::make_unique<HitMaxPolicy>(), 7);
    cache.setScheme(&s);
    Rng rng(11);
    for (int i = 0; i < 50000; ++i)
        cache.access(static_cast<CoreId>(rng.below(2)),
                     makeBlockAddr(0, rng.below(65536)));
    EXPECT_GE(s.recomputes(), 10u);
    EXPECT_EQ(s.recomputes(), cache.intervals());
    // Probability statistics recorded once per recompute.
    EXPECT_EQ(s.probStat(0).count(), s.recomputes());
}

TEST(PrismScheme, QuantisedDistributionStillNormalised)
{
    PrismParams params;
    params.probBits = 6;
    SharedCache cache(cfg());
    PrismScheme s(2, std::make_unique<HitMaxPolicy>(), 7, params);
    cache.setScheme(&s);
    Rng rng(13);
    for (int i = 0; i < 30000; ++i)
        cache.access(static_cast<CoreId>(rng.below(2)),
                     makeBlockAddr(0, rng.below(65536)));
    double sum = 0;
    for (double e : s.evictionProbs())
        sum += e;
    EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(PrismScheme, WorksWithDipReplacement)
{
    CacheConfig c = cfg();
    c.repl = ReplKind::DIP;
    SharedCache cache(c);
    PrismScheme s(2,
                  std::make_unique<FixedTargets>(
                      std::vector<double>{0.7, 0.3}),
                  7);
    cache.setScheme(&s);
    Rng rng(17);
    for (int i = 0; i < 300000; ++i) {
        const CoreId core = static_cast<CoreId>(rng.below(2));
        cache.access(core, makeBlockAddr(core, rng.below(8192)));
    }
    // Occupancy control works regardless of the replacement policy.
    EXPECT_NEAR(cache.occupancyFraction(0), 0.7, 0.08);
}

TEST(PrismScheme, WorksWithTimestampLru)
{
    CacheConfig c = cfg();
    c.repl = ReplKind::TimestampLRU;
    SharedCache cache(c);
    PrismScheme s(2,
                  std::make_unique<FixedTargets>(
                      std::vector<double>{0.6, 0.4}),
                  7);
    cache.setScheme(&s);
    Rng rng(19);
    for (int i = 0; i < 300000; ++i) {
        const CoreId core = static_cast<CoreId>(rng.below(2));
        cache.access(core, makeBlockAddr(core, rng.below(8192)));
    }
    EXPECT_NEAR(cache.occupancyFraction(0), 0.6, 0.08);
}
