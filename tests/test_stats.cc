/**
 * @file
 * Tests for RunningStat (Welford) and the mean helpers.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/rng.hh"
#include "common/stats.hh"

using namespace prism;

TEST(RunningStat, EmptyIsZero)
{
    RunningStat s;
    EXPECT_EQ(s.count(), 0u);
    EXPECT_DOUBLE_EQ(s.mean(), 0.0);
    EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
}

TEST(RunningStat, SingleSample)
{
    RunningStat s;
    s.add(3.5);
    EXPECT_DOUBLE_EQ(s.mean(), 3.5);
    EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
}

TEST(RunningStat, MatchesDirectComputation)
{
    Rng rng(77);
    std::vector<double> xs;
    RunningStat s;
    for (int i = 0; i < 1000; ++i) {
        const double x = rng.uniform() * 10 - 5;
        xs.push_back(x);
        s.add(x);
    }
    double mean = 0;
    for (double x : xs)
        mean += x;
    mean /= xs.size();
    double var = 0;
    for (double x : xs)
        var += (x - mean) * (x - mean);
    var /= xs.size();

    EXPECT_NEAR(s.mean(), mean, 1e-9);
    EXPECT_NEAR(s.variance(), var, 1e-9);
}

TEST(RunningStat, ConstantSeriesHasZeroStddev)
{
    RunningStat s;
    for (int i = 0; i < 100; ++i)
        s.add(0.25);
    EXPECT_NEAR(s.stddev(), 0.0, 1e-12);
}

TEST(RunningStat, ResetClears)
{
    RunningStat s;
    s.add(1.0);
    s.add(2.0);
    s.reset();
    EXPECT_EQ(s.count(), 0u);
    EXPECT_DOUBLE_EQ(s.mean(), 0.0);
}

TEST(Stats, GeomeanOfConstants)
{
    const std::vector<double> v{2.0, 2.0, 2.0};
    EXPECT_NEAR(geomean(v), 2.0, 1e-12);
}

TEST(Stats, GeomeanKnownValue)
{
    const std::vector<double> v{1.0, 4.0};
    EXPECT_NEAR(geomean(v), 2.0, 1e-12);
}

TEST(Stats, GeomeanEmptyIsZero)
{
    EXPECT_DOUBLE_EQ(geomean(std::vector<double>{}), 0.0);
}

TEST(Stats, MeanKnownValue)
{
    const std::vector<double> v{1.0, 2.0, 3.0, 4.0};
    EXPECT_DOUBLE_EQ(mean(v), 2.5);
}

TEST(Stats, GeomeanBelowArithmeticMean)
{
    const std::vector<double> v{1.0, 10.0, 100.0};
    EXPECT_LT(geomean(v), mean(v));
}
