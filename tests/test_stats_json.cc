/**
 * @file
 * prism-stats-v1 round trip: a real run's JSON statistics dump must
 * parse back through src/common/json and carry the robustness
 * counters and telemetry ring totals the doctor consumes.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "analysis/doctor.hh"
#include "analysis/series.hh"
#include "common/json.hh"
#include "sim/runner.hh"

using namespace prism;
using namespace prism::analysis;

namespace
{

MachineConfig
smallMachine()
{
    MachineConfig m;
    m.numCores = 2;
    m.llcBytes = 256ull << 10;
    m.llcWays = 8;
    m.intervalMisses = 512;
    m.instrBudget = 40'000;
    m.warmupInstr = 10'000;
    return m;
}

Workload
mix()
{
    return {"GF", {"403.gcc", "186.crafty"}};
}

std::string
statsJsonOf(const SchemeOptions &base_options)
{
    std::ostringstream os;
    SchemeOptions options = base_options;
    options.statsJsonSink = &os;
    Runner runner(smallMachine());
    runner.run(mix(), SchemeKind::PrismH, options);
    return os.str();
}

} // namespace

TEST(StatsJson, RoundTripsThroughParser)
{
    const std::string text = statsJsonOf({});
    JsonValue doc;
    const Status st = parseJson(text, doc);
    ASSERT_TRUE(st.ok()) << st.message();

    EXPECT_EQ(doc.at("schema").asString(), "prism-stats-v1");
    EXPECT_EQ(doc.at("workload").asString(), "GF");
    // The dump carries the scheme object's internal name; the series
    // layer canonicalises it to the CLI spelling (PriSM-H).
    EXPECT_EQ(doc.at("scheme").asString(), "PriSM-HitMax");
    EXPECT_EQ(doc.at("system").at("cores").asU64(), 2u);
    EXPECT_GT(doc.at("system").at("llc").at("intervals").asU64(), 0u);

    // The robustness counters added for the doctor.
    const JsonValue &prism = doc.at("prism");
    ASSERT_TRUE(prism.isObject());
    EXPECT_TRUE(prism.find("fallback_entries") != nullptr);
    EXPECT_TRUE(prism.find("degraded_intervals") != nullptr);
    EXPECT_TRUE(prism.find("dropped_recomputes") != nullptr);
    EXPECT_TRUE(prism.find("clamped_eq1_inputs") != nullptr);
    EXPECT_GT(prism.at("recomputes").asU64(), 0u);
}

TEST(StatsJson, SeriesFromStatsCarriesCounters)
{
    const std::string text = statsJsonOf({});
    JsonValue doc;
    ASSERT_TRUE(parseJson(text, doc).ok());

    RunSeries s;
    const Status st = seriesFromStatsJson(doc, s);
    ASSERT_TRUE(st.ok()) << st.message();
    EXPECT_EQ(s.name, "GF/PriSM-H");
    EXPECT_EQ(s.scheme, "PriSM-H");
    EXPECT_EQ(s.cores, 2u);
    EXPECT_TRUE(s.hasCounters);
    EXPECT_GT(s.intervals, 0u);
    EXPECT_GT(s.recomputes, 0u);
    EXPECT_FALSE(s.hasSeries); // stats carry counters only

    // A counters-only verdict: series checks skip, nothing fails.
    const Verdict v = analyze(s);
    EXPECT_NE(v.overall, FindingStatus::Fail);
}

TEST(StatsJson, TelemetrySectionAppearsWithRecorder)
{
    // Without telemetry there is no section …
    {
        JsonValue doc;
        ASSERT_TRUE(parseJson(statsJsonOf({}), doc).ok());
        EXPECT_EQ(doc.find("telemetry"), nullptr);
    }
    // … with a recorder attached the ring totals are reported.
    SchemeOptions options;
    options.telemetry.enabled = true;
    options.telemetry.capacity = 4; // force drops
    JsonValue doc;
    ASSERT_TRUE(parseJson(statsJsonOf(options), doc).ok());
    const JsonValue &t = doc.at("telemetry");
    ASSERT_TRUE(t.isObject());
    EXPECT_EQ(t.at("capacity").asU64(), 4u);
    EXPECT_GT(t.at("samples_recorded").asU64(), 0u);

    RunSeries s;
    ASSERT_TRUE(seriesFromStatsJson(doc, s).ok());
    EXPECT_EQ(s.droppedSamples, t.at("dropped_samples").asU64());
}

TEST(StatsJson, FaultRunReportsNonZeroRobustness)
{
    SchemeOptions options;
    options.checked = true;
    options.faultSpec = "nan@2,occ@3";
    JsonValue doc;
    ASSERT_TRUE(parseJson(statsJsonOf(options), doc).ok());

    RunSeries s;
    ASSERT_TRUE(seriesFromStatsJson(doc, s).ok());
    EXPECT_GT(s.faultsInjected, 0u);
    EXPECT_GT(s.degradedIntervals + s.invariantViolations +
                  s.clampedEq1Inputs,
              0u);
}
