/**
 * @file
 * WayMaskScheme ("PriSM-WM"): the CAT-style way-mask backend of the
 * CachePlane split.
 *
 * Covers the backend's whole contract: target-to-way quantisation
 * agrees with roundFractionsToWays and its recorded error statistic,
 * the inherited way-partition enforcement never lets a core exceed
 * its masked ways, the shared controller's victim sampler matches
 * the eviction distribution to chi-square precision, the CachePlane
 * view reflects the last snapshot, and a fig02-style mix run through
 * the real Runner earns a PASS from prism_doctor's convergence
 * checks.
 */

#include <cmath>
#include <cstdint>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "analysis/doctor.hh"
#include "analysis/series.hh"
#include "cache/shared_cache.hh"
#include "plane/way_mask_scheme.hh"
#include "policies/way_partition.hh"
#include "prism/alloc_hitmax.hh"
#include "sim/runner.hh"

using namespace prism;

namespace
{

/** A 2-core snapshot whose HitMax targets are strongly skewed. */
IntervalSnapshot
skewedSnap2(std::uint32_t ways)
{
    IntervalSnapshot snap;
    snap.totalBlocks = 1024;
    snap.ways = ways;
    snap.intervalMisses = 512;
    snap.cores.resize(2);
    snap.cores[0].occupancyBlocks = 512;
    snap.cores[0].sharedMisses = 400;
    snap.cores[0].shadowHitsAtPosition.assign(ways, 500.0);
    snap.cores[1].occupancyBlocks = 512;
    snap.cores[1].sharedMisses = 112;
    snap.cores[1].shadowHitsAtPosition.assign(ways, 10.0);
    return snap;
}

std::unique_ptr<WayMaskScheme>
makeScheme2(std::uint32_t ways, std::uint64_t seed = 42)
{
    return std::make_unique<WayMaskScheme>(
        2, ways, std::make_unique<HitMaxPolicy>(), seed);
}

Addr
addrFor(std::uint32_t set, std::uint64_t tag)
{
    return static_cast<Addr>(tag) * 256 + set;
}

} // namespace

// --- quantisation -------------------------------------------------

TEST(WayMaskQuantisation, AllocationIsRoundedTargets)
{
    auto scheme = makeScheme2(8);
    scheme->onIntervalEnd(skewedSnap2(8));

    const std::vector<double> &t = scheme->controller().targets();
    ASSERT_EQ(t.size(), 2u);
    const auto expected = roundFractionsToWays(t, 8);
    EXPECT_EQ(scheme->allocation(), expected);

    // The skew must actually have moved ways: HitMax favours core 0.
    EXPECT_GT(scheme->allocation()[0], scheme->allocation()[1]);
}

TEST(WayMaskQuantisation, ErrorStatMatchesHandComputation)
{
    auto scheme = makeScheme2(8);
    scheme->onIntervalEnd(skewedSnap2(8));

    const std::vector<double> &t = scheme->controller().targets();
    const auto alloc = roundFractionsToWays(t, 8);
    double err = 0.0;
    for (std::size_t i = 0; i < 2; ++i)
        err += std::abs(static_cast<double>(alloc[i]) - t[i] * 8.0);
    err /= 2.0;

    ASSERT_EQ(scheme->wayQuantError().count(), 1u);
    EXPECT_DOUBLE_EQ(scheme->wayQuantError().mean(), err);
    // Largest-remainder rounding never misses by a whole way per
    // core on a 2-core split (each entry is off by < 1 before the
    // one-way-minimum correction).
    EXPECT_LT(scheme->wayQuantError().mean(), 1.0);
}

TEST(WayMaskQuantisation, ErrorAccumulatesPerRecompute)
{
    auto scheme = makeScheme2(16);
    for (int i = 0; i < 5; ++i)
        scheme->onIntervalEnd(skewedSnap2(16));
    EXPECT_EQ(scheme->wayQuantError().count(), 5u);
    EXPECT_EQ(scheme->controller().recomputes(), 5u);
}

// --- enforcement --------------------------------------------------

TEST(WayMaskEnforcement, OccupancyNeverExceedsMaskedWays)
{
    CacheConfig cfg;
    cfg.sizeBytes = 64 * 1024;
    cfg.ways = 4;
    cfg.numCores = 2;
    cfg.intervalMisses = 1u << 20; // interval hook driven manually

    SharedCache cache(cfg);
    auto scheme = makeScheme2(4);
    cache.setScheme(scheme.get());

    // Install the skewed allocation (3/1 on 4 ways for this snap).
    scheme->onIntervalEnd(skewedSnap2(4));
    const auto alloc = scheme->allocation();
    ASSERT_EQ(alloc[0] + alloc[1], 4u);

    // Both cores hammer the same sets with disjoint tags; once every
    // way is valid, the mask quota must cap each core's share.
    for (std::uint64_t round = 0; round < 64; ++round) {
        for (std::uint32_t set = 0; set < 4; ++set) {
            cache.access(0, addrFor(set, 100 + round));
            cache.access(1, addrFor(set, 9000 + round));
        }
    }
    for (std::uint32_t set = 0; set < 4; ++set) {
        EXPECT_LE(cache.countInSet(set, 0), alloc[0])
            << "set " << set;
        EXPECT_LE(cache.countInSet(set, 1), alloc[1])
            << "set " << set;
    }
}

// --- the shared controller's victim sampler -----------------------

TEST(WayMaskSampler, VictimDrawsMatchDistributionChiSquare)
{
    WayMaskScheme scheme(4, 16, std::make_unique<HitMaxPolicy>(),
                         1234);
    const std::vector<double> e = {0.45, 0.3, 0.2, 0.05};
    scheme.controller().setEvictionProbs(e);

    constexpr std::uint64_t kDraws = 200000;
    std::vector<std::uint64_t> counts(4, 0);
    for (std::uint64_t i = 0; i < kDraws; ++i) {
        const std::uint32_t v = scheme.controller().sampleVictim();
        ASSERT_LT(v, 4u);
        ++counts[v];
    }

    // Pearson chi-square, df 3; critical value 16.27 at alpha 0.001.
    double chi2 = 0.0;
    for (std::size_t i = 0; i < 4; ++i) {
        const double expected = e[i] * static_cast<double>(kDraws);
        const double d = static_cast<double>(counts[i]) - expected;
        chi2 += d * d / expected;
    }
    EXPECT_LT(chi2, 16.27);
}

// --- the CachePlane view ------------------------------------------

TEST(WayMaskPlane, ViewReflectsLastSnapshot)
{
    auto scheme = makeScheme2(8);
    EXPECT_STREQ(scheme->backendName(), "way-mask");
    EXPECT_EQ(scheme->capacityUnit(), CapacityUnit::Blocks);
    EXPECT_EQ(scheme->domainCount(), 2u);
    EXPECT_EQ(scheme->capacityUnits(), 0u); // before any interval

    const IntervalSnapshot snap = skewedSnap2(8);
    scheme->onIntervalEnd(snap);
    EXPECT_EQ(scheme->capacityUnits(), snap.totalBlocks);
    for (std::uint32_t i = 0; i < 2; ++i) {
        EXPECT_EQ(scheme->occupancyUnits(i),
                  snap.cores[i].occupancyBlocks);
        EXPECT_DOUBLE_EQ(scheme->standAloneHits(i),
                         snap.cores[i].standAloneHits());
    }
}

TEST(WayMaskPlane, SchemeNameRegistered)
{
    SchemeKind kind;
    ASSERT_TRUE(schemeFromName("PriSM-WM", kind));
    EXPECT_EQ(kind, SchemeKind::PrismWM);
    EXPECT_STREQ(schemeName(SchemeKind::PrismWM), "PriSM-WM");
}

// --- end to end: doctor verdict on a fig02-style mix --------------

TEST(WayMaskDoctor, Fig02StyleMixPasses)
{
    MachineConfig m = MachineConfig::forCores(4);
    m.instrBudget = 150'000;
    m.warmupInstr = 50'000;
    Runner runner(m);
    Workload w{"fig02-style",
               {"179.art", "470.lbm", "403.gcc", "300.twolf"}};

    SchemeOptions options;
    options.telemetry.enabled = true;
    const RunResult res = runner.run(w, SchemeKind::PrismWM, options);
    EXPECT_EQ(res.scheme, "PriSM-WM");
    EXPECT_EQ(res.plane, "way-mask");
    EXPECT_GT(res.recomputes, 0u);
    ASSERT_NE(res.recorder, nullptr);

    analysis::RunSeries s =
        analysis::seriesFromRecorder(*res.recorder, w.name);
    analysis::attachRunResult(s, res);
    s.name = w.name;
    EXPECT_EQ(s.plane, "way-mask");
    EXPECT_TRUE(s.hasWayQuant);

    const analysis::Verdict v = analysis::analyze(s);
    EXPECT_EQ(v.backend, "way-mask");
    EXPECT_EQ(v.overall, analysis::FindingStatus::Pass)
        << [&] {
               std::string all;
               for (const auto &f : v.findings)
                   all += f.check + "=" +
                          analysis::findingStatusName(f.status) +
                          " (" + f.detail + ")\n";
               return all;
           }();

    // The plane check itself must be present and clean: way-mask
    // quantisation on this mix stays well under a way on average.
    bool saw_plane_check = false;
    for (const auto &f : v.findings) {
        if (f.check == "plane.way_quant_error") {
            saw_plane_check = true;
            EXPECT_EQ(f.status, analysis::FindingStatus::Pass);
            EXPECT_LT(f.value, 1.0);
        }
    }
    EXPECT_TRUE(saw_plane_check);
}
