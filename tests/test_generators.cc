/**
 * @file
 * Tests for the synthetic access generators: determinism, working-set
 * bounds and the miss-ratio-curve shape contract of the
 * stack-distance model.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <list>
#include <set>
#include <unordered_map>

#include "workload/generator.hh"
#include "workload/stack_dist_generator.hh"

using namespace prism;

TEST(MakeBlockAddr, StreamsAreDisjoint)
{
    std::set<Addr> s0, s1;
    for (std::uint64_t b = 0; b < 1000; ++b) {
        s0.insert(makeBlockAddr(0, b));
        s1.insert(makeBlockAddr(1, b));
    }
    for (Addr a : s0)
        EXPECT_EQ(s1.count(a), 0u);
}

TEST(MakeBlockAddr, Deterministic)
{
    EXPECT_EQ(makeBlockAddr(3, 17), makeBlockAddr(3, 17));
    EXPECT_NE(makeBlockAddr(3, 17), makeBlockAddr(3, 18));
}

TEST(StreamGenerator, CyclesThroughLength)
{
    StreamGenerator g(0, 8);
    std::vector<Addr> first;
    for (int i = 0; i < 8; ++i)
        first.push_back(g.next());
    // Distinct within one period, identical across periods.
    std::set<Addr> uniq(first.begin(), first.end());
    EXPECT_EQ(uniq.size(), 8u);
    for (int i = 0; i < 8; ++i)
        EXPECT_EQ(g.next(), first[i]);
}

TEST(UniformGenerator, StaysInWorkingSet)
{
    UniformGenerator g(0, 64, 42);
    std::set<Addr> seen;
    for (int i = 0; i < 10000; ++i)
        seen.insert(g.next());
    EXPECT_LE(seen.size(), 64u);
    EXPECT_GT(seen.size(), 55u); // nearly all blocks touched
}

TEST(StackDistGenerator, DeterministicForSeed)
{
    StackDistParams p{1024, 0.6, 0.05};
    StackDistGenerator a(0, p, 7), b(0, p, 7);
    for (int i = 0; i < 10000; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(StackDistGenerator, PrePopulatesWorkingSetExactMode)
{
    StackDistParams p{4096, 0.6, 0.0};
    p.exactLru = true;
    StackDistGenerator g(0, p, 3);
    EXPECT_EQ(g.stackDepth(), 4096u);
}

TEST(StackDistGenerator, WorkingSetBoundedExactMode)
{
    StackDistParams p{512, 0.7, 0.5}; // heavy cold traffic
    p.exactLru = true;
    StackDistGenerator g(0, p, 9);
    for (int i = 0; i < 20000; ++i)
        g.next();
    EXPECT_EQ(g.stackDepth(), 512u);
}

/**
 * MRC shape contract: the fraction of re-accesses with stack distance
 * below d must be ~ (d/W)^theta. We validate by counting accesses to
 * the top-k most recent blocks via an exact LRU simulation at two
 * capacities.
 */
TEST(StackDistGenerator, ConcentratedReuseHasSteepCurve)
{
    const std::uint64_t ws = 8192;
    StackDistParams steep{ws, 0.4, 0.0};
    steep.exactLru = true;
    StackDistParams flat{ws, 1.0, 0.0};
    flat.exactLru = true;
    StackDistGenerator gs(0, steep, 11), gf(0, flat, 11);

    auto hit_rate_at = [](StackDistGenerator &g, std::size_t cap) {
        // Simple LRU stack simulation with capacity cap.
        std::list<Addr> lru;
        std::unordered_map<Addr, std::list<Addr>::iterator> where;
        std::uint64_t hits = 0, total = 0;
        for (int i = 0; i < 100000; ++i) {
            const Addr a = g.next();
            ++total;
            auto it = where.find(a);
            if (it != where.end()) {
                ++hits;
                lru.erase(it->second);
            } else if (lru.size() >= cap) {
                where.erase(lru.back());
                lru.pop_back();
            }
            lru.push_front(a);
            where[a] = lru.begin();
        }
        return static_cast<double>(hits) / total;
    };

    const double steep_small = hit_rate_at(gs, ws / 8);
    const double flat_small = hit_rate_at(gf, ws / 8);
    // theta=0.4: (1/8)^0.4 = 0.43; theta=1: 1/8 = 0.125.
    EXPECT_GT(steep_small, flat_small + 0.2);
    EXPECT_NEAR(steep_small, std::pow(1.0 / 8.0, 0.4), 0.08);
    EXPECT_NEAR(flat_small, 1.0 / 8.0, 0.05);

    // The fast IRM mode preserves the ordering (steeper theta ->
    // higher hit rate at small capacity) with a flatter curve.
    StackDistParams irm_steep{ws, 0.4, 0.0};
    StackDistParams irm_flat{ws, 1.0, 0.0};
    StackDistGenerator is(0, irm_steep, 11), iff(0, irm_flat, 11);
    const double irm_steep_small = hit_rate_at(is, ws / 8);
    const double irm_flat_small = hit_rate_at(iff, ws / 8);
    EXPECT_GT(irm_steep_small, irm_flat_small + 0.1);
    EXPECT_NEAR(irm_flat_small, 1.0 / 8.0, 0.05);
}

TEST(StackDistGenerator, ColdFractionCreatesNewBlocks)
{
    StackDistParams p{1024, 0.7, 0.5};
    StackDistGenerator g(0, p, 13);
    std::set<Addr> seen;
    const int n = 10000;
    for (int i = 0; i < n; ++i)
        seen.insert(g.next());
    // With 50% cold accesses we should see far more distinct blocks
    // than the steady working set.
    EXPECT_GT(seen.size(), 4000u);
}

TEST(StackDistGenerator, LoopComponentIsCyclic)
{
    StackDistParams p;
    p.workingSetBlocks = 256;
    p.theta = 0.7;
    p.coldFrac = 0.0;
    p.loopFrac = 1.0; // loop only
    p.loopBlocks = 64;
    StackDistGenerator g(3, p, 17);
    std::set<Addr> seen;
    for (int i = 0; i < 10000; ++i)
        seen.insert(g.next());
    EXPECT_EQ(seen.size(), 64u);
}

TEST(StackDistGenerator, LoopStrideSkewsSets)
{
    StackDistParams p;
    p.workingSetBlocks = 256;
    p.coldFrac = 0.0;
    p.loopFrac = 1.0;
    p.loopBlocks = 4096;
    p.loopStride = 2;
    StackDistGenerator g(0, p, 19);
    std::set<std::uint32_t> sets;
    const std::uint32_t num_sets = 1024;
    for (int i = 0; i < 20000; ++i)
        sets.insert(static_cast<std::uint32_t>(g.next() & (num_sets - 1)));
    // Stride 2 touches only half the sets.
    EXPECT_LE(sets.size(), num_sets / 2);
}
