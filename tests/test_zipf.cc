/**
 * @file
 * Shared skewed-popularity samplers (common/zipf.hh).
 *
 * The serving load generator and the simulator's trace generator
 * both draw from this header now; these tests pin the draw streams
 * to recorded constants so any numeric drift — a refactor, a
 * compiler "optimisation" of the Hörmann-Derflinger helpers, a
 * table-size change — fails loudly instead of silently invalidating
 * every serve determinism golden and trace fixture at once.
 */

#include <cmath>
#include <cstdint>
#include <type_traits>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "common/zipf.hh"
#include "serve/zipf.hh"
#include "workload/stack_dist_generator.hh"

namespace prism
{
namespace
{

// The serving alias must be the shared type itself — not a copy —
// so serve draw streams are the common ones by construction.
static_assert(
    std::is_same_v<serve::ZipfGenerator, ZipfGenerator>,
    "serve::ZipfGenerator must alias the shared sampler");

TEST(ZipfShared, DrawStreamMatchesRecordedConstants)
{
    // First 16 ranks of ZipfGenerator(1e6, 0.99) under Rng(12345),
    // recorded from the pre-dedup serving sampler. Byte-identical
    // streams are what keep the serve determinism suite's goldens
    // valid across the extraction to common/.
    const std::uint64_t expected[] = {
        26,     171921, 0,  521589, 433, 866398, 114445, 17406,
        4897,   1,      14, 562,    5,   0,      158587, 3,
    };
    ZipfGenerator zipf(1000000, 0.99);
    Rng rng(12345);
    for (const std::uint64_t want : expected)
        EXPECT_EQ(zipf.next(rng), want);
}

TEST(ZipfShared, UniformExponentStreamMatchesRecordedConstants)
{
    const std::uint64_t expected[] = {
        3, 63, 8, 23, 1, 48, 16, 35, 9, 29, 50, 5, 54, 50, 32, 61,
    };
    ZipfGenerator zipf(64, 0.0);
    Rng rng(777);
    for (const std::uint64_t want : expected)
        EXPECT_EQ(zipf.next(rng), want);
}

TEST(ZipfShared, SameSeedSameStream)
{
    ZipfGenerator zipf(4096, 0.8);
    Rng a(99), b(99);
    for (int i = 0; i < 1000; ++i)
        ASSERT_EQ(zipf.next(a), zipf.next(b));
}

TEST(PowerLawTable, MatchesRecordedConstants)
{
    // fraction() at fixed points for theta 0.7 (the default stream
    // locality), recorded from the pre-extraction private table in
    // StackDistGenerator. Exact equality: the tabulation and the
    // interpolation must stay the byte-identical computation.
    const double u[] = {0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.999, 1.0};
    const double expected[] = {
        0.0,
        0.03727595352823776,
        0.13801118920922653,
        0.37149857228423711,
        0.66300391143270965,
        0.86026481134637844,
        0.99857173633666318,
        1.0,
    };
    PowerLawTable table(0.7);
    for (std::size_t i = 0; i < std::size(u); ++i)
        EXPECT_EQ(table.fraction(u[i]), expected[i]);
}

TEST(PowerLawTable, TracksTheAnalyticInverseCdf)
{
    // The table is a 4096-point piecewise-linear approximation of
    // u^(1/theta); it should stay within interpolation error of the
    // analytic law everywhere that law is smooth.
    for (const double theta : {0.3, 0.7, 1.0, 2.5}) {
        PowerLawTable table(theta);
        for (int i = 1; i <= 1000; ++i) {
            const double u = static_cast<double>(i) / 1000.0;
            const double exact = std::pow(u, 1.0 / theta);
            EXPECT_NEAR(table.fraction(u), exact, 2e-3)
                << "theta " << theta << " u " << u;
        }
    }
}

TEST(PowerLawTable, StackDistStreamUnchangedByExtraction)
{
    // The trace generator's whole access stream is a function of the
    // distance draws; two generators with identical parameters and
    // seeds must agree access-for-access (the trace goldens depend
    // on it transitively).
    StackDistParams params;
    params.workingSetBlocks = 1 << 10;
    params.theta = 0.7;
    params.coldFrac = 0.05;
    StackDistGenerator a(0, params, 4242), b(0, params, 4242);
    for (int i = 0; i < 20000; ++i)
        ASSERT_EQ(a.next(), b.next());
}

} // namespace
} // namespace prism
