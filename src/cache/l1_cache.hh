/**
 * @file
 * Private per-core L1 data cache (64KB, 2-way in the paper's setup).
 *
 * The L1 filters the hottest accesses out of the LLC stream. It is a
 * plain LRU set-associative cache; since associativity is tiny it is
 * implemented directly rather than via the ReplacementPolicy seam.
 */

#ifndef PRISM_CACHE_L1_CACHE_HH
#define PRISM_CACHE_L1_CACHE_HH

#include <cstdint>
#include <vector>

#include "common/prism_assert.hh"
#include "common/types.hh"

namespace prism
{

/** Small private LRU cache; returns hit/miss per block access. */
class L1Cache
{
  public:
    /**
     * @param size_bytes Capacity (default 64KB).
     * @param ways Associativity (default 2).
     * @param block_bytes Block size (default 64B).
     */
    explicit L1Cache(std::uint64_t size_bytes = 64 << 10,
                     std::uint32_t ways = 2,
                     std::uint32_t block_bytes = 64)
        : ways_(ways)
    {
        const std::uint64_t blocks = size_bytes / block_bytes;
        fatalIf(ways_ == 0 || blocks % ways_ != 0,
                "L1Cache: bad geometry");
        num_sets_ = static_cast<std::uint32_t>(blocks / ways_);
        fatalIf((num_sets_ & (num_sets_ - 1)) != 0,
                "L1Cache: sets must be a power of two");
        tags_.assign(blocks, 0);
        valid_.assign(blocks, 0);
        stamp_.assign(blocks, 0);
    }

    /** Access block @p addr; true on hit (LRU state updated). */
    bool
    access(Addr addr)
    {
        const std::uint32_t set = addr & (num_sets_ - 1);
        const std::size_t base =
            static_cast<std::size_t>(set) * ways_;
        ++clock_;

        int victim = 0;
        std::uint64_t victim_stamp = ~0ull;
        for (std::uint32_t w = 0; w < ways_; ++w) {
            if (valid_[base + w] && tags_[base + w] == addr) {
                stamp_[base + w] = clock_;
                ++hits_;
                return true;
            }
            const std::uint64_t s = valid_[base + w] ? stamp_[base + w]
                                                     : 0;
            if (s < victim_stamp) {
                victim_stamp = s;
                victim = static_cast<int>(w);
            }
        }

        ++misses_;
        tags_[base + victim] = addr;
        valid_[base + victim] = 1;
        stamp_[base + victim] = clock_;
        return false;
    }

    std::uint64_t hits() const { return hits_; }
    std::uint64_t misses() const { return misses_; }

  private:
    std::uint32_t ways_;
    std::uint32_t num_sets_;
    std::vector<Addr> tags_;
    std::vector<char> valid_;
    std::vector<std::uint64_t> stamp_;
    std::uint64_t clock_ = 0;
    std::uint64_t hits_ = 0;
    std::uint64_t misses_ = 0;
};

} // namespace prism

#endif // PRISM_CACHE_L1_CACHE_HH
