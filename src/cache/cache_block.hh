/**
 * @file
 * Cache block metadata (structure-of-arrays) and per-set state.
 *
 * Every block in the shared LLC is tagged with the core (program)
 * that brought it in — the bookkeeping the paper notes is common to
 * all cache-partitioning schemes. The metadata is packed as a
 * structure of arrays (BlockArrays): one contiguous array per field,
 * so the hot lookup walks 8-byte tags (and 1-byte signatures) back to
 * back instead of striding over 24-byte per-block structs — a 16-way
 * tag scan touches 2 cache lines instead of 6, a 64-way scan 8
 * instead of 24. Policies and schemes keep field-access syntax
 * (`set.blocks[w].owner`) through the BlockRef proxy.
 *
 * Replacement-policy state lives in two places: an explicit per-set
 * recency list (exact orderings for LRU / DIP / PIPP), stored inline
 * in SetState with no per-set heap allocation, and an 8-bit coarse
 * timestamp per block (timestamp-LRU, used by the Vantage
 * comparison).
 *
 * The AoS `CacheBlock` struct survives as the *reference model*
 * layout: tests/test_soa_equivalence.cc re-implements the cache over
 * per-block structs and cross-checks the SoA cache block by block.
 */

#ifndef PRISM_CACHE_CACHE_BLOCK_HH
#define PRISM_CACHE_CACHE_BLOCK_HH

#include <bit>
#include <cstdint>
#include <cstring>
#include <iterator>
#include <ostream>
#include <span>
#include <vector>

#include "common/prism_assert.hh"
#include "common/types.hh"

namespace prism
{

/** Region tags used by Vantage-style schemes. */
enum : std::uint8_t
{
    regionManaged = 0,
    regionUnmanaged = 1,
};

/** Tag value of a never-filled frame (no valid block ever has it). */
inline constexpr Addr invalidTag = ~Addr{0};

/**
 * Metadata for one cache block as a plain struct (the data payload
 * is not modelled). Not used by SharedCache itself — the hot path
 * runs on BlockArrays — but kept as the layout of the reference
 * model the SoA equivalence tests cross-check against.
 */
struct CacheBlock
{
    Addr tag = 0;               ///< full block address
    CoreId owner = invalidCore; ///< core whose miss filled the block
    bool valid = false;
    bool dirty = false;         ///< written since fill (writebacks)
    std::uint8_t timestamp = 0; ///< coarse 8-bit timestamp (TS-LRU)
    std::uint8_t region = regionManaged; ///< Vantage region tag
    std::uint8_t rrpv = 0;      ///< re-reference prediction (RRIP)
};

/**
 * Mutable view of one block's fields inside a BlockArrays. Field
 * names and value semantics match CacheBlock, so policy code reads
 * identically over either layout; valid/dirty are 0/1 bytes.
 */
struct BlockRef
{
    Addr &tag;
    CoreId &owner;
    std::uint8_t &valid;
    std::uint8_t &dirty;
    std::uint8_t &timestamp;
    std::uint8_t &region;
    std::uint8_t &rrpv;
};

/** Per-field metadata arrays for a run of block frames. */
struct BlockArrays
{
    std::vector<Addr> tag;
    std::vector<CoreId> owner;
    std::vector<std::uint8_t> valid;
    std::vector<std::uint8_t> dirty;
    std::vector<std::uint8_t> timestamp;
    std::vector<std::uint8_t> region;
    std::vector<std::uint8_t> rrpv;

    BlockArrays() = default;
    explicit BlockArrays(std::size_t n) { resize(n); }

    /** Frames held (every field array has this length). */
    std::size_t size() const { return tag.size(); }

    /**
     * Resize every field to @p n frames, new frames invalid: the
     * never-filled sentinel tag, no owner, zeroed policy state.
     */
    void
    resize(std::size_t n)
    {
        tag.assign(n, invalidTag);
        owner.assign(n, invalidCore);
        valid.assign(n, 0);
        dirty.assign(n, 0);
        timestamp.assign(n, 0);
        region.assign(n, regionManaged);
        rrpv.assign(n, 0);
    }

    BlockRef
    operator[](std::size_t i)
    {
        return BlockRef{tag[i],       owner[i],  valid[i], dirty[i],
                        timestamp[i], region[i], rrpv[i]};
    }
};

/**
 * A borrowed window of @c ways consecutive frames of a BlockArrays —
 * what SetView hands to policies. Indexing yields BlockRef proxies;
 * the raw field pointers are public for hot loops that want to scan
 * one field contiguously.
 */
struct SetBlocks
{
    Addr *tag = nullptr;
    CoreId *owner = nullptr;
    std::uint8_t *valid = nullptr;
    std::uint8_t *dirty = nullptr;
    std::uint8_t *timestamp = nullptr;
    std::uint8_t *region = nullptr;
    std::uint8_t *rrpv = nullptr;
    std::uint32_t ways = 0;

    SetBlocks() = default;

    SetBlocks(BlockArrays &arrays, std::size_t base,
              std::uint32_t num_ways)
        : tag(arrays.tag.data() + base),
          owner(arrays.owner.data() + base),
          valid(arrays.valid.data() + base),
          dirty(arrays.dirty.data() + base),
          timestamp(arrays.timestamp.data() + base),
          region(arrays.region.data() + base),
          rrpv(arrays.rrpv.data() + base), ways(num_ways)
    {
    }

    std::size_t size() const { return ways; }

    BlockRef
    operator[](std::size_t w) const
    {
        return BlockRef{tag[w],       owner[w],  valid[w], dirty[w],
                        timestamp[w], region[w], rrpv[w]};
    }
};

/**
 * The per-set recency list: way indices from MRU (front) to LRU
 * (back), fixed-capacity inline storage (no per-set heap allocation,
 * no pointer chase on the hit path). The interface mirrors the
 * std::vector subset the recency helpers and policies use.
 */
class OrderList
{
  public:
    static constexpr std::uint32_t maxWays = 64;

    using iterator = std::uint16_t *;
    using const_iterator = const std::uint16_t *;
    using reverse_iterator = std::reverse_iterator<const_iterator>;

    iterator begin() { return data_; }
    iterator end() { return data_ + size_; }
    const_iterator begin() const { return data_; }
    const_iterator end() const { return data_ + size_; }
    reverse_iterator rbegin() const
    {
        return reverse_iterator(end());
    }
    reverse_iterator rend() const { return reverse_iterator(begin()); }

    std::size_t size() const { return size_; }
    bool empty() const { return size_ == 0; }
    void clear() { size_ = 0; }

    std::uint16_t operator[](std::size_t i) const { return data_[i]; }
    std::uint16_t &operator[](std::size_t i) { return data_[i]; }
    std::uint16_t front() const { return data_[0]; }
    std::uint16_t back() const { return data_[size_ - 1]; }

    void
    push_back(std::uint16_t v)
    {
        panicIf(size_ >= maxWays, "OrderList: capacity exceeded");
        data_[size_++] = v;
    }

    /** Remove the entry at @p it (preserving order). */
    void
    erase(const_iterator it)
    {
        const auto pos = static_cast<std::size_t>(it - data_);
        std::memmove(data_ + pos, data_ + pos + 1,
                     (size_ - pos - 1) * sizeof(std::uint16_t));
        --size_;
    }

    /** Insert @p v before @p it (preserving order). */
    void
    insert(const_iterator it, std::uint16_t v)
    {
        panicIf(size_ >= maxWays, "OrderList: capacity exceeded");
        const auto pos = static_cast<std::size_t>(it - data_);
        std::memmove(data_ + pos + 1, data_ + pos,
                     (size_ - pos) * sizeof(std::uint16_t));
        data_[pos] = v;
        ++size_;
    }

    friend bool
    operator==(const OrderList &a,
               const std::vector<std::uint16_t> &b)
    {
        return std::equal(a.begin(), a.end(), b.begin(), b.end());
    }

    friend bool
    operator==(const std::vector<std::uint16_t> &a,
               const OrderList &b)
    {
        return b == a;
    }

    friend bool
    operator==(const OrderList &a, const OrderList &b)
    {
        return std::equal(a.begin(), a.end(), b.begin(), b.end());
    }

    friend std::ostream &
    operator<<(std::ostream &os, const OrderList &o)
    {
        os << "[";
        for (std::size_t i = 0; i < o.size(); ++i)
            os << (i ? " " : "") << o[i];
        return os << "]";
    }

  private:
    std::uint16_t size_ = 0;
    std::uint16_t data_[maxWays];
};

/**
 * Per-set replacement state.
 *
 * @c order lists way indices from MRU (front) to LRU (back); only
 * valid ways appear in it. @c accesses counts set accesses to drive
 * coarse-timestamp aging. The counter sits first so the hit path's
 * touch of (accesses, leading order entries) lands in one cache
 * line.
 */
struct SetState
{
    std::uint32_t accesses = 0;
    OrderList order;
};

/** A borrowed view of one cache set, handed to policies/schemes. */
struct SetView
{
    std::uint32_t setIdx;
    SetBlocks blocks;
    SetState &state;

    std::size_t ways() const { return blocks.size(); }
};

/**
 * Coarse 8-bit timestamp helpers shared by the timestamp-LRU
 * replacement policy and Vantage (which ranks demotion candidates by
 * the same wrapped age).
 */
namespace coarse_ts
{

/** Aging quantum: one timestamp tick per 2^shift set accesses. */
inline constexpr unsigned shift = 2;

/** Current stamp of the set. */
inline std::uint8_t
stamp(const SetView &set)
{
    return static_cast<std::uint8_t>(set.state.accesses >> shift);
}

/** Wrapped age of @p way relative to the set's current stamp. */
inline unsigned
age(const SetView &set, int way)
{
    return static_cast<std::uint8_t>(
        stamp(set) -
        set.blocks.timestamp[static_cast<std::size_t>(way)]);
}

/** Touch @p way: advance the set clock and restamp the block. */
inline void
touch(const SetView &set, int way)
{
    ++set.state.accesses;
    set.blocks.timestamp[static_cast<std::size_t>(way)] = stamp(set);
}

} // namespace coarse_ts

/**
 * Manipulation helpers for the per-set recency list. Kept free so
 * both ReplacementPolicy implementations and integrated schemes like
 * PIPP (which inserts at arbitrary stack positions) can share them.
 */
namespace recency
{

/** Position of @p way in the order list, or -1 if absent. */
inline int
find(const SetState &st, int way)
{
    const std::size_t n = st.order.size();
    if constexpr (std::endian::native == std::endian::little) {
        // SWAR scan: four 16-bit entries per 64-bit load. The
        // zero-lane detector below is exact for the *lowest* matching
        // lane (borrows only propagate upward), which is the one we
        // want: the first match in list order. Entries are way
        // indices < maxWays, so no lane ever has its high bit set and
        // upward borrows cannot fabricate a lower match. The inline
        // array is maxWays entries long, so whole-word loads past
        // size() stay in bounds; a lane mask discards stale entries.
        const std::uint16_t *d = st.order.begin();
        const std::uint64_t pat = 0x0001000100010001ULL *
                                  static_cast<std::uint16_t>(way);
        for (std::size_t i = 0; i < n; i += 4) {
            std::uint64_t v;
            std::memcpy(&v, d + i, sizeof(v));
            v ^= pat;
            std::uint64_t m = (v - 0x0001000100010001ULL) & ~v &
                              0x8000800080008000ULL;
            if (n - i < 4)
                m &= (std::uint64_t{1} << (16 * (n - i))) - 1;
            if (m) {
                const std::size_t lane =
                    static_cast<std::size_t>(std::countr_zero(m)) / 16;
                return static_cast<int>(i + lane);
            }
        }
        return -1;
    }
    for (std::size_t i = 0; i < n; ++i)
        if (st.order[i] == way)
            return static_cast<int>(i);
    return -1;
}

/** Remove @p way from the list if present. */
inline void
remove(SetState &st, int way)
{
    const int pos = find(st, way);
    if (pos >= 0)
        st.order.erase(st.order.begin() + pos);
}

/**
 * Move @p way to the MRU position (classic LRU hit update).
 *
 * Single scan + single shift: when the way is already in the list
 * this rotates the prefix [0, pos) right by one instead of erasing
 * and re-inserting (which would shift both the suffix and the whole
 * list). The resulting order is identical.
 */
inline void
moveToFront(SetState &st, int way)
{
    const int pos = find(st, way);
    if (pos < 0) {
        st.order.insert(st.order.begin(),
                        static_cast<std::uint16_t>(way));
        return;
    }
    std::uint16_t *d = st.order.begin();
    std::memmove(d + 1, d, static_cast<std::size_t>(pos) *
                               sizeof(std::uint16_t));
    d[0] = static_cast<std::uint16_t>(way);
}

/** Promote @p way by one position towards MRU (PIPP hit update). */
inline void
promoteByOne(SetState &st, int way)
{
    const int pos = find(st, way);
    panicIf(pos < 0, "recency::promoteByOne: way not in order list");
    if (pos > 0)
        std::swap(st.order[pos], st.order[pos - 1]);
}

/**
 * Insert @p way at @p pos_from_lru positions above the LRU end
 * (0 == LRU position itself). Clamped to the list bounds.
 */
inline void
insertAtLruOffset(SetState &st, int way, std::size_t pos_from_lru)
{
    remove(st, way);
    const std::size_t n = st.order.size();
    const std::size_t off = pos_from_lru > n ? n : pos_from_lru;
    st.order.insert(st.order.end() - off, static_cast<std::uint16_t>(way));
}

/** The way at the LRU end; list must be non-empty. */
inline int
lruWay(const SetState &st)
{
    panicIf(st.order.empty(), "recency::lruWay: empty order list");
    return st.order.back();
}

} // namespace recency

} // namespace prism

#endif // PRISM_CACHE_CACHE_BLOCK_HH
