/**
 * @file
 * Cache block metadata and per-set state.
 *
 * Every block in the shared LLC is tagged with the core (program)
 * that brought it in — the bookkeeping the paper notes is common to
 * all cache-partitioning schemes. Replacement-policy state lives in
 * two places: an explicit per-set recency list (exact orderings for
 * LRU / DIP / PIPP) and an 8-bit coarse timestamp per block
 * (timestamp-LRU, used by the Vantage comparison).
 */

#ifndef PRISM_CACHE_CACHE_BLOCK_HH
#define PRISM_CACHE_CACHE_BLOCK_HH

#include <cstdint>
#include <span>
#include <vector>

#include "common/prism_assert.hh"
#include "common/types.hh"

namespace prism
{

/** Region tags used by Vantage-style schemes. */
enum : std::uint8_t
{
    regionManaged = 0,
    regionUnmanaged = 1,
};

/** Metadata for one cache block (the data payload is not modelled). */
struct CacheBlock
{
    Addr tag = 0;               ///< full block address
    CoreId owner = invalidCore; ///< core whose miss filled the block
    bool valid = false;
    bool dirty = false;         ///< written since fill (writebacks)
    std::uint8_t timestamp = 0; ///< coarse 8-bit timestamp (TS-LRU)
    std::uint8_t region = regionManaged; ///< Vantage region tag
    std::uint8_t rrpv = 0;      ///< re-reference prediction (RRIP)
};

/**
 * Per-set replacement state.
 *
 * @c order lists way indices from MRU (front) to LRU (back); only
 * valid ways appear in it. @c accesses counts set accesses to drive
 * coarse-timestamp aging.
 */
struct SetState
{
    std::vector<std::uint16_t> order;
    std::uint32_t accesses = 0;
};

/** A borrowed view of one cache set, handed to policies/schemes. */
struct SetView
{
    std::uint32_t setIdx;
    std::span<CacheBlock> blocks;
    SetState &state;

    std::size_t ways() const { return blocks.size(); }
};

/**
 * Coarse 8-bit timestamp helpers shared by the timestamp-LRU
 * replacement policy and Vantage (which ranks demotion candidates by
 * the same wrapped age).
 */
namespace coarse_ts
{

/** Aging quantum: one timestamp tick per 2^shift set accesses. */
inline constexpr unsigned shift = 2;

/** Current stamp of the set. */
inline std::uint8_t
stamp(const SetView &set)
{
    return static_cast<std::uint8_t>(set.state.accesses >> shift);
}

/** Wrapped age of @p way relative to the set's current stamp. */
inline unsigned
age(const SetView &set, int way)
{
    return static_cast<std::uint8_t>(
        stamp(set) -
        set.blocks[static_cast<std::size_t>(way)].timestamp);
}

/** Touch @p way: advance the set clock and restamp the block. */
inline void
touch(SetView &set, int way)
{
    ++set.state.accesses;
    set.blocks[static_cast<std::size_t>(way)].timestamp = stamp(set);
}

} // namespace coarse_ts

/**
 * Manipulation helpers for the per-set recency list. Kept free so
 * both ReplacementPolicy implementations and integrated schemes like
 * PIPP (which inserts at arbitrary stack positions) can share them.
 */
namespace recency
{

/** Position of @p way in the order list, or -1 if absent. */
inline int
find(const SetState &st, int way)
{
    for (std::size_t i = 0; i < st.order.size(); ++i)
        if (st.order[i] == way)
            return static_cast<int>(i);
    return -1;
}

/** Remove @p way from the list if present. */
inline void
remove(SetState &st, int way)
{
    const int pos = find(st, way);
    if (pos >= 0)
        st.order.erase(st.order.begin() + pos);
}

/** Move @p way to the MRU position (classic LRU hit update). */
inline void
moveToFront(SetState &st, int way)
{
    remove(st, way);
    st.order.insert(st.order.begin(), static_cast<std::uint16_t>(way));
}

/** Promote @p way by one position towards MRU (PIPP hit update). */
inline void
promoteByOne(SetState &st, int way)
{
    const int pos = find(st, way);
    panicIf(pos < 0, "recency::promoteByOne: way not in order list");
    if (pos > 0)
        std::swap(st.order[pos], st.order[pos - 1]);
}

/**
 * Insert @p way at @p pos_from_lru positions above the LRU end
 * (0 == LRU position itself). Clamped to the list bounds.
 */
inline void
insertAtLruOffset(SetState &st, int way, std::size_t pos_from_lru)
{
    remove(st, way);
    const std::size_t n = st.order.size();
    const std::size_t off = pos_from_lru > n ? n : pos_from_lru;
    st.order.insert(st.order.end() - off, static_cast<std::uint16_t>(way));
}

/** The way at the LRU end; list must be non-empty. */
inline int
lruWay(const SetState &st)
{
    panicIf(st.order.empty(), "recency::lruWay: empty order list");
    return st.order.back();
}

} // namespace recency

} // namespace prism

#endif // PRISM_CACHE_CACHE_BLOCK_HH
