/**
 * @file
 * Replacement-policy abstraction for the shared cache.
 *
 * PriSM's central claim is that it layers on *any* underlying
 * replacement policy (paper §3.1, §5.6): the partitioning scheme
 * picks a victim core, the replacement policy picks the victim block
 * of that core. This interface is that seam. Policies answer two
 * kinds of question: update recency state on hits/fills, and name a
 * victim among an arbitrary subset of ways.
 */

#ifndef PRISM_CACHE_REPL_POLICY_HH
#define PRISM_CACHE_REPL_POLICY_HH

#include <memory>
#include <span>
#include <string>

#include "cache/cache_block.hh"

namespace prism
{

/** Kinds of built-in replacement policy. */
enum class ReplKind
{
    LRU,          ///< exact LRU via per-set recency lists
    TimestampLRU, ///< 8-bit coarse-timestamp LRU (ZCache/Vantage style)
    DIP,          ///< dynamic insertion policy (LRU/BIP set dueling)
    Random,       ///< random victim; MRU insertion
    RRIP,         ///< dynamic re-reference interval prediction [8]
};

/** Interface every replacement policy implements. */
class ReplacementPolicy
{
  public:
    virtual ~ReplacementPolicy() = default;

    virtual std::string name() const = 0;

    /** A block in @p set at @p way was hit. */
    virtual void onHit(const SetView &set, int way) = 0;

    /** A new block was filled into @p way (already marked valid). */
    virtual void onFill(const SetView &set, int way) = 0;

    /**
     * Choose a victim among the valid ways for which @p allowed is
     * true. An empty span allows every valid way.
     *
     * @return Chosen way, or invalidWay if no allowed valid way.
     */
    virtual int victimAmong(const SetView &set,
                            std::span<const char> allowed) = 0;

    /** Victim among all valid ways. */
    int victim(const SetView &set) { return victimAmong(set, {}); }

    /**
     * True when victimAmong() and evictionOrder() are exactly the
     * back-to-front walk of the per-set recency order (the LRU
     * family: LRU and DIP). Schemes may then fuse victim
     * identification with their own candidate scans into one walk of
     * the order list instead of building an allowed-way mask and
     * calling back through the interface.
     */
    virtual bool victimOrderIsRecency() const { return false; }

    /**
     * Fill @p out with the valid ways in eviction order (best victim
     * first). Used by schemes that scan replacement candidates, e.g.
     * PriSM's fallback and Vantage's demotion scan.
     */
    virtual void evictionOrder(const SetView &set,
                               std::vector<int> &out) = 0;
};

/** Instantiate a built-in policy. @p seed feeds stochastic policies. */
std::unique_ptr<ReplacementPolicy> makeReplPolicy(ReplKind kind,
                                                  std::uint64_t seed,
                                                  std::uint32_t num_sets);

/** Human-readable policy name for configs/reports. */
const char *replKindName(ReplKind kind);

} // namespace prism

#endif // PRISM_CACHE_REPL_POLICY_HH
