/**
 * @file
 * The shared last-level cache model.
 *
 * A set-associative cache whose blocks are tagged with the owning
 * core. Replacement is delegated to a ReplacementPolicy; victim-core
 * selection (the partitioning half) is delegated to an optional
 * PartitionScheme. With no scheme attached the cache behaves as an
 * ordinary unmanaged cache — the paper's LRU baseline.
 *
 * The cache also owns the interval machinery: every @c intervalMisses
 * misses it assembles an IntervalSnapshot (cache statistics plus
 * shadow-tag estimates), lets an optional timing hook add CPI data,
 * hands it to the scheme's allocation policy, and resets the interval
 * counters.
 *
 * Hot-path layout: block metadata lives in per-field arrays
 * (BlockArrays) plus an 8-bit tag-signature array, so a lookup scans
 * one byte per way (SWAR, 8 ways per load) and touches full 8-byte
 * tags only on signature matches. Per-core occupancy is bookkept as
 * per-interval deltas in cache-line-private counters and folded into
 * the audited occupancy array once per interval — the per-access
 * read-modify-write of a shared counter array (a false-sharing
 * hazard when many sweep jobs run side by side) is off the miss path
 * entirely.
 */

#ifndef PRISM_CACHE_SHARED_CACHE_HH
#define PRISM_CACHE_SHARED_CACHE_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "cache/cache_block.hh"
#include "cache/partition_scheme.hh"
#include "cache/repl_policy.hh"
#include "cache/shadow_tags.hh"
#include "common/types.hh"
#include "telemetry/metrics_registry.hh"

namespace prism
{

/** Static configuration of a SharedCache. */
struct CacheConfig
{
    std::uint64_t sizeBytes = 4ull << 20;
    std::uint32_t ways = 16;
    std::uint32_t blockBytes = 64;
    std::uint32_t numCores = 4;

    ReplKind repl = ReplKind::LRU;

    /**
     * Interval length W in misses; 0 selects the paper's default of
     * one recomputation per N misses (N = number of cache blocks).
     */
    std::uint64_t intervalMisses = 0;

    /** Shadow tags sample 1 in this many sets. */
    std::uint32_t shadowSampling = 32;

    std::uint64_t seed = 1;

    std::uint64_t
    numBlocks() const
    {
        return sizeBytes / blockBytes;
    }

    std::uint32_t
    numSets() const
    {
        return static_cast<std::uint32_t>(numBlocks() / ways);
    }
};

/** Hit/miss outcome of one cache access. */
struct AccessResult
{
    bool hit = false;
    /** Valid only on a miss that replaced a block. */
    bool evicted = false;
    CoreId evictedOwner = invalidCore;
    /** The evicted block was dirty and must be written back. */
    bool writeback = false;
};

/** Aggregate per-core counters since construction. */
struct CoreCacheTotals
{
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;

    std::uint64_t accesses() const { return hits + misses; }
};

/** The shared LLC. */
class SharedCache
{
  public:
    explicit SharedCache(const CacheConfig &config);

    // Non-copyable: holds policy state and raw scheme pointers.
    SharedCache(const SharedCache &) = delete;
    SharedCache &operator=(const SharedCache &) = delete;

    /** Attach the management scheme (non-owning); may be null. */
    void setScheme(PartitionScheme *scheme) { scheme_ = scheme; }

    /**
     * Hook invoked on each interval boundary after cache statistics
     * are filled in, letting a timing model add CPI fields before the
     * scheme's allocation policy runs.
     */
    void
    setTimingHook(std::function<void(IntervalSnapshot &)> hook)
    {
        timing_hook_ = std::move(hook);
    }

    /**
     * Hook invoked at each interval boundary with the live per-core
     * occupancy counters, the block count and the 1-based interval
     * index — the fault-injection seam (a FaultInjector corrupts the
     * counters here without the cache depending on it).
     */
    void
    setOccupancyFaultHook(
        std::function<bool(std::vector<std::uint64_t> &, std::uint64_t,
                           std::uint64_t)>
            hook)
    {
        occupancy_fault_hook_ = std::move(hook);
    }

    /**
     * Observer invoked at each interval boundary after the scheme's
     * allocation policy ran, with the finished snapshot and the
     * 1-based interval index — the telemetry seam (the System
     * records the per-interval time series here).
     */
    void
    setIntervalObserver(
        std::function<void(const IntervalSnapshot &, std::uint64_t)>
            observer)
    {
        interval_observer_ = std::move(observer);
    }

    /** Scoped-timer stats for access(); default = disabled. */
    void
    setAccessSpan(const telemetry::SpanStats &span)
    {
        access_span_ = span;
    }

    /**
     * Checked mode: audit block-ownership invariants at every
     * interval boundary and repair the occupancy counters from the
     * blocks actually resident when they disagree.
     */
    void setChecked(bool on) { checked_ = on; }
    bool checked() const { return checked_; }

    /** Ownership invariant violations detected in checked mode. */
    std::uint64_t invariantViolations() const
    {
        return invariant_violations_;
    }

    /** Occupancy-counter repairs performed in checked mode. */
    std::uint64_t ownershipRepairs() const { return ownership_repairs_; }

    /**
     * Perform one access by @p core to block address @p addr.
     * @param is_store Marks the block dirty; a dirty block's later
     *        eviction is reported as a writeback.
     */
    AccessResult access(CoreId core, Addr addr, bool is_store = false);

    // --- geometry ---
    const CacheConfig &config() const { return config_; }
    std::uint32_t numSets() const { return num_sets_; }
    std::uint32_t ways() const { return config_.ways; }
    std::uint64_t numBlocks() const { return config_.numBlocks(); }

    /** Set index for @p addr. */
    std::uint32_t
    setIndex(Addr addr) const
    {
        return static_cast<std::uint32_t>(addr & (num_sets_ - 1));
    }

    /** Borrowed view of set @p set_idx. */
    SetView setView(std::uint32_t set_idx);

    /** Read-only view of every block frame's field arrays (audits). */
    const BlockArrays &blockArrays() const { return blocks_; }

    // --- occupancy & statistics ---

    /**
     * Blocks of @p core currently resident. Folds the pending
     * per-interval delta on top of the last audited value, so
     * mid-interval reads see the live count.
     */
    std::uint64_t
    occupancy(CoreId core) const
    {
        return static_cast<std::uint64_t>(
            static_cast<std::int64_t>(occupancy_[core]) +
            occ_delta_[core].v);
    }

    double
    occupancyFraction(CoreId core) const
    {
        return static_cast<double>(occupancy(core)) /
               static_cast<double>(numBlocks());
    }

    const CoreCacheTotals &totals(CoreId core) const
    {
        return totals_[core];
    }

    std::uint64_t totalMisses() const { return total_misses_; }

    /** Dirty evictions since construction. */
    std::uint64_t writebacks() const { return writebacks_; }

    /** Count of blocks of @p core currently in set @p set_idx. */
    std::uint32_t countInSet(std::uint32_t set_idx, CoreId core);

    ShadowTags &shadow() { return shadow_; }
    const ShadowTags &shadow() const { return shadow_; }

    ReplacementPolicy &repl() { return *repl_; }

    /** Number of interval recomputations so far. */
    std::uint64_t intervals() const { return intervals_; }

    /** Effective interval length W in misses. */
    std::uint64_t intervalLength() const { return interval_w_; }

  private:
    /**
     * Per-interval occupancy delta for one core, alone on its cache
     * line: the only per-access-written occupancy state, private to
     * the simulating thread (kills false sharing across sweep jobs).
     */
    struct alignas(64) OccDelta
    {
        std::int64_t v = 0;
    };

    void endInterval();

    /** Fold the per-interval deltas into the occupancy array. */
    void foldOccupancy();

    /**
     * Recount per-core ownership from the resident blocks and repair
     * the occupancy counters if they disagree (checked mode; the
     * counters can only drift under fault injection). Deltas must be
     * folded first.
     */
    void auditAndRepairOwnership();

    /** Way holding @p addr in the set at frame @p base, or -1. */
    int findHitWay(std::size_t base, Addr addr,
                   std::uint8_t sig) const;

    /** First invalid way of the set at frame @p base. */
    int findInvalidWay(std::size_t base) const;

    CacheConfig config_;
    std::uint32_t num_sets_;
    std::uint64_t interval_w_;

    BlockArrays blocks_;
    /** 8-bit tag signatures, one per frame (+8 pad for SWAR loads). */
    std::vector<std::uint8_t> sig_;
    std::vector<SetState> sets_;
    /** Valid frames per set; == ways once the set has filled up. */
    std::vector<std::uint32_t> set_filled_;

    std::unique_ptr<ReplacementPolicy> repl_;
    /** Exact-LRU policy: hit/fill updates are inlined in access(). */
    bool repl_is_lru_ = false;
    PartitionScheme *scheme_ = nullptr;
    ShadowTags shadow_;

    /** Audited per-core occupancy, current as of the last interval
     *  boundary (the fault-injection / audit seam). */
    std::vector<std::uint64_t> occupancy_;
    /** Pending per-interval occupancy deltas (batched bookkeeping). */
    std::vector<OccDelta> occ_delta_;
    std::vector<CoreCacheTotals> totals_;
    /** totals_ as of the last interval boundary; interval hit/miss
     *  counts are derived by subtraction instead of being counted
     *  separately on the hot path. */
    std::vector<CoreCacheTotals> interval_start_;

    std::uint64_t misses_this_interval_ = 0;
    std::uint64_t total_misses_ = 0;
    std::uint64_t writebacks_ = 0;
    std::uint64_t intervals_ = 0;

    std::function<void(IntervalSnapshot &)> timing_hook_;
    std::function<void(const IntervalSnapshot &, std::uint64_t)>
        interval_observer_;
    telemetry::SpanStats access_span_{};

    // --- robustness (checked mode / fault injection) ---
    std::function<bool(std::vector<std::uint64_t> &, std::uint64_t,
                       std::uint64_t)>
        occupancy_fault_hook_;
    bool checked_ = false;
    std::uint64_t invariant_violations_ = 0;
    std::uint64_t ownership_repairs_ = 0;
};

} // namespace prism

#endif // PRISM_CACHE_SHARED_CACHE_HH
