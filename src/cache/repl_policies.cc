/**
 * @file
 * Built-in replacement policies: LRU, timestamp-LRU, DIP, random.
 */

#include "cache/repl_policy.hh"

#include <algorithm>

#include "common/rng.hh"

namespace prism
{

namespace
{

bool
wayAllowed(std::span<const char> allowed, int way)
{
    return allowed.empty() || allowed[static_cast<std::size_t>(way)];
}

/** Exact LRU over the per-set recency list. */
class LruPolicy : public ReplacementPolicy
{
  public:
    std::string name() const override { return "LRU"; }

    void
    onHit(const SetView &set, int way) override
    {
        recency::moveToFront(set.state, way);
    }

    void
    onFill(const SetView &set, int way) override
    {
        recency::moveToFront(set.state, way);
    }

    int
    victimAmong(const SetView &set, std::span<const char> allowed) override
    {
        const auto &order = set.state.order;
        for (auto it = order.rbegin(); it != order.rend(); ++it)
            if (wayAllowed(allowed, *it))
                return *it;
        return invalidWay;
    }

    void
    evictionOrder(const SetView &set, std::vector<int> &out) override
    {
        out.assign(set.state.order.rbegin(), set.state.order.rend());
    }

    bool victimOrderIsRecency() const override { return true; }
};

/**
 * Coarse-timestamp LRU in the style of ZCache/Vantage [16, 17]: each
 * block stores an 8-bit timestamp derived from a per-set access
 * counter; the oldest (largest wrapped age) block is the victim.
 * This is the common baseline of the Figure 7 comparison.
 */
class TimestampLruPolicy : public ReplacementPolicy
{
  public:
    std::string name() const override { return "TS-LRU"; }

    static unsigned
    age(const SetView &set, int way)
    {
        return coarse_ts::age(set, way);
    }

    void
    onHit(const SetView &set, int way) override
    {
        coarse_ts::touch(set, way);
    }

    void
    onFill(const SetView &set, int way) override
    {
        coarse_ts::touch(set, way);
    }

    int
    victimAmong(const SetView &set, std::span<const char> allowed) override
    {
        int best = invalidWay;
        unsigned best_age = 0;
        for (std::size_t w = 0; w < set.ways(); ++w) {
            if (!set.blocks[w].valid)
                continue;
            const int way = static_cast<int>(w);
            if (!wayAllowed(allowed, way))
                continue;
            const unsigned a = age(set, way);
            if (best == invalidWay || a > best_age) {
                best = way;
                best_age = a;
            }
        }
        return best;
    }

    void
    evictionOrder(const SetView &set, std::vector<int> &out) override
    {
        out.clear();
        for (std::size_t w = 0; w < set.ways(); ++w)
            if (set.blocks[w].valid)
                out.push_back(static_cast<int>(w));
        std::stable_sort(out.begin(), out.end(), [&](int a, int b) {
            return age(set, a) > age(set, b);
        });
    }
};

/**
 * DIP [13]: set-dueling between LRU insertion and bimodal insertion
 * (BIP, which inserts at the LRU position except once every 1/32).
 * Victim selection is plain LRU; only the insertion point adapts.
 */
class DipPolicy : public ReplacementPolicy
{
  public:
    DipPolicy(std::uint64_t seed, std::uint32_t num_sets)
        : rng_(seed), num_sets_(num_sets)
    {}

    std::string name() const override { return "DIP"; }

    void
    onHit(const SetView &set, int way) override
    {
        recency::moveToFront(set.state, way);
    }

    void
    onFill(const SetView &set, int way) override
    {
        // Constituency-based leader selection: one LRU leader and one
        // BIP leader per 32-set constituency.
        const std::uint32_t mod = set.setIdx & 31u;
        const bool lru_leader = (mod == 0);
        const bool bip_leader = (mod == 1);

        if (lru_leader && psel_ < pselMax)
            ++psel_; // a miss in an LRU leader argues against LRU
        if (bip_leader && psel_ > 0)
            --psel_;

        bool use_bip;
        if (lru_leader)
            use_bip = false;
        else if (bip_leader)
            use_bip = true;
        else
            use_bip = psel_ > pselMax / 2;

        if (use_bip && !rng_.chance(bipEpsilon))
            recency::insertAtLruOffset(set.state, way, 0);
        else
            recency::moveToFront(set.state, way);
    }

    int
    victimAmong(const SetView &set, std::span<const char> allowed) override
    {
        const auto &order = set.state.order;
        for (auto it = order.rbegin(); it != order.rend(); ++it)
            if (wayAllowed(allowed, *it))
                return *it;
        return invalidWay;
    }

    void
    evictionOrder(const SetView &set, std::vector<int> &out) override
    {
        out.assign(set.state.order.rbegin(), set.state.order.rend());
    }

    bool victimOrderIsRecency() const override { return true; }

    /** Current PSEL value, exposed for tests. */
    unsigned psel() const { return psel_; }

  private:
    static constexpr unsigned pselMax = 1023;
    static constexpr double bipEpsilon = 1.0 / 32.0;

    Rng rng_;
    std::uint32_t num_sets_;
    unsigned psel_ = pselMax / 2;
};

/** Random victim; keeps the recency list for schemes that need it. */
class RandomPolicy : public ReplacementPolicy
{
  public:
    explicit RandomPolicy(std::uint64_t seed) : rng_(seed) {}

    std::string name() const override { return "Random"; }

    void
    onHit(const SetView &set, int way) override
    {
        recency::moveToFront(set.state, way);
    }

    void
    onFill(const SetView &set, int way) override
    {
        recency::moveToFront(set.state, way);
    }

    int
    victimAmong(const SetView &set, std::span<const char> allowed) override
    {
        scratch_.clear();
        for (std::size_t w = 0; w < set.ways(); ++w)
            if (set.blocks[w].valid &&
                wayAllowed(allowed, static_cast<int>(w)))
                scratch_.push_back(static_cast<int>(w));
        if (scratch_.empty())
            return invalidWay;
        return scratch_[rng_.below(scratch_.size())];
    }

    void
    evictionOrder(const SetView &set, std::vector<int> &out) override
    {
        out.clear();
        for (std::size_t w = 0; w < set.ways(); ++w)
            if (set.blocks[w].valid)
                out.push_back(static_cast<int>(w));
        for (std::size_t i = out.size(); i > 1; --i)
            std::swap(out[i - 1], out[rng_.below(i)]);
    }

  private:
    Rng rng_;
    std::vector<int> scratch_;
};

/**
 * DRRIP [8]: 2-bit re-reference interval prediction with set
 * dueling between SRRIP (insert at RRPV 2: "long" re-reference) and
 * BRRIP (insert at the distant RRPV 3 except 1/32: thrash
 * protection). Hits promote to RRPV 0; the victim is a block
 * predicted to be re-referenced in the distant future (max RRPV),
 * with the canonical aging step when none is at the maximum.
 */
class RripPolicy : public ReplacementPolicy
{
  public:
    explicit RripPolicy(std::uint64_t seed) : rng_(seed) {}

    std::string name() const override { return "RRIP"; }

    void
    onHit(const SetView &set, int way) override
    {
        set.blocks[static_cast<std::size_t>(way)].rrpv = 0;
    }

    void
    onFill(const SetView &set, int way) override
    {
        const std::uint32_t mod = set.setIdx & 31u;
        const bool srrip_leader = (mod == 0);
        const bool brrip_leader = (mod == 1);

        if (srrip_leader && psel_ < pselMax)
            ++psel_;
        if (brrip_leader && psel_ > 0)
            --psel_;

        bool use_brrip;
        if (srrip_leader)
            use_brrip = false;
        else if (brrip_leader)
            use_brrip = true;
        else
            use_brrip = psel_ > pselMax / 2;

        const BlockRef blk = set.blocks[static_cast<std::size_t>(way)];
        if (use_brrip && !rng_.chance(1.0 / 32.0))
            blk.rrpv = rrpvMax;
        else
            blk.rrpv = rrpvMax - 1;
    }

    int
    victimAmong(const SetView &set, std::span<const char> allowed) override
    {
        // Age the whole set so that at least one block is at the
        // distant-future value, then pick the oldest allowed block.
        std::uint8_t max_all = 0;
        for (std::size_t w = 0; w < set.ways(); ++w)
            if (set.blocks[w].valid)
                max_all = std::max(max_all, set.blocks[w].rrpv);
        const std::uint8_t delta = rrpvMax - max_all;
        if (delta > 0)
            for (std::size_t w = 0; w < set.ways(); ++w)
                if (set.blocks[w].valid)
                    set.blocks[w].rrpv = static_cast<std::uint8_t>(
                        set.blocks[w].rrpv + delta);

        int best = invalidWay;
        int best_rrpv = -1;
        for (std::size_t w = 0; w < set.ways(); ++w) {
            if (!set.blocks[w].valid)
                continue;
            const int way = static_cast<int>(w);
            if (!wayAllowed(allowed, way))
                continue;
            const int r = set.blocks[w].rrpv;
            if (r > best_rrpv) {
                best_rrpv = r;
                best = way;
            }
        }
        return best;
    }

    void
    evictionOrder(const SetView &set, std::vector<int> &out) override
    {
        out.clear();
        for (std::size_t w = 0; w < set.ways(); ++w)
            if (set.blocks[w].valid)
                out.push_back(static_cast<int>(w));
        std::stable_sort(out.begin(), out.end(), [&](int a, int b) {
            return set.blocks[static_cast<std::size_t>(a)].rrpv >
                   set.blocks[static_cast<std::size_t>(b)].rrpv;
        });
    }

    unsigned psel() const { return psel_; }

  private:
    static constexpr std::uint8_t rrpvMax = 3;
    static constexpr unsigned pselMax = 1023;

    Rng rng_;
    unsigned psel_ = pselMax / 2;
};

} // namespace

std::unique_ptr<ReplacementPolicy>
makeReplPolicy(ReplKind kind, std::uint64_t seed, std::uint32_t num_sets)
{
    switch (kind) {
      case ReplKind::LRU:
        return std::make_unique<LruPolicy>();
      case ReplKind::TimestampLRU:
        return std::make_unique<TimestampLruPolicy>();
      case ReplKind::DIP:
        return std::make_unique<DipPolicy>(seed, num_sets);
      case ReplKind::Random:
        return std::make_unique<RandomPolicy>(seed);
      case ReplKind::RRIP:
        return std::make_unique<RripPolicy>(seed);
    }
    panic("makeReplPolicy: unknown kind");
}

const char *
replKindName(ReplKind kind)
{
    switch (kind) {
      case ReplKind::LRU:
        return "LRU";
      case ReplKind::TimestampLRU:
        return "TS-LRU";
      case ReplKind::DIP:
        return "DIP";
      case ReplKind::Random:
        return "Random";
      case ReplKind::RRIP:
        return "RRIP";
    }
    return "?";
}

} // namespace prism
