/**
 * @file
 * UMON-style shadow tags (Qureshi & Patt [14]).
 *
 * A shadow tag directory answers "how many hits would core i have
 * scored if it owned the whole cache?". For 1 in @c sampling sets
 * (the paper uses 1/32), each core gets a private auxiliary tag array
 * of the full associativity, maintained with true LRU. Hits are
 * recorded per LRU stack position, which yields the marginal-utility
 * curves that UCP's lookahead, PIPP's allocation and PriSM-H/F all
 * consume.
 */

#ifndef PRISM_CACHE_SHADOW_TAGS_HH
#define PRISM_CACHE_SHADOW_TAGS_HH

#include <cstdint>
#include <vector>

#include "common/types.hh"

namespace prism
{

/** Sampled per-core auxiliary tag directory with positional hits. */
class ShadowTags
{
  public:
    /**
     * @param num_cores Cores sharing the cache.
     * @param num_sets Sets in the main cache.
     * @param ways Associativity (shadow arrays use the same).
     * @param sampling Sample 1 in @p sampling sets (power of two).
     */
    ShadowTags(std::uint32_t num_cores, std::uint32_t num_sets,
               std::uint32_t ways, std::uint32_t sampling = 32);

    /** Whether @p set_idx is one of the sampled sets. */
    bool
    sampled(std::uint32_t set_idx) const
    {
        return (set_idx & (sampling_ - 1)) == 0;
    }

    /**
     * Record an access by @p core to @p addr mapping to @p set_idx.
     * No-op for unsampled sets.
     */
    void access(CoreId core, Addr addr, std::uint32_t set_idx);

    /** Scale factor from sampled counts to whole-cache estimates. */
    double scale() const { return static_cast<double>(sampling_); }

    /** Raw interval hit count of @p core at stack position @p pos. */
    std::uint64_t
    hitsAt(CoreId core, std::uint32_t pos) const
    {
        return hits_[core * ways_ + pos];
    }

    /** Raw interval miss count of @p core. */
    std::uint64_t misses(CoreId core) const { return misses_[core]; }

    /**
     * Whole-cache-scaled hit histogram for @p core over the current
     * interval (entry w = estimated hits at stack position w).
     */
    std::vector<double> scaledHitCurve(CoreId core) const;

    /** Scaled stand-alone miss estimate for @p core. */
    double
    scaledMisses(CoreId core) const
    {
        return static_cast<double>(misses_[core]) * scale();
    }

    /** Clear the interval hit/miss counters (tags are kept warm). */
    void resetInterval();

    std::uint32_t ways() const { return ways_; }

  private:
    std::uint32_t num_cores_;
    std::uint32_t ways_;
    std::uint32_t sampling_;
    std::uint32_t sampled_sets_;

    /** tags_[(core * sampled_sets_ + sampled_set) * ways_ + slot];
     *  slot 0 is MRU. Invalid entries hold the sentinel ~0. */
    std::vector<Addr> tags_;

    std::vector<std::uint64_t> hits_;   // [core][position]
    std::vector<std::uint64_t> misses_; // [core]
};

} // namespace prism

#endif // PRISM_CACHE_SHADOW_TAGS_HH
