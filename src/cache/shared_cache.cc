#include "cache/shared_cache.hh"

#include "common/prism_assert.hh"
#include "telemetry/span.hh"

namespace prism
{

SharedCache::SharedCache(const CacheConfig &config)
    : config_(config), num_sets_(config.numSets()),
      repl_(makeReplPolicy(config.repl, config.seed ^ 0x5EED5EEDULL,
                           config.numSets())),
      shadow_(config.numCores, config.numSets(), config.ways,
              config.shadowSampling)
{
    fatalIf(config_.numCores == 0, "SharedCache: zero cores");
    fatalIf(config_.ways == 0, "SharedCache: zero ways");
    fatalIf(config_.numBlocks() % config_.ways != 0,
            "SharedCache: size not a multiple of ways * blockBytes");
    fatalIf((num_sets_ & (num_sets_ - 1)) != 0,
            "SharedCache: number of sets must be a power of two");

    blocks_.resize(config_.numBlocks());
    sets_.resize(num_sets_);
    for (auto &st : sets_)
        st.order.reserve(config_.ways);

    occupancy_.assign(config_.numCores, 0);
    totals_.assign(config_.numCores, {});
    interval_hits_.assign(config_.numCores, 0);
    interval_misses_.assign(config_.numCores, 0);

    // Paper §4: "allocation policies recompute the probabilities
    // after the shared cache sees the same number of misses as number
    // of cache blocks" — i.e. W defaults to N.
    interval_w_ = config_.intervalMisses ? config_.intervalMisses
                                         : config_.numBlocks();
}

SetView
SharedCache::setView(std::uint32_t set_idx)
{
    return SetView{
        set_idx,
        std::span<CacheBlock>(&blocks_[static_cast<std::size_t>(
                                  set_idx) * config_.ways],
                              config_.ways),
        sets_[set_idx],
    };
}

std::uint32_t
SharedCache::countInSet(std::uint32_t set_idx, CoreId core)
{
    const SetView set = setView(set_idx);
    std::uint32_t n = 0;
    for (const auto &blk : set.blocks)
        if (blk.valid && blk.owner == core)
            ++n;
    return n;
}

AccessResult
SharedCache::access(CoreId core, Addr addr, bool is_store)
{
    PRISM_SPAN(access_span_);
    panicIf(core >= config_.numCores, "SharedCache::access: bad core");

    const std::uint32_t set_idx = setIndex(addr);
    shadow_.access(core, addr, set_idx);

    SetView set = setView(set_idx);

    // Lookup.
    for (std::size_t w = 0; w < set.ways(); ++w) {
        CacheBlock &blk = set.blocks[w];
        if (blk.valid && blk.tag == addr) {
            ++totals_[core].hits;
            ++interval_hits_[core];
            blk.dirty |= is_store;
            const int way = static_cast<int>(w);
            if (!scheme_ || !scheme_->onHit(*this, core, set, way))
                repl_->onHit(set, way);
            return AccessResult{true, false, invalidCore};
        }
    }

    // Miss.
    ++totals_[core].misses;
    ++interval_misses_[core];
    ++total_misses_;
    ++misses_this_interval_;

    AccessResult result{false, false, invalidCore};

    // Prefer an invalid way; otherwise the scheme names the victim.
    int victim_way = invalidWay;
    for (std::size_t w = 0; w < set.ways(); ++w) {
        if (!set.blocks[w].valid) {
            victim_way = static_cast<int>(w);
            break;
        }
    }

    if (victim_way == invalidWay) {
        victim_way = scheme_ ? scheme_->chooseVictim(*this, core, set)
                             : repl_->victim(set);
        if (victim_way == invalidWay)
            victim_way = repl_->victim(set);
        panicIf(victim_way == invalidWay,
                "SharedCache: no victim in a full set");

        CacheBlock &victim = set.blocks[victim_way];
        result.evicted = true;
        result.evictedOwner = victim.owner;
        if (victim.dirty) {
            result.writeback = true;
            ++writebacks_;
        }
        --occupancy_[victim.owner];
        recency::remove(set.state, victim_way);
        victim.valid = false;
    }

    // Fill.
    CacheBlock &blk = set.blocks[victim_way];
    blk.tag = addr;
    blk.owner = core;
    blk.valid = true;
    blk.dirty = is_store;
    blk.region = regionManaged;
    ++occupancy_[core];
    if (!scheme_ || !scheme_->onFill(*this, core, set, victim_way))
        repl_->onFill(set, victim_way);

    if (misses_this_interval_ >= interval_w_)
        endInterval();

    return result;
}

void
SharedCache::auditAndRepairOwnership()
{
    std::vector<std::uint64_t> counted(config_.numCores, 0);
    for (const CacheBlock &blk : blocks_)
        if (blk.valid && blk.owner < config_.numCores)
            ++counted[blk.owner];

    bool mismatch = false;
    for (CoreId c = 0; c < config_.numCores; ++c)
        mismatch |= counted[c] != occupancy_[c];
    if (mismatch) {
        ++invariant_violations_;
        ++ownership_repairs_;
        occupancy_ = std::move(counted);
    }
}

void
SharedCache::endInterval()
{
    // Fault-injection seam: corrupt the live occupancy counters
    // before they are snapshotted. In checked mode the audit then
    // detects the drift and repairs it from the resident blocks;
    // unchecked, the corruption flows into Equation 1, whose
    // hardened inputs clamp it.
    if (occupancy_fault_hook_)
        occupancy_fault_hook_(occupancy_, config_.numBlocks(),
                              intervals_ + 1);
    if (checked_)
        auditAndRepairOwnership();

    IntervalSnapshot snap;
    snap.totalBlocks = numBlocks();
    snap.ways = config_.ways;
    snap.intervalMisses = misses_this_interval_;
    snap.cores.resize(config_.numCores);
    for (CoreId c = 0; c < config_.numCores; ++c) {
        auto &cs = snap.cores[c];
        cs.sharedHits = interval_hits_[c];
        cs.sharedMisses = interval_misses_[c];
        cs.occupancyBlocks = occupancy_[c];
        cs.shadowHitsAtPosition = shadow_.scaledHitCurve(c);
        cs.shadowMisses = shadow_.scaledMisses(c);
    }

    if (timing_hook_)
        timing_hook_(snap);
    if (scheme_)
        scheme_->onIntervalEnd(snap);

    ++intervals_;
    if (interval_observer_)
        interval_observer_(snap, intervals_);
    misses_this_interval_ = 0;
    interval_hits_.assign(config_.numCores, 0);
    interval_misses_.assign(config_.numCores, 0);
    shadow_.resetInterval();
}

} // namespace prism
