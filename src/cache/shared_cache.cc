#include "cache/shared_cache.hh"

#include <bit>
#include <cstring>

#include "common/prism_assert.hh"
#include "telemetry/span.hh"

namespace prism
{

namespace
{

/**
 * 8-bit tag signature (multiplicative hash, top byte). A signature
 * mismatch proves a tag mismatch, so the lookup scans one byte per
 * way and dereferences full 8-byte tags only on the ~1/256 false
 * matches plus the actual hit.
 */
inline std::uint8_t
tagSignature(Addr addr)
{
    return static_cast<std::uint8_t>(
        (addr * 0x9E3779B97F4A7C15ULL) >> 56);
}

inline std::uint64_t
loadU64(const std::uint8_t *p)
{
    std::uint64_t v;
    std::memcpy(&v, p, sizeof(v));
    return v;
}

/** 0x80 in every byte of @p v that is zero; exact (no false hits). */
inline std::uint64_t
zeroByteMask(std::uint64_t v)
{
    constexpr std::uint64_t low7 = 0x7F7F7F7F7F7F7F7FULL;
    return ~(((v & low7) + low7) | v | low7);
}

/** 0x80 in every byte of @p x equal to @p b. */
inline std::uint64_t
matchMask(std::uint64_t x, std::uint8_t b)
{
    return zeroByteMask(x ^ (0x0101010101010101ULL * b));
}

} // namespace

SharedCache::SharedCache(const CacheConfig &config)
    : config_(config), num_sets_(config.numSets()),
      repl_(makeReplPolicy(config.repl, config.seed ^ 0x5EED5EEDULL,
                           config.numSets())),
      repl_is_lru_(config.repl == ReplKind::LRU),
      shadow_(config.numCores, config.numSets(), config.ways,
              config.shadowSampling)
{
    fatalIf(config_.numCores == 0, "SharedCache: zero cores");
    fatalIf(config_.ways == 0, "SharedCache: zero ways");
    fatalIf(config_.ways > OrderList::maxWays,
            "SharedCache: associativity above OrderList::maxWays");
    fatalIf(config_.numBlocks() % config_.ways != 0,
            "SharedCache: size not a multiple of ways * blockBytes");
    fatalIf((num_sets_ & (num_sets_ - 1)) != 0,
            "SharedCache: number of sets must be a power of two");

    blocks_.resize(config_.numBlocks());
    // +8 pad bytes so the SWAR scan's last 8-byte load stays in
    // bounds for associativities that are not a multiple of 8.
    sig_.assign(config_.numBlocks() + 8, tagSignature(invalidTag));
    sets_.resize(num_sets_);
    set_filled_.assign(num_sets_, 0);

    occupancy_.assign(config_.numCores, 0);
    occ_delta_.assign(config_.numCores, {});
    totals_.assign(config_.numCores, {});
    interval_start_.assign(config_.numCores, {});

    // Paper §4: "allocation policies recompute the probabilities
    // after the shared cache sees the same number of misses as number
    // of cache blocks" — i.e. W defaults to N.
    interval_w_ = config_.intervalMisses ? config_.intervalMisses
                                         : config_.numBlocks();
}

SetView
SharedCache::setView(std::uint32_t set_idx)
{
    return SetView{
        set_idx,
        SetBlocks(blocks_,
                  static_cast<std::size_t>(set_idx) * config_.ways,
                  config_.ways),
        sets_[set_idx],
    };
}

std::uint32_t
SharedCache::countInSet(std::uint32_t set_idx, CoreId core)
{
    const std::size_t base =
        static_cast<std::size_t>(set_idx) * config_.ways;
    std::uint32_t n = 0;
    for (std::uint32_t w = 0; w < config_.ways; ++w)
        if (blocks_.valid[base + w] && blocks_.owner[base + w] == core)
            ++n;
    return n;
}

int
SharedCache::findHitWay(std::size_t base, Addr addr,
                        std::uint8_t sig) const
{
    // Invalid frames hold the sentinel tag (never equal to a real
    // address), so the scan needs no valid check: tag match == hit.
    const std::uint8_t *sigs = sig_.data() + base;
    const Addr *tags = blocks_.tag.data() + base;
    const std::uint32_t ways = config_.ways;

    if constexpr (std::endian::native == std::endian::little) {
        for (std::uint32_t chunk = 0; chunk < ways; chunk += 8) {
            std::uint64_t m = matchMask(loadU64(sigs + chunk), sig);
            const std::uint32_t rem = ways - chunk;
            if (rem < 8)
                m &= (std::uint64_t{1} << (8 * rem)) - 1;
            while (m) {
                const auto w =
                    chunk + (static_cast<std::uint32_t>(
                                 std::countr_zero(m)) >>
                             3);
                if (tags[w] == addr)
                    return static_cast<int>(w);
                m &= m - 1;
            }
        }
    } else {
        for (std::uint32_t w = 0; w < ways; ++w)
            if (sigs[w] == sig && tags[w] == addr)
                return static_cast<int>(w);
    }
    return invalidWay;
}

int
SharedCache::findInvalidWay(std::size_t base) const
{
    const std::uint8_t *valid = blocks_.valid.data() + base;
    for (std::uint32_t w = 0; w < config_.ways; ++w)
        if (!valid[w])
            return static_cast<int>(w);
    return invalidWay;
}

AccessResult
SharedCache::access(CoreId core, Addr addr, bool is_store)
{
    PRISM_SPAN(access_span_);
    panicIf(core >= config_.numCores, "SharedCache::access: bad core");
    panicIf(addr == invalidTag,
            "SharedCache::access: address equals the invalid-tag "
            "sentinel");

    const std::uint32_t set_idx = setIndex(addr);
    if (shadow_.sampled(set_idx))
        shadow_.access(core, addr, set_idx);

    const std::size_t base =
        static_cast<std::size_t>(set_idx) * config_.ways;
    const std::uint8_t sig = tagSignature(addr);

    const int hit_way = findHitWay(base, addr, sig);
    if (hit_way >= 0) {
        ++totals_[core].hits;
        blocks_.dirty[base + static_cast<std::size_t>(hit_way)] |=
            static_cast<std::uint8_t>(is_store);
        SetView set = setView(set_idx);
        if (!scheme_ || !scheme_->onHit(*this, core, set, hit_way)) {
            // Devirtualised fast path for the default policy.
            if (repl_is_lru_)
                recency::moveToFront(set.state, hit_way);
            else
                repl_->onHit(set, hit_way);
        }
        return AccessResult{true, false, invalidCore};
    }

    // Miss.
    ++totals_[core].misses;
    ++total_misses_;
    ++misses_this_interval_;

    AccessResult result{false, false, invalidCore};
    SetView set = setView(set_idx);

    // Prefer an invalid way; otherwise the scheme names the victim.
    int victim_way = invalidWay;
    if (set_filled_[set_idx] < config_.ways)
        victim_way = findInvalidWay(base);

    if (victim_way == invalidWay) {
        victim_way = scheme_ ? scheme_->chooseVictim(*this, core, set)
                             : repl_->victim(set);
        if (victim_way == invalidWay)
            victim_way = repl_->victim(set);
        panicIf(victim_way == invalidWay,
                "SharedCache: no victim in a full set");

        const std::size_t bv =
            base + static_cast<std::size_t>(victim_way);
        result.evicted = true;
        result.evictedOwner = blocks_.owner[bv];
        if (blocks_.dirty[bv]) {
            result.writeback = true;
            ++writebacks_;
        }
        --occ_delta_[blocks_.owner[bv]].v;
        // No recency::remove here: every fill path below that
        // maintains the order list re-inserts the way through a
        // remove-first helper (moveToFront / insertAtLruOffset), and
        // policies that ignore the list never populate it, so the
        // explicit removal was a full list scan per eviction with no
        // observable effect.
        blocks_.valid[bv] = 0;
    } else {
        ++set_filled_[set_idx];
    }

    // Fill.
    const std::size_t bf = base + static_cast<std::size_t>(victim_way);
    blocks_.tag[bf] = addr;
    sig_[bf] = sig;
    blocks_.owner[bf] = core;
    blocks_.valid[bf] = 1;
    blocks_.dirty[bf] = static_cast<std::uint8_t>(is_store);
    blocks_.region[bf] = regionManaged;
    ++occ_delta_[core].v;
    if (!scheme_ || !scheme_->onFill(*this, core, set, victim_way)) {
        if (repl_is_lru_)
            recency::moveToFront(set.state, victim_way);
        else
            repl_->onFill(set, victim_way);
    }

    if (misses_this_interval_ >= interval_w_)
        endInterval();

    return result;
}

void
SharedCache::foldOccupancy()
{
    for (CoreId c = 0; c < config_.numCores; ++c) {
        occupancy_[c] = static_cast<std::uint64_t>(
            static_cast<std::int64_t>(occupancy_[c]) +
            occ_delta_[c].v);
        occ_delta_[c].v = 0;
    }
}

void
SharedCache::auditAndRepairOwnership()
{
    std::vector<std::uint64_t> counted(config_.numCores, 0);
    const std::size_t n = blocks_.size();
    for (std::size_t i = 0; i < n; ++i)
        if (blocks_.valid[i] && blocks_.owner[i] < config_.numCores)
            ++counted[blocks_.owner[i]];

    bool mismatch = false;
    for (CoreId c = 0; c < config_.numCores; ++c)
        mismatch |= counted[c] != occupancy_[c];
    if (mismatch) {
        ++invariant_violations_;
        ++ownership_repairs_;
        occupancy_ = std::move(counted);
    }
}

void
SharedCache::endInterval()
{
    // Batched occupancy bookkeeping: fold the per-interval deltas
    // before anything reads the audited array.
    foldOccupancy();

    // Fault-injection seam: corrupt the live occupancy counters
    // before they are snapshotted. In checked mode the audit then
    // detects the drift and repairs it from the resident blocks;
    // unchecked, the corruption flows into Equation 1, whose
    // hardened inputs clamp it.
    if (occupancy_fault_hook_)
        occupancy_fault_hook_(occupancy_, config_.numBlocks(),
                              intervals_ + 1);
    if (checked_)
        auditAndRepairOwnership();

    IntervalSnapshot snap;
    snap.totalBlocks = numBlocks();
    snap.ways = config_.ways;
    snap.intervalMisses = misses_this_interval_;
    snap.cores.resize(config_.numCores);
    for (CoreId c = 0; c < config_.numCores; ++c) {
        auto &cs = snap.cores[c];
        cs.sharedHits = totals_[c].hits - interval_start_[c].hits;
        cs.sharedMisses =
            totals_[c].misses - interval_start_[c].misses;
        cs.occupancyBlocks = occupancy_[c];
        cs.shadowHitsAtPosition = shadow_.scaledHitCurve(c);
        cs.shadowMisses = shadow_.scaledMisses(c);
    }

    if (timing_hook_)
        timing_hook_(snap);
    if (scheme_)
        scheme_->onIntervalEnd(snap);

    ++intervals_;
    if (interval_observer_)
        interval_observer_(snap, intervals_);
    misses_this_interval_ = 0;
    interval_start_ = totals_;
    shadow_.resetInterval();
}

} // namespace prism
