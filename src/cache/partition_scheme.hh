/**
 * @file
 * Interface between the shared cache and a cache-management scheme.
 *
 * The paper separates cache management into (i) a partitioning
 * mechanism that enforces decisions at replacement time and (ii) an
 * allocation policy that recomputes decisions once per interval of W
 * misses. This interface carries both: per-access hooks (onHit /
 * chooseVictim / onFill) and the interval hook (onIntervalEnd), which
 * receives an IntervalSnapshot assembled by the cache and — when a
 * timing model is attached — augmented with per-core CPI statistics.
 *
 * A PartitionScheme is the simulator-side *backend* layer of the
 * CachePlane split (DESIGN.md §8, src/plane/cache_plane.hh): the
 * PriSM-driven schemes (PrismScheme, WayMaskScheme) additionally
 * implement CachePlane + ControllerHost, delegating the whole
 * interval recompute to the shared PrismController and keeping only
 * enforcement — per-miss victim-core sampling or way-mask
 * quantisation — in their onIntervalEnd/chooseVictim hooks. Schemes
 * that predate the split (UCP, PIPP, Vantage, ...) implement this
 * interface alone.
 */

#ifndef PRISM_CACHE_PARTITION_SCHEME_HH
#define PRISM_CACHE_PARTITION_SCHEME_HH

#include <cstdint>
#include <string>
#include <vector>

#include "cache/cache_block.hh"
#include "common/types.hh"

namespace prism
{

class SharedCache;

/** Per-core statistics for one allocation interval. */
struct CoreIntervalStats
{
    // --- shared-cache behaviour over the interval ---
    std::uint64_t sharedHits = 0;
    std::uint64_t sharedMisses = 0;

    /** Blocks currently owned in the shared cache. */
    std::uint64_t occupancyBlocks = 0;

    // --- shadow-tag (stand-alone) estimates over the interval ---
    /**
     * Hits the core would have scored at each LRU stack position had
     * it owned the whole cache; entry w counts hits exactly at
     * position w. Already scaled from the sampled sets to the whole
     * cache.
     */
    std::vector<double> shadowHitsAtPosition;

    /** Scaled shadow-tag misses (stand-alone misses estimate). */
    double shadowMisses = 0;

    // --- timing (zero unless a timing model is attached) ---
    std::uint64_t instructions = 0;
    std::uint64_t cycles = 0;
    /** Cycles this core stalled on LLC misses (the CPI_llc source). */
    std::uint64_t llcStallCycles = 0;

    /** Estimated stand-alone hits with the full cache (paper's
     *  StandAloneHits): the sum of the shadow hit histogram. */
    double
    standAloneHits() const
    {
        double sum = 0;
        for (double h : shadowHitsAtPosition)
            sum += h;
        return sum;
    }

    /** Stand-alone hits with only the first @p ways ways. */
    double
    standAloneHitsWithWays(std::size_t ways) const
    {
        double sum = 0;
        for (std::size_t w = 0;
             w < ways && w < shadowHitsAtPosition.size(); ++w)
            sum += shadowHitsAtPosition[w];
        return sum;
    }
};

/** Snapshot the allocation policies consume once per interval. */
struct IntervalSnapshot
{
    std::vector<CoreIntervalStats> cores;

    std::uint64_t totalBlocks = 0;   ///< N in the paper
    std::uint32_t ways = 0;          ///< LLC associativity
    std::uint64_t intervalMisses = 0; ///< W: misses in this interval

    std::uint32_t numCores() const
    {
        return static_cast<std::uint32_t>(cores.size());
    }

    /** Occupancy fraction C_i of @p core. */
    double
    occupancyFraction(CoreId core) const
    {
        return static_cast<double>(cores[core].occupancyBlocks) /
               static_cast<double>(totalBlocks);
    }

    /** Miss fraction M_i of @p core within the interval. */
    double
    missFraction(CoreId core) const
    {
        if (intervalMisses == 0)
            return 0.0;
        return static_cast<double>(cores[core].sharedMisses) /
               static_cast<double>(intervalMisses);
    }
};

/**
 * A cache-management scheme: the replacement-time enforcement half of
 * a partitioning solution plus its interval-time allocation policy.
 */
class PartitionScheme
{
  public:
    virtual ~PartitionScheme() = default;

    virtual std::string name() const = 0;

    /**
     * A block was hit.
     * @return true if the scheme fully handled recency updates
     *         (integrated schemes like PIPP); false to let the
     *         underlying replacement policy update normally.
     */
    virtual bool
    onHit(SharedCache &cache, CoreId core, const SetView &set, int way)
    {
        (void)cache;
        (void)core;
        (void)set;
        (void)way;
        return false;
    }

    /**
     * Pick the victim way for a miss by @p core in @p set. Every way
     * in the set is valid when this is called (the cache fills
     * invalid ways itself).
     */
    virtual int chooseVictim(SharedCache &cache, CoreId core,
                             const SetView &set) = 0;

    /**
     * A new block was filled into @p way for @p core.
     * @return true if the scheme handled recency placement itself.
     */
    virtual bool
    onFill(SharedCache &cache, CoreId core, const SetView &set, int way)
    {
        (void)cache;
        (void)core;
        (void)set;
        (void)way;
        return false;
    }

    /** Interval boundary: recompute allocation decisions. */
    virtual void
    onIntervalEnd(const IntervalSnapshot &snap)
    {
        (void)snap;
    }
};

} // namespace prism

#endif // PRISM_CACHE_PARTITION_SCHEME_HH
