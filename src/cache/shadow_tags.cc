#include "cache/shadow_tags.hh"

#include <limits>

#include "common/prism_assert.hh"

namespace prism
{

namespace
{
constexpr Addr invalidTag = std::numeric_limits<Addr>::max();
} // namespace

ShadowTags::ShadowTags(std::uint32_t num_cores, std::uint32_t num_sets,
                       std::uint32_t ways, std::uint32_t sampling)
    : num_cores_(num_cores), ways_(ways), sampling_(sampling)
{
    fatalIf(sampling_ == 0 || (sampling_ & (sampling_ - 1)) != 0,
            "ShadowTags: sampling must be a power of two");
    // Sample at least one set even for tiny test caches.
    sampled_sets_ = num_sets >= sampling_ ? num_sets / sampling_ : 1;
    tags_.assign(static_cast<std::size_t>(num_cores_) * sampled_sets_ *
                     ways_,
                 invalidTag);
    hits_.assign(static_cast<std::size_t>(num_cores_) * ways_, 0);
    misses_.assign(num_cores_, 0);
}

void
ShadowTags::access(CoreId core, Addr addr, std::uint32_t set_idx)
{
    if (!sampled(set_idx))
        return;
    const std::uint32_t s = (set_idx / sampling_) % sampled_sets_;
    Addr *arr =
        &tags_[(static_cast<std::size_t>(core) * sampled_sets_ + s) *
               ways_];

    // Linear MRU->LRU scan; on a hit record the position and rotate
    // the hit entry to the front (move-to-front LRU update).
    for (std::uint32_t pos = 0; pos < ways_; ++pos) {
        if (arr[pos] == addr) {
            ++hits_[static_cast<std::size_t>(core) * ways_ + pos];
            for (std::uint32_t j = pos; j > 0; --j)
                arr[j] = arr[j - 1];
            arr[0] = addr;
            return;
        }
    }

    ++misses_[core];
    // Shift everything down (evicting the LRU slot) and fill at MRU.
    for (std::uint32_t j = ways_ - 1; j > 0; --j)
        arr[j] = arr[j - 1];
    arr[0] = addr;
}

std::vector<double>
ShadowTags::scaledHitCurve(CoreId core) const
{
    std::vector<double> curve(ways_);
    for (std::uint32_t w = 0; w < ways_; ++w)
        curve[w] =
            static_cast<double>(
                hits_[static_cast<std::size_t>(core) * ways_ + w]) *
            scale();
    return curve;
}

void
ShadowTags::resetInterval()
{
    hits_.assign(hits_.size(), 0);
    misses_.assign(misses_.size(), 0);
}

} // namespace prism
