/**
 * @file
 * Way-partitioned variant of Algorithm 1 (the Figure 5 comparator).
 *
 * The paper isolates the benefit of fine-grained partitioning by
 * running the *same* hit-maximisation allocation policy under both
 * mechanisms: PriSM enforces the targets with eviction probabilities,
 * this scheme rounds them to the nearest integral number of ways and
 * enforces them with classic way-partitioning.
 */

#ifndef PRISM_PRISM_HITMAX_WAYPART_HH
#define PRISM_PRISM_HITMAX_WAYPART_HH

#include "policies/way_partition.hh"
#include "prism/alloc_hitmax.hh"

namespace prism
{

/** Algorithm-1 targets rounded onto way-partitioning. */
class HitMaxWayScheme : public WayPartitionScheme
{
  public:
    HitMaxWayScheme(std::uint32_t num_cores, std::uint32_t ways)
        : WayPartitionScheme(num_cores, ways)
    {}

    std::string name() const override { return "WP-HitMax"; }

    void
    onIntervalEnd(const IntervalSnapshot &snap) override
    {
        const auto targets = hitmax_.computeTargets(snap);
        setAllocation(roundFractionsToWays(targets, ways_));
    }

  private:
    HitMaxPolicy hitmax_;
};

} // namespace prism

#endif // PRISM_PRISM_HITMAX_WAYPART_HH
