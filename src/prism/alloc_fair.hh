/**
 * @file
 * PriSM-F: the fairness allocation policy (Algorithm 2).
 *
 * Fairness means every program suffers the same slowdown versus
 * running alone. Stand-alone performance is estimated from the CPI
 * decomposition CPI = CPI_ideal + CPI_llc: the LLC component observed
 * under sharing is scaled by the shadow-tag miss ratio to estimate
 * the stand-alone LLC component, and cache space is then grown in
 * proportion to each core's estimated slowdown.
 */

#ifndef PRISM_PRISM_ALLOC_FAIR_HH
#define PRISM_PRISM_ALLOC_FAIR_HH

#include "prism/alloc_policy.hh"

namespace prism
{

/** Algorithm 2 of the paper. */
class FairPolicy : public PrismAllocPolicy
{
  public:
    std::string name() const override { return "Fair"; }

    std::vector<double>
    computeTargets(const IntervalSnapshot &snap) override;

    /**
     * Estimated slowdown (CPI_shared / CPI_standAlone, >= 1 when the
     * core suffers) of @p core from the snapshot. Falls back to the
     * miss-increase ratio when no timing data is attached.
     */
    static double estimatedSlowdown(const IntervalSnapshot &snap,
                                    CoreId core);

    unsigned
    arithmeticOps(unsigned num_cores) const override
    {
        // Matches the paper's figures: 28 ops at 4 cores, 224 at 32.
        return 7 * num_cores;
    }
};

} // namespace prism

#endif // PRISM_PRISM_ALLOC_FAIR_HH
