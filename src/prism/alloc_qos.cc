#include "prism/alloc_qos.hh"

#include <algorithm>

#include "common/prism_assert.hh"
#include "prism/alloc_hitmax.hh"

namespace prism
{

std::vector<double>
QosPolicy::computeTargets(const IntervalSnapshot &snap)
{
    fatalIf(snap.numCores() < 2, "QosPolicy: needs at least two cores");

    const auto &c0 = snap.cores[0];
    const double occ0 = std::max(
        static_cast<double>(c0.occupancyBlocks), 1.0) /
        static_cast<double>(snap.totalBlocks);

    double t0 = occ0;
    if (c0.cycles > 0) {
        const double ipc = static_cast<double>(c0.instructions) /
                           static_cast<double>(c0.cycles);
        smoothed_ipc_ = smoothed_ipc_ < 0.0
                            ? ipc
                            : params_.ipcSmoothing * smoothed_ipc_ +
                                  (1.0 - params_.ipcSmoothing) * ipc;
        if (smoothed_ipc_ < target_ipc_ * (1.0 - params_.deadBand))
            t0 = (1.0 + params_.alpha) * occ0;
        else if (smoothed_ipc_ > target_ipc_ * (1.0 + params_.deadBand))
            t0 = (1.0 - params_.beta) * occ0;
        // Allocation unchanged while the target is being met.
    }
    t0 = std::clamp(t0, params_.minFrac, params_.maxFrac);

    // Hit-maximise the remaining cores within the leftover space.
    auto t = HitMaxPolicy::computeTargetsSubset(snap, 1,
                                                snap.numCores(),
                                                1.0 - t0);
    t[0] = t0;
    return t;
}

} // namespace prism
