/**
 * @file
 * The PriSM probabilistic cache manager (paper §3.1) — the
 * *simulator backend* of the CachePlane split (DESIGN.md).
 *
 * Replacement under PriSM is two-step: Core-Selection draws a victim
 * core from the eviction probability distribution E, then
 * Victim-Identification asks the underlying replacement policy for
 * the victim block of that core in the indexed set. When the
 * selected core has no block in the set, the fallback walks the
 * replacement order and takes the first candidate owned by any core
 * with non-zero eviction probability (§3.1); such "victimless"
 * events are counted for the Figure 13 analysis.
 *
 * The interval control loop itself — targets → hardened Equation 1
 * → AliasSampler → degraded-mode fallback — lives in the shared
 * PrismController (src/plane/); this class is the thin adapter from
 * the PartitionScheme hooks to that controller plus the
 * cache-specific Victim-Identification above. The same controller
 * drives the serving store (serve::TenantArbiter) and the CAT-style
 * way-mask backend (WayMaskScheme).
 */

#ifndef PRISM_PRISM_PRISM_SCHEME_HH
#define PRISM_PRISM_PRISM_SCHEME_HH

#include <cstdint>
#include <initializer_list>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "cache/partition_scheme.hh"
#include "common/stats.hh"
#include "fault/fault_injector.hh"
#include "plane/alias_sampler.hh"
#include "plane/cache_plane.hh"
#include "plane/prism_controller.hh"
#include "prism/alloc_policy.hh"
#include "telemetry/interval_recorder.hh"
#include "telemetry/metrics_registry.hh"

namespace prism
{

/** PriSM manager configuration. */
struct PrismParams
{
    /**
     * Bits used to represent each probability; 0 keeps the exact
     * floating-point values (the paper's baseline; 6 bits is shown to
     * be performance-neutral).
     */
    unsigned probBits = 0;
};

/** The PriSM management scheme. */
class PrismScheme : public PartitionScheme,
                    public ControllerHost,
                    public CachePlane
{
  public:
    PrismScheme(std::uint32_t num_cores,
                std::unique_ptr<PrismAllocPolicy> policy,
                std::uint64_t seed, const PrismParams &params = {});

    std::string name() const override;

    int chooseVictim(SharedCache &cache, CoreId core,
                     const SetView &set) override;
    void onIntervalEnd(const IntervalSnapshot &snap) override;

    // --- ControllerHost ---
    PrismController &controller() override { return controller_; }
    const PrismController &controller() const override
    {
        return controller_;
    }

    // --- CachePlane (domains = cores, unit = blocks) ---
    const char *backendName() const override { return "sim"; }
    CapacityUnit capacityUnit() const override
    {
        return CapacityUnit::Blocks;
    }
    std::uint32_t domainCount() const override { return num_cores_; }
    std::uint64_t capacityUnits() const override
    {
        return capacity_blocks_;
    }
    std::uint64_t occupancyUnits(std::uint32_t core) const override
    {
        return occupancy_blocks_[core];
    }
    double standAloneHits(std::uint32_t core) const override
    {
        return stand_alone_hits_[core];
    }

    // --- introspection ---
    /**
     * Core-Selection: draw a victim core id according to E. Consumes
     * exactly one uniform and maps it through the O(1) alias-family
     * sampler — draw-for-draw identical to the seed inverse-CDF walk
     * (see AliasSampler). Public so the statistical test suite can
     * exercise the sampler directly against a known distribution
     * (tests/test_core_selection_stats.cc).
     */
    CoreId
    sampleVictimCore()
    {
        return static_cast<CoreId>(controller_.sampleVictim());
    }

    /** The Core-Selection sampler for the current E (test hook). */
    const AliasSampler &sampler() const
    {
        return controller_.sampler();
    }

    /**
     * Overwrite the eviction distribution, applying the configured
     * K-bit quantisation exactly as a recompute would. Test hook for
     * the Core-Selection statistics; @p e must have one entry per
     * core and sum to ~1.
     */
    void
    setEvictionProbs(std::span<const double> e)
    {
        controller_.setEvictionProbs(e);
    }

    void
    setEvictionProbs(std::initializer_list<double> e)
    {
        setEvictionProbs(std::span<const double>(e.begin(), e.size()));
    }

    const std::vector<double> &evictionProbs() const
    {
        return controller_.evictionProbs();
    }
    const std::vector<double> &lastTargets() const
    {
        return controller_.targets();
    }
    PrismAllocPolicy &policy() { return *policy_; }

    /** Replacements where the selected core had no block in the set. */
    std::uint64_t victimlessReplacements() const { return victimless_; }
    std::uint64_t replacements() const { return replacements_; }

    double
    victimlessFraction() const
    {
        return replacements_ ? static_cast<double>(victimless_) /
                                   static_cast<double>(replacements_)
                             : 0.0;
    }

    /** Times the distribution has been recomputed (Figure 11). */
    std::uint64_t recomputes() const
    {
        return controller_.recomputes();
    }

    /** Mean/stddev tracker of core @p c's eviction probability. */
    const RunningStat &probStat(CoreId c) const
    {
        return controller_.probStat(c);
    }

    // --- robustness: fault injection, auditing, degradation ---

    /** Attach a fault injector (non-owning); null detaches. */
    void setFaultInjector(FaultInjector *injector)
    {
        controller_.setFaultInjector(injector);
    }

    const FaultInjector *faultInjector() const
    {
        return controller_.faultInjector();
    }

    /** Audit the distribution each interval and recover in place. */
    void setChecked(bool on) { controller_.setChecked(on); }
    bool checked() const { return controller_.checked(); }

    /**
     * Intervals in which the scheme operated in a recovery regime:
     * a recompute was dropped, inputs were stale or had to be
     * clamped, or the distribution needed repair / fallback.
     */
    std::uint64_t degradedIntervals() const
    {
        return controller_.degradedIntervals();
    }

    /** Distribution invariant violations the auditor caught. */
    std::uint64_t invariantViolations() const
    {
        return controller_.invariantViolations();
    }

    /** Recompute events lost to injected faults. */
    std::uint64_t droppedRecomputes() const
    {
        return controller_.droppedRecomputes();
    }

    /** Intervals that started with fallback mode engaged. */
    std::uint64_t fallbackEntries() const
    {
        return controller_.fallbackEntries();
    }

    /** Equation 1 inputs clamped for being NaN/Inf/out-of-range. */
    std::uint64_t clampedInputs() const
    {
        return controller_.clampedInputs();
    }

    /** Recomputes decided by the Equation 1 distribution fallback
     *  (no eviction demand; miss-share or uniform applied). */
    std::uint64_t eq1Fallbacks() const
    {
        return controller_.eq1Fallbacks();
    }

    /**
     * Whether the scheme is currently deferring to the underlying
     * replacement policy (distribution was unrecoverable).
     */
    bool fallbackActive() const
    {
        return controller_.fallbackActive();
    }

    // --- telemetry ---

    /**
     * Attach an interval recorder (non-owning; null detaches): the
     * controller emits instant events for degraded intervals,
     * dropped recomputes, distribution repairs and fallback entries,
     * making fault-injection runs visually debuggable in the trace.
     */
    void setRecorder(telemetry::IntervalRecorder *recorder)
    {
        controller_.setRecorder(recorder);
    }

    /** Scoped-timer stats for onIntervalEnd(); default = disabled. */
    void
    setRecomputeSpan(const telemetry::SpanStats &span)
    {
        recompute_span_ = span;
    }

  private:
    std::uint32_t num_cores_;
    std::unique_ptr<PrismAllocPolicy> policy_;
    PrismController controller_;

    std::vector<char> allowed_; // victim-mask scratch
    std::vector<int> order_;    // eviction-order scratch

    std::uint64_t victimless_ = 0;
    std::uint64_t replacements_ = 0;

    // --- CachePlane view of the last interval ---
    std::uint64_t capacity_blocks_ = 0;
    std::vector<std::uint64_t> occupancy_blocks_;
    std::vector<double> stand_alone_hits_;

    // --- telemetry ---
    telemetry::SpanStats recompute_span_{};
};

} // namespace prism

#endif // PRISM_PRISM_PRISM_SCHEME_HH
