/**
 * @file
 * The PriSM probabilistic cache manager (paper §3.1).
 *
 * Replacement under PriSM is two-step: Core-Selection draws a victim
 * core from the eviction probability distribution E, then
 * Victim-Identification asks the underlying replacement policy for
 * the victim block of that core in the indexed set. When the
 * selected core has no block in the set, the fallback walks the
 * replacement order and takes the first candidate owned by any core
 * with non-zero eviction probability (§3.1); such "victimless"
 * events are counted for the Figure 13 analysis.
 *
 * E is recomputed each interval by a pluggable allocation policy
 * (PriSM-H/F/Q) via Equation 1, optionally quantised to K bits
 * (Figure 12).
 */

#ifndef PRISM_PRISM_PRISM_SCHEME_HH
#define PRISM_PRISM_PRISM_SCHEME_HH

#include <cstdint>
#include <initializer_list>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "cache/partition_scheme.hh"
#include "common/fixed_point.hh"
#include "common/rng.hh"
#include "common/stats.hh"
#include "fault/fault_injector.hh"
#include "fault/invariant_auditor.hh"
#include "prism/alias_sampler.hh"
#include "prism/alloc_policy.hh"
#include "prism/eq1.hh"
#include "telemetry/interval_recorder.hh"
#include "telemetry/metrics_registry.hh"

namespace prism
{

/** PriSM manager configuration. */
struct PrismParams
{
    /**
     * Bits used to represent each probability; 0 keeps the exact
     * floating-point values (the paper's baseline; 6 bits is shown to
     * be performance-neutral).
     */
    unsigned probBits = 0;
};

/** The PriSM management scheme. */
class PrismScheme : public PartitionScheme
{
  public:
    PrismScheme(std::uint32_t num_cores,
                std::unique_ptr<PrismAllocPolicy> policy,
                std::uint64_t seed, const PrismParams &params = {});

    std::string name() const override;

    int chooseVictim(SharedCache &cache, CoreId core,
                     const SetView &set) override;
    void onIntervalEnd(const IntervalSnapshot &snap) override;

    // --- introspection ---
    /**
     * Core-Selection: draw a victim core id according to E. Consumes
     * exactly one uniform and maps it through the O(1) alias-family
     * sampler — draw-for-draw identical to the seed inverse-CDF walk
     * (see AliasSampler). Public so the statistical test suite can
     * exercise the sampler directly against a known distribution
     * (tests/test_core_selection_stats.cc).
     */
    CoreId sampleVictimCore();

    /** The Core-Selection sampler for the current E (test hook). */
    const AliasSampler &sampler() const { return sampler_; }

    /**
     * Overwrite the eviction distribution, applying the configured
     * K-bit quantisation exactly as a recompute would. Test hook for
     * the Core-Selection statistics; @p e must have one entry per
     * core and sum to ~1.
     */
    void setEvictionProbs(std::span<const double> e);

    void
    setEvictionProbs(std::initializer_list<double> e)
    {
        setEvictionProbs(std::span<const double>(e.begin(), e.size()));
    }

    const std::vector<double> &evictionProbs() const { return e_; }
    const std::vector<double> &lastTargets() const { return targets_; }
    PrismAllocPolicy &policy() { return *policy_; }

    /** Replacements where the selected core had no block in the set. */
    std::uint64_t victimlessReplacements() const { return victimless_; }
    std::uint64_t replacements() const { return replacements_; }

    double
    victimlessFraction() const
    {
        return replacements_ ? static_cast<double>(victimless_) /
                                   static_cast<double>(replacements_)
                             : 0.0;
    }

    /** Times the distribution has been recomputed (Figure 11). */
    std::uint64_t recomputes() const { return recomputes_; }

    /** Mean/stddev tracker of core @p c's eviction probability. */
    const RunningStat &probStat(CoreId c) const { return prob_stats_[c]; }

    // --- robustness: fault injection, auditing, degradation ---

    /** Attach a fault injector (non-owning); null detaches. */
    void setFaultInjector(FaultInjector *injector)
    {
        injector_ = injector;
    }

    const FaultInjector *faultInjector() const { return injector_; }

    /** Audit the distribution each interval and recover in place. */
    void setChecked(bool on) { checked_ = on; }
    bool checked() const { return checked_; }

    /**
     * Intervals in which the scheme operated in a recovery regime:
     * a recompute was dropped, inputs were stale or had to be
     * clamped, or the distribution needed repair / fallback.
     */
    std::uint64_t degradedIntervals() const { return degraded_intervals_; }

    /** Distribution invariant violations the auditor caught. */
    std::uint64_t invariantViolations() const
    {
        return auditor_.violations();
    }

    /** Recompute events lost to injected faults. */
    std::uint64_t droppedRecomputes() const { return dropped_recomputes_; }

    /** Intervals that started with fallback mode engaged. */
    std::uint64_t fallbackEntries() const { return fallback_entries_; }

    /** Equation 1 inputs clamped for being NaN/Inf/out-of-range. */
    std::uint64_t clampedInputs() const
    {
        return eq1_stats_.clampedInputs;
    }

    /** Recomputes decided by the Equation 1 distribution fallback
     *  (no eviction demand; miss-share or uniform applied). */
    std::uint64_t eq1Fallbacks() const
    {
        return eq1_stats_.fallbackActivations;
    }

    /**
     * Whether the scheme is currently deferring to the underlying
     * replacement policy (distribution was unrecoverable).
     */
    bool fallbackActive() const { return fallback_; }

    // --- telemetry ---

    /**
     * Attach an interval recorder (non-owning; null detaches): the
     * scheme emits instant events for degraded intervals, dropped
     * recomputes, distribution repairs and fallback entries, making
     * fault-injection runs visually debuggable in the trace.
     */
    void setRecorder(telemetry::IntervalRecorder *recorder)
    {
        recorder_ = recorder;
    }

    /** Scoped-timer stats for onIntervalEnd(); default = disabled. */
    void
    setRecomputeSpan(const telemetry::SpanStats &span)
    {
        recompute_span_ = span;
    }

  private:
    /** Record an instant event when a recorder is attached. */
    void emitEvent(telemetry::EventKind kind, double value = 0.0,
                   CoreId core = invalidCore);

    /**
     * Clamp and renormalise e_ in place after an audit failure.
     * @return false when the distribution is unrecoverable (no
     *         probability mass left) and fallback mode is required.
     */
    bool repairDistribution();

    std::uint32_t num_cores_;
    std::unique_ptr<PrismAllocPolicy> policy_;
    Rng rng_;
    PrismParams params_;

    std::vector<double> e_;       ///< eviction distribution
    AliasSampler sampler_;        ///< O(1) sampler over e_
    std::vector<double> targets_; ///< last computed T_i

    std::vector<char> allowed_; // victim-mask scratch
    std::vector<int> order_;    // eviction-order scratch

    std::uint64_t victimless_ = 0;
    std::uint64_t replacements_ = 0;
    std::uint64_t recomputes_ = 0;
    std::vector<RunningStat> prob_stats_;

    // --- robustness state ---
    FaultInjector *injector_ = nullptr; ///< non-owning; may be null
    InvariantAuditor auditor_;
    bool checked_ = false;
    bool fallback_ = false; ///< defer to repl policy this interval
    std::uint64_t interval_idx_ = 0;
    std::uint64_t degraded_intervals_ = 0;
    std::uint64_t dropped_recomputes_ = 0;
    std::uint64_t fallback_entries_ = 0;
    Eq1Stats eq1_stats_;
    std::vector<double> prev_c_; ///< last clean C_i (stale fault)
    std::vector<double> prev_m_; ///< last clean M_i (stale fault)

    // --- telemetry ---
    telemetry::IntervalRecorder *recorder_ = nullptr; ///< non-owning
    telemetry::SpanStats recompute_span_{};
};

} // namespace prism

#endif // PRISM_PRISM_PRISM_SCHEME_HH
