/**
 * @file
 * PriSM-Q: the quality-of-service allocation policy (Algorithm 3).
 *
 * Core 0 carries an IPC floor (the paper uses 80% of its stand-alone
 * IPC). Its occupancy is grown by alpha when it runs below target and
 * shrunk by beta when above; the remaining cores share the rest of
 * the cache under hit-maximisation.
 */

#ifndef PRISM_PRISM_ALLOC_QOS_HH
#define PRISM_PRISM_ALLOC_QOS_HH

#include "prism/alloc_policy.hh"

namespace prism
{

/** Algorithm 3 tunables; defaults are the paper's. */
struct QosParams
{
    double alpha = 0.1; ///< growth factor when under target
    /**
     * Shrink factor when over target. The paper uses 0.1 for both
     * directions over 500M-instruction runs; shrinking is applied
     * more conservatively here because growth is rate-limited by the
     * program's own miss inflow while shrinking acts immediately —
     * symmetric steps overshoot badly within scaled runs.
     */
    double beta = 0.03;
    /** Bounds on core 0's target occupancy fraction. */
    double minFrac = 0.005;
    double maxFrac = 0.95;

    /**
     * Dead band around the target within which the allocation is
     * held ("allocation is not changed if the performance target is
     * being met" — with measured IPC, "met" needs a tolerance), and
     * the EWMA weight smoothing the per-interval IPC measurement.
     */
    double deadBand = 0.03;
    double ipcSmoothing = 0.5;
};

/** Algorithm 3 of the paper, guaranteeing IPC for core 0. */
class QosPolicy : public PrismAllocPolicy
{
  public:
    /** @param target_ipc Minimum IPC core 0 must sustain. */
    explicit QosPolicy(double target_ipc, const QosParams &params = {})
        : target_ipc_(target_ipc), params_(params)
    {}

    std::string name() const override { return "QoS"; }

    std::vector<double>
    computeTargets(const IntervalSnapshot &snap) override;

    double targetIpc() const { return target_ipc_; }

    unsigned
    arithmeticOps(unsigned num_cores) const override
    {
        // One compare + scale for core 0, hit-max for the rest.
        return 2 + 5 * (num_cores - 1);
    }

  private:
    double target_ipc_;
    QosParams params_;
    double smoothed_ipc_ = -1.0; ///< <0 until the first measurement
};

} // namespace prism

#endif // PRISM_PRISM_ALLOC_QOS_HH
