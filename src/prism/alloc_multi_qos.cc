#include "prism/alloc_multi_qos.hh"

#include <algorithm>

#include "common/prism_assert.hh"
#include "prism/alloc_hitmax.hh"

namespace prism
{

MultiQosPolicy::MultiQosPolicy(std::map<CoreId, double> targets,
                               const QosParams &params)
    : targets_(std::move(targets)), params_(params)
{
    fatalIf(targets_.empty(), "MultiQosPolicy: no QoS targets");
}

std::vector<double>
MultiQosPolicy::computeTargets(const IntervalSnapshot &snap)
{
    fatalIf(targets_.rbegin()->first >= snap.numCores(),
            "MultiQosPolicy: QoS core id out of range");

    std::vector<double> t(snap.numCores(), 0.0);

    // Run the grow/shrink controller for every guarded core.
    double guarded_sum = 0.0;
    for (const auto &[core, target_ipc] : targets_) {
        const auto &cs = snap.cores[core];
        const double occ = std::max(
            static_cast<double>(cs.occupancyBlocks), 1.0) /
            static_cast<double>(snap.totalBlocks);
        double tc = occ;
        if (cs.cycles > 0) {
            const double ipc =
                static_cast<double>(cs.instructions) /
                static_cast<double>(cs.cycles);
            auto it = smoothed_ipc_.find(core);
            if (it == smoothed_ipc_.end())
                it = smoothed_ipc_.emplace(core, ipc).first;
            else
                it->second = params_.ipcSmoothing * it->second +
                             (1.0 - params_.ipcSmoothing) * ipc;
            const double s = it->second;
            if (s < target_ipc * (1.0 - params_.deadBand))
                tc = (1.0 + params_.alpha) * occ;
            else if (s > target_ipc * (1.0 + params_.deadBand))
                tc = (1.0 - params_.beta) * occ;
        }
        t[core] = std::clamp(tc, params_.minFrac, params_.maxFrac);
        guarded_sum += t[core];
    }

    // Admission control: guards collectively may not claim the whole
    // cache; scale back proportionally when over the cap.
    if (guarded_sum > maxGuardedFraction) {
        const double scale = maxGuardedFraction / guarded_sum;
        for (const auto &[core, unused] : targets_) {
            (void)unused;
            t[core] *= scale;
        }
        guarded_sum = maxGuardedFraction;
    }

    // Hit-maximise the unguarded cores inside the leftover space
    // (Algorithm 1's occupancy-times-gain-share scaling over the
    // possibly non-contiguous complement).
    const double leftover = 1.0 - guarded_sum;
    double total_gain = 0.0;
    std::vector<double> gain(snap.numCores(), 0.0);
    for (CoreId c = 0; c < snap.numCores(); ++c) {
        if (targets_.count(c))
            continue;
        gain[c] = std::max(
            0.0, snap.cores[c].standAloneHits() -
                     static_cast<double>(snap.cores[c].sharedHits));
        total_gain += gain[c];
    }
    double prop_sum = 0.0;
    std::vector<double> prop(snap.numCores(), 0.0);
    for (CoreId c = 0; c < snap.numCores(); ++c) {
        if (targets_.count(c))
            continue;
        const double occ = std::max(
            static_cast<double>(snap.cores[c].occupancyBlocks), 1.0) /
            static_cast<double>(snap.totalBlocks);
        const double scale =
            total_gain > 0.0 ? 1.0 + gain[c] / total_gain : 1.0;
        prop[c] = occ * scale;
        prop_sum += prop[c];
    }
    if (prop_sum > 0.0)
        for (CoreId c = 0; c < snap.numCores(); ++c)
            if (!targets_.count(c))
                t[c] = prop[c] / prop_sum * leftover;

    return t;
}

} // namespace prism
