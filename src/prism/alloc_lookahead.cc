#include "prism/alloc_lookahead.hh"

#include "policies/lookahead.hh"

namespace prism
{

std::vector<double>
LookaheadPolicy::computeTargets(const IntervalSnapshot &snap)
{
    std::vector<std::vector<double>> curves;
    curves.reserve(snap.cores.size());
    for (const auto &core : snap.cores)
        curves.push_back(core.shadowHitsAtPosition);

    const std::uint32_t total_units = snap.ways * units_per_way_;
    const auto alloc =
        lookaheadPartition(curves, total_units, units_per_way_);

    std::vector<double> t(snap.numCores());
    for (CoreId c = 0; c < snap.numCores(); ++c)
        t[c] = static_cast<double>(alloc[c]) /
               static_cast<double>(total_units);
    return t;
}

} // namespace prism
