/**
 * @file
 * PriSM allocation-policy interface.
 *
 * An allocation policy converts a high-level performance goal into
 * per-core target occupancies T_i (fractions of the cache summing to
 * one); the PriSM manager then turns them into eviction probabilities
 * with Equation 1. The paper envisions these running in software off
 * an augmented set of performance counters — the IntervalSnapshot is
 * exactly that counter set.
 */

#ifndef PRISM_PRISM_ALLOC_POLICY_HH
#define PRISM_PRISM_ALLOC_POLICY_HH

#include <string>
#include <vector>

#include "cache/partition_scheme.hh"

namespace prism
{

/** Translates a performance goal into target occupancies. */
class PrismAllocPolicy
{
  public:
    virtual ~PrismAllocPolicy() = default;

    virtual std::string name() const = 0;

    /**
     * Compute target occupancies for the coming interval.
     *
     * @param snap Counter snapshot of the finished interval.
     * @return Per-core fractions T_i, normalised to sum to one.
     */
    virtual std::vector<double>
    computeTargets(const IntervalSnapshot &snap) = 0;

    /**
     * Count of arithmetic operations a hardware/software realisation
     * of this policy performs per recomputation (reported by the
     * overhead micro-bench, mirroring the paper's 20–224 numbers).
     */
    virtual unsigned arithmeticOps(unsigned num_cores) const = 0;
};

/** Normalise @p t in place to sum to one (fatal on all-zero). */
void normaliseTargets(std::vector<double> &t);

} // namespace prism

#endif // PRISM_PRISM_ALLOC_POLICY_HH
