#include "prism/alloc_hitmax.hh"

#include <algorithm>
#include <cmath>

#include "common/prism_assert.hh"

namespace prism
{

void
normaliseTargets(std::vector<double> &t)
{
    double sum = 0.0;
    for (double v : t)
        sum += v;
    if (sum <= 0.0) {
        // Degenerate: fall back to an even split.
        std::fill(t.begin(), t.end(),
                  1.0 / static_cast<double>(t.size()));
        return;
    }
    for (auto &v : t)
        v /= sum;
}

namespace
{

/**
 * Shared core of Algorithm 1: scale occupancies by gain shares over
 * cores [first, last) and normalise into @p budget. @p gain holds
 * PotentialGain per core (clamped at zero: sharing cannot beat
 * owning the whole cache; small negatives are shadow-tag noise).
 */
std::vector<double>
algorithmOne(const IntervalSnapshot &snap,
             const std::vector<double> &gain, CoreId first, CoreId last,
             double budget)
{
    std::vector<double> t(snap.numCores(), 0.0);
    double total_gain = 0.0;
    for (CoreId c = first; c < last; ++c)
        total_gain += gain[c];

    // T_core = C_core * (1 + gain / totalGain); a core with no
    // occupancy yet is treated as holding one block so it can grow.
    double t_sum = 0.0;
    for (CoreId c = first; c < last; ++c) {
        const double occ = std::max(
            static_cast<double>(snap.cores[c].occupancyBlocks), 1.0) /
            static_cast<double>(snap.totalBlocks);
        const double scale =
            total_gain > 0.0 ? 1.0 + gain[c] / total_gain : 1.0;
        t[c] = occ * scale;
        t_sum += t[c];
    }

    // Normalise the subset into the given budget — but never scale a
    // core's target beyond twice its occupancy, Algorithm 1's own
    // per-interval growth bound. Without the cap a subset of tiny
    // cores handed a large budget (PriSM-Q's common case) would carry
    // unreachable targets, permanently classifying them as
    // "protected" and pushing every eviction onto the QoS core.
    panicIf(t_sum <= 0.0, "HitMaxPolicy: zero target sum");
    const double scale_to_budget =
        std::min(budget / t_sum, 2.0);
    for (CoreId c = first; c < last; ++c)
        t[c] *= scale_to_budget;
    return t;
}

double
potentialGain(const CoreIntervalStats &core)
{
    return std::max(0.0,
                    core.standAloneHits() -
                        static_cast<double>(core.sharedHits));
}

} // namespace

std::vector<double>
HitMaxPolicy::computeTargetsSubset(const IntervalSnapshot &snap,
                                   CoreId first, CoreId last,
                                   double budget)
{
    panicIf(first >= last || last > snap.numCores(),
            "HitMaxPolicy: bad core range");
    std::vector<double> gain(snap.numCores(), 0.0);
    for (CoreId c = first; c < last; ++c)
        gain[c] = potentialGain(snap.cores[c]);
    return algorithmOne(snap, gain, first, last, budget);
}

std::vector<double>
HitMaxPolicy::computeTargets(const IntervalSnapshot &snap)
{
    if (smoothed_gain_.size() != snap.numCores())
        smoothed_gain_.assign(snap.numCores(), 0.0);
    for (CoreId c = 0; c < snap.numCores(); ++c)
        smoothed_gain_[c] = 0.5 * smoothed_gain_[c] +
                            0.5 * potentialGain(snap.cores[c]);
    return algorithmOne(snap, smoothed_gain_, 0, snap.numCores(), 1.0);
}

} // namespace prism
