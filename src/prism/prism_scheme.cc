#include "prism/prism_scheme.hh"

#include "cache/shared_cache.hh"
#include "common/prism_assert.hh"
#include "telemetry/span.hh"

namespace prism
{

PrismScheme::PrismScheme(std::uint32_t num_cores,
                         std::unique_ptr<PrismAllocPolicy> policy,
                         std::uint64_t seed, const PrismParams &params)
    : num_cores_(num_cores), policy_(std::move(policy)),
      controller_(num_cores, seed,
                  ControllerParams{.probBits = params.probBits})
{
    fatalIf(!policy_, "PrismScheme: null allocation policy");
    allowed_.assign(256, 0);
    occupancy_blocks_.assign(num_cores_, 0);
    stand_alone_hits_.assign(num_cores_, 0.0);
}

std::string
PrismScheme::name() const
{
    return "PriSM-" + policy_->name();
}

int
PrismScheme::chooseVictim(SharedCache &cache, CoreId core, const SetView &set)
{
    (void)core;
    ++replacements_;

    if (controller_.fallbackActive()) {
        // Degraded: the last recompute produced an unrecoverable
        // distribution, so probabilistic core selection is off and
        // the underlying replacement policy serves the interval.
        return cache.repl().victim(set);
    }

    const CoreId victim_core = sampleVictimCore();
    const CoreId *owner = set.blocks.owner;
    const double *e = controller_.evictionProbs().data();

    if (cache.repl().victimOrderIsRecency()) {
        // LRU-family fast path: victimAmong() is the back-to-front
        // walk of the recency order and evictionOrder() is that same
        // order reversed, so Victim-Identification and the §3.1
        // fallback fuse into one walk. Every valid way is in the
        // list (LRU fills insert unconditionally), making this
        // draw-for-draw identical to the masked two-pass scan below.
        const OrderList &order = set.state.order;
        int fallback_way = invalidWay;
        for (std::size_t i = order.size(); i-- > 0;) {
            const int way = order[i];
            const CoreId o = owner[static_cast<std::size_t>(way)];
            if (o == victim_core)
                return way;
            if (fallback_way == invalidWay && e[o] > 0.0)
                fallback_way = way;
        }
        ++victimless_;
        if (fallback_way != invalidWay)
            return fallback_way;
        // Every owner in this set has E == 0: overall candidate.
        return order.empty() ? invalidWay : order.back();
    }

    const std::size_t num_ways = set.ways();
    if (allowed_.size() < num_ways)
        allowed_.resize(num_ways);
    // Contiguous single-field scans over the SoA metadata.
    const std::uint8_t *valid = set.blocks.valid;
    bool present = false;
    for (std::size_t w = 0; w < num_ways; ++w) {
        const bool mine = valid[w] && owner[w] == victim_core;
        allowed_[w] = mine;
        present |= mine;
    }

    if (present) {
        const int way = cache.repl().victimAmong(
            set, std::span<const char>(allowed_.data(), num_ways));
        if (way != invalidWay)
            return way;
    }

    // Fallback (§3.1): first replacement candidate owned by a core
    // with non-zero eviction probability.
    ++victimless_;
    cache.repl().evictionOrder(set, order_);
    for (int way : order_) {
        if (e[owner[static_cast<std::size_t>(way)]] > 0.0)
            return way;
    }
    // Every owner in this set has E == 0: take the overall candidate.
    return order_.empty() ? invalidWay : order_.front();
}

void
PrismScheme::onIntervalEnd(const IntervalSnapshot &snap)
{
    PRISM_SPAN(recompute_span_);

    if (!controller_.beginRecompute())
        return; // dropped recompute: previous E serves the interval

    const IntervalSnapshot *input = &snap;
    IntervalSnapshot perturbed;
    if (FaultInjector *injector = controller_.faultInjector()) {
        perturbed = snap;
        injector->skewShadow(perturbed, controller_.intervalIndex());
        input = &perturbed;
    }

    std::vector<double> targets = policy_->computeTargets(*input);

    std::vector<double> c(num_cores_), m(num_cores_);
    for (CoreId i = 0; i < num_cores_; ++i) {
        c[i] = input->occupancyFraction(i);
        m[i] = input->missFraction(i);
    }
    controller_.conditionInputs(c, m);
    controller_.commitRecompute(std::move(targets), c, m,
                                input->totalBlocks,
                                input->intervalMisses);

    // Refresh the CachePlane view from the (unperturbed) snapshot.
    capacity_blocks_ = snap.totalBlocks;
    for (CoreId i = 0; i < num_cores_; ++i) {
        occupancy_blocks_[i] = snap.cores[i].occupancyBlocks;
        stand_alone_hits_[i] = snap.cores[i].standAloneHits();
    }
}

} // namespace prism
