#include "prism/prism_scheme.hh"

#include <cmath>

#include "cache/shared_cache.hh"
#include "common/prism_assert.hh"
#include "prism/eq1.hh"
#include "telemetry/span.hh"

namespace prism
{

PrismScheme::PrismScheme(std::uint32_t num_cores,
                         std::unique_ptr<PrismAllocPolicy> policy,
                         std::uint64_t seed, const PrismParams &params)
    : num_cores_(num_cores), policy_(std::move(policy)), rng_(seed),
      params_(params)
{
    fatalIf(!policy_, "PrismScheme: null allocation policy");
    e_.assign(num_cores_, 1.0 / num_cores_);
    targets_.assign(num_cores_, 1.0 / num_cores_);
    allowed_.assign(256, 0);
    prob_stats_.resize(num_cores_);
}

std::string
PrismScheme::name() const
{
    return "PriSM-" + policy_->name();
}

CoreId
PrismScheme::sampleVictimCore()
{
    // Inverse-CDF walk over at most numCores entries — the paper's
    // random-number-generator + comparator tree in hardware.
    const double u = rng_.uniform();
    double acc = 0.0;
    for (CoreId c = 0; c < num_cores_; ++c) {
        acc += e_[c];
        if (u < acc)
            return c;
    }
    // Rounding residue: return the last core with non-zero E.
    for (CoreId c = num_cores_; c-- > 0;)
        if (e_[c] > 0.0)
            return c;
    return num_cores_ - 1;
}

void
PrismScheme::setEvictionProbs(std::span<const double> e)
{
    panicIf(e.size() != num_cores_,
            "setEvictionProbs: distribution size != core count");
    e_.assign(e.begin(), e.end());
    if (params_.probBits > 0) {
        const FixedPointCodec codec(params_.probBits);
        e_ = codec.quantiseDistribution(e_);
    }
}

int
PrismScheme::chooseVictim(SharedCache &cache, CoreId core, SetView set)
{
    (void)core;
    ++replacements_;

    if (fallback_) {
        // Degraded: the last recompute produced an unrecoverable
        // distribution, so probabilistic core selection is off and
        // the underlying replacement policy serves the interval.
        return cache.repl().victim(set);
    }

    const CoreId victim_core = sampleVictimCore();

    if (allowed_.size() < set.ways())
        allowed_.resize(set.ways());
    bool present = false;
    for (std::size_t w = 0; w < set.ways(); ++w) {
        const bool mine = set.blocks[w].valid &&
                          set.blocks[w].owner == victim_core;
        allowed_[w] = mine;
        present |= mine;
    }

    if (present) {
        const int way = cache.repl().victimAmong(
            set, std::span<const char>(allowed_.data(), set.ways()));
        if (way != invalidWay)
            return way;
    }

    // Fallback (§3.1): first replacement candidate owned by a core
    // with non-zero eviction probability.
    ++victimless_;
    cache.repl().evictionOrder(set, order_);
    for (int way : order_) {
        const CoreId owner =
            set.blocks[static_cast<std::size_t>(way)].owner;
        if (e_[owner] > 0.0)
            return way;
    }
    // Every owner in this set has E == 0: take the overall candidate.
    return order_.empty() ? invalidWay : order_.front();
}

void
PrismScheme::emitEvent(telemetry::EventKind kind, double value,
                       CoreId core)
{
    if (recorder_)
        recorder_->addEvent(
            telemetry::TelemetryEvent{kind, interval_idx_, core, value});
}

void
PrismScheme::onIntervalEnd(const IntervalSnapshot &snap)
{
    PRISM_SPAN(recompute_span_);
    const std::uint64_t interval = ++interval_idx_;
    bool degraded = false;

    if (injector_ && injector_->dropRecompute(interval)) {
        // The recompute event was lost: keep serving the previous
        // distribution for another interval.
        ++dropped_recomputes_;
        ++degraded_intervals_;
        emitEvent(telemetry::EventKind::DroppedRecompute);
        emitEvent(telemetry::EventKind::DegradedInterval);
        return;
    }

    const IntervalSnapshot *input = &snap;
    IntervalSnapshot perturbed;
    if (injector_) {
        perturbed = snap;
        injector_->skewShadow(perturbed, interval);
        input = &perturbed;
    }

    targets_ = policy_->computeTargets(*input);

    std::vector<double> c(num_cores_), m(num_cores_);
    for (CoreId i = 0; i < num_cores_; ++i) {
        c[i] = input->occupancyFraction(i);
        m[i] = input->missFraction(i);
    }

    if (injector_) {
        std::vector<double> clean_c = c, clean_m = m;
        if (!prev_c_.empty() &&
            injector_->staleSnapshot(interval)) {
            c = prev_c_;
            m = prev_m_;
            degraded = true;
        }
        injector_->poisonInputs(c, m, interval);
        prev_c_ = std::move(clean_c);
        prev_m_ = std::move(clean_m);
    }

    Eq1Stats recompute_stats;
    e_ = evictionDistribution(c, targets_, m, input->totalBlocks,
                              input->intervalMisses, &recompute_stats);
    eq1_stats_.clampedInputs += recompute_stats.clampedInputs;
    if (recompute_stats.clampedInputs > 0)
        degraded = true;

    if (params_.probBits > 0) {
        const FixedPointCodec codec(params_.probBits);
        e_ = codec.quantiseDistribution(e_);
    }

    if (injector_)
        injector_->saturateQuantisation(e_, interval);

    fallback_ = false;
    if (checked_ && !auditor_.checkDistribution(e_).ok()) {
        degraded = true;
        if (!repairDistribution())
            fallback_ = true;
        emitEvent(telemetry::EventKind::DistributionRepair,
                  fallback_ ? 0.0 : 1.0);
        if (fallback_) {
            ++fallback_entries_;
            emitEvent(telemetry::EventKind::FallbackEntered);
        }
    }

    if (degraded) {
        ++degraded_intervals_;
        emitEvent(telemetry::EventKind::DegradedInterval);
    }

    ++recomputes_;
    for (CoreId i = 0; i < num_cores_; ++i)
        prob_stats_[i].add(e_[i]);
}

bool
PrismScheme::repairDistribution()
{
    double sum = 0.0;
    for (double &v : e_) {
        if (!std::isfinite(v) || v < 0.0)
            v = 0.0;
        else if (v > 1.0)
            v = 1.0;
        sum += v;
    }
    if (sum <= 0.0) {
        // No probability mass survived: leave a safe uniform
        // distribution behind and tell the caller to fall back to
        // the underlying replacement policy until the next interval.
        e_.assign(num_cores_, 1.0 / num_cores_);
        return false;
    }
    for (double &v : e_)
        v /= sum;
    return true;
}

} // namespace prism
