#include "prism/prism_scheme.hh"

#include <cmath>

#include "cache/shared_cache.hh"
#include "common/prism_assert.hh"
#include "prism/eq1.hh"
#include "telemetry/span.hh"

namespace prism
{

PrismScheme::PrismScheme(std::uint32_t num_cores,
                         std::unique_ptr<PrismAllocPolicy> policy,
                         std::uint64_t seed, const PrismParams &params)
    : num_cores_(num_cores), policy_(std::move(policy)), rng_(seed),
      params_(params)
{
    fatalIf(!policy_, "PrismScheme: null allocation policy");
    e_.assign(num_cores_, 1.0 / num_cores_);
    targets_.assign(num_cores_, 1.0 / num_cores_);
    allowed_.assign(256, 0);
    prob_stats_.resize(num_cores_);
    sampler_.build(e_);
}

std::string
PrismScheme::name() const
{
    return "PriSM-" + policy_->name();
}

CoreId
PrismScheme::sampleVictimCore()
{
    // The paper's random-number-generator + comparator tree in
    // hardware: one uniform per draw (stream-compatible with the
    // reference inverse-CDF walk), mapped through the O(1) table.
    // When a single core holds all probability mass the sampler
    // short-circuits without touching the table.
    return sampler_.sample(rng_.uniform());
}

void
PrismScheme::setEvictionProbs(std::span<const double> e)
{
    panicIf(e.size() != num_cores_,
            "setEvictionProbs: distribution size != core count");
    e_.assign(e.begin(), e.end());
    if (params_.probBits > 0) {
        const FixedPointCodec codec(params_.probBits);
        e_ = codec.quantiseDistribution(e_);
    }
    sampler_.build(e_);
}

int
PrismScheme::chooseVictim(SharedCache &cache, CoreId core, const SetView &set)
{
    (void)core;
    ++replacements_;

    if (fallback_) {
        // Degraded: the last recompute produced an unrecoverable
        // distribution, so probabilistic core selection is off and
        // the underlying replacement policy serves the interval.
        return cache.repl().victim(set);
    }

    const CoreId victim_core = sampleVictimCore();
    const CoreId *owner = set.blocks.owner;

    if (cache.repl().victimOrderIsRecency()) {
        // LRU-family fast path: victimAmong() is the back-to-front
        // walk of the recency order and evictionOrder() is that same
        // order reversed, so Victim-Identification and the §3.1
        // fallback fuse into one walk. Every valid way is in the
        // list (LRU fills insert unconditionally), making this
        // draw-for-draw identical to the masked two-pass scan below.
        const OrderList &order = set.state.order;
        int fallback_way = invalidWay;
        for (std::size_t i = order.size(); i-- > 0;) {
            const int way = order[i];
            const CoreId o = owner[static_cast<std::size_t>(way)];
            if (o == victim_core)
                return way;
            if (fallback_way == invalidWay && e_[o] > 0.0)
                fallback_way = way;
        }
        ++victimless_;
        if (fallback_way != invalidWay)
            return fallback_way;
        // Every owner in this set has E == 0: overall candidate.
        return order.empty() ? invalidWay : order.back();
    }

    const std::size_t num_ways = set.ways();
    if (allowed_.size() < num_ways)
        allowed_.resize(num_ways);
    // Contiguous single-field scans over the SoA metadata.
    const std::uint8_t *valid = set.blocks.valid;
    bool present = false;
    for (std::size_t w = 0; w < num_ways; ++w) {
        const bool mine = valid[w] && owner[w] == victim_core;
        allowed_[w] = mine;
        present |= mine;
    }

    if (present) {
        const int way = cache.repl().victimAmong(
            set, std::span<const char>(allowed_.data(), num_ways));
        if (way != invalidWay)
            return way;
    }

    // Fallback (§3.1): first replacement candidate owned by a core
    // with non-zero eviction probability.
    ++victimless_;
    cache.repl().evictionOrder(set, order_);
    for (int way : order_) {
        if (e_[owner[static_cast<std::size_t>(way)]] > 0.0)
            return way;
    }
    // Every owner in this set has E == 0: take the overall candidate.
    return order_.empty() ? invalidWay : order_.front();
}

void
PrismScheme::emitEvent(telemetry::EventKind kind, double value,
                       CoreId core)
{
    if (recorder_)
        recorder_->addEvent(
            telemetry::TelemetryEvent{kind, interval_idx_, core, value});
}

void
PrismScheme::onIntervalEnd(const IntervalSnapshot &snap)
{
    PRISM_SPAN(recompute_span_);
    const std::uint64_t interval = ++interval_idx_;
    bool degraded = false;

    if (injector_ && injector_->dropRecompute(interval)) {
        // The recompute event was lost: keep serving the previous
        // distribution for another interval.
        ++dropped_recomputes_;
        ++degraded_intervals_;
        emitEvent(telemetry::EventKind::DroppedRecompute);
        emitEvent(telemetry::EventKind::DegradedInterval);
        return;
    }

    const IntervalSnapshot *input = &snap;
    IntervalSnapshot perturbed;
    if (injector_) {
        perturbed = snap;
        injector_->skewShadow(perturbed, interval);
        input = &perturbed;
    }

    targets_ = policy_->computeTargets(*input);

    std::vector<double> c(num_cores_), m(num_cores_);
    for (CoreId i = 0; i < num_cores_; ++i) {
        c[i] = input->occupancyFraction(i);
        m[i] = input->missFraction(i);
    }

    if (injector_) {
        std::vector<double> clean_c = c, clean_m = m;
        if (!prev_c_.empty() &&
            injector_->staleSnapshot(interval)) {
            c = prev_c_;
            m = prev_m_;
            degraded = true;
        }
        injector_->poisonInputs(c, m, interval);
        prev_c_ = std::move(clean_c);
        prev_m_ = std::move(clean_m);
    }

    Eq1Stats recompute_stats;
    e_ = evictionDistribution(c, targets_, m, input->totalBlocks,
                              input->intervalMisses, &recompute_stats);
    eq1_stats_.clampedInputs += recompute_stats.clampedInputs;
    eq1_stats_.fallbackActivations +=
        recompute_stats.fallbackActivations;
    if (recompute_stats.clampedInputs > 0)
        degraded = true;

    if (params_.probBits > 0) {
        const FixedPointCodec codec(params_.probBits);
        e_ = codec.quantiseDistribution(e_);
    }

    if (injector_)
        injector_->saturateQuantisation(e_, interval);

    fallback_ = false;
    if (checked_ && !auditor_.checkDistribution(e_).ok()) {
        degraded = true;
        if (!repairDistribution())
            fallback_ = true;
        emitEvent(telemetry::EventKind::DistributionRepair,
                  fallback_ ? 0.0 : 1.0);
        if (fallback_) {
            ++fallback_entries_;
            emitEvent(telemetry::EventKind::FallbackEntered);
        }
    }

    if (degraded) {
        ++degraded_intervals_;
        emitEvent(telemetry::EventKind::DegradedInterval);
    }

    // Rebuild the Core-Selection table once per recompute — after
    // every mutation of e_ (quantisation, injected saturation,
    // repair) so the table and the distribution never diverge.
    sampler_.build(e_);

    ++recomputes_;
    for (CoreId i = 0; i < num_cores_; ++i)
        prob_stats_[i].add(e_[i]);
}

bool
PrismScheme::repairDistribution()
{
    double sum = 0.0;
    for (double &v : e_) {
        if (!std::isfinite(v) || v < 0.0)
            v = 0.0;
        else if (v > 1.0)
            v = 1.0;
        sum += v;
    }
    if (sum <= 0.0) {
        // No probability mass survived: leave a safe uniform
        // distribution behind and tell the caller to fall back to
        // the underlying replacement policy until the next interval.
        e_.assign(num_cores_, 1.0 / num_cores_);
        return false;
    }
    for (double &v : e_)
        v /= sum;
    return true;
}

} // namespace prism
