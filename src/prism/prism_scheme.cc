#include "prism/prism_scheme.hh"

#include "cache/shared_cache.hh"
#include "common/prism_assert.hh"
#include "prism/eq1.hh"

namespace prism
{

PrismScheme::PrismScheme(std::uint32_t num_cores,
                         std::unique_ptr<PrismAllocPolicy> policy,
                         std::uint64_t seed, const PrismParams &params)
    : num_cores_(num_cores), policy_(std::move(policy)), rng_(seed),
      params_(params)
{
    fatalIf(!policy_, "PrismScheme: null allocation policy");
    e_.assign(num_cores_, 1.0 / num_cores_);
    targets_.assign(num_cores_, 1.0 / num_cores_);
    allowed_.assign(256, 0);
    prob_stats_.resize(num_cores_);
}

std::string
PrismScheme::name() const
{
    return "PriSM-" + policy_->name();
}

CoreId
PrismScheme::sampleVictimCore()
{
    // Inverse-CDF walk over at most numCores entries — the paper's
    // random-number-generator + comparator tree in hardware.
    const double u = rng_.uniform();
    double acc = 0.0;
    for (CoreId c = 0; c < num_cores_; ++c) {
        acc += e_[c];
        if (u < acc)
            return c;
    }
    // Rounding residue: return the last core with non-zero E.
    for (CoreId c = num_cores_; c-- > 0;)
        if (e_[c] > 0.0)
            return c;
    return num_cores_ - 1;
}

int
PrismScheme::chooseVictim(SharedCache &cache, CoreId core, SetView set)
{
    (void)core;
    ++replacements_;

    const CoreId victim_core = sampleVictimCore();

    if (allowed_.size() < set.ways())
        allowed_.resize(set.ways());
    bool present = false;
    for (std::size_t w = 0; w < set.ways(); ++w) {
        const bool mine = set.blocks[w].valid &&
                          set.blocks[w].owner == victim_core;
        allowed_[w] = mine;
        present |= mine;
    }

    if (present) {
        const int way = cache.repl().victimAmong(
            set, std::span<const char>(allowed_.data(), set.ways()));
        if (way != invalidWay)
            return way;
    }

    // Fallback (§3.1): first replacement candidate owned by a core
    // with non-zero eviction probability.
    ++victimless_;
    cache.repl().evictionOrder(set, order_);
    for (int way : order_) {
        const CoreId owner =
            set.blocks[static_cast<std::size_t>(way)].owner;
        if (e_[owner] > 0.0)
            return way;
    }
    // Every owner in this set has E == 0: take the overall candidate.
    return order_.empty() ? invalidWay : order_.front();
}

void
PrismScheme::onIntervalEnd(const IntervalSnapshot &snap)
{
    targets_ = policy_->computeTargets(snap);

    std::vector<double> c(num_cores_), m(num_cores_);
    for (CoreId i = 0; i < num_cores_; ++i) {
        c[i] = snap.occupancyFraction(i);
        m[i] = snap.missFraction(i);
    }

    e_ = evictionDistribution(c, targets_, m, snap.totalBlocks,
                              snap.intervalMisses);

    if (params_.probBits > 0) {
        const FixedPointCodec codec(params_.probBits);
        e_ = codec.quantiseDistribution(e_);
    }

    ++recomputes_;
    for (CoreId i = 0; i < num_cores_; ++i)
        prob_stats_[i].add(e_[i]);
}

} // namespace prism
