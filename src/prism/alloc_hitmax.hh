/**
 * @file
 * PriSM-H: the hit-maximisation allocation policy (Algorithm 1).
 *
 * Each core's potential to gain hits is estimated as the difference
 * between its stand-alone hits (shadow tags) and its actual shared
 * hits over the interval; target occupancy scales the current
 * occupancy by the core's share of the total potential gain.
 */

#ifndef PRISM_PRISM_ALLOC_HITMAX_HH
#define PRISM_PRISM_ALLOC_HITMAX_HH

#include "prism/alloc_policy.hh"

namespace prism
{

/**
 * Algorithm 1 of the paper.
 *
 * The potential-gain counters are smoothed across intervals with an
 * exponentially weighted moving average: the paper recomputes
 * hundreds to thousands of times over 200-500M instructions, so each
 * recomputation sees well-averaged counters; our scaled runs have
 * tens of intervals, and the EWMA restores the same effective
 * averaging horizon (see EXPERIMENTS.md, "Scaling").
 */
class HitMaxPolicy : public PrismAllocPolicy
{
  public:
    std::string name() const override { return "HitMax"; }

    std::vector<double>
    computeTargets(const IntervalSnapshot &snap) override;

    /**
     * Target computation restricted to cores [first, last), fitting
     * inside @p budget of the cache — the form PriSM-Q uses for the
     * non-QoS cores. Entries outside the range are zero.
     */
    static std::vector<double>
    computeTargetsSubset(const IntervalSnapshot &snap, CoreId first,
                         CoreId last, double budget);

    unsigned
    arithmeticOps(unsigned num_cores) const override
    {
        // Matches the paper's figures: 20 ops at 4 cores, 160 at 32.
        return 5 * num_cores;
    }

  private:
    /** EWMA-smoothed potential gains, one per core. */
    std::vector<double> smoothed_gain_;
};

} // namespace prism

#endif // PRISM_PRISM_ALLOC_HITMAX_HH
