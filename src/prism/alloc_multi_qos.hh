/**
 * @file
 * Multi-program QoS allocation policy (extension beyond the paper).
 *
 * Algorithm 3 guarantees an IPC floor for a single core ("without
 * loss of generality, Core_0"). This policy generalises it: any
 * subset of cores can carry floors; each guarded core's occupancy is
 * controlled by the same grow/shrink rule, and the remaining space is
 * hit-maximised across the unguarded cores. When the guards'
 * combined demand exceeds the cache, targets are scaled back
 * proportionally — an admission-control decision the single-core
 * algorithm never faces.
 */

#ifndef PRISM_PRISM_ALLOC_MULTI_QOS_HH
#define PRISM_PRISM_ALLOC_MULTI_QOS_HH

#include <map>

#include "prism/alloc_policy.hh"
#include "prism/alloc_qos.hh"

namespace prism
{

/** IPC floors for several cores; hit-max for everyone else. */
class MultiQosPolicy : public PrismAllocPolicy
{
  public:
    /**
     * @param targets Map core id -> minimum IPC.
     * @param params Controller tunables (shared with QosPolicy).
     */
    MultiQosPolicy(std::map<CoreId, double> targets,
                   const QosParams &params = {});

    std::string name() const override { return "MultiQoS"; }

    std::vector<double>
    computeTargets(const IntervalSnapshot &snap) override;

    unsigned
    arithmeticOps(unsigned num_cores) const override
    {
        return 2 * static_cast<unsigned>(targets_.size()) +
               5 * num_cores;
    }

    /** Combined guarded occupancy cap (admission control). */
    static constexpr double maxGuardedFraction = 0.9;

  private:
    std::map<CoreId, double> targets_;
    QosParams params_;
    std::map<CoreId, double> smoothed_ipc_;
};

} // namespace prism

#endif // PRISM_PRISM_ALLOC_MULTI_QOS_HH
