/**
 * @file
 * Extended-UCP lookahead allocation policy for PriSM.
 *
 * The paper's Vantage comparison (Section 5.3) drives both Vantage
 * and PriSM with the same "extended UCP" allocation policy: UCP's
 * lookahead run at sub-way granularity, producing fractional target
 * occupancies. This policy wraps the shared lookahead implementation
 * as a PriSM allocation policy so Figure 7/8 compare purely the
 * partitioning mechanisms.
 */

#ifndef PRISM_PRISM_ALLOC_LOOKAHEAD_HH
#define PRISM_PRISM_ALLOC_LOOKAHEAD_HH

#include "prism/alloc_policy.hh"

namespace prism
{

/** Lookahead-driven target occupancies at sub-way granularity. */
class LookaheadPolicy : public PrismAllocPolicy
{
  public:
    /** @param units_per_way Lookahead granularity (4 = quarter-way). */
    explicit LookaheadPolicy(std::uint32_t units_per_way = 4)
        : units_per_way_(units_per_way)
    {}

    std::string name() const override { return "LA"; }

    std::vector<double>
    computeTargets(const IntervalSnapshot &snap) override;

    unsigned
    arithmeticOps(unsigned num_cores) const override
    {
        // Lookahead is quadratic in ways — far costlier than
        // Algorithms 1-3; reported for the overhead comparison.
        return 32 * 32 * num_cores;
    }

  private:
    std::uint32_t units_per_way_;
};

} // namespace prism

#endif // PRISM_PRISM_ALLOC_LOOKAHEAD_HH
