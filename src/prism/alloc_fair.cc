#include "prism/alloc_fair.hh"

#include <algorithm>

namespace prism
{

double
FairPolicy::estimatedSlowdown(const IntervalSnapshot &snap, CoreId core)
{
    const auto &cs = snap.cores[core];

    if (cs.instructions == 0 || cs.cycles == 0) {
        // No timing model attached: approximate the slowdown with the
        // miss-increase ratio (the same signal Kim et al. [9] use).
        const double alone = std::max(1.0, cs.shadowMisses);
        return std::max(
            1.0, static_cast<double>(cs.sharedMisses) / alone);
    }

    const double instr = static_cast<double>(cs.instructions);
    const double cpi_shared =
        static_cast<double>(cs.cycles) / instr;
    const double cpi_llc =
        static_cast<double>(cs.llcStallCycles) / instr;
    const double cpi_ideal = std::max(0.0, cpi_shared - cpi_llc);

    // Scale CPI_llc linearly by the stand-alone/shared miss ratio to
    // estimate the stand-alone LLC component.
    const double shared_misses =
        std::max(1.0, static_cast<double>(cs.sharedMisses));
    const double miss_ratio =
        std::min(1.0, cs.shadowMisses / shared_misses);
    const double cpi_llc_alone = cpi_llc * miss_ratio;

    const double cpi_alone = cpi_ideal + cpi_llc_alone;
    if (cpi_alone <= 0.0)
        return 1.0;
    return std::max(1.0, cpi_shared / cpi_alone);
}

std::vector<double>
FairPolicy::computeTargets(const IntervalSnapshot &snap)
{
    // Allocation grows proportionally to the slowdown each core is
    // experiencing: T_i ~ C_i * slowdown_i, normalised.
    std::vector<double> t(snap.numCores());
    for (CoreId c = 0; c < snap.numCores(); ++c) {
        const double occ = std::max(
            static_cast<double>(snap.cores[c].occupancyBlocks), 1.0) /
            static_cast<double>(snap.totalBlocks);
        t[c] = occ * estimatedSlowdown(snap, c);
    }
    normaliseTargets(t);
    return t;
}

} // namespace prism
