#include "common/stop_signal.hh"

#include <csignal>

namespace prism
{

namespace
{

std::atomic<bool> g_stop{false};

extern "C" void
stopHandler(int)
{
    g_stop.store(true, std::memory_order_relaxed);
}

} // namespace

std::atomic<bool> &
stopRequested()
{
    return g_stop;
}

void
installStopHandlers()
{
    std::signal(SIGINT, stopHandler);
    std::signal(SIGTERM, stopHandler);
}

} // namespace prism
