/**
 * @file
 * Thread-safe memoisation of expensive pure computations.
 *
 * The sweep engine runs many simulations concurrently, and several of
 * them typically need the same stand-alone reference IPC. This memo
 * guarantees each key is computed exactly once even when multiple
 * threads ask for it at the same time: the first caller runs the
 * computation while later callers block on a shared future. Because
 * the computations are pure functions of their key, the memoised
 * values — and therefore every consumer — are independent of thread
 * count and scheduling order.
 */

#ifndef PRISM_COMMON_CONCURRENT_MEMO_HH
#define PRISM_COMMON_CONCURRENT_MEMO_HH

#include <cstdint>
#include <future>
#include <map>
#include <mutex>
#include <string>
#include <utility>

namespace prism
{

/** String-keyed once-per-key concurrent memo. */
template <typename Value>
class ConcurrentMemo
{
  public:
    /**
     * Return the memoised value for @p key, computing it with
     * @p compute on the first request. Concurrent requests for the
     * same key block until the single computation finishes; requests
     * for different keys run in parallel (the computation itself is
     * not serialised under the map lock).
     */
    template <typename Fn>
    Value
    getOrCompute(const std::string &key, Fn &&compute)
    {
        std::packaged_task<Value()> task;
        std::shared_future<Value> future;
        {
            std::lock_guard<std::mutex> lock(mutex_);
            auto it = memo_.find(key);
            if (it == memo_.end()) {
                task = std::packaged_task<Value()>(
                    std::forward<Fn>(compute));
                future = task.get_future().share();
                memo_.emplace(key, future);
                ++computes_;
            } else {
                future = it->second;
            }
        }
        // Run the computation outside the lock so unrelated keys
        // make progress concurrently.
        if (task.valid())
            task();
        return future.get();
    }

    /** Number of distinct keys computed (or in flight). */
    std::uint64_t
    computes() const
    {
        std::lock_guard<std::mutex> lock(mutex_);
        return computes_;
    }

  private:
    mutable std::mutex mutex_;
    std::map<std::string, std::shared_future<Value>> memo_;
    std::uint64_t computes_ = 0;
};

} // namespace prism

#endif // PRISM_COMMON_CONCURRENT_MEMO_HH
