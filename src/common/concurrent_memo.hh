/**
 * @file
 * Thread-safe memoisation of expensive pure computations.
 *
 * The sweep engine runs many simulations concurrently, and several of
 * them typically need the same stand-alone reference IPC. This memo
 * guarantees each key is computed exactly once even when multiple
 * threads ask for it at the same time: the first caller runs the
 * computation while later callers block on a shared future. Because
 * the computations are pure functions of their key, the memoised
 * values — and therefore every consumer — are independent of thread
 * count and scheduling order.
 */

#ifndef PRISM_COMMON_CONCURRENT_MEMO_HH
#define PRISM_COMMON_CONCURRENT_MEMO_HH

#include <chrono>
#include <cstdint>
#include <future>
#include <map>
#include <mutex>
#include <string>
#include <utility>

namespace prism
{

/** String-keyed once-per-key concurrent memo. */
template <typename Value>
class ConcurrentMemo
{
  public:
    /**
     * Return the memoised value for @p key, computing it with
     * @p compute on the first request. Concurrent requests for the
     * same key block until the single computation finishes; requests
     * for different keys run in parallel (the computation itself is
     * not serialised under the map lock).
     *
     * A computation that throws (e.g. a cancelled simulation) is NOT
     * memoised: the computing thread erases the entry before the
     * exception propagates, so every waiter of that attempt rethrows
     * but the next request computes afresh. Without this, a single
     * deadline hit would poison the key for every future retry.
     */
    template <typename Fn>
    Value
    getOrCompute(const std::string &key, Fn &&compute)
    {
        std::packaged_task<Value()> task;
        std::shared_future<Value> future;
        {
            std::lock_guard<std::mutex> lock(mutex_);
            auto it = memo_.find(key);
            if (it == memo_.end()) {
                task = std::packaged_task<Value()>(
                    std::forward<Fn>(compute));
                future = task.get_future().share();
                memo_.emplace(key, future);
                ++computes_;
            } else {
                future = it->second;
            }
        }
        // Run the computation outside the lock so unrelated keys
        // make progress concurrently.
        if (task.valid()) {
            task();
            if (future.wait_for(std::chrono::seconds(0)) ==
                std::future_status::ready) {
                try {
                    future.get();
                } catch (...) {
                    // Only the computing thread un-memoises, so no
                    // other thread can have replaced the entry yet.
                    std::lock_guard<std::mutex> lock(mutex_);
                    memo_.erase(key);
                    --computes_;
                    throw;
                }
            }
        }
        return future.get();
    }

    /** Number of distinct keys computed (or in flight). */
    std::uint64_t
    computes() const
    {
        std::lock_guard<std::mutex> lock(mutex_);
        return computes_;
    }

  private:
    mutable std::mutex mutex_;
    std::map<std::string, std::shared_future<Value>> memo_;
    std::uint64_t computes_ = 0;
};

} // namespace prism

#endif // PRISM_COMMON_CONCURRENT_MEMO_HH
