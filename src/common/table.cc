#include "common/table.hh"

#include <algorithm>
#include <cstdio>

#include "common/prism_assert.hh"

namespace prism
{

Table::Table(std::vector<std::string> headers)
    : headers_(std::move(headers))
{
    fatalIf(headers_.empty(), "Table: no columns");
}

void
Table::addRow(std::vector<std::string> cells)
{
    fatalIf(cells.size() != headers_.size(),
            "Table::addRow: cell count does not match header count");
    rows_.push_back(std::move(cells));
}

std::string
Table::num(double v, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
    return buf;
}

std::string
Table::pct(double ratio, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f%%", precision, ratio * 100.0);
    return buf;
}

void
Table::print(std::ostream &os) const
{
    std::vector<std::size_t> widths(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c)
        widths[c] = headers_[c].size();
    for (const auto &row : rows_)
        for (std::size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());

    auto emit_row = [&](const std::vector<std::string> &row) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            os << "  " << row[c]
               << std::string(widths[c] - row[c].size(), ' ');
        }
        os << '\n';
    };

    emit_row(headers_);
    std::size_t total = 0;
    for (auto w : widths)
        total += w + 2;
    os << std::string(total, '-') << '\n';
    for (const auto &row : rows_)
        emit_row(row);
}

void
Table::printCsv(std::ostream &os) const
{
    auto emit_row = [&](const std::vector<std::string> &row) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            if (c)
                os << ',';
            os << row[c];
        }
        os << '\n';
    };
    emit_row(headers_);
    for (const auto &row : rows_)
        emit_row(row);
}

void
printBanner(std::ostream &os, const std::string &title)
{
    os << '\n' << "==== " << title << " ====" << '\n';
}

} // namespace prism
