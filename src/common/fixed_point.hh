/**
 * @file
 * K-bit fixed-point representation of probabilities.
 *
 * Section 5.6 ("Bits required for Eviction-probability") of the paper
 * stores eviction probabilities as K = 6/8/10/12 bit integers so that
 * the allocation policy can communicate them to the cache controller
 * cheaply. This header provides the encode/decode pair plus a helper
 * that quantises a whole distribution while keeping it normalised.
 */

#ifndef PRISM_COMMON_FIXED_POINT_HH
#define PRISM_COMMON_FIXED_POINT_HH

#include <cmath>
#include <cstdint>
#include <span>
#include <vector>

#include "common/prism_assert.hh"

namespace prism
{

/**
 * Encoder/decoder for probabilities in [0, 1] as K-bit unsigned
 * integers, value v representing v / (2^K - 1).
 */
class FixedPointCodec
{
  public:
    /** @param bits Number of bits K; must be in [1, 31]. */
    explicit FixedPointCodec(unsigned bits)
        : bits_(bits), scale_((1u << bits) - 1u)
    {
        fatalIf(bits < 1 || bits > 31, "FixedPointCodec: bits out of range");
    }

    unsigned bits() const { return bits_; }

    /** Largest representable raw code. */
    std::uint32_t maxCode() const { return scale_; }

    /** Quantise probability @p p (clamped to [0,1]) to a raw code. */
    std::uint32_t
    encode(double p) const
    {
        if (p <= 0.0)
            return 0;
        if (p >= 1.0)
            return scale_;
        return static_cast<std::uint32_t>(std::lround(p * scale_));
    }

    /** Decode a raw code back to a probability. */
    double
    decode(std::uint32_t code) const
    {
        panicIf(code > scale_, "FixedPointCodec::decode: code overflow");
        return static_cast<double>(code) / scale_;
    }

    /** Round-trip a probability through the K-bit representation. */
    double
    quantise(double p) const
    {
        return decode(encode(p));
    }

    /**
     * Quantise a probability distribution.
     *
     * Each entry is rounded to K bits and the result is renormalised so
     * the quantised values still sum to one — mirroring the hardware,
     * where the core-selection step consumes the distribution as a
     * cumulative table and only relative magnitudes matter.
     *
     * @return The quantised (and renormalised) distribution. If every
     *         entry quantises to zero the input is returned unchanged.
     */
    std::vector<double>
    quantiseDistribution(std::span<const double> probs) const
    {
        std::vector<double> out(probs.begin(), probs.end());
        double sum = 0.0;
        for (auto &p : out) {
            p = quantise(p);
            sum += p;
        }
        if (sum <= 0.0)
            return std::vector<double>(probs.begin(), probs.end());
        for (auto &p : out)
            p /= sum;
        return out;
    }

  private:
    unsigned bits_;
    std::uint32_t scale_;
};

} // namespace prism

#endif // PRISM_COMMON_FIXED_POINT_HH
