/**
 * @file
 * Fundamental types shared by every PriSM subsystem.
 */

#ifndef PRISM_COMMON_TYPES_HH
#define PRISM_COMMON_TYPES_HH

#include <cstdint>
#include <limits>

namespace prism
{

/** Physical block-granular address. One unit == one cache block. */
using Addr = std::uint64_t;

/** Identifier for a core / program sharing the cache. */
using CoreId = std::uint32_t;

/** Simulated clock cycle count. */
using Cycles = std::uint64_t;

/** Sentinel meaning "no core" (e.g. invalid cache blocks). */
inline constexpr CoreId invalidCore = std::numeric_limits<CoreId>::max();

/** Sentinel for "no way found" in victim searches. */
inline constexpr int invalidWay = -1;

} // namespace prism

#endif // PRISM_COMMON_TYPES_HH
