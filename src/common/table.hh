/**
 * @file
 * Aligned console tables for the benchmark harnesses.
 *
 * Every figure-reproduction binary prints its series through this
 * class so all harness output is uniformly formatted and can also be
 * dumped as CSV for plotting.
 */

#ifndef PRISM_COMMON_TABLE_HH
#define PRISM_COMMON_TABLE_HH

#include <ostream>
#include <string>
#include <vector>

namespace prism
{

/** A simple column-aligned text table with an optional CSV dump. */
class Table
{
  public:
    /** @param headers Column headers, defining the column count. */
    explicit Table(std::vector<std::string> headers);

    /** Append a fully formatted row; must match the column count. */
    void addRow(std::vector<std::string> cells);

    /** Format a double with @p precision digits after the point. */
    static std::string num(double v, int precision = 3);

    /** Format a percentage ("12.3%") from a ratio-style value. */
    static std::string pct(double ratio, int precision = 1);

    /** Render the aligned table. */
    void print(std::ostream &os) const;

    /** Render as CSV (no alignment padding). */
    void printCsv(std::ostream &os) const;

    std::size_t rows() const { return rows_.size(); }

  private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

/** Print a section banner used between benchmark sub-experiments. */
void printBanner(std::ostream &os, const std::string &title);

} // namespace prism

#endif // PRISM_COMMON_TABLE_HH
