/**
 * @file
 * Error-reporting helpers in the spirit of gem5's panic()/fatal().
 *
 * panic()  — internal invariant violated: a bug in this library.
 * fatal()  — the user supplied an impossible configuration.
 */

#ifndef PRISM_COMMON_ASSERT_HH
#define PRISM_COMMON_ASSERT_HH

#include <cstdio>
#include <cstdlib>
#include <string_view>

namespace prism
{

/** Abort with a message: an internal invariant was violated. */
[[noreturn]] inline void
panic(std::string_view msg)
{
    std::fputs("panic: ", stderr);
    std::fwrite(msg.data(), 1, msg.size(), stderr);
    std::fputc('\n', stderr);
    std::abort();
}

/** Exit with a message: the user-supplied configuration is invalid. */
[[noreturn]] inline void
fatal(std::string_view msg)
{
    std::fputs("fatal: ", stderr);
    std::fwrite(msg.data(), 1, msg.size(), stderr);
    std::fputc('\n', stderr);
    std::exit(1);
}

/** panic() unless @p cond holds. */
inline void
panicIf(bool cond, std::string_view msg)
{
    if (cond)
        panic(msg);
}

/** fatal() unless @p cond holds. */
inline void
fatalIf(bool cond, std::string_view msg)
{
    if (cond)
        fatal(msg);
}

} // namespace prism

#endif // PRISM_COMMON_ASSERT_HH
