/**
 * @file
 * Skewed-popularity samplers shared by the workload and serving
 * layers.
 *
 * Two subsystems need "popular things are touched more often" draw
 * streams: the serving load generator (Zipfian key popularity, YCSB
 * style) and the simulator's trace generator (power-law stack
 * distances). They historically kept private copies; this header is
 * the single home for both samplers so neither layer re-implements
 * the numerics. Both are deterministic: all randomness comes from
 * the caller's Rng, so a stream's draw sequence depends on its seed
 * alone.
 *
 * ZipfGenerator — O(1) rank sampler, exact for any exponent >= 0.
 * Key popularity in cache-serving workloads is classically Zipfian
 * (YCSB uses exponent 0.99). The naive inverse-CDF table costs O(n)
 * memory and O(log n) per draw, which is unacceptable at the
 * multi-million-key keyspaces prism_serve targets, so this is the
 * rejection-inversion sampler of Hörmann & Derflinger ("Rejection-
 * inversion to generate variates from monotone discrete
 * distributions", 1996): O(1) state, O(1) expected draws, exact
 * without precomputation over the keyspace.
 *
 * PowerLawTable — tabulated inverse CDF of u -> u^(1/theta), the
 * stack-distance law P(distance <= d) = (d/W)^theta the trace
 * generator is built on (stack_dist_generator.hh). Tabulation keeps
 * std::pow off the per-access path; the piecewise-linear lookup is
 * the exact code the generator always used, so draw streams are
 * byte-identical to the pre-extraction ones.
 */

#ifndef PRISM_COMMON_ZIPF_HH
#define PRISM_COMMON_ZIPF_HH

#include <cmath>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/prism_assert.hh"
#include "common/rng.hh"

namespace prism
{

/** O(1) sampler of ranks in [0, n) with P(r) proportional to
 *  1/(r+1)^s. Immutable; safe to share between generator streams. */
class ZipfGenerator
{
  public:
    /**
     * @param num_elements Keyspace size n; at least 1.
     * @param exponent Zipf exponent s >= 0 (0 = uniform).
     */
    ZipfGenerator(std::uint64_t num_elements, double exponent)
        : n_(num_elements), s_(exponent)
    {
        panicIf(n_ == 0, "ZipfGenerator: empty keyspace");
        panicIf(!(s_ >= 0.0), "ZipfGenerator: exponent must be >= 0");
        h_x1_ = hIntegral(1.5) - 1.0;
        h_n_ = hIntegral(static_cast<double>(n_) + 0.5);
        s_factor_ = 2.0 - hIntegralInverse(hIntegral(2.5) - h(2.0));
    }

    /** Draw one rank in [0, n) using uniforms from @p rng. */
    std::uint64_t
    next(Rng &rng) const
    {
        if (n_ == 1)
            return 0;
        // Rejection-inversion over the hat function h(x) = x^-s:
        // invert the hat's integral at a uniform point, round to the
        // nearest integer rank, and accept when the rank's true mass
        // covers the point (the s_factor short-cut accepts the vast
        // majority of draws without evaluating hIntegral again).
        for (;;) {
            const double u =
                h_n_ + rng.uniform() * (h_x1_ - h_n_);
            const double x = hIntegralInverse(u);
            double k = std::floor(x + 0.5);
            if (k < 1.0)
                k = 1.0;
            else if (k > static_cast<double>(n_))
                k = static_cast<double>(n_);
            if (k - x <= s_factor_ ||
                u >= hIntegral(k + 0.5) - h(k))
                return static_cast<std::uint64_t>(k) - 1;
        }
    }

    std::uint64_t numElements() const { return n_; }
    double exponent() const { return s_; }

  private:
    /** Integral of the hat: H(x) = ∫ x^-s dx, via helpers that stay
     *  accurate through the s -> 1 singularity. */
    double
    hIntegral(double x) const
    {
        const double log_x = std::log(x);
        return helper2((1.0 - s_) * log_x) * log_x;
    }

    double h(double x) const { return std::exp(-s_ * std::log(x)); }

    double
    hIntegralInverse(double x) const
    {
        double t = x * (1.0 - s_);
        if (t < -1.0)
            t = -1.0; // round-off guard at the left boundary
        return std::exp(helper1(t) * x);
    }

    /** log1p(x)/x, Taylor-expanded near 0. */
    static double
    helper1(double x)
    {
        if (std::abs(x) > 1e-8)
            return std::log1p(x) / x;
        return 1.0 - x * (0.5 - x * (1.0 / 3.0 - 0.25 * x));
    }

    /** expm1(x)/x, Taylor-expanded near 0. */
    static double
    helper2(double x)
    {
        if (std::abs(x) > 1e-8)
            return std::expm1(x) / x;
        return 1.0 + x * 0.5 * (1.0 + x / 3.0 * (1.0 + 0.25 * x));
    }

    std::uint64_t n_;
    double s_;
    double h_x1_;     ///< hIntegral(1.5) - 1
    double h_n_;      ///< hIntegral(n + 0.5)
    double s_factor_; ///< acceptance short-cut bound
};

/**
 * Tabulated inverse CDF of the power law u -> u^(1/theta) on [0, 1],
 * looked up by piecewise-linear interpolation over a fixed grid.
 * fraction(u) maps a uniform draw to a distance (or rank) fraction
 * with the CDF P(fraction <= f) = f^theta — the skewed-stream law
 * the trace generator realises (stack_dist_generator.hh).
 */
class PowerLawTable
{
  public:
    /** @param theta Power-law exponent, in (0, inf). */
    explicit PowerLawTable(double theta)
    {
        panicIf(theta <= 0.0, "PowerLawTable: theta <= 0");
        // Tabulate the inverse CDF u -> u^(1/theta) so the per-draw
        // path needs no std::pow.
        const double inv_theta = 1.0 / theta;
        inv_cdf_.resize(tableSize + 1);
        for (std::size_t i = 0; i <= tableSize; ++i)
            inv_cdf_[i] = std::pow(
                static_cast<double>(i) / tableSize, inv_theta);
    }

    /** Fraction in [0, 1] for uniform draw @p u. */
    double
    fraction(double u) const
    {
        const double x = u * tableSize;
        const std::size_t lo = static_cast<std::size_t>(x);
        const double frac = x - static_cast<double>(lo);
        if (lo >= tableSize)
            return inv_cdf_[tableSize];
        return inv_cdf_[lo] +
               frac * (inv_cdf_[lo + 1] - inv_cdf_[lo]);
    }

  private:
    static constexpr std::size_t tableSize = 4096;

    std::vector<double> inv_cdf_;
};

} // namespace prism

#endif // PRISM_COMMON_ZIPF_HH
