/**
 * @file
 * Crash-safe file replacement: tmp + write + fsync + rename.
 *
 * Every JSON artifact the tools emit (BENCH_*.json, traces, stats
 * dumps, checkpoints) goes through writeFileAtomic() so that a crash,
 * SIGKILL or power loss mid-write never leaves a torn file at the
 * destination path — readers observe either the previous complete
 * content or the new complete content, nothing in between. The
 * sibling temporary file (`<path>.tmp`) is the only thing a crash
 * can leave behind, and the next successful write reclaims it.
 */

#ifndef PRISM_COMMON_ATOMIC_FILE_HH
#define PRISM_COMMON_ATOMIC_FILE_HH

#include <functional>
#include <iosfwd>
#include <string>
#include <string_view>

#include "common/status.hh"

namespace prism
{

/**
 * Atomically replace @p path with @p payload: write to `<path>.tmp`,
 * fsync, rename over @p path, then fsync the parent directory so the
 * rename itself is durable. Returns an error Status (with errno
 * detail) on any failure; the destination is untouched in that case.
 */
Status writeFileAtomic(const std::string &path,
                       std::string_view payload);

/**
 * Convenience overload for streaming writers: @p fill serialises
 * into a memory buffer which is then written atomically.
 */
Status writeFileAtomic(const std::string &path,
                       const std::function<void(std::ostream &)> &fill);

} // namespace prism

#endif // PRISM_COMMON_ATOMIC_FILE_HH
