#include "common/atomic_file.hh"

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <sstream>

#include <fcntl.h>
#include <unistd.h>

namespace prism
{

namespace
{

Status
errnoError(const std::string &what, const std::string &path)
{
    return Status::error(what + " " + path + ": " +
                         std::strerror(errno));
}

/** write(2) the whole buffer, retrying short writes and EINTR. */
bool
writeAll(int fd, const char *data, std::size_t size)
{
    while (size > 0) {
        const ssize_t n = ::write(fd, data, size);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        data += n;
        size -= static_cast<std::size_t>(n);
    }
    return true;
}

} // namespace

Status
writeFileAtomic(const std::string &path, std::string_view payload)
{
    const std::string tmp = path + ".tmp";

    int fd = ::open(tmp.c_str(),
                    O_CREAT | O_WRONLY | O_TRUNC | O_CLOEXEC, 0644);
    if (fd < 0)
        return errnoError("cannot create", tmp);
    if (!writeAll(fd, payload.data(), payload.size())) {
        const Status st = errnoError("cannot write", tmp);
        ::close(fd);
        ::unlink(tmp.c_str());
        return st;
    }
    if (::fsync(fd) != 0) {
        const Status st = errnoError("cannot fsync", tmp);
        ::close(fd);
        ::unlink(tmp.c_str());
        return st;
    }
    if (::close(fd) != 0)
        return errnoError("cannot close", tmp);

    if (std::rename(tmp.c_str(), path.c_str()) != 0) {
        const Status st = errnoError("cannot rename to", path);
        ::unlink(tmp.c_str());
        return st;
    }

    // Make the rename durable: fsync the containing directory.
    std::string dir =
        std::filesystem::path(path).parent_path().string();
    if (dir.empty())
        dir = ".";
    const int dfd = ::open(dir.c_str(), O_RDONLY | O_CLOEXEC);
    if (dfd >= 0) {
        // Some filesystems refuse directory fsync; the rename itself
        // already succeeded, so a failure here is not fatal.
        ::fsync(dfd);
        ::close(dfd);
    }
    return Status();
}

Status
writeFileAtomic(const std::string &path,
                const std::function<void(std::ostream &)> &fill)
{
    std::ostringstream buffer;
    fill(buffer);
    return writeFileAtomic(path, buffer.str());
}

} // namespace prism
