#include "common/json.hh"

#include <cctype>
#include <charconv>
#include <cmath>

#include "common/prism_assert.hh"

namespace prism
{

void
JsonWriter::separate()
{
    if (after_key_) {
        after_key_ = false;
        return;
    }
    if (stack_.empty())
        return;
    if (!stack_.back().empty)
        os_ << ',';
    stack_.back().empty = false;
    os_ << '\n';
    indent();
}

void
JsonWriter::indent()
{
    for (std::size_t i = 0; i < stack_.size(); ++i)
        os_ << "  ";
}

void
JsonWriter::beginObject()
{
    separate();
    os_ << '{';
    stack_.push_back({false, true});
}

void
JsonWriter::endObject()
{
    panicIf(stack_.empty() || stack_.back().array,
            "JsonWriter::endObject: not in an object");
    const bool empty = stack_.back().empty;
    stack_.pop_back();
    if (!empty) {
        os_ << '\n';
        indent();
    }
    os_ << '}';
    if (stack_.empty())
        os_ << '\n';
}

void
JsonWriter::beginArray()
{
    separate();
    os_ << '[';
    stack_.push_back({true, true});
}

void
JsonWriter::endArray()
{
    panicIf(stack_.empty() || !stack_.back().array,
            "JsonWriter::endArray: not in an array");
    const bool empty = stack_.back().empty;
    stack_.pop_back();
    if (!empty) {
        os_ << '\n';
        indent();
    }
    os_ << ']';
}

namespace
{

void
writeEscaped(std::ostream &os, std::string_view s)
{
    os << '"';
    for (const char c : s) {
        switch (c) {
          case '"':
            os << "\\\"";
            break;
          case '\\':
            os << "\\\\";
            break;
          case '\n':
            os << "\\n";
            break;
          case '\t':
            os << "\\t";
            break;
          case '\r':
            os << "\\r";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned>(c));
                os << buf;
            } else {
                os << c;
            }
        }
    }
    os << '"';
}

} // namespace

void
JsonWriter::key(std::string_view k)
{
    panicIf(stack_.empty() || stack_.back().array,
            "JsonWriter::key: not in an object");
    separate();
    writeEscaped(os_, k);
    os_ << ": ";
    after_key_ = true;
}

void
JsonWriter::value(std::string_view v)
{
    separate();
    writeEscaped(os_, v);
}

void
JsonWriter::value(bool v)
{
    separate();
    os_ << (v ? "true" : "false");
}

std::string
JsonWriter::formatDouble(double v)
{
    // JSON has no NaN/Inf; they indicate a degenerate run and are
    // serialised as null so the file stays parseable.
    if (!std::isfinite(v))
        return "null";
    char buf[64];
    const auto res = std::to_chars(buf, buf + sizeof(buf), v);
    return std::string(buf, res.ptr);
}

void
JsonWriter::value(double v)
{
    separate();
    os_ << formatDouble(v);
}

void
JsonWriter::value(std::uint64_t v)
{
    separate();
    os_ << v;
}

void
JsonWriter::value(std::int64_t v)
{
    separate();
    os_ << v;
}

void
JsonWriter::kv(std::string_view k, std::span<const double> vs)
{
    key(k);
    beginArray();
    for (const double v : vs)
        value(v);
    endArray();
}

void
JsonWriter::kv(std::string_view k, std::span<const std::uint64_t> vs)
{
    key(k);
    beginArray();
    for (const std::uint64_t v : vs)
        value(v);
    endArray();
}

void
JsonWriter::kv(std::string_view k, std::span<const std::string> vs)
{
    key(k);
    beginArray();
    for (const std::string &v : vs)
        value(v);
    endArray();
}

// --- parsing -------------------------------------------------------

std::uint64_t
JsonValue::asU64() const
{
    if (kind_ != Kind::Number)
        return 0;
    std::uint64_t v = 0;
    const char *begin = string_.data();
    const char *end = begin + string_.size();
    const auto res = std::from_chars(begin, end, v);
    if (res.ec != std::errc() || res.ptr != end)
        return 0; // negative, fractional or exponent form
    return v;
}

const JsonValue *
JsonValue::find(std::string_view key) const
{
    if (kind_ != Kind::Object)
        return nullptr;
    for (const auto &[k, v] : members_)
        if (k == key)
            return &v;
    return nullptr;
}

namespace
{
const JsonValue kNullValue;
} // namespace

const JsonValue &
JsonValue::at(std::string_view key) const
{
    const JsonValue *v = find(key);
    return v ? *v : kNullValue;
}

const JsonValue &
JsonValue::at(std::size_t i) const
{
    if (kind_ != Kind::Array || i >= elems_.size())
        return kNullValue;
    return elems_[i];
}

/** Recursive-descent parser over the document text. */
class JsonParser
{
  public:
    explicit JsonParser(std::string_view text) : text_(text) {}

    Status
    parse(JsonValue &out)
    {
        const Status st = parseValue(out, 0);
        if (!st.ok())
            return st;
        skipWs();
        if (pos_ != text_.size())
            return fail("trailing characters after document");
        return Status();
    }

  private:
    static constexpr std::size_t kMaxDepth = 96;

    Status
    fail(const std::string &msg) const
    {
        std::size_t line = 1;
        for (std::size_t i = 0; i < pos_ && i < text_.size(); ++i)
            if (text_[i] == '\n')
                ++line;
        return Status::error("JSON parse error at line " +
                             std::to_string(line) + ": " + msg);
    }

    void
    skipWs()
    {
        while (pos_ < text_.size()) {
            const char c = text_[pos_];
            if (c != ' ' && c != '\t' && c != '\n' && c != '\r')
                break;
            ++pos_;
        }
    }

    bool
    consume(char c)
    {
        if (pos_ < text_.size() && text_[pos_] == c) {
            ++pos_;
            return true;
        }
        return false;
    }

    bool
    consumeWord(std::string_view word)
    {
        if (text_.substr(pos_, word.size()) != word)
            return false;
        pos_ += word.size();
        return true;
    }

    Status
    parseValue(JsonValue &out, std::size_t depth)
    {
        if (depth > kMaxDepth)
            return fail("nesting too deep");
        skipWs();
        if (pos_ >= text_.size())
            return fail("unexpected end of document");
        switch (text_[pos_]) {
          case '{':
            return parseObject(out, depth);
          case '[':
            return parseArray(out, depth);
          case '"':
            out.kind_ = JsonValue::Kind::String;
            return parseString(out.string_);
          case 't':
            if (!consumeWord("true"))
                return fail("invalid literal");
            out.kind_ = JsonValue::Kind::Bool;
            out.bool_ = true;
            return Status();
          case 'f':
            if (!consumeWord("false"))
                return fail("invalid literal");
            out.kind_ = JsonValue::Kind::Bool;
            out.bool_ = false;
            return Status();
          case 'n':
            if (!consumeWord("null"))
                return fail("invalid literal");
            out.kind_ = JsonValue::Kind::Null;
            return Status();
          default:
            return parseNumber(out);
        }
    }

    Status
    parseObject(JsonValue &out, std::size_t depth)
    {
        ++pos_; // '{'
        out.kind_ = JsonValue::Kind::Object;
        skipWs();
        if (consume('}'))
            return Status();
        while (true) {
            skipWs();
            if (pos_ >= text_.size() || text_[pos_] != '"')
                return fail("expected object key");
            std::string key;
            if (const Status st = parseString(key); !st.ok())
                return st;
            skipWs();
            if (!consume(':'))
                return fail("expected ':' after object key");
            JsonValue value;
            if (const Status st = parseValue(value, depth + 1);
                !st.ok())
                return st;
            out.members_.emplace_back(std::move(key),
                                      std::move(value));
            skipWs();
            if (consume(','))
                continue;
            if (consume('}'))
                return Status();
            return fail("expected ',' or '}' in object");
        }
    }

    Status
    parseArray(JsonValue &out, std::size_t depth)
    {
        ++pos_; // '['
        out.kind_ = JsonValue::Kind::Array;
        skipWs();
        if (consume(']'))
            return Status();
        while (true) {
            JsonValue value;
            if (const Status st = parseValue(value, depth + 1);
                !st.ok())
                return st;
            out.elems_.push_back(std::move(value));
            skipWs();
            if (consume(','))
                continue;
            if (consume(']'))
                return Status();
            return fail("expected ',' or ']' in array");
        }
    }

    Status
    parseString(std::string &out)
    {
        ++pos_; // opening quote
        out.clear();
        while (pos_ < text_.size()) {
            const char c = text_[pos_++];
            if (c == '"')
                return Status();
            if (static_cast<unsigned char>(c) < 0x20)
                return fail("unescaped control character in string");
            if (c != '\\') {
                out += c;
                continue;
            }
            if (pos_ >= text_.size())
                break;
            const char esc = text_[pos_++];
            switch (esc) {
              case '"':  out += '"';  break;
              case '\\': out += '\\'; break;
              case '/':  out += '/';  break;
              case 'b':  out += '\b'; break;
              case 'f':  out += '\f'; break;
              case 'n':  out += '\n'; break;
              case 'r':  out += '\r'; break;
              case 't':  out += '\t'; break;
              case 'u': {
                if (pos_ + 4 > text_.size())
                    return fail("truncated \\u escape");
                unsigned cp = 0;
                for (int i = 0; i < 4; ++i) {
                    const char h = text_[pos_++];
                    cp <<= 4;
                    if (h >= '0' && h <= '9')
                        cp |= static_cast<unsigned>(h - '0');
                    else if (h >= 'a' && h <= 'f')
                        cp |= static_cast<unsigned>(h - 'a' + 10);
                    else if (h >= 'A' && h <= 'F')
                        cp |= static_cast<unsigned>(h - 'A' + 10);
                    else
                        return fail("invalid \\u escape digit");
                }
                // Encode the BMP code point as UTF-8 (surrogate
                // pairs are not combined; the writer never emits
                // them).
                if (cp < 0x80) {
                    out += static_cast<char>(cp);
                } else if (cp < 0x800) {
                    out += static_cast<char>(0xC0 | (cp >> 6));
                    out += static_cast<char>(0x80 | (cp & 0x3F));
                } else {
                    out += static_cast<char>(0xE0 | (cp >> 12));
                    out += static_cast<char>(0x80 |
                                             ((cp >> 6) & 0x3F));
                    out += static_cast<char>(0x80 | (cp & 0x3F));
                }
                break;
              }
              default:
                return fail("invalid escape sequence");
            }
        }
        return fail("unterminated string");
    }

    Status
    parseNumber(JsonValue &out)
    {
        const std::size_t start = pos_;
        if (consume('-')) {
        }
        // JSON forbids leading zeros: 0 must stand alone or start
        // "0." / "0e".
        if (pos_ + 1 < text_.size() && text_[pos_] == '0' &&
            std::isdigit(static_cast<unsigned char>(text_[pos_ + 1])))
            return fail("leading zero in number");
        while (pos_ < text_.size() &&
               (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
                text_[pos_] == '.' || text_[pos_] == 'e' ||
                text_[pos_] == 'E' || text_[pos_] == '+' ||
                text_[pos_] == '-'))
            ++pos_;
        if (pos_ == start)
            return fail("invalid value");
        const std::string_view raw = text_.substr(start, pos_ - start);
        double v = 0.0;
        const auto res =
            std::from_chars(raw.data(), raw.data() + raw.size(), v);
        if (res.ec != std::errc() ||
            res.ptr != raw.data() + raw.size())
            return fail("malformed number '" + std::string(raw) + "'");
        out.kind_ = JsonValue::Kind::Number;
        out.number_ = v;
        out.string_.assign(raw);
        return Status();
    }

    std::string_view text_;
    std::size_t pos_ = 0;
};

Status
parseJson(std::string_view text, JsonValue &out)
{
    out = JsonValue();
    return JsonParser(text).parse(out);
}

} // namespace prism
