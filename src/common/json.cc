#include "common/json.hh"

#include <charconv>
#include <cmath>

#include "common/prism_assert.hh"

namespace prism
{

void
JsonWriter::separate()
{
    if (after_key_) {
        after_key_ = false;
        return;
    }
    if (stack_.empty())
        return;
    if (!stack_.back().empty)
        os_ << ',';
    stack_.back().empty = false;
    os_ << '\n';
    indent();
}

void
JsonWriter::indent()
{
    for (std::size_t i = 0; i < stack_.size(); ++i)
        os_ << "  ";
}

void
JsonWriter::beginObject()
{
    separate();
    os_ << '{';
    stack_.push_back({false, true});
}

void
JsonWriter::endObject()
{
    panicIf(stack_.empty() || stack_.back().array,
            "JsonWriter::endObject: not in an object");
    const bool empty = stack_.back().empty;
    stack_.pop_back();
    if (!empty) {
        os_ << '\n';
        indent();
    }
    os_ << '}';
    if (stack_.empty())
        os_ << '\n';
}

void
JsonWriter::beginArray()
{
    separate();
    os_ << '[';
    stack_.push_back({true, true});
}

void
JsonWriter::endArray()
{
    panicIf(stack_.empty() || !stack_.back().array,
            "JsonWriter::endArray: not in an array");
    const bool empty = stack_.back().empty;
    stack_.pop_back();
    if (!empty) {
        os_ << '\n';
        indent();
    }
    os_ << ']';
}

namespace
{

void
writeEscaped(std::ostream &os, std::string_view s)
{
    os << '"';
    for (const char c : s) {
        switch (c) {
          case '"':
            os << "\\\"";
            break;
          case '\\':
            os << "\\\\";
            break;
          case '\n':
            os << "\\n";
            break;
          case '\t':
            os << "\\t";
            break;
          case '\r':
            os << "\\r";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned>(c));
                os << buf;
            } else {
                os << c;
            }
        }
    }
    os << '"';
}

} // namespace

void
JsonWriter::key(std::string_view k)
{
    panicIf(stack_.empty() || stack_.back().array,
            "JsonWriter::key: not in an object");
    separate();
    writeEscaped(os_, k);
    os_ << ": ";
    after_key_ = true;
}

void
JsonWriter::value(std::string_view v)
{
    separate();
    writeEscaped(os_, v);
}

void
JsonWriter::value(bool v)
{
    separate();
    os_ << (v ? "true" : "false");
}

std::string
JsonWriter::formatDouble(double v)
{
    // JSON has no NaN/Inf; they indicate a degenerate run and are
    // serialised as null so the file stays parseable.
    if (!std::isfinite(v))
        return "null";
    char buf[64];
    const auto res = std::to_chars(buf, buf + sizeof(buf), v);
    return std::string(buf, res.ptr);
}

void
JsonWriter::value(double v)
{
    separate();
    os_ << formatDouble(v);
}

void
JsonWriter::value(std::uint64_t v)
{
    separate();
    os_ << v;
}

void
JsonWriter::value(std::int64_t v)
{
    separate();
    os_ << v;
}

void
JsonWriter::kv(std::string_view k, std::span<const double> vs)
{
    key(k);
    beginArray();
    for (const double v : vs)
        value(v);
    endArray();
}

void
JsonWriter::kv(std::string_view k, std::span<const std::uint64_t> vs)
{
    key(k);
    beginArray();
    for (const std::uint64_t v : vs)
        value(v);
    endArray();
}

void
JsonWriter::kv(std::string_view k, std::span<const std::string> vs)
{
    key(k);
    beginArray();
    for (const std::string &v : vs)
        value(v);
    endArray();
}

} // namespace prism
