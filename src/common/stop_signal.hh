/**
 * @file
 * Shared SIGINT/SIGTERM stop flag for the long-running drivers.
 *
 * Both prism_bench and prism_serve want the same contract: a signal
 * does not kill the process mid-write, it raises a cooperative stop
 * flag that the run loop polls, so the driver can still flush its
 * final artifacts (checkpoint, stats document, metrics snapshot)
 * before exiting with the conventional 128+SIGINT = 130 status.
 *
 * The handler only stores into a process-wide std::atomic<bool>
 * (async-signal-safe); everything else happens on the normal paths.
 */

#ifndef PRISM_COMMON_STOP_SIGNAL_HH
#define PRISM_COMMON_STOP_SIGNAL_HH

#include <atomic>

namespace prism
{

/** The process-wide cooperative stop flag (false until a signal). */
std::atomic<bool> &stopRequested();

/** Route SIGINT and SIGTERM to set stopRequested(). */
void installStopHandlers();

/** Conventional exit status for a signal-interrupted run. */
inline constexpr int stopExitCode = 130;

} // namespace prism

#endif // PRISM_COMMON_STOP_SIGNAL_HH
