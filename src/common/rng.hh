/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * Every stochastic component of the library (workload generators, the
 * PriSM core-selection step, DIP's bimodal insertion, …) draws from an
 * explicitly seeded Rng so that simulations are reproducible bit for
 * bit across runs and platforms. The generator is xoshiro256**,
 * which is small, fast and of high statistical quality.
 */

#ifndef PRISM_COMMON_RNG_HH
#define PRISM_COMMON_RNG_HH

#include <cstdint>
#include <string_view>

#include "common/prism_assert.hh"

namespace prism
{

/**
 * xoshiro256** pseudo-random generator with convenience draws.
 *
 * Seeding uses splitmix64 on the user seed so that nearby seeds give
 * uncorrelated streams.
 */
class Rng
{
  public:
    /** Construct from a 64-bit seed (0 is a valid seed). */
    explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL)
    {
        reseed(seed);
    }

    /** Re-initialise the state from @p seed. */
    void
    reseed(std::uint64_t seed)
    {
        std::uint64_t x = seed;
        for (auto &word : state_)
            word = splitmix64(x);
    }

    /** Next raw 64-bit draw. */
    std::uint64_t
    next()
    {
        const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
        const std::uint64_t t = state_[1] << 17;

        state_[2] ^= state_[0];
        state_[3] ^= state_[1];
        state_[1] ^= state_[2];
        state_[0] ^= state_[3];
        state_[2] ^= t;
        state_[3] = rotl(state_[3], 45);

        return result;
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return (next() >> 11) * 0x1.0p-53;
    }

    /** Uniform integer in [0, bound). @p bound must be non-zero. */
    std::uint64_t
    below(std::uint64_t bound)
    {
        panicIf(bound == 0, "Rng::below(0)");
        // Lemire's nearly-divisionless bounded draw.
        const unsigned __int128 m =
            static_cast<unsigned __int128>(next()) * bound;
        return static_cast<std::uint64_t>(m >> 64);
    }

    /** Uniform integer in the inclusive range [lo, hi]. */
    std::uint64_t
    between(std::uint64_t lo, std::uint64_t hi)
    {
        panicIf(lo > hi, "Rng::between: lo > hi");
        return lo + below(hi - lo + 1);
    }

    /** Bernoulli draw with success probability @p p. */
    bool
    chance(double p)
    {
        return uniform() < p;
    }

    /** Derive an independent child stream (for per-core generators). */
    Rng
    split()
    {
        return Rng(next() ^ 0xA5A5A5A55A5A5A5AULL);
    }

    /** The splitmix64 finaliser: a strong, stateless 64-bit mixer. */
    static std::uint64_t
    mix64(std::uint64_t z)
    {
        z += 0x9E3779B97F4A7C15ULL;
        z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
        z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
        return z ^ (z >> 31);
    }

  private:
    static std::uint64_t
    splitmix64(std::uint64_t &x)
    {
        x += 0x9E3779B97F4A7C15ULL;
        return mix64(x - 0x9E3779B97F4A7C15ULL);
    }

    static std::uint64_t
    rotl(std::uint64_t v, int k)
    {
        return (v << k) | (v >> (64 - k));
    }

    std::uint64_t state_[4];
};

/**
 * Derive an independent seed from @p base and an integer @p key.
 *
 * Used by the sweep engine to give every (scheme, workload, seed
 * index, config) job its own deterministic RNG stream: the result
 * depends only on the inputs, never on thread ids or execution
 * order, so a sweep is bit-reproducible at any thread count.
 */
inline std::uint64_t
deriveSeed(std::uint64_t base, std::uint64_t key)
{
    return Rng::mix64(Rng::mix64(base ^ 0x6A09E667F3BCC909ULL) ^
                      Rng::mix64(key));
}

/** Derive an independent seed from @p base and a string @p key. */
inline std::uint64_t
deriveSeed(std::uint64_t base, std::string_view key)
{
    // FNV-1a over the key bytes, then splitmix finalisation rounds
    // against the base so nearby keys give uncorrelated streams.
    std::uint64_t h = 0xCBF29CE484222325ULL;
    for (const char ch : key) {
        h ^= static_cast<unsigned char>(ch);
        h *= 0x100000001B3ULL;
    }
    return deriveSeed(base, h);
}

} // namespace prism

#endif // PRISM_COMMON_RNG_HH
