/**
 * @file
 * Cooperative cancellation for long-running simulations.
 *
 * A CancelToken combines an optional wall-clock deadline with an
 * optional external stop flag (e.g. prism_bench's SIGINT handler).
 * Cancellation is cooperative: the simulation loop polls cancelled()
 * every few thousand steps and unwinds by throwing CancelledError,
 * which the job supervisor classifies as a timeout (deadline) or a
 * shutdown (stop flag). Cancellation never tears a thread down
 * mid-step, so no simulator state is ever observed half-written —
 * a cancelled attempt is simply discarded and, on retry, replayed
 * from scratch with identical seeds.
 */

#ifndef PRISM_COMMON_CANCEL_HH
#define PRISM_COMMON_CANCEL_HH

#include <atomic>
#include <chrono>
#include <stdexcept>
#include <string>

namespace prism
{

/** Thrown by cancellation poll points to unwind a cancelled run. */
class CancelledError : public std::runtime_error
{
  public:
    CancelledError(bool by_deadline, const std::string &what)
        : std::runtime_error(what), by_deadline_(by_deadline)
    {
    }

    /** true: the deadline expired; false: an external stop request. */
    bool byDeadline() const { return by_deadline_; }

  private:
    bool by_deadline_;
};

/** Deadline + external-stop view polled by cancellation points. */
class CancelToken
{
  public:
    CancelToken() = default;

    /** Arm a deadline @p seconds from now (<= 0 disarms). */
    void
    setDeadline(double seconds)
    {
        if (seconds > 0.0) {
            deadline_ = std::chrono::steady_clock::now() +
                        std::chrono::duration_cast<
                            std::chrono::steady_clock::duration>(
                            std::chrono::duration<double>(seconds));
            has_deadline_ = true;
        } else {
            has_deadline_ = false;
        }
    }

    /** Observe @p stop (non-owning; null detaches) as a stop source. */
    void linkStop(const std::atomic<bool> *stop) { stop_ = stop; }

    bool
    stopRequested() const
    {
        return stop_ && stop_->load(std::memory_order_relaxed);
    }

    bool
    deadlineExceeded() const
    {
        return has_deadline_ &&
               std::chrono::steady_clock::now() >= deadline_;
    }

    bool
    cancelled() const
    {
        return stopRequested() || deadlineExceeded();
    }

    /**
     * Throw CancelledError when cancelled; the simulation loop's poll
     * point. The stop flag wins the tie so a Ctrl-C never reports as
     * a spurious per-job timeout.
     */
    void
    poll() const
    {
        if (stopRequested())
            throw CancelledError(false, "run cancelled: stop requested");
        if (deadlineExceeded())
            throw CancelledError(true,
                                 "run cancelled: deadline exceeded");
    }

  private:
    const std::atomic<bool> *stop_ = nullptr;
    bool has_deadline_ = false;
    std::chrono::steady_clock::time_point deadline_{};
};

} // namespace prism

#endif // PRISM_COMMON_CANCEL_HH
