/**
 * @file
 * Minimal deterministic JSON emitter.
 *
 * The bench trajectory (`BENCH_*.json`) and the sweep engine's
 * machine-readable output are written through this class. Output is
 * byte-deterministic for identical data: keys appear in call order,
 * indentation is fixed, and doubles use the shortest round-trip
 * representation (std::to_chars), so bit-identical results serialise
 * to bit-identical files — the property the determinism test suite
 * asserts across thread counts.
 */

#ifndef PRISM_COMMON_JSON_HH
#define PRISM_COMMON_JSON_HH

#include <cstdint>
#include <ostream>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace prism
{

/** Streaming writer for pretty-printed, deterministic JSON. */
class JsonWriter
{
  public:
    explicit JsonWriter(std::ostream &os) : os_(os) {}

    void beginObject();
    void endObject();
    void beginArray();
    void endArray();

    /** Emit an object key; must be followed by a value/container. */
    void key(std::string_view k);

    void value(std::string_view v);
    void value(const char *v) { value(std::string_view(v)); }
    void value(bool v);
    void value(double v);
    void value(std::uint64_t v);
    void value(std::int64_t v);
    void value(unsigned v) { value(static_cast<std::uint64_t>(v)); }
    void value(int v) { value(static_cast<std::int64_t>(v)); }

    /** key + scalar value in one call. */
    template <typename T>
        requires requires(JsonWriter &w, const T &v) { w.value(v); }
    void
    kv(std::string_view k, const T &v)
    {
        key(k);
        value(v);
    }

    /** key + array of doubles. */
    void kv(std::string_view k, std::span<const double> vs);
    /** key + array of unsigned integers. */
    void kv(std::string_view k, std::span<const std::uint64_t> vs);
    /** key + array of strings. */
    void kv(std::string_view k, std::span<const std::string> vs);

    /** Format a double exactly as value(double) would. */
    static std::string formatDouble(double v);

  private:
    void separate();
    void indent();

    struct Level
    {
        bool array = false;
        bool empty = true;
    };

    std::ostream &os_;
    std::vector<Level> stack_;
    bool after_key_ = false;
};

} // namespace prism

#endif // PRISM_COMMON_JSON_HH
