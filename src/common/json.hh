/**
 * @file
 * Minimal deterministic JSON emitter and strict JSON parser.
 *
 * The bench trajectory (`BENCH_*.json`) and the sweep engine's
 * machine-readable output are written through JsonWriter. Output is
 * byte-deterministic for identical data: keys appear in call order,
 * indentation is fixed, and doubles use the shortest round-trip
 * representation (std::to_chars), so bit-identical results serialise
 * to bit-identical files — the property the determinism test suite
 * asserts across thread counts.
 *
 * parseJson()/JsonValue close the loop for consumers: the analysis
 * subsystem reads `prism-stats-v1`, `prism-trace-v1` and
 * `prism-bench-v1` documents back through it. Numbers keep their raw
 * text beside the double so 64-bit integers (seeds, counters) survive
 * a round trip without precision loss.
 */

#ifndef PRISM_COMMON_JSON_HH
#define PRISM_COMMON_JSON_HH

#include <cstdint>
#include <ostream>
#include <span>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/status.hh"

namespace prism
{

/** Streaming writer for pretty-printed, deterministic JSON. */
class JsonWriter
{
  public:
    explicit JsonWriter(std::ostream &os) : os_(os) {}

    void beginObject();
    void endObject();
    void beginArray();
    void endArray();

    /** Emit an object key; must be followed by a value/container. */
    void key(std::string_view k);

    void value(std::string_view v);
    void value(const char *v) { value(std::string_view(v)); }
    void value(bool v);
    void value(double v);
    void value(std::uint64_t v);
    void value(std::int64_t v);
    void value(unsigned v) { value(static_cast<std::uint64_t>(v)); }
    void value(int v) { value(static_cast<std::int64_t>(v)); }

    /** key + scalar value in one call. */
    template <typename T>
        requires requires(JsonWriter &w, const T &v) { w.value(v); }
    void
    kv(std::string_view k, const T &v)
    {
        key(k);
        value(v);
    }

    /** key + array of doubles. */
    void kv(std::string_view k, std::span<const double> vs);
    /** key + array of unsigned integers. */
    void kv(std::string_view k, std::span<const std::uint64_t> vs);
    /** key + array of strings. */
    void kv(std::string_view k, std::span<const std::string> vs);

    /** Format a double exactly as value(double) would. */
    static std::string formatDouble(double v);

  private:
    void separate();
    void indent();

    struct Level
    {
        bool array = false;
        bool empty = true;
    };

    std::ostream &os_;
    std::vector<Level> stack_;
    bool after_key_ = false;
};

/**
 * One parsed JSON value: a tree of objects, arrays and scalars.
 *
 * Accessors are total: asking an object for a missing key or a scalar
 * of the wrong kind returns null/zero/empty instead of throwing, so
 * schema-reading code can chain lookups and validate once at the end.
 */
class JsonValue
{
  public:
    enum class Kind { Null, Bool, Number, String, Array, Object };

    Kind kind() const { return kind_; }
    bool isNull() const { return kind_ == Kind::Null; }
    bool isObject() const { return kind_ == Kind::Object; }
    bool isArray() const { return kind_ == Kind::Array; }
    bool isNumber() const { return kind_ == Kind::Number; }
    bool isString() const { return kind_ == Kind::String; }

    /** Scalar reads; 0/false/"" when the kind does not match. */
    bool asBool() const { return kind_ == Kind::Bool && bool_; }
    double asDouble() const
    {
        return kind_ == Kind::Number ? number_ : 0.0;
    }
    /** Exact unsigned read from the raw text; 0 on mismatch. */
    std::uint64_t asU64() const;
    const std::string &asString() const { return string_; }
    /** The number's raw source text (exact round trip). */
    const std::string &rawNumber() const { return string_; }

    // --- containers ------------------------------------------------
    /** Array elements (empty for non-arrays). */
    const std::vector<JsonValue> &elements() const { return elems_; }
    /** Object members in document order (empty for non-objects). */
    const std::vector<std::pair<std::string, JsonValue>> &
    members() const
    {
        return members_;
    }
    std::size_t size() const
    {
        return kind_ == Kind::Object ? members_.size() : elems_.size();
    }

    /** Member @p key of an object; null when absent / not an object. */
    const JsonValue *find(std::string_view key) const;

    /**
     * Nested lookup: find("a")->find("b") without the null checks.
     * Returns a static Null value when any step is missing, so
     * `doc.at("system").at("llc").at("intervals").asU64()` is safe.
     */
    const JsonValue &at(std::string_view key) const;
    /** Array element @p i, or the static Null value out of range. */
    const JsonValue &at(std::size_t i) const;

  private:
    friend class JsonParser;

    Kind kind_ = Kind::Null;
    bool bool_ = false;
    double number_ = 0.0;
    std::string string_; ///< string value, or a number's raw text
    std::vector<JsonValue> elems_;
    std::vector<std::pair<std::string, JsonValue>> members_;
};

/**
 * Parse @p text as one JSON document into @p out.
 *
 * Strict: trailing garbage, unterminated containers, bad escapes and
 * malformed numbers are errors carrying the offending line number.
 * Accepts everything JsonWriter emits (including bare `null` for
 * non-finite doubles).
 */
Status parseJson(std::string_view text, JsonValue &out);

} // namespace prism

#endif // PRISM_COMMON_JSON_HH
