/**
 * @file
 * A recoverable error channel beside panic()/fatal().
 *
 * panic() and fatal() end the process; they are the right tool for
 * programming errors and impossible configurations detected at
 * start-up. Runtime robustness machinery (the invariant auditor, the
 * fault-spec parser, configuration validation) instead reports
 * problems through Status values so the caller can recover, degrade
 * gracefully or surface an actionable message.
 */

#ifndef PRISM_COMMON_STATUS_HH
#define PRISM_COMMON_STATUS_HH

#include <string>
#include <utility>

namespace prism
{

/** Success, or an error carrying a human-readable message. */
class Status
{
  public:
    /** Default construction is success. */
    Status() = default;

    /** Build an error status with @p msg (must be non-empty). */
    static Status
    error(std::string msg)
    {
        Status s;
        s.msg_ = msg.empty() ? std::string("unknown error")
                             : std::move(msg);
        return s;
    }

    bool ok() const { return msg_.empty(); }
    explicit operator bool() const { return ok(); }

    /** Empty string when ok(). */
    const std::string &message() const { return msg_; }

  private:
    std::string msg_;
};

} // namespace prism

#endif // PRISM_COMMON_STATUS_HH
