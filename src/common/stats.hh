/**
 * @file
 * Small statistics helpers: running mean/stddev and geometric mean.
 */

#ifndef PRISM_COMMON_STATS_HH
#define PRISM_COMMON_STATS_HH

#include <cmath>
#include <cstdint>
#include <span>

#include "common/prism_assert.hh"

namespace prism
{

/**
 * Online mean / standard deviation via Welford's algorithm.
 *
 * Used e.g. to track the mean and standard deviation of a core's
 * eviction probability across intervals (Figure 11).
 */
class RunningStat
{
  public:
    void
    add(double x)
    {
        ++n_;
        const double delta = x - mean_;
        mean_ += delta / static_cast<double>(n_);
        m2_ += delta * (x - mean_);
    }

    std::uint64_t count() const { return n_; }

    double mean() const { return n_ ? mean_ : 0.0; }

    /** Population variance (0 for fewer than two samples). */
    double
    variance() const
    {
        return n_ > 1 ? m2_ / static_cast<double>(n_) : 0.0;
    }

    double stddev() const { return std::sqrt(variance()); }

    void
    reset()
    {
        n_ = 0;
        mean_ = 0.0;
        m2_ = 0.0;
    }

  private:
    std::uint64_t n_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
};

/** Geometric mean of positive values; returns 0 for an empty span. */
inline double
geomean(std::span<const double> values)
{
    if (values.empty())
        return 0.0;
    double log_sum = 0.0;
    for (double v : values) {
        panicIf(v <= 0.0, "geomean: non-positive value");
        log_sum += std::log(v);
    }
    return std::exp(log_sum / static_cast<double>(values.size()));
}

/** Arithmetic mean; returns 0 for an empty span. */
inline double
mean(std::span<const double> values)
{
    if (values.empty())
        return 0.0;
    double sum = 0.0;
    for (double v : values)
        sum += v;
    return sum / static_cast<double>(values.size());
}

} // namespace prism

#endif // PRISM_COMMON_STATS_HH
