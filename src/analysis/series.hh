/**
 * @file
 * RunSeries: the diagnostics engine's normalised view of one run.
 *
 * The doctor consumes runs from four places — a live IntervalRecorder
 * (in-process, `prism_bench --doctor` / `prism_doctor --run`), a
 * `prism-stats-v1` document (counters only), a `prism-trace-v1`
 * Chrome trace (series + events reconstructed offline), and one job
 * of a `prism-bench-v1` sweep file (counters + performance). Each
 * source fills what it has and flags the rest absent, so the
 * analysis layer can emit explicit SKIP findings instead of
 * guessing.
 */

#ifndef PRISM_ANALYSIS_SERIES_HH
#define PRISM_ANALYSIS_SERIES_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/json.hh"
#include "common/status.hh"
#include "sim/runner.hh"
#include "telemetry/interval_recorder.hh"

namespace prism::analysis
{

/** Everything the doctor can know about one run. */
struct RunSeries
{
    std::string name;   ///< e.g. "Q7/PriSM-H" or the job id
    std::string scheme; ///< scheme name; "" when unknown
    std::uint32_t cores = 0;

    /** CachePlane backend that produced the run: "sim" (simulated
     *  cache), "store" (serving store), "way-mask" (PriSM-WM); ""
     *  when the input predates the plane field. */
    std::string plane;
    /** PriSM-WM mean way-quantisation error in ways (hasWayQuant). */
    double wayQuantError = 0.0;
    bool hasWayQuant = false;

    // --- per-interval series (parallel arrays, oldest first) -------
    bool hasSeries = false;
    bool prism = false; ///< target/evProb series are populated
    std::vector<std::uint64_t> interval;        ///< 1-based indices
    std::vector<std::vector<double>> occupancy; ///< [t][core] C_i
    std::vector<std::vector<double>> target;    ///< [t][core] T_i
    std::vector<std::vector<double>> evProb;    ///< [t][core] E_i

    // --- robustness / control-loop counters -------------------------
    bool hasCounters = false;
    std::uint64_t intervals = 0;
    std::uint64_t recomputes = 0;
    std::uint64_t degradedIntervals = 0;
    std::uint64_t droppedRecomputes = 0;
    std::uint64_t distributionRepairs = 0;
    std::uint64_t fallbackEntries = 0;
    std::uint64_t invariantViolations = 0;
    std::uint64_t ownershipRepairs = 0;
    std::uint64_t faultsInjected = 0;
    std::uint64_t clampedEq1Inputs = 0;
    std::uint64_t eq1Fallbacks = 0;

    // --- telemetry ring totals --------------------------------------
    std::uint64_t droppedSamples = 0;
    std::uint64_t droppedEvents = 0;

    // --- performance context (QoS / fairness attainment) ------------
    bool hasPerf = false;
    std::vector<double> ipc;
    std::vector<double> ipcStandalone;
    /** PriSM-Q IPC floor fraction; 0 = not a QoS run. */
    double qosTargetFrac = 0.0;

    // --- serving-mode data (prism-serve-v1) -------------------------
    /** This run is a prism_serve session over tenants, not a
     *  simulated cache over cores; "core" indices are tenant ids and
     *  the serve.* checks apply. */
    bool serve = false;
    std::vector<double> serveHitRatio; ///< per tenant, whole run
    std::vector<double> serveSloFloor; ///< hit-ratio SLO; 0 = none
    /** Per-interval per-tenant evictions, parallel to evProb rows. */
    std::vector<std::vector<double>> serveEvictions;
    /** Evictions redirected because the sampled tenant was empty. */
    std::uint64_t serveVictimless = 0;

    // --- live-window drift statistics (metrics snapshots / online) --
    /** The input carried sliding-window EWMA drift statistics. */
    bool hasDrift = false;
    /** Per-tenant relative EWMA drift: |x − ewma| / max(ewma, floor)
     *  of the latest interval's miss rate / fair slowdown. */
    std::vector<double> driftMissRate;
    std::vector<double> driftSlowdown;
};

/** Build the series view of a recorded run (samples + events). */
RunSeries seriesFromRecorder(const telemetry::IntervalRecorder &rec,
                             const std::string &name);

/**
 * Merge a RunResult's counters and performance data into @p s —
 * the in-process complement of seriesFromRecorder.
 */
void attachRunResult(RunSeries &s, const RunResult &r);

/**
 * Map a scheme name to its canonical CLI spelling. The stats dump
 * carries the scheme object's internal name ("PriSM-HitMax",
 * "PriSM-QoS", "PriSM-Fair"); the doctor keys its scheme-specific
 * checks off the short names ("PriSM-H", "PriSM-Q", "PriSM-F").
 * Unknown names pass through unchanged.
 */
std::string canonicalSchemeName(const std::string &name);

/** Read one run from a parsed `prism-stats-v1` document. */
Status seriesFromStatsJson(const JsonValue &doc, RunSeries &out);

/**
 * Reconstruct one series per trace process from a parsed
 * `prism-trace-v1` document. Document-level drop totals are
 * attributed to the first job (they are summed over jobs at export).
 */
Status seriesFromTraceJson(const JsonValue &doc,
                           std::vector<RunSeries> &out);

/** Read one job object of a parsed `prism-bench-v1` document. */
Status seriesFromBenchJob(const JsonValue &job, RunSeries &out);

/**
 * Read one serving session from a parsed `prism-serve-v1` document
 * (tools/prism_serve). Tenants map onto the per-core series slots,
 * so the tracking/stability/invariant checks grade the tenant
 * control loop unchanged, and the serve-specific fields enable the
 * serve.* checks (SLO attainment, fair slowdown, victim match).
 */
Status seriesFromServeJson(const JsonValue &doc, RunSeries &out);

/**
 * Read one live snapshot from a parsed `prism-metrics-v1` document
 * (src/telemetry/exporter.hh). A serve-sourced snapshot maps onto
 * the same series shape seriesFromServeJson produces — tenants in
 * the per-core slots, serve.* checks enabled — but over the
 * snapshot's sliding window instead of the whole run, and with the
 * window's drift statistics enabling the drift.* checks. A
 * bench-sourced snapshot yields counters only.
 */
Status seriesFromMetricsJson(const JsonValue &doc, RunSeries &out);

/**
 * Sweep-execution health: the retry/timeout/quarantine manifest the
 * fault-tolerant exec layer produces (docs/RELIABILITY.md). Filled
 * either live (prism_bench --doctor, from the SweepOutcome) or from
 * the "exec" section of a prism-bench-v1 document.
 */
struct ExecSeries
{
    /** A supervision manifest was present at all. */
    bool supervised = false;
    std::uint64_t jobs = 0;
    std::uint64_t completed = 0;
    std::uint64_t recovered = 0;
    std::uint64_t quarantined = 0;
    std::uint64_t skipped = 0;
    std::uint64_t retries = 0;
    std::uint64_t timeouts = 0;
    /** Injected torn checkpoint flushes (chaos). */
    std::uint64_t tornWrites = 0;
    /** Corrupt / mismatched checkpoints discarded at resume. */
    std::uint64_t checkpointCorrupt = 0;
    /** Ids of quarantined or skipped jobs, spec order. */
    std::vector<std::string> failedIds;
};

/**
 * Read the exec manifest of a parsed `prism-bench-v1` document.
 * @return true when the document carries an "exec" section (clean
 * sweeps omit it; @p out is then left default-initialised).
 */
bool execSeriesFromBenchDoc(const JsonValue &doc, ExecSeries &out);

} // namespace prism::analysis

#endif // PRISM_ANALYSIS_SERIES_HH
