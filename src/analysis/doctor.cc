#include "analysis/doctor.hh"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstddef>
#include <ostream>

namespace prism::analysis
{

const char *
findingStatusName(FindingStatus status)
{
    switch (status) {
      case FindingStatus::Pass:
        return "PASS";
      case FindingStatus::Warn:
        return "WARN";
      case FindingStatus::Fail:
        return "FAIL";
      case FindingStatus::Skip:
        return "SKIP";
    }
    return "?";
}

std::size_t
Verdict::count(FindingStatus status) const
{
    std::size_t n = 0;
    for (const Finding &f : findings)
        if (f.status == status)
            ++n;
    return n;
}

namespace
{

/** Severity order for aggregation (Skip never dominates). */
int
severity(FindingStatus s)
{
    switch (s) {
      case FindingStatus::Skip:
      case FindingStatus::Pass:
        return 0;
      case FindingStatus::Warn:
        return 1;
      case FindingStatus::Fail:
        return 2;
    }
    return 0;
}

FindingStatus
worse(FindingStatus a, FindingStatus b)
{
    return severity(b) > severity(a) ? b : a;
}

std::string
fmt(double v)
{
    return JsonWriter::formatDouble(v);
}

/** max_i |C_i − T_i| at sample @p t. */
double
maxTrackingError(const RunSeries &s, std::size_t t)
{
    double err = 0.0;
    const std::size_t n = std::min(s.occupancy[t].size(),
                                   s.target[t].size());
    for (std::size_t c = 0; c < n; ++c)
        err = std::max(err,
                       std::abs(s.occupancy[t][c] - s.target[t][c]));
    return err;
}

/** Mean of maxTrackingError over samples [lo, hi). */
double
meanError(const RunSeries &s, std::size_t lo, std::size_t hi)
{
    if (hi <= lo)
        return 0.0;
    double sum = 0.0;
    for (std::size_t t = lo; t < hi; ++t)
        sum += maxTrackingError(s, t);
    return sum / static_cast<double>(hi - lo);
}

class Checker
{
  public:
    Checker(const RunSeries &s, const DoctorThresholds &t)
        : s_(s), t_(t)
    {
        v_.run = s.name;
        v_.backend = s.plane;
    }

    Verdict take();

  private:
    Finding &add(const std::string &check, FindingStatus status);
    Finding &addValue(const std::string &check, FindingStatus status,
                      double value, double threshold);
    void skip(const std::string &check, const std::string &why);

    void tracking();
    void stability();
    void invariants();
    void attainment();
    void serve();
    void drift();
    void analyzePlane();
    void robustness();
    void telemetry();

    /** Counter check: Pass at 0, @p level above 0. */
    void counter(const std::string &check, std::uint64_t n,
                 FindingStatus level, const std::string &what);

    const RunSeries &s_;
    const DoctorThresholds &t_;
    Verdict v_;
};

Finding &
Checker::add(const std::string &check, FindingStatus status)
{
    Finding f;
    f.check = check;
    f.status = status;
    v_.findings.push_back(std::move(f));
    return v_.findings.back();
}

Finding &
Checker::addValue(const std::string &check, FindingStatus status,
                  double value, double threshold)
{
    Finding &f = add(check, status);
    f.value = value;
    f.threshold = threshold;
    f.hasValue = true;
    return f;
}

void
Checker::skip(const std::string &check, const std::string &why)
{
    add(check, FindingStatus::Skip).detail = why;
}

void
Checker::tracking()
{
    if (!s_.hasSeries || !s_.prism || s_.occupancy.size() < 4) {
        const std::string why =
            !s_.hasSeries || !s_.prism
                ? "no occupancy/target series (counters-only input)"
                : "fewer than 4 recorded intervals";
        skip("tracking.converge_interval", why);
        skip("tracking.residual", why);
        skip("tracking.decay", why);
        return;
    }

    const std::size_t n = s_.occupancy.size();

    // First interval where the tracking error stays within bound.
    std::size_t converged = n;
    for (std::size_t t = 0; t < n; ++t) {
        if (maxTrackingError(s_, t) <= t_.convergedError) {
            converged = t;
            break;
        }
    }
    if (converged < n) {
        Finding &f = addValue(
            "tracking.converge_interval", FindingStatus::Pass,
            static_cast<double>(s_.interval[converged]),
            t_.convergedError);
        f.detail = "max|C-T| first within " + fmt(t_.convergedError) +
                   " at interval " +
                   std::to_string(s_.interval[converged]);
    } else {
        const FindingStatus st = n >= 8 ? FindingStatus::Fail
                                        : FindingStatus::Warn;
        Finding &f = addValue("tracking.converge_interval", st,
                              maxTrackingError(s_, n - 1),
                              t_.convergedError);
        f.detail = "never converged: final max|C-T| " +
                   fmt(maxTrackingError(s_, n - 1)) + " over " +
                   std::to_string(n) + " intervals";
    }

    // Steady-state residual: mean error over the last quarter.
    const std::size_t tail = std::max<std::size_t>(1, n / 4);
    const double residual = meanError(s_, n - tail, n);
    FindingStatus rst = FindingStatus::Pass;
    double bound = t_.residualWarn;
    if (residual > t_.residualFail) {
        rst = FindingStatus::Fail;
        bound = t_.residualFail;
    } else if (residual > t_.residualWarn) {
        rst = FindingStatus::Warn;
    }
    addValue("tracking.residual", rst, residual, bound).detail =
        "mean max|C-T| over last " + std::to_string(tail) +
        " intervals is " + fmt(residual);

    // Decay: the last quartile's error should sit below the first's.
    const std::size_t quart = std::max<std::size_t>(1, n / 4);
    const double early = meanError(s_, 0, quart);
    const double late = meanError(s_, n - quart, n);
    if (early <= t_.convergedError) {
        Finding &f = addValue("tracking.decay", FindingStatus::Pass,
                              0.0, t_.decayWarnRatio);
        f.detail = "already within tracking bound from the start";
    } else {
        const double ratio = late / early;
        const FindingStatus st = ratio >= t_.decayWarnRatio
                                     ? FindingStatus::Warn
                                     : FindingStatus::Pass;
        addValue("tracking.decay", st, ratio, t_.decayWarnRatio)
            .detail = "late/early error ratio " + fmt(ratio) +
                      " (early " + fmt(early) + ", late " + fmt(late) +
                      ")";
    }
}

void
Checker::stability()
{
    if (!s_.hasSeries || !s_.prism || s_.evProb.size() < 4) {
        const std::string why =
            !s_.hasSeries || !s_.prism
                ? "no eviction-probability series"
                : "fewer than 4 recorded intervals";
        skip("stability.osc_amplitude", why);
        skip("stability.sign_flips", why);
        skip("stability.entropy", why);
        return;
    }

    const std::size_t n = s_.evProb.size();
    const std::size_t lo = n / 2; // judge the settled half only
    const std::size_t cores = s_.evProb[lo].size();

    double amp_sum = 0.0;
    std::uint64_t flips = 0, steps = 0;
    for (std::size_t c = 0; c < cores; ++c) {
        double mn = 1.0, mx = 0.0;
        double prev_delta = 0.0;
        for (std::size_t t = lo; t < n; ++t) {
            const double e = c < s_.evProb[t].size()
                                 ? s_.evProb[t][c]
                                 : 0.0;
            mn = std::min(mn, e);
            mx = std::max(mx, e);
            if (t > lo) {
                const double prev = c < s_.evProb[t - 1].size()
                                        ? s_.evProb[t - 1][c]
                                        : 0.0;
                const double delta = e - prev;
                if (std::abs(delta) > t_.flipAmplitudeFloor) {
                    ++steps;
                    if (prev_delta != 0.0 &&
                        std::signbit(delta) !=
                            std::signbit(prev_delta))
                        ++flips;
                    prev_delta = delta;
                }
            }
        }
        amp_sum += mx - mn;
    }
    const double amplitude =
        cores ? amp_sum / static_cast<double>(cores) : 0.0;
    const FindingStatus ast = amplitude > t_.oscAmplitudeWarn
                                  ? FindingStatus::Warn
                                  : FindingStatus::Pass;
    addValue("stability.osc_amplitude", ast, amplitude,
             t_.oscAmplitudeWarn)
        .detail = "mean peak-to-peak E_i swing " + fmt(amplitude) +
                  " over the last " + std::to_string(n - lo) +
                  " intervals";

    const double flip_rate =
        steps ? static_cast<double>(flips) /
                    static_cast<double>(steps)
              : 0.0;
    const FindingStatus fst = flip_rate > t_.signFlipWarn
                                  ? FindingStatus::Warn
                                  : FindingStatus::Pass;
    addValue("stability.sign_flips", fst, flip_rate, t_.signFlipWarn)
        .detail = std::to_string(flips) + " direction changes in " +
                  std::to_string(steps) + " significant E_i steps";

    // Normalised entropy of the final distribution: 1 = uniform,
    // 0 = all eviction pressure on one core. Informational.
    double entropy = 0.0;
    if (cores > 1) {
        const std::vector<double> &last = s_.evProb[n - 1];
        double sum = 0.0;
        for (const double e : last)
            sum += e;
        if (sum > 0.0) {
            for (const double e : last) {
                const double p = e / sum;
                if (p > 0.0)
                    entropy -= p * std::log2(p);
            }
            entropy /= std::log2(static_cast<double>(cores));
        }
    }
    addValue("stability.entropy", FindingStatus::Pass, entropy, 0.0)
        .detail = "normalised entropy of the final E distribution";
}

void
Checker::invariants()
{
    if (!s_.hasSeries || !s_.prism) {
        const std::string why =
            "no eviction-probability series (counters-only input)";
        skip("invariants.sum_e", why);
        skip("invariants.sum_c", why);
    } else {
        double max_e_err = 0.0;
        for (const std::vector<double> &row : s_.evProb) {
            double sum = 0.0;
            for (const double e : row)
                sum += e;
            max_e_err = std::max(max_e_err, std::abs(sum - 1.0));
        }
        FindingStatus est = FindingStatus::Pass;
        double bound = t_.sumEWarn;
        if (max_e_err > t_.sumEFail) {
            est = FindingStatus::Fail;
            bound = t_.sumEFail;
        } else if (max_e_err > t_.sumEWarn) {
            est = FindingStatus::Warn;
        }
        addValue("invariants.sum_e", est, max_e_err, bound).detail =
            "max |sum(E_i) - 1| across " +
            std::to_string(s_.evProb.size()) + " intervals";

        double max_c_over = 0.0;
        for (const std::vector<double> &row : s_.occupancy) {
            double sum = 0.0;
            for (const double c : row)
                sum += c;
            max_c_over = std::max(max_c_over, sum - 1.0);
        }
        max_c_over = std::max(max_c_over, 0.0);
        const FindingStatus cst = max_c_over > t_.sumCOverflow
                                      ? FindingStatus::Fail
                                      : FindingStatus::Pass;
        addValue("invariants.sum_c", cst, max_c_over, t_.sumCOverflow)
            .detail = "max overflow of sum(C_i) above capacity";
    }

    if (!s_.hasCounters || s_.intervals == 0) {
        skip("invariants.renorm_rate", "no interval counters");
        return;
    }
    const double rate = static_cast<double>(s_.distributionRepairs) /
                        static_cast<double>(s_.intervals);
    const FindingStatus rst = rate > t_.renormRateWarn
                                  ? FindingStatus::Warn
                                  : FindingStatus::Pass;
    addValue("invariants.renorm_rate", rst, rate, t_.renormRateWarn)
        .detail = std::to_string(s_.distributionRepairs) +
                  " distribution repairs in " +
                  std::to_string(s_.intervals) + " intervals";
}

void
Checker::attainment()
{
    if (s_.scheme == "PriSM-Q" && s_.hasPerf &&
        s_.qosTargetFrac > 0.0 && !s_.ipc.empty() &&
        s_.ipcStandalone[0] > 0.0) {
        const double attained = s_.ipc[0] / s_.ipcStandalone[0];
        const double floor = s_.qosTargetFrac - t_.qosSlack;
        const FindingStatus st = attained < floor
                                     ? FindingStatus::Fail
                                     : FindingStatus::Pass;
        addValue("qos.attainment", st, attained, floor).detail =
            "core 0 reached " + fmt(attained) +
            " of stand-alone IPC (target " + fmt(s_.qosTargetFrac) +
            ")";
    } else {
        skip("qos.attainment",
             s_.scheme == "PriSM-Q"
                 ? "no performance data for the QoS check"
                 : "not a QoS (PriSM-Q) run");
    }

    if (s_.scheme == "PriSM-F" && s_.hasPerf &&
        s_.ipc.size() == s_.ipcStandalone.size() &&
        !s_.ipc.empty()) {
        double mn = 0.0, mx = 0.0;
        bool first = true;
        for (std::size_t c = 0; c < s_.ipc.size(); ++c) {
            if (s_.ipcStandalone[c] <= 0.0)
                continue;
            const double progress = s_.ipc[c] / s_.ipcStandalone[c];
            mn = first ? progress : std::min(mn, progress);
            mx = first ? progress : std::max(mx, progress);
            first = false;
        }
        const double balance = mx > 0.0 ? mn / mx : 0.0;
        const FindingStatus st = balance < t_.fairnessWarn
                                     ? FindingStatus::Warn
                                     : FindingStatus::Pass;
        addValue("fairness.attainment", st, balance, t_.fairnessWarn)
            .detail = "min/max normalised progress ratio " +
                      fmt(balance);
    } else {
        skip("fairness.attainment",
             s_.scheme == "PriSM-F"
                 ? "no performance data for the fairness check"
                 : "not a fairness (PriSM-F) run");
    }
}

/**
 * Serving-mode checks (prism-serve-v1 inputs). Emitted only when
 * the input is a serve session — simulator runs produce no serve.*
 * findings at all, not even SKIPs, so their doctor documents are
 * unchanged by the serving subsystem's existence.
 */
void
Checker::serve()
{
    if (!s_.serve)
        return;
    const std::size_t tenants = s_.serveHitRatio.size();

    // Per-tenant hit-ratio SLO attainment: the worst margin over
    // every tenant that declares a floor decides the finding.
    bool any_slo = false;
    double worst_margin = 0.0;
    std::size_t worst_tenant = 0;
    for (std::size_t t = 0; t < tenants &&
                            t < s_.serveSloFloor.size();
         ++t) {
        const double floor = s_.serveSloFloor[t];
        if (floor <= 0.0)
            continue;
        const double margin = s_.serveHitRatio[t] - floor;
        if (!any_slo || margin < worst_margin) {
            worst_margin = margin;
            worst_tenant = t;
        }
        any_slo = true;
    }
    if (!any_slo) {
        skip("serve.slo_attainment",
             "no tenant declares a hit-ratio SLO floor");
    } else {
        const FindingStatus st = worst_margin < -t_.serveSloSlack
                                     ? FindingStatus::Fail
                                     : FindingStatus::Pass;
        addValue("serve.slo_attainment", st, worst_margin,
                 -t_.serveSloSlack)
            .detail = "worst SLO margin " + fmt(worst_margin) +
                      " (tenant " + std::to_string(worst_tenant) +
                      " hit ratio " +
                      fmt(s_.serveHitRatio[worst_tenant]) +
                      " vs floor " +
                      fmt(s_.serveSloFloor[worst_tenant]) + ")";
    }

    // Fair slowdown: a tenant's slowdown under sharing is modelled
    // as 1 + missRatio * (penalty - 1); the max/min ratio across
    // tenants is the serving analogue of the paper's fairness
    // metric (1 = perfectly even service degradation).
    if (tenants < 2) {
        skip("serve.fair_slowdown",
             "fewer than two tenants to compare");
    } else {
        double mn = 0.0, mx = 0.0;
        bool first = true;
        for (const double hit_ratio : s_.serveHitRatio) {
            const double slowdown =
                1.0 + (1.0 - hit_ratio) *
                          (t_.serveMissPenalty - 1.0);
            mn = first ? slowdown : std::min(mn, slowdown);
            mx = first ? slowdown : std::max(mx, slowdown);
            first = false;
        }
        const double ratio = mn > 0.0 ? mx / mn : 0.0;
        const FindingStatus st = ratio > t_.fairSlowdownWarn
                                     ? FindingStatus::Warn
                                     : FindingStatus::Pass;
        addValue("serve.fair_slowdown", st, ratio,
                 t_.fairSlowdownWarn)
            .detail = "max/min tenant slowdown ratio " +
                      fmt(ratio) + " at modelled miss penalty " +
                      fmt(t_.serveMissPenalty) + "x";
    }

    // Victim match: realised per-tenant eviction counts should be
    // consistent with the Equation 1 distributions that steered
    // them. Pearson chi-square against the per-interval expectation
    // sum_k E_k[t] * evictions_k, critical value at alpha = 0.001
    // via the Wilson-Hilferty cube approximation.
    const std::size_t rows =
        std::min(s_.evProb.size(), s_.serveEvictions.size());
    std::vector<double> expected(tenants, 0.0);
    std::vector<double> observed(tenants, 0.0);
    double total_evictions = 0.0;
    for (std::size_t k = 0; k < rows; ++k) {
        double row_total = 0.0;
        for (std::size_t t = 0;
             t < tenants && t < s_.serveEvictions[k].size(); ++t) {
            observed[t] += s_.serveEvictions[k][t];
            row_total += s_.serveEvictions[k][t];
        }
        for (std::size_t t = 0;
             t < tenants && t < s_.evProb[k].size(); ++t)
            expected[t] += s_.evProb[k][t] * row_total;
        total_evictions += row_total;
    }
    if (rows == 0 ||
        total_evictions < 5.0 * static_cast<double>(tenants)) {
        skip("serve.victim_match",
             "too few recorded evictions for the chi-square test");
        return;
    }
    double chi2 = 0.0;
    std::size_t cells = 0;
    for (std::size_t t = 0; t < tenants; ++t) {
        if (expected[t] < 1e-9)
            continue;
        const double delta = observed[t] - expected[t];
        chi2 += delta * delta / expected[t];
        ++cells;
    }
    if (cells < 2) {
        skip("serve.victim_match",
             "eviction pressure concentrated on a single tenant");
        return;
    }
    const double df = static_cast<double>(cells - 1);
    constexpr double kZ = 3.090232; // standard-normal alpha=0.001
    const double term =
        1.0 - 2.0 / (9.0 * df) + kZ * std::sqrt(2.0 / (9.0 * df));
    const double critical = df * term * term * term;
    const FindingStatus st = chi2 > critical ? FindingStatus::Warn
                                             : FindingStatus::Pass;
    addValue("serve.victim_match", st, chi2, critical).detail =
        "chi-square " + fmt(chi2) + " vs critical " +
        fmt(critical) + " (df " + fmt(df) + ", " +
        fmt(total_evictions) + " evictions)";
}

/**
 * EWMA drift checks (live-window inputs). Like the serve.* family,
 * these are emitted only for serving-mode runs, so every existing
 * sim-side doctor document is unchanged; serve inputs without window
 * statistics (plain prism-serve-v1 documents) SKIP them explicitly.
 */
void
Checker::drift()
{
    if (!s_.serve)
        return;
    if (!s_.hasDrift) {
        const std::string why =
            "no sliding-window drift statistics in this input";
        skip("drift.miss_rate", why);
        skip("drift.fair_slowdown", why);
        return;
    }

    const auto worstDrift =
        [](const std::vector<double> &drift, std::size_t &tenant) {
            double worst = 0.0;
            tenant = 0;
            for (std::size_t t = 0; t < drift.size(); ++t)
                if (drift[t] > worst) {
                    worst = drift[t];
                    tenant = t;
                }
            return worst;
        };

    std::size_t worst_t = 0;
    const double miss_drift = worstDrift(s_.driftMissRate, worst_t);
    FindingStatus st = miss_drift > t_.driftWarnFrac
                           ? FindingStatus::Warn
                           : FindingStatus::Pass;
    addValue("drift.miss_rate", st, miss_drift, t_.driftWarnFrac)
        .detail = "max relative EWMA miss-rate drift " +
                  fmt(miss_drift) + " (tenant " +
                  std::to_string(worst_t) + ")";

    const double slow_drift = worstDrift(s_.driftSlowdown, worst_t);
    st = slow_drift > t_.driftWarnFrac ? FindingStatus::Warn
                                       : FindingStatus::Pass;
    addValue("drift.fair_slowdown", st, slow_drift,
             t_.driftWarnFrac)
        .detail = "max relative EWMA slowdown drift " +
                  fmt(slow_drift) + " (tenant " +
                  std::to_string(worst_t) + ")";
}

/**
 * Way-mask plane checks (PriSM-WM runs). Like the serve.* family,
 * these are emitted only when the run came from the way-mask
 * backend — sim and store runs produce no plane.* findings at all,
 * so their doctor documents are unchanged by the backend's
 * existence.
 */
void
Checker::analyzePlane()
{
    if (s_.plane != "way-mask")
        return;
    if (!s_.hasWayQuant) {
        skip("plane.way_quant_error",
             "no way-quantisation statistics in this input");
        return;
    }
    const FindingStatus st = s_.wayQuantError > t_.wayQuantWarn
                                 ? FindingStatus::Warn
                                 : FindingStatus::Pass;
    addValue("plane.way_quant_error", st, s_.wayQuantError,
             t_.wayQuantWarn)
        .detail = "mean |alloc_i - T_i*ways| of " +
                  fmt(s_.wayQuantError) +
                  " ways between the continuous targets and the "
                  "enforced way masks";
}

void
Checker::counter(const std::string &check, std::uint64_t n,
                 FindingStatus level, const std::string &what)
{
    const FindingStatus st = n ? level : FindingStatus::Pass;
    addValue(check, st, static_cast<double>(n), 0.0).detail =
        std::to_string(n) + " " + what;
}

void
Checker::robustness()
{
    if (!s_.hasCounters) {
        for (const char *check :
             {"robustness.fallbacks", "robustness.degraded",
              "robustness.dropped_recomputes",
              "robustness.ownership_repairs",
              "robustness.clamped_inputs",
              "robustness.invariant_violations"})
            skip(check, "no robustness counters in this input");
        return;
    }

    counter("robustness.fallbacks", s_.fallbackEntries,
            FindingStatus::Fail,
            "entries into the degraded fallback partitioner");

    if (s_.intervals == 0) {
        counter("robustness.degraded", s_.degradedIntervals,
                FindingStatus::Warn, "degraded intervals");
    } else {
        const double frac =
            static_cast<double>(s_.degradedIntervals) /
            static_cast<double>(s_.intervals);
        FindingStatus st = FindingStatus::Pass;
        double bound = t_.degradedWarnFrac;
        if (frac > t_.degradedFailFrac) {
            st = FindingStatus::Fail;
            bound = t_.degradedFailFrac;
        } else if (frac > t_.degradedWarnFrac) {
            st = FindingStatus::Warn;
        }
        addValue("robustness.degraded", st, frac, bound).detail =
            std::to_string(s_.degradedIntervals) + " of " +
            std::to_string(s_.intervals) + " intervals degraded";
    }

    counter("robustness.dropped_recomputes", s_.droppedRecomputes,
            FindingStatus::Warn, "recomputes dropped");
    counter("robustness.ownership_repairs", s_.ownershipRepairs,
            FindingStatus::Warn, "ownership repairs");
    counter("robustness.clamped_inputs", s_.clampedEq1Inputs,
            FindingStatus::Warn, "Equation 1 inputs clamped");
    counter("robustness.invariant_violations",
            s_.invariantViolations, FindingStatus::Fail,
            "invariant violations detected");
}

void
Checker::telemetry()
{
    counter("telemetry.drops", s_.droppedSamples + s_.droppedEvents,
            FindingStatus::Warn,
            "telemetry ring drops (samples + events)");
}

Verdict
Checker::take()
{
    tracking();
    stability();
    invariants();
    attainment();
    serve();
    drift();
    analyzePlane();
    robustness();
    telemetry();
    for (const Finding &f : v_.findings)
        v_.overall = worse(v_.overall, f.status);
    return std::move(v_);
}

} // namespace

Verdict
analyze(const RunSeries &s, const DoctorThresholds &t)
{
    return Checker(s, t).take();
}

Verdict
analyzeExec(const ExecSeries &s)
{
    Verdict v;
    v.run = "exec";

    const auto counter = [&v](const std::string &check,
                              std::uint64_t n, FindingStatus level,
                              const std::string &what) -> Finding & {
        Finding f;
        f.check = check;
        f.status = n ? level : FindingStatus::Pass;
        f.value = static_cast<double>(n);
        f.hasValue = true;
        f.detail = std::to_string(n) + " " + what;
        v.findings.push_back(std::move(f));
        return v.findings.back();
    };

    counter("exec.retries", s.retries, FindingStatus::Warn,
            "retried job attempts");
    counter("exec.timeouts", s.timeouts, FindingStatus::Warn,
            "attempts cancelled by the per-job deadline");

    Finding &quarantined =
        counter("exec.quarantined", s.quarantined,
                FindingStatus::Fail, "jobs quarantined");
    if (s.quarantined > 0 && !s.failedIds.empty()) {
        constexpr std::size_t kMaxIds = 4;
        std::string ids;
        const std::size_t n =
            std::min(kMaxIds, s.failedIds.size());
        for (std::size_t i = 0; i < n; ++i)
            ids += (i ? ", " : "") + s.failedIds[i];
        if (s.failedIds.size() > kMaxIds)
            ids += ", +" +
                   std::to_string(s.failedIds.size() - kMaxIds) +
                   " more";
        quarantined.detail += " (" + ids + ")";
    }

    counter("exec.skipped", s.skipped, FindingStatus::Warn,
            "jobs skipped by shutdown request");
    counter("exec.torn_writes", s.tornWrites, FindingStatus::Warn,
            "torn checkpoint flushes injected");
    counter("exec.checkpoint", s.checkpointCorrupt,
            FindingStatus::Fail,
            "corrupt checkpoints discarded at resume");

    for (const Finding &f : v.findings)
        v.overall = worse(v.overall, f.status);
    return v;
}

FindingStatus
worstOf(const std::vector<Verdict> &jobs)
{
    FindingStatus w = FindingStatus::Pass;
    for (const Verdict &v : jobs)
        w = worse(w, v.overall);
    return w;
}

Verdict
rollup(const std::vector<Verdict> &jobs)
{
    Verdict v;
    v.run = "sweep";
    v.overall = worstOf(jobs);
    for (const FindingStatus st :
         {FindingStatus::Pass, FindingStatus::Warn,
          FindingStatus::Fail}) {
        Finding f;
        f.check = std::string("sweep.jobs_") +
                  findingStatusName(st);
        // The roll-up counts jobs; its findings never escalate the
        // overall verdict beyond what the jobs already did.
        f.status = FindingStatus::Pass;
        std::size_t n = 0;
        for (const Verdict &j : jobs)
            if (j.overall == st)
                ++n;
        f.value = static_cast<double>(n);
        f.hasValue = true;
        f.detail = std::to_string(n) + " of " +
                   std::to_string(jobs.size()) + " jobs " +
                   findingStatusName(st);
        v.findings.push_back(std::move(f));
    }
    return v;
}

void
writeVerdictJson(JsonWriter &w, const Verdict &v)
{
    w.beginObject();
    w.kv("run", v.run);
    w.kv("backend", v.backend);
    w.kv("overall", findingStatusName(v.overall));
    w.key("findings");
    w.beginArray();
    for (const Finding &f : v.findings) {
        w.beginObject();
        w.kv("check", f.check);
        w.kv("status", findingStatusName(f.status));
        if (f.hasValue) {
            w.kv("value", f.value);
            w.kv("threshold", f.threshold);
        }
        w.kv("detail", f.detail);
        w.endObject();
    }
    w.endArray();
    w.endObject();
}

void
writeDoctorDocument(std::ostream &os, std::string_view source,
                    const std::vector<Verdict> &jobs,
                    const DoctorThresholds &t)
{
    JsonWriter w(os);
    w.beginObject();
    w.kv("schema", "prism-doctor-v1");
    w.kv("source", source);
    w.kv("verdict", findingStatusName(worstOf(jobs)));
    w.key("jobs");
    w.beginArray();
    for (const Verdict &v : jobs)
        writeVerdictJson(w, v);
    w.endArray();
    w.key("summary");
    w.beginObject();
    w.kv("jobs", static_cast<std::uint64_t>(jobs.size()));
    for (const FindingStatus st :
         {FindingStatus::Pass, FindingStatus::Warn,
          FindingStatus::Fail}) {
        std::uint64_t n = 0;
        for (const Verdict &v : jobs)
            if (v.overall == st)
                ++n;
        std::string key = findingStatusName(st);
        std::transform(key.begin(), key.end(), key.begin(),
                       [](unsigned char c) {
                           return static_cast<char>(
                               std::tolower(c));
                       });
        w.kv(key, n);
    }
    w.endObject();
    w.key("thresholds");
    w.beginObject();
    w.kv("converged_error", t.convergedError);
    w.kv("residual_warn", t.residualWarn);
    w.kv("residual_fail", t.residualFail);
    w.kv("decay_warn_ratio", t.decayWarnRatio);
    w.kv("osc_amplitude_warn", t.oscAmplitudeWarn);
    w.kv("sign_flip_warn", t.signFlipWarn);
    w.kv("flip_amplitude_floor", t.flipAmplitudeFloor);
    w.kv("sum_e_warn", t.sumEWarn);
    w.kv("sum_e_fail", t.sumEFail);
    w.kv("sum_c_overflow", t.sumCOverflow);
    w.kv("renorm_rate_warn", t.renormRateWarn);
    w.kv("degraded_warn_frac", t.degradedWarnFrac);
    w.kv("degraded_fail_frac", t.degradedFailFrac);
    w.kv("qos_slack", t.qosSlack);
    w.kv("fairness_warn", t.fairnessWarn);
    w.kv("serve_slo_slack", t.serveSloSlack);
    w.kv("serve_miss_penalty", t.serveMissPenalty);
    w.kv("fair_slowdown_warn", t.fairSlowdownWarn);
    w.kv("drift_warn_frac", t.driftWarnFrac);
    w.kv("way_quant_warn", t.wayQuantWarn);
    w.endObject();
    w.endObject();
    os << '\n';
}

void
printReport(std::ostream &os, const Verdict &v)
{
    os << "=== prism_doctor: " << v.run << " ===\n";
    for (const Finding &f : v.findings) {
        os << "  [" << findingStatusName(f.status) << "] " << f.check;
        if (f.hasValue) {
            os << " = " << JsonWriter::formatDouble(f.value);
            if (f.status != FindingStatus::Pass ||
                f.threshold != 0.0)
                os << " (bound "
                   << JsonWriter::formatDouble(f.threshold) << ")";
        }
        if (!f.detail.empty())
            os << " -- " << f.detail;
        os << '\n';
    }
    os << "  overall: " << findingStatusName(v.overall) << '\n';
}

} // namespace prism::analysis
