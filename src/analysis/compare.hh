/**
 * @file
 * Benchmark regression comparator: diff two `prism-bench-v1` files.
 *
 * The CI perf gate runs a fresh sweep and compares it metric-by-metric
 * against a committed golden (`tests/golden/BENCH_fixture.json`).
 * Numeric fields compare under a relative tolerance (default exact:
 * the sweep engine is byte-deterministic); per-metric overrides let a
 * gate accept small drift in timing-adjacent metrics while keeping
 * counters exact. Missing or extra jobs, scheme mismatches, and
 * out-of-tolerance metrics all surface as FAIL findings in a normal
 * doctor Verdict.
 */

#ifndef PRISM_ANALYSIS_COMPARE_HH
#define PRISM_ANALYSIS_COMPARE_HH

#include <map>
#include <string>

#include "analysis/doctor.hh"
#include "common/json.hh"

namespace prism::analysis
{

/** Tolerances for compareBenchDocs. */
struct CompareOptions
{
    /** Relative tolerance applied to every numeric metric. */
    double relTolerance = 0.0;
    /**
     * Per-metric overrides, keyed by metric name (e.g. "ipc"). A
     * key starting with '*' matches by suffix ("*_per_sec" covers
     * "alias_draws_per_sec" and "accesses_per_sec"); exact keys win
     * over wildcards.
     */
    std::map<std::string, double> metricTolerance;

    double toleranceFor(const std::string &metric) const;
};

/**
 * Compare candidate @p b against baseline @p a. Both must be parsed
 * `prism-bench-v1` documents. Jobs are matched by id.
 */
Verdict compareBenchDocs(const JsonValue &a, const JsonValue &b,
                         const CompareOptions &opts = {});

} // namespace prism::analysis

#endif // PRISM_ANALYSIS_COMPARE_HH
