#include "analysis/series.hh"

#include <algorithm>
#include <map>

namespace prism::analysis
{

namespace
{

/** Sum a counter over instant events of @p kind. */
std::uint64_t
countEvents(const telemetry::IntervalRecorder &rec,
            telemetry::EventKind kind)
{
    std::uint64_t n = 0;
    for (std::size_t i = 0; i < rec.eventCount(); ++i)
        if (rec.event(i).kind == kind)
            ++n;
    return n;
}

} // namespace

RunSeries
seriesFromRecorder(const telemetry::IntervalRecorder &rec,
                   const std::string &name)
{
    RunSeries s;
    s.name = name;
    s.hasSeries = rec.size() > 0;
    for (std::size_t i = 0; i < rec.size(); ++i) {
        const telemetry::IntervalSample &sample = rec.sample(i);
        s.interval.push_back(sample.interval);
        s.occupancy.push_back(sample.occupancy);
        if (!sample.target.empty()) {
            s.prism = true;
            s.target.push_back(sample.target);
            s.evProb.push_back(sample.evProb);
        }
        s.cores = std::max<std::uint32_t>(
            s.cores,
            static_cast<std::uint32_t>(sample.occupancy.size()));
    }
    s.droppedSamples = rec.droppedSamples();
    s.droppedEvents = rec.droppedEvents();

    // Event-derived counters; superseded by attachRunResult when a
    // RunResult is available (events can be ring-dropped).
    s.hasCounters = true;
    s.degradedIntervals =
        countEvents(rec, telemetry::EventKind::DegradedInterval);
    s.droppedRecomputes =
        countEvents(rec, telemetry::EventKind::DroppedRecompute);
    s.distributionRepairs =
        countEvents(rec, telemetry::EventKind::DistributionRepair);
    s.fallbackEntries =
        countEvents(rec, telemetry::EventKind::FallbackEntered);
    s.ownershipRepairs =
        countEvents(rec, telemetry::EventKind::OwnershipRepair);
    if (!s.interval.empty())
        s.intervals = s.interval.back();
    return s;
}

void
attachRunResult(RunSeries &s, const RunResult &r)
{
    s.scheme = r.scheme;
    s.cores = static_cast<std::uint32_t>(r.ipc.size());
    s.plane = r.plane.empty() ? "sim" : r.plane;
    if (!r.plane.empty()) {
        s.wayQuantError = r.wayQuantError;
        s.hasWayQuant = true;
    }
    s.hasCounters = true;
    s.intervals = r.intervals;
    s.recomputes = r.recomputes;
    s.degradedIntervals = r.degradedIntervals;
    s.droppedRecomputes = r.droppedRecomputes;
    s.fallbackEntries = r.fallbackEntries;
    s.invariantViolations = r.invariantViolations;
    s.ownershipRepairs = r.ownershipRepairs;
    s.faultsInjected = r.faultsInjected;
    s.clampedEq1Inputs = r.clampedEq1Inputs;
    s.hasPerf = !r.ipc.empty();
    s.ipc = r.ipc;
    s.ipcStandalone = r.ipcStandalone;
}

std::string
canonicalSchemeName(const std::string &name)
{
    if (name == "PriSM-HitMax")
        return "PriSM-H";
    if (name == "PriSM-QoS")
        return "PriSM-Q";
    if (name == "PriSM-Fair")
        return "PriSM-F";
    return name;
}

Status
seriesFromStatsJson(const JsonValue &doc, RunSeries &out)
{
    if (doc.at("schema").asString() != "prism-stats-v1")
        return Status::error(
            "not a prism-stats-v1 document (schema '" +
            doc.at("schema").asString() + "')");

    out = RunSeries();
    out.name = doc.at("workload").asString();
    out.scheme = canonicalSchemeName(doc.at("scheme").asString());
    out.plane = out.scheme == "PriSM-WM" ? "way-mask" : "sim";
    if (out.name.empty())
        out.name = "stats";
    else if (!out.scheme.empty())
        out.name += "/" + out.scheme;

    const JsonValue &system = doc.at("system");
    out.cores = static_cast<std::uint32_t>(
        system.at("cores").asU64());
    out.hasCounters = true;
    out.intervals = system.at("llc").at("intervals").asU64();
    out.invariantViolations =
        system.at("llc").at("invariant_violations").asU64();
    out.ownershipRepairs =
        system.at("llc").at("ownership_repairs").asU64();

    if (const JsonValue *prism = doc.find("prism")) {
        out.recomputes = prism->at("recomputes").asU64();
        out.degradedIntervals =
            prism->at("degraded_intervals").asU64();
        out.droppedRecomputes =
            prism->at("dropped_recomputes").asU64();
        out.clampedEq1Inputs =
            prism->at("clamped_eq1_inputs").asU64();
        out.eq1Fallbacks = prism->at("eq1_fallbacks").asU64();
        out.fallbackEntries = prism->at("fallback_entries").asU64();
        out.invariantViolations +=
            prism->at("invariant_violations").asU64();
        out.faultsInjected = prism->at("faults_injected").asU64();
        if (const JsonValue *err = prism->find("way_quant_error")) {
            out.wayQuantError = err->asDouble();
            out.hasWayQuant = true;
        }
    }
    if (const JsonValue *telemetry = doc.find("telemetry")) {
        out.droppedSamples =
            telemetry->at("dropped_samples").asU64();
        out.droppedEvents = telemetry->at("dropped_events").asU64();
    }
    return Status();
}

namespace
{

/** Per-interval row while reassembling a trace process. */
struct TraceRow
{
    std::vector<double> occupancy;
    std::vector<double> target;
    std::vector<double> evProb;
};

std::vector<double>
coreArgs(const JsonValue &args)
{
    std::vector<double> out(args.members().size(), 0.0);
    for (const auto &[key, value] : args.members()) {
        if (key.size() < 2 || key[0] != 'c' ||
            key.find_first_not_of("0123456789", 1) !=
                std::string::npos)
            continue;
        const std::size_t idx =
            static_cast<std::size_t>(std::stoul(key.substr(1)));
        if (idx >= out.size())
            out.resize(idx + 1, 0.0);
        out[idx] = value.asDouble();
    }
    return out;
}

} // namespace

Status
seriesFromTraceJson(const JsonValue &doc, std::vector<RunSeries> &out)
{
    const JsonValue &other = doc.at("otherData");
    if (other.at("schema").asString() != "prism-trace-v1")
        return Status::error(
            "not a prism-trace-v1 document (otherData.schema '" +
            other.at("schema").asString() + "')");

    const JsonValue &events = doc.at("traceEvents");
    if (!events.isArray())
        return Status::error("traceEvents missing or not an array");

    std::map<std::uint64_t, std::string> names;
    std::map<std::uint64_t, std::map<std::uint64_t, TraceRow>> rows;
    std::map<std::uint64_t, RunSeries> counters;

    for (const JsonValue &ev : events.elements()) {
        const std::uint64_t pid = ev.at("pid").asU64();
        const std::string &name = ev.at("name").asString();
        const std::string &ph = ev.at("ph").asString();
        if (ph == "M") {
            if (name == "process_name")
                names[pid] = ev.at("args").at("name").asString();
            continue;
        }
        if (ph == "C") {
            const std::uint64_t interval = ev.at("ts").asU64() / 1000;
            TraceRow &row = rows[pid][interval];
            if (name == "occupancy")
                row.occupancy = coreArgs(ev.at("args"));
            else if (name == "target")
                row.target = coreArgs(ev.at("args"));
            else if (name == "ev_prob")
                row.evProb = coreArgs(ev.at("args"));
            continue;
        }
        if (ph == "i") {
            RunSeries &c = counters[pid];
            if (name == "degraded_interval")
                ++c.degradedIntervals;
            else if (name == "dropped_recompute")
                ++c.droppedRecomputes;
            else if (name == "distribution_repair")
                ++c.distributionRepairs;
            else if (name == "fallback_entered")
                ++c.fallbackEntries;
            else if (name == "ownership_repair")
                ++c.ownershipRepairs;
        }
    }

    out.clear();
    for (const auto &[pid, by_interval] : rows) {
        RunSeries s = counters.count(pid) ? counters[pid]
                                          : RunSeries();
        const auto name_it = names.find(pid);
        s.name = name_it != names.end()
                     ? name_it->second
                     : "pid" + std::to_string(pid);
        // "workload/scheme" process names carry the scheme.
        if (const auto slash = s.name.rfind('/');
            slash != std::string::npos)
            s.scheme =
                canonicalSchemeName(s.name.substr(slash + 1));
        s.plane = s.scheme == "PriSM-WM" ? "way-mask" : "sim";
        s.hasSeries = true;
        s.hasCounters = true;
        for (const auto &[interval, row] : by_interval) {
            s.interval.push_back(interval);
            s.occupancy.push_back(row.occupancy);
            s.cores = std::max<std::uint32_t>(
                s.cores,
                static_cast<std::uint32_t>(row.occupancy.size()));
            if (!row.target.empty()) {
                s.prism = true;
                s.target.push_back(row.target);
                s.evProb.push_back(row.evProb);
            }
        }
        if (!s.interval.empty())
            s.intervals = s.interval.back();
        out.push_back(std::move(s));
    }
    if (out.empty())
        return Status::error("trace contains no counter samples");

    // Drop totals are summed over jobs at export time; pin them to
    // the first job so a truncated trace still raises a finding.
    out.front().droppedSamples = other.at("dropped_samples").asU64();
    out.front().droppedEvents = other.at("dropped_events").asU64();
    return Status();
}

namespace
{

std::vector<double>
doubleArray(const JsonValue &v)
{
    std::vector<double> out;
    for (const JsonValue &e : v.elements())
        out.push_back(e.asDouble());
    return out;
}

} // namespace

Status
seriesFromBenchJob(const JsonValue &job, RunSeries &out)
{
    const JsonValue &result = job.at("result");
    if (!result.isObject())
        return Status::error("bench job has no result object");

    out = RunSeries();
    out.name = job.at("id").asString();
    out.scheme = result.at("scheme").asString();
    out.cores = static_cast<std::uint32_t>(
        job.at("config").at("cores").asU64());
    if (const JsonValue *plane = result.find("plane")) {
        out.plane = plane->asString();
        if (const JsonValue *err = result.find("way_quant_error")) {
            out.wayQuantError = err->asDouble();
            out.hasWayQuant = true;
        }
    } else {
        out.plane = "sim";
    }

    out.hasCounters = true;
    out.intervals = result.at("intervals").asU64();
    out.recomputes = result.at("recomputes").asU64();
    out.degradedIntervals =
        result.at("degraded_intervals").asU64();
    out.droppedRecomputes =
        result.at("dropped_recomputes").asU64();
    out.fallbackEntries = result.at("fallback_entries").asU64();
    out.invariantViolations =
        result.at("invariant_violations").asU64();
    out.ownershipRepairs = result.at("ownership_repairs").asU64();
    out.faultsInjected = result.at("faults_injected").asU64();
    out.clampedEq1Inputs =
        result.at("clamped_eq1_inputs").asU64();

    out.ipc = doubleArray(result.at("ipc"));
    out.ipcStandalone = doubleArray(result.at("ipc_standalone"));
    out.hasPerf = !out.ipc.empty() &&
                  out.ipc.size() == out.ipcStandalone.size();
    if (const JsonValue *qos =
            job.at("config").find("qos_target_frac"))
        out.qosTargetFrac = qos->asDouble();
    return Status();
}

Status
seriesFromServeJson(const JsonValue &doc, RunSeries &out)
{
    if (doc.at("schema").asString() != "prism-serve-v1")
        return Status::error(
            "not a prism-serve-v1 document (schema '" +
            doc.at("schema").asString() + "')");

    out = RunSeries();
    out.serve = true;
    out.plane = "store";
    out.scheme =
        canonicalSchemeName("PriSM-" + doc.at("policy").asString());
    out.name = "serve/" + out.scheme;

    const JsonValue &totals = doc.at("totals");
    out.hasCounters = true;
    out.intervals = totals.at("intervals").asU64();
    out.recomputes = totals.at("recomputes").asU64();
    out.eq1Fallbacks = totals.at("eq1_fallbacks").asU64();
    out.clampedEq1Inputs = totals.at("clamped_eq1_inputs").asU64();
    out.serveVictimless =
        totals.at("victimless_evictions").asU64();

    for (const JsonValue &tenant : doc.at("tenants").elements()) {
        out.serveHitRatio.push_back(
            tenant.at("hit_ratio").asDouble());
        out.serveSloFloor.push_back(tenant.at("slo_hit").asDouble());
    }
    out.cores = static_cast<std::uint32_t>(
        out.serveHitRatio.size());

    const JsonValue &intervals = doc.at("intervals");
    for (const JsonValue &v : intervals.at("interval").elements())
        out.interval.push_back(v.asU64());
    const auto rows = [&intervals](const char *key) {
        std::vector<std::vector<double>> out_rows;
        for (const JsonValue &row :
             intervals.at(key).elements()) {
            std::vector<double> values;
            for (const JsonValue &v : row.elements())
                values.push_back(v.asDouble());
            out_rows.push_back(std::move(values));
        }
        return out_rows;
    };
    out.occupancy = rows("occupancy");
    out.target = rows("target");
    out.evProb = rows("ev_prob");
    out.serveEvictions = rows("evictions");
    out.hasSeries = !out.interval.empty();
    out.prism = !out.target.empty();

    if (const JsonValue *telemetry = doc.find("telemetry")) {
        out.droppedSamples =
            telemetry->at("dropped_samples").asU64();
        out.droppedEvents = telemetry->at("dropped_events").asU64();
    }
    return Status();
}

Status
seriesFromMetricsJson(const JsonValue &doc, RunSeries &out)
{
    if (doc.at("schema").asString() != "prism-metrics-v1")
        return Status::error(
            "not a prism-metrics-v1 document (schema '" +
            doc.at("schema").asString() + "')");

    out = RunSeries();
    const std::string source = doc.at("source").asString();

    out.hasCounters = true;
    out.intervals = doc.at("intervals").asU64();
    if (const JsonValue *totals = doc.find("totals")) {
        out.recomputes = totals->at("recomputes").asU64();
        out.eq1Fallbacks = totals->at("eq1_fallbacks").asU64();
        out.clampedEq1Inputs =
            totals->at("clamped_eq1_inputs").asU64();
        out.serveVictimless =
            totals->at("victimless_evictions").asU64();
    }
    if (const JsonValue *telemetry = doc.find("telemetry")) {
        out.droppedSamples =
            telemetry->at("dropped_samples").asU64();
        out.droppedEvents = telemetry->at("dropped_events").asU64();
    }

    if (source != "serve") {
        // Bench-sourced snapshot: sweep progress + registry only.
        out.name = "metrics/" + doc.at("run").asString();
        return Status();
    }

    // Serve-sourced snapshot: identical identity and series shape
    // to seriesFromServeJson, assembled from the snapshot's sliding
    // window, so the offline doctor reproduces the online verdict.
    out.serve = true;
    out.plane = "store";
    out.scheme =
        canonicalSchemeName("PriSM-" + doc.at("policy").asString());
    out.name = "serve/" + out.scheme;

    for (const JsonValue &tenant : doc.at("tenants").elements()) {
        out.serveHitRatio.push_back(
            tenant.at("hit_ratio").asDouble());
        out.serveSloFloor.push_back(tenant.at("slo_hit").asDouble());
        if (const JsonValue *window = tenant.find("window")) {
            out.hasDrift = true;
            out.driftMissRate.push_back(
                window->at("miss_rate_drift").asDouble());
            out.driftSlowdown.push_back(
                window->at("slowdown_drift").asDouble());
        }
    }
    out.cores = static_cast<std::uint32_t>(
        out.serveHitRatio.size());

    const JsonValue &window = doc.at("window");
    for (const JsonValue &v : window.at("interval").elements())
        out.interval.push_back(v.asU64());
    const auto rows = [&window](const char *key) {
        std::vector<std::vector<double>> out_rows;
        for (const JsonValue &row : window.at(key).elements()) {
            std::vector<double> values;
            for (const JsonValue &v : row.elements())
                values.push_back(v.asDouble());
            out_rows.push_back(std::move(values));
        }
        return out_rows;
    };
    out.occupancy = rows("occupancy");
    out.target = rows("target");
    out.evProb = rows("ev_prob");
    out.serveEvictions = rows("evictions");
    out.hasSeries = !out.interval.empty();
    out.prism = !out.target.empty();
    return Status();
}

bool
execSeriesFromBenchDoc(const JsonValue &doc, ExecSeries &out)
{
    const JsonValue *exec = doc.find("exec");
    if (!exec || !exec->isObject())
        return false;

    ExecSeries s;
    s.supervised = true;
    s.jobs = doc.at("jobs").elements().size();
    s.completed = exec->at("completed").asU64();
    s.recovered = exec->at("recovered").asU64();
    s.quarantined = exec->at("quarantined").asU64();
    s.skipped = exec->at("skipped").asU64();
    s.retries = exec->at("retries").asU64();
    s.timeouts = exec->at("timeouts").asU64();
    for (const JsonValue &job : doc.at("jobs").elements())
        if (job.at("error").isObject())
            s.failedIds.push_back(job.at("id").asString());
    out = std::move(s);
    return true;
}

} // namespace prism::analysis
