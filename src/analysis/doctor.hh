/**
 * @file
 * Control-loop diagnostics: per-run health verdicts over a RunSeries.
 *
 * PriSM's correctness is temporal — Equation 1 must drive occupancy
 * C_i towards the targets T_i, the eviction distribution E_i must
 * settle instead of oscillating, and the invariants Σ C_i ≤ 1 and
 * Σ E_i = 1 must hold every interval. analyze() turns a RunSeries
 * into explicit PASS/WARN/FAIL/SKIP findings for each of those
 * properties plus the robustness counters from the fault layer, and
 * the result serialises as the deterministic `prism-doctor-v1`
 * document (docs/OBSERVABILITY.md) — byte-identical for the same run
 * at any sweep thread count.
 */

#ifndef PRISM_ANALYSIS_DOCTOR_HH
#define PRISM_ANALYSIS_DOCTOR_HH

#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

#include "analysis/series.hh"
#include "common/json.hh"

namespace prism::analysis
{

/** Outcome of one check. */
enum class FindingStatus
{
    Pass,
    Warn,
    Fail,
    Skip, ///< the input lacks the data this check needs
};

const char *findingStatusName(FindingStatus status);

/** One check's result. */
struct Finding
{
    std::string check; ///< stable id, e.g. "tracking.residual"
    FindingStatus status = FindingStatus::Pass;
    double value = 0.0;     ///< measured quantity (when hasValue)
    double threshold = 0.0; ///< bound that decided the status
    bool hasValue = false;
    std::string detail; ///< one human-readable sentence
};

/** All findings for one run plus the aggregated verdict. */
struct Verdict
{
    std::string run;
    /** CachePlane backend that produced the run ("sim", "store",
     *  "way-mask"); "" for synthetic verdicts (exec, roll-up). */
    std::string backend;
    FindingStatus overall = FindingStatus::Pass;
    std::vector<Finding> findings;

    std::size_t count(FindingStatus status) const;
};

/**
 * Decision bounds for analyze(). Defaults are calibrated on the
 * paper's evaluation machine (docs/OBSERVABILITY.md lists them).
 */
struct DoctorThresholds
{
    /** max_i |C_i − T_i| at or below this counts as converged. */
    double convergedError = 0.10;
    /** Steady-state residual (mean of last quarter) bounds. */
    double residualWarn = 0.15;
    double residualFail = 0.30;
    /** Late/early error ratio at or above this is "not decaying". */
    double decayWarnRatio = 1.0;

    /** Mean peak-to-peak E_i swing over the last half. */
    double oscAmplitudeWarn = 0.30;
    /** ΔE_i sign-flip rate over the last half. */
    double signFlipWarn = 0.6;
    /** Steps smaller than this do not count as oscillation. */
    double flipAmplitudeFloor = 0.01;

    /** |Σ E_i − 1| bounds (per recorded interval). */
    double sumEWarn = 1e-6;
    double sumEFail = 1e-3;
    /** Σ C_i may exceed 1 by at most this. */
    double sumCOverflow = 1e-6;
    /** Distribution repairs per interval worth warning about. */
    double renormRateWarn = 0.1;

    /** Degraded-interval fraction bounds. */
    double degradedWarnFrac = 0.0; // any degraded interval warns
    double degradedFailFrac = 0.5;

    /** Slack under the QoS IPC floor before failing. */
    double qosSlack = 0.02;
    /** Fairness (min/max normalised progress) warning floor. */
    double fairnessWarn = 0.35;

    // --- serving-mode bounds (prism-serve-v1 inputs only) -----------
    /** Slack under a tenant's hit-ratio SLO floor before failing. */
    double serveSloSlack = 0.005;
    /** Modelled miss penalty (backend fetch / hit cost) used to turn
     *  per-tenant miss ratios into slowdowns. */
    double serveMissPenalty = 25.0;
    /** Max/min tenant slowdown ratio worth warning about. */
    double fairSlowdownWarn = 4.0;
    /** Relative EWMA drift (miss rate / fair slowdown) of the
     *  latest interval worth warning about — the online doctor's
     *  "workload shifted" signal (docs/OBSERVABILITY.md). */
    double driftWarnFrac = 0.5;

    // --- way-mask plane bounds (PriSM-WM runs only) -----------------
    /** Mean |alloc_i - T_i*ways| above this many ways warns: the
     *  way-mask backend is too coarse for the targets it is asked
     *  to enforce. */
    double wayQuantWarn = 1.0;
};

/** Run every applicable check on @p s. */
Verdict analyze(const RunSeries &s, const DoctorThresholds &t = {});

/**
 * Sweep-execution health checks over the supervision manifest
 * (docs/RELIABILITY.md): retries and deadline timeouts WARN,
 * quarantined jobs and corrupt checkpoints FAIL. The verdict's run
 * id is "exec"; callers append it to the per-job verdicts only when
 * the sweep was supervised and something noteworthy happened, so
 * clean runs keep emitting byte-identical doctor documents.
 */
Verdict analyzeExec(const ExecSeries &s);

/** Sweep roll-up: per-status job counts plus the worst overall. */
Verdict rollup(const std::vector<Verdict> &jobs);

/** Serialise one verdict as a JSON object (no surrounding doc). */
void writeVerdictJson(JsonWriter &w, const Verdict &v);

/**
 * Write the full `prism-doctor-v1` document: schema, @p source
 * ("run" | "stats" | "trace" | "bench" | "sweep" | "compare"), the
 * job verdicts, the roll-up and the thresholds used.
 */
void writeDoctorDocument(std::ostream &os, std::string_view source,
                         const std::vector<Verdict> &jobs,
                         const DoctorThresholds &t);

/** Human-readable health report for one verdict. */
void printReport(std::ostream &os, const Verdict &v);

/** Worst overall across @p jobs (Pass when empty). */
FindingStatus worstOf(const std::vector<Verdict> &jobs);

} // namespace prism::analysis

#endif // PRISM_ANALYSIS_DOCTOR_HH
