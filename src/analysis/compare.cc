#include "analysis/compare.hh"

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <vector>

namespace prism::analysis
{

double
CompareOptions::toleranceFor(const std::string &metric) const
{
    const auto it = metricTolerance.find(metric);
    if (it != metricTolerance.end())
        return it->second;
    // Wildcard entries ("*_per_sec") match by suffix, so one
    // override can cover every timing-family metric of a document.
    for (const auto &[key, tol] : metricTolerance) {
        if (key.size() < 2 || key.front() != '*')
            continue;
        const std::string_view suffix(key.data() + 1, key.size() - 1);
        if (metric.size() >= suffix.size() &&
            metric.compare(metric.size() - suffix.size(),
                           suffix.size(), suffix) == 0)
            return tol;
    }
    return relTolerance;
}

namespace
{

/** Per-job diff accumulator with bounded finding output. */
class Differ
{
  public:
    Differ(const CompareOptions &opts, Verdict &verdict)
        : opts_(opts), v_(verdict)
    {
    }

    void diff(const std::string &path, const std::string &metric,
              const JsonValue &a, const JsonValue &b);

    std::size_t compared() const { return compared_; }
    std::size_t mismatched() const { return mismatched_; }

  private:
    void mismatch(const std::string &path, const std::string &detail,
                  double value, double threshold, bool has_value);

    static constexpr std::size_t kMaxFindingsPerJob = 32;

    const CompareOptions &opts_;
    Verdict &v_;
    std::size_t compared_ = 0;
    std::size_t mismatched_ = 0;
};

void
Differ::mismatch(const std::string &path, const std::string &detail,
                 double value, double threshold, bool has_value)
{
    ++mismatched_;
    if (mismatched_ > kMaxFindingsPerJob)
        return; // summarised by compare.job below
    Finding f;
    f.check = "compare.metric";
    f.status = FindingStatus::Fail;
    f.detail = path + ": " + detail;
    f.value = value;
    f.threshold = threshold;
    f.hasValue = has_value;
    v_.findings.push_back(std::move(f));
}

void
Differ::diff(const std::string &path, const std::string &metric,
             const JsonValue &a, const JsonValue &b)
{
    if (a.kind() != b.kind()) {
        mismatch(path, "value kind changed", 0.0, 0.0, false);
        return;
    }
    switch (a.kind()) {
      case JsonValue::Kind::Object:
        for (const auto &[key, value] : a.members()) {
            const JsonValue *other = b.find(key);
            if (!other) {
                mismatch(path + "." + key, "missing in candidate",
                         0.0, 0.0, false);
                continue;
            }
            diff(path + "." + key, key, value, *other);
        }
        for (const auto &[key, value] : b.members())
            if (!a.find(key))
                mismatch(path + "." + key, "not in baseline", 0.0,
                         0.0, false);
        return;
      case JsonValue::Kind::Array: {
        if (a.size() != b.size()) {
            mismatch(path, "array length " +
                               std::to_string(a.size()) + " vs " +
                               std::to_string(b.size()),
                     0.0, 0.0, false);
            return;
        }
        for (std::size_t i = 0; i < a.size(); ++i)
            diff(path + "[" + std::to_string(i) + "]", metric,
                 a.elements()[i], b.elements()[i]);
        return;
      }
      case JsonValue::Kind::Number: {
        ++compared_;
        // Identical source text (covers exact u64 counters).
        if (a.rawNumber() == b.rawNumber())
            return;
        const double av = a.asDouble(), bv = b.asDouble();
        const double tol = opts_.toleranceFor(metric);
        const double scale =
            std::max({std::abs(av), std::abs(bv), 1e-300});
        const double rel = std::abs(av - bv) / scale;
        if (rel > tol)
            mismatch(path,
                     JsonWriter::formatDouble(av) + " -> " +
                         JsonWriter::formatDouble(bv) +
                         " (rel diff " +
                         JsonWriter::formatDouble(rel) + ")",
                     rel, tol, true);
        return;
      }
      case JsonValue::Kind::String:
        ++compared_;
        if (a.asString() != b.asString())
            mismatch(path,
                     "'" + a.asString() + "' -> '" + b.asString() +
                         "'",
                     0.0, 0.0, false);
        return;
      case JsonValue::Kind::Bool:
        ++compared_;
        if (a.asBool() != b.asBool())
            mismatch(path, "boolean changed", 0.0, 0.0, false);
        return;
      case JsonValue::Kind::Null:
        ++compared_;
        return;
    }
}

const JsonValue *
findJob(const JsonValue &doc, const std::string &id)
{
    for (const JsonValue &job : doc.at("jobs").elements())
        if (job.at("id").asString() == id)
            return &job;
    return nullptr;
}

} // namespace

Verdict
compareBenchDocs(const JsonValue &a, const JsonValue &b,
                 const CompareOptions &opts)
{
    Verdict v;
    v.run = "compare";

    for (const auto *doc : {&a, &b}) {
        if (doc->at("schema").asString() != "prism-bench-v1") {
            Finding f;
            f.check = "compare.schema";
            f.status = FindingStatus::Fail;
            f.detail = std::string(doc == &a ? "baseline"
                                             : "candidate") +
                       " is not a prism-bench-v1 document (schema '" +
                       doc->at("schema").asString() + "')";
            v.findings.push_back(std::move(f));
        }
    }
    if (!v.findings.empty()) {
        v.overall = FindingStatus::Fail;
        return v;
    }

    std::size_t matched = 0, total_compared = 0;
    for (const JsonValue &job : a.at("jobs").elements()) {
        const std::string id = job.at("id").asString();
        const JsonValue *other = findJob(b, id);
        if (!other) {
            Finding f;
            f.check = "compare.missing_job";
            f.status = FindingStatus::Fail;
            f.detail = "job '" + id + "' absent from candidate";
            v.findings.push_back(std::move(f));
            continue;
        }
        ++matched;
        Differ d(opts, v);
        d.diff(id, "", job.at("result"), other->at("result"));
        total_compared += d.compared();
        if (d.mismatched()) {
            Finding f;
            f.check = "compare.job";
            f.status = FindingStatus::Fail;
            f.value = static_cast<double>(d.mismatched());
            f.hasValue = true;
            f.detail = "job '" + id + "': " +
                       std::to_string(d.mismatched()) + " of " +
                       std::to_string(d.compared()) +
                       " metrics out of tolerance";
            v.findings.push_back(std::move(f));
        }
    }
    for (const JsonValue &job : b.at("jobs").elements()) {
        const std::string id = job.at("id").asString();
        if (!findJob(a, id)) {
            Finding f;
            f.check = "compare.extra_job";
            f.status = FindingStatus::Fail;
            f.detail = "job '" + id + "' not in baseline";
            v.findings.push_back(std::move(f));
        }
    }

    {
        Finding f;
        f.check = "compare.summary";
        f.status = FindingStatus::Pass;
        f.value = static_cast<double>(total_compared);
        f.hasValue = true;
        f.detail = std::to_string(matched) + " jobs matched, " +
                   std::to_string(total_compared) +
                   " metrics compared";
        v.findings.push_back(std::move(f));
    }

    for (const Finding &f : v.findings)
        if (f.status == FindingStatus::Fail)
            v.overall = FindingStatus::Fail;
    return v;
}

} // namespace prism::analysis
