#include "analysis/online_doctor.hh"

#include <utility>

namespace prism::analysis
{

namespace
{

/** Escalation order: Skip and Pass are quiet, Warn < Fail. */
int
severity(FindingStatus st)
{
    switch (st) {
      case FindingStatus::Fail:
        return 2;
      case FindingStatus::Warn:
        return 1;
      default:
        return 0;
    }
}

} // namespace

RunSeries
OnlineDoctor::buildSeries(const telemetry::SlidingWindow &window,
                          const serve::ServeLiveState &state,
                          const serve::ServeConfig &config)
{
    RunSeries s;
    s.serve = true;
    s.plane = "store";
    s.scheme = canonicalSchemeName(
        std::string("PriSM-") + serve::policyName(config.policy));
    s.name = "serve/" + s.scheme;

    s.hasCounters = true;
    s.intervals = state.intervals;
    s.recomputes = state.recomputes;
    s.eq1Fallbacks = state.eq1Fallbacks;
    s.clampedEq1Inputs = state.clampedEq1Inputs;
    s.serveVictimless = state.victimlessEvictions;
    s.droppedSamples = state.droppedSamples;
    s.droppedEvents = state.droppedEvents;

    // Whole-run hit ratios, same formula writeServeJson uses, so
    // the offline doctor on the emitted documents reproduces these
    // inputs bit for bit.
    for (const serve::TenantTotals &t : state.tenants) {
        const std::uint64_t accesses = t.hits + t.misses;
        s.serveHitRatio.push_back(
            accesses ? static_cast<double>(t.hits) /
                           static_cast<double>(accesses)
                     : 0.0);
    }
    for (std::size_t t = 0; t < state.tenants.size(); ++t)
        s.serveSloFloor.push_back(t < config.tenants.size()
                                      ? config.tenants[t].sloHit
                                      : 0.0);
    s.cores = static_cast<std::uint32_t>(s.serveHitRatio.size());

    for (std::size_t i = 0; i < window.size(); ++i) {
        const telemetry::SlidingWindow::Row &row = window.row(i);
        s.interval.push_back(row.interval);
        s.occupancy.push_back(row.occupancy);
        s.target.push_back(row.target);
        s.evProb.push_back(row.evProb);
        std::vector<double> ev;
        ev.reserve(row.evictions.size());
        for (const std::uint64_t e : row.evictions)
            ev.push_back(static_cast<double>(e));
        s.serveEvictions.push_back(std::move(ev));
    }
    s.hasSeries = !s.interval.empty();
    s.prism = !s.target.empty();

    s.hasDrift = true;
    for (std::uint32_t t = 0; t < window.tenants(); ++t) {
        const telemetry::TenantWindowStats ws = window.stats(t);
        s.driftMissRate.push_back(ws.missRateDrift);
        s.driftSlowdown.push_back(ws.slowdownDrift);
    }
    return s;
}

const Verdict &
OnlineDoctor::evaluate(const telemetry::SlidingWindow &window,
                       const serve::ServeLiveState &state,
                       const serve::ServeConfig &config)
{
    verdict_ =
        analyze(buildSeries(window, state, config), thresholds_);
    evaluated_ = true;

    // Surface escalations on the trace timeline: one event per
    // check whose status rose above its previous level.
    const std::uint64_t interval = window.lastInterval();
    for (const Finding &f : verdict_.findings) {
        const auto prev = lastStatus_.find(f.check);
        const int before =
            prev == lastStatus_.end() ? 0 : severity(prev->second);
        if (severity(f.status) > before && state.recorder) {
            telemetry::TelemetryEvent ev;
            ev.kind = f.status == FindingStatus::Fail
                          ? telemetry::EventKind::DoctorFail
                          : telemetry::EventKind::DoctorWarn;
            ev.interval = interval;
            ev.core = invalidCore;
            ev.value = f.hasValue ? f.value : 0.0;
            state.recorder->addEvent(ev);
        }
        lastStatus_[f.check] = f.status;
    }
    return verdict_;
}

ServeLiveObserver::ServeLiveObserver(
    const serve::ServeConfig &config, LiveObserverOptions options)
    : config_(config), options_(std::move(options)),
      window_(static_cast<std::uint32_t>(config.tenants.size()),
              telemetry::WindowConfig{
                  options_.windowCapacity, options_.ewmaAlpha,
                  options_.thresholds.serveMissPenalty}),
      doctor_(options_.thresholds),
      exporter_(telemetry::ExporterConfig{
          options_.metricsJsonPath, options_.metricsPromPath,
          options_.metricsEvery})
{
    // The copied config is data only; the engine's hook pointers
    // must not dangle into a previous run.
    config_.observer = nullptr;
    config_.stopFlag = nullptr;
}

void
ServeLiveObserver::onIntervalClosed(
    const telemetry::IntervalSample &sample,
    std::span<const std::uint64_t> evictions,
    const serve::ServeLiveState &state)
{
    window_.push(sample, evictions);
    last_ = state;
    if (options_.onlineDoctor)
        doctor_.evaluate(window_, state, config_);
}

void
ServeLiveObserver::onRoundEnd(const serve::ServeLiveState &state)
{
    last_ = state;
    if (exporter_.due(state.round)) {
        Status st = exporter_.flush(snapshot());
        if (exportStatus_.ok() && !st)
            exportStatus_ = st;
    }
}

void
ServeLiveObserver::onRunEnd(const serve::ServeLiveState &state)
{
    last_ = state;
    // The authoritative final verdict: cumulative totals are final
    // here (a run whose last round closed no interval would
    // otherwise grade slightly stale hit ratios).
    if (options_.onlineDoctor)
        doctor_.evaluate(window_, state, config_);
}

Status
ServeLiveObserver::flushFinal()
{
    if (!exporter_.enabled())
        return exportStatus_;
    Status st = exporter_.flush(snapshot());
    if (!st)
        return st;
    return exportStatus_;
}

telemetry::MetricsSnapshot
ServeLiveObserver::snapshot() const
{
    telemetry::MetricsSnapshot snap;
    snap.source = "serve";
    snap.policy = serve::policyName(config_.policy);
    snap.run = "serve/" + canonicalSchemeName(
                              std::string("PriSM-") + snap.policy);
    snap.round = last_.round;
    snap.ops = last_.ops;
    snap.intervals = last_.intervals;

    snap.evictions = last_.evictions;
    snap.victimlessEvictions = last_.victimlessEvictions;
    snap.recomputes = last_.recomputes;
    snap.eq1Fallbacks = last_.eq1Fallbacks;
    snap.clampedEq1Inputs = last_.clampedEq1Inputs;
    snap.occupancyBytes = last_.occupancyBytes;
    snap.capacityBytes = config_.capacityBytes;
    snap.objects = last_.objects;
    snap.droppedSamples = last_.droppedSamples;
    snap.droppedEvents = last_.droppedEvents;

    snap.tenants.resize(last_.tenants.size());
    for (std::size_t t = 0; t < last_.tenants.size(); ++t) {
        const serve::TenantTotals &tt = last_.tenants[t];
        telemetry::TenantLiveState &ts = snap.tenants[t];
        ts.hits = tt.hits;
        ts.misses = tt.misses;
        ts.shadowHits = tt.shadowHits;
        ts.evictions = tt.evictions;
        ts.occupancyBytes = tt.occupancyBytes;
        const std::uint64_t accesses = tt.hits + tt.misses;
        ts.hitRatio = accesses
                          ? static_cast<double>(tt.hits) /
                                static_cast<double>(accesses)
                          : 0.0;
        ts.occupancy =
            config_.capacityBytes
                ? static_cast<double>(tt.occupancyBytes) /
                      static_cast<double>(config_.capacityBytes)
                : 0.0;
        ts.target =
            t < last_.targets.size() ? last_.targets[t] : 0.0;
        ts.evProb =
            t < last_.evProbs.size() ? last_.evProbs[t] : 0.0;
        ts.sloHit = t < config_.tenants.size()
                        ? config_.tenants[t].sloHit
                        : 0.0;
    }

    snap.window = &window_;

    if (options_.onlineDoctor && doctor_.evaluated()) {
        const Verdict &v = doctor_.verdict();
        snap.doctorOverall = findingStatusName(v.overall);
        for (const Finding &f : v.findings) {
            telemetry::DoctorFindingLine line;
            line.check = f.check;
            line.status = findingStatusName(f.status);
            line.value = f.value;
            line.threshold = f.threshold;
            line.hasValue = f.hasValue;
            line.detail = f.detail;
            snap.doctorFindings.push_back(std::move(line));
        }
    }

    snap.metrics = last_.metrics;
    return snap;
}

} // namespace prism::analysis
