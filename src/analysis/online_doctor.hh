/**
 * @file
 * Online doctor: the offline diagnostics run incrementally against
 * the live sliding window of a serving session.
 *
 * The offline pipeline grades a finished run (doctor.hh); a
 * long-running prism_serve instance would stay a black box until
 * shutdown. The online doctor closes that gap: after every interval
 * close it assembles a RunSeries from the SlidingWindow plus the
 * engine's cumulative totals — the exact shape seriesFromServeJson /
 * seriesFromMetricsJson produce — and re-runs analyze() over it.
 * Same checks, same thresholds, same verdict taxonomy; plus the
 * drift.* checks over the window's EWMA statistics, which only live
 * inputs carry.
 *
 * Check-status escalations (anything rising to WARN or FAIL) are
 * appended to the run's IntervalRecorder as DoctorWarn / DoctorFail
 * trace-timeline events, and the latest verdict is embedded in every
 * metrics snapshot, so both the trace and the exposition file tell
 * the operator *when* the control loop went unhealthy.
 *
 * Everything is evaluated in the engine's sequential sections from
 * deterministic state, so verdicts — like the snapshots — are
 * byte-identical at any --threads value, and the final verdict
 * matches what prism_doctor computes offline from the same data.
 */

#ifndef PRISM_ANALYSIS_ONLINE_DOCTOR_HH
#define PRISM_ANALYSIS_ONLINE_DOCTOR_HH

#include <cstdint>
#include <map>
#include <string>

#include "analysis/doctor.hh"
#include "common/status.hh"
#include "serve/serve_engine.hh"
#include "telemetry/exporter.hh"
#include "telemetry/window.hh"

namespace prism::analysis
{

/** Incremental re-grading of a live serve run. */
class OnlineDoctor
{
  public:
    explicit OnlineDoctor(DoctorThresholds thresholds = {})
        : thresholds_(std::move(thresholds))
    {
    }

    /**
     * The live RunSeries for (@p window, @p state, @p config):
     * identity and series shape match seriesFromServeJson, counters
     * and hit ratios come from the cumulative totals, drift comes
     * from the window's EWMA state.
     */
    static RunSeries
    buildSeries(const telemetry::SlidingWindow &window,
                const serve::ServeLiveState &state,
                const serve::ServeConfig &config);

    /**
     * Re-grade the live state. Emits DoctorWarn/DoctorFail events
     * into state.recorder (when present) for every check whose
     * status escalated since the previous evaluation.
     */
    const Verdict &evaluate(const telemetry::SlidingWindow &window,
                            const serve::ServeLiveState &state,
                            const serve::ServeConfig &config);

    bool evaluated() const { return evaluated_; }
    const Verdict &verdict() const { return verdict_; }
    const DoctorThresholds &thresholds() const
    {
        return thresholds_;
    }

  private:
    DoctorThresholds thresholds_;
    Verdict verdict_;
    bool evaluated_ = false;
    /** Last seen status per check, for escalation detection. */
    std::map<std::string, FindingStatus> lastStatus_;
};

/** What the live observer maintains and where it exports. */
struct LiveObserverOptions
{
    /** Sliding-window capacity K in intervals. */
    std::size_t windowCapacity = 64;
    /** EWMA smoothing factor for the drift statistics. */
    double ewmaAlpha = 0.25;

    /** Run the online doctor after every interval close. */
    bool onlineDoctor = false;
    DoctorThresholds thresholds;

    /** prism-metrics-v1 output; "" = none. */
    std::string metricsJsonPath;
    /** Prometheus text exposition output; "" = none. */
    std::string metricsPromPath;
    /** Snapshot cadence in rounds; 0 = final snapshot only. */
    std::uint64_t metricsEvery = 0;
};

/**
 * The concrete live-plane observer both drivers wire into
 * ServeConfig::observer: feeds the SlidingWindow, runs the online
 * doctor, and writes metrics snapshots on the --metrics-every
 * cadence. flushFinal() writes the last snapshot unconditionally —
 * the SIGINT/SIGTERM path relies on it.
 */
class ServeLiveObserver final : public serve::ServeObserver
{
  public:
    ServeLiveObserver(const serve::ServeConfig &config,
                      LiveObserverOptions options);

    void
    onIntervalClosed(const telemetry::IntervalSample &sample,
                     std::span<const std::uint64_t> evictions,
                     const serve::ServeLiveState &state) override;
    void onRoundEnd(const serve::ServeLiveState &state) override;
    void onRunEnd(const serve::ServeLiveState &state) override;

    /** The final snapshot write; ok() when no export is configured. */
    Status flushFinal();

    /** Snapshot of the latest observed state. */
    telemetry::MetricsSnapshot snapshot() const;

    const telemetry::SlidingWindow &window() const
    {
        return window_;
    }
    bool doctorEnabled() const { return options_.onlineDoctor; }
    const OnlineDoctor &doctor() const { return doctor_; }

    /** Snapshots written (periodic + final). */
    std::uint64_t exportsWritten() const
    {
        return exporter_.exports();
    }
    /** First error any periodic export hit; ok() otherwise. */
    const Status &exportStatus() const { return exportStatus_; }

  private:
    serve::ServeConfig config_; ///< for SLO floors / policy / sizes
    LiveObserverOptions options_;
    telemetry::SlidingWindow window_;
    OnlineDoctor doctor_;
    telemetry::MetricsExporter exporter_;
    serve::ServeLiveState last_;
    Status exportStatus_;
};

} // namespace prism::analysis

#endif // PRISM_ANALYSIS_ONLINE_DOCTOR_HH
