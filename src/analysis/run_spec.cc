#include "analysis/run_spec.hh"

#include <charconv>
#include <cstdlib>
#include <sstream>
#include <string>
#include <vector>

#include "fault/fault_injector.hh"

namespace prism::analysis
{

namespace
{

std::vector<std::string>
tokenize(std::string_view text)
{
    std::vector<std::string> out;
    std::istringstream in{std::string(text)};
    std::string tok;
    while (in >> tok)
        out.push_back(tok);
    return out;
}

Status
parseU64(const std::string &flag, const std::string &text,
         std::uint64_t &out)
{
    const char *end = text.data() + text.size();
    const auto res = std::from_chars(text.data(), end, out);
    if (text.empty() || res.ec != std::errc() || res.ptr != end)
        return Status::error("invalid number '" + text + "' for " +
                             flag);
    return Status();
}

Status
parseDouble(const std::string &flag, const std::string &text,
            double &out)
{
    char *end = nullptr;
    out = std::strtod(text.c_str(), &end);
    if (text.empty() || end != text.c_str() + text.size())
        return Status::error("invalid number '" + text + "' for " +
                             flag);
    return Status();
}

std::vector<std::string>
splitMix(const std::string &mix)
{
    std::vector<std::string> out;
    std::istringstream in(mix);
    std::string item;
    while (std::getline(in, item, ','))
        if (!item.empty())
            out.push_back(item);
    return out;
}

} // namespace

Status
parseRunSpec(std::string_view text, RunSpec &out)
{
    out = RunSpec();

    std::uint64_t cores = 4;
    bool cores_set = false;
    std::string workload_name, mix;
    std::string scheme_name = "PriSM-H", repl_name = "LRU";
    std::uint64_t instr = 1'500'000, warmup = 500'000, interval = 0;
    std::uint64_t seed = 0x5EED0001ULL, bits = 0;
    double qos_frac = 0.8;

    const std::vector<std::string> tokens = tokenize(text);
    for (std::size_t i = 0; i < tokens.size(); ++i) {
        const std::string &flag = tokens[i];
        auto value = [&](std::string &v) {
            if (i + 1 >= tokens.size())
                return Status::error("missing value for " + flag);
            v = tokens[++i];
            return Status();
        };
        std::string v;
        Status st;
        if (flag == "--cores") {
            if (!(st = value(v)).ok() ||
                !(st = parseU64(flag, v, cores)).ok())
                return st;
            cores_set = true;
        } else if (flag == "--workload") {
            if (!(st = value(workload_name)).ok())
                return st;
        } else if (flag == "--mix") {
            if (!(st = value(mix)).ok())
                return st;
        } else if (flag == "--scheme") {
            if (!(st = value(scheme_name)).ok())
                return st;
        } else if (flag == "--repl") {
            if (!(st = value(repl_name)).ok())
                return st;
        } else if (flag == "--instr") {
            if (!(st = value(v)).ok() ||
                !(st = parseU64(flag, v, instr)).ok())
                return st;
        } else if (flag == "--warmup") {
            if (!(st = value(v)).ok() ||
                !(st = parseU64(flag, v, warmup)).ok())
                return st;
        } else if (flag == "--interval") {
            if (!(st = value(v)).ok() ||
                !(st = parseU64(flag, v, interval)).ok())
                return st;
        } else if (flag == "--seed") {
            if (!(st = value(v)).ok() ||
                !(st = parseU64(flag, v, seed)).ok())
                return st;
        } else if (flag == "--bits") {
            if (!(st = value(v)).ok() ||
                !(st = parseU64(flag, v, bits)).ok())
                return st;
        } else if (flag == "--qos-frac") {
            if (!(st = value(v)).ok() ||
                !(st = parseDouble(flag, v, qos_frac)).ok())
                return st;
        } else if (flag == "--faults") {
            if (!(st = value(out.options.faultSpec)).ok())
                return st;
        } else if (flag == "--checked") {
            out.options.checked = true;
        } else {
            return Status::error("unknown run flag '" + flag + "'");
        }
    }

    if (!schemeFromName(scheme_name, out.scheme))
        return Status::error("unknown scheme '" + scheme_name + "'");
    ReplKind repl;
    if (!replFromName(repl_name, repl))
        return Status::error("unknown replacement policy '" +
                             repl_name + "'");
    if (!out.options.faultSpec.empty()) {
        std::vector<FaultClause> clauses;
        if (const Status st =
                parseFaultSpec(out.options.faultSpec, clauses);
            !st.ok())
            return st;
    }

    if (!mix.empty()) {
        out.workload.name = "custom";
        out.workload.benchmarks = splitMix(mix);
        if (out.workload.benchmarks.empty())
            return Status::error("--mix lists no benchmarks");
        if (cores_set && out.workload.benchmarks.size() != cores)
            return Status::error(
                "--mix lists " +
                std::to_string(out.workload.benchmarks.size()) +
                " benchmarks but --cores asked for " +
                std::to_string(cores));
        cores = out.workload.benchmarks.size();
    } else if (!workload_name.empty()) {
        if (!suites::find(workload_name, out.workload))
            return Status::error("unknown workload '" +
                                 workload_name + "'");
        cores = out.workload.benchmarks.size();
    } else {
        if (cores != 4 && cores != 8 && cores != 16 && cores != 32)
            return Status::error(
                "--cores must be 4, 8, 16 or 32 (got " +
                std::to_string(cores) + ")");
        out.workload = suites::forCoreCount(
                           static_cast<std::uint32_t>(cores))
                           .front();
    }

    out.machine =
        MachineConfig::forCores(static_cast<std::uint32_t>(cores));
    out.machine.instrBudget = instr;
    out.machine.warmupInstr = warmup;
    if (interval)
        out.machine.intervalMisses = interval;
    out.machine.seed = seed;
    out.machine.repl = repl;

    if (const auto errors = out.machine.validate();
        !errors.empty()) {
        std::string joined = "invalid machine configuration:";
        for (const std::string &e : errors)
            joined += " " + e + ";";
        return Status::error(joined);
    }

    out.options.probBits = static_cast<unsigned>(bits);
    out.options.qosTargetFrac = qos_frac;
    return Status();
}

} // namespace prism::analysis
