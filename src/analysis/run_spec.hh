/**
 * @file
 * RunSpec: parse a prism_sim-style argument string into a runnable
 * simulation description.
 *
 * `prism_doctor --run "--workload Q7 --scheme PriSM-H"` executes one
 * fresh simulation and diagnoses it in-process. The flag vocabulary
 * deliberately mirrors prism_sim's run-shaping subset (--cores,
 * --workload, --mix, --scheme, --repl, --instr, --warmup, --interval,
 * --seed, --bits, --qos-frac, --faults, --checked) so a run command
 * can be copied between the two tools verbatim; output flags are not
 * accepted here.
 */

#ifndef PRISM_ANALYSIS_RUN_SPEC_HH
#define PRISM_ANALYSIS_RUN_SPEC_HH

#include <string_view>

#include "common/status.hh"
#include "sim/runner.hh"

namespace prism::analysis
{

/** A fully-resolved single-run request. */
struct RunSpec
{
    MachineConfig machine;
    Workload workload;
    SchemeKind scheme = SchemeKind::PrismH;
    SchemeOptions options;
};

/**
 * Parse @p text (whitespace-separated flags) into @p out. The machine
 * is the paper configuration for the resolved core count with
 * prism_sim's default run lengths (1.5M instructions, 500k warm-up).
 */
Status parseRunSpec(std::string_view text, RunSpec &out);

} // namespace prism::analysis

#endif // PRISM_ANALYSIS_RUN_SPEC_HH
