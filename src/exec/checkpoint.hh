/**
 * @file
 * Crash-safe sweep checkpointing: the `prism-ckpt-v1` document.
 *
 * While a sweep runs, a CheckpointWriter collects every completed
 * job's RunResult and periodically rewrites `<sweep>.ckpt.json`
 * atomically (tmp + rename + fsync, see common/atomic_file.hh). A
 * killed run can then restart with `prism_bench --resume`: completed
 * jobs are restored from the checkpoint without re-execution, and —
 * because the serialised result fields round-trip bit-exactly
 * through the JSON layer — the merged BENCH_*.json is byte-identical
 * to an uninterrupted run at any thread count
 * (tests/test_resume.cc).
 *
 * The checkpoint is bound to its sweep by a fingerprint hash over
 * the sweep name, job ids, machine configurations and scheme
 * options; a stale or foreign checkpoint is rejected instead of
 * silently merging wrong results.
 */

#ifndef PRISM_EXEC_CHECKPOINT_HH
#define PRISM_EXEC_CHECKPOINT_HH

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.hh"
#include "exec/sweep.hh"
#include "fault/fault_injector.hh"

namespace prism
{

/** Hash binding a checkpoint to one exact sweep spec. */
std::string sweepFingerprint(const SweepSpec &spec);

/**
 * Rebuild a RunResult from the JSON object written by
 * writeRunResultFields(). Derived metrics (antt, fairness,
 * ipc_throughput) recompute from the restored vectors; the recorder
 * is not persisted and stays null.
 */
Status readRunResultFields(const JsonValue &obj, RunResult &out);

/** One restored job of a checkpoint. */
struct CheckpointJob
{
    std::string id;
    unsigned attempts = 1;
    /** Failure history of the retried attempts (possibly empty). */
    std::vector<JobFailure> failures;
    RunResult result;
};

/** A parsed and validated prism-ckpt-v1 document. */
struct CheckpointData
{
    std::string sweep;
    std::string fingerprint;
    std::vector<CheckpointJob> jobs;
};

/**
 * Read and validate @p path. An unreadable, unparsable or
 * schema-mismatched file returns an error Status ("corrupt
 * checkpoint: ..."); fingerprint matching is the caller's decision.
 */
Status loadCheckpoint(const std::string &path, CheckpointData &out);

/**
 * Collects completed jobs and atomically rewrites the checkpoint
 * file. Thread-safe: record() may be called from concurrent job
 * observers. The `torn_write` chaos kind hooks flushes here — a
 * selected flush writes a truncated file *non*-atomically,
 * simulating exactly the corruption the atomic path prevents.
 */
class CheckpointWriter
{
  public:
    struct Options
    {
        /** Flush after every Nth newly recorded job (>= 1). */
        unsigned every = 1;
        /** Exec chaos clauses; only torn_write is consulted, keyed
         * by flush ordinal. */
        std::vector<FaultClause> chaos;
    };

    /** @p spec must outlive the writer. */
    CheckpointWriter(std::string path, const SweepSpec &spec,
                     Options options);

    CheckpointWriter(std::string path, const SweepSpec &spec)
        : CheckpointWriter(std::move(path), spec, Options())
    {
    }

    const std::string &path() const { return path_; }

    /**
     * Seed one already-completed job (checkpoint restore) without
     * counting towards the flush cadence.
     */
    void seed(std::size_t index, const RunResult &result,
              const JobReport &report);

    /**
     * Record the completed job at spec position @p index and flush
     * when the cadence says so. Returns the flush Status (ok when
     * no flush happened).
     */
    Status record(std::size_t index, const RunResult &result,
                  const JobReport &report);

    /** Force a flush of everything recorded so far. */
    Status flush();

    std::uint64_t flushes() const;
    std::uint64_t tornWrites() const;

  private:
    Status flushLocked();

    mutable std::mutex mutex_;
    std::string path_;
    const SweepSpec *spec_;
    std::string fingerprint_;
    Options options_;
    struct Entry
    {
        unsigned attempts = 1;
        std::vector<JobFailure> failures;
        RunResult result;
    };
    /** spec index -> entry; ordered so the file lists jobs in spec
     * order. */
    std::map<std::size_t, Entry> done_;
    unsigned since_flush_ = 0;
    std::uint64_t flushes_ = 0;
    std::uint64_t torn_writes_ = 0;
};

} // namespace prism

#endif // PRISM_EXEC_CHECKPOINT_HH
