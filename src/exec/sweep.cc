#include "exec/sweep.hh"

#include <chrono>
#include <memory>
#include <mutex>
#include <ostream>

#include "common/prism_assert.hh"
#include "common/rng.hh"
#include "exec/thread_pool.hh"
#include "telemetry/span.hh"

namespace prism
{

std::string
SweepSpec::makeId(const std::string &tag, const std::string &workload,
                  SchemeKind scheme, std::uint32_t seed_index)
{
    std::string id;
    if (!tag.empty())
        id += tag + "/";
    id += workload + "/" + schemeName(scheme);
    if (seed_index > 0)
        id += "#s" + std::to_string(seed_index);
    return id;
}

std::size_t
SweepSpec::add(const MachineConfig &config, const Workload &workload,
               SchemeKind scheme, const SchemeOptions &options,
               const std::string &tag, std::uint32_t seed_index)
{
    SweepJob job;
    job.id = makeId(tag, workload.name, scheme, seed_index);
    panicIf(!ids_.insert(job.id).second,
            "SweepSpec::add: duplicate job id " + job.id);
    job.config = config;
    job.workload = workload;
    job.scheme = scheme;
    job.options = options;
    job.seedIndex = seed_index;
    panicIf(job.options.statsSink != nullptr,
            "SweepSpec::add: statsSink is not supported in sweeps");
    panicIf(job.options.statsJsonSink != nullptr,
            "SweepSpec::add: statsJsonSink is not supported in sweeps");
    // The per-job RNG stream: derived from the job's seed-replica
    // key, never from thread id or schedule order. Index 0 keeps
    // the configured seed so sweep results match direct Runner use.
    if (seed_index > 0)
        job.config.seed = deriveSeed(
            config.seed, "sweep-replica:" + std::to_string(seed_index));
    jobs.push_back(std::move(job));
    return jobs.size() - 1;
}

std::uint64_t
SweepOutcome::countState(JobState state) const
{
    std::uint64_t n = 0;
    for (const JobReport &r : reports)
        if (r.state == state)
            ++n;
    return n;
}

std::uint64_t
SweepOutcome::retriedAttempts() const
{
    std::uint64_t n = 0;
    for (const JobReport &r : reports)
        if (r.attempts > 1)
            n += r.attempts - 1;
    return n;
}

std::uint64_t
SweepOutcome::countFailures(JobErrorKind kind) const
{
    std::uint64_t n = 0;
    for (const JobReport &r : reports)
        for (const JobFailure &f : r.failures)
            if (f.kind == kind)
                ++n;
    return n;
}

bool
SweepOutcome::noteworthy() const
{
    for (const JobReport &r : reports)
        if (r.state != JobState::Done || r.attempts != 1)
            return true;
    return false;
}

SweepOutcome
SweepRunner::run(const SweepSpec &spec, const SweepResume *resume)
{
    const auto t0 = std::chrono::steady_clock::now();

    SweepOutcome out;
    out.results.resize(spec.jobs.size());
    out.reports.resize(spec.jobs.size());

    // The only mutable state shared between jobs: the once-per-key
    // memo of stand-alone reference simulations.
    auto memo = std::make_shared<StandaloneIpcMemo>();

    // Span stats resolve once up front (registry lock), then jobs
    // only touch the atomic counters from worker threads.
    telemetry::SpanStats job_span;
    if (metrics_)
        job_span = metrics_->span("sweep.job");

    const JobSupervisor supervisor(supervisor_config_, metrics_);
    const bool supervised = supervisor_config_.enabled;

    // Checkpoint restore: completed jobs keep their recorded result
    // and never touch the pool — the merged output is byte-identical
    // to an uninterrupted run because the restored fields round-trip
    // bit-exactly through the JSON layer.
    std::vector<char> is_restored(spec.jobs.size(), 0);
    if (resume) {
        for (std::size_t i = 0; i < spec.jobs.size(); ++i) {
            const auto it = resume->completed.find(spec.jobs[i].id);
            if (it == resume->completed.end())
                continue;
            out.results[i] = it->second.result;
            JobReport &report = out.reports[i];
            report.state = it->second.attempts > 1
                               ? JobState::Recovered
                               : JobState::Done;
            report.attempts = it->second.attempts;
            report.failures = it->second.failures;
            report.restored = true;
            is_restored[i] = 1;
            ++out.restored;
        }
    }

    // Observer state: completion counter and the mutex serialising
    // callbacks (results themselves stay lock-free, one slot per job).
    std::mutex observer_mutex;
    std::size_t done = out.restored;

    {
        ThreadPool pool(threads_);
        out.threads = pool.threadCount();
        for (std::size_t i = 0; i < spec.jobs.size(); ++i) {
            if (is_restored[i])
                continue;
            const SweepJob &job = spec.jobs[i];
            RunResult *slot = &out.results[i];
            JobReport *report = &out.reports[i];
            pool.submit([this, &spec, &job, slot, report, memo,
                         job_span, &supervisor, supervised,
                         &observer_mutex, &done, i]() {
                PRISM_SPAN(job_span);
                if (supervised) {
                    const JobSupervisor::Attempt<RunResult> attempt =
                        [&job, memo](const CancelToken &token) {
                            Runner runner(job.config, memo);
                            SchemeOptions options = job.options;
                            options.cancel = &token;
                            return runner.run(job.workload, job.scheme,
                                              options);
                        };
                    *slot = supervisor.supervise<RunResult>(
                        i + 1, job.id, attempt, *report, stop_);
                } else {
                    Runner runner(job.config, memo);
                    *slot = runner.run(job.workload, job.scheme,
                                       job.options);
                }
                if (observer_) {
                    std::lock_guard<std::mutex> lock(observer_mutex);
                    JobProgress p;
                    p.index = i;
                    p.done = ++done;
                    p.total = spec.jobs.size();
                    p.state = report->state;
                    p.attempts = report->attempts;
                    p.report = report;
                    observer_(job, *slot, p);
                }
            });
        }
        pool.wait();
    }

    for (const JobReport &r : out.reports)
        if (r.state == JobState::Skipped)
            out.stopped = true;

    const auto t1 = std::chrono::steady_clock::now();
    out.wallSeconds =
        std::chrono::duration<double>(t1 - t0).count();
    out.jobsPerSecond =
        out.wallSeconds > 0.0
            ? static_cast<double>(spec.jobs.size()) / out.wallSeconds
            : 0.0;
    out.standaloneSims = memo->computes();
    return out;
}

SweepResults::SweepResults(const SweepSpec &spec,
                           const SweepOutcome &outcome)
    : outcome_(&outcome)
{
    panicIf(spec.jobs.size() != outcome.results.size(),
            "SweepResults: outcome does not match spec");
    for (std::size_t i = 0; i < spec.jobs.size(); ++i)
        by_id_.emplace(spec.jobs[i].id, &outcome.results[i]);
}

const RunResult &
SweepResults::at(const std::string &id) const
{
    const auto it = by_id_.find(id);
    panicIf(it == by_id_.end(), "SweepResults::at: no job " + id);
    return *it->second;
}

void
writeRunResultFields(JsonWriter &w, const RunResult &r)
{
    w.kv("workload", r.workload);
    w.kv("scheme", r.scheme);
    w.kv("benchmarks", std::span<const std::string>(r.benchmarks));
    w.kv("ipc", std::span<const double>(r.ipc));
    w.kv("ipc_standalone", std::span<const double>(r.ipcStandalone));
    w.kv("antt", r.antt());
    w.kv("fairness", r.fairness());
    w.kv("ipc_throughput", r.ipcThroughput());
    w.kv("llc_misses", std::span<const std::uint64_t>(r.llcMisses));
    w.kv("llc_hits", std::span<const std::uint64_t>(r.llcHits));
    w.kv("occupancy_at_finish",
         std::span<const double>(r.occupancyAtFinish));
    w.kv("intervals", r.intervals);
    w.kv("victimless_fraction", r.victimlessFraction);
    w.kv("ev_prob_mean", std::span<const double>(r.evProbMean));
    w.kv("ev_prob_stddev", std::span<const double>(r.evProbStddev));
    w.kv("recomputes", r.recomputes);
    w.kv("faults_injected", r.faultsInjected);
    w.kv("degraded_intervals", r.degradedIntervals);
    w.kv("invariant_violations", r.invariantViolations);
    w.kv("ownership_repairs", r.ownershipRepairs);
    w.kv("clamped_eq1_inputs", r.clampedEq1Inputs);
    w.kv("dropped_recomputes", r.droppedRecomputes);
    w.kv("fallback_entries", r.fallbackEntries);
    // CachePlane fields only for schemes that set them (PriSM-WM), so
    // pre-plane documents stay byte-identical.
    if (!r.plane.empty()) {
        w.kv("plane", r.plane);
        w.kv("way_quant_error", r.wayQuantError);
    }
}

namespace
{

void
writeJobConfig(JsonWriter &w, const SweepJob &job)
{
    const MachineConfig &m = job.config;
    w.kv("cores", m.numCores);
    w.kv("llc_bytes", m.llcBytes);
    w.kv("llc_ways", m.llcWays);
    w.kv("block_bytes", m.blockBytes);
    w.kv("repl", replKindName(m.repl));
    w.kv("interval_misses", m.intervalMisses);
    w.kv("instr_budget", m.instrBudget);
    w.kv("warmup_instr", m.warmupInstr);
    w.kv("seed", m.seed);
    w.kv("seed_index", job.seedIndex);
    if (job.options.probBits)
        w.kv("prob_bits", job.options.probBits);
    if (job.scheme == SchemeKind::PrismQ)
        w.kv("qos_target_frac", job.options.qosTargetFrac);
}

} // namespace

void
writeSweepJson(std::ostream &os, const SweepSpec &spec,
               const SweepOutcome &outcome,
               const SweepJsonOptions &options,
               const std::function<void(JsonWriter &)> &summary)
{
    panicIf(spec.jobs.size() != outcome.results.size(),
            "writeSweepJson: outcome does not match spec");

    JsonWriter w(os);
    w.beginObject();
    w.kv("schema", "prism-bench-v1");
    w.kv("sweep", spec.name);

    if (summary) {
        w.key("summary");
        w.beginObject();
        summary(w);
        w.endObject();
    }

    // Supervision surfaces only when something deviated from a clean
    // first-try success; clean runs emit the exact legacy document
    // (golden files, resume byte-identity).
    const bool has_reports =
        outcome.reports.size() == spec.jobs.size();
    const bool noteworthy = has_reports && outcome.noteworthy();

    w.key("jobs");
    w.beginArray();
    for (std::size_t i = 0; i < spec.jobs.size(); ++i) {
        const SweepJob &job = spec.jobs[i];
        w.beginObject();
        w.kv("id", job.id);
        w.key("config");
        w.beginObject();
        writeJobConfig(w, job);
        w.endObject();
        const bool failed =
            has_reports && !outcome.reports[i].succeeded();
        if (failed) {
            const JobReport &report = outcome.reports[i];
            w.key("error");
            w.beginObject();
            w.kv("state", jobStateName(report.state));
            w.kv("attempts", std::uint64_t(report.attempts));
            w.key("failures");
            w.beginArray();
            for (const JobFailure &f : report.failures) {
                w.beginObject();
                w.kv("kind", jobErrorKindName(f.kind));
                w.kv("message", f.message);
                w.endObject();
            }
            w.endArray();
            w.endObject();
        } else {
            w.key("result");
            w.beginObject();
            writeRunResultFields(w, outcome.results[i]);
            w.endObject();
        }
        w.endObject();
    }
    w.endArray();

    if (noteworthy) {
        w.key("exec");
        w.beginObject();
        w.kv("completed",
             outcome.countState(JobState::Done) +
                 outcome.countState(JobState::Recovered));
        w.kv("recovered", outcome.countState(JobState::Recovered));
        w.kv("quarantined",
             outcome.countState(JobState::Quarantined));
        w.kv("skipped", outcome.countState(JobState::Skipped));
        w.kv("retries", outcome.retriedAttempts());
        w.kv("timeouts",
             outcome.countFailures(JobErrorKind::Timeout));
        w.endObject();
    }

    if (options.includeTiming) {
        w.key("timing");
        w.beginObject();
        w.kv("threads", outcome.threads);
        w.kv("wall_seconds", outcome.wallSeconds);
        w.kv("jobs_per_second", outcome.jobsPerSecond);
        w.kv("standalone_sims", outcome.standaloneSims);
        w.endObject();
    }
    w.endObject();
}

} // namespace prism
