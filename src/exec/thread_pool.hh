/**
 * @file
 * Fixed-size thread pool for the sweep engine.
 *
 * Deliberately work-stealing-free: a single FIFO queue feeds a fixed
 * set of workers. Sweep jobs are coarse (whole simulations, tens of
 * milliseconds to minutes), so queue contention is negligible and
 * the simple design keeps execution order irrelevant to results —
 * every job writes only its own pre-allocated result slot and draws
 * randomness only from its own key-derived seed.
 */

#ifndef PRISM_EXEC_THREAD_POOL_HH
#define PRISM_EXEC_THREAD_POOL_HH

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace prism
{

/** Fixed pool of worker threads draining one FIFO job queue. */
class ThreadPool
{
  public:
    /** @param threads Worker count; clamped to at least 1. */
    explicit ThreadPool(unsigned threads);

    /** Drains the queue, then joins all workers. */
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    unsigned threadCount() const
    {
        return static_cast<unsigned>(workers_.size());
    }

    /** Enqueue @p job; runs on some worker thread. */
    void submit(std::function<void()> job);

    /** Block until every submitted job has finished. */
    void wait();

  private:
    void workerLoop();

    std::vector<std::thread> workers_;
    std::deque<std::function<void()>> queue_;
    std::mutex mutex_;
    std::condition_variable work_available_;
    std::condition_variable all_idle_;
    std::size_t unfinished_ = 0; ///< queued + currently running
    bool stopping_ = false;
};

} // namespace prism

#endif // PRISM_EXEC_THREAD_POOL_HH
