/**
 * @file
 * Parallel sweep execution: declarative (scheme × workload × seed ×
 * config) job grids fanned across a fixed thread pool.
 *
 * Determinism contract: a sweep's results — and its JSON
 * serialisation, timing fields aside — are bit-identical at every
 * thread count. The ingredients:
 *   - each job's RNG seed is derived from the job key (sweep seed
 *     replica index), never from thread ids or execution order;
 *   - each job writes only its own pre-allocated result slot;
 *   - the stand-alone reference IPCs shared between jobs come from a
 *     once-per-key concurrent memo of pure computations.
 * `tests/test_sweep_determinism.cc` asserts the contract.
 */

#ifndef PRISM_EXEC_SWEEP_HH
#define PRISM_EXEC_SWEEP_HH

#include <atomic>
#include <cstdint>
#include <functional>
#include <iosfwd>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "common/json.hh"
#include "exec/supervisor.hh"
#include "sim/runner.hh"

namespace prism
{

/** One simulation job of a sweep: a fully resolved run request. */
struct SweepJob
{
    /** Unique id within the sweep; also the JSON lookup key. */
    std::string id;
    MachineConfig config;
    Workload workload;
    SchemeKind scheme;
    SchemeOptions options;
    /** Seed replica index this job was added with. */
    std::uint32_t seedIndex = 0;
};

/** A declarative sweep: a named list of independent jobs. */
struct SweepSpec
{
    std::string name;
    std::vector<SweepJob> jobs;

    /**
     * Canonical job id: "[tag/]workload/scheme[#sK]". The id is the
     * key reports use to look results up, so builders and reducers
     * must construct it through this helper.
     */
    static std::string makeId(const std::string &tag,
                              const std::string &workload,
                              SchemeKind scheme,
                              std::uint32_t seed_index = 0);

    /**
     * Append one job. @p tag distinguishes configuration variants of
     * the same (workload, scheme) pair (e.g. "c4" vs "c8", or a bit
     * width). For @p seed_index > 0 the machine seed is re-derived
     * from (config.seed, seed_index), giving deterministic
     * independent replicas; index 0 keeps the configured seed so a
     * sweep job reproduces a direct Runner::run() bit for bit.
     *
     * Duplicate ids panic: they would make report lookups ambiguous.
     *
     * @return Index of the new job in jobs.
     */
    std::size_t add(const MachineConfig &config, const Workload &workload,
                    SchemeKind scheme, const SchemeOptions &options = {},
                    const std::string &tag = "",
                    std::uint32_t seed_index = 0);

  private:
    std::set<std::string> ids_;
};

/**
 * Completed results carried across a kill/--resume boundary: the
 * sweep runner skips these jobs instead of re-executing them.
 */
struct SweepResume
{
    struct Entry
    {
        RunResult result;
        unsigned attempts = 1;
        /** Failure history of the pre-kill attempts (so the merged
         * exec manifest matches an uninterrupted run exactly). */
        std::vector<JobFailure> failures;
    };
    /** Keyed by job id (checkpoints survive spec reordering). */
    std::map<std::string, Entry> completed;
};

/** Everything a finished sweep produced. */
struct SweepOutcome
{
    /** One result per spec job, in spec order. Quarantined/skipped
     * jobs hold a default-constructed RunResult; consult reports. */
    std::vector<RunResult> results;

    /** One supervision report per spec job, in spec order — the
     * salvaged-vs-failed manifest. All Done/attempts=1 when the
     * sweep ran clean (or unsupervised). */
    std::vector<JobReport> reports;

    /** true: a stop request (SIGINT/SIGTERM) skipped some jobs. */
    bool stopped = false;

    /** Jobs restored from a checkpoint instead of executed. */
    std::uint64_t restored = 0;

    // --- execution statistics (not part of the determinism contract)
    unsigned threads = 1;
    double wallSeconds = 0.0;
    double jobsPerSecond = 0.0;
    /** Distinct stand-alone reference simulations executed. */
    std::uint64_t standaloneSims = 0;

    // --- manifest helpers over reports ----------------------------
    std::uint64_t countState(JobState state) const;
    /** Sum of (attempts - 1) over all jobs: retried attempts. */
    std::uint64_t retriedAttempts() const;
    /** Failures of one kind across every job's attempt history. */
    std::uint64_t countFailures(JobErrorKind kind) const;
    /** Any report deviating from a clean first-try success. */
    bool noteworthy() const;
};

/**
 * Executes sweeps on a fixed thread pool.
 *
 * Jobs are independent by construction; the only state shared
 * between them is the concurrent stand-alone-IPC memo.
 */
class SweepRunner
{
  public:
    /** @param threads Worker threads; clamped to at least 1. */
    explicit SweepRunner(unsigned threads = 1) : threads_(threads) {}

    unsigned threads() const { return threads_; }

    /**
     * Attach a metrics registry (non-owning; null detaches): every
     * job is then wrapped in a "sweep.job" span. The registry is
     * updated concurrently from worker threads — this is the
     * ThreadSanitizer target for MetricsRegistry.
     */
    void setMetrics(telemetry::MetricsRegistry *metrics)
    {
        metrics_ = metrics;
    }

    /**
     * Attach a supervisor configuration. With config.enabled every
     * job attempt runs under retry/deadline/quarantine semantics
     * and SweepOutcome::reports carries the manifest; disabled (the
     * default) keeps the raw legacy behaviour where a throwing job
     * propagates out of run().
     */
    void setSupervisor(const SupervisorConfig &config)
    {
        supervisor_config_ = config;
    }

    /**
     * Observe @p stop (non-owning; null detaches): once it reads
     * true, queued jobs are skipped (reported Skipped) and running
     * attempts are cancelled at their next poll point. Requires a
     * supervisor (setSupervisor with enabled=true).
     */
    void setStopFlag(const std::atomic<bool> *stop) { stop_ = stop; }

    /** Completion context handed to the job observer. */
    struct JobProgress
    {
        std::size_t index = 0; ///< job's position in spec order
        std::size_t done = 0;  ///< jobs finished so far (this one incl.)
        std::size_t total = 0; ///< jobs in the sweep
        /** Supervision outcome (Done when unsupervised). */
        JobState state = JobState::Done;
        unsigned attempts = 1;
        /** Full supervision report (valid for the callback only). */
        const JobReport *report = nullptr;
    };

    using JobObserver = std::function<void(
        const SweepJob &, const RunResult &, const JobProgress &)>;

    /**
     * Install a callback invoked once per completed job (null
     * detaches). Calls are serialised under an internal mutex, so the
     * observer needs no locking of its own, but they arrive in
     * completion order — a consumer that needs spec order must index
     * by JobProgress::index. The observer must not mutate the result.
     */
    void setJobObserver(JobObserver observer)
    {
        observer_ = std::move(observer);
    }

    /**
     * Run every job of @p spec; results in spec order. Jobs found in
     * @p resume (matched by id) are restored without execution —
     * their reports read Done with restored=true. The observer only
     * sees executed jobs.
     */
    SweepOutcome run(const SweepSpec &spec,
                     const SweepResume *resume = nullptr);

  private:
    unsigned threads_;
    telemetry::MetricsRegistry *metrics_ = nullptr;
    JobObserver observer_;
    SupervisorConfig supervisor_config_;
    const std::atomic<bool> *stop_ = nullptr;
};

/** Result lookup by job id for report/summary code. */
class SweepResults
{
  public:
    /** Both @p spec and @p outcome must outlive this view. */
    SweepResults(const SweepSpec &spec, const SweepOutcome &outcome);

    /** The result of job @p id; panics when absent. */
    const RunResult &at(const std::string &id) const;

    bool contains(const std::string &id) const
    {
        return by_id_.count(id) != 0;
    }

    const SweepOutcome &outcome() const { return *outcome_; }

  private:
    const SweepOutcome *outcome_;
    std::map<std::string, const RunResult *> by_id_;
};

/** Options for writeSweepJson(). */
struct SweepJsonOptions
{
    /**
     * Include wall-clock / jobs-per-second fields. Disabled for
     * golden files and determinism tests, where the output must be
     * byte-identical across runs and thread counts.
     */
    bool includeTiming = true;
};

/** Serialise one RunResult as the current JSON object's fields. */
void writeRunResultFields(JsonWriter &w, const RunResult &r);

/**
 * Serialise a finished sweep as the "prism-bench-v1" JSON document:
 * sweep name, optional figure summary, the per-job results (with
 * machine configuration), and — unless disabled — timing.
 *
 * Supervision surfaces only when noteworthy (any job retried,
 * quarantined or skipped): failed jobs get an "error" object instead
 * of "result", and an "exec" section summarises the manifest. Clean
 * runs emit exactly the legacy document, so golden files and the
 * resume byte-identity contract are preserved.
 */
void writeSweepJson(
    std::ostream &os, const SweepSpec &spec, const SweepOutcome &outcome,
    const SweepJsonOptions &options = {},
    const std::function<void(JsonWriter &)> &summary = nullptr);

} // namespace prism

#endif // PRISM_EXEC_SWEEP_HH
