#include "exec/supervisor.hh"

#include <chrono>
#include <cmath>
#include <thread>

#include "common/rng.hh"

namespace prism
{

const char *
jobErrorKindName(JobErrorKind kind)
{
    switch (kind) {
      case JobErrorKind::Transient:
        return "transient";
      case JobErrorKind::Fatal:
        return "fatal";
      case JobErrorKind::Timeout:
        return "timeout";
      case JobErrorKind::InvariantViolation:
        return "invariant_violation";
    }
    return "?";
}

bool
jobErrorKindFromName(const std::string &name, JobErrorKind &out)
{
    for (const JobErrorKind k :
         {JobErrorKind::Transient, JobErrorKind::Fatal,
          JobErrorKind::Timeout, JobErrorKind::InvariantViolation}) {
        if (name == jobErrorKindName(k)) {
            out = k;
            return true;
        }
    }
    return false;
}

const char *
jobStateName(JobState state)
{
    switch (state) {
      case JobState::Done:
        return "done";
      case JobState::Recovered:
        return "recovered";
      case JobState::Quarantined:
        return "quarantined";
      case JobState::Skipped:
        return "skipped";
    }
    return "?";
}

Status
parseChaosSpec(const std::string &spec, std::vector<FaultClause> &out)
{
    std::vector<FaultClause> clauses;
    if (const Status st = parseFaultSpec(spec, clauses); !st.ok())
        return st;
    for (const FaultClause &c : clauses)
        if (!isExecFaultKind(c.kind))
            return Status::error(
                std::string("chaos spec: '") + faultKindName(c.kind) +
                "' is a simulation-level kind; use the per-job "
                "--faults spec for it (exec kinds: job_crash|"
                "job_stall|torn_write|alloc_fail)");
    out = std::move(clauses);
    return Status();
}

JobSupervisor::JobSupervisor(const SupervisorConfig &config,
                             telemetry::MetricsRegistry *metrics)
    : config_(config), metrics_(metrics)
{
}

void
JobSupervisor::bump(const char *counter) const
{
    // Resolved lazily: clean sweeps never create the exec.* counters,
    // so trace metrics dumps stay byte-identical to unsupervised runs.
    if (metrics_)
        metrics_->counter(counter).add(1);
}

double
JobSupervisor::backoffMs(const std::string &job_id,
                         unsigned attempt) const
{
    double base =
        config_.backoffBaseMs * std::pow(2.0, attempt > 0 ? attempt - 1
                                                          : 0);
    if (base > config_.backoffCapMs)
        base = config_.backoffCapMs;
    // Jitter derived from the (chaosSeed, job, attempt) key: the
    // same schedule every run, decorrelated across jobs.
    const std::uint64_t h = deriveSeed(
        config_.chaosSeed,
        job_id + "#backoff:" + std::to_string(attempt));
    const double unit =
        static_cast<double>(h >> 11) * 0x1.0p-53; // [0, 1)
    return base * (0.5 + unit);
}

bool
JobSupervisor::chaosFires(FaultKind kind, std::size_t index1,
                          unsigned attempt) const
{
    for (const FaultClause &c : config_.chaos)
        if (c.kind == kind && c.firesAt(index1) &&
            c.firesAtAttempt(attempt))
            return true;
    return false;
}

void
JobSupervisor::injectChaos(std::size_t index1, unsigned attempt,
                           const CancelToken &token) const
{
    if (config_.chaos.empty())
        return;

    if (chaosFires(FaultKind::AllocFail, index1, attempt)) {
        bump("exec.chaos_injected");
        throw std::bad_alloc();
    }
    if (chaosFires(FaultKind::JobCrash, index1, attempt)) {
        bump("exec.chaos_injected");
        throw JobError(JobErrorKind::Transient,
                       "injected job_crash (attempt " +
                           std::to_string(attempt) + ")");
    }
    if (chaosFires(FaultKind::JobStall, index1, attempt)) {
        bump("exec.chaos_injected");
        // A stall hangs until cancelled; without a deadline or stop
        // it resolves after stallMs so chaos runs cannot wedge.
        const auto t0 = std::chrono::steady_clock::now();
        const auto cap = std::chrono::duration<double, std::milli>(
            config_.stallMs);
        while (!token.cancelled()) {
            if (config_.deadlineSeconds <= 0.0 &&
                std::chrono::steady_clock::now() - t0 >= cap)
                return; // transient hiccup; proceed with the attempt
            std::this_thread::sleep_for(
                std::chrono::milliseconds(1));
        }
        token.poll(); // throws CancelledError (timeout or stop)
    }
}

void
JobSupervisor::backoff(const std::string &job_id, unsigned attempt,
                       const std::atomic<bool> *stop) const
{
    const double total_ms = backoffMs(job_id, attempt);
    const auto t0 = std::chrono::steady_clock::now();
    const auto budget =
        std::chrono::duration<double, std::milli>(total_ms);
    // Sleep in 1 ms slices so a stop request cuts the wait short.
    while (std::chrono::steady_clock::now() - t0 < budget) {
        if (stop && stop->load(std::memory_order_relaxed))
            return;
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
}

} // namespace prism
