#include "exec/checkpoint.hh"

#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <limits>
#include <sstream>

#include "common/atomic_file.hh"
#include "common/rng.hh"

namespace prism
{

namespace
{

constexpr const char *kSchema = "prism-ckpt-v1";

std::string
hex64(std::uint64_t v)
{
    char buf[20];
    std::snprintf(buf, sizeof buf, "%016" PRIx64, v);
    return buf;
}

} // namespace

std::string
sweepFingerprint(const SweepSpec &spec)
{
    std::uint64_t h = deriveSeed(0x5157EEDCAFEULL, spec.name);
    for (const SweepJob &job : spec.jobs) {
        h = deriveSeed(h, job.id);
        h = deriveSeed(h, job.config.fingerprint());
        h = deriveSeed(h, schemeName(job.scheme));
        // Every option that can change a result is part of the key.
        std::ostringstream opt;
        opt << job.options.probBits << ":"
            << job.options.qosTargetFrac << ":"
            << job.options.vantageUnitsPerWay << ":"
            << job.options.faultSpec << ":" << job.options.checked;
        h = deriveSeed(h, opt.str());
    }
    return hex64(h);
}

namespace
{

double
jsonDouble(const JsonValue &v)
{
    // Non-finite doubles serialise as JSON null; restore them as NaN
    // (both NaN and Inf re-serialise as null, so the byte round trip
    // holds either way).
    if (v.isNull())
        return std::numeric_limits<double>::quiet_NaN();
    return v.asDouble();
}

Status
readDoubleArray(const JsonValue &obj, const char *key,
                std::vector<double> &out)
{
    const JsonValue &a = obj.at(key);
    if (!a.isArray())
        return Status::error(std::string("missing array '") + key +
                             "'");
    out.clear();
    for (const JsonValue &e : a.elements())
        out.push_back(jsonDouble(e));
    return Status();
}

Status
readU64Array(const JsonValue &obj, const char *key,
             std::vector<std::uint64_t> &out)
{
    const JsonValue &a = obj.at(key);
    if (!a.isArray())
        return Status::error(std::string("missing array '") + key +
                             "'");
    out.clear();
    for (const JsonValue &e : a.elements())
        out.push_back(e.asU64());
    return Status();
}

} // namespace

Status
readRunResultFields(const JsonValue &obj, RunResult &out)
{
    if (!obj.isObject())
        return Status::error("result is not an object");

    RunResult r;
    r.workload = obj.at("workload").asString();
    r.scheme = obj.at("scheme").asString();

    const JsonValue &benchmarks = obj.at("benchmarks");
    if (!benchmarks.isArray())
        return Status::error("missing array 'benchmarks'");
    for (const JsonValue &b : benchmarks.elements())
        r.benchmarks.push_back(b.asString());

    Status st;
    if (!(st = readDoubleArray(obj, "ipc", r.ipc)).ok())
        return st;
    if (!(st = readDoubleArray(obj, "ipc_standalone",
                               r.ipcStandalone))
             .ok())
        return st;
    if (!(st = readU64Array(obj, "llc_misses", r.llcMisses)).ok())
        return st;
    if (!(st = readU64Array(obj, "llc_hits", r.llcHits)).ok())
        return st;
    if (!(st = readDoubleArray(obj, "occupancy_at_finish",
                               r.occupancyAtFinish))
             .ok())
        return st;
    if (!(st = readDoubleArray(obj, "ev_prob_mean", r.evProbMean))
             .ok())
        return st;
    if (!(st = readDoubleArray(obj, "ev_prob_stddev", r.evProbStddev))
             .ok())
        return st;

    r.intervals = obj.at("intervals").asU64();
    r.victimlessFraction = jsonDouble(obj.at("victimless_fraction"));
    r.recomputes = obj.at("recomputes").asU64();
    r.faultsInjected = obj.at("faults_injected").asU64();
    r.degradedIntervals = obj.at("degraded_intervals").asU64();
    r.invariantViolations = obj.at("invariant_violations").asU64();
    r.ownershipRepairs = obj.at("ownership_repairs").asU64();
    r.clampedEq1Inputs = obj.at("clamped_eq1_inputs").asU64();
    r.droppedRecomputes = obj.at("dropped_recomputes").asU64();
    r.fallbackEntries = obj.at("fallback_entries").asU64();

    out = std::move(r);
    return Status();
}

Status
loadCheckpoint(const std::string &path, CheckpointData &out)
{
    std::ifstream in(path);
    if (!in)
        return Status::error("cannot read " + path);
    std::ostringstream buf;
    buf << in.rdbuf();

    JsonValue doc;
    if (const Status st = parseJson(buf.str(), doc); !st.ok())
        return Status::error("corrupt checkpoint: " + st.message());
    if (doc.at("schema").asString() != kSchema)
        return Status::error(
            "corrupt checkpoint: not a prism-ckpt-v1 document");

    CheckpointData data;
    data.sweep = doc.at("sweep").asString();
    data.fingerprint = doc.at("fingerprint").asString();
    const JsonValue &jobs = doc.at("jobs");
    if (!jobs.isArray())
        return Status::error("corrupt checkpoint: missing jobs array");
    for (const JsonValue &job : jobs.elements()) {
        CheckpointJob cj;
        cj.id = job.at("id").asString();
        if (cj.id.empty())
            return Status::error(
                "corrupt checkpoint: job without an id");
        const std::uint64_t attempts = job.at("attempts").asU64();
        cj.attempts =
            attempts > 0 ? static_cast<unsigned>(attempts) : 1;
        for (const JsonValue &f : job.at("failures").elements()) {
            JobFailure failure;
            if (!jobErrorKindFromName(f.at("kind").asString(),
                                      failure.kind))
                return Status::error(
                    "corrupt checkpoint: job '" + cj.id +
                    "': unknown failure kind '" +
                    f.at("kind").asString() + "'");
            failure.message = f.at("message").asString();
            cj.failures.push_back(std::move(failure));
        }
        if (const Status st =
                readRunResultFields(job.at("result"), cj.result);
            !st.ok())
            return Status::error("corrupt checkpoint: job '" + cj.id +
                                 "': " + st.message());
        data.jobs.push_back(std::move(cj));
    }
    out = std::move(data);
    return Status();
}

CheckpointWriter::CheckpointWriter(std::string path,
                                   const SweepSpec &spec,
                                   Options options)
    : path_(std::move(path)), spec_(&spec),
      fingerprint_(sweepFingerprint(spec)),
      options_(std::move(options))
{
    if (options_.every == 0)
        options_.every = 1;
}

void
CheckpointWriter::seed(std::size_t index, const RunResult &result,
                       const JobReport &report)
{
    std::lock_guard<std::mutex> lock(mutex_);
    Entry &e = done_[index];
    e.attempts = report.attempts;
    e.failures = report.failures;
    e.result = result;
    e.result.recorder = nullptr; // the series is not persisted
}

Status
CheckpointWriter::record(std::size_t index, const RunResult &result,
                         const JobReport &report)
{
    std::lock_guard<std::mutex> lock(mutex_);
    Entry &e = done_[index];
    e.attempts = report.attempts;
    e.failures = report.failures;
    e.result = result;
    e.result.recorder = nullptr;
    if (++since_flush_ < options_.every)
        return Status();
    return flushLocked();
}

Status
CheckpointWriter::flush()
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (done_.empty())
        return Status();
    return flushLocked();
}

Status
CheckpointWriter::flushLocked()
{
    since_flush_ = 0;
    const std::uint64_t ordinal = flushes_ + 1;

    std::ostringstream buf;
    {
        JsonWriter w(buf);
        w.beginObject();
        w.kv("schema", kSchema);
        w.kv("sweep", spec_->name);
        w.kv("fingerprint", fingerprint_);
        w.key("jobs");
        w.beginArray();
        for (const auto &[index, entry] : done_) {
            w.beginObject();
            w.kv("id", spec_->jobs[index].id);
            w.kv("attempts", std::uint64_t(entry.attempts));
            w.key("failures");
            w.beginArray();
            for (const JobFailure &f : entry.failures) {
                w.beginObject();
                w.kv("kind", jobErrorKindName(f.kind));
                w.kv("message", f.message);
                w.endObject();
            }
            w.endArray();
            w.key("result");
            w.beginObject();
            writeRunResultFields(w, entry.result);
            w.endObject();
            w.endObject();
        }
        w.endArray();
        w.endObject();
    }
    const std::string payload = buf.str();
    ++flushes_;

    // torn_write chaos: bypass the atomic path and leave a
    // half-written file, exactly what tmp+rename is there to prevent.
    for (const FaultClause &c : options_.chaos) {
        if (c.kind == FaultKind::TornWrite && c.firesAt(ordinal)) {
            ++torn_writes_;
            std::ofstream torn(path_, std::ios::trunc);
            torn << payload.substr(0, payload.size() / 2);
            return Status();
        }
    }

    return writeFileAtomic(path_, payload);
}

std::uint64_t
CheckpointWriter::flushes() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return flushes_;
}

std::uint64_t
CheckpointWriter::tornWrites() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return torn_writes_;
}

} // namespace prism
