#include "exec/thread_pool.hh"

#include "common/prism_assert.hh"

namespace prism
{

ThreadPool::ThreadPool(unsigned threads)
{
    if (threads == 0)
        threads = 1;
    workers_.reserve(threads);
    for (unsigned i = 0; i < threads; ++i)
        workers_.emplace_back([this]() { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stopping_ = true;
    }
    work_available_.notify_all();
    for (std::thread &w : workers_)
        w.join();
}

void
ThreadPool::submit(std::function<void()> job)
{
    panicIf(!job, "ThreadPool::submit: empty job");
    {
        std::lock_guard<std::mutex> lock(mutex_);
        panicIf(stopping_, "ThreadPool::submit: pool is shutting down");
        queue_.push_back(std::move(job));
        ++unfinished_;
    }
    work_available_.notify_one();
}

void
ThreadPool::wait()
{
    std::unique_lock<std::mutex> lock(mutex_);
    all_idle_.wait(lock, [this]() { return unfinished_ == 0; });
}

void
ThreadPool::workerLoop()
{
    for (;;) {
        std::function<void()> job;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            work_available_.wait(lock, [this]() {
                return stopping_ || !queue_.empty();
            });
            if (queue_.empty())
                return; // stopping and drained
            job = std::move(queue_.front());
            queue_.pop_front();
        }
        job();
        {
            std::lock_guard<std::mutex> lock(mutex_);
            if (--unfinished_ == 0)
                all_idle_.notify_all();
        }
    }
}

} // namespace prism
