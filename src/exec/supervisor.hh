/**
 * @file
 * Job supervision for the sweep engine: structured error taxonomy,
 * deterministic retry with exponential backoff, a deadline watchdog
 * and quarantine of repeatedly-failing jobs.
 *
 * A supervised sweep always completes: instead of one throwing or
 * hung job killing the process (and every finished result with it),
 * each attempt runs under a CancelToken, failures are classified
 * into JobErrorKind, transient failures and timeouts are retried up
 * to a configured attempt budget, and jobs that exhaust it are
 * quarantined — the sweep's outcome then carries a per-job
 * JobReport manifest of salvaged vs. failed results.
 *
 * Everything that affects *results* is deterministic: retries replay
 * the exact same seeded simulation, chaos injection (the exec-level
 * FaultInjector kinds) selects jobs by spec index, and backoff
 * jitter derives from the (chaos seed, job id, attempt) key — only
 * wall-clock timing varies between runs. docs/RELIABILITY.md is the
 * full contract.
 */

#ifndef PRISM_EXEC_SUPERVISOR_HH
#define PRISM_EXEC_SUPERVISOR_HH

#include <atomic>
#include <cstdint>
#include <functional>
#include <new>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/cancel.hh"
#include "fault/fault_injector.hh"
#include "telemetry/metrics_registry.hh"

namespace prism
{

/** The supervisor's failure taxonomy. */
enum class JobErrorKind
{
    Transient,          ///< retryable (crash, allocation failure)
    Fatal,              ///< not retryable (bad config, logic error)
    Timeout,            ///< the deadline watchdog cancelled the job
    InvariantViolation, ///< the job detected corrupted state
};

/** Stable lower-case name ("transient", "timeout", ...). */
const char *jobErrorKindName(JobErrorKind kind);

/** Parse a name printed by jobErrorKindName(). */
bool jobErrorKindFromName(const std::string &name, JobErrorKind &out);

/** A classified job failure, thrown from inside an attempt. */
class JobError : public std::runtime_error
{
  public:
    JobError(JobErrorKind kind, const std::string &what)
        : std::runtime_error(what), kind_(kind)
    {
    }

    JobErrorKind kind() const { return kind_; }

  private:
    JobErrorKind kind_;
};

/** Supervision knobs; the disabled default preserves raw execution. */
struct SupervisorConfig
{
    /** Off: attempts run bare and exceptions propagate (legacy). */
    bool enabled = false;

    /** Attempt budget per job (first try included); at least 1. */
    unsigned maxAttempts = 3;

    /** Exponential backoff between attempts: base * 2^(n-1), capped. */
    double backoffBaseMs = 5.0;
    double backoffCapMs = 250.0;

    /** Per-attempt deadline in seconds (0 = no watchdog). */
    double deadlineSeconds = 0.0;

    /** Injected job_stall duration when no deadline bounds it. */
    double stallMs = 50.0;

    /** Exec-level chaos clauses (job_crash/job_stall/...); empty =
     * no injection. Parse with parseChaosSpec(). */
    std::vector<FaultClause> chaos;

    /** Seeds backoff jitter and nothing else (results never depend
     * on it). */
    std::uint64_t chaosSeed = 0;
};

/**
 * Parse a --chaos spec: the FaultInjector grammar restricted to the
 * exec-level kinds (simulation kinds are rejected — they belong in
 * the per-job --faults spec).
 */
Status parseChaosSpec(const std::string &spec,
                      std::vector<FaultClause> &out);

/** Terminal state of one supervised job. */
enum class JobState
{
    Done,        ///< succeeded on the first attempt (or restored)
    Recovered,   ///< succeeded after at least one retry
    Quarantined, ///< every attempt failed; default result stands
    Skipped,     ///< not executed (stop requested before it ran)
};

/** Stable lower-case name ("done", "recovered", ...). */
const char *jobStateName(JobState state);

/** One classified failure inside a job's attempt history. */
struct JobFailure
{
    JobErrorKind kind = JobErrorKind::Transient;
    std::string message;
};

/** Everything the supervisor knows about one finished job. */
struct JobReport
{
    JobState state = JobState::Done;
    /** Attempts consumed (1 on a clean first-try success). */
    unsigned attempts = 1;
    /** true: the result came from a checkpoint, no attempt ran. */
    bool restored = false;
    /** One entry per failed attempt, oldest first. */
    std::vector<JobFailure> failures;

    bool
    succeeded() const
    {
        return state == JobState::Done || state == JobState::Recovered;
    }
};

/**
 * Wraps job attempts with retry/deadline/quarantine semantics.
 *
 * Thread-safe: supervise() may run concurrently from any number of
 * worker threads (chaos schedules are pure functions of the job
 * index, counters are atomic).
 */
class JobSupervisor
{
  public:
    /**
     * @param config  Supervision knobs (copied).
     * @param metrics Optional registry for the exec.* counters
     *                (non-owning; may be null).
     */
    explicit JobSupervisor(const SupervisorConfig &config,
                           telemetry::MetricsRegistry *metrics = nullptr);

    const SupervisorConfig &config() const { return config_; }

    /**
     * One attempt body: runs the job under @p token and returns its
     * result. Throws to signal failure (JobError for classified
     * failures, CancelledError from cancellation polls, anything
     * else is classified Fatal — std::bad_alloc excepted, which is
     * Transient).
     */
    template <typename Result>
    using Attempt = std::function<Result(const CancelToken &)>;

    /**
     * Execute job @p index1 (1-based spec index, the chaos schedule
     * key) under full supervision and fill @p report. On quarantine
     * or skip the returned result is default-constructed; the
     * report tells the two apart. @p stop is an optional external
     * stop flag (checked before each attempt and linked into the
     * attempt's CancelToken).
     */
    template <typename Result>
    Result
    supervise(std::size_t index1, const std::string &job_id,
              const Attempt<Result> &attempt, JobReport &report,
              const std::atomic<bool> *stop = nullptr) const
    {
        report = JobReport{};
        const unsigned budget =
            config_.maxAttempts > 0 ? config_.maxAttempts : 1;
        for (unsigned n = 1; n <= budget; ++n) {
            if (stop && stop->load(std::memory_order_relaxed)) {
                report.state = JobState::Skipped;
                report.attempts = n - 1;
                return Result{};
            }
            report.attempts = n;
            CancelToken token;
            token.linkStop(stop);
            if (config_.deadlineSeconds > 0.0)
                token.setDeadline(config_.deadlineSeconds);

            JobFailure failure;
            try {
                injectChaos(index1, n, token);
                Result r = attempt(token);
                report.state =
                    n == 1 ? JobState::Done : JobState::Recovered;
                if (n > 1)
                    bump("exec.recovered");
                return r;
            } catch (const CancelledError &e) {
                if (!e.byDeadline()) {
                    // External shutdown, not a job failure.
                    report.state = JobState::Skipped;
                    return Result{};
                }
                failure = {JobErrorKind::Timeout, e.what()};
            } catch (const JobError &e) {
                failure = {e.kind(), e.what()};
            } catch (const std::bad_alloc &) {
                failure = {JobErrorKind::Transient,
                           "allocation failure (std::bad_alloc)"};
            } catch (const std::exception &e) {
                failure = {JobErrorKind::Fatal, e.what()};
            }

            if (failure.kind == JobErrorKind::Timeout)
                bump("exec.timeouts");
            const bool retryable =
                failure.kind == JobErrorKind::Transient ||
                failure.kind == JobErrorKind::Timeout;
            report.failures.push_back(std::move(failure));
            if (!retryable)
                break;
            if (n < budget) {
                bump("exec.retries");
                backoff(job_id, n, stop);
            }
        }
        report.state = JobState::Quarantined;
        bump("exec.quarantined");
        return Result{};
    }

    /**
     * Deterministic backoff delay before retry @p attempt+1 of
     * @p job_id, in milliseconds: min(cap, base * 2^(attempt-1))
     * scaled by a [0.5, 1.5) jitter derived from (chaosSeed, job_id,
     * attempt). Exposed for tests; affects wall time only.
     */
    double backoffMs(const std::string &job_id,
                     unsigned attempt) const;

    /** Whether an exec chaos clause of @p kind fires for job
     * @p index1 at @p attempt. */
    bool chaosFires(FaultKind kind, std::size_t index1,
                    unsigned attempt) const;

  private:
    /** Throw / stall per the chaos schedule (no-op without chaos). */
    void injectChaos(std::size_t index1, unsigned attempt,
                     const CancelToken &token) const;

    /** Sleep the backoff delay, waking early on @p stop. */
    void backoff(const std::string &job_id, unsigned attempt,
                 const std::atomic<bool> *stop) const;

    /** Increment the named exec.* counter (no-op without metrics). */
    void bump(const char *counter) const;

    SupervisorConfig config_;
    telemetry::MetricsRegistry *metrics_ = nullptr;

    friend class SupervisorTestPeer;
};

} // namespace prism

#endif // PRISM_EXEC_SUPERVISOR_HH
