/**
 * @file
 * TA-DIP — Thread-Aware Dynamic Insertion Policy (Jaleel et al. [7]).
 *
 * Each core duels LRU insertion against bimodal insertion (BIP) using
 * its own PSEL counter and per-core leader sets; follower sets insert
 * that core's blocks according to the winning policy. Victim
 * selection stays plain LRU — TA-DIP manages the shared cache purely
 * through insertion, which is why the paper classes it among the
 * schemes that cannot support goals other than hit-maximisation.
 */

#ifndef PRISM_POLICIES_TADIP_HH
#define PRISM_POLICIES_TADIP_HH

#include <cstdint>
#include <string>
#include <vector>

#include "cache/partition_scheme.hh"
#include "common/rng.hh"

namespace prism
{

/** The TA-DIP management scheme (feedback variant, TADIP-F style). */
class TadipScheme : public PartitionScheme
{
  public:
    TadipScheme(std::uint32_t num_cores, std::uint64_t seed);

    std::string name() const override { return "TA-DIP"; }

    int chooseVictim(SharedCache &cache, CoreId core,
                     const SetView &set) override;
    bool onFill(SharedCache &cache, CoreId core, const SetView &set,
                int way) override;

    /** Current PSEL of @p core, exposed for tests. */
    unsigned psel(CoreId core) const { return psel_[core]; }

    /** Whether followers currently use BIP for @p core. */
    bool
    usesBip(CoreId core) const
    {
        return psel_[core] > pselMax / 2;
    }

  private:
    static constexpr unsigned pselMax = 1023;
    static constexpr double bipEpsilon = 1.0 / 32.0;

    /** Leader-set role of @p set for @p core:
     *  0 = follower, 1 = LRU leader, 2 = BIP leader. */
    unsigned setRole(std::uint32_t set_idx, CoreId core) const;

    std::uint32_t num_cores_;
    Rng rng_;
    std::vector<unsigned> psel_;
};

} // namespace prism

#endif // PRISM_POLICIES_TADIP_HH
