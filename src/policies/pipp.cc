#include "policies/pipp.hh"

#include "cache/shared_cache.hh"
#include "policies/lookahead.hh"

namespace prism
{

PippScheme::PippScheme(std::uint32_t num_cores, std::uint32_t ways,
                       std::uint64_t seed, const PippParams &params)
    : num_cores_(num_cores), ways_(ways), params_(params), rng_(seed)
{
    // Until the first interval completes, insert everyone mid-stack.
    pi_.assign(num_cores_, std::max(1u, ways_ / num_cores_));
    stream_.assign(num_cores_, 0);
}

bool
PippScheme::onHit(SharedCache &cache, CoreId core, const SetView &set, int way)
{
    (void)cache;
    const double p = stream_[core] ? params_.streamPromoteProb
                                   : params_.promoteProb;
    if (rng_.chance(p))
        recency::promoteByOne(set.state, way);
    return true; // recency fully handled
}

int
PippScheme::chooseVictim(SharedCache &cache, CoreId core, const SetView &set)
{
    (void)cache;
    (void)core;
    // Strict LRU eviction: whatever sits at the bottom of the stack.
    return recency::lruWay(set.state);
}

bool
PippScheme::onFill(SharedCache &cache, CoreId core, const SetView &set, int way)
{
    (void)cache;
    // Insert pi - 1 positions above LRU (pi == 1 -> LRU position).
    const std::uint32_t pi = stream_[core] ? 1 : pi_[core];
    recency::insertAtLruOffset(set.state, way, pi - 1);
    return true;
}

void
PippScheme::onIntervalEnd(const IntervalSnapshot &snap)
{
    // Allocation: UCP's lookahead on the shadow-tag curves gives the
    // per-core insertion positions.
    std::vector<std::vector<double>> curves;
    curves.reserve(snap.cores.size());
    for (const auto &core : snap.cores)
        curves.push_back(core.shadowHitsAtPosition);
    pi_ = lookaheadPartition(curves, ways_, 1);

    // Stream detection from stand-alone hit rates.
    for (CoreId c = 0; c < snap.numCores(); ++c) {
        const double hits = snap.cores[c].standAloneHits();
        const double accesses = hits + snap.cores[c].shadowMisses;
        const double rate = accesses > 0 ? hits / accesses : 1.0;
        stream_[c] = rate < params_.streamHitRate;
    }
}

} // namespace prism
