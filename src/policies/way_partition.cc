#include "policies/way_partition.hh"

#include <algorithm>
#include <numeric>

#include "cache/shared_cache.hh"
#include "common/prism_assert.hh"
#include "policies/lookahead.hh"

namespace prism
{

std::vector<std::uint32_t>
roundFractionsToWays(const std::vector<double> &fractions,
                     std::uint32_t ways)
{
    const std::size_t n = fractions.size();
    fatalIf(n == 0, "roundFractionsToWays: no cores");
    fatalIf(ways < n, "roundFractionsToWays: fewer ways than cores");

    double total = 0.0;
    for (double f : fractions)
        total += f;
    // Degenerate input: fall back to an even split.
    if (total <= 0.0) {
        std::vector<std::uint32_t> even(n, ways / n);
        for (std::size_t i = 0; i < ways % n; ++i)
            ++even[i];
        return even;
    }

    std::vector<std::uint32_t> alloc(n);
    std::vector<std::pair<double, std::size_t>> remainders(n);
    std::uint32_t assigned = 0;
    for (std::size_t i = 0; i < n; ++i) {
        const double ideal = fractions[i] / total * ways;
        alloc[i] = static_cast<std::uint32_t>(ideal);
        remainders[i] = {ideal - alloc[i], i};
        assigned += alloc[i];
    }
    std::sort(remainders.begin(), remainders.end(),
              [](const auto &a, const auto &b) { return a.first > b.first; });
    for (std::size_t i = 0; assigned < ways; ++i, ++assigned)
        ++alloc[remainders[i % n].second];

    // Guarantee one way per core, taking from the largest holders.
    for (std::size_t i = 0; i < n; ++i) {
        while (alloc[i] == 0) {
            const std::size_t donor = static_cast<std::size_t>(
                std::max_element(alloc.begin(), alloc.end()) -
                alloc.begin());
            panicIf(alloc[donor] <= 1,
                    "roundFractionsToWays: cannot satisfy 1-way minimum");
            --alloc[donor];
            ++alloc[i];
        }
    }
    return alloc;
}

WayPartitionScheme::WayPartitionScheme(std::uint32_t num_cores,
                                       std::uint32_t ways)
    : num_cores_(num_cores), ways_(ways)
{
    fatalIf(ways_ < num_cores_,
            "WayPartitionScheme: fewer ways than cores");
    // Start from an even split.
    alloc_.assign(num_cores_, ways_ / num_cores_);
    for (std::uint32_t i = 0; i < ways_ % num_cores_; ++i)
        ++alloc_[i];
    allowed_.assign(ways_, 0);
    counts_.assign(num_cores_, 0);
}

void
WayPartitionScheme::setAllocation(std::vector<std::uint32_t> alloc)
{
    panicIf(alloc.size() != num_cores_,
            "WayPartitionScheme::setAllocation: wrong core count");
    std::uint32_t sum = 0;
    for (auto a : alloc)
        sum += a;
    panicIf(sum != ways_,
            "WayPartitionScheme::setAllocation: does not sum to ways");
    alloc_ = std::move(alloc);
}

int
WayPartitionScheme::chooseVictim(SharedCache &cache, CoreId core,
                                 const SetView &set)
{
    // Count this set's blocks per core.
    std::fill(counts_.begin(), counts_.end(), 0);
    for (std::size_t w = 0; w < set.ways(); ++w)
        if (set.blocks.valid[w])
            ++counts_[set.blocks.owner[w]];

    // Find the core most over its allocation (ties: lower id).
    CoreId most_over = invalidCore;
    std::int64_t best_excess = 0;
    for (CoreId c = 0; c < num_cores_; ++c) {
        const std::int64_t excess =
            static_cast<std::int64_t>(counts_[c]) -
            static_cast<std::int64_t>(alloc_[c]);
        if (excess > best_excess) {
            best_excess = excess;
            most_over = c;
        }
    }

    // The missing core may consume its own space once it reaches its
    // allocation; until then it takes a block from an over-allocated
    // core.
    CoreId victim_core;
    if (counts_[core] >= alloc_[core] || most_over == invalidCore)
        victim_core = core;
    else
        victim_core = most_over;

    if (counts_[victim_core] == 0) {
        // The missing core holds nothing here and nobody is over
        // allocation (possible right after a repartition): fall back
        // to the global replacement victim.
        return cache.repl().victim(set);
    }

    for (std::size_t w = 0; w < set.ways(); ++w)
        allowed_[w] =
            set.blocks[w].valid && set.blocks[w].owner == victim_core;
    const int way = cache.repl().victimAmong(
        set, std::span<const char>(allowed_.data(), set.ways()));
    return way != invalidWay ? way : cache.repl().victim(set);
}

void
UcpScheme::onIntervalEnd(const IntervalSnapshot &snap)
{
    std::vector<std::vector<double>> curves;
    curves.reserve(snap.cores.size());
    for (const auto &core : snap.cores)
        curves.push_back(core.shadowHitsAtPosition);
    setAllocation(lookaheadPartition(curves, ways_, 1));
}

void
KimFairScheme::onIntervalEnd(const IntervalSnapshot &snap)
{
    // Miss-increase ratio X_i: how much sharing inflates misses over
    // the stand-alone (shadow-tag) estimate. Kim et al.'s dynamic
    // repartitioning moves one way per epoch from the least to the
    // most affected core.
    const std::uint32_t n = snap.numCores();
    std::vector<double> x(n);
    for (CoreId c = 0; c < n; ++c) {
        const double alone = std::max(1.0, snap.cores[c].shadowMisses);
        x[c] = static_cast<double>(snap.cores[c].sharedMisses) / alone;
    }

    CoreId worst = 0, best = 0;
    for (CoreId c = 1; c < n; ++c) {
        if (x[c] > x[worst])
            worst = c;
        if (x[c] < x[best])
            best = c;
    }

    if (worst == best || x[worst] - x[best] <= threshold_)
        return;
    if (alloc_[best] <= 1)
        return; // donor would drop below the 1-way minimum

    auto alloc = alloc_;
    --alloc[best];
    ++alloc[worst];
    setAllocation(std::move(alloc));
}

} // namespace prism
