#include "policies/lookahead.hh"

#include "common/prism_assert.hh"

namespace prism
{

double
lookaheadHitsAt(const std::vector<double> &curve, std::uint32_t units,
                std::uint32_t units_per_way)
{
    const double frac_ways =
        static_cast<double>(units) / static_cast<double>(units_per_way);
    const std::size_t whole = static_cast<std::size_t>(frac_ways);
    double sum = 0.0;
    for (std::size_t w = 0; w < whole && w < curve.size(); ++w)
        sum += curve[w];
    // Linear interpolation into the next way's hits.
    if (whole < curve.size()) {
        const double frac = frac_ways - static_cast<double>(whole);
        sum += frac * curve[whole];
    }
    return sum;
}

std::vector<std::uint32_t>
lookaheadPartition(const std::vector<std::vector<double>> &hit_curves,
                   std::uint32_t total_units,
                   std::uint32_t units_per_way)
{
    const std::uint32_t cores =
        static_cast<std::uint32_t>(hit_curves.size());
    fatalIf(cores == 0, "lookaheadPartition: no cores");
    fatalIf(total_units < cores,
            "lookaheadPartition: fewer units than cores");
    fatalIf(units_per_way == 0, "lookaheadPartition: zero granularity");

    // Every core starts with one unit so that no program is starved
    // of cache space entirely.
    std::vector<std::uint32_t> alloc(cores, 1);
    std::uint32_t balance = total_units - cores;

    while (balance > 0) {
        double best_mu = -1.0;
        std::uint32_t best_core = 0;
        std::uint32_t best_k = 1;

        for (std::uint32_t c = 0; c < cores; ++c) {
            const double base =
                lookaheadHitsAt(hit_curves[c], alloc[c], units_per_way);
            for (std::uint32_t k = 1; k <= balance; ++k) {
                const double gain =
                    lookaheadHitsAt(hit_curves[c], alloc[c] + k,
                                    units_per_way) -
                    base;
                const double mu = gain / static_cast<double>(k);
                if (mu > best_mu) {
                    best_mu = mu;
                    best_core = c;
                    best_k = k;
                }
            }
        }

        if (best_mu <= 0.0) {
            // Nobody gains any hits from more space: spread the rest
            // round-robin so the allocation still sums to the total.
            std::uint32_t c = 0;
            while (balance > 0) {
                ++alloc[c % cores];
                ++c;
                --balance;
            }
            break;
        }

        alloc[best_core] += best_k;
        balance -= best_k;
    }

    return alloc;
}

} // namespace prism
