/**
 * @file
 * UCP's lookahead partitioning algorithm (Qureshi & Patt [14]).
 *
 * Given each core's positional hit curve (from shadow tags), assign
 * allocation units greedily by maximum marginal utility: repeatedly
 * give the core whose next k units buy the most hits-per-unit those k
 * units. Runs in O(cores * units^2) which is trivial at cache-way
 * scale.
 *
 * The granularity is parameterised: with @c unitsPerWay == 1 this is
 * classic way-granular UCP; with more units per way the hit curve is
 * linearly interpolated between way positions, producing the
 * fine-grained ("extended UCP") targets used by the Vantage
 * comparison in the paper's Section 5.3.
 */

#ifndef PRISM_POLICIES_LOOKAHEAD_HH
#define PRISM_POLICIES_LOOKAHEAD_HH

#include <cstdint>
#include <vector>

namespace prism
{

/**
 * Interpolated cumulative hits for @p units allocation units.
 *
 * @param curve Positional hit counts per way (entry w = hits at LRU
 *              stack position w).
 * @param units Allocation in units.
 * @param units_per_way Units that make up one way.
 */
double lookaheadHitsAt(const std::vector<double> &curve,
                       std::uint32_t units, std::uint32_t units_per_way);

/**
 * Run the lookahead algorithm.
 *
 * @param hit_curves Per-core positional hit curves.
 * @param total_units Units to distribute (== ways * units_per_way).
 * @param units_per_way Granularity (1 == way-granular UCP).
 * @return Per-core allocations in units; sums to @p total_units, and
 *         every core receives at least one unit.
 */
std::vector<std::uint32_t>
lookaheadPartition(const std::vector<std::vector<double>> &hit_curves,
                   std::uint32_t total_units,
                   std::uint32_t units_per_way = 1);

} // namespace prism

#endif // PRISM_POLICIES_LOOKAHEAD_HH
