/**
 * @file
 * Vantage fine-grained partitioning (Sanchez & Kozyrakis [17]),
 * adapted to a set-associative cache for the Figure 7/8 comparison.
 *
 * Vantage divides the cache into a managed region (holding the
 * partitions, ~95% of capacity) and an unmanaged region that absorbs
 * evictions. On each miss, replacement candidates belonging to
 * partitions that exceed their target are *demoted* into the
 * unmanaged region, gated by a per-partition aperture with
 * negative-feedback control; the actual victim is then taken from the
 * unmanaged region. Hits must be region-aware and re-promote
 * unmanaged blocks. Partition targets come from the same extended
 * (sub-way granularity) UCP lookahead the paper uses for both Vantage
 * and PriSM.
 *
 * Simplifications versus the original (documented in DESIGN.md): the
 * aperture is derived directly from the partition's overshoot rather
 * than from the analytical churn model, and the demotion threshold
 * feedback operates on candidate counts per partition. Both preserve
 * the mechanism's observable behaviour: fine-grained occupancy
 * control with slack, at the price of an unmanaged region and
 * approximate demotions.
 */

#ifndef PRISM_POLICIES_VANTAGE_HH
#define PRISM_POLICIES_VANTAGE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "cache/partition_scheme.hh"

namespace prism
{

/** Vantage tunables. */
struct VantageParams
{
    /** Fraction of capacity reserved for the unmanaged region. */
    double unmanagedFrac = 0.05;

    /** Maximum aperture A_max. */
    double maxAperture = 0.5;

    /** Overshoot slack: aperture reaches A_max when a partition is
     *  this fraction over its target. */
    double slack = 0.3;

    /** Demotions allowed per miss (hardware-bounded scan). */
    unsigned maxDemotionsPerMiss = 2;

    /** Granularity of the extended lookahead (units per way). */
    std::uint32_t unitsPerWay = 4;
};

/** The Vantage management scheme; requires a timestamp-style policy. */
class VantageScheme : public PartitionScheme
{
  public:
    VantageScheme(std::uint32_t num_cores, std::uint64_t total_blocks,
                  std::uint32_t ways, const VantageParams &params = {});

    std::string name() const override { return "Vantage"; }

    bool onHit(SharedCache &cache, CoreId core, const SetView &set,
               int way) override;
    int chooseVictim(SharedCache &cache, CoreId core,
                     const SetView &set) override;
    bool onFill(SharedCache &cache, CoreId core, const SetView &set,
                int way) override;
    void onIntervalEnd(const IntervalSnapshot &snap) override;

    // --- introspection (tests, reports) ---
    double targetBlocks(CoreId core) const { return target_[core]; }
    std::uint64_t managedSize(CoreId core) const
    {
        return managed_size_[core];
    }
    std::uint64_t forcedEvictions() const { return forced_evictions_; }
    std::uint64_t demotions() const { return demotions_; }
    double aperture(CoreId core) const;

  private:
    void demoteCandidates(const SetView &set);
    void adjustThreshold(CoreId p);

    std::uint32_t num_cores_;
    std::uint64_t total_blocks_;
    std::uint32_t ways_;
    VantageParams params_;

    std::vector<double> target_;        ///< per-core target, blocks
    std::vector<std::uint64_t> managed_size_;
    std::vector<std::uint8_t> threshold_; ///< demotion age threshold
    std::vector<std::uint32_t> cand_count_;
    std::vector<std::uint32_t> demote_count_;

    std::uint64_t forced_evictions_ = 0;
    std::uint64_t demotions_ = 0;
};

} // namespace prism

#endif // PRISM_POLICIES_VANTAGE_HH
