/**
 * @file
 * Way-partitioning enforcement and the schemes built on it.
 *
 * Way-partitioning allocates each core an integral number of ways,
 * identical in every set. On a miss the victim core is picked from
 * occupancy-vs-allocation within the indexed set; the underlying
 * replacement policy then names the victim block of that core — the
 * same two-step replacement PriSM generalises (paper §1).
 */

#ifndef PRISM_POLICIES_WAY_PARTITION_HH
#define PRISM_POLICIES_WAY_PARTITION_HH

#include <cstdint>
#include <string>
#include <vector>

#include "cache/partition_scheme.hh"

namespace prism
{

/**
 * Round target fractions to an integral way allocation summing to
 * @p ways, using largest-remainder rounding; every core receives at
 * least one way (shrinking the biggest allocations if needed).
 */
std::vector<std::uint32_t>
roundFractionsToWays(const std::vector<double> &fractions,
                     std::uint32_t ways);

/**
 * Base class implementing way-partition *enforcement*; subclasses
 * supply the allocation policy by overriding onIntervalEnd() and
 * calling setAllocation().
 */
class WayPartitionScheme : public PartitionScheme
{
  public:
    WayPartitionScheme(std::uint32_t num_cores, std::uint32_t ways);

    /**
     * Two-step victim choice: if the missing core is at or above its
     * allocation in this set, evict its own replacement-order victim;
     * otherwise evict from the core most over its allocation.
     */
    int chooseVictim(SharedCache &cache, CoreId core,
                     const SetView &set) override;

    const std::vector<std::uint32_t> &allocation() const
    {
        return alloc_;
    }

    /** Install a new allocation; must sum to the way count. */
    void setAllocation(std::vector<std::uint32_t> alloc);

  protected:
    std::uint32_t num_cores_;
    std::uint32_t ways_;
    std::vector<std::uint32_t> alloc_;

  private:
    std::vector<char> allowed_;          // scratch victim mask
    std::vector<std::uint32_t> counts_;  // scratch per-core counts
};

/**
 * Static way-partitioning: the allocation fixed at construction
 * (default: even split) is never revised. This is the "trivial"
 * partitioning the paper mentions for the cores == ways machine of
 * Figure 6, and a useful lower bound for allocation policies.
 */
class StaticWayScheme : public WayPartitionScheme
{
  public:
    StaticWayScheme(std::uint32_t num_cores, std::uint32_t ways)
        : WayPartitionScheme(num_cores, ways)
    {}

    std::string name() const override { return "StaticWP"; }
};

/** UCP [14]: way-partitioning driven by the lookahead algorithm. */
class UcpScheme : public WayPartitionScheme
{
  public:
    UcpScheme(std::uint32_t num_cores, std::uint32_t ways)
        : WayPartitionScheme(num_cores, ways)
    {}

    std::string name() const override { return "UCP"; }

    void onIntervalEnd(const IntervalSnapshot &snap) override;
};

/**
 * Fair way-partitioning after Kim, Chandra & Solihin [9]: equalise
 * the miss-increase ratio X_i = shared misses / stand-alone misses by
 * moving a way per interval from the least to the most affected core.
 */
class KimFairScheme : public WayPartitionScheme
{
  public:
    KimFairScheme(std::uint32_t num_cores, std::uint32_t ways,
                  double threshold = 0.05)
        : WayPartitionScheme(num_cores, ways), threshold_(threshold)
    {}

    std::string name() const override { return "FairWP"; }

    void onIntervalEnd(const IntervalSnapshot &snap) override;

  private:
    double threshold_;
};

} // namespace prism

#endif // PRISM_POLICIES_WAY_PARTITION_HH
