#include "policies/tadip.hh"

#include "cache/shared_cache.hh"

namespace prism
{

TadipScheme::TadipScheme(std::uint32_t num_cores, std::uint64_t seed)
    : num_cores_(num_cores), rng_(seed)
{
    psel_.assign(num_cores_, pselMax / 2);
}

unsigned
TadipScheme::setRole(std::uint32_t set_idx, CoreId core) const
{
    // Constituency-based leader selection: each aligned group of
    // 2 * num_cores_ sets dedicates two sets per core — one LRU
    // leader, one BIP leader. A hash decorrelates the mapping from
    // plain set-index striding.
    const std::uint32_t h = set_idx * 2654435761u;
    const std::uint32_t slot = h % (num_cores_ * 32);
    if (slot == core * 32)
        return 1;
    if (slot == core * 32 + 1)
        return 2;
    return 0;
}

int
TadipScheme::chooseVictim(SharedCache &cache, CoreId core, const SetView &set)
{
    (void)core;
    return cache.repl().victim(set);
}

bool
TadipScheme::onFill(SharedCache &cache, CoreId core, const SetView &set,
                    int way)
{
    (void)cache;
    const unsigned role = setRole(set.setIdx, core);

    // Misses in a leader set vote against that leader's policy.
    if (role == 1 && psel_[core] < pselMax)
        ++psel_[core];
    else if (role == 2 && psel_[core] > 0)
        --psel_[core];

    bool use_bip;
    if (role == 1)
        use_bip = false;
    else if (role == 2)
        use_bip = true;
    else
        use_bip = usesBip(core);

    if (use_bip && !rng_.chance(bipEpsilon))
        recency::insertAtLruOffset(set.state, way, 0);
    else
        recency::moveToFront(set.state, way);
    return true;
}

} // namespace prism
