/**
 * @file
 * PIPP — Promotion/Insertion Pseudo-Partitioning (Xie & Loh [20]).
 *
 * PIPP has no explicit partition enforcement. Each core is assigned
 * an insertion position pi_i (from the UCP lookahead allocation);
 * incoming blocks are inserted pi_i - 1 positions above the LRU end,
 * and hits promote a block by a single position with probability
 * p_prom. Streaming cores (negligible stand-alone hit rate) insert
 * at the LRU position and promote only rarely, so their lines flow
 * straight back out — the pseudo-partitioning effect.
 */

#ifndef PRISM_POLICIES_PIPP_HH
#define PRISM_POLICIES_PIPP_HH

#include <cstdint>
#include <string>
#include <vector>

#include "cache/partition_scheme.hh"
#include "common/rng.hh"

namespace prism
{

/** PIPP's tunables; defaults follow the original paper. */
struct PippParams
{
    double promoteProb = 0.75;       ///< p_prom for normal cores
    double streamPromoteProb = 1.0 / 128.0;
    /** A core is streaming when its stand-alone hit rate (from
     *  shadow tags) falls below this threshold. */
    double streamHitRate = 0.05;
};

/** The PIPP management scheme. */
class PippScheme : public PartitionScheme
{
  public:
    PippScheme(std::uint32_t num_cores, std::uint32_t ways,
               std::uint64_t seed, const PippParams &params = {});

    std::string name() const override { return "PIPP"; }

    bool onHit(SharedCache &cache, CoreId core, const SetView &set,
               int way) override;
    int chooseVictim(SharedCache &cache, CoreId core,
                     const SetView &set) override;
    bool onFill(SharedCache &cache, CoreId core, const SetView &set,
                int way) override;
    void onIntervalEnd(const IntervalSnapshot &snap) override;

    const std::vector<std::uint32_t> &insertPositions() const
    {
        return pi_;
    }

    bool streaming(CoreId core) const { return stream_[core] != 0; }

  private:
    std::uint32_t num_cores_;
    std::uint32_t ways_;
    PippParams params_;
    Rng rng_;

    std::vector<std::uint32_t> pi_; ///< insertion position per core
    std::vector<char> stream_;      ///< streaming classification
};

} // namespace prism

#endif // PRISM_POLICIES_PIPP_HH
