#include "policies/vantage.hh"

#include <algorithm>

#include "cache/shared_cache.hh"
#include "common/prism_assert.hh"
#include "policies/lookahead.hh"

namespace prism
{

VantageScheme::VantageScheme(std::uint32_t num_cores,
                             std::uint64_t total_blocks,
                             std::uint32_t ways,
                             const VantageParams &params)
    : num_cores_(num_cores), total_blocks_(total_blocks), ways_(ways),
      params_(params)
{
    const double managed =
        (1.0 - params_.unmanagedFrac) * static_cast<double>(total_blocks_);
    target_.assign(num_cores_, managed / num_cores_);
    managed_size_.assign(num_cores_, 0);
    threshold_.assign(num_cores_, 64);
    cand_count_.assign(num_cores_, 0);
    demote_count_.assign(num_cores_, 0);
}

double
VantageScheme::aperture(CoreId core) const
{
    const double target = std::max(1.0, target_[core]);
    const double over =
        static_cast<double>(managed_size_[core]) - target;
    if (over <= 0.0)
        return 0.0;
    const double a = over / (params_.slack * target);
    return std::min(a, params_.maxAperture);
}

bool
VantageScheme::onHit(SharedCache &cache, CoreId core, const SetView &set,
                     int way)
{
    (void)cache;
    (void)core;
    // Hits are region-aware: an unmanaged block is promoted back into
    // its owner's partition.
    const BlockRef blk = set.blocks[static_cast<std::size_t>(way)];
    if (blk.region == regionUnmanaged) {
        blk.region = regionManaged;
        ++managed_size_[blk.owner];
    }
    return false; // let TS-LRU restamp the block
}

void
VantageScheme::adjustThreshold(CoreId p)
{
    // Negative feedback: steer the measured demotion rate towards the
    // partition's aperture by nudging the age threshold.
    const double rate =
        static_cast<double>(demote_count_[p]) / cand_count_[p];
    const double ap = aperture(p);
    if (rate < 0.9 * ap && threshold_[p] > 1)
        --threshold_[p];
    else if (rate > 1.1 * ap && threshold_[p] < 250)
        ++threshold_[p];
    cand_count_[p] = 0;
    demote_count_[p] = 0;
}

void
VantageScheme::demoteCandidates(const SetView &set)
{
    unsigned demoted = 0;
    for (std::size_t w = 0;
         w < set.ways() && demoted < params_.maxDemotionsPerMiss; ++w) {
        const BlockRef blk = set.blocks[w];
        if (!blk.valid || blk.region != regionManaged)
            continue;
        const CoreId p = blk.owner;
        if (aperture(p) <= 0.0)
            continue;
        ++cand_count_[p];
        if (coarse_ts::age(set, static_cast<int>(w)) >= threshold_[p]) {
            blk.region = regionUnmanaged;
            --managed_size_[p];
            ++demote_count_[p];
            ++demotions_;
            ++demoted;
        }
        if (cand_count_[p] >= 256)
            adjustThreshold(p);
    }
}

int
VantageScheme::chooseVictim(SharedCache &cache, CoreId core, const SetView &set)
{
    (void)core;
    demoteCandidates(set);

    // Victim: the oldest unmanaged block in the set.
    int victim = invalidWay;
    unsigned best_age = 0;
    for (std::size_t w = 0; w < set.ways(); ++w) {
        const BlockRef blk = set.blocks[w];
        if (!blk.valid || blk.region != regionUnmanaged)
            continue;
        const unsigned a = coarse_ts::age(set, static_cast<int>(w));
        if (victim == invalidWay || a > best_age) {
            victim = static_cast<int>(w);
            best_age = a;
        }
    }

    if (victim == invalidWay) {
        // No unmanaged block here: forced eviction of the globally
        // oldest block (the situation Vantage's sizing makes rare).
        ++forced_evictions_;
        victim = cache.repl().victim(set);
        panicIf(victim == invalidWay, "Vantage: no victim available");
        const BlockRef blk = set.blocks[static_cast<std::size_t>(victim)];
        if (blk.region == regionManaged)
            --managed_size_[blk.owner];
    }
    return victim;
}

bool
VantageScheme::onFill(SharedCache &cache, CoreId core, const SetView &set,
                      int way)
{
    (void)cache;
    (void)set;
    (void)way;
    // The cache tags fresh fills as managed; account for it here.
    ++managed_size_[core];
    return false; // TS-LRU stamps the new block
}

void
VantageScheme::onIntervalEnd(const IntervalSnapshot &snap)
{
    // Extended UCP lookahead at sub-way granularity, scaled into the
    // managed region.
    std::vector<std::vector<double>> curves;
    curves.reserve(snap.cores.size());
    for (const auto &core : snap.cores)
        curves.push_back(core.shadowHitsAtPosition);

    const std::uint32_t total_units = ways_ * params_.unitsPerWay;
    const auto alloc =
        lookaheadPartition(curves, total_units, params_.unitsPerWay);

    const double managed = (1.0 - params_.unmanagedFrac) *
                           static_cast<double>(total_blocks_);
    for (CoreId c = 0; c < num_cores_; ++c)
        target_[c] = managed * static_cast<double>(alloc[c]) /
                     static_cast<double>(total_units);
}

} // namespace prism
