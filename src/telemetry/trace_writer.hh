/**
 * @file
 * Export recorded telemetry as Chrome trace-event JSON and flat CSV.
 *
 * The JSON file loads directly in chrome://tracing and in Perfetto's
 * legacy-trace importer: each job becomes one process (pid = job
 * index in spec order), per-core interval series become counter
 * tracks ("C" events), and recorder events become instant events
 * ("i"). The time axis is *simulated*: one allocation interval is
 * rendered as 1 ms of trace time (ts = interval × 1000 µs), so the
 * output depends only on simulation state.
 *
 * Determinism contract (docs/OBSERVABILITY.md): same seed and config
 * ⇒ byte-identical files at any sweep --threads value. Everything
 * written goes through JsonWriter and derives from deterministic
 * simulation state; wall-clock span totals are excluded unless
 * TraceOptions::includeWallTime opts in.
 */

#ifndef PRISM_TELEMETRY_TRACE_WRITER_HH
#define PRISM_TELEMETRY_TRACE_WRITER_HH

#include <iosfwd>
#include <span>
#include <string>

#include "telemetry/interval_recorder.hh"
#include "telemetry/metrics_registry.hh"

namespace prism::telemetry
{

/** One recorded run to export; name labels the trace process. */
struct TraceJob
{
    std::string name;
    const IntervalRecorder *recorder = nullptr;
};

/** TraceWriter knobs. */
struct TraceOptions
{
    /**
     * Emit wall-clock span aggregates ("X" duration events and
     * ".wall_ns" counters). Off by default: wall time breaks the
     * byte-identical determinism contract.
     */
    bool includeWallTime = false;
};

/** Serialises TraceJobs as Chrome trace JSON or flat CSV. */
class TraceWriter
{
  public:
    explicit TraceWriter(const TraceOptions &options = {})
        : options_(options)
    {
    }

    /**
     * Write the "prism-trace-v1" Chrome trace-event document for
     * @p jobs; @p metrics (may be null) adds the span/counter
     * snapshot to otherData.
     */
    void writeChromeTrace(std::ostream &os,
                          std::span<const TraceJob> jobs,
                          const MetricsRegistry *metrics = nullptr) const;

    /**
     * Write the interval series as flat CSV, one row per
     * (job, interval, core); PriSM-only columns are empty under
     * other schemes.
     */
    void writeCsv(std::ostream &os,
                  std::span<const TraceJob> jobs) const;

  private:
    TraceOptions options_;
};

} // namespace prism::telemetry

#endif // PRISM_TELEMETRY_TRACE_WRITER_HH
