/**
 * @file
 * Sliding-window aggregator over the live interval stream.
 *
 * The serve engine closes one IntervalSample per allocation interval
 * (docs/SERVING.md). The offline pipeline records them all and
 * grades the run post-hoc; the live observability plane instead
 * keeps the last K intervals in a ring and maintains, per tenant:
 *
 *   - rolling hit ratio, miss rate and fair slowdown over the window
 *   - E_i churn (mean |ΔE_i| between consecutive intervals)
 *   - window quantiles of per-interval hit ratio and slowdown
 *   - an EWMA of miss rate and slowdown with a relative drift
 *     statistic, feeding the online doctor's drift checks
 *
 * Everything is a pure function of the pushed samples — no wall
 * clock, no allocation-order dependence — so a window populated from
 * the engine's sequential interval-close path is byte-deterministic
 * at any --threads value, and the exporter can golden-test its
 * snapshots like every other artifact.
 *
 * Quantiles are exact over the retained window (sorted copy of at
 * most K values per query), not an approximate sketch: K is small
 * (default 64) and determinism is worth more here than O(log K).
 */

#ifndef PRISM_TELEMETRY_WINDOW_HH
#define PRISM_TELEMETRY_WINDOW_HH

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "telemetry/interval_recorder.hh"

namespace prism::telemetry
{

/** Tuning knobs for SlidingWindow. */
struct WindowConfig
{
    /** Intervals retained (K); at least 1. */
    std::size_t capacity = 64;

    /** EWMA smoothing factor in (0, 1]; 1 = no smoothing. */
    double ewmaAlpha = 0.25;

    /**
     * Relative miss latency used by the fair-slowdown model
     * (matches DoctorThresholds::serveMissPenalty).
     */
    double missPenalty = 25.0;
};

/** Per-tenant rollup over the retained window. */
struct TenantWindowStats
{
    /** Intervals contributing (== window size). */
    std::uint64_t intervals = 0;

    // Sums over the window.
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t evictions = 0;

    // Window-aggregate rates (1.0 hit ratio when no accesses).
    double hitRatio = 1.0;
    double missRate = 0.0;
    double slowdown = 1.0;

    /** Mean |ΔE_i| between consecutive retained intervals. */
    double churn = 0.0;

    // Exact quantiles of the per-interval series in the window.
    double hitRatioP50 = 1.0;
    double hitRatioP90 = 1.0;
    double slowdownP50 = 1.0;
    double slowdownP90 = 1.0;

    // EWMA state over ALL pushed intervals (not just retained).
    double ewmaMissRate = 0.0;
    double missRateDrift = 0.0; ///< |x − ewma| / max(ewma, floor)
    double ewmaSlowdown = 1.0;
    double slowdownDrift = 0.0;
};

/** Bounded ring of the last K closed intervals, per-tenant stats. */
class SlidingWindow
{
  public:
    /** One retained interval; parallel vectors indexed by tenant. */
    struct Row
    {
        std::uint64_t interval = 0;
        std::vector<double> occupancy;
        std::vector<double> target;
        std::vector<double> evProb;
        std::vector<std::uint64_t> hits;
        std::vector<std::uint64_t> misses;
        std::vector<std::uint64_t> evictions;
    };

    SlidingWindow(std::uint32_t tenants, WindowConfig config = {});

    std::uint32_t tenants() const { return tenants_; }
    std::size_t capacity() const { return config_.capacity; }
    const WindowConfig &config() const { return config_; }

    /**
     * Fold one closed interval into the window. @p evictions is the
     * per-tenant eviction count for that interval (may be empty).
     * The sample's per-tenant vectors may be shorter than the tenant
     * count; missing entries read as zero.
     */
    void push(const IntervalSample &sample,
              std::span<const std::uint64_t> evictions);

    /** Retained intervals (<= capacity). */
    std::size_t size() const { return ring_.size(); }

    /** Intervals ever pushed, including ones that fell out. */
    std::uint64_t pushed() const { return pushed_; }

    /** Retained row @p i, 0 = oldest retained. */
    const Row &row(std::size_t i) const;

    /** 1-based index of the newest retained interval (0 if empty). */
    std::uint64_t lastInterval() const;

    /** Rollup for tenant @p t over the current window. */
    TenantWindowStats stats(std::uint32_t t) const;

  private:
    std::uint32_t tenants_;
    WindowConfig config_;

    std::vector<Row> ring_; ///< grows to capacity, then wraps
    std::size_t head_ = 0;  ///< next write position once full
    std::uint64_t pushed_ = 0;

    // EWMA state survives ring wrap: one entry per tenant.
    struct Ewma
    {
        bool seeded = false;
        double missRate = 0.0;
        double missRateDrift = 0.0;
        double slowdown = 1.0;
        double slowdownDrift = 0.0;
    };
    std::vector<Ewma> ewma_;
};

} // namespace prism::telemetry

#endif // PRISM_TELEMETRY_WINDOW_HH
